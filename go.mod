module hetpapi

go 1.22
