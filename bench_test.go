package hetpapi

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each printing the regenerated rows/series alongside the
// paper's reference values, plus microbenchmarks for the measurement-path
// costs the paper's section V.5 worries about.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The paper-scale benchmarks use exp.Default() (N=57024, NB=192 on Raptor
// Lake). Absolute wall time per benchmark iteration is tens of seconds of
// simulated machine time; the printed tables appear once.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"hetpapi/internal/core"
	"hetpapi/internal/events"
	"hetpapi/internal/exp"
	"hetpapi/internal/fleet"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/pfmlib"
	"hetpapi/internal/profile"
	"hetpapi/internal/scenario"
	"hetpapi/internal/sim"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/sysfs"
	"hetpapi/internal/telemetry"
	"hetpapi/internal/workload"
)

var printOnce sync.Map

func printHeader(b *testing.B, key, title, paper string) bool {
	if _, loaded := printOnce.LoadOrStore(key, true); loaded {
		return false
	}
	fmt.Printf("\n===== %s =====\n", title)
	if paper != "" {
		fmt.Printf("paper reference: %s\n", paper)
	}
	return true
}

func benchCfg() exp.Config {
	cfg := exp.Default()
	cfg.Runs = 1 // the simulator is deterministic per seed
	return cfg
}

// BenchmarkTableII regenerates Table II: OpenBLAS HPL vs Intel HPL Gflops
// for E-only, P-only and all-core runs at N=57024, NB=192.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.TableII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "t2", "Table II: benchmark performance comparison",
			"OpenBLAS 188.62/356.28/290.51, Intel 198.95/392.89/457.38 Gflops; changes +5.4%/+10.3%/+57.4%") {
			fmt.Print(res)
		}
	}
}

// BenchmarkTableIII regenerates Table III: LLC miss rate and instruction
// share per core type for the two all-core runs.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.TableIII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "t3", "Table III: hardware counter measurements (all-core)",
			"LLC missrate P 86%->64%, E 0.05%->0.03%; instruction share 80/20 -> 68/32") {
			fmt.Print(res)
		}
	}
}

// BenchmarkFigure1 regenerates the Figure 1 frequency traces of both
// all-core runs and reports the median busy frequencies the paper quotes.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figures1And2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f1", "Figure 1: measured core frequencies (all-core runs)",
			"medians: OpenBLAS P 2.94 GHz / E 2.26 GHz; Intel P 2.61 GHz / E 2.32 GHz") {
			fmt.Print(res)
			for _, v := range []string{"OpenBLAS HPL", "Intel HPL"} {
				fs := res.ByVariant[v]
				fmt.Printf("%s: %d one-second samples; first P-core frequency series (GHz, every 20 s):\n  ", v, len(fs.Samples))
				for j := 0; j < len(fs.Samples); j += 20 {
					fmt.Printf("%.2f ", fs.Samples[j].FreqMHz[0]/1000)
				}
				fmt.Println()
			}
		}
	}
}

// BenchmarkFigure2 regenerates the Figure 2 power and temperature traces.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figures1And2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f2", "Figure 2: measured power and package temperature (all-core runs)",
			"short spike toward the 219 W PL2 (OpenBLAS peaks 165.7 W), then the 65 W PL1 plateau; temp < 100 C") {
			for _, v := range []string{"OpenBLAS HPL", "Intel HPL"} {
				fs := res.ByVariant[v]
				fmt.Printf("%-14s peak %.1f W, plateau %.1f W, max temp %.1f C; power series (W, every 20 s):\n  ",
					v, fs.PeakPowerW, fs.PlateauPowerW, fs.MaxTempC)
				for j := 1; j < len(fs.Samples); j += 20 {
					fmt.Printf("%.0f ", fs.Samples[j].PowerW)
				}
				fmt.Println()
			}
		}
	}
}

// BenchmarkFigure3 regenerates the OrangePi frequency-scaling traces.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f3", "Figure 3: OrangePi frequency scaling behaviour",
			"big cores ramp to 1.8 GHz then throttle within seconds; LITTLE cores sustain; WattsUpPro wall power") {
			fmt.Print(res)
			bigRun := res.Series[0]
			fmt.Println("2-big run, big-cluster frequency (MHz, every 10 s):")
			fmt.Print("  ")
			m := hw.OrangePi800()
			for j := 0; j < len(bigRun.Samples); j += 10 {
				s := bigRun.Samples[j]
				fmt.Printf("%.0f ", (s.FreqMHz[m.CPUsOfType("big")[0]]+s.FreqMHz[m.CPUsOfType("big")[1]])/2)
			}
			fmt.Println()
		}
	}
}

// BenchmarkFigure4 regenerates the OrangePi core-count sweep.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "f4", "Figure 4: OrangePi HPL performance as more cores added",
			"4 LITTLE completes faster than 2 big; all 6 only a minimal improvement over 4 LITTLE") {
			fmt.Print(res)
		}
	}
}

// BenchmarkHybridTest regenerates the papi_hybrid_100m_one_eventset test of
// section IV.F: patched vs legacy PAPI on a free-migrating process.
func BenchmarkHybridTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.HybridTest(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "hy", "Section IV.F: papi_hybrid_100m_one_eventset",
			"patched example: p: 836848 e: 167487 (sum ~1M); legacy: 0, 1M, or in between") {
			fmt.Print(res)
		}
	}
}

// BenchmarkOverhead regenerates the section V.5 overhead study: syscall
// cost per EventSet operation across set shapes.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Overhead(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "ov", "Section V.5: measurement overhead by EventSet shape",
			"hybrid EventSets need one group per PMU: at least two reads per measurement") {
			fmt.Print(res)
		}
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks: the real (Go-level) latency of the measurement paths.

type benchRig struct {
	s    *sim.Machine
	lib  *core.Library
	es   *core.EventSet
	spin *workload.Spin
	pid  int
}

func newRig(b *testing.B, names []string, multiplex bool) *benchRig {
	b.Helper()
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	lib, err := core.Init(s, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	spin := workload.NewSpin("w", 1e12)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	es := lib.CreateEventSet()
	if err := es.Attach(p.PID); err != nil {
		b.Fatal(err)
	}
	if multiplex {
		if err := es.SetMultiplex(); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range names {
		if err := es.AddNamed(n); err != nil {
			b.Fatal(err)
		}
	}
	if err := es.Start(); err != nil {
		b.Fatal(err)
	}
	s.RunFor(0.05)
	return &benchRig{s: s, lib: lib, es: es, spin: spin, pid: p.PID}
}

var singlePMUNames = []string{
	"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
}

var multiPMUNames = []string{
	"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
	"adl_grt::INST_RETIRED:ANY", "adl_grt::CPU_CLK_UNHALTED:CORE",
}

// BenchmarkReadSinglePMU measures EventSet.Read on a one-group set.
func BenchmarkReadSinglePMU(b *testing.B) {
	rig := newRig(b, singlePMUNames, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.es.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadMultiPMU measures EventSet.Read on a hybrid two-group set —
// the extra indirection of section IV.E.
func BenchmarkReadMultiPMU(b *testing.B) {
	rig := newRig(b, multiPMUNames, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.es.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFastRdpmc measures the rdpmc user-space read path.
func BenchmarkReadFastRdpmc(b *testing.B) {
	rig := newRig(b, multiPMUNames, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.es.ReadFast(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadMultiplexed measures Read on a 14-event multiplexed set.
func BenchmarkReadMultiplexed(b *testing.B) {
	names := []string{
		"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES", "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
		"adl_glc::LONGEST_LAT_CACHE:REFERENCE", "adl_glc::LONGEST_LAT_CACHE:MISS",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS", "adl_glc::MEM_INST_RETIRED:ALL_STORES",
		"adl_glc::CYCLE_ACTIVITY:STALLS_TOTAL", "adl_glc::UOPS_RETIRED:SLOTS",
		"adl_glc::TOPDOWN:SLOTS", "adl_glc::DTLB_LOAD_MISSES:WALK_COMPLETED",
		"adl_glc::RESOURCE_STALLS:ANY", "adl_glc::INST_RETIRED:NOP",
	}
	rig := newRig(b, names, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.es.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartStopMultiPMU measures the start/stop caliper cost of a
// hybrid EventSet (open + enable per group, read + disable per group).
func BenchmarkStartStopMultiPMU(b *testing.B) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	lib, err := core.Init(s, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := s.Spawn(workload.NewSpin("w", 1e12), hw.NewCPUSet(0))
	es := lib.CreateEventSet()
	es.Attach(p.PID)
	for _, n := range multiPMUNames {
		if err := es.AddNamed(n); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := es.Start(); err != nil {
			b.Fatal(err)
		}
		if _, err := es.Stop(); err != nil {
			b.Fatal(err)
		}
		if err := es.Cleanup(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfEventOpenClose measures raw kernel open/close.
func BenchmarkPerfEventOpenClose(b *testing.B) {
	k := perfevent.NewKernel(hw.RaptorLake())
	def := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
	attr := perfevent.Attr{Type: 8, Config: events.Encode(def.Code, def.DefaultUmask().Bits)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd, err := k.Open(attr, 100, -1, -1)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Close(fd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelTaskExec measures the hot counting path: one execution
// report against 8 open events.
func BenchmarkKernelTaskExec(b *testing.B) {
	k := perfevent.NewKernel(hw.RaptorLake())
	def := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
	attr := perfevent.Attr{Type: 8, Config: events.Encode(def.Code, def.DefaultUmask().Bits)}
	for i := 0; i < 8; i++ {
		if _, err := k.Open(attr, 100, -1, -1); err != nil {
			b.Fatal(err)
		}
	}
	st := events.Stats{Instructions: 1e6, Cycles: 5e5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.TaskExec(100, 0, 0.001, st)
	}
}

// BenchmarkSimTick measures one simulator step with a full 16-thread HPL.
func BenchmarkSimTick(b *testing.B) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	h, err := workload.NewHPL(workload.HPLConfig{
		N: 57024, NB: 192, Threads: 16, Strategy: workload.IntelMKL(), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, task := range h.Threads() {
		s.Spawn(task, hw.NewCPUSet(hw.RaptorLake().FirstCPUPerCore()[i]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkScenarioHarness measures a full audited run of the smallest
// reference scenario: boot, workload spawn, per-tick checking of the
// standard invariant library, wide-event collection and digesting.
func BenchmarkScenarioHarness(b *testing.B) {
	var spec scenario.Spec
	for _, s := range scenario.Reference() {
		if s.Name == "homogeneous-powercap" {
			spec = s
		}
	}
	if spec.Name == "" {
		b.Fatal("reference scenario homogeneous-powercap not found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioInvariantTick isolates the per-tick cost of the
// standard invariant checks against the raw simulator step measured by
// BenchmarkSimTick: same machine and workload, run through the harness.
func BenchmarkScenarioInvariantTick(b *testing.B) {
	spec := scenario.Spec{
		Name:    "bench-invariant-tick",
		Machine: "raptorlake",
		Workloads: []scenario.WorkloadSpec{{
			Kind: scenario.WorkloadSpin, Name: "spin", Seconds: 3600,
		}},
		MaxSeconds: float64(b.N) * 0.001,
	}
	b.ResetTimer()
	if _, err := scenario.Run(spec); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkParseEvent measures libpfm4-style event parsing.
func BenchmarkParseEvent(b *testing.B) {
	l, err := pfmlib.New(hw.RaptorLake())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ParseEvent("adl_grt::INST_RETIRED:ANY:u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSysfsDetect measures the PMU-scan core detection heuristic.
func BenchmarkSysfsDetect(b *testing.B) {
	f := sysfs.New(hw.RaptorLake(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sysfs.DetectByPMU(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHPLThreadRun measures one workload execution slice.
func BenchmarkHPLThreadRun(b *testing.B) {
	h, err := workload.NewHPL(workload.HPLConfig{
		N: 57024, NB: 192, Threads: 1, Strategy: workload.OpenBLASx86(), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := hw.RaptorLake()
	t := m.TypeByName("P-core")
	ctx := &workload.ExecContext{CPU: 0, Type: t, FreqMHz: 3000, Throughput: 1}
	task := h.Threads()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Run(ctx, 0.001)
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks: the design choices behind the reproduced shapes.

// BenchmarkAblationStrategySweep shows the Table II crossover mechanism:
// static-barrier HPL degrades as E-cores join while work stealing gains.
func BenchmarkAblationStrategySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationStrategySweep(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "ab-strategy", "Ablation: threading strategy vs E-core count",
			"the static split's loss grows with E-core count; work stealing keeps gaining") {
			fmt.Print(res)
		}
	}
}

// BenchmarkAblationTurboBudget shows what the PL2 window buys.
func BenchmarkAblationTurboBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationTurboBudget(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "ab-turbo", "Ablation: PL2 turbo budget",
			"the initial spike of Figures 1-2 exists because of the above-PL1 energy budget") {
			fmt.Print(res)
		}
	}
}

// BenchmarkAblationMuxInterval quantifies multiplex estimation error.
func BenchmarkAblationMuxInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationMuxInterval(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "ab-mux", "Ablation: multiplex rotation interval vs estimate error", "") {
			fmt.Print(res)
		}
	}
}

// BenchmarkAblationSchedulerPreference times hybrid-aware vs class-blind
// placement.
func BenchmarkAblationSchedulerPreference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AblationSchedulerPreference(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "ab-sched", "Ablation: hybrid-aware scheduler placement", "") {
			fmt.Print(res)
		}
	}
}

// ---------------------------------------------------------------------------
// Telemetry serving-layer benchmarks: the first entries of the perf
// trajectory for the internal/telemetry store behind hetpapid.

// BenchmarkTelemetryIngest measures parallel samples/sec into the sharded
// store, 1 shard vs 8, each writer goroutine feeding its own series (the
// daemon's one-collector-per-machine shape).
func BenchmarkTelemetryIngest(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := telemetry.NewStore(telemetry.Config{Capacity: 4096, Shards: shards})
			var writer atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := telemetry.Key{Machine: "m", Series: fmt.Sprintf("s%d", writer.Add(1))}
				t := 0.0
				for pb.Next() {
					st.Append(k, t, t)
					t++
				}
			})
		})
	}
}

// BenchmarkTelemetryAggregate measures the streaming aggregate read path
// (the /query?agg=1 hot core) against a full series.
func BenchmarkTelemetryAggregate(b *testing.B) {
	st := telemetry.NewStore(telemetry.Config{Capacity: 4096})
	k := telemetry.Key{Machine: "m", Series: "power_w"}
	for i := 0; i < 10000; i++ {
		st.Append(k, float64(i), float64(i%97))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Aggregate(k); !ok {
			b.Fatal("series missing")
		}
	}
}

// BenchmarkTelemetryQueryUnderLoad measures /query HTTP latency while
// writer goroutines keep ingesting — the daemon's live-read contention
// case.
func BenchmarkTelemetryQueryUnderLoad(b *testing.B) {
	st := telemetry.NewStore(telemetry.Config{Capacity: 4096, Shards: 8})
	srv := telemetry.NewServer(st, 0)
	for cpu := 0; cpu < 8; cpu++ {
		k := telemetry.Key{Machine: "m", Series: telemetry.CounterSeriesName(cpu, "P-core", "instructions")}
		for i := 0; i < 4096; i++ {
			st.Append(k, float64(i), float64(i))
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			k := telemetry.Key{Machine: "m", Series: telemetry.CounterSeriesName(w, "P-core", "instructions")}
			t := 4096.0
			for {
				select {
				case <-stop:
					return
				default:
					st.Append(k, t, t)
					t++
				}
			}
		}(w)
	}
	// Two query shapes: the aggregate path and the raw-points path (the
	// latter is where the pooled copy-on-read buffer earns its keep —
	// allocs/op here is the figure the pool is gated on).
	series := telemetry.CounterSeriesName(0, "P-core", "instructions")
	for name, url := range map[string]string{
		"agg": ts.URL + "/query?machine=m&series=" + series + "&agg=1",
		"raw": ts.URL + "/query?machine=m&series=" + series,
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := http.Get(url)
					if err != nil {
						b.Error(err)
						return
					}
					if resp.StatusCode != 200 {
						b.Errorf("status %d", resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			})
		})
	}
	close(stop)
	writers.Wait()
}

// BenchmarkFleetIngest is the headline streaming-observability
// benchmark behind BENCH_9.json: telemetry points ingested per second
// through the fleet streamer's population shape — many machines each
// appending machine scalars and per-core-type counter series into one
// shared sharded store, every point folding through the full
// raw+1s+10s+1m rung hierarchy and the lifetime aggregates at ingest.
// ns/point and allocs/point come from the standard bench accounting
// (one iteration = one point).
func BenchmarkFleetIngest(b *testing.B) {
	for _, machines := range []int{16, 256} {
		b.Run(fmt.Sprintf("machines=%d", machines), func(b *testing.B) {
			st := telemetry.NewStore(telemetry.Config{Capacity: 512, RungCapacity: 512})
			series := []string{
				"power_w", "energy_j", "temp_c", "wall_w",
				telemetry.TypeSeriesName("P-core", "instructions"),
				telemetry.TypeSeriesName("P-core", "cycles"),
				telemetry.TypeSeriesName("E-core", "instructions"),
				telemetry.TypeSeriesName("E-core", "cycles"),
			}
			keys := make([]telemetry.Key, 0, machines*len(series))
			for m := 0; m < machines; m++ {
				id := fmt.Sprintf("m%04d", m)
				st.SetMeta(id, telemetry.MachineMeta{Template: "bench", Model: "homogeneous"})
				for _, s := range series {
					keys = append(keys, telemetry.Key{Machine: id, Series: s})
				}
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine owns a disjoint slice of series — the
				// fleet's one-writer-per-series discipline.
				off := int(next.Add(1)-1) * 31
				i := 0
				for pb.Next() {
					k := keys[(off+i)%len(keys)]
					st.Append(k, float64(i)/4, float64(i))
					i++
				}
			})
			b.StopTimer()
			if wall := b.Elapsed().Seconds(); wall > 0 {
				b.ReportMetric(float64(b.N)/wall, "points/s")
			}
		})
	}
	// The end-to-end shape: a real fleet run with the streamer hooked
	// in, reporting the streamer's own self-measured cost.
	b.Run("streamed-fleet", func(b *testing.B) {
		var points, ingestNs int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := fleet.Generate(fleet.GenConfig{
				Machines: 64, Seed: int64(i) + 1, StaggerSec: 0.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			st := telemetry.NewStore(telemetry.Config{Capacity: 512, RungCapacity: 512})
			rc := fleet.RunConfig{Streamer: fleet.NewStreamer(st, 0)}
			if _, err := fleet.Run(context.Background(), f, rc); err != nil {
				b.Fatal(err)
			}
			o := rc.Streamer.SelfOverhead()
			points += o.Points
			ingestNs += int64(o.IngestSec * 1e9)
		}
		b.StopTimer()
		if points > 0 {
			b.ReportMetric(float64(ingestNs)/float64(points), "ns/point")
			b.ReportMetric(float64(points)/float64(b.N), "points/run")
		}
	})
}

// BenchmarkEnergyTable measures energy-to-solution for every Table II
// cell via RAPL — the efficiency view the paper's motivation implies but
// never tabulates.
func BenchmarkEnergyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.EnergyTable(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if printHeader(b, "en", "Extension: energy to solution (RAPL) per Table II cell",
			"the hybrid-aware all-core configuration should be the most energy-efficient") {
			fmt.Print(res)
		}
	}
}

// ---------------------------------------------------------------------------
// Span-trace benchmarks: the recorder's self-overhead contract. The
// tick benchmarks measure the same machine+workload under four tracing
// states; the acceptance bar is that an attached-but-disabled recorder
// adds < 5% to the baseline tick cost (every instrumentation site is a
// nil check plus one atomic load).

// traceTickRig is the monitoring-loop rig the tick benchmarks share:
// Raptor Lake running a pinned spin task with a started hybrid (two
// perf-group) EventSet. One "tick" is a simulator step plus an EventSet
// read — the per-sample work of the paper's monitoring loops, touching
// the sched-hook, syscall and read-quality instrumentation sites.
func traceTickRig(b *testing.B) (*sim.Machine, *core.EventSet) {
	b.Helper()
	rig := newRig(b, multiPMUNames, false)
	return rig.s, rig.es
}

// tickNs times b.N step+read ticks and returns the mean ns/tick.
func tickNs(b *testing.B, s *sim.Machine, es *core.EventSet) float64 {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
		if _, err := es.Read(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// BenchmarkSpantraceTick measures per-tick monitoring cost across
// tracing states:
//
//	baseline   no recorder ever attached
//	disabled   recorder attached, Enable never called
//	enabled    recorder attached and recording
//	exporting  recording, plus a Perfetto JSON export every 1024 ticks
//
// The disabled/baseline and enabled/disabled ratios are reported as
// benchmark metrics (acceptance: disabled adds < 5%), the measured
// costs are folded into the recorder's self-overhead report
// (Overhead().TickCostRatio), and the report prints once at the end.
func BenchmarkSpantraceTick(b *testing.B) {
	var baselineNs, disabledNs, enabledNs float64
	var enabledOvh spantrace.OverheadReport
	b.Run("baseline", func(b *testing.B) {
		s, es := traceTickRig(b)
		baselineNs = tickNs(b, s, es)
	})
	b.Run("disabled", func(b *testing.B) {
		s, es := traceTickRig(b)
		s.SetTracer(spantrace.New(spantrace.Config{}))
		disabledNs = tickNs(b, s, es)
		if baselineNs > 0 {
			b.ReportMetric(disabledNs/baselineNs, "x-baseline")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		s, es := traceTickRig(b)
		rec := spantrace.New(spantrace.Config{})
		rec.Enable()
		s.SetTracer(rec)
		enabledNs = tickNs(b, s, es)
		rec.RecordTickCost(disabledNs, enabledNs)
		enabledOvh = rec.Overhead()
		if enabledOvh.TickCostRatio > 0 {
			b.ReportMetric(enabledOvh.TickCostRatio, "x-disabled")
		}
	})
	b.Run("exporting", func(b *testing.B) {
		s, es := traceTickRig(b)
		rec := spantrace.New(spantrace.Config{})
		rec.Enable()
		s.SetTracer(rec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
			if _, err := es.Read(); err != nil {
				b.Fatal(err)
			}
			if i%1024 == 1023 {
				if err := spantrace.WriteJSON(io.Discard, rec.Snapshot()); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		if printHeader(b, "spantrace-ovh", "Span-trace recorder self-overhead", "") {
			fmt.Printf("tick ns: baseline %.0f, disabled %.0f, enabled %.0f\n",
				baselineNs, disabledNs, enabledNs)
			fmt.Printf("disabled/baseline %.3f (acceptance: < 1.05), enabled/disabled %.3f\n",
				disabledNs/baselineNs, enabledOvh.TickCostRatio)
			fmt.Printf("enabled run emitted %d, retained %d, dropped %d, %d bytes retained\n",
				enabledOvh.SpansEmitted, enabledOvh.SpansRetained,
				enabledOvh.SpansDropped, enabledOvh.BytesRetained)
		}
	})
}

// BenchmarkProfilerTick measures per-tick monitoring cost with the
// statistical profiler attached, against the same baseline rig as
// BenchmarkSpantraceTick:
//
//	baseline   no profiler
//	enabled    collector attached to the spin pid, default drain cadence
//
// The enabled/baseline ratio is reported as a benchmark metric
// (acceptance: < 1.10), the measured costs are folded into the
// collector's self-overhead report (Overhead().TickCostRatio), and the
// report prints once at the end.
func BenchmarkProfilerTick(b *testing.B) {
	var baselineNs, enabledNs float64
	var ovh profile.OverheadReport
	b.Run("baseline", func(b *testing.B) {
		s, es := traceTickRig(b)
		baselineNs = tickNs(b, s, es)
	})
	b.Run("enabled", func(b *testing.B) {
		rig := newRig(b, multiPMUNames, false)
		col := profile.NewCollector(rig.s, profile.Config{})
		defer col.Close()
		remove := rig.s.AddStepHook(col.SimHook())
		defer remove()
		col.Attach(rig.pid)
		enabledNs = tickNs(b, rig.s, rig.es)
		col.RecordTickCost(baselineNs, enabledNs)
		ovh = col.Overhead()
		if ovh.TickCostRatio > 0 {
			b.ReportMetric(ovh.TickCostRatio, "x-baseline")
		}
	})
	// Print after both sub-benchmarks settle so the report reflects the
	// final timed runs, not the N=1 warm-up.
	if baselineNs > 0 && enabledNs > 0 &&
		printHeader(b, "profiler-ovh", "Statistical profiler self-overhead", "") {
		fmt.Printf("tick ns: baseline %.0f, profiled %.0f, ratio %.3f (acceptance: < 1.10)\n",
			baselineNs, enabledNs, enabledNs/baselineNs)
		fmt.Println(ovh.String())
	}
}

// BenchmarkProfilerDrain isolates the periodic ring-drain cost: 16 rings
// on a 16-thread HPL, one Drain per iteration after a simulator step
// feeds the rings.
func BenchmarkProfilerDrain(b *testing.B) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	h, err := workload.NewHPL(workload.HPLConfig{
		N: 57024, NB: 192, Threads: 16, Strategy: workload.IntelMKL(), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	col := profile.NewCollector(s, profile.Config{})
	defer col.Close()
	for i, task := range h.Threads() {
		p := s.Spawn(task, hw.NewCPUSet(hw.RaptorLake().FirstCPUPerCore()[i]))
		col.Attach(p.PID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
		col.Drain()
	}
}

// BenchmarkSpantraceDisabledSite isolates one instrumentation site's
// fast path: the Enabled gate on nil and disabled recorders.
func BenchmarkSpantraceDisabledSite(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var rec *spantrace.Recorder
		for i := 0; i < b.N; i++ {
			if rec.Enabled() {
				b.Fatal("nil recorder enabled")
			}
		}
	})
	b.Run("disabled", func(b *testing.B) {
		rec := spantrace.New(spantrace.Config{})
		for i := 0; i < b.N; i++ {
			if rec.Enabled() {
				b.Fatal("recorder enabled")
			}
		}
	})
}

// BenchmarkSpantraceEmit measures the enabled emit path, including the
// steady-state ring-wraparound case (capacity far below b.N, so every
// push evicts the oldest event).
func BenchmarkSpantraceEmit(b *testing.B) {
	b.Run("instant", func(b *testing.B) {
		rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 16})
		rec.Enable()
		trk := rec.Track("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Instant(trk, "sys.read", "syscall", float64(i), spantrace.Int("fd", 3))
		}
	})
	b.Run("wraparound", func(b *testing.B) {
		rec := spantrace.New(spantrace.Config{TrackCapacity: 64})
		rec.Enable()
		trk := rec.Track("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Instant(trk, "sys.read", "syscall", float64(i), spantrace.Int("fd", 3))
		}
		b.StopTimer()
		if st := rec.Stats(); b.N > 64 && st.Dropped == 0 {
			b.Fatal("expected wrap drops")
		}
	})
	b.Run("span-args", func(b *testing.B) {
		rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 16})
		rec.Enable()
		trk := rec.Track("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Span(trk, "hpl", "exec", float64(i), 0.001,
				spantrace.Int("pid", 1000),
				spantrace.Str("core_type", "P-core"),
				spantrace.Str("class", "performance"))
		}
	})
}

// simThroughputCase builds one machine+workload configuration for
// BenchmarkSimThroughput. rebuild reports whether the current machine's
// workload has run out and a fresh one is needed to stay in steady state.
type simThroughputCase struct {
	name    string
	build   func() *sim.Machine
	rebuild func(*sim.Machine) bool
}

func simThroughputCases() []simThroughputCase {
	buildHPL := func() *sim.Machine {
		s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
		h, err := workload.NewHPL(workload.HPLConfig{
			N: 57024, NB: 192, Threads: 16, Strategy: workload.IntelMKL(), Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		for i, task := range h.Threads() {
			s.Spawn(task, hw.NewCPUSet(hw.RaptorLake().FirstCPUPerCore()[i]))
		}
		return s
	}
	idle := func(mk func() *hw.Machine) func() *sim.Machine {
		return func() *sim.Machine {
			s := sim.New(mk(), sim.DefaultConfig())
			// Start warm so the settle span does real cooling work.
			s.Thermal.SetTempC(s.Thermal.Spec().AmbientC + 20)
			return s
		}
	}
	return []simThroughputCase{
		{
			// The reference busy case: full 16-thread HPL on the hybrid
			// Raptor Lake, every tick doing per-CPU work. This is the
			// ratio the BENCH trajectory gates on.
			name:  "hpl-pcores",
			build: buildHPL,
			rebuild: func(s *sim.Machine) bool {
				return s.Sched.Quiescent() // HPL finished and was reaped
			},
		},
		{
			// The settle protocol: an idle Raptor Lake cooling between
			// runs — the span the event core batches hardest.
			name:    "settle-idle",
			build:   idle(hw.RaptorLake),
			rebuild: func(*sim.Machine) bool { return false },
		},
		{
			// The big.LITTLE board idle: small core count, idle-heavy.
			name:    "biglittle-idle",
			build:   idle(hw.OrangePi800),
			rebuild: func(*sim.Machine) bool { return false },
		},
	}
}

// BenchmarkFleetThroughput is the headline fleet benchmark behind
// BENCH_7.json: total simulated machine-seconds completed per
// wall-clock second when a whole generated fleet — default template
// mix, staggered cold-starts, chaos plans on a quarter of the machines
// — runs on the bounded worker pool. Each iteration generates and runs
// a fresh fleet with a distinct seed so steady-state throughput, not a
// warmed cache, is what's measured.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("machines=%d", n), func(b *testing.B) {
			var simSec float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fleet.Generate(fleet.GenConfig{
					Machines:   n,
					Seed:       int64(i) + 1,
					StaggerSec: 0.5,
					Chaos:      &fleet.ChaosConfig{IncidentRate: 0.25},
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := fleet.Run(context.Background(), f, fleet.RunConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Completed != n {
					b.Fatalf("%d/%d machines completed", rep.Completed, n)
				}
				simSec += rep.MachineSimSec
			}
			b.StopTimer()
			if wall := b.Elapsed().Seconds(); wall > 0 {
				b.ReportMetric(simSec/wall, "machine-sim-s/wall-s")
			}
		})
	}
}

// BenchmarkSimThroughput is the headline single-machine simulator
// benchmark: simulated seconds advanced per wall-clock second (the
// "sim-s/wall-s" metric) on each reference shape. BENCH_6.json commits
// the event-vs-legacy-tick trajectory recorded before the tick loop was
// deleted; the recorded figures remain the gate TestBenchTrajectory
// enforces.
func BenchmarkSimThroughput(b *testing.B) {
	for _, tc := range simThroughputCases() {
		b.Run(tc.name+"/event", func(b *testing.B) {
			s := tc.build()
			tick := s.Tick()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tc.rebuild(s) {
					b.StopTimer()
					s = tc.build()
					b.StartTimer()
				}
				s.Step()
			}
			b.StopTimer()
			if wall := b.Elapsed().Seconds(); wall > 0 {
				b.ReportMetric(float64(b.N)*tick/wall, "sim-s/wall-s")
			}
		})
	}
}

// httpObsBenchServer builds a telemetry server over a store seeded with
// enough points that /query does representative marshalling work.
func httpObsBenchServer() *telemetry.Server {
	st := telemetry.NewStore(telemetry.Config{Capacity: 1024})
	for i := 0; i < 512; i++ {
		st.Append(telemetry.Key{Machine: "mach", Series: "power_w"}, float64(i), 40+float64(i%7))
	}
	return telemetry.NewServer(st, 0)
}

// httpObsNs drives GET requests straight into the handler (no network)
// and returns ns per request.
func httpObsNs(b *testing.B, h http.Handler, target string) float64 {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// BenchmarkHTTPObsOverhead measures what the serving-path observer adds
// to a request: the same telemetry server driven bare
// (UninstrumentedHandler) and instrumented (Handler, the production
// composition). The instrumented/bare ratio is reported as a benchmark
// metric and gated at <= 1.05x by the recorded overhead_ratio in
// BENCH_10.json, mirroring the spantrace/profiler overhead discipline.
func BenchmarkHTTPObsOverhead(b *testing.B) {
	const target = "/query?machine=mach&series=power_w&agg=1"
	var bareNs, instNs float64
	b.Run("bare", func(b *testing.B) {
		bareNs = httpObsNs(b, httpObsBenchServer().UninstrumentedHandler(), target)
	})
	b.Run("instrumented", func(b *testing.B) {
		instNs = httpObsNs(b, httpObsBenchServer().Handler(), target)
		if bareNs > 0 {
			b.ReportMetric(instNs/bareNs, "x-bare")
		}
	})
	if bareNs > 0 && printHeader(b, "httpobs-ovh", "Serving-path observer overhead", "") {
		fmt.Printf("request ns: bare %.0f, instrumented %.0f\n", bareNs, instNs)
		fmt.Printf("instrumented/bare %.3f (acceptance: <= 1.05)\n", instNs/bareNs)
	}
}
