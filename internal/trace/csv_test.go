package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func sampleTrace(t *testing.T) []Sample {
	t.Helper()
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	s.Spawn(workload.NewSpin("w", 10), hw.NewCPUSet(0))
	r := NewRecorder(s, 1)
	r.RunUntil(func() bool { return false }, 6)
	return r.Samples()
}

func TestCSVRoundTrip(t *testing.T) {
	samples := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 24, samples); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(samples) {
		t.Fatalf("round trip lost samples: %d vs %d", len(parsed), len(samples))
	}
	for i := range samples {
		if math.Abs(parsed[i].TimeSec-samples[i].TimeSec) > 0.001 {
			t.Fatalf("sample %d time %g vs %g", i, parsed[i].TimeSec, samples[i].TimeSec)
		}
		if math.Abs(parsed[i].PowerW-samples[i].PowerW) > 0.001 {
			t.Fatalf("sample %d power %g vs %g", i, parsed[i].PowerW, samples[i].PowerW)
		}
		if len(parsed[i].FreqMHz) != 24 {
			t.Fatalf("sample %d has %d cpus", i, len(parsed[i].FreqMHz))
		}
		if math.Abs(parsed[i].FreqMHz[0]-samples[i].FreqMHz[0]) > 0.001 {
			t.Fatalf("sample %d cpu0 freq %g vs %g", i, parsed[i].FreqMHz[0], samples[i].FreqMHz[0])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n1,2\n",
		"time_s,cpu0_mhz,temp_c,energy_j,power_w\n", // missing wall_w
		"time_s,cpu0_mhz,temp_c,energy_j,power_w,wall_w\n1,2,3\n",
		"time_s,cpu0_mhz,temp_c,energy_j,power_w,wall_w\nx,2,3,4,5,6\n",
		// Strict header validation: the schema is positional.
		"time_s,cpu1_mhz,cpu0_mhz,temp_c,energy_j,power_w,wall_w\n1,2,3,4,5,6,7\n", // out of order
		"time_s,cpu0_mhz,cpu2_mhz,temp_c,energy_j,power_w,wall_w\n1,2,3,4,5,6,7\n", // gap in numbering
		"time_s,cpu0_mhz,energy_j,temp_c,power_w,wall_w\n1,2,3,4,5,6\n",            // swapped fixed columns
		"time_s,cpu0_mhz,temp_c,energy_j,power_w,wall_w,extra\n1,2,3,4,5,6,7\n",    // trailing junk column
		"time_s,freq_mhz,temp_c,energy_j,power_w,wall_w\n1,2,3,4,5,6\n",            // non-schema cpu column
	}
	for _, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ParseCSV accepted %q", c)
		}
	}
}

func TestCSVZeroSamples(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 4, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ParseCSV(&buf)
	if err != nil {
		t.Fatalf("header-only trace rejected: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("parsed %d samples from an empty trace", len(out))
	}
}

// TestCSVNonFinite pins the serialization of non-finite values: a recorder
// bug that produces NaN or Inf must survive the round trip verbatim (so it
// is visible downstream) rather than being silently laundered into zeros.
func TestCSVNonFinite(t *testing.T) {
	in := []Sample{{
		TimeSec: 0,
		FreqMHz: []float64{math.NaN(), math.Inf(1)},
		TempC:   math.Inf(-1),
		EnergyJ: 1,
		PowerW:  math.NaN(),
		WallW:   2,
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 2, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := out[0]
	if !math.IsNaN(s.FreqMHz[0]) || !math.IsInf(s.FreqMHz[1], 1) {
		t.Errorf("freqs round-tripped to %v", s.FreqMHz)
	}
	if !math.IsInf(s.TempC, -1) || !math.IsNaN(s.PowerW) {
		t.Errorf("temp/power round-tripped to %v/%v", s.TempC, s.PowerW)
	}
	if s.EnergyJ != 1 || s.WallW != 2 {
		t.Errorf("finite fields corrupted: %+v", s)
	}
}

// TestCSVRaggedFreq pins WriteCSV's handling of samples whose FreqMHz
// length disagrees with ncpu: short samples are zero-padded, long ones
// truncated, and either way the file stays rectangular and parseable.
func TestCSVRaggedFreq(t *testing.T) {
	in := []Sample{
		{TimeSec: 0, FreqMHz: []float64{1000}},             // shorter than ncpu
		{TimeSec: 1, FreqMHz: []float64{1100, 1200, 1300}}, // longer than ncpu
		{TimeSec: 2, FreqMHz: nil},                         // no frequencies at all
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 2, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d samples, want 3", len(out))
	}
	for i, s := range out {
		if len(s.FreqMHz) != 2 {
			t.Fatalf("sample %d has %d cpu columns, want 2", i, len(s.FreqMHz))
		}
	}
	if out[0].FreqMHz[0] != 1000 || out[0].FreqMHz[1] != 0 {
		t.Errorf("short sample not zero-padded: %v", out[0].FreqMHz)
	}
	if out[1].FreqMHz[0] != 1100 || out[1].FreqMHz[1] != 1200 {
		t.Errorf("long sample not truncated to ncpu: %v", out[1].FreqMHz)
	}
	if out[2].FreqMHz[0] != 0 || out[2].FreqMHz[1] != 0 {
		t.Errorf("nil freq sample not zero-filled: %v", out[2].FreqMHz)
	}
}

func TestSummarize(t *testing.T) {
	samples := []Sample{
		{TimeSec: 0, FreqMHz: []float64{1000, 2000}, TempC: 30, PowerW: 999, EnergyJ: 0, WallW: 50},
		{TimeSec: 1, FreqMHz: []float64{3000, 2000}, TempC: 42, PowerW: 60, EnergyJ: 60, WallW: 70},
		{TimeSec: 2, FreqMHz: []float64{5000, 2000}, TempC: 40, PowerW: 70, EnergyJ: 130, WallW: 80},
	}
	sum := Summarize(samples)
	if sum.Samples != 3 || sum.DurationSec != 2 {
		t.Fatalf("extent: %+v", sum)
	}
	// First sample's power (999, no energy delta) must be excluded.
	if sum.MeanPowerW != 65 || sum.PeakPowerW != 70 {
		t.Fatalf("power summary: %+v", sum)
	}
	if sum.EnergyJ != 130 || sum.MaxTempC != 42 {
		t.Fatalf("energy/temp: %+v", sum)
	}
	if sum.MedianFreqMHz[0] != 3000 || sum.MedianFreqMHz[1] != 2000 {
		t.Fatalf("medians: %v", sum.MedianFreqMHz)
	}
	if got := Summarize(nil); got.Samples != 0 {
		t.Fatal("empty summarize")
	}
}

// Property: WriteCSV/ParseCSV round-trips arbitrary bounded sample values
// to millidigit precision.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(rows []struct {
		T, F0, F1, Temp, E, P, W uint16
	}) bool {
		if len(rows) == 0 {
			return true
		}
		var in []Sample
		for i, r := range rows {
			in = append(in, Sample{
				TimeSec: float64(i),
				FreqMHz: []float64{float64(r.F0), float64(r.F1)},
				TempC:   float64(r.Temp) / 100,
				EnergyJ: float64(r.E),
				PowerW:  float64(r.P) / 10,
				WallW:   float64(r.W) / 10,
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, 2, in); err != nil {
			return false
		}
		out, err := ParseCSV(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if math.Abs(out[i].TempC-in[i].TempC) > 0.001 ||
				math.Abs(out[i].PowerW-in[i].PowerW) > 0.001 ||
				out[i].FreqMHz[1] != in[i].FreqMHz[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
