package trace

import (
	"math"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/stats"
	"hetpapi/internal/workload"
)

func TestRecorderSamplesAtPeriod(t *testing.T) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	spin := workload.NewSpin("w", 100)
	s.Spawn(spin, hw.NewCPUSet(0))
	r := NewRecorder(s, 1.0)
	r.RunUntil(func() bool { return false }, 10.5)
	got := len(r.Samples())
	if got < 10 || got > 12 {
		t.Fatalf("collected %d samples over 10.5 s at 1 Hz", got)
	}
	for i := 1; i < got; i++ {
		dt := r.Samples()[i].TimeSec - r.Samples()[i-1].TimeSec
		if math.Abs(dt-1.0) > 0.01 {
			t.Fatalf("sample spacing %g, want 1.0", dt)
		}
	}
}

func TestRecorderReadsThroughSysfs(t *testing.T) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	s.Spawn(workload.NewSpin("w", 100), hw.NewCPUSet(0))
	r := NewRecorder(s, 0.5)
	r.RunUntil(func() bool { return false }, 5)
	last := r.Samples()[len(r.Samples())-1]
	if last.FreqMHz[0] < 800 {
		t.Errorf("cpu0 freq = %g", last.FreqMHz[0])
	}
	if last.TempC <= 25 {
		t.Errorf("temp = %g, should have risen", last.TempC)
	}
	if last.EnergyJ <= 0 {
		t.Errorf("energy = %g", last.EnergyJ)
	}
	// Power derived from energy deltas should be near the model's power.
	if last.PowerW <= 0 || math.Abs(last.PowerW-s.Power.PkgPowerW()) > 10 {
		t.Errorf("derived power %g vs model %g", last.PowerW, s.Power.PkgPowerW())
	}
	if last.WallW <= last.PowerW {
		t.Errorf("wall power %g must exceed package power %g", last.WallW, last.PowerW)
	}
}

func TestRecorderOnMachineWithoutRAPL(t *testing.T) {
	s := sim.New(hw.OrangePi800(), sim.DefaultConfig())
	s.Spawn(workload.NewSpin("w", 100), hw.NewCPUSet(4))
	r := NewRecorder(s, 0.5)
	r.RunUntil(func() bool { return false }, 3)
	last := r.Samples()[len(r.Samples())-1]
	if last.EnergyJ != 0 {
		t.Error("no RAPL energy expected on the OrangePi")
	}
	if last.PowerW != last.WallW {
		t.Error("without RAPL the power series is the wall meter")
	}
	if last.WallW <= 0 {
		t.Error("wall meter must read something")
	}
}

func TestRunUntilStopsOnDone(t *testing.T) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	spin := workload.NewSpin("w", 2)
	s.Spawn(spin, hw.NewCPUSet(0))
	r := NewRecorder(s, 1)
	if !r.RunUntil(spin.Done, 60) {
		t.Fatal("RunUntil missed completion")
	}
	if s.Now() > 2.1 {
		t.Fatalf("ran %g s past the workload", s.Now())
	}
}

func TestSeriesExtractors(t *testing.T) {
	samples := []Sample{
		{TimeSec: 0, FreqMHz: []float64{1000, 2000}, TempC: 30, PowerW: 50},
		{TimeSec: 1, FreqMHz: []float64{1100, 2100}, TempC: 31, PowerW: 55},
	}
	if got := FreqSeries(samples, 1); len(got) != 2 || got[1] != 2100 {
		t.Errorf("FreqSeries = %v", got)
	}
	if got := MeanFreqSeries(samples, []int{0, 1}); got[0] != 1500 {
		t.Errorf("MeanFreqSeries = %v", got)
	}
	if got := PowerSeries(samples); got[1] != 55 {
		t.Errorf("PowerSeries = %v", got)
	}
	if got := TempSeries(samples); got[0] != 30 {
		t.Errorf("TempSeries = %v", got)
	}
	if got := FreqSeries(samples, 99); len(got) != 0 {
		t.Errorf("out-of-range cpu must give empty series: %v", got)
	}
}

func TestAverageRuns(t *testing.T) {
	run1 := []Sample{
		{TimeSec: 0, FreqMHz: []float64{1000}, TempC: 30, PowerW: 40, EnergyJ: 0, WallW: 50},
		{TimeSec: 1, FreqMHz: []float64{2000}, TempC: 40, PowerW: 60, EnergyJ: 60, WallW: 70},
	}
	run2 := []Sample{
		{TimeSec: 0, FreqMHz: []float64{3000}, TempC: 50, PowerW: 80, EnergyJ: 0, WallW: 90},
		{TimeSec: 1, FreqMHz: []float64{4000}, TempC: 60, PowerW: 100, EnergyJ: 100, WallW: 110},
		{TimeSec: 2, FreqMHz: []float64{5000}, TempC: 70, PowerW: 120, EnergyJ: 220, WallW: 130},
	}
	avg := AverageRuns([][]Sample{run1, run2})
	if len(avg) != 2 {
		t.Fatalf("averaged length %d, want 2 (shortest run)", len(avg))
	}
	if avg[0].FreqMHz[0] != 2000 || avg[1].FreqMHz[0] != 3000 {
		t.Errorf("freq averaging wrong: %+v", avg)
	}
	if avg[1].TempC != 50 || avg[1].PowerW != 80 {
		t.Errorf("scalar averaging wrong: %+v", avg[1])
	}
	if AverageRuns(nil) != nil {
		t.Error("empty input must give nil")
	}
	if AverageRuns([][]Sample{{}}) != nil {
		t.Error("empty run must give nil")
	}
}

func TestAveragedRunsOfIdenticalSeedsAreIdentical(t *testing.T) {
	collect := func() []Sample {
		s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
		s.Spawn(workload.NewSpin("w", 5), hw.NewCPUSet(0))
		r := NewRecorder(s, 1)
		r.RunUntil(func() bool { return false }, 5)
		return r.Samples()
	}
	a, b := collect(), collect()
	avg := AverageRuns([][]Sample{a, b})
	for i := range avg {
		if math.Abs(avg[i].PowerW-a[i].PowerW) > 1e-9 {
			t.Fatalf("identical runs should average to themselves at %d", i)
		}
	}
	if stats.Mean(PowerSeries(avg)) <= 0 {
		t.Fatal("power series empty")
	}
}
