package trace

import (
	"crypto/sha256"
	"encoding/hex"
)

// DigestSamples returns a stable hex digest of a trace: the SHA-256 of the
// samples rendered through the canonical CSV schema at ncpu columns. Two
// traces digest equal exactly when WriteCSV would emit identical bytes
// (values compare at the schema's millidigit precision), which makes the
// digest the unit of golden-trace regression testing and determinism
// checks: any behavioral drift in the frequency, thermal, energy or power
// series changes it.
func DigestSamples(ncpu int, samples []Sample) string {
	h := sha256.New()
	// sha256.Write never fails; WriteCSV only propagates writer errors.
	_ = WriteCSV(h, ncpu, samples)
	return hex.EncodeToString(h.Sum(nil))
}
