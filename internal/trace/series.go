package trace

// Series export: explode a recorded trace into named per-column series so
// downstream consumers (the telemetry store, plotting, ad-hoc analysis)
// can address individual signals by the same names the CSV schema uses,
// instead of re-deriving column positions.

// Series explodes samples into named value series keyed by the ColumnNames
// schema: "time_s", "cpu<N>_mhz" per CPU, "temp_c", "energy_j", "power_w"
// and "wall_w". ncpu fixes the frequency columns (samples with fewer
// entries are zero-padded, matching WriteCSV). Every series has exactly
// len(samples) entries.
func Series(ncpu int, samples []Sample) map[string][]float64 {
	cols := ColumnNames(ncpu)
	out := make(map[string][]float64, len(cols))
	for _, c := range cols {
		out[c] = make([]float64, 0, len(samples))
	}
	for _, s := range samples {
		out["time_s"] = append(out["time_s"], s.TimeSec)
		for cpu := 0; cpu < ncpu; cpu++ {
			var f float64
			if cpu < len(s.FreqMHz) {
				f = s.FreqMHz[cpu]
			}
			out[cols[1+cpu]] = append(out[cols[1+cpu]], f)
		}
		out["temp_c"] = append(out["temp_c"], s.TempC)
		out["energy_j"] = append(out["energy_j"], s.EnergyJ)
		out["power_w"] = append(out["power_w"], s.PowerW)
		out["wall_w"] = append(out["wall_w"], s.WallW)
	}
	return out
}
