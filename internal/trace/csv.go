package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV round-trip for monitoring traces: the mon_hpl.py artifact writes one
// raw CSV per run and process_runs.py consumes them into an averaged run.
// The schema is one row per sample:
//
//	time_s, cpu0_mhz, ..., cpuN_mhz, temp_c, energy_j, power_w, wall_w

// ColumnNames returns the canonical schema columns for an ncpu-CPU trace,
// in file order: time_s, cpu0_mhz..cpuN_mhz, temp_c, energy_j, power_w,
// wall_w. The CSV writer, the parser's header validation and the telemetry
// series naming all derive from this one list.
func ColumnNames(ncpu int) []string {
	cols := make([]string, 0, ncpu+5)
	cols = append(cols, "time_s")
	for cpu := 0; cpu < ncpu; cpu++ {
		cols = append(cols, fmt.Sprintf("cpu%d_mhz", cpu))
	}
	return append(cols, "temp_c", "energy_j", "power_w", "wall_w")
}

// WriteCSV emits samples in the monitoring schema. ncpu fixes the column
// count (samples with fewer frequency entries are zero-padded).
func WriteCSV(w io.Writer, ncpu int, samples []Sample) error {
	cw := csv.NewWriter(w)
	header := ColumnNames(ncpu)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range samples {
		row := []string{formatF(s.TimeSec)}
		for cpu := 0; cpu < ncpu; cpu++ {
			var f float64
			if cpu < len(s.FreqMHz) {
				f = s.FreqMHz[cpu]
			}
			row = append(row, formatF(f))
		}
		row = append(row, formatF(s.TempC), formatF(s.EnergyJ), formatF(s.PowerW), formatF(s.WallW))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(f float64) string { return strconv.FormatFloat(f, 'f', 3, 64) }

// ParseCSV reads a trace written by WriteCSV (or the monhpl tool) back
// into samples.
func ParseCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	header := rows[0]
	if len(header) < 5 || header[0] != "time_s" {
		return nil, fmt.Errorf("trace: unrecognized header %v", header)
	}
	// The schema is positional: exactly cpu0_mhz..cpuN-1_mhz in order,
	// then the four fixed columns. Reject anything else rather than guess.
	ncpu := len(header) - 5
	for i := 0; i < ncpu; i++ {
		if want := fmt.Sprintf("cpu%d_mhz", i); header[1+i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", 1+i, header[1+i], want)
		}
	}
	for i, want := range []string{"temp_c", "energy_j", "power_w", "wall_w"} {
		if got := header[1+ncpu+i]; got != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", 1+ncpu+i, got, want)
		}
	}
	wantCols := 1 + ncpu + 4
	var out []Sample
	for i, row := range rows[1:] {
		if len(row) != wantCols {
			return nil, fmt.Errorf("trace: row %d has %d columns, want %d", i+1, len(row), wantCols)
		}
		vals := make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d column %q: %v", i+1, header[j], err)
			}
			vals[j] = v
		}
		s := Sample{TimeSec: vals[0], FreqMHz: vals[1 : 1+ncpu]}
		s.TempC = vals[1+ncpu]
		s.EnergyJ = vals[2+ncpu]
		s.PowerW = vals[3+ncpu]
		s.WallW = vals[4+ncpu]
		out = append(out, s)
	}
	return out, nil
}

// Summary condenses a trace for reporting, the way process_runs.py's
// outputs feed the paper's figures.
type Summary struct {
	// Samples and DurationSec describe the trace extent.
	Samples     int
	DurationSec float64
	// MeanPowerW / PeakPowerW summarize the package power series (first
	// sample excluded: it has no energy delta).
	MeanPowerW float64
	PeakPowerW float64
	// EnergyJ is the final cumulative energy reading.
	EnergyJ float64
	// MaxTempC is the hottest zone sample.
	MaxTempC float64
	// MedianFreqMHz holds the per-CPU median frequency.
	MedianFreqMHz []float64
}

// Summarize computes the summary of a trace.
func Summarize(samples []Sample) Summary {
	var sum Summary
	sum.Samples = len(samples)
	if len(samples) == 0 {
		return sum
	}
	sum.DurationSec = samples[len(samples)-1].TimeSec - samples[0].TimeSec
	sum.EnergyJ = samples[len(samples)-1].EnergyJ
	ncpu := len(samples[0].FreqMHz)
	sum.MedianFreqMHz = make([]float64, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		sum.MedianFreqMHz[cpu] = median(FreqSeries(samples, cpu))
	}
	power := PowerSeries(samples)
	if len(power) > 1 {
		power = power[1:]
	}
	var total float64
	for _, p := range power {
		total += p
		if p > sum.PeakPowerW {
			sum.PeakPowerW = p
		}
	}
	if len(power) > 0 {
		sum.MeanPowerW = total / float64(len(power))
	}
	for _, s := range samples {
		if s.TempC > sum.MaxTempC {
			sum.MaxTempC = s.TempC
		}
	}
	return sum
}

// median avoids importing internal/stats here (trace must stay low in the
// dependency stack for the exp package).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
