// Package trace implements the paper's monitoring methodology (the
// mon_hpl.py artifact): a poller that samples per-core frequency, thermal
// zone temperature and RAPL energy at a fixed rate (1 Hz in the paper)
// while a workload runs, plus the multi-run averaging used to produce the
// figures.
//
// Fidelity note: the recorder reads its values through the machine's
// synthetic sysfs tree (scaling_cur_freq, thermal_zoneN/temp,
// intel-rapl:0/energy_uj), exactly the files the paper's Python script
// polls — not through simulator internals. Wall power (the WattsUpPro on
// the OrangePi, which has no RAPL) is the one value read from the external
// meter model.
package trace

import (
	"fmt"
	"strconv"

	"hetpapi/internal/sim"
)

// Sample is one polling interval's readings.
type Sample struct {
	// TimeSec is the simulated time of the sample, relative to the
	// recorder's start.
	TimeSec float64
	// FreqMHz is the per-logical-CPU frequency.
	FreqMHz []float64
	// TempC is the package thermal zone temperature.
	TempC float64
	// EnergyJ is the cumulative RAPL package energy (0 on machines
	// without RAPL).
	EnergyJ float64
	// PowerW is the average package power over the last interval, derived
	// from the energy counter delta the way monitoring scripts do. On
	// machines without RAPL it is the wall meter power instead.
	PowerW float64
	// WallW is the AC-side wall power.
	WallW float64
}

// Recorder polls a machine at a fixed period while stepping the
// simulation.
type Recorder struct {
	s       *sim.Machine
	period  float64
	samples []Sample

	started    bool
	startTime  float64
	lastSample float64
	lastEnergy float64
}

// NewRecorder returns a recorder polling every periodSec seconds (the
// paper uses 1 Hz).
func NewRecorder(s *sim.Machine, periodSec float64) *Recorder {
	if periodSec <= 0 {
		periodSec = 1
	}
	return &Recorder{s: s, period: periodSec}
}

// Samples returns the collected samples.
func (r *Recorder) Samples() []Sample { return r.samples }

// RunUntil steps the simulation until done returns true or maxSeconds
// elapse, sampling on the way; it reports whether done was reached. The
// first sample is taken immediately.
func (r *Recorder) RunUntil(done func() bool, maxSeconds float64) bool {
	if !r.started {
		r.started = true
		r.startTime = r.s.Now()
		r.lastEnergy = r.readEnergyJ()
		r.take()
		r.lastSample = r.s.Now()
	}
	deadline := r.s.Now() + maxSeconds
	for r.s.Now() < deadline {
		if done() {
			return true
		}
		r.s.Step()
		if r.s.Now()-r.lastSample >= r.period-1e-12 {
			r.take()
			r.lastSample = r.s.Now()
		}
	}
	return done()
}

func (r *Recorder) readSysfsInt(path string) (float64, bool) {
	raw, err := r.s.FS.ReadFile(path)
	if err != nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (r *Recorder) readEnergyJ() float64 {
	uj, ok := r.readSysfsInt("sys/class/powercap/intel-rapl:0/energy_uj")
	if !ok {
		return 0
	}
	return uj / 1e6
}

func (r *Recorder) take() {
	m := r.s.HW
	smp := Sample{
		TimeSec: r.s.Now() - r.startTime,
		FreqMHz: make([]float64, m.NumCPUs()),
	}
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		khz, ok := r.readSysfsInt(fmt.Sprintf("sys/devices/system/cpu/cpu%d/cpufreq/scaling_cur_freq", cpu))
		if ok {
			smp.FreqMHz[cpu] = khz / 1000
		}
	}
	if mc, ok := r.readSysfsInt(fmt.Sprintf("sys/class/thermal/thermal_zone%d/temp", m.Thermal.ZoneIndex)); ok {
		smp.TempC = mc / 1000
	}
	smp.WallW = r.s.Power.WallPowerW()
	if m.Power.HasRAPL {
		smp.EnergyJ = r.readEnergyJ()
		dt := r.s.Now() - r.lastSample
		if len(r.samples) > 0 && dt > 0 {
			smp.PowerW = (smp.EnergyJ - r.lastEnergy) / dt
		} else {
			smp.PowerW = r.s.Power.PkgPowerW()
		}
		r.lastEnergy = smp.EnergyJ
	} else {
		smp.PowerW = smp.WallW
	}
	r.samples = append(r.samples, smp)
}

// FreqSeries extracts one CPU's frequency series from samples.
func FreqSeries(samples []Sample, cpu int) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		if cpu < len(s.FreqMHz) {
			out = append(out, s.FreqMHz[cpu])
		}
	}
	return out
}

// MeanFreqSeries extracts the mean frequency over a CPU set per sample.
func MeanFreqSeries(samples []Sample, cpus []int) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		var sum float64
		n := 0
		for _, cpu := range cpus {
			if cpu < len(s.FreqMHz) {
				sum += s.FreqMHz[cpu]
				n++
			}
		}
		if n > 0 {
			out = append(out, sum/float64(n))
		}
	}
	return out
}

// PowerSeries extracts the package power series.
func PowerSeries(samples []Sample) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		out = append(out, s.PowerW)
	}
	return out
}

// TempSeries extracts the temperature series.
func TempSeries(samples []Sample) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		out = append(out, s.TempC)
	}
	return out
}

// AverageRuns aligns several runs' sample series by index and averages
// them elementwise, producing the "averaged run" the paper's
// process_runs.py builds from N identical runs. The result is truncated to
// the shortest run.
func AverageRuns(runs [][]Sample) []Sample {
	if len(runs) == 0 {
		return nil
	}
	minLen := len(runs[0])
	for _, r := range runs[1:] {
		if len(r) < minLen {
			minLen = len(r)
		}
	}
	if minLen == 0 {
		return nil
	}
	ncpu := len(runs[0][0].FreqMHz)
	out := make([]Sample, minLen)
	for i := 0; i < minLen; i++ {
		avg := Sample{TimeSec: runs[0][i].TimeSec, FreqMHz: make([]float64, ncpu)}
		for _, r := range runs {
			s := r[i]
			for c := 0; c < ncpu && c < len(s.FreqMHz); c++ {
				avg.FreqMHz[c] += s.FreqMHz[c]
			}
			avg.TempC += s.TempC
			avg.EnergyJ += s.EnergyJ
			avg.PowerW += s.PowerW
			avg.WallW += s.WallW
		}
		n := float64(len(runs))
		for c := range avg.FreqMHz {
			avg.FreqMHz[c] /= n
		}
		avg.TempC /= n
		avg.EnergyJ /= n
		avg.PowerW /= n
		avg.WallW /= n
		out[i] = avg
	}
	return out
}
