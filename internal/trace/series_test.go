package trace

import "testing"

func TestColumnNames(t *testing.T) {
	got := ColumnNames(2)
	want := []string{"time_s", "cpu0_mhz", "cpu1_mhz", "temp_c", "energy_j", "power_w", "wall_w"}
	if len(got) != len(want) {
		t.Fatalf("ColumnNames(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSeriesExport(t *testing.T) {
	samples := []Sample{
		{TimeSec: 0, FreqMHz: []float64{1000, 2000}, TempC: 40, EnergyJ: 0, PowerW: 5, WallW: 8},
		{TimeSec: 1, FreqMHz: []float64{1100}, TempC: 41, EnergyJ: 6, PowerW: 6, WallW: 9},
	}
	s := Series(2, samples)
	if len(s) != 7 {
		t.Fatalf("got %d series, want 7", len(s))
	}
	for name, vs := range s {
		if len(vs) != len(samples) {
			t.Fatalf("series %q has %d entries, want %d", name, len(vs), len(samples))
		}
	}
	if s["cpu0_mhz"][1] != 1100 || s["cpu1_mhz"][1] != 0 {
		t.Fatalf("frequency padding wrong: cpu0=%v cpu1=%v", s["cpu0_mhz"], s["cpu1_mhz"])
	}
	if s["time_s"][1] != 1 || s["temp_c"][0] != 40 || s["power_w"][1] != 6 || s["wall_w"][0] != 8 || s["energy_j"][1] != 6 {
		t.Fatalf("scalar series wrong: %v", s)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := Series(1, nil)
	if len(s) != 6 {
		t.Fatalf("got %d series, want 6", len(s))
	}
	for name, vs := range s {
		if len(vs) != 0 {
			t.Fatalf("series %q not empty", name)
		}
	}
}
