package events

import (
	"testing"
	"testing/quick"
)

func TestRegistryContents(t *testing.T) {
	want := []string{"adl_glc", "adl_grt", "adl_imc", "arm_cortex_a510", "arm_cortex_a53",
		"arm_cortex_a710", "arm_cortex_a72", "arm_cortex_x2", "perf", "rapl", "skl"}
	got := PMUNames()
	if len(got) != len(want) {
		t.Fatalf("PMUNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PMUNames = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		if LookupPMU(n) == nil {
			t.Errorf("LookupPMU(%q) = nil", n)
		}
	}
	if LookupPMU("nope") != nil {
		t.Error("LookupPMU(nope) should be nil")
	}
}

func TestLookupEvent(t *testing.T) {
	d := AdlGlc.Lookup("INST_RETIRED")
	if d == nil {
		t.Fatal("adl_glc INST_RETIRED missing")
	}
	um := d.DefaultUmask()
	if um == nil || um.Name != "ANY" {
		t.Fatalf("default umask = %v, want ANY", um)
	}
	if um.Kind != KindInstructions {
		t.Errorf("INST_RETIRED:ANY kind = %v", um.Kind)
	}
	if d.Umask("MACRO_FUSED") == nil {
		t.Error("MACRO_FUSED umask missing")
	}
	if d.Umask("NOPE") != nil {
		t.Error("unknown umask should be nil")
	}
	if AdlGlc.Lookup("NOT_AN_EVENT") != nil {
		t.Error("unknown event should be nil")
	}
}

func TestTopdownOnlyOnPCore(t *testing.T) {
	// The paper's canonical example: Intel topdown events exist only on
	// the P-core PMU.
	if AdlGlc.Lookup("TOPDOWN") == nil {
		t.Error("adl_glc must have TOPDOWN")
	}
	if AdlGrt.Lookup("TOPDOWN") != nil {
		t.Error("adl_grt must NOT have TOPDOWN")
	}
}

func TestA53SmallerThanA72(t *testing.T) {
	if ArmCortexA53.Lookup("INST_RETIRED") == nil || ArmCortexA72.Lookup("INST_RETIRED") == nil {
		t.Fatal("both ARM PMUs need INST_RETIRED")
	}
	if ArmCortexA72.Lookup("STALL_BACKEND") == nil {
		t.Error("A72 should have STALL_BACKEND")
	}
	if ArmCortexA53.Lookup("STALL_BACKEND") != nil {
		t.Error("A53 should not have STALL_BACKEND")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, pmuName := range PMUNames() {
		p := LookupPMU(pmuName)
		for _, d := range p.Events {
			if len(d.Umasks) == 0 {
				cfg := Encode(d.Code, 0)
				kind, scale, name, ok := p.Decode(cfg)
				if !ok {
					t.Errorf("%s::%s: decode failed", pmuName, d.Name)
					continue
				}
				if kind != d.Kind || name != d.Name {
					t.Errorf("%s::%s: decode = (%v, %q)", pmuName, d.Name, kind, name)
				}
				if scale <= 0 && d.Scale != 0 {
					t.Errorf("%s::%s: scale %g", pmuName, d.Name, scale)
				}
				continue
			}
			for _, u := range d.Umasks {
				cfg := Encode(d.Code, u.Bits)
				kind, scale, _, ok := p.Decode(cfg)
				if !ok {
					t.Errorf("%s::%s:%s: decode failed", pmuName, d.Name, u.Name)
					continue
				}
				// Duplicate encodings keep the first mapping, which must
				// still have the same kind class for sane duplicates.
				_ = kind
				if scale <= 0 {
					t.Errorf("%s::%s:%s: scale %g", pmuName, d.Name, u.Name, scale)
				}
			}
		}
	}
}

func TestDecodeRejectsUnknownConfig(t *testing.T) {
	if _, _, _, ok := AdlGlc.Decode(Encode(0xEE, 0xEE)); ok {
		t.Error("decode accepted a bogus config")
	}
}

func TestEncodeParts(t *testing.T) {
	cfg := Encode(0xC4, 0x11)
	code, um := DecodeParts(cfg)
	if code != 0xC4 || um != 0x11 {
		t.Fatalf("DecodeParts(%#x) = (%#x, %#x)", cfg, code, um)
	}
	// Code and umask must be masked to 8 bits.
	if Encode(0x1C4, 0x211) != Encode(0xC4, 0x11) {
		t.Error("Encode must mask to 8 bits")
	}
}

func TestValueOf(t *testing.T) {
	s := Stats{
		Cycles: 100, RefCycles: 80, Instructions: 250,
		Branches: 40, BranchMisses: 2,
		Loads: 60, Stores: 30,
		L1DRefs: 90, L1DMisses: 9,
		L2Refs: 9, L2Misses: 3,
		LLCRefs: 3, LLCMisses: 1,
		FPScalarD: 5, FP128D: 6, FP256D: 7,
		StallCycles: 20, Slots: 600, Flops: 62,
	}
	cases := []struct {
		k    Kind
		want float64
	}{
		{KindInstructions, 250}, {KindCycles, 100}, {KindRefCycles, 80},
		{KindSlots, 600}, {KindStallCycles, 20},
		{KindBranches, 40}, {KindBranchMisses, 2},
		{KindLoads, 60}, {KindStores, 30}, {KindMemAccess, 90},
		{KindL1DRefs, 90}, {KindL1DMisses, 9},
		{KindL2Refs, 9}, {KindL2Misses, 3},
		{KindLLCRefs, 3}, {KindLLCMisses, 1}, {KindLLCHits, 2},
		{KindFPScalarD, 5}, {KindFP128D, 6}, {KindFP256D, 7},
		{KindBusCycles, 80},
		{KindEnergyPkg, 0}, {KindEnergyCores, 0},
		{KindNone, 0},
	}
	for _, c := range cases {
		if got := ValueOf(s, c.k); got != c.want {
			t.Errorf("ValueOf(%v) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindLLCMisses.String() != "llc-misses" {
		t.Errorf("KindLLCMisses = %q", KindLLCMisses.String())
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind must stringify")
	}
	if !KindEnergyPkg.Energy() || KindCycles.Energy() {
		t.Error("Energy() classification wrong")
	}
}

func TestGenericKinds(t *testing.T) {
	for id := uint64(0); id <= 9; id++ {
		k, scale := GenericKind(id)
		if k == KindNone || scale <= 0 {
			t.Errorf("GenericKind(%d) = (%v, %g)", id, k, scale)
		}
		if GenericName(id) == "" {
			t.Errorf("GenericName(%d) empty", id)
		}
	}
	if k, _ := GenericKind(99); k != KindNone {
		t.Error("unknown generic id must map to KindNone")
	}
	if GenericName(99) != "" {
		t.Error("unknown generic id must have empty name")
	}
}

// Property: Stats.Add is componentwise addition — ValueOf distributes over
// Add for every kind.
func TestStatsAddProperty(t *testing.T) {
	// Build stats from bounded non-negative integers: counters are counts,
	// and unconstrained float generation explores magnitudes (1e308) where
	// float addition loses associativity for reasons unrelated to Add.
	mk := func(v [19]uint32) Stats {
		return Stats{
			Cycles: float64(v[0]), RefCycles: float64(v[1]), Instructions: float64(v[2]),
			Branches: float64(v[3]), BranchMisses: float64(v[4]),
			Loads: float64(v[5]), Stores: float64(v[6]),
			L1DRefs: float64(v[7]), L1DMisses: float64(v[8]),
			L2Refs: float64(v[9]), L2Misses: float64(v[10]),
			LLCRefs: float64(v[11]), LLCMisses: float64(v[12]),
			FPScalarD: float64(v[13]), FP128D: float64(v[14]), FP256D: float64(v[15]),
			StallCycles: float64(v[16]), Slots: float64(v[17]), Flops: float64(v[18]),
		}
	}
	f := func(av, bv [19]uint32) bool {
		a, b := mk(av), mk(bv)
		sum := a
		sum.Add(b)
		for k := Kind(1); k < numKinds; k++ {
			if k.Energy() {
				continue
			}
			got := ValueOf(sum, k)
			want := ValueOf(a, k) + ValueOf(b, k)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			tol := 1e-9 * (1 + abs(want))
			if diff > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: every event reachable by name is decodable from its encoding.
func TestEveryNamedEventDecodes(t *testing.T) {
	for _, pmuName := range PMUNames() {
		p := LookupPMU(pmuName)
		for _, d := range p.Events {
			um := d.DefaultUmask()
			var cfg uint64
			if um != nil {
				cfg = Encode(d.Code, um.Bits)
			} else {
				cfg = Encode(d.Code, 0)
			}
			if _, _, _, ok := p.Decode(cfg); !ok {
				t.Errorf("%s::%s: default encoding %#x does not decode", pmuName, d.Name, cfg)
			}
		}
	}
}

func TestSoftwareKindClassification(t *testing.T) {
	for _, k := range []Kind{KindSWCpuClock, KindSWTaskClock, KindSWPageFaults,
		KindSWContextSwitches, KindSWCpuMigrations} {
		if !k.Software() {
			t.Errorf("%v must classify as software", k)
		}
		if k.Energy() {
			t.Errorf("%v must not classify as energy", k)
		}
		if k.String() == "" || k.String()[:3] != "sw-" {
			t.Errorf("%v string = %q", k, k.String())
		}
		if ValueOf(Stats{Instructions: 1e9}, k) != 0 {
			t.Errorf("%v must not be serviced by ValueOf", k)
		}
	}
	if KindCycles.Software() {
		t.Error("hardware kind classified as software")
	}
	d := PerfSoftware.Lookup("CONTEXT_SWITCHES")
	if d == nil || d.Kind != KindSWContextSwitches {
		t.Fatalf("software table lookup: %+v", d)
	}
	if d.DefaultUmask() != nil {
		t.Error("software events have no umasks")
	}
}

func TestUncoreTable(t *testing.T) {
	d := AdlImc.Lookup("UNC_M_CAS_COUNT")
	if d == nil {
		t.Fatal("IMC CAS event missing")
	}
	rd := d.Umask("RD")
	if rd == nil || rd.Kind != KindLLCMisses || rd.Scale <= 1.0 {
		t.Fatalf("CAS RD umask = %+v", rd)
	}
	wr := d.Umask("WR")
	if wr == nil || wr.Scale >= rd.Scale {
		t.Fatal("write CAS must scale below read CAS")
	}
	if AdlImc.Lookup("UNC_M_ACT_COUNT") == nil || AdlImc.Lookup("UNC_M_PRE_COUNT") == nil {
		t.Error("IMC activation/precharge events missing")
	}
}
