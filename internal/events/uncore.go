package events

// AdlImc is the Alder/Raptor Lake integrated memory controller uncore PMU.
// Its events are package-scope: the kernel accepts them only CPU-wide, and
// they observe memory traffic from every core regardless of type — which
// is why, once EventSets can span perf PMUs (section IV.E of the paper),
// the separate PAPI perf_event_uncore component becomes unnecessary
// (section V.3).
//
// The counts derive from last-level-cache miss traffic: a DRAM read CAS is
// issued for LLC misses plus prefetch overshoot, and writes follow the
// dirty-eviction ratio.
var AdlImc = register(&PMU{
	Name: "adl_imc",
	Desc: "Intel Alder Lake integrated memory controller (uncore)",
	Events: []Def{
		{
			Name: "UNC_M_CAS_COUNT", Code: 0x04,
			Desc: "DRAM CAS commands issued",
			Umasks: []Umask{
				{Name: "RD", Bits: 0x01, Desc: "Read CAS commands", Kind: KindLLCMisses, Scale: 1.18, Default: true},
				{Name: "WR", Bits: 0x02, Desc: "Write CAS commands", Kind: KindLLCMisses, Scale: 0.42},
				{Name: "ALL", Bits: 0x03, Desc: "All CAS commands", Kind: KindLLCMisses, Scale: 1.60},
			},
		},
		{
			Name: "UNC_M_ACT_COUNT", Code: 0x01,
			Desc: "DRAM row activations",
			Kind: KindLLCMisses, Scale: 0.30,
		},
		{
			Name: "UNC_M_PRE_COUNT", Code: 0x02,
			Desc: "DRAM precharge commands",
			Kind: KindLLCMisses, Scale: 0.28,
		},
	},
})
