package events

// Rapl is the Intel Running Average Power Limit energy PMU ("power" in
// kernel naming). Its events are package-scope: the kernel only accepts
// them as CPU-wide events, one per package, exactly like the real
// perf_event power PMU. Counter values are expressed in RAPL energy units
// (PowerSpec.EnergyUnitJ joules per count).
var Rapl = register(&PMU{
	Name: "rapl",
	Desc: "Intel RAPL energy counters",
	Events: []Def{
		{Name: "ENERGY_CORES", Code: 0x01, Desc: "Energy consumed by all cores", Kind: KindEnergyCores},
		{Name: "ENERGY_PKG", Code: 0x02, Desc: "Energy consumed by the package", Kind: KindEnergyPkg},
		{Name: "ENERGY_RAM", Code: 0x03, Desc: "Energy consumed by DRAM", Kind: KindEnergyRAM},
		{Name: "ENERGY_PSYS", Code: 0x05, Desc: "Energy consumed by the platform", Kind: KindEnergyPsys},
	},
})
