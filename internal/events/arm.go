package events

// ARM PMUv3 event tables for the Cortex-A72 (big) and Cortex-A53 (LITTLE)
// cores of the RK3399. ARM events are flat event numbers with no unit
// masks; the numbers follow the ARMv8 PMUv3 common event table.
//
// On the RK3399 the per-cluster L2 is the last-level cache, so the L2D
// events double as the LLC quantities used by cache-missrate analyses.

func armv8CommonEvents() []Def {
	return []Def{
		{Name: "SW_INCR", Code: 0x00, Desc: "Software increment", Kind: KindInstructions, Scale: 0},
		{Name: "L1I_CACHE_REFILL", Code: 0x01, Desc: "L1 instruction cache refill", Kind: KindL1DMisses, Scale: 0.05},
		{Name: "L1D_CACHE_REFILL", Code: 0x03, Desc: "L1 data cache refill", Kind: KindL1DMisses},
		{Name: "L1D_CACHE", Code: 0x04, Desc: "L1 data cache access", Kind: KindL1DRefs},
		{Name: "LD_RETIRED", Code: 0x06, Desc: "Load instructions architecturally executed", Kind: KindLoads},
		{Name: "ST_RETIRED", Code: 0x07, Desc: "Store instructions architecturally executed", Kind: KindStores},
		{Name: "INST_RETIRED", Code: 0x08, Desc: "Instructions architecturally executed", Kind: KindInstructions},
		{Name: "EXC_TAKEN", Code: 0x09, Desc: "Exceptions taken", Kind: KindBranches, Scale: 0.0001},
		{Name: "BR_MIS_PRED", Code: 0x10, Desc: "Mispredicted branches", Kind: KindBranchMisses},
		{Name: "CPU_CYCLES", Code: 0x11, Desc: "Processor cycles", Kind: KindCycles},
		{Name: "BR_PRED", Code: 0x12, Desc: "Predictable branches speculatively executed", Kind: KindBranches},
		{Name: "MEM_ACCESS", Code: 0x13, Desc: "Data memory accesses", Kind: KindMemAccess},
		{Name: "L2D_CACHE", Code: 0x16, Desc: "L2 data cache access (LLC on RK3399)", Kind: KindLLCRefs},
		{Name: "L2D_CACHE_REFILL", Code: 0x17, Desc: "L2 data cache refill (LLC miss on RK3399)", Kind: KindLLCMisses},
		{Name: "L2D_CACHE_WB", Code: 0x18, Desc: "L2 data cache write-back", Kind: KindLLCMisses, Scale: 0.4},
		{Name: "BUS_ACCESS", Code: 0x19, Desc: "Bus accesses", Kind: KindLLCMisses, Scale: 1.1},
		{Name: "BUS_CYCLES", Code: 0x1D, Desc: "Bus cycles", Kind: KindBusCycles},
		{Name: "L1D_TLB_REFILL", Code: 0x05, Desc: "L1 data TLB refill", Kind: KindL1DMisses, Scale: 0.03},
		{Name: "L1I_CACHE", Code: 0x14, Desc: "L1 instruction cache access", Kind: KindInstructions, Scale: 0.22},
		{Name: "PC_WRITE_RETIRED", Code: 0x0C, Desc: "Software change of PC, architecturally executed", Kind: KindBranches, Scale: 0.92},
		{Name: "UNALIGNED_LDST_RETIRED", Code: 0x0F, Desc: "Unaligned accesses architecturally executed", Kind: KindMemAccess, Scale: 0.001},
		{Name: "CID_WRITE_RETIRED", Code: 0x0B, Desc: "Context ID writes, architecturally executed", Kind: KindBranches, Scale: 0.00005},
	}
}

// ArmCortexA72 is the big-core PMU of the RK3399.
var ArmCortexA72 = register(&PMU{
	Name: "arm_cortex_a72",
	Desc: "ARM Cortex-A72 (big)",
	Events: append(armv8CommonEvents(),
		// A72 implementation-specific events.
		Def{Name: "BR_RETIRED", Code: 0x21, Desc: "Branches architecturally executed", Kind: KindBranches},
		Def{Name: "BR_MIS_PRED_RETIRED", Code: 0x22, Desc: "Mispredicted branches architecturally executed", Kind: KindBranchMisses},
		Def{Name: "STALL_FRONTEND", Code: 0x23, Desc: "Cycles stalled on frontend", Kind: KindStallCycles, Scale: 0.35},
		Def{Name: "STALL_BACKEND", Code: 0x24, Desc: "Cycles stalled on backend", Kind: KindStallCycles, Scale: 0.65},
	),
})

// ArmCortexA53 is the LITTLE-core PMU of the RK3399. The in-order A53
// implements a smaller event set than the A72 (no retired-branch or stall
// breakdown events), which exercises the "event exists on one core type
// only" paths.
var ArmCortexA53 = register(&PMU{
	Name:   "arm_cortex_a53",
	Desc:   "ARM Cortex-A53 (LITTLE)",
	Events: armv8CommonEvents(),
})
