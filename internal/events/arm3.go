package events

// ARMv9 DynamIQ event tables for the three-core-type machine
// (hw.Dimensity9000): a prime Cortex-X2, big Cortex-A710s and LITTLE
// Cortex-A510s. The paper notes that ARM systems with three core types
// already exist and that "it is plausible even more will be supported
// someday" — the PAPI-side machinery must therefore handle N default
// PMUs, not two.

// ArmCortexX2 is the prime-core PMU of the Dimensity 9000 model.
var ArmCortexX2 = register(&PMU{
	Name: "arm_cortex_x2",
	Desc: "ARM Cortex-X2 (prime)",
	Events: append(armv8CommonEvents(),
		Def{Name: "BR_RETIRED", Code: 0x21, Desc: "Branches architecturally executed", Kind: KindBranches},
		Def{Name: "BR_MIS_PRED_RETIRED", Code: 0x22, Desc: "Mispredicted branches architecturally executed", Kind: KindBranchMisses},
		Def{Name: "STALL_FRONTEND", Code: 0x23, Desc: "Cycles stalled on frontend", Kind: KindStallCycles, Scale: 0.3},
		Def{Name: "STALL_BACKEND", Code: 0x24, Desc: "Cycles stalled on backend", Kind: KindStallCycles, Scale: 0.7},
		Def{Name: "STALL_SLOT", Code: 0x3F, Desc: "Issue slots not occupied", Kind: KindSlots, Scale: 0.25},
		Def{Name: "OP_RETIRED", Code: 0x3A, Desc: "Micro-operations architecturally executed", Kind: KindInstructions, Scale: 1.15},
		Def{Name: "L3D_CACHE", Code: 0x2B, Desc: "L3 data cache access", Kind: KindLLCRefs},
		Def{Name: "L3D_CACHE_REFILL", Code: 0x2A, Desc: "L3 data cache refill", Kind: KindLLCMisses},
	),
})

// ArmCortexA710 is the big-core PMU of the Dimensity 9000 model.
var ArmCortexA710 = register(&PMU{
	Name: "arm_cortex_a710",
	Desc: "ARM Cortex-A710 (big)",
	Events: append(armv8CommonEvents(),
		Def{Name: "BR_RETIRED", Code: 0x21, Desc: "Branches architecturally executed", Kind: KindBranches},
		Def{Name: "BR_MIS_PRED_RETIRED", Code: 0x22, Desc: "Mispredicted branches architecturally executed", Kind: KindBranchMisses},
		Def{Name: "STALL_FRONTEND", Code: 0x23, Desc: "Cycles stalled on frontend", Kind: KindStallCycles, Scale: 0.35},
		Def{Name: "STALL_BACKEND", Code: 0x24, Desc: "Cycles stalled on backend", Kind: KindStallCycles, Scale: 0.65},
		Def{Name: "L3D_CACHE", Code: 0x2B, Desc: "L3 data cache access", Kind: KindLLCRefs},
		Def{Name: "L3D_CACHE_REFILL", Code: 0x2A, Desc: "L3 data cache refill", Kind: KindLLCMisses},
	),
})

// ArmCortexA510 is the LITTLE-core PMU of the Dimensity 9000 model: the
// smallest event set of the three, like its in-order predecessors.
var ArmCortexA510 = register(&PMU{
	Name:   "arm_cortex_a510",
	Desc:   "ARM Cortex-A510 (LITTLE)",
	Events: armv8CommonEvents(),
})
