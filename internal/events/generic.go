package events

// Generic perf_event hardware event ids (PERF_TYPE_HARDWARE). On hybrid
// systems the real kernel extends these with a PMU type in the upper config
// bits; internal/perfevent implements the same convention, so these ids
// stay PMU-independent here.

// Perf hardware event ids, mirroring PERF_COUNT_HW_*.
const (
	HWCPUCycles             = 0
	HWInstructions          = 1
	HWCacheReferences       = 2
	HWCacheMisses           = 3
	HWBranchInstructions    = 4
	HWBranchMisses          = 5
	HWBusCycles             = 6
	HWStalledCyclesFrontend = 7
	HWStalledCyclesBackend  = 8
	HWRefCPUCycles          = 9
)

// GenericKind maps a PERF_COUNT_HW_* id to the architectural Kind it counts
// and a scale. Unknown ids return KindNone.
func GenericKind(id uint64) (Kind, float64) {
	switch id {
	case HWCPUCycles:
		return KindCycles, 1
	case HWInstructions:
		return KindInstructions, 1
	case HWCacheReferences:
		return KindLLCRefs, 1
	case HWCacheMisses:
		return KindLLCMisses, 1
	case HWBranchInstructions:
		return KindBranches, 1
	case HWBranchMisses:
		return KindBranchMisses, 1
	case HWBusCycles:
		return KindBusCycles, 1
	case HWStalledCyclesFrontend:
		return KindStallCycles, 0.35
	case HWStalledCyclesBackend:
		return KindStallCycles, 0.65
	case HWRefCPUCycles:
		return KindRefCycles, 1
	default:
		return KindNone, 0
	}
}

// GenericName returns the perf tool style name of a PERF_COUNT_HW_* id.
func GenericName(id uint64) string {
	switch id {
	case HWCPUCycles:
		return "cycles"
	case HWInstructions:
		return "instructions"
	case HWCacheReferences:
		return "cache-references"
	case HWCacheMisses:
		return "cache-misses"
	case HWBranchInstructions:
		return "branches"
	case HWBranchMisses:
		return "branch-misses"
	case HWBusCycles:
		return "bus-cycles"
	case HWStalledCyclesFrontend:
		return "stalled-cycles-frontend"
	case HWStalledCyclesBackend:
		return "stalled-cycles-backend"
	case HWRefCPUCycles:
		return "ref-cycles"
	default:
		return ""
	}
}
