// Package events holds the native performance event database for every
// simulated PMU, playing the role that the per-microarchitecture event
// tables play inside libpfm4 and the kernel.
//
// Each PMU model (adl_glc, adl_grt, arm_cortex_a72, arm_cortex_a53, skl,
// rapl) exposes a list of event definitions. An event optionally carries
// unit masks. Every event or unit mask resolves to a Kind — the underlying
// architectural quantity — plus a Scale factor, so e.g.
// BR_INST_RETIRED:COND counts a calibrated fraction of all retired
// branches. The perf_event kernel layer (internal/perfevent) decodes a raw
// config back to (Kind, Scale) with PMU.Decode and credits counters from the
// Stats records produced by executing workloads.
package events

import (
	"fmt"
	"sort"
)

// Kind identifies the architectural quantity an event counts.
type Kind int

const (
	// KindNone marks an invalid or unmapped event.
	KindNone Kind = iota
	// KindInstructions counts retired instructions.
	KindInstructions
	// KindCycles counts unhalted core cycles at the current frequency.
	KindCycles
	// KindRefCycles counts reference (TSC-rate) unhalted cycles.
	KindRefCycles
	// KindSlots counts pipeline issue slots (topdown; pipeline width x cycles).
	KindSlots
	// KindStallCycles counts execution stall cycles.
	KindStallCycles
	// KindBranches counts retired branch instructions.
	KindBranches
	// KindBranchMisses counts mispredicted retired branches.
	KindBranchMisses
	// KindLoads and KindStores count retired memory operations.
	KindLoads
	KindStores
	// KindMemAccess counts loads plus stores.
	KindMemAccess
	// KindL1DRefs / KindL1DMisses count level-1 data cache activity.
	KindL1DRefs
	KindL1DMisses
	// KindL2Refs / KindL2Misses count private level-2 cache activity.
	KindL2Refs
	KindL2Misses
	// KindLLCRefs / KindLLCMisses count shared last-level cache activity
	// (the quantities behind Table III of the paper).
	KindLLCRefs
	KindLLCMisses
	// KindLLCHits counts KindLLCRefs minus KindLLCMisses.
	KindLLCHits
	// KindFPScalarD counts scalar double-precision arithmetic instructions.
	KindFPScalarD
	// KindFP128D / KindFP256D count 128-bit / 256-bit packed
	// double-precision arithmetic instructions.
	KindFP128D
	KindFP256D
	// KindBusCycles counts bus (uncore clock) cycles.
	KindBusCycles
	// KindEnergyPkg, KindEnergyCores, KindEnergyRAM, KindEnergyPsys are
	// RAPL energy domains, in RAPL energy units. They are package-scope:
	// the kernel only allows them as CPU-wide events.
	KindEnergyPkg
	KindEnergyCores
	KindEnergyRAM
	KindEnergyPsys
	numKinds
)

var kindNames = map[Kind]string{
	KindNone:         "none",
	KindInstructions: "instructions",
	KindCycles:       "cycles",
	KindRefCycles:    "ref-cycles",
	KindSlots:        "slots",
	KindStallCycles:  "stall-cycles",
	KindBranches:     "branches",
	KindBranchMisses: "branch-misses",
	KindLoads:        "loads",
	KindStores:       "stores",
	KindMemAccess:    "mem-access",
	KindL1DRefs:      "l1d-refs",
	KindL1DMisses:    "l1d-misses",
	KindL2Refs:       "l2-refs",
	KindL2Misses:     "l2-misses",
	KindLLCRefs:      "llc-refs",
	KindLLCMisses:    "llc-misses",
	KindLLCHits:      "llc-hits",
	KindFPScalarD:    "fp-scalar-double",
	KindFP128D:       "fp-128b-double",
	KindFP256D:       "fp-256b-double",
	KindBusCycles:    "bus-cycles",
	KindEnergyPkg:    "energy-pkg",
	KindEnergyCores:  "energy-cores",
	KindEnergyRAM:    "energy-ram",
	KindEnergyPsys:   "energy-psys",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	switch k {
	case KindSWCpuClock:
		return "sw-cpu-clock"
	case KindSWTaskClock:
		return "sw-task-clock"
	case KindSWPageFaults:
		return "sw-page-faults"
	case KindSWContextSwitches:
		return "sw-context-switches"
	case KindSWCpuMigrations:
		return "sw-cpu-migrations"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Energy reports whether the kind is a package-scope RAPL energy domain.
func (k Kind) Energy() bool {
	return k >= KindEnergyPkg && k <= KindEnergyPsys
}

// Stats is the bundle of architectural quantities produced by executing a
// slice of work on one core. Workload models emit Stats; the perf_event
// layer converts them to counter increments via ValueOf.
type Stats struct {
	Cycles       float64
	RefCycles    float64
	Instructions float64
	Branches     float64
	BranchMisses float64
	Loads        float64
	Stores       float64
	L1DRefs      float64
	L1DMisses    float64
	L2Refs       float64
	L2Misses     float64
	LLCRefs      float64
	LLCMisses    float64
	FPScalarD    float64
	FP128D       float64
	FP256D       float64
	StallCycles  float64
	Slots        float64
	// Flops is the retired double-precision FLOP count (not an event kind
	// by itself; FP_ARITH umask counts derive from the vector mix).
	Flops float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.RefCycles += other.RefCycles
	s.Instructions += other.Instructions
	s.Branches += other.Branches
	s.BranchMisses += other.BranchMisses
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.L1DRefs += other.L1DRefs
	s.L1DMisses += other.L1DMisses
	s.L2Refs += other.L2Refs
	s.L2Misses += other.L2Misses
	s.LLCRefs += other.LLCRefs
	s.LLCMisses += other.LLCMisses
	s.FPScalarD += other.FPScalarD
	s.FP128D += other.FP128D
	s.FP256D += other.FP256D
	s.StallCycles += other.StallCycles
	s.Slots += other.Slots
	s.Flops += other.Flops
}

// ValueOf returns the value of the given kind contained in the stats.
// Energy kinds always return 0 here; they are serviced by the power model,
// not by task execution.
func ValueOf(s Stats, k Kind) float64 {
	switch k {
	case KindInstructions:
		return s.Instructions
	case KindCycles:
		return s.Cycles
	case KindRefCycles:
		return s.RefCycles
	case KindSlots:
		return s.Slots
	case KindStallCycles:
		return s.StallCycles
	case KindBranches:
		return s.Branches
	case KindBranchMisses:
		return s.BranchMisses
	case KindLoads:
		return s.Loads
	case KindStores:
		return s.Stores
	case KindMemAccess:
		return s.Loads + s.Stores
	case KindL1DRefs:
		return s.L1DRefs
	case KindL1DMisses:
		return s.L1DMisses
	case KindL2Refs:
		return s.L2Refs
	case KindL2Misses:
		return s.L2Misses
	case KindLLCRefs:
		return s.LLCRefs
	case KindLLCMisses:
		return s.LLCMisses
	case KindLLCHits:
		return s.LLCRefs - s.LLCMisses
	case KindFPScalarD:
		return s.FPScalarD
	case KindFP128D:
		return s.FP128D
	case KindFP256D:
		return s.FP256D
	case KindBusCycles:
		return s.RefCycles
	default:
		return 0
	}
}

// Umask is one unit mask of an event.
type Umask struct {
	// Name is the umask name as it appears after the second colon in a
	// libpfm4-style event string, e.g. "ANY" in "adl_glc::INST_RETIRED:ANY".
	Name string
	// Bits is the unit mask bit pattern, encoded into the perf config.
	Bits uint64
	// Desc is the human-readable description.
	Desc string
	// Kind and Scale define the counted quantity: value = Scale *
	// ValueOf(stats, Kind).
	Kind  Kind
	Scale float64
	// Default marks the umask used when the event is named without one.
	Default bool
}

// Def is one native event of a PMU.
type Def struct {
	// Name is the event name, e.g. "INST_RETIRED".
	Name string
	// Code is the event select code, encoded in config bits 0-7.
	Code uint64
	// Desc is the human-readable description.
	Desc string
	// Kind and Scale apply when the event has no unit masks.
	Kind  Kind
	Scale float64
	// Umasks lists the unit masks, if any.
	Umasks []Umask
}

// Encode returns the perf config value for the event with the given umask
// bits: code in bits 0-7, umask in bits 8-15.
func Encode(code, umaskBits uint64) uint64 {
	return (code & 0xFF) | (umaskBits&0xFF)<<8
}

// DecodeParts splits a config into (code, umask bits).
func DecodeParts(config uint64) (code, umaskBits uint64) {
	return config & 0xFF, (config >> 8) & 0xFF
}

// PMU is the event table of one PMU model.
type PMU struct {
	// Name is the libpfm4-style PMU model name ("adl_glc").
	Name string
	// Desc is the human-readable PMU description.
	Desc string
	// Events lists every native event.
	Events []Def

	byName   map[string]*Def
	byConfig map[uint64]mapping
}

type mapping struct {
	kind  Kind
	scale float64
	name  string
}

func (p *PMU) index() {
	if p.byName != nil {
		return
	}
	p.byName = make(map[string]*Def, len(p.Events))
	p.byConfig = make(map[uint64]mapping)
	for i := range p.Events {
		d := &p.Events[i]
		p.byName[d.Name] = d
		if len(d.Umasks) == 0 {
			p.byConfig[Encode(d.Code, 0)] = mapping{d.Kind, scaleOr1(d.Scale), d.Name}
			continue
		}
		for _, u := range d.Umasks {
			cfg := Encode(d.Code, u.Bits)
			if _, dup := p.byConfig[cfg]; !dup {
				p.byConfig[cfg] = mapping{u.Kind, scaleOr1(u.Scale), d.Name + ":" + u.Name}
			}
		}
	}
}

func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// Lookup returns the event definition with the given name, or nil.
func (p *PMU) Lookup(name string) *Def {
	p.index()
	return p.byName[name]
}

// Decode maps a raw config value back to the counted quantity. The second
// return is the canonical "EVENT:UMASK" name; ok is false for configs that
// do not correspond to any event of this PMU (the kernel then rejects the
// open with an invalid-argument error, as real hardware would reject an
// unsupported event select).
func (p *PMU) Decode(config uint64) (kind Kind, scale float64, name string, ok bool) {
	p.index()
	m, ok := p.byConfig[config]
	if !ok {
		return KindNone, 0, "", false
	}
	return m.kind, m.scale, m.name, true
}

// DefaultUmask returns the default unit mask of the event definition, or nil
// when the event has no umasks.
func (d *Def) DefaultUmask() *Umask {
	for i := range d.Umasks {
		if d.Umasks[i].Default {
			return &d.Umasks[i]
		}
	}
	if len(d.Umasks) > 0 {
		return &d.Umasks[0]
	}
	return nil
}

// Umask returns the named unit mask of the event, or nil.
func (d *Def) Umask(name string) *Umask {
	for i := range d.Umasks {
		if d.Umasks[i].Name == name {
			return &d.Umasks[i]
		}
	}
	return nil
}

// registry maps PMU model names to their tables.
var registry = map[string]*PMU{}

func register(p *PMU) *PMU {
	if _, dup := registry[p.Name]; dup {
		panic("events: duplicate PMU " + p.Name)
	}
	p.index()
	registry[p.Name] = p
	return p
}

// LookupPMU returns the registered PMU model with the given name, or nil.
func LookupPMU(name string) *PMU {
	return registry[name]
}

// PMUNames returns the names of all registered PMU models, sorted.
func PMUNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
