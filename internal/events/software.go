package events

// Software event kinds (PERF_TYPE_SOFTWARE): quantities maintained by the
// kernel rather than by PMU hardware. ValueOf never services these — the
// perf_event layer credits them from its own scheduler hooks and clocks —
// but they live in the same Kind space so the rest of the stack (pfmlib
// naming, PAPI EventSets) treats them uniformly.

const (
	// KindSWCpuClock counts wall time on CPU in nanoseconds.
	KindSWCpuClock Kind = 100 + iota
	// KindSWTaskClock counts task execution time in nanoseconds.
	KindSWTaskClock
	// KindSWPageFaults counts (minor) page faults.
	KindSWPageFaults
	// KindSWContextSwitches counts scheduler switch-outs of the task.
	KindSWContextSwitches
	// KindSWCpuMigrations counts placements on a different CPU.
	KindSWCpuMigrations
)

// Software reports whether the kind is serviced by kernel software
// counters instead of PMU hardware.
func (k Kind) Software() bool {
	return k >= KindSWCpuClock && k <= KindSWCpuMigrations
}

// PerfSoftware is the software pseudo-PMU ("perf" in libpfm4 naming). Its
// event codes are the PERF_COUNT_SW_* ids.
var PerfSoftware = register(&PMU{
	Name: "perf",
	Desc: "Kernel software events",
	Events: []Def{
		{Name: "CPU_CLOCK", Code: 0x00, Desc: "Wall time on CPU (ns)", Kind: KindSWCpuClock},
		{Name: "TASK_CLOCK", Code: 0x01, Desc: "Task execution time (ns)", Kind: KindSWTaskClock},
		{Name: "PAGE_FAULTS", Code: 0x02, Desc: "Page faults", Kind: KindSWPageFaults},
		{Name: "CONTEXT_SWITCHES", Code: 0x03, Desc: "Context switches", Kind: KindSWContextSwitches},
		{Name: "CPU_MIGRATIONS", Code: 0x04, Desc: "CPU migrations", Kind: KindSWCpuMigrations},
	},
})
