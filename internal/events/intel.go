package events

// Intel event tables. Encodings follow the event-select / unit-mask scheme
// of real Intel PMUs; the exact numeric values are stable identifiers for
// this simulator rather than verbatim SDM encodings.
//
// AdlGlc is the Golden Cove / Raptor Cove P-core PMU ("adl_glc" in libpfm4
// naming; Raptor Lake exposes the same PMU model as Alder Lake). AdlGrt is
// the Gracemont E-core PMU ("adl_grt"). Per the paper, the topdown slot
// events exist only on the P-core PMU, which makes them a natural test for
// "this event is unavailable on the other core type".

// AdlGlc is the Alder/Raptor Lake P-core (Golden Cove) PMU event table.
var AdlGlc = register(&PMU{
	Name: "adl_glc",
	Desc: "Intel Alder Lake GoldenCove (P-core)",
	Events: []Def{
		{
			Name: "INST_RETIRED", Code: 0xC0,
			Desc: "Instructions retired",
			Umasks: []Umask{
				{Name: "ANY", Bits: 0x01, Desc: "All retired instructions", Kind: KindInstructions, Default: true},
				{Name: "ANY_P", Bits: 0x00, Desc: "All retired instructions (programmable counter)", Kind: KindInstructions},
				{Name: "MACRO_FUSED", Bits: 0x10, Desc: "Retired macro-fused instruction pairs", Kind: KindInstructions, Scale: 0.08},
				{Name: "NOP", Bits: 0x02, Desc: "Retired NOP instructions", Kind: KindInstructions, Scale: 0.005},
			},
		},
		{
			Name: "CPU_CLK_UNHALTED", Code: 0x3C,
			Desc: "Core clock cycles when not halted",
			Umasks: []Umask{
				{Name: "THREAD", Bits: 0x00, Desc: "Core cycles at current frequency", Kind: KindCycles, Default: true},
				{Name: "THREAD_P", Bits: 0x01, Desc: "Core cycles (programmable counter)", Kind: KindCycles},
				{Name: "REF_TSC", Bits: 0x03, Desc: "Reference cycles at TSC rate", Kind: KindRefCycles},
				{Name: "REF_DISTRIBUTED", Bits: 0x08, Desc: "Reference cycles distributed across SMT threads", Kind: KindRefCycles, Scale: 0.5},
			},
		},
		{
			Name: "BR_INST_RETIRED", Code: 0xC4,
			Desc: "Branch instructions retired",
			Umasks: []Umask{
				{Name: "ALL_BRANCHES", Bits: 0x00, Desc: "All retired branches", Kind: KindBranches, Default: true},
				{Name: "COND", Bits: 0x11, Desc: "Conditional branches", Kind: KindBranches, Scale: 0.72},
				{Name: "COND_TAKEN", Bits: 0x01, Desc: "Taken conditional branches", Kind: KindBranches, Scale: 0.48},
				{Name: "NEAR_CALL", Bits: 0x02, Desc: "Near call branches", Kind: KindBranches, Scale: 0.05},
				{Name: "NEAR_RETURN", Bits: 0x08, Desc: "Near return branches", Kind: KindBranches, Scale: 0.05},
				{Name: "NEAR_TAKEN", Bits: 0x20, Desc: "Taken branches", Kind: KindBranches, Scale: 0.58},
				{Name: "FAR_BRANCH", Bits: 0x40, Desc: "Far branches (interrupts, syscalls)", Kind: KindBranches, Scale: 0.0005},
			},
		},
		{
			Name: "BR_MISP_RETIRED", Code: 0xC5,
			Desc: "Mispredicted branch instructions retired",
			Umasks: []Umask{
				{Name: "ALL_BRANCHES", Bits: 0x00, Desc: "All mispredicted branches", Kind: KindBranchMisses, Default: true},
				{Name: "COND", Bits: 0x11, Desc: "Mispredicted conditional branches", Kind: KindBranchMisses, Scale: 0.85},
				{Name: "INDIRECT", Bits: 0x80, Desc: "Mispredicted indirect branches", Kind: KindBranchMisses, Scale: 0.08},
			},
		},
		{
			Name: "LONGEST_LAT_CACHE", Code: 0x2E,
			Desc: "Last level cache references and misses",
			Umasks: []Umask{
				{Name: "REFERENCE", Bits: 0x4F, Desc: "LLC references", Kind: KindLLCRefs, Default: true},
				{Name: "MISS", Bits: 0x41, Desc: "LLC misses", Kind: KindLLCMisses},
			},
		},
		{
			Name: "MEM_LOAD_RETIRED", Code: 0xD1,
			Desc: "Retired load instructions by data source",
			Umasks: []Umask{
				{Name: "L1_HIT", Bits: 0x01, Desc: "Loads hitting L1D", Kind: KindL1DRefs, Scale: 0.97, Default: true},
				{Name: "L1_MISS", Bits: 0x08, Desc: "Loads missing L1D", Kind: KindL1DMisses},
				{Name: "L2_HIT", Bits: 0x02, Desc: "Loads hitting L2", Kind: KindL2Refs, Scale: 0.8},
				{Name: "L2_MISS", Bits: 0x10, Desc: "Loads missing L2", Kind: KindL2Misses},
				{Name: "L3_HIT", Bits: 0x04, Desc: "Loads hitting LLC", Kind: KindLLCHits},
				{Name: "L3_MISS", Bits: 0x20, Desc: "Loads missing LLC", Kind: KindLLCMisses},
			},
		},
		{
			Name: "MEM_INST_RETIRED", Code: 0xD0,
			Desc: "Retired memory instructions",
			Umasks: []Umask{
				{Name: "ALL_LOADS", Bits: 0x81, Desc: "All retired loads", Kind: KindLoads, Default: true},
				{Name: "ALL_STORES", Bits: 0x82, Desc: "All retired stores", Kind: KindStores},
				{Name: "ANY", Bits: 0x83, Desc: "All retired memory instructions", Kind: KindMemAccess},
			},
		},
		{
			Name: "FP_ARITH_INST_RETIRED", Code: 0xC7,
			Desc: "Floating-point arithmetic instructions retired",
			Umasks: []Umask{
				{Name: "SCALAR_DOUBLE", Bits: 0x01, Desc: "Scalar double-precision instructions", Kind: KindFPScalarD, Default: true},
				{Name: "128B_PACKED_DOUBLE", Bits: 0x04, Desc: "128-bit packed double instructions", Kind: KindFP128D},
				{Name: "256B_PACKED_DOUBLE", Bits: 0x10, Desc: "256-bit packed double instructions", Kind: KindFP256D},
				{Name: "VECTOR", Bits: 0x3C, Desc: "All vector FP instructions", Kind: KindFP256D, Scale: 1.1},
			},
		},
		{
			Name: "TOPDOWN", Code: 0xA4,
			Desc: "Topdown slot accounting (P-core only)",
			Umasks: []Umask{
				{Name: "SLOTS", Bits: 0x01, Desc: "Topdown issue slots", Kind: KindSlots, Default: true},
				{Name: "SLOTS_P", Bits: 0x02, Desc: "Topdown issue slots (programmable)", Kind: KindSlots},
				{Name: "BACKEND_BOUND_SLOTS", Bits: 0x08, Desc: "Slots stalled on backend", Kind: KindSlots, Scale: 0.3},
				{Name: "BAD_SPEC_SLOTS", Bits: 0x04, Desc: "Slots wasted on misspeculation", Kind: KindSlots, Scale: 0.05},
			},
		},
		{
			Name: "CYCLE_ACTIVITY", Code: 0xA3,
			Desc: "Cycle activity and stall breakdown",
			Umasks: []Umask{
				{Name: "STALLS_TOTAL", Bits: 0x04, Desc: "Total execution stall cycles", Kind: KindStallCycles, Default: true},
				{Name: "STALLS_MEM_ANY", Bits: 0x14, Desc: "Stall cycles waiting on memory", Kind: KindStallCycles, Scale: 0.75},
				{Name: "STALLS_L3_MISS", Bits: 0x06, Desc: "Stall cycles on outstanding LLC misses", Kind: KindStallCycles, Scale: 0.4},
			},
		},
		{
			Name: "UOPS_RETIRED", Code: 0xC2,
			Desc: "Micro-operations retired",
			Umasks: []Umask{
				{Name: "SLOTS", Bits: 0x02, Desc: "Retirement slots used", Kind: KindInstructions, Scale: 1.12, Default: true},
				{Name: "HEAVY", Bits: 0x01, Desc: "Uops from multi-uop instructions", Kind: KindInstructions, Scale: 0.06},
			},
		},
		{
			Name: "RESOURCE_STALLS", Code: 0xA2,
			Desc: "Resource-related stall cycles",
			Umasks: []Umask{
				{Name: "ANY", Bits: 0x01, Desc: "Any resource stall", Kind: KindStallCycles, Scale: 0.5, Default: true},
				{Name: "SB", Bits: 0x08, Desc: "Store buffer full stalls", Kind: KindStallCycles, Scale: 0.1},
			},
		},
		{
			Name: "DTLB_LOAD_MISSES", Code: 0x12,
			Desc: "Data TLB load misses",
			Umasks: []Umask{
				{Name: "WALK_COMPLETED", Bits: 0x0E, Desc: "Completed page walks from load misses", Kind: KindL1DMisses, Scale: 0.02, Default: true},
				{Name: "STLB_HIT", Bits: 0x20, Desc: "Load misses hitting the STLB", Kind: KindL1DMisses, Scale: 0.05},
			},
		},
		{
			Name: "L2_RQSTS", Code: 0x24,
			Desc: "L2 cache requests by type",
			Umasks: []Umask{
				{Name: "ALL_DEMAND_DATA_RD", Bits: 0xE1, Desc: "Demand data read requests", Kind: KindL2Refs, Scale: 0.70, Default: true},
				{Name: "DEMAND_DATA_RD_HIT", Bits: 0xC1, Desc: "Demand data reads hitting L2", Kind: KindL2Refs, Scale: 0.45},
				{Name: "ALL_DEMAND_MISS", Bits: 0x27, Desc: "Demand requests missing L2", Kind: KindL2Misses},
				{Name: "ALL_CODE_RD", Bits: 0xE4, Desc: "Code read requests", Kind: KindL2Refs, Scale: 0.12},
				{Name: "ALL_RFO", Bits: 0xE2, Desc: "Read-for-ownership requests", Kind: KindL2Refs, Scale: 0.25},
			},
		},
		{
			Name: "MACHINE_CLEARS", Code: 0xC3,
			Desc: "Machine clear events",
			Umasks: []Umask{
				{Name: "COUNT", Bits: 0x01, Desc: "All machine clears", Kind: KindBranchMisses, Scale: 0.02, Default: true},
				{Name: "MEMORY_ORDERING", Bits: 0x02, Desc: "Memory ordering clears", Kind: KindBranchMisses, Scale: 0.008},
				{Name: "SMC", Bits: 0x04, Desc: "Self-modifying code clears", Kind: KindBranchMisses, Scale: 0.0001},
			},
		},
		{
			Name: "LD_BLOCKS", Code: 0x03,
			Desc: "Blocked loads",
			Umasks: []Umask{
				{Name: "STORE_FORWARD", Bits: 0x82, Desc: "Loads blocked on store forwarding", Kind: KindLoads, Scale: 0.001, Default: true},
				{Name: "NO_SR", Bits: 0x88, Desc: "Loads blocked on split registers", Kind: KindLoads, Scale: 0.0002},
			},
		},
		{
			Name: "ARITH", Code: 0xB0,
			Desc: "Arithmetic unit activity",
			Umasks: []Umask{
				{Name: "DIV_ACTIVE", Bits: 0x09, Desc: "Cycles the divider is busy", Kind: KindCycles, Scale: 0.015, Default: true},
			},
		},
		{
			Name: "EXE_ACTIVITY", Code: 0xA6,
			Desc: "Execution port activity breakdown",
			Umasks: []Umask{
				{Name: "BOUND_ON_LOADS", Bits: 0x21, Desc: "Stall cycles bound on outstanding loads", Kind: KindStallCycles, Scale: 0.55, Default: true},
				{Name: "BOUND_ON_STORES", Bits: 0x40, Desc: "Stall cycles bound on stores", Kind: KindStallCycles, Scale: 0.06},
				{Name: "1_PORTS_UTIL", Bits: 0x02, Desc: "Cycles with one port utilized", Kind: KindCycles, Scale: 0.18},
			},
		},
		{
			Name: "INT_MISC", Code: 0xAD,
			Desc: "Miscellaneous front/backend interruptions",
			Umasks: []Umask{
				{Name: "RECOVERY_CYCLES", Bits: 0x01, Desc: "Cycles recovering from machine clears", Kind: KindCycles, Scale: 0.02, Default: true},
				{Name: "CLEAR_RESTEER_CYCLES", Bits: 0x80, Desc: "Cycles resteering after clears", Kind: KindCycles, Scale: 0.012},
			},
		},
		{
			Name: "LSD", Code: 0xA8,
			Desc: "Loop stream detector activity",
			Umasks: []Umask{
				{Name: "UOPS", Bits: 0x01, Desc: "Uops delivered by the LSD", Kind: KindInstructions, Scale: 0.15, Default: true},
				{Name: "CYCLES_ACTIVE", Bits: 0x02, Desc: "Cycles the LSD delivers uops", Kind: KindCycles, Scale: 0.12},
			},
		},
		{
			Name: "BACLEARS", Code: 0xE6,
			Desc: "Branch address clears at the frontend",
			Umasks: []Umask{
				{Name: "ANY", Bits: 0x01, Desc: "All BAClears", Kind: KindBranchMisses, Scale: 0.30, Default: true},
			},
		},
		{
			Name: "ICACHE_DATA", Code: 0x80,
			Desc: "Instruction cache data stalls",
			Umasks: []Umask{
				{Name: "STALLS", Bits: 0x04, Desc: "Cycles stalled on icache data misses", Kind: KindStallCycles, Scale: 0.08, Default: true},
			},
		},
		{
			Name: "ICACHE_TAG", Code: 0x83,
			Desc: "Instruction cache tag stalls",
			Umasks: []Umask{
				{Name: "STALLS", Bits: 0x04, Desc: "Cycles stalled on icache tag misses", Kind: KindStallCycles, Scale: 0.02, Default: true},
			},
		},
		{
			Name: "OFFCORE_REQUESTS", Code: 0x21,
			Desc: "Requests sent to the uncore",
			Umasks: []Umask{
				{Name: "DEMAND_DATA_RD", Bits: 0x01, Desc: "Demand data reads to uncore", Kind: KindLLCRefs, Scale: 0.80, Default: true},
				{Name: "ALL_REQUESTS", Bits: 0x80, Desc: "All offcore requests", Kind: KindLLCRefs, Scale: 1.10},
			},
		},
		{
			Name: "MEM_TRANS_RETIRED", Code: 0xCD,
			Desc: "Memory transactions by latency",
			Umasks: []Umask{
				{Name: "LOAD_LATENCY_GT_8", Bits: 0x01, Desc: "Loads with latency above 8 cycles", Kind: KindLoads, Scale: 0.04, Default: true},
				{Name: "LOAD_LATENCY_GT_128", Bits: 0x02, Desc: "Loads with latency above 128 cycles", Kind: KindLLCMisses, Scale: 0.90},
			},
		},
	},
})

// AdlGrt is the Alder/Raptor Lake E-core (Gracemont) PMU event table.
// Gracemont has no TOPDOWN slots event and fewer programmable counters.
var AdlGrt = register(&PMU{
	Name: "adl_grt",
	Desc: "Intel Alder Lake Gracemont (E-core)",
	Events: []Def{
		{
			Name: "INST_RETIRED", Code: 0xC0,
			Desc: "Instructions retired",
			Umasks: []Umask{
				{Name: "ANY", Bits: 0x00, Desc: "All retired instructions", Kind: KindInstructions, Default: true},
				{Name: "ANY_P", Bits: 0x01, Desc: "All retired instructions (programmable counter)", Kind: KindInstructions},
			},
		},
		{
			Name: "CPU_CLK_UNHALTED", Code: 0x3C,
			Desc: "Core clock cycles when not halted",
			Umasks: []Umask{
				{Name: "CORE", Bits: 0x00, Desc: "Core cycles at current frequency", Kind: KindCycles, Default: true},
				{Name: "CORE_P", Bits: 0x02, Desc: "Core cycles (programmable counter)", Kind: KindCycles},
				{Name: "REF_TSC", Bits: 0x03, Desc: "Reference cycles at TSC rate", Kind: KindRefCycles},
			},
		},
		{
			Name: "BR_INST_RETIRED", Code: 0xC4,
			Desc: "Branch instructions retired",
			Umasks: []Umask{
				{Name: "ALL_BRANCHES", Bits: 0x00, Desc: "All retired branches", Kind: KindBranches, Default: true},
				{Name: "COND", Bits: 0x7E, Desc: "Conditional branches", Kind: KindBranches, Scale: 0.72},
				{Name: "CALL", Bits: 0xF9, Desc: "Call branches", Kind: KindBranches, Scale: 0.05},
			},
		},
		{
			Name: "BR_MISP_RETIRED", Code: 0xC5,
			Desc: "Mispredicted branch instructions retired",
			Umasks: []Umask{
				{Name: "ALL_BRANCHES", Bits: 0x00, Desc: "All mispredicted branches", Kind: KindBranchMisses, Default: true},
				{Name: "COND", Bits: 0x7E, Desc: "Mispredicted conditional branches", Kind: KindBranchMisses, Scale: 0.85},
			},
		},
		{
			Name: "LONGEST_LAT_CACHE", Code: 0x2E,
			Desc: "Last level cache references and misses",
			Umasks: []Umask{
				{Name: "REFERENCE", Bits: 0x4F, Desc: "LLC references", Kind: KindLLCRefs, Default: true},
				{Name: "MISS", Bits: 0x41, Desc: "LLC misses", Kind: KindLLCMisses},
			},
		},
		{
			Name: "MEM_UOPS_RETIRED", Code: 0xD0,
			Desc: "Retired memory micro-operations",
			Umasks: []Umask{
				{Name: "ALL_LOADS", Bits: 0x81, Desc: "All retired load uops", Kind: KindLoads, Default: true},
				{Name: "ALL_STORES", Bits: 0x82, Desc: "All retired store uops", Kind: KindStores},
			},
		},
		{
			Name: "MEM_LOAD_UOPS_RETIRED", Code: 0xD1,
			Desc: "Retired load uops by data source",
			Umasks: []Umask{
				{Name: "L1_HIT", Bits: 0x01, Desc: "Loads hitting L1D", Kind: KindL1DRefs, Scale: 0.97, Default: true},
				{Name: "L2_HIT", Bits: 0x02, Desc: "Loads hitting L2", Kind: KindL2Refs, Scale: 0.8},
				{Name: "L3_HIT", Bits: 0x04, Desc: "Loads hitting LLC", Kind: KindLLCHits},
				{Name: "DRAM_HIT", Bits: 0x80, Desc: "Loads served from DRAM", Kind: KindLLCMisses},
			},
		},
		{
			Name: "FP_ARITH_INST_RETIRED", Code: 0xC7,
			Desc: "Floating-point arithmetic instructions retired",
			Umasks: []Umask{
				{Name: "SCALAR_DOUBLE", Bits: 0x01, Desc: "Scalar double-precision instructions", Kind: KindFPScalarD, Default: true},
				{Name: "128B_PACKED_DOUBLE", Bits: 0x04, Desc: "128-bit packed double instructions", Kind: KindFP128D},
				{Name: "256B_PACKED_DOUBLE", Bits: 0x10, Desc: "256-bit packed double instructions", Kind: KindFP256D},
			},
		},
		{
			Name: "CYCLE_ACTIVITY", Code: 0xA3,
			Desc: "Cycle activity and stall breakdown",
			Umasks: []Umask{
				{Name: "STALLS_TOTAL", Bits: 0x04, Desc: "Total execution stall cycles", Kind: KindStallCycles, Default: true},
			},
		},
		{
			Name: "UOPS_RETIRED", Code: 0xC2,
			Desc: "Micro-operations retired",
			Umasks: []Umask{
				{Name: "ALL", Bits: 0x00, Desc: "All retired uops", Kind: KindInstructions, Scale: 1.25, Default: true},
			},
		},
		{
			Name: "TOPDOWN_FE_BOUND", Code: 0x71,
			Desc: "Topdown slots lost to frontend (Gracemont topdown family)",
			Umasks: []Umask{
				{Name: "ALL", Bits: 0x00, Desc: "All frontend-bound slots", Kind: KindSlots, Scale: 0.20, Default: true},
				{Name: "ICACHE", Bits: 0x20, Desc: "Slots lost to icache misses", Kind: KindSlots, Scale: 0.04},
			},
		},
		{
			Name: "TOPDOWN_BE_BOUND", Code: 0x74,
			Desc: "Topdown slots lost to backend",
			Umasks: []Umask{
				{Name: "ALL", Bits: 0x00, Desc: "All backend-bound slots", Kind: KindSlots, Scale: 0.30, Default: true},
				{Name: "MEM_SCHEDULER", Bits: 0x01, Desc: "Slots lost to memory scheduler", Kind: KindSlots, Scale: 0.10},
			},
		},
		{
			Name: "TOPDOWN_BAD_SPECULATION", Code: 0x73,
			Desc: "Topdown slots lost to misspeculation",
			Umasks: []Umask{
				{Name: "ALL", Bits: 0x00, Desc: "All bad-speculation slots", Kind: KindSlots, Scale: 0.05, Default: true},
				{Name: "MISPREDICT", Bits: 0x04, Desc: "Slots lost to mispredicted branches", Kind: KindSlots, Scale: 0.04},
			},
		},
		{
			Name: "TOPDOWN_RETIRING", Code: 0x72,
			Desc: "Topdown slots that retired",
			Umasks: []Umask{
				{Name: "ALL", Bits: 0x00, Desc: "All retiring slots", Kind: KindSlots, Scale: 0.45, Default: true},
			},
		},
		{
			Name: "MACHINE_CLEARS", Code: 0xC3,
			Desc: "Machine clear events",
			Umasks: []Umask{
				{Name: "ANY", Bits: 0x00, Desc: "All machine clears", Kind: KindBranchMisses, Scale: 0.02, Default: true},
			},
		},
		{
			Name: "ICACHE", Code: 0x80,
			Desc: "Instruction cache activity",
			Umasks: []Umask{
				{Name: "ACCESSES", Bits: 0x03, Desc: "Instruction cache accesses", Kind: KindInstructions, Scale: 0.06, Default: true},
				{Name: "MISSES", Bits: 0x02, Desc: "Instruction cache misses", Kind: KindL1DMisses, Scale: 0.04},
			},
		},
		{
			Name: "LD_BLOCKS", Code: 0x03,
			Desc: "Blocked loads",
			Umasks: []Umask{
				{Name: "DATA_UNKNOWN", Bits: 0x01, Desc: "Loads blocked on unknown store data", Kind: KindLoads, Scale: 0.001, Default: true},
			},
		},
	},
})

// Skl is a Skylake-class PMU used by the homogeneous baseline machine.
var Skl = register(&PMU{
	Name: "skl",
	Desc: "Intel Skylake",
	Events: []Def{
		{
			Name: "INST_RETIRED", Code: 0xC0,
			Desc: "Instructions retired",
			Umasks: []Umask{
				{Name: "ANY", Bits: 0x01, Desc: "All retired instructions", Kind: KindInstructions, Default: true},
				{Name: "ANY_P", Bits: 0x00, Desc: "All retired instructions (programmable)", Kind: KindInstructions},
			},
		},
		{
			Name: "CPU_CLK_UNHALTED", Code: 0x3C,
			Desc: "Core clock cycles when not halted",
			Umasks: []Umask{
				{Name: "THREAD", Bits: 0x00, Desc: "Core cycles", Kind: KindCycles, Default: true},
				{Name: "REF_TSC", Bits: 0x03, Desc: "Reference cycles", Kind: KindRefCycles},
			},
		},
		{
			Name: "BR_INST_RETIRED", Code: 0xC4,
			Desc: "Branch instructions retired",
			Umasks: []Umask{
				{Name: "ALL_BRANCHES", Bits: 0x00, Desc: "All retired branches", Kind: KindBranches, Default: true},
			},
		},
		{
			Name: "BR_MISP_RETIRED", Code: 0xC5,
			Desc: "Mispredicted branches retired",
			Umasks: []Umask{
				{Name: "ALL_BRANCHES", Bits: 0x00, Desc: "All mispredicted branches", Kind: KindBranchMisses, Default: true},
			},
		},
		{
			Name: "LONGEST_LAT_CACHE", Code: 0x2E,
			Desc: "Last level cache references and misses",
			Umasks: []Umask{
				{Name: "REFERENCE", Bits: 0x4F, Desc: "LLC references", Kind: KindLLCRefs, Default: true},
				{Name: "MISS", Bits: 0x41, Desc: "LLC misses", Kind: KindLLCMisses},
			},
		},
		{
			Name: "FP_ARITH_INST_RETIRED", Code: 0xC7,
			Desc: "Floating-point arithmetic instructions retired",
			Umasks: []Umask{
				{Name: "SCALAR_DOUBLE", Bits: 0x01, Desc: "Scalar double-precision", Kind: KindFPScalarD, Default: true},
				{Name: "256B_PACKED_DOUBLE", Bits: 0x10, Desc: "256-bit packed double", Kind: KindFP256D},
			},
		},
	},
})
