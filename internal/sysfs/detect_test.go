package sysfs

import (
	"testing"

	"hetpapi/internal/hw"
)

func groupsEqual(got []Group, want [][]int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if len(got[i].CPUs) != len(want[i]) {
			return false
		}
		for j := range want[i] {
			if got[i].CPUs[j] != want[i][j] {
				return false
			}
		}
	}
	return true
}

func ids(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestDetectPMUs(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	pmus, err := DetectPMUs(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pmus) != 4 {
		t.Fatalf("found %d PMUs, want 4 (cpu_atom, cpu_core, power, uncore_imc): %+v", len(pmus), pmus)
	}
	byName := map[string]PMUInfo{}
	for _, p := range pmus {
		byName[p.Name] = p
	}
	if byName["cpu_core"].Type != 8 || byName["cpu_atom"].Type != 10 || byName["power"].Type != 22 {
		t.Errorf("PMU types wrong: %+v", byName)
	}
	if byName["uncore_imc"].Type != 24 || len(byName["uncore_imc"].CPUs) != 0 {
		t.Errorf("uncore PMU wrong: %+v", byName["uncore_imc"])
	}
	if len(byName["cpu_core"].CPUs) != 16 || len(byName["cpu_atom"].CPUs) != 8 {
		t.Errorf("PMU cpu maps wrong: %+v", byName)
	}
}

func TestDetectByPMURaptorLake(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	groups, err := DetectByPMU(f)
	if err != nil {
		t.Fatal(err)
	}
	// The RAPL power PMU lists only cpu0, a subset of cpu_core — it must
	// not appear as a core type.
	if !groupsEqual(groups, [][]int{ids(0, 15), ids(16, 23)}) {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Key != "pmu:cpu_core" || groups[1].Key != "pmu:cpu_atom" {
		t.Fatalf("keys = %q, %q", groups[0].Key, groups[1].Key)
	}
}

func TestDetectByPMUOrangePi(t *testing.T) {
	f := New(hw.OrangePi800(), nil)
	groups, err := DetectByPMU(f)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(groups, [][]int{ids(0, 3), ids(4, 5)}) {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestDetectByCapacity(t *testing.T) {
	arm := New(hw.OrangePi800(), nil)
	groups, err := DetectByCapacity(arm)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(groups, [][]int{ids(0, 3), ids(4, 5)}) {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Key != "capacity:485" || groups[1].Key != "capacity:1024" {
		t.Fatalf("keys = %q, %q", groups[0].Key, groups[1].Key)
	}
	// The x86 machine has no cpu_capacity files at all.
	x86 := New(hw.RaptorLake(), nil)
	if _, err := DetectByCapacity(x86); err != ErrNotAvailable {
		t.Fatalf("x86 capacity detection: err = %v, want ErrNotAvailable", err)
	}
}

func TestDetectByCPUInfo(t *testing.T) {
	// ARM: CPU part distinguishes the clusters.
	arm := New(hw.OrangePi800(), nil)
	groups, err := DetectByCPUInfo(arm)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(groups, [][]int{ids(0, 3), ids(4, 5)}) {
		t.Fatalf("ARM groups = %+v", groups)
	}
	// x86: family/model/stepping are identical across P and E cores, so
	// everything collapses into one group — the failure the paper notes.
	x86 := New(hw.RaptorLake(), nil)
	groups, err = DetectByCPUInfo(x86)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].CPUs) != 24 {
		t.Fatalf("x86 cpuinfo should give one 24-cpu group, got %+v", groups)
	}
}

func TestDetectByMaxFreq(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	groups, err := DetectByMaxFreq(f)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(groups, [][]int{ids(0, 15), ids(16, 23)}) {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestCPUIDHybrid(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	if ct, ok := f.CPUIDHybrid(0); !ok || ct != 0x20 {
		t.Errorf("cpu0 CPUID = (%#x, %v), want (0x20, true)", ct, ok)
	}
	if ct, ok := f.CPUIDHybrid(16); !ok || ct != 0x40 {
		t.Errorf("cpu16 CPUID = (%#x, %v), want (0x40, true)", ct, ok)
	}
	if _, ok := f.CPUIDHybrid(99); ok {
		t.Error("out-of-range cpu must not have CPUID")
	}
	arm := New(hw.OrangePi800(), nil)
	if _, ok := arm.CPUIDHybrid(0); ok {
		t.Error("ARM machine must not expose CPUID")
	}
	homog := New(hw.Homogeneous(), nil)
	if ct, ok := homog.CPUIDHybrid(0); !ok || ct != 0 {
		t.Errorf("homogeneous CPUID = (%#x, %v), want (0, true)", ct, ok)
	}
}

func TestDetectCoreTypesPrefersPMU(t *testing.T) {
	for _, m := range []*hw.Machine{hw.RaptorLake(), hw.OrangePi800()} {
		f := New(m, nil)
		groups, strategy, err := DetectCoreTypes(f)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if strategy != "pmu" {
			t.Errorf("%s: strategy = %q, want pmu", m.Name, strategy)
		}
		if len(groups) != 2 {
			t.Errorf("%s: %d groups, want 2", m.Name, len(groups))
		}
	}
}

func TestDetectCoreTypesHomogeneous(t *testing.T) {
	f := New(hw.Homogeneous(), nil)
	groups, _, err := DetectCoreTypes(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("homogeneous machine detected %d groups, want 1: %+v", len(groups), groups)
	}
}
