package sysfs

import (
	"bufio"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
)

// This file implements the heterogeneous core detection strategies that
// section IV.B of the paper walks through. Linux has no single standard
// interface for "what core types exist", so real tools try several of these
// in turn; each strategy here is independently testable and has the same
// failure modes as its real counterpart (e.g. DetectByCPUInfo cannot tell
// Intel P- from E-cores apart because they share family/model/stepping).

// Group is one detected set of CPUs that look alike under some strategy.
type Group struct {
	// Key identifies what made the group distinct, e.g. "pmu:cpu_core",
	// "capacity:1024", "part:0xd08", "maxfreq:5100000".
	Key string
	// CPUs are the logical CPU ids in the group, sorted.
	CPUs []int
}

// PMUInfo is one PMU directory found under sys/devices, the way the perf
// tool scans for them.
type PMUInfo struct {
	// Name is the directory name ("cpu_core", "armv8_cortex_a72", "power").
	Name string
	// Type is the dynamic perf event type id from the "type" file.
	Type uint32
	// CPUs is the parsed "cpus" file (empty for uncore-style PMUs without
	// one).
	CPUs []int
}

// DetectPMUs scans sys/devices for PMU subdirectories containing a "type"
// file and parses their "cpus" maps, mirroring how perf discovers PMUs.
func DetectPMUs(fsys fs.FS) ([]PMUInfo, error) {
	entries, err := fs.ReadDir(fsys, "sys/devices")
	if err != nil {
		return nil, fmt.Errorf("sysfs: scanning sys/devices: %w", err)
	}
	var out []PMUInfo
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		typeData, err := fs.ReadFile(fsys, "sys/devices/"+e.Name()+"/type")
		if err != nil {
			continue // not a PMU directory
		}
		t, err := strconv.ParseUint(strings.TrimSpace(string(typeData)), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sysfs: PMU %s has bad type file: %v", e.Name(), err)
		}
		info := PMUInfo{Name: e.Name(), Type: uint32(t)}
		if cpusData, err := fs.ReadFile(fsys, "sys/devices/"+e.Name()+"/cpus"); err == nil {
			cpus, err := ParseCPUList(string(cpusData))
			if err != nil {
				return nil, fmt.Errorf("sysfs: PMU %s has bad cpus file: %v", e.Name(), err)
			}
			info.CPUs = cpus
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// DetectByPMU groups CPUs by which core PMU claims them. PMUs that cover no
// CPUs beyond cpu0 alone with other PMUs overlapping (uncore-style, like the
// RAPL "power" PMU which lists only cpu0) are skipped when their CPU set is
// a subset of another PMU's.
func DetectByPMU(fsys fs.FS) ([]Group, error) {
	pmus, err := DetectPMUs(fsys)
	if err != nil {
		return nil, err
	}
	var groups []Group
	for _, p := range pmus {
		if len(p.CPUs) == 0 {
			continue
		}
		if subsetOfAnother(p, pmus) {
			continue
		}
		groups = append(groups, Group{Key: "pmu:" + p.Name, CPUs: p.CPUs})
	}
	sortGroups(groups)
	return groups, nil
}

func subsetOfAnother(p PMUInfo, all []PMUInfo) bool {
	for _, q := range all {
		if q.Name == p.Name || len(q.CPUs) <= len(p.CPUs) {
			continue
		}
		set := map[int]bool{}
		for _, c := range q.CPUs {
			set[c] = true
		}
		covered := true
		for _, c := range p.CPUs {
			if !set[c] {
				covered = false
				break
			}
		}
		if covered {
			return true
		}
	}
	return false
}

// DetectByCapacity groups CPUs by their cpu_capacity value. This is the ARM
// arch_topology route; on machines without cpu_capacity files it returns
// ErrNotAvailable.
func DetectByCapacity(fsys fs.FS) ([]Group, error) {
	return groupByPerCPUFile(fsys, "cpu_capacity", "capacity:")
}

// DetectByMaxFreq groups CPUs by cpufreq/cpuinfo_max_freq. The paper notes
// tools resort to this heuristic but it "cannot always be guaranteed to
// work" — two distinct core types may share a maximum frequency.
func DetectByMaxFreq(fsys fs.FS) ([]Group, error) {
	return groupByPerCPUFile(fsys, "cpufreq/cpuinfo_max_freq", "maxfreq:")
}

// ErrNotAvailable reports that a detection strategy's inputs do not exist
// on this machine.
var ErrNotAvailable = fmt.Errorf("sysfs: detection input not available")

func groupByPerCPUFile(fsys fs.FS, rel, keyPrefix string) ([]Group, error) {
	cpus, err := onlineCPUs(fsys)
	if err != nil {
		return nil, err
	}
	byValue := map[string][]int{}
	found := false
	for _, cpu := range cpus {
		data, err := fs.ReadFile(fsys, fmt.Sprintf("sys/devices/system/cpu/cpu%d/%s", cpu, rel))
		if err != nil {
			continue
		}
		found = true
		v := strings.TrimSpace(string(data))
		byValue[v] = append(byValue[v], cpu)
	}
	if !found {
		return nil, ErrNotAvailable
	}
	var groups []Group
	for v, ids := range byValue {
		sort.Ints(ids)
		groups = append(groups, Group{Key: keyPrefix + v, CPUs: ids})
	}
	sortGroups(groups)
	return groups, nil
}

func onlineCPUs(fsys fs.FS) ([]int, error) {
	data, err := fs.ReadFile(fsys, "sys/devices/system/cpu/online")
	if err != nil {
		return nil, fmt.Errorf("sysfs: reading online cpus: %w", err)
	}
	return ParseCPUList(string(data))
}

// DetectByCPUInfo groups CPUs by identification fields in proc/cpuinfo. On
// ARM the per-CPU "CPU part" value distinguishes Cortex-A53 from Cortex-A72;
// on x86 every CPU reports the same family/model/stepping, so the strategy
// returns a single group — the generic failure the paper describes.
func DetectByCPUInfo(fsys fs.FS) ([]Group, error) {
	data, err := fs.ReadFile(fsys, "proc/cpuinfo")
	if err != nil {
		return nil, fmt.Errorf("sysfs: reading cpuinfo: %w", err)
	}
	byKey := map[string][]int{}
	cpu := -1
	key := ""
	flush := func() {
		if cpu >= 0 {
			byKey[key] = append(byKey[key], cpu)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		line := sc.Text()
		parts := strings.SplitN(line, ":", 2)
		if len(parts) != 2 {
			continue
		}
		field := strings.TrimSpace(parts[0])
		value := strings.TrimSpace(parts[1])
		switch field {
		case "processor":
			flush()
			key = ""
			if n, err := strconv.Atoi(value); err == nil {
				cpu = n
			} else {
				cpu = -1
			}
		case "CPU part":
			key = "part:" + value
		case "cpu family":
			key += "family:" + value
		case "model":
			key += ",model:" + value
		case "stepping":
			key += ",stepping:" + value
		}
	}
	flush()
	var groups []Group
	for k, ids := range byKey {
		sort.Ints(ids)
		groups = append(groups, Group{Key: k, CPUs: ids})
	}
	sortGroups(groups)
	return groups, nil
}

// CPUIDHybrid emulates the Intel CPUID hybrid leaf (0x1A): for a given
// logical CPU it returns the core type byte (EAX[31:24]: 0x40 for Atom/E,
// 0x20 for Core/P) and whether the leaf exists. ARM machines have no CPUID.
func (f *FS) CPUIDHybrid(cpu int) (coreType uint8, ok bool) {
	if !f.m.HasCPUID || cpu < 0 || cpu >= f.m.NumCPUs() {
		return 0, false
	}
	if !f.m.Hybrid() {
		return 0, true // leaf exists, core type field is 0 on non-hybrids
	}
	if f.m.TypeOf(cpu).Class == 0 { // hw.Performance
		return 0x20, true
	}
	return 0x40, true
}

// DetectCoreTypes runs the strategies in decreasing order of reliability
// (PMU scan, cpu_capacity, cpuinfo, max frequency) and returns the first
// one that yields a usable grouping, plus the name of the strategy used.
func DetectCoreTypes(fsys fs.FS) ([]Group, string, error) {
	type strategy struct {
		name string
		fn   func(fs.FS) ([]Group, error)
	}
	strategies := []strategy{
		{"pmu", DetectByPMU},
		{"capacity", DetectByCapacity},
		{"cpuinfo", DetectByCPUInfo},
		{"maxfreq", DetectByMaxFreq},
	}
	var lastErr error
	for _, s := range strategies {
		groups, err := s.fn(fsys)
		if err != nil {
			lastErr = err
			continue
		}
		if len(groups) > 0 {
			return groups, s.name, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("sysfs: no detection strategy produced groups")
	}
	return nil, "", lastErr
}

func sortGroups(groups []Group) {
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if len(a.CPUs) > 0 && len(b.CPUs) > 0 && a.CPUs[0] != b.CPUs[0] {
			return a.CPUs[0] < b.CPUs[0]
		}
		return a.Key < b.Key
	})
}
