package sysfs

import (
	"testing"
)

// FuzzParseCPUList checks the cpulist parser never panics and that any
// accepted list round-trips through FormatCPUList.
func FuzzParseCPUList(f *testing.F) {
	for _, seed := range []string{
		"0", "0-3", "0,2,4,6,8,10,12,14,16-24", "1-", "-1", ",", "0-0",
		"99999999", "0-99999999", "3-1", " 1 , 2 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ids, err := ParseCPUList(s)
		if err != nil {
			return
		}
		again, err := ParseCPUList(FormatCPUList(ids))
		if err != nil {
			t.Fatalf("formatted list %q does not parse: %v", FormatCPUList(ids), err)
		}
		if len(again) != len(ids) {
			t.Fatalf("round trip changed cardinality: %v vs %v", ids, again)
		}
		for i := range ids {
			if ids[i] != again[i] {
				t.Fatalf("round trip changed ids: %v vs %v", ids, again)
			}
		}
	})
}
