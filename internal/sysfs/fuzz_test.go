package sysfs

import (
	"io/fs"
	"strings"
	"testing"

	"hetpapi/internal/hw"
)

// FuzzParseCPUList checks the cpulist parser never panics and that any
// accepted list round-trips through FormatCPUList.
func FuzzParseCPUList(f *testing.F) {
	for _, seed := range []string{
		"0", "0-3", "0,2,4,6,8,10,12,14,16-24", "1-", "-1", ",", "0-0",
		"99999999", "0-99999999", "3-1", " 1 , 2 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ids, err := ParseCPUList(s)
		if err != nil {
			return
		}
		again, err := ParseCPUList(FormatCPUList(ids))
		if err != nil {
			t.Fatalf("formatted list %q does not parse: %v", FormatCPUList(ids), err)
		}
		if len(again) != len(ids) {
			t.Fatalf("round trip changed cardinality: %v vs %v", ids, again)
		}
		for i := range ids {
			if ids[i] != again[i] {
				t.Fatalf("round trip changed ids: %v vs %v", ids, again)
			}
		}
	})
}

// FuzzFSPaths throws arbitrary path strings at the synthetic tree's
// accessors on every machine model: none may panic, and the three entry
// points (Open, ReadFile, Exists) must agree about what exists.
func FuzzFSPaths(f *testing.F) {
	for _, seed := range []string{
		"sys/devices/cpu_core/type",
		"sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq",
		"sys/devices/system/cpu/cpu23/topology/core_cpus_list",
		"sys/class/thermal/thermal_zone9/temp",
		"sys/class/powercap/intel-rapl:0/energy_uj",
		"proc/cpuinfo",
		"sys/devices/system/cpu",
		"", ".", "/", "//", "..", "../etc/passwd",
		"/sys/devices/cpu_core/type", // leading slash is not fs-rooted
		"sys/devices/system/cpu/cpu99999/cpufreq/scaling_cur_freq",
		"sys\x00devices", "sys/devices/system/cpu/", "SYS/DEVICES",
		strings.Repeat("a/", 100) + "b",
	} {
		f.Add(seed)
	}
	trees := []*FS{
		New(hw.RaptorLake(), nil),
		New(hw.OrangePi800(), nil),
		New(hw.Dimensity9000(), nil),
		New(hw.Homogeneous(), nil),
	}
	f.Fuzz(func(t *testing.T, name string) {
		for _, tree := range trees {
			content, rfErr := tree.ReadFile(name)
			file, openErr := tree.Open(name)
			if file != nil {
				file.Close()
			}
			exists := tree.Exists(name)
			if rfErr == nil {
				if !exists {
					t.Fatalf("ReadFile(%q) succeeded but Exists is false", name)
				}
				if openErr != nil {
					t.Fatalf("ReadFile(%q) succeeded but Open failed: %v", name, openErr)
				}
				if !fs.ValidPath(name) {
					t.Fatalf("ReadFile accepted invalid fs path %q", name)
				}
				if strings.TrimSpace(content) != content {
					t.Fatalf("ReadFile(%q) returned untrimmed content %q", name, content)
				}
			}
			if openErr == nil && !exists {
				t.Fatalf("Open(%q) succeeded but Exists is false", name)
			}
		}
	})
}
