// Package sysfs builds the synthetic /sys and /proc discovery surface of a
// simulated machine, and implements the heterogeneous core detection
// strategies that section IV.B of the paper enumerates.
//
// The tree is exposed through the standard io/fs.FS interface (paths are
// fs-rooted, i.e. "sys/devices/cpu_atom/type" without a leading slash).
// File contents are generated on each read, so live values such as
// scaling_cur_freq, thermal zone temperatures and RAPL energy_uj track the
// running simulation when a Live provider is attached.
//
// Files provided:
//
//	sys/devices/<pmu>/type                     dynamic perf type id
//	sys/devices/<pmu>/cpus                     cpu list covered by the PMU
//	sys/devices/system/cpu/{possible,online}
//	sys/devices/system/cpu/cpuN/cpu_capacity   (ARM machines only)
//	sys/devices/system/cpu/cpuN/cpufreq/{cpuinfo_max_freq,cpuinfo_min_freq,scaling_cur_freq}
//	sys/devices/system/cpu/cpuN/topology/{core_id,core_cpus_list}
//	sys/class/thermal/thermal_zoneN/{type,temp}
//	sys/class/powercap/intel-rapl:0/{name,energy_uj,constraint_0_power_limit_uw,constraint_1_power_limit_uw}  (RAPL machines)
//	proc/cpuinfo
package sysfs

import (
	"fmt"
	"sort"
	"strings"

	"hetpapi/internal/hw"
)

// Live supplies the time-varying values of the tree. A nil Live leaves the
// dynamic files at plausible idle values.
type Live interface {
	// CurFreqKHz returns the current frequency of a logical CPU in kHz.
	CurFreqKHz(cpu int) int
	// ZoneTempMilliC returns the temperature of the machine's thermal zone
	// in millidegrees Celsius.
	ZoneTempMilliC() int
	// EnergyUJ returns the accumulated RAPL package energy in microjoules.
	EnergyUJ() uint64
}

// FS is the synthetic tree. It implements io/fs.FS.
type FS struct {
	m     *hw.Machine
	live  Live
	files map[string]func() string
	dirs  map[string][]string
}

// New builds the tree for a machine. live may be nil.
func New(m *hw.Machine, live Live) *FS {
	f := &FS{m: m, live: live, files: map[string]func() string{}}
	f.build()
	f.indexDirs()
	return f
}

// Machine returns the machine the tree was built from.
func (f *FS) Machine() *hw.Machine { return f.m }

func static(s string) func() string { return func() string { return s } }

func (f *FS) build() {
	m := f.m
	// PMU directories, as the perf tool scans them.
	for i := range m.Types {
		t := &m.Types[i]
		dir := "sys/devices/" + t.PMU.Name
		f.files[dir+"/type"] = static(fmt.Sprintf("%d\n", t.PMU.PerfType))
		f.files[dir+"/cpus"] = static(FormatCPUList(m.CPUsOfType(t.Name)) + "\n")
	}
	for i := range m.Uncore {
		u := &m.Uncore[i]
		dir := "sys/devices/" + u.PMU.Name
		f.files[dir+"/type"] = static(fmt.Sprintf("%d\n", u.PMU.PerfType))
		f.files[dir+"/cpumask"] = static("0\n")
	}
	if m.Power.HasRAPL {
		f.files["sys/devices/power/type"] = static(fmt.Sprintf("%d\n", m.Power.RAPLPerfType))
		f.files["sys/devices/power/cpus"] = static("0\n")
	}

	all := make([]int, m.NumCPUs())
	for i := range all {
		all[i] = i
	}
	f.files["sys/devices/system/cpu/possible"] = static(FormatCPUList(all) + "\n")
	f.files["sys/devices/system/cpu/online"] = static(FormatCPUList(all) + "\n")

	for _, c := range m.CPUs {
		cpu := c
		t := &m.Types[c.TypeIndex]
		base := fmt.Sprintf("sys/devices/system/cpu/cpu%d", c.ID)
		if m.HasCPUCapacity {
			f.files[base+"/cpu_capacity"] = static(fmt.Sprintf("%d\n", t.Capacity))
		}
		f.files[base+"/cpufreq/cpuinfo_max_freq"] = static(fmt.Sprintf("%d\n", int(t.MaxFreqMHz*1000)))
		f.files[base+"/cpufreq/cpuinfo_min_freq"] = static(fmt.Sprintf("%d\n", int(t.MinFreqMHz*1000)))
		f.files[base+"/cpufreq/scaling_cur_freq"] = func() string {
			if f.live != nil {
				return fmt.Sprintf("%d\n", f.live.CurFreqKHz(cpu.ID))
			}
			return fmt.Sprintf("%d\n", int(t.MinFreqMHz*1000))
		}
		f.files[base+"/topology/core_id"] = static(fmt.Sprintf("%d\n", c.PhysCore))
		siblings := []int{c.ID}
		if s := m.SiblingOf(c.ID); s >= 0 {
			siblings = append(siblings, s)
			sort.Ints(siblings)
		}
		f.files[base+"/topology/core_cpus_list"] = static(FormatCPUList(siblings) + "\n")
	}

	zone := fmt.Sprintf("sys/class/thermal/thermal_zone%d", m.Thermal.ZoneIndex)
	f.files[zone+"/type"] = static(m.Thermal.ZoneName + "\n")
	f.files[zone+"/temp"] = func() string {
		if f.live != nil {
			return fmt.Sprintf("%d\n", f.live.ZoneTempMilliC())
		}
		return fmt.Sprintf("%d\n", int(m.Thermal.AmbientC*1000))
	}

	if m.Power.HasRAPL {
		rapl := "sys/class/powercap/intel-rapl:0"
		f.files[rapl+"/name"] = static("package-0\n")
		f.files[rapl+"/energy_uj"] = func() string {
			if f.live != nil {
				return fmt.Sprintf("%d\n", f.live.EnergyUJ())
			}
			return "0\n"
		}
		f.files[rapl+"/constraint_0_power_limit_uw"] = static(fmt.Sprintf("%d\n", int(m.Power.PL1Watts*1e6)))
		f.files[rapl+"/constraint_1_power_limit_uw"] = static(fmt.Sprintf("%d\n", int(m.Power.PL2Watts*1e6)))
	}

	f.files["proc/cpuinfo"] = static(f.cpuinfo())
}

func (f *FS) cpuinfo() string {
	m := f.m
	var b strings.Builder
	for _, c := range m.CPUs {
		t := &m.Types[c.TypeIndex]
		if m.Arch == "aarch64" {
			// ARM style: the "CPU part" field differs between core types,
			// which is why /proc/cpuinfo works as a detection strategy on
			// ARM (paper section IV.B).
			fmt.Fprintf(&b, "processor\t: %d\n", c.ID)
			fmt.Fprintf(&b, "BogoMIPS\t: 48.00\n")
			fmt.Fprintf(&b, "Features\t: fp asimd evtstrm aes pmull sha1 sha2 crc32\n")
			fmt.Fprintf(&b, "CPU implementer\t: 0x41\n")
			fmt.Fprintf(&b, "CPU architecture: %d\n", m.Family)
			fmt.Fprintf(&b, "CPU variant\t: 0x0\n")
			fmt.Fprintf(&b, "CPU part\t: 0x%03x\n", armPartFor(t.Microarch))
			fmt.Fprintf(&b, "CPU revision\t: %d\n\n", m.Stepping)
			continue
		}
		// x86 style: family/model/stepping and the model name are
		// identical for P- and E-cores, so cpuinfo cannot tell the core
		// types apart — the failure mode the paper calls out.
		fmt.Fprintf(&b, "processor\t: %d\n", c.ID)
		fmt.Fprintf(&b, "vendor_id\t: %s\n", m.Vendor)
		fmt.Fprintf(&b, "cpu family\t: %d\n", m.Family)
		fmt.Fprintf(&b, "model\t\t: %d\n", m.Model)
		fmt.Fprintf(&b, "model name\t: %s\n", m.CPUModel)
		fmt.Fprintf(&b, "stepping\t: %d\n", m.Stepping)
		fmt.Fprintf(&b, "core id\t\t: %d\n", c.PhysCore)
		fmt.Fprintf(&b, "cpu MHz\t\t: %.3f\n\n", t.BaseFreqMHz)
	}
	return b.String()
}

func armPartFor(uarch string) int {
	switch uarch {
	case "Cortex-A53":
		return 0xd03
	case "Cortex-A72":
		return 0xd08
	case "Cortex-A55":
		return 0xd05
	case "Cortex-A76":
		return 0xd0b
	case "Cortex-A510":
		return 0xd46
	case "Cortex-A710":
		return 0xd47
	case "Cortex-X2":
		return 0xd48
	default:
		return 0xfff
	}
}

// FormatCPUList renders a sorted id list in kernel cpulist format, e.g.
// "0-3,8,10-11".
func FormatCPUList(ids []int) string {
	if len(ids) == 0 {
		return ""
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	var parts []string
	start, prev := sorted[0], sorted[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, id := range sorted[1:] {
		if id == prev {
			continue
		}
		if id == prev+1 {
			prev = id
			continue
		}
		flush()
		start, prev = id, id
	}
	flush()
	return strings.Join(parts, ",")
}

// MaxParseCPUID bounds the ids ParseCPUList accepts: cpulists name logical
// CPUs, and no supported machine has more than a few dozen. The bound also
// keeps hostile inputs ("0-99999999") from allocating unbounded memory.
const MaxParseCPUID = 4095

// ParseCPUList parses kernel cpulist format ("0,2,4-7") into a sorted list
// of unique ids.
func ParseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("sysfs: empty element in cpu list %q", s)
		}
		var lo, hi int
		if strings.Contains(part, "-") {
			if _, err := fmt.Sscanf(part, "%d-%d", &lo, &hi); err != nil {
				return nil, fmt.Errorf("sysfs: bad cpu range %q: %v", part, err)
			}
		} else {
			if _, err := fmt.Sscanf(part, "%d", &lo); err != nil {
				return nil, fmt.Errorf("sysfs: bad cpu id %q: %v", part, err)
			}
			hi = lo
		}
		if lo < 0 || hi < lo {
			return nil, fmt.Errorf("sysfs: bad cpu range %q", part)
		}
		if hi > MaxParseCPUID {
			return nil, fmt.Errorf("sysfs: cpu id %d exceeds the supported maximum %d", hi, MaxParseCPUID)
		}
		for i := lo; i <= hi; i++ {
			seen[i] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}
