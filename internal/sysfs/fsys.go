package sysfs

import (
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"time"
)

// indexDirs derives the directory structure from the file map so the tree
// can be walked with fs.WalkDir and listed with fs.ReadDir.
func (f *FS) indexDirs() {
	f.dirs = map[string][]string{}
	children := map[string]map[string]bool{}
	add := func(dir, child string) {
		if children[dir] == nil {
			children[dir] = map[string]bool{}
		}
		children[dir][child] = true
	}
	for name := range f.files {
		for cur := name; cur != "."; {
			parent := path.Dir(cur)
			add(parent, path.Base(cur))
			cur = parent
		}
	}
	for dir, set := range children {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		f.dirs[dir] = names
	}
	if f.dirs["."] == nil {
		f.dirs["."] = nil
	}
}

// Open implements fs.FS.
func (f *FS) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	if gen, ok := f.files[name]; ok {
		return &memFile{name: path.Base(name), data: []byte(gen())}, nil
	}
	if entries, ok := f.dirs[name]; ok {
		return &memDir{fsys: f, name: name, entries: entries}, nil
	}
	return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
}

// ReadFile reads the whole content of a file as a string, with surrounding
// whitespace trimmed — the common pattern for sysfs one-value files.
func (f *FS) ReadFile(name string) (string, error) {
	file, err := f.Open(name)
	if err != nil {
		return "", err
	}
	defer file.Close()
	data, err := io.ReadAll(file)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(data)), nil
}

// Exists reports whether a file or directory is present.
func (f *FS) Exists(name string) bool {
	if _, ok := f.files[name]; ok {
		return true
	}
	_, ok := f.dirs[name]
	return ok
}

type memFile struct {
	name string
	data []byte
	off  int
}

func (m *memFile) Stat() (fs.FileInfo, error) {
	return fileInfo{name: m.name, size: int64(len(m.data))}, nil
}

func (m *memFile) Read(p []byte) (int, error) {
	if m.off >= len(m.data) {
		return 0, io.EOF
	}
	n := copy(p, m.data[m.off:])
	m.off += n
	return n, nil
}

func (m *memFile) Close() error { return nil }

type memDir struct {
	fsys    *FS
	name    string
	entries []string
	off     int
}

func (d *memDir) Stat() (fs.FileInfo, error) {
	return fileInfo{name: path.Base(d.name), dir: true}, nil
}

func (d *memDir) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.name, Err: fs.ErrInvalid}
}

func (d *memDir) Close() error { return nil }

func (d *memDir) ReadDir(n int) ([]fs.DirEntry, error) {
	remaining := d.entries[d.off:]
	if n <= 0 {
		d.off = len(d.entries)
		return d.mkEntries(remaining), nil
	}
	if len(remaining) == 0 {
		return nil, io.EOF
	}
	if n > len(remaining) {
		n = len(remaining)
	}
	d.off += n
	return d.mkEntries(remaining[:n]), nil
}

func (d *memDir) mkEntries(names []string) []fs.DirEntry {
	out := make([]fs.DirEntry, 0, len(names))
	for _, name := range names {
		full := name
		if d.name != "." {
			full = d.name + "/" + name
		}
		if gen, ok := d.fsys.files[full]; ok {
			out = append(out, dirEntry{fileInfo{name: name, size: int64(len(gen()))}})
		} else {
			out = append(out, dirEntry{fileInfo{name: name, dir: true}})
		}
	}
	return out
}

type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return fi.size }
func (fi fileInfo) Mode() fs.FileMode {
	if fi.dir {
		return fs.ModeDir | 0o555
	}
	return 0o444
}
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.dir }
func (fi fileInfo) Sys() any           { return nil }

type dirEntry struct{ fi fileInfo }

func (d dirEntry) Name() string               { return d.fi.name }
func (d dirEntry) IsDir() bool                { return d.fi.dir }
func (d dirEntry) Type() fs.FileMode          { return d.fi.Mode().Type() }
func (d dirEntry) Info() (fs.FileInfo, error) { return d.fi, nil }
