package sysfs

import (
	"strings"
	"testing"

	"hetpapi/internal/hw"
)

func TestTriCoreDetection(t *testing.T) {
	f := New(hw.Dimensity9000(), nil)

	// PMU scan: three core PMUs.
	groups, err := DetectByPMU(f)
	if err != nil {
		t.Fatal(err)
	}
	if !groupsEqual(groups, [][]int{ids(0, 3), ids(4, 6), {7}}) {
		t.Fatalf("pmu groups = %+v", groups)
	}

	// Capacity: the paper's 250/512/1024 triple.
	groups, err = DetectByCapacity(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("capacity groups = %+v", groups)
	}
	wantKeys := []string{"capacity:250", "capacity:512", "capacity:1024"}
	for i, g := range groups {
		if g.Key != wantKeys[i] {
			t.Errorf("group %d key = %q, want %q", i, g.Key, wantKeys[i])
		}
	}

	// cpuinfo: three distinct CPU part values.
	groups, err = DetectByCPUInfo(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("cpuinfo groups = %+v", groups)
	}
	info, _ := f.ReadFile("proc/cpuinfo")
	for _, part := range []string{"0xd46", "0xd47", "0xd48"} {
		if !strings.Contains(info, part) {
			t.Errorf("cpuinfo missing CPU part %s", part)
		}
	}

	// Max frequency also splits three ways on this machine.
	groups, err = DetectByMaxFreq(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("maxfreq groups = %+v", groups)
	}
}
