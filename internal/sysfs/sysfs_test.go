package sysfs

import (
	"io/fs"
	"strings"
	"testing"
	"testing/fstest"
	"testing/quick"

	"hetpapi/internal/hw"
)

func TestFSConformance(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	if err := fstest.TestFS(f,
		"sys/devices/cpu_core/type",
		"sys/devices/cpu_atom/type",
		"sys/devices/power/type",
		"sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq",
		"sys/class/thermal/thermal_zone9/type",
		"sys/class/powercap/intel-rapl:0/energy_uj",
		"proc/cpuinfo",
	); err != nil {
		t.Fatal(err)
	}
}

func TestPMUTypeFiles(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	if got, _ := f.ReadFile("sys/devices/cpu_core/type"); got != "8" {
		t.Errorf("cpu_core/type = %q, want 8", got)
	}
	if got, _ := f.ReadFile("sys/devices/cpu_atom/type"); got != "10" {
		t.Errorf("cpu_atom/type = %q, want 10", got)
	}
	if got, _ := f.ReadFile("sys/devices/cpu_atom/cpus"); got != "16-23" {
		t.Errorf("cpu_atom/cpus = %q, want 16-23", got)
	}
	if got, _ := f.ReadFile("sys/devices/cpu_core/cpus"); got != "0-15" {
		t.Errorf("cpu_core/cpus = %q, want 0-15", got)
	}
}

func TestCapacityOnlyOnARM(t *testing.T) {
	arm := New(hw.OrangePi800(), nil)
	if got, _ := arm.ReadFile("sys/devices/system/cpu/cpu0/cpu_capacity"); got != "485" {
		t.Errorf("cpu0 capacity = %q, want 485 (A53)", got)
	}
	if got, _ := arm.ReadFile("sys/devices/system/cpu/cpu4/cpu_capacity"); got != "1024" {
		t.Errorf("cpu4 capacity = %q, want 1024 (A72)", got)
	}
	x86 := New(hw.RaptorLake(), nil)
	if x86.Exists("sys/devices/system/cpu/cpu0/cpu_capacity") {
		t.Error("x86 machine must not expose cpu_capacity")
	}
}

func TestNoRAPLTreeOnARM(t *testing.T) {
	arm := New(hw.OrangePi800(), nil)
	if arm.Exists("sys/class/powercap/intel-rapl:0/energy_uj") {
		t.Error("ARM machine must not expose intel-rapl")
	}
	if arm.Exists("sys/devices/power/type") {
		t.Error("ARM machine must not expose a power PMU")
	}
}

type fakeLive struct {
	freq map[int]int
	temp int
	uj   uint64
}

func (f fakeLive) CurFreqKHz(cpu int) int { return f.freq[cpu] }
func (f fakeLive) ZoneTempMilliC() int    { return f.temp }
func (f fakeLive) EnergyUJ() uint64       { return f.uj }

func TestLiveValues(t *testing.T) {
	live := fakeLive{freq: map[int]int{0: 4200000, 16: 3100000}, temp: 67500, uj: 123456789}
	f := New(hw.RaptorLake(), live)
	if got, _ := f.ReadFile("sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"); got != "4200000" {
		t.Errorf("cpu0 cur freq = %q", got)
	}
	if got, _ := f.ReadFile("sys/class/thermal/thermal_zone9/temp"); got != "67500" {
		t.Errorf("zone temp = %q", got)
	}
	if got, _ := f.ReadFile("sys/class/powercap/intel-rapl:0/energy_uj"); got != "123456789" {
		t.Errorf("energy_uj = %q", got)
	}
}

func TestStaticDefaults(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	if got, _ := f.ReadFile("sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq"); got != "5100000" {
		t.Errorf("P max freq = %q, want 5100000 kHz", got)
	}
	if got, _ := f.ReadFile("sys/devices/system/cpu/cpu16/cpufreq/cpuinfo_max_freq"); got != "4100000" {
		t.Errorf("E max freq = %q, want 4100000 kHz", got)
	}
	if got, _ := f.ReadFile("sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw"); got != "65000000" {
		t.Errorf("PL1 = %q, want 65000000", got)
	}
	if got, _ := f.ReadFile("sys/class/powercap/intel-rapl:0/constraint_1_power_limit_uw"); got != "219000000" {
		t.Errorf("PL2 = %q, want 219000000", got)
	}
}

func TestTopologyFiles(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	if got, _ := f.ReadFile("sys/devices/system/cpu/cpu1/topology/core_cpus_list"); got != "0-1" {
		t.Errorf("cpu1 siblings = %q, want 0-1", got)
	}
	if got, _ := f.ReadFile("sys/devices/system/cpu/cpu16/topology/core_cpus_list"); got != "16" {
		t.Errorf("cpu16 siblings = %q, want 16", got)
	}
}

func TestOpenErrors(t *testing.T) {
	f := New(hw.RaptorLake(), nil)
	if _, err := f.Open("no/such/file"); err == nil {
		t.Error("expected not-exist error")
	}
	if _, err := f.Open("/sys/devices"); err == nil {
		t.Error("expected invalid path error for rooted path")
	}
	if _, err := f.ReadFile("nope"); err == nil {
		t.Error("ReadFile must propagate errors")
	}
}

func TestFormatCPUList(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 2, 4}, "0,2,4"},
		{[]int{5, 0, 1, 2, 7, 8}, "0-2,5,7-8"},
		{[]int{1, 1, 2}, "1-2"},
	}
	for _, c := range cases {
		if got := FormatCPUList(c.in); got != c.want {
			t.Errorf("FormatCPUList(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseCPUList(t *testing.T) {
	got, err := ParseCPUList("0,2,4,6,8,10,12,14,16-24")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 17, 18, 19, 20, 21, 22, 23, 24}
	if len(got) != len(want) {
		t.Fatalf("ParseCPUList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseCPUList = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"a", "1-", "3-1", "-1", "1,,2"} {
		if _, err := ParseCPUList(bad); err == nil {
			t.Errorf("ParseCPUList(%q) should fail", bad)
		}
	}
	if got, err := ParseCPUList("  "); err != nil || got != nil {
		t.Errorf("empty list should parse to nil, got %v, %v", got, err)
	}
}

// Property: FormatCPUList and ParseCPUList are inverses on sorted unique
// id sets.
func TestCPUListRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[int]bool{}
		var ids []int
		for _, r := range raw {
			id := int(r)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		formatted := FormatCPUList(ids)
		parsed, err := ParseCPUList(formatted)
		if err != nil {
			return false
		}
		if len(parsed) != len(ids) {
			return false
		}
		for _, id := range parsed {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPUInfoContents(t *testing.T) {
	x86, _ := New(hw.RaptorLake(), nil).ReadFile("proc/cpuinfo")
	if !strings.Contains(x86, "GenuineIntel") || !strings.Contains(x86, "i7-13700") {
		t.Error("x86 cpuinfo missing vendor/model")
	}
	if strings.Contains(x86, "CPU part") {
		t.Error("x86 cpuinfo must not contain ARM fields")
	}
	arm, _ := New(hw.OrangePi800(), nil).ReadFile("proc/cpuinfo")
	if !strings.Contains(arm, "0xd03") || !strings.Contains(arm, "0xd08") {
		t.Error("ARM cpuinfo must contain both CPU part values")
	}
}

func TestWalkFindsEverything(t *testing.T) {
	f := New(hw.OrangePi800(), nil)
	var files int
	err := fs.WalkDir(f, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			files++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 PMU dirs x2 + online/possible + 6 cpus x (capacity + 3 cpufreq + 2
	// topology) + 2 thermal + cpuinfo = 4+2+36+2+1 = 45
	if files != 45 {
		t.Errorf("walk found %d files, want 45", files)
	}
}

func TestParseCPUListBounded(t *testing.T) {
	// Hostile ranges must be rejected rather than expanded into memory.
	if _, err := ParseCPUList("0-99999999"); err == nil {
		t.Fatal("unbounded range must be rejected")
	}
	if _, err := ParseCPUList("4096"); err == nil {
		t.Fatal("id above MaxParseCPUID must be rejected")
	}
	if ids, err := ParseCPUList("4095"); err != nil || len(ids) != 1 {
		t.Fatalf("MaxParseCPUID itself must parse: %v %v", ids, err)
	}
}
