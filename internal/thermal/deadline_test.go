package thermal

// TimeToReachSec is the closed-form first-order ETA the simulator's
// thermal-settle advisory event uses. It must agree with the tick
// integrator (within integration error) and return the documented
// sentinels at the asymptote edges.

import (
	"math"
	"testing"

	"hetpapi/internal/hw"
)

func rcSpec() hw.ThermalSpec {
	return hw.ThermalSpec{
		AmbientC:         25,
		TjMaxC:           100,
		ResistanceCPerW:  0.5,
		CapacitanceJPerC: 40,
	}
}

func TestTimeToReachMatchesIntegrator(t *testing.T) {
	const powerW = 60 // steady state 25 + 30 = 55 C
	analytic := New(rcSpec())
	analytic.SetTempC(30)
	eta := analytic.TimeToReachSec(50, powerW)
	if eta <= 0 || math.IsInf(eta, 0) {
		t.Fatalf("ETA = %v, want finite positive", eta)
	}

	stepped := New(rcSpec())
	stepped.SetTempC(30)
	const h = 0.001
	var elapsed float64
	for stepped.TempC() < 50 {
		stepped.Step(powerW, h)
		elapsed += h
		if elapsed > 1000 {
			t.Fatal("integrator never reached 50 C")
		}
	}
	if math.Abs(elapsed-eta) > 0.05*eta {
		t.Fatalf("integrator took %.3f s, closed form says %.3f s", elapsed, eta)
	}
}

func TestTimeToReachAlreadyMet(t *testing.T) {
	m := New(rcSpec())
	m.SetTempC(60)
	// Cooling toward 55 C steady state: a target above the current
	// temperature (in the approach direction) is already satisfied.
	if got := m.TimeToReachSec(65, 60); got != 0 {
		t.Fatalf("target already passed: ETA = %v, want 0", got)
	}
	// Warming: target below current temperature is already satisfied.
	m.SetTempC(40)
	if got := m.TimeToReachSec(35, 60); got != 0 {
		t.Fatalf("target already passed warming: ETA = %v, want 0", got)
	}
}

func TestTimeToReachUnreachable(t *testing.T) {
	m := New(rcSpec())
	m.SetTempC(30)
	// Steady state at 60 W is 55 C; anything at or beyond it is never
	// reached by the exponential approach.
	if got := m.TimeToReachSec(55, 60); !math.IsInf(got, 1) {
		t.Fatalf("target at asymptote: ETA = %v, want +Inf", got)
	}
	if got := m.TimeToReachSec(70, 60); !math.IsInf(got, 1) {
		t.Fatalf("target beyond asymptote: ETA = %v, want +Inf", got)
	}
	// Already at steady state: no motion at all.
	m.SetTempC(55)
	if got := m.TimeToReachSec(50, 60); !math.IsInf(got, 1) {
		t.Fatalf("at asymptote: ETA = %v, want +Inf", got)
	}
}
