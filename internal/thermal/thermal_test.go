package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"hetpapi/internal/hw"
)

func TestStartsAtAmbient(t *testing.T) {
	m := New(hw.RaptorLake().Thermal)
	if m.TempC() != 25 {
		t.Fatalf("initial temp = %g, want ambient 25", m.TempC())
	}
	if m.TempMilliC() != 25000 {
		t.Fatalf("TempMilliC = %d", m.TempMilliC())
	}
}

func TestApproachesSteadyState(t *testing.T) {
	m := New(hw.RaptorLake().Thermal)
	const p = 65.0
	want := m.SteadyStateC(p)
	for i := 0; i < 100000; i++ {
		m.Step(p, 0.01)
	}
	if math.Abs(m.TempC()-want) > 0.5 {
		t.Fatalf("after long run temp = %g, want steady state %g", m.TempC(), want)
	}
}

func TestRaptorLakeStaysBelowTjMaxAtPL1(t *testing.T) {
	// Paper: neither benchmark is thermally throttled; the 65 W limit and
	// adequate cooling keep the package below 100 degC.
	m := New(hw.RaptorLake().Thermal)
	if ss := m.SteadyStateC(65); ss >= 90 {
		t.Fatalf("Raptor Lake steady state at 65 W = %g degC; cooling model too weak", ss)
	}
	if m.Throttling() {
		t.Fatal("desktop must never report passive throttling")
	}
}

func TestOrangePiBigCoresOverheat(t *testing.T) {
	// Paper Fig 3: the big cores push the SoC past the passive trip within
	// seconds.
	spec := hw.OrangePi800().Thermal
	m := New(spec)
	const bigPower = 7.0 // two A72s flat out plus base
	if ss := m.SteadyStateC(bigPower); ss < spec.PassiveTripC {
		t.Fatalf("steady state %g below trip %g: big cores would never throttle", ss, spec.PassiveTripC)
	}
	var crossed float64 = -1
	for sec := 0.0; sec < 120; sec += 0.1 {
		m.Step(bigPower, 0.1)
		if m.TempC() >= spec.PassiveTripC {
			crossed = sec
			break
		}
	}
	if crossed < 0 {
		t.Fatal("never crossed the trip point")
	}
	if crossed > 60 {
		t.Fatalf("crossed trip after %.1f s; paper shows throttling within seconds", crossed)
	}
	if !m.Throttling() {
		t.Fatal("Throttling() must report true at the trip point")
	}
}

func TestOrangePiLittleCoresSustain(t *testing.T) {
	// Paper Fig 4: four LITTLE cores run HPL without (much) throttling.
	spec := hw.OrangePi800().Thermal
	m := New(spec)
	const littlePower = 2.4 // four A53s flat out plus base
	if ss := m.SteadyStateC(littlePower); ss >= spec.PassiveTripC {
		t.Fatalf("LITTLE-only steady state %g exceeds trip %g", ss, spec.PassiveTripC)
	}
}

func TestSettleTo(t *testing.T) {
	m := New(hw.RaptorLake().Thermal)
	m.SetTempC(70)
	secs := m.SettleTo(35, 8)
	if m.TempC() > 35.01 {
		t.Fatalf("settled at %g, want <= 35", m.TempC())
	}
	if secs <= 0 {
		t.Fatal("settling must take time")
	}
	// Asking for a target below the idle steady state settles at the
	// steady state instead of looping forever.
	m.SetTempC(70)
	m.SettleTo(0, 8)
	if m.TempC() < m.Spec().AmbientC {
		t.Fatal("cooled below ambient")
	}
}

func TestClampedAtTjMax(t *testing.T) {
	m := New(hw.OrangePi800().Thermal)
	for i := 0; i < 10000; i++ {
		m.Step(1000, 0.1)
	}
	if m.TempC() > m.Spec().TjMaxC {
		t.Fatalf("temp %g exceeded TjMax", m.TempC())
	}
}

func TestZeroOrNegativeDtIsNoop(t *testing.T) {
	m := New(hw.RaptorLake().Thermal)
	m.Step(100, 0)
	m.Step(100, -1)
	if m.TempC() != 25 {
		t.Fatal("zero/negative dt must not change temperature")
	}
}

func TestStringFormat(t *testing.T) {
	m := New(hw.RaptorLake().Thermal)
	if s := m.String(); s != "thermal_zone9(x86_pkg_temp)=25000mC" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: temperature is monotonic toward the steady state — heating when
// below it, cooling when above — and never passes it within a step.
func TestMonotoneTowardSteadyState(t *testing.T) {
	spec := hw.OrangePi800().Thermal
	f := func(p8, t8 uint8) bool {
		p := float64(p8) / 16 // 0..16 W
		start := spec.AmbientC + float64(t8)/4
		if start > spec.TjMaxC {
			start = spec.TjMaxC
		}
		m := New(spec)
		m.SetTempC(start)
		ss := m.SteadyStateC(p)
		if ss > spec.TjMaxC {
			ss = spec.TjMaxC
		}
		before := m.TempC()
		m.Step(p, 0.05)
		after := m.TempC()
		if before < ss {
			return after >= before && after <= ss+1e-9
		}
		return after <= before && after >= ss-1e-9 || after == spec.AmbientC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PowerForTempC inverts SteadyStateC.
func TestPowerTempInverse(t *testing.T) {
	m := New(hw.RaptorLake().Thermal)
	f := func(p8 uint8) bool {
		p := float64(p8)
		return math.Abs(m.PowerForTempC(m.SteadyStateC(p))-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
