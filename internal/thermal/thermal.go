// Package thermal implements the lumped RC thermal model behind the
// simulated machines' package thermal zones.
//
// The model is the standard first-order network: a heat capacitance C
// (J/degC) warmed by the package power and cooled through a resistance R
// (degC/W) to ambient:
//
//	C * dT/dt = P - (T - Tambient) / R
//
// A desktop tower (Raptor Lake preset) has a large C and tiny R, so at its
// 65 W sustained power limit it settles far below TjMax — matching the
// paper's observation that neither HPL variant is thermally throttled
// there. The passively cooled OrangePi has a small C and large R, so its
// big cores cross the 85 degC passive trip within seconds of starting HPL.
package thermal

import (
	"fmt"
	"math"

	"hetpapi/internal/hw"
)

// Model integrates the package temperature of one machine.
type Model struct {
	spec  hw.ThermalSpec
	tempC float64
}

// New returns a model initialized at ambient temperature.
func New(spec hw.ThermalSpec) *Model {
	return &Model{spec: spec, tempC: spec.AmbientC}
}

// Spec returns the thermal constants the model runs on.
func (m *Model) Spec() hw.ThermalSpec { return m.spec }

// TempC returns the current zone temperature in degrees Celsius.
func (m *Model) TempC() float64 { return m.tempC }

// TempMilliC returns the temperature in millidegrees, the unit
// /sys/class/thermal exposes.
func (m *Model) TempMilliC() int { return int(m.tempC * 1000) }

// SetTempC forces the zone temperature (used to start runs from a settled
// state, mirroring the paper's wait-for-35-degC protocol).
func (m *Model) SetTempC(t float64) { m.tempC = t }

// AddHeatJ dumps an instantaneous amount of heat into the zone's
// capacitance, clamped to the [ambient, TjMax] band the model operates in.
// Scenario harnesses use it to model external thermal events (a blocked
// fan, sun on the enclosure) and drive the passive-trip machinery without
// waiting for the workload to warm the package.
func (m *Model) AddHeatJ(j float64) {
	m.tempC += j / m.spec.CapacitanceJPerC
	if m.tempC < m.spec.AmbientC {
		m.tempC = m.spec.AmbientC
	}
	if m.tempC > m.spec.TjMaxC {
		m.tempC = m.spec.TjMaxC
	}
}

// Step advances the model by dtSec seconds with the given package power.
// The integration is split into sub-steps when dt is large relative to the
// RC time constant so the explicit Euler update stays stable.
func (m *Model) Step(powerW, dtSec float64) {
	if dtSec <= 0 {
		return
	}
	tau := m.spec.ResistanceCPerW * m.spec.CapacitanceJPerC
	steps := 1
	if dtSec > tau/4 {
		steps = int(dtSec/(tau/4)) + 1
	}
	h := dtSec / float64(steps)
	for i := 0; i < steps; i++ {
		dT := (powerW - (m.tempC-m.spec.AmbientC)/m.spec.ResistanceCPerW) / m.spec.CapacitanceJPerC
		m.tempC += dT * h
	}
	if m.tempC < m.spec.AmbientC {
		m.tempC = m.spec.AmbientC
	}
	if m.tempC > m.spec.TjMaxC {
		// TjMax is a hard clamp: real silicon would thermally shut down or
		// duty-cycle; the governor should keep us away from here.
		m.tempC = m.spec.TjMaxC
	}
}

// SteadyStateC returns the equilibrium temperature for a constant power.
func (m *Model) SteadyStateC(powerW float64) float64 {
	return m.spec.AmbientC + powerW*m.spec.ResistanceCPerW
}

// TimeToReachSec returns the analytic time for the zone to reach targetC
// under a constant powerW, from the first-order solution
// T(t) = Tss + (T0 - Tss) * exp(-t / RC). It returns 0 when the target is
// already met (at or past the target in the approach direction) and +Inf
// when the target lies beyond the steady-state asymptote and is never
// reached. Advisory: the tick integrator, not this closed form, remains
// the source of truth for the temperature trajectory.
func (m *Model) TimeToReachSec(targetC, powerW float64) float64 {
	tss := m.SteadyStateC(powerW)
	d0 := m.tempC - tss
	d1 := targetC - tss
	ratio := d0 / d1
	switch {
	case ratio <= 0 || math.IsInf(ratio, 0) || math.IsNaN(ratio):
		return math.Inf(1) // target on the far side of (or at) the asymptote
	case ratio <= 1:
		return 0
	}
	return m.spec.ResistanceCPerW * m.spec.CapacitanceJPerC * math.Log(ratio)
}

// PowerForTempC returns the power that holds the zone at the given steady
// temperature — the thermal budget available at the passive trip point.
func (m *Model) PowerForTempC(tempC float64) float64 {
	return (tempC - m.spec.AmbientC) / m.spec.ResistanceCPerW
}

// Throttling reports whether the zone is at or above its passive trip
// point. Machines without a passive trip (PassiveTripC == 0) never report
// throttling.
func (m *Model) Throttling() bool {
	return m.spec.PassiveTripC > 0 && m.tempC >= m.spec.PassiveTripC
}

// SettleTo runs the model with idle power until the temperature drops to
// target (or ambient, whichever is higher), returning the simulated seconds
// it took. This mirrors the paper's data-collection protocol of waiting for
// the package to cool to 35 degC between runs.
func (m *Model) SettleTo(target, idlePowerW float64) float64 {
	floor := m.SteadyStateC(idlePowerW)
	if target < floor {
		target = floor
	}
	var elapsed float64
	const h = 0.1
	for m.tempC > target+1e-9 {
		m.Step(idlePowerW, h)
		elapsed += h
		if elapsed > 24*3600 {
			break // give up after a simulated day; caller asked for the impossible
		}
	}
	return elapsed
}

// String describes the zone like /sys/class/thermal would.
func (m *Model) String() string {
	return fmt.Sprintf("thermal_zone%d(%s)=%dmC", m.spec.ZoneIndex, m.spec.ZoneName, m.TempMilliC())
}
