package power

import (
	"math"
	"testing"
	"testing/quick"

	"hetpapi/internal/hw"
)

func TestEnergyIntegration(t *testing.T) {
	m := New(hw.RaptorLake().Power)
	// 10 seconds at 55 W cores -> 65 W package.
	for i := 0; i < 1000; i++ {
		m.Step(55, 0.01)
	}
	if got := m.EnergyJ(DomainPkg); math.Abs(got-650) > 1e-6 {
		t.Fatalf("pkg energy = %g J, want 650", got)
	}
	if got := m.EnergyJ(DomainCores); math.Abs(got-550) > 1e-6 {
		t.Fatalf("cores energy = %g J, want 550", got)
	}
	if m.EnergyJ(DomainRAM) <= 0 || m.EnergyJ(DomainPsys) <= m.EnergyJ(DomainPkg) {
		t.Fatal("RAM/PSYS domains must accumulate (psys > pkg)")
	}
}

func TestRAPLCountUnits(t *testing.T) {
	spec := hw.RaptorLake().Power
	m := New(spec)
	m.Step(55, 1) // 65 J package
	want := uint64(65 / spec.EnergyUnitJ)
	got := m.RAPLCount(DomainPkg)
	if got < want-1 || got > want+1 {
		t.Fatalf("RAPLCount = %d, want ~%d", got, want)
	}
}

func TestNoRAPLOnOrangePi(t *testing.T) {
	m := New(hw.OrangePi800().Power)
	m.Step(5, 10)
	if m.RAPLCount(DomainPkg) != 0 {
		t.Fatal("machine without RAPL must read 0 counts")
	}
	if !math.IsInf(m.CapW(), 1) {
		t.Fatal("machine without power limits must report an infinite cap")
	}
	// Energy still integrates (for the wall meter view).
	if m.EnergyJ(DomainPkg) <= 0 {
		t.Fatal("energy must still accumulate")
	}
}

func TestTurboBudgetDrainsAndCapDrops(t *testing.T) {
	spec := hw.RaptorLake().Power
	m := New(spec)
	if m.CapW() != spec.PL2Watts {
		t.Fatalf("initial cap = %g, want PL2 %g", m.CapW(), spec.PL2Watts)
	}
	// Run hot (180 W package) until the budget drains.
	var drainedAt float64 = -1
	for sec := 0.0; sec < 120; sec += 0.01 {
		m.Step(170, 0.01)
		if m.CapW() == spec.PL1Watts {
			drainedAt = sec
			break
		}
	}
	if drainedAt < 0 {
		t.Fatal("turbo budget never drained at 180 W")
	}
	// Drain time should be budget / (P - PL1) = 1600/115 ~ 14 s.
	want := spec.PL2BudgetJ / (180 - spec.PL1Watts)
	if math.Abs(drainedAt-want) > 2 {
		t.Fatalf("budget drained after %.1f s, want ~%.1f s", drainedAt, want)
	}
}

func TestTurboBudgetReplenishes(t *testing.T) {
	spec := hw.RaptorLake().Power
	m := New(spec)
	for i := 0; i < 3000; i++ {
		m.Step(170, 0.01)
	}
	if m.CapW() != spec.PL1Watts {
		t.Fatal("expected cap at PL1 after the burn")
	}
	// Idle for a while: budget must refill and the cap return to PL2.
	for i := 0; i < 20000; i++ {
		m.Step(2, 0.01)
	}
	if m.CapW() != spec.PL2Watts {
		t.Fatalf("cap = %g after idle, want PL2 %g (budget %g)", m.CapW(), spec.PL2Watts, m.TurboBudgetJ())
	}
	if m.TurboBudgetJ() != spec.PL2BudgetJ {
		t.Fatalf("budget %g not clamped to max %g", m.TurboBudgetJ(), spec.PL2BudgetJ)
	}
}

func TestRunningAverageLagsBehind(t *testing.T) {
	spec := hw.RaptorLake().Power
	m := New(spec)
	m.Step(170, 0.01)
	if m.AvgPkgPowerW() >= m.PkgPowerW() {
		t.Fatal("EWMA must lag a step increase")
	}
	for i := 0; i < 100000; i++ {
		m.Step(55, 0.01)
	}
	if math.Abs(m.AvgPkgPowerW()-65) > 1 {
		t.Fatalf("EWMA = %g after long constant run, want ~65", m.AvgPkgPowerW())
	}
}

func TestWallPower(t *testing.T) {
	spec := hw.OrangePi800().Power
	m := New(spec)
	m.Step(4.6, 1) // 5.4 W package
	want := 5.4/spec.ACEfficiency + spec.ACLossWatts
	if got := m.WallPowerW(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("wall power = %g, want %g", got, want)
	}
}

func TestZeroDtNoop(t *testing.T) {
	m := New(hw.RaptorLake().Power)
	m.Step(100, 0)
	if m.EnergyJ(DomainPkg) != 0 || m.PkgPowerW() != 0 {
		t.Fatal("zero dt must not account energy")
	}
}

// Property: energy equals the integral of power — summing arbitrary
// (power, dt) steps accumulates exactly sum(p_i * dt_i) for the cores
// domain plus uncore for the package domain.
func TestEnergyIsIntegralOfPower(t *testing.T) {
	spec := hw.RaptorLake().Power
	f := func(steps []struct {
		P  uint8
		Dt uint8
	}) bool {
		m := New(spec)
		var wantCores, wantPkg, totalT float64
		for _, s := range steps {
			p := float64(s.P)
			dt := float64(s.Dt) / 100
			m.Step(p, dt)
			if dt > 0 {
				wantCores += p * dt
				wantPkg += (p + spec.UncoreWatts) * dt
				totalT += dt
			}
		}
		tol := 1e-9 * (1 + wantPkg)
		return math.Abs(m.EnergyJ(DomainCores)-wantCores) < tol &&
			math.Abs(m.EnergyJ(DomainPkg)-wantPkg) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the turbo budget stays within [0, PL2BudgetJ] no matter the
// power trajectory.
func TestTurboBudgetBounds(t *testing.T) {
	spec := hw.RaptorLake().Power
	f := func(powers []uint8) bool {
		m := New(spec)
		for _, p := range powers {
			m.Step(float64(p)*2, 0.05)
			if b := m.TurboBudgetJ(); b < 0 || b > spec.PL2BudgetJ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
