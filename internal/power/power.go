// Package power implements the package power model: per-domain RAPL energy
// accumulation, the PL1/PL2 running-average power limit machinery, and the
// wall-power view a WattsUpPro meter would report.
//
// The PL2 behaviour follows the RAPL "turbo budget" abstraction: the
// package may draw up to PL2 while an energy budget above PL1 lasts; the
// budget drains at (P - PL1) and refills at (PL1 - P), so a run starts with
// a short high-power spike and then settles onto the PL1 plateau — the
// shape of Figure 2 in the paper.
package power

import (
	"math"

	"hetpapi/internal/hw"
)

// Domain identifies a RAPL energy domain.
type Domain int

const (
	// DomainPkg is the whole processor package.
	DomainPkg Domain = iota
	// DomainCores is the core power plane (PP0).
	DomainCores
	// DomainRAM is the DRAM plane.
	DomainRAM
	// DomainPsys is the whole-platform plane.
	DomainPsys
	numDomains
)

// Model tracks energy and power limits for one machine.
type Model struct {
	spec hw.PowerSpec

	energyJ [numDomains]float64
	// lastPkgW is the package power of the most recent Step.
	lastPkgW float64
	// lastCoresW is the cores-only power of the most recent Step.
	lastCoresW float64
	// avgPkgW is the running average RAPL compares against PL1.
	avgPkgW float64
	// pl2Budget is the remaining above-PL1 energy budget in joules.
	pl2Budget float64
}

// New returns a power model with a full PL2 budget and idle averages.
func New(spec hw.PowerSpec) *Model {
	return &Model{spec: spec, pl2Budget: spec.PL2BudgetJ}
}

// Spec returns the constants the model runs on.
func (m *Model) Spec() hw.PowerSpec { return m.spec }

// SetLimits changes the PL1/PL2 power limits at runtime, the operation a
// write to the RAPL constraint_*_power_limit_uw sysfs files performs.
// Lowering PL1 is the "power cap" fault scenario harnesses inject. The
// remaining turbo budget is clamped into the (unchanged) budget size so a
// cap change never manufactures turbo headroom.
func (m *Model) SetLimits(pl1W, pl2W float64) {
	m.spec.PL1Watts = pl1W
	m.spec.PL2Watts = pl2W
	if m.pl2Budget > m.spec.PL2BudgetJ {
		m.pl2Budget = m.spec.PL2BudgetJ
	}
}

// Step accounts coresW watts of core power plus the constant uncore power
// over dtSec seconds.
func (m *Model) Step(coresW, dtSec float64) {
	if dtSec <= 0 {
		return
	}
	pkgW := coresW + m.spec.UncoreWatts
	ramW := 1.5 + 0.04*coresW // DRAM background plus bandwidth-proportional draw
	m.lastPkgW = pkgW
	m.lastCoresW = coresW

	m.energyJ[DomainPkg] += pkgW * dtSec
	m.energyJ[DomainCores] += coresW * dtSec
	m.energyJ[DomainRAM] += ramW * dtSec
	m.energyJ[DomainPsys] += (pkgW + ramW + m.spec.ACLossWatts/2) * dtSec

	if m.spec.PL1TauSec > 0 {
		alpha := 1 - math.Exp(-dtSec/m.spec.PL1TauSec)
		m.avgPkgW += alpha * (pkgW - m.avgPkgW)
	} else {
		m.avgPkgW = pkgW
	}

	if m.spec.PL1Watts > 0 {
		m.pl2Budget -= (pkgW - m.spec.PL1Watts) * dtSec
		if m.pl2Budget > m.spec.PL2BudgetJ {
			m.pl2Budget = m.spec.PL2BudgetJ
		}
		if m.pl2Budget < 0 {
			m.pl2Budget = 0
		}
	}
}

// PkgPowerW returns the instantaneous package power of the last step.
func (m *Model) PkgPowerW() float64 { return m.lastPkgW }

// CoresPowerW returns the instantaneous core power of the last step.
func (m *Model) CoresPowerW() float64 { return m.lastCoresW }

// AvgPkgPowerW returns the PL1 running-average package power.
func (m *Model) AvgPkgPowerW() float64 { return m.avgPkgW }

// CapW returns the power limit currently in force: PL2 while turbo budget
// remains, PL1 afterwards. Machines without RAPL limits return +Inf.
func (m *Model) CapW() float64 {
	if m.spec.PL1Watts <= 0 {
		return math.Inf(1)
	}
	if m.pl2Budget > 0 {
		return m.spec.PL2Watts
	}
	return m.spec.PL1Watts
}

// TurboBudgetJ returns the remaining above-PL1 energy budget.
func (m *Model) TurboBudgetJ() float64 { return m.pl2Budget }

// NextCapChangeSec estimates how many seconds until CapW changes if the
// package keeps drawing the power of the last Step: the PL2->PL1 flip
// while the turbo budget drains, or 0 when an empty budget is refilling
// (the cap restores on the next step that adds budget). +Inf when no
// change is pending. The estimate is advisory — future power draw is
// unknowable — and is only used to surface the flip in the simulator's
// event horizon, never for control.
func (m *Model) NextCapChangeSec() float64 {
	if m.spec.PL1Watts <= 0 {
		return math.Inf(1)
	}
	drain := m.lastPkgW - m.spec.PL1Watts
	switch {
	case m.pl2Budget > 0 && drain > 0:
		return m.pl2Budget / drain
	case m.pl2Budget <= 0 && drain < 0:
		return 0
	}
	return math.Inf(1)
}

// EnergyJ returns the accumulated energy of a domain in joules.
func (m *Model) EnergyJ(d Domain) float64 { return m.energyJ[d] }

// RAPLCount returns the energy of a domain in RAPL energy units, the raw
// value a perf_event RAPL counter or the energy_uj sysfs file derives from.
// Machines without RAPL always return 0.
func (m *Model) RAPLCount(d Domain) uint64 {
	if !m.spec.HasRAPL || m.spec.EnergyUnitJ <= 0 {
		return 0
	}
	return uint64(m.energyJ[d] / m.spec.EnergyUnitJ)
}

// WallPowerW returns the AC-side power a wall meter (the paper's
// WattsUpPro) would read for the last step.
func (m *Model) WallPowerW() float64 {
	eff := m.spec.ACEfficiency
	if eff <= 0 {
		eff = 1
	}
	return m.lastPkgW/eff + m.spec.ACLossWatts
}
