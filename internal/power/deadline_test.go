package power

// NextCapChangeSec feeds the simulator's event horizon with the PL2->PL1
// flip estimate; these tests pin the drain arithmetic and the no-change
// cases.

import (
	"math"
	"testing"

	"hetpapi/internal/hw"
)

func capSpec() hw.PowerSpec {
	return hw.PowerSpec{
		PL1Watts:   65,
		PL2Watts:   150,
		PL2BudgetJ: 100,
		PL1TauSec:  1,
	}
}

func TestNextCapChangeDraining(t *testing.T) {
	m := New(capSpec())
	// Draw 115 W package (uncore 0): drains 50 W above PL1, so the 100 J
	// budget lasts 2 s.
	m.Step(115, 0.001)
	got := m.NextCapChangeSec()
	want := m.TurboBudgetJ() / 50
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("NextCapChangeSec = %v, want %v", got, want)
	}
	if m.CapW() != 150 {
		t.Fatalf("CapW = %v, want PL2 while budget lasts", m.CapW())
	}
}

func TestNextCapChangeNoChangePending(t *testing.T) {
	m := New(capSpec())
	// Below PL1 with a full budget: the budget refills, the cap is
	// already PL2, nothing flips.
	m.Step(40, 0.001)
	if got := m.NextCapChangeSec(); !math.IsInf(got, 1) {
		t.Fatalf("below PL1 with budget: NextCapChangeSec = %v, want +Inf", got)
	}

	// No RAPL limits at all: never a flip.
	free := New(hw.PowerSpec{})
	free.Step(100, 0.001)
	if got := free.NextCapChangeSec(); !math.IsInf(got, 1) {
		t.Fatalf("no limits: NextCapChangeSec = %v, want +Inf", got)
	}
}

func TestNextCapChangeRefillFlip(t *testing.T) {
	m := New(capSpec())
	// Burn the whole budget: 150 W for 2 s drains 85 W * 2 s = 170 J > 100 J.
	m.Step(150, 2)
	if m.TurboBudgetJ() != 0 {
		t.Fatalf("budget = %v, want 0 after overdraw", m.TurboBudgetJ())
	}
	if m.CapW() != 65 {
		t.Fatalf("CapW = %v, want PL1 with empty budget", m.CapW())
	}
	// Still hot: empty budget, still draining -> no flip pending.
	if got := m.NextCapChangeSec(); !math.IsInf(got, 1) {
		t.Fatalf("empty budget still draining: NextCapChangeSec = %v, want +Inf", got)
	}
	// Raise PL1 above the current draw (a cap-fault heals): the empty
	// budget now refills, so the cap restores on the very next step —
	// the estimate is immediate.
	m.SetLimits(200, 250)
	if got := m.NextCapChangeSec(); got != 0 {
		t.Fatalf("empty budget about to refill: NextCapChangeSec = %v, want 0", got)
	}
	m.Step(150, 0.001)
	if m.CapW() != 250 {
		t.Fatalf("CapW = %v, want PL2 after refill began", m.CapW())
	}
}
