// Package calibration fits machine-model parameters to published
// performance targets. The validation suite (internal/validate) answers
// "does the stack measure a known machine correctly?"; this package
// answers the inverse question a modeler faces when standing up a new
// platform: given published figures — sustained Gflops, package energy,
// cycle counts at a pinned operating point — which model constants
// reproduce them? The fitting loop adjusts one core type's calibratable
// parameters (BaseIPC, LLC miss penalty, HPL efficiency, dynamic power)
// by re-running the oracle workloads through the full stack on a cloned
// machine until every observable lands within tolerance of its target.
package calibration

import (
	"fmt"
	"math"

	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
	"hetpapi/internal/validate"
	"hetpapi/internal/workload"
)

// Params is the calibratable subset of one core type's model constants —
// the knobs a modeler cannot read off a datasheet and must fit.
type Params struct {
	TypeName string `json:"type"`
	// BaseIPC governs scalar retirement (loop cycles).
	BaseIPC float64 `json:"base_ipc"`
	// LLCMissPenaltyCycles governs the exposed DRAM latency (stride cycles).
	LLCMissPenaltyCycles float64 `json:"llc_miss_penalty_cycles"`
	// HPLEfficiency governs sustained DGEMM throughput (Gflops).
	HPLEfficiency float64 `json:"hpl_efficiency"`
	// DynWattsAtMax governs the active power draw (spin energy).
	DynWattsAtMax float64 `json:"dyn_watts_at_max"`
}

// ParamsOf extracts the calibratable parameters of a core type.
func ParamsOf(t *hw.CoreType) Params {
	return Params{
		TypeName:             t.Name,
		BaseIPC:              t.BaseIPC,
		LLCMissPenaltyCycles: t.LLCMissPenaltyCycles,
		HPLEfficiency:        t.HPLEfficiency,
		DynWattsAtMax:        t.DynWattsAtMax,
	}
}

func applyParams(t *hw.CoreType, p Params) {
	t.BaseIPC = p.BaseIPC
	t.LLCMissPenaltyCycles = p.LLCMissPenaltyCycles
	t.HPLEfficiency = p.HPLEfficiency
	t.DynWattsAtMax = p.DynWattsAtMax
}

// Observables are the measured figures one core type is fitted against.
// Each maps to exactly one parameter (in fitting order): loop cycles to
// BaseIPC, stride cycles to the LLC miss penalty, Gflops to the HPL
// efficiency, spin energy to the dynamic power coefficient.
type Observables struct {
	LoopCycles   float64 `json:"loop_cycles"`
	StrideCycles float64 `json:"stride_cycles"`
	Gflops       float64 `json:"gflops"`
	SpinEnergyJ  float64 `json:"spin_energy_j"`
}

// TypeTargets freezes one core type's target figures together with the
// exact workload geometry they were measured under. The geometry must be
// frozen here: the oracle case builder sizes workloads from the machine's
// own constants, so rebuilding cases from a candidate machine would move
// the goalposts with every parameter update.
type TypeTargets struct {
	TypeName string
	// Loop, Stride and Spin are the frozen oracle cases; the fit swaps
	// their Machine for each candidate before running.
	Loop   validate.Case
	Stride validate.Case
	Spin   validate.Case
	// HPLCPU is the pinned CPU of the single-threaded HPL run.
	HPLCPU int
	// Target holds the published (reference-measured) figures.
	Target Observables
}

// TargetSet is the full target table for one machine model.
type TargetSet struct {
	Model string
	Types []TypeTargets
}

// strategyFor picks the HPL tuning strategy matching the model's ISA.
func strategyFor(model string) workload.Strategy {
	switch model {
	case "orangepi800", "dimensity9000":
		return workload.OpenBLASArm()
	default:
		return workload.OpenBLASx86()
	}
}

// hplSpec builds the small pinned single-core HPL scenario whose Gflops
// figure calibrates HPLEfficiency. MachineFn overrides the registry so
// the same geometry runs against reference and candidate machines.
func hplSpec(model, typeName string, cpu int, mk func() *hw.Machine) scenario.Spec {
	return scenario.Spec{
		Name:            fmt.Sprintf("calibrate-hpl-%s-%s", model, typeName),
		Machine:         model,
		MachineFn:       mk,
		Seed:            17,
		MaxSeconds:      240,
		SamplePeriodSec: 0.5,
		Workloads: []scenario.WorkloadSpec{{
			Kind:     scenario.WorkloadHPL,
			Name:     "hpl",
			CPUs:     []int{cpu},
			N:        2048,
			NB:       128,
			Strategy: strategyFor(model),
			Seed:     1,
		}},
	}
}

// runCase runs a frozen oracle case against a candidate machine and
// returns the clean counter/energy observables.
func runCase(c validate.Case, m *hw.Machine) (*validate.RunResult, error) {
	c.Machine = m.Clone()
	return validate.Run(&c, validate.ModeClean)
}

// observe measures every target figure of one core type on a candidate.
func observe(model string, tt *TypeTargets, cand *hw.Machine) (Observables, error) {
	var obs Observables
	res, err := runCase(tt.Loop, cand)
	if err != nil {
		return obs, err
	}
	obs.LoopCycles = float64(res.Events[validate.EvCycles].Final)
	if res, err = runCase(tt.Stride, cand); err != nil {
		return obs, err
	}
	obs.StrideCycles = float64(res.Events[validate.EvCycles].Final)
	if res, err = runCase(tt.Spin, cand); err != nil {
		return obs, err
	}
	obs.SpinEnergyJ = res.EnergyJ
	sres, err := scenario.Run(hplSpec(model, tt.TypeName, tt.HPLCPU, func() *hw.Machine { return cand.Clone() }))
	if err != nil {
		return obs, err
	}
	if !sres.Completed {
		return obs, fmt.Errorf("calibration HPL on %s/%s did not complete", model, tt.TypeName)
	}
	obs.Gflops = sres.Workloads[0].Gflops
	return obs, nil
}

// MeasureTargets runs the oracle workloads on a pristine reference
// machine and freezes the results as the model's published targets.
func MeasureTargets(model string, mk func() *hw.Machine) (*TargetSet, error) {
	m := mk()
	set := &TargetSet{Model: model}
	cases := validate.Cases(model, m)
	for ti := range m.Types {
		tt := TypeTargets{TypeName: m.Types[ti].Name}
		found := 0
		for _, c := range cases {
			if c.TypeIdx != ti {
				continue
			}
			switch c.Workload {
			case validate.WorkLoop:
				tt.Loop = c
			case validate.WorkStride:
				tt.Stride = c
			case validate.WorkSpin:
				tt.Spin = c
			}
			tt.HPLCPU = c.CPU
			found++
		}
		if found < 3 {
			continue // core type with no CPUs
		}
		obs, err := observe(model, &tt, m)
		if err != nil {
			return nil, fmt.Errorf("measuring targets for %s/%s: %w", model, tt.TypeName, err)
		}
		tt.Target = obs
		set.Types = append(set.Types, tt)
	}
	if len(set.Types) == 0 {
		return nil, fmt.Errorf("model %s has no calibratable core types", model)
	}
	return set, nil
}

// Options tunes the fitting loop.
type Options struct {
	// MaxIters bounds the coordinate-descent sweeps per core type
	// (default 8).
	MaxIters int
	// TolRel is the relative tolerance every observable must meet
	// (default 0.01).
	TolRel float64
}

func (o *Options) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 8
	}
	if o.TolRel <= 0 {
		o.TolRel = 0.01
	}
}

// TypeReport is the fit outcome for one core type.
type TypeReport struct {
	TypeName string  `json:"type"`
	Initial  Params  `json:"initial"`
	Fitted   Params  `json:"fitted"`
	Iters    int     `json:"iters"`
	Residual float64 `json:"residual"`
	// Final holds the observables at the fitted parameters.
	Final     Observables `json:"final"`
	Target    Observables `json:"target"`
	Converged bool        `json:"converged"`
}

// Report is the full fit outcome.
type Report struct {
	Model string `json:"model"`
	// Machine is the fitted clone; the caller's candidate is untouched.
	Machine     *hw.Machine  `json:"-"`
	Types       []TypeReport `json:"types"`
	MaxResidual float64      `json:"max_residual"`
	Converged   bool         `json:"converged"`
}

// residual is the worst relative miss across the four observables.
func residual(obs, want Observables) float64 {
	rel := func(o, w float64) float64 {
		if w == 0 {
			return math.Abs(o)
		}
		return math.Abs(o-w) / w
	}
	r := rel(obs.LoopCycles, want.LoopCycles)
	r = math.Max(r, rel(obs.StrideCycles, want.StrideCycles))
	r = math.Max(r, rel(obs.Gflops, want.Gflops))
	r = math.Max(r, rel(obs.SpinEnergyJ, want.SpinEnergyJ))
	return r
}

func clamp(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }

// strideCyclesAt evaluates the stride observable at a trial penalty.
func strideCyclesAt(tt *TypeTargets, cand *hw.Machine, ti int, pen float64) (float64, error) {
	saved := cand.Types[ti].LLCMissPenaltyCycles
	cand.Types[ti].LLCMissPenaltyCycles = pen
	res, err := runCase(tt.Stride, cand)
	cand.Types[ti].LLCMissPenaltyCycles = saved
	if err != nil {
		return 0, err
	}
	return float64(res.Events[validate.EvCycles].Final), nil
}

// spinEnergyAt evaluates the spin observable at a trial dynamic power.
func spinEnergyAt(tt *TypeTargets, cand *hw.Machine, ti int, dyn float64) (float64, error) {
	saved := cand.Types[ti].DynWattsAtMax
	cand.Types[ti].DynWattsAtMax = dyn
	res, err := runCase(tt.Spin, cand)
	cand.Types[ti].DynWattsAtMax = saved
	if err != nil {
		return 0, err
	}
	return res.EnergyJ, nil
}

// secant takes one secant step toward g(x) = target given two evaluated
// points; falls back to x1 when the slope degenerates.
func secant(x1, g1, x2, g2, target float64) float64 {
	slope := (g2 - g1) / (x2 - x1)
	if slope == 0 || math.IsNaN(slope) || math.IsInf(slope, 0) {
		return x1
	}
	return x1 + (target-g1)/slope
}

// Fit runs coordinate descent on every core type of the candidate: each
// sweep updates BaseIPC from the loop cycles (multiplicative — cycles
// scale as 1/IPC), the LLC miss penalty from the stride cycles (secant —
// cycles are affine in the penalty, so one step lands), the HPL
// efficiency from the Gflops figure (multiplicative) and the dynamic
// power from the spin energy (secant — energy is affine in the
// coefficient). The candidate is cloned; the fitted machine is returned
// in the report.
func Fit(targets *TargetSet, candidate *hw.Machine, opt Options) (*Report, error) {
	opt.defaults()
	fitted := candidate.Clone()
	rep := &Report{Model: targets.Model, Machine: fitted, Converged: true}
	for i := range targets.Types {
		tt := &targets.Types[i]
		ti := -1
		for j := range fitted.Types {
			if fitted.Types[j].Name == tt.TypeName {
				ti = j
				break
			}
		}
		if ti < 0 {
			return nil, fmt.Errorf("candidate machine has no core type %q", tt.TypeName)
		}
		t := &fitted.Types[ti]
		tr := TypeReport{TypeName: tt.TypeName, Initial: ParamsOf(t), Target: tt.Target}

		for tr.Iters = 0; tr.Iters < opt.MaxIters; tr.Iters++ {
			obs, err := observe(targets.Model, tt, fitted)
			if err != nil {
				return nil, fmt.Errorf("fit %s/%s: %w", targets.Model, tt.TypeName, err)
			}
			tr.Final, tr.Residual = obs, residual(obs, tt.Target)
			if tr.Residual <= opt.TolRel {
				tr.Converged = true
				break
			}

			// BaseIPC: loop cycles = instructions/IPC.
			if obs.LoopCycles > 0 && tt.Target.LoopCycles > 0 {
				t.BaseIPC = clamp(t.BaseIPC*obs.LoopCycles/tt.Target.LoopCycles, 0.05, 32)
			}

			// LLC miss penalty: secant on the (affine) stride cycles,
			// evaluated with the updated IPC.
			pen := t.LLCMissPenaltyCycles
			g1, err := strideCyclesAt(tt, fitted, ti, pen)
			if err != nil {
				return nil, err
			}
			pen2 := pen*1.25 + 10
			g2, err := strideCyclesAt(tt, fitted, ti, pen2)
			if err != nil {
				return nil, err
			}
			t.LLCMissPenaltyCycles = clamp(secant(pen, g1, pen2, g2, tt.Target.StrideCycles), 1, 5000)

			// HPL efficiency: Gflops scale with the sustained fraction.
			if obs.Gflops > 0 && tt.Target.Gflops > 0 {
				t.HPLEfficiency = clamp(t.HPLEfficiency*tt.Target.Gflops/obs.Gflops, 0.01, 1)
			}

			// Dynamic power: secant on the (affine) spin energy.
			dyn := t.DynWattsAtMax
			e1, err := spinEnergyAt(tt, fitted, ti, dyn)
			if err != nil {
				return nil, err
			}
			dyn2 := dyn*1.25 + 0.5
			e2, err := spinEnergyAt(tt, fitted, ti, dyn2)
			if err != nil {
				return nil, err
			}
			t.DynWattsAtMax = clamp(secant(dyn, e1, dyn2, e2, tt.Target.SpinEnergyJ), 0.05, 500)
		}
		tr.Fitted = ParamsOf(t)
		rep.Types = append(rep.Types, tr)
		rep.MaxResidual = math.Max(rep.MaxResidual, tr.Residual)
		rep.Converged = rep.Converged && tr.Converged
	}
	return rep, nil
}

// Perturb returns a clone with every core type's calibratable parameters
// scaled by deterministic pseudo-random factors in [0.8, 1.25] — the
// self-test harness for the fitting loop (fit the perturbed machine back
// to the pristine targets and the fit must recover them).
func Perturb(m *hw.Machine, seed int64) *hw.Machine {
	out := m.Clone()
	x := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		frac := float64(x>>11) / float64(1<<53)
		return 0.8 + 0.45*frac
	}
	for i := range out.Types {
		t := &out.Types[i]
		t.BaseIPC *= next()
		if t.LLCMissPenaltyCycles > 0 {
			t.LLCMissPenaltyCycles *= next()
		} else {
			t.LLCMissPenaltyCycles = workload.DefaultLLCMissPenaltyCycles * next()
		}
		t.HPLEfficiency = clamp(t.HPLEfficiency*next(), 0.01, 1)
		t.DynWattsAtMax *= next()
	}
	return out
}
