package calibration

import (
	"math"
	"testing"

	"hetpapi/internal/validate"
)

// TestFitRecoversPerturbedModel is the package's acceptance gate: measure
// targets on the pristine registry model, perturb every calibratable
// parameter by [0.8, 1.25], and require the fit to bring every observable
// back within 2% of the published targets.
func TestFitRecoversPerturbedModel(t *testing.T) {
	for _, name := range []string{"raptorlake", "orangepi800"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src, ok := validate.SourceFor(name)
			if !ok {
				t.Fatalf("unknown model %q", name)
			}
			targets, err := MeasureTargets(src.Name, src.Make)
			if err != nil {
				t.Fatal(err)
			}
			perturbed := Perturb(src.Make(), 42)
			rep, err := Fit(targets, perturbed, Options{TolRel: 0.02})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Converged {
				t.Fatalf("fit did not converge: max residual %.4f", rep.MaxResidual)
			}
			if rep.MaxResidual > 0.02 {
				t.Fatalf("max residual %.4f exceeds 2%%", rep.MaxResidual)
			}
			pristine := src.Make()
			for _, tr := range rep.Types {
				if !tr.Converged {
					t.Errorf("%s: not converged after %d iters (residual %.4f)", tr.TypeName, tr.Iters, tr.Residual)
				}
				// The identifiable parameters must come back close to the
				// pristine values, not merely match the observables.
				for i := range pristine.Types {
					if pristine.Types[i].Name != tr.TypeName {
						continue
					}
					want := ParamsOf(&pristine.Types[i])
					checkClose(t, tr.TypeName+" BaseIPC", tr.Fitted.BaseIPC, want.BaseIPC, 0.05)
					checkClose(t, tr.TypeName+" LLCMissPenaltyCycles", tr.Fitted.LLCMissPenaltyCycles, want.LLCMissPenaltyCycles, 0.10)
					checkClose(t, tr.TypeName+" HPLEfficiency", tr.Fitted.HPLEfficiency, want.HPLEfficiency, 0.05)
					checkClose(t, tr.TypeName+" DynWattsAtMax", tr.Fitted.DynWattsAtMax, want.DynWattsAtMax, 0.10)
				}
			}
		})
	}
}

// TestMeasureTargetsDeterministic: the published-target measurement must
// be a pure function of the model.
func TestMeasureTargetsDeterministic(t *testing.T) {
	src, _ := validate.SourceFor("dimensity9000")
	a, err := MeasureTargets(src.Name, src.Make)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureTargets(src.Name, src.Make)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Types) != len(b.Types) {
		t.Fatalf("type count differs: %d vs %d", len(a.Types), len(b.Types))
	}
	for i := range a.Types {
		if a.Types[i].Target != b.Types[i].Target {
			t.Errorf("%s: targets differ: %+v vs %+v", a.Types[i].TypeName, a.Types[i].Target, b.Types[i].Target)
		}
	}
}

// TestPerturbDeterministicAndBounded: same seed, same machine; factors
// stay in the documented band and the efficiency stays legal.
func TestPerturbDeterministicAndBounded(t *testing.T) {
	src, _ := validate.SourceFor("raptorlake")
	m := src.Make()
	a, b := Perturb(m, 7), Perturb(m, 7)
	for i := range a.Types {
		if ParamsOf(&a.Types[i]) != ParamsOf(&b.Types[i]) {
			t.Fatalf("perturbation not deterministic for type %d", i)
		}
		orig, got := ParamsOf(&m.Types[i]), ParamsOf(&a.Types[i])
		for _, pair := range [][2]float64{
			{orig.BaseIPC, got.BaseIPC},
			{orig.LLCMissPenaltyCycles, got.LLCMissPenaltyCycles},
			{orig.DynWattsAtMax, got.DynWattsAtMax},
		} {
			ratio := pair[1] / pair[0]
			if ratio < 0.8-1e-9 || ratio > 1.25+1e-9 {
				t.Errorf("type %d: perturbation ratio %.3f outside [0.8, 1.25]", i, ratio)
			}
		}
		if got.HPLEfficiency <= 0 || got.HPLEfficiency > 1 {
			t.Errorf("type %d: perturbed efficiency %.3f illegal", i, got.HPLEfficiency)
		}
	}
	if ParamsOf(&Perturb(m, 8).Types[0]) == ParamsOf(&a.Types[0]) {
		t.Error("different seeds produced identical perturbations")
	}
}

func checkClose(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if r := math.Abs(got-want) / want; r > tol {
		t.Errorf("%s: fitted %.4f vs pristine %.4f (rel %.3f > %.2f)", what, got, want, r, tol)
	}
}
