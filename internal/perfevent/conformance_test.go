package perfevent

// Conformance suite for the simulated perf_event substrate: every errno
// class perf_event_open and the fd ioctls can report, exercised the way
// section IV of the paper describes real hybrid kernels behaving —
// including the fault-injected paths (NMI watchdog reservations, CPU
// hotplug, counter budgets, sampling ring pressure) that the core layer's
// graceful degradation has to survive. The tests are organized per errno
// so the suite reads as a specification of the substrate's error model.

import (
	"errors"
	"math"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
)

// glcType / grtType return RaptorLake's P-core and E-core dynamic PMU
// types.
func glcType(m *hw.Machine) uint32 { return m.TypeByName("P-core").PMU.PerfType }
func grtType(m *hw.Machine) uint32 { return m.TypeByName("E-core").PMU.PerfType }

// cyclesAttr is a fixed-counter cycles event on the given PMU type.
func cyclesAttr(pmuType uint32) Attr {
	// CPU_CLK_UNHALTED:THREAD is code 0x3C umask 0 on both Intel core
	// PMUs; the ARM tables use different codes, so conformance tests
	// that need cycles on ARM go through the generic encoding instead.
	return Attr{Type: pmuType, Config: events.Encode(0x3C, 0)}
}

func instrAttr(t *testing.T, m *hw.Machine, pfm string) Attr {
	t.Helper()
	return attrFor(t, m, pfm, "INST_RETIRED", "ANY")
}

// TestConformanceEINVAL locks down every EINVAL path of Open.
func TestConformanceEINVAL(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.AttachPower(power.New(m.Power))
	good := instrAttr(t, m, "adl_glc")
	leader, err := k.Open(good, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	sib, err := k.Open(good, 100, -1, leader)
	if err != nil {
		t.Fatal(err)
	}
	swAttr := Attr{Type: PerfTypeSoftware, Config: 0} // cpu-clock

	cases := []struct {
		name string
		open func() (int, error)
	}{
		{"no target", func() (int, error) { return k.Open(good, -1, -1, -1) }},
		{"both pid and cpu", func() (int, error) { return k.Open(good, 7, 3, -1) }},
		{"cpu out of range", func() (int, error) { return k.Open(good, -1, 999, -1) }},
		{"cross-PMU group", func() (int, error) { return k.Open(instrAttr(t, m, "adl_grt"), 100, -1, leader) }},
		{"sibling as group fd", func() (int, error) { return k.Open(good, 100, -1, sib) }},
		{"group target mismatch", func() (int, error) { return k.Open(good, 200, -1, leader) }},
		{"task-attached RAPL", func() (int, error) {
			return k.Open(Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0)}, 100, -1, -1)
		}},
		{"cpu-wide software event", func() (int, error) { return k.Open(swAttr, -1, 0, -1) }},
		{"sampled software event", func() (int, error) {
			a := swAttr
			a.SamplePeriod = 100
			return k.Open(a, 100, -1, -1)
		}},
		{"cpu-wide sampling", func() (int, error) {
			a := good
			a.SamplePeriod = 100
			return k.Open(a, -1, 0, -1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if fd, err := tc.open(); !errors.Is(err, ErrInvalid) {
				t.Fatalf("fd=%d err=%v, want ErrInvalid", fd, err)
			}
		})
	}
}

// TestConformanceENOENTHybrid locks down the hybrid asymmetry the paper
// calls out: an event config that exists on one core type's PMU but not
// the other's opens on the first and fails with ENOENT on the second —
// the PMU device exists, the event does not.
func TestConformanceENOENTHybrid(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	// TOPDOWN (0xA4) slot accounting is a Golden Cove feature missing
	// from Gracemont.
	topdown := events.Encode(0xA4, 0x01)
	fd, err := k.Open(Attr{Type: glcType(m), Config: topdown}, 100, -1, -1)
	if err != nil {
		t.Fatalf("TOPDOWN on P-core PMU: %v", err)
	}
	if name := mustEvent(t, k, fd).Name(); name == "" {
		t.Fatal("resolved event has no name")
	}
	if _, err := k.Open(Attr{Type: grtType(m), Config: topdown}, 100, -1, -1); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("TOPDOWN on E-core PMU: err=%v, want ErrNotSupported (ENOENT)", err)
	}
	// Unknown configs on existing PMUs are ENOENT everywhere; unknown
	// PMU types and unknown extended types are ENODEV.
	if _, err := k.Open(Attr{Type: glcType(m), Config: events.Encode(0xEE, 0xEE)}, 100, -1, -1); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("unknown config: %v", err)
	}
	if _, err := k.Open(Attr{Type: 777, Config: 0}, 100, -1, -1); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("unknown pmu type: %v", err)
	}
	if _, err := k.Open(Attr{Type: PerfTypeHardware,
		Config: uint64(777)<<HWConfigExtShift | events.HWInstructions}, 100, -1, -1); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("unknown extended type: %v", err)
	}
}

func mustEvent(t *testing.T, k *Kernel, fd int) *Event {
	t.Helper()
	e, err := k.lookup(fd)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConformanceEBUSYWatchdog locks down the NMI-watchdog contract: while
// the watchdog holds the fixed cycles counter of a PMU, new cycles events
// on that PMU fail with EBUSY (through both the native and the generic
// encodings), other events still open, and releasing the counter makes
// cycles schedulable again.
func TestConformanceEBUSYWatchdog(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.SetWatchdog(glcType(m), true)

	if _, err := k.Open(cyclesAttr(glcType(m)), 100, -1, -1); !errors.Is(err, ErrBusy) {
		t.Fatalf("native cycles under watchdog: %v, want ErrBusy", err)
	}
	// The generic encoding resolves to the boot CPU's PMU (the P PMU) and
	// must hit the same reservation.
	if _, err := k.Open(Attr{Type: PerfTypeHardware, Config: events.HWCPUCycles}, 100, -1, -1); !errors.Is(err, ErrBusy) {
		t.Fatalf("generic cycles under watchdog: %v, want ErrBusy", err)
	}
	// Non-cycles events on the held PMU and cycles on the other PMU are
	// unaffected.
	if _, err := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, -1); err != nil {
		t.Fatalf("instructions under watchdog: %v", err)
	}
	if _, err := k.Open(cyclesAttr(grtType(m)), 100, -1, -1); err != nil {
		t.Fatalf("E-core cycles while P watchdog held: %v", err)
	}

	k.SetWatchdog(glcType(m), false)
	if _, err := k.Open(cyclesAttr(glcType(m)), 100, -1, -1); err != nil {
		t.Fatalf("cycles after release: %v", err)
	}
}

// TestConformanceWatchdogDeschedulesGroup locks down the scheduling side
// of the reservation: a running group containing a cycles event stops
// accruing time_running while the watchdog holds the fixed counter (reads
// keep succeeding — degradation, not failure), and resumes after release.
func TestConformanceWatchdogDeschedulesGroup(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	leader, err := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(cyclesAttr(glcType(m)), 100, -1, leader); err != nil {
		t.Fatal(err)
	}

	k.TaskExec(100, 0, 0.010, execStats(10_000))
	before, err := k.Read(leader)
	if err != nil {
		t.Fatal(err)
	}

	k.SetWatchdog(glcType(m), true)
	k.TaskExec(100, 0, 0.010, execStats(10_000))
	held, err := k.Read(leader)
	if err != nil {
		t.Fatalf("read while descheduled must succeed: %v", err)
	}
	if held.Value != before.Value {
		t.Errorf("descheduled group counted: %d -> %d", before.Value, held.Value)
	}
	if held.TimeRunning != before.TimeRunning {
		t.Errorf("time_running advanced while descheduled: %g -> %g", before.TimeRunning, held.TimeRunning)
	}
	if held.TimeEnabled <= before.TimeEnabled {
		t.Errorf("time_enabled must keep accruing: %g -> %g", before.TimeEnabled, held.TimeEnabled)
	}

	k.SetWatchdog(glcType(m), false)
	k.TaskExec(100, 0, 0.010, execStats(10_000))
	after, _ := k.Read(leader)
	if after.Value <= held.Value || after.TimeRunning <= held.TimeRunning {
		t.Errorf("group did not resume after release: %+v -> %+v", held, after)
	}
}

// TestConformanceENOSPCBudget locks down the counter-budget contract:
// groups that fit the PMU's physical inventory but not its currently
// schedulable capacity fail with ENOSPC (distinct from the EINVAL an
// over-physical group gets), and clearing the budget restores the
// inventory.
func TestConformanceENOSPCBudget(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	good := instrAttr(t, m, "adl_glc")

	k.SetCounterBudget(glcType(m), 2)
	leader, err := k.Open(good, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(good, 100, -1, leader); err != nil {
		t.Fatalf("second group member within budget: %v", err)
	}
	if _, err := k.Open(good, 100, -1, leader); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("third member over budget: %v, want ErrNoSpace", err)
	}
	// Standalone opens still succeed under a tight budget — they
	// multiplex instead (measured in TestConformanceScaledAccuracy).
	if _, err := k.Open(good, 100, -1, -1); err != nil {
		t.Fatalf("standalone open under budget: %v", err)
	}

	k.SetCounterBudget(glcType(m), 0)
	if _, err := k.Open(good, 100, -1, leader); err != nil {
		t.Fatalf("after budget cleared: %v", err)
	}
	// The physical ceiling still applies and is EINVAL, not ENOSPC.
	var lastErr error
	for i := 0; i < 20 && lastErr == nil; i++ {
		_, lastErr = k.Open(good, 100, -1, leader)
	}
	if !errors.Is(lastErr, ErrInvalid) {
		t.Fatalf("over-physical group: %v, want ErrInvalid", lastErr)
	}
}

// TestConformanceENODEVHotplug locks down the hotplug contract: taking a
// CPU offline invalidates its CPU-wide descriptors permanently (ENODEV on
// every op except Close), rejects new opens, leaves per-task events
// alone, and bringing the CPU back allows new opens without reviving the
// dead descriptors.
func TestConformanceENODEVHotplug(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := instrAttr(t, m, "adl_glc")
	wideFD, err := k.Open(attr, -1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	taskFD, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}

	k.SetCPUOnline(2, false)
	if k.IsOnline(2) {
		t.Fatal("cpu2 still online")
	}
	if _, err := k.Read(wideFD); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("read dead fd: %v, want ErrNoSuchDevice", err)
	}
	for name, op := range map[string]func(int) error{
		"enable": k.Enable, "disable": k.Disable, "reset": k.Reset,
	} {
		if err := op(wideFD); !errors.Is(err, ErrNoSuchDevice) {
			t.Errorf("%s dead fd: %v, want ErrNoSuchDevice", name, err)
		}
	}
	if _, err := k.Open(attr, -1, 2, -1); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("open on offline cpu: %v, want ErrNoSuchDevice", err)
	}
	// The task event keeps working: the scheduler just stops placing work
	// on the dead CPU.
	k.TaskExec(100, 0, 0.001, execStats(1234))
	if c, err := k.Read(taskFD); err != nil || c.Value != 1234 {
		t.Fatalf("task event after hotplug: %v, value %d", err, c.Value)
	}

	k.SetCPUOnline(2, true)
	// Dead stays dead; a fresh open on the revived CPU works.
	if _, err := k.Read(wideFD); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("dead fd after re-online: %v, want ErrNoSuchDevice", err)
	}
	fd2, err := k.Open(attr, -1, 2, -1)
	if err != nil {
		t.Fatalf("reopen on revived cpu: %v", err)
	}
	if fd2 == wideFD {
		t.Fatal("kernel reused a dead descriptor")
	}
	// Close succeeds on dead descriptors — that is how owners clean up.
	if err := k.Close(wideFD); err != nil {
		t.Fatalf("close dead fd: %v", err)
	}
}

// TestConformanceEBADF locks down descriptor-validity errors across the
// whole fd surface, including the sampling reader.
func TestConformanceEBADF(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	fd, _ := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, -1)
	if err := k.Close(fd); err != nil {
		t.Fatal(err)
	}
	ops := map[string]func() error{
		"read":         func() error { _, err := k.Read(fd); return err },
		"read-user":    func() error { _, err := k.ReadUser(fd); return err },
		"read-group":   func() error { _, err := k.ReadGroup(fd); return err },
		"read-samples": func() error { _, _, err := k.ReadSamples(fd); return err },
		"shadow":       func() error { _, err := k.ShadowValue(fd); return err },
		"enable":       func() error { return k.Enable(fd) },
		"disable":      func() error { return k.Disable(fd) },
		"reset":        func() error { return k.Reset(fd) },
		"close":        func() error { return k.Close(fd) },
	}
	for name, op := range ops {
		if err := op(); !errors.Is(err, ErrBadFD) {
			t.Errorf("%s on closed fd: %v, want ErrBadFD", name, err)
		}
	}
	if _, err := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, 9999); !errors.Is(err, ErrBadFD) {
		t.Errorf("open with bad group fd: %v, want ErrBadFD", err)
	}
}

// TestConformanceRingPressure locks down the sampling ring cap: capped
// rings drop overflow records and count them as lost, and clearing the
// cap restores the default capacity.
func TestConformanceRingPressure(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := instrAttr(t, m, "adl_glc")
	attr.SamplePeriod = 1000
	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.SetSampleRingCap(4)
	k.TaskExec(100, 0, 0.001, execStats(20_000)) // 20 overflows into a 4-slot ring
	got, lost, err := k.ReadSamples(fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("ring held %d samples, want cap 4", len(got))
	}
	if lost != 16 {
		t.Fatalf("lost = %d, want 16", lost)
	}
	k.SetSampleRingCap(0)
	k.TaskExec(100, 0, 0.001, execStats(20_000))
	got, lost, _ = k.ReadSamples(fd)
	if len(got) != 20 || lost != 0 {
		t.Fatalf("after cap cleared: %d samples, %d lost, want 20/0", len(got), lost)
	}
}

// TestConformanceSampledSetHotplug drives CPU hotplug through a mixed
// event set: the CPU-wide counting descriptor dies with ENODEV, and a
// CPU-wide sampled open is rejected outright (sampling is per-task only),
// while the per-task sampled descriptor keeps its pre-fault records and
// keeps emitting once the task runs elsewhere — the profiler's per-task
// rings survive hotplug faults.
func TestConformanceSampledSetHotplug(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	sampled := instrAttr(t, m, "adl_glc")
	sampled.SamplePeriod = 1000
	if _, err := k.Open(sampled, -1, 2, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("cpu-wide sampled open: %v, want ErrInvalid", err)
	}
	wideFD, err := k.Open(instrAttr(t, m, "adl_glc"), -1, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	taskFD, err := k.Open(sampled, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 2, 0.001, execStats(5000)) // 5 overflows into the task ring
	k.SetCPUOnline(2, false)
	if _, err := k.Read(wideFD); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("read dead wide fd: %v, want ErrNoSuchDevice", err)
	}
	// The task descriptor still drains its pre-fault records...
	got, lost, err := k.ReadSamples(taskFD)
	if err != nil || len(got) != 5 || lost != 0 {
		t.Fatalf("task ring after hotplug: %d samples, %d lost, err %v", len(got), lost, err)
	}
	// ...and keeps sampling when the scheduler places the task elsewhere.
	k.TaskExec(100, 0, 0.001, execStats(3000))
	got, _, err = k.ReadSamples(taskFD)
	if err != nil || len(got) != 3 {
		t.Fatalf("task ring post-migration: %d samples, err %v", len(got), err)
	}
	if got[0].CPU != 0 || got[0].CoreType != "P-core" {
		t.Fatalf("post-migration sample attribution: %+v", got[0])
	}
	// Re-onlining does not resurrect the wide descriptor.
	k.SetCPUOnline(2, true)
	if _, err := k.Read(wideFD); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("dead wide fd after re-online: %v, want ErrNoSuchDevice", err)
	}
}

// TestConformanceScaledAccuracy bounds the error of
// time_enabled/time_running scaling against the shadow oracle — the count
// a dedicated counter would have held — while a counter budget forces
// heavy multiplexing.
func TestConformanceScaledAccuracy(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.SetMuxInterval(0.004)
	k.SetCounterBudget(glcType(m), 2)
	var fds []int
	for i := 0; i < 8; i++ {
		fd, err := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, -1)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	for i := 0; i < 1000; i++ {
		k.Advance(float64(i) * 0.001)
		k.TaskExec(100, 0, 0.001, execStats(1000))
	}
	for _, fd := range fds {
		c, err := k.Read(fd)
		if err != nil {
			t.Fatal(err)
		}
		if c.TimeRunning >= c.TimeEnabled {
			t.Fatalf("fd %d not multiplexed under budget: running %g enabled %g", fd, c.TimeRunning, c.TimeEnabled)
		}
		shadow, err := k.ShadowValue(fd)
		if err != nil {
			t.Fatal(err)
		}
		if shadow <= 0 {
			t.Fatalf("fd %d shadow oracle empty", fd)
		}
		if rel := math.Abs(float64(c.Scaled())-shadow) / shadow; rel > 0.10 {
			t.Errorf("fd %d scaled estimate off oracle by %.1f%% (scaled %d, oracle %g)",
				fd, rel*100, c.Scaled(), shadow)
		}
		if float64(c.Value) > shadow {
			t.Errorf("fd %d raw %d exceeds oracle %g", fd, c.Value, shadow)
		}
	}
}

// TestConformanceFaultPlanDriven locks down the plan door into the fault
// state: transitions attached via AttachFaults apply at their scheduled
// times as the kernel clock advances, the observable errno behavior
// matches the direct-setter door, and the applied-transition trace is
// exactly the schedule in order.
func TestConformanceFaultPlanDriven(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	plan := faults.NewPlan(
		faults.Event{AtSec: 0.010, Kind: faults.KindWatchdogHold, PMU: glcType(m)},
		faults.Event{AtSec: 0.030, Kind: faults.KindHotplugOff, CPU: 4},
		faults.Event{AtSec: 0.050, Kind: faults.KindWatchdogRelease, PMU: glcType(m)},
		faults.Event{AtSec: 0.070, Kind: faults.KindHotplugOn, CPU: 4},
	)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	k.AttachFaults(plan)

	wideFD, err := k.Open(instrAttr(t, m, "adl_glc"), -1, 4, -1)
	if err != nil {
		t.Fatal(err)
	}

	k.Advance(0.020) // watchdog hold due
	if !k.WatchdogHeld(glcType(m)) {
		t.Fatal("watchdog hold not applied by Advance")
	}
	if _, err := k.Open(cyclesAttr(glcType(m)), 100, -1, -1); !errors.Is(err, ErrBusy) {
		t.Fatalf("cycles during plan hold: %v, want ErrBusy", err)
	}

	k.Advance(0.040) // hotplug-off due
	if _, err := k.Read(wideFD); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("read after plan hotplug-off: %v, want ErrNoSuchDevice", err)
	}

	// A syscall boundary (not just Advance) also polls the plan: jump the
	// clock past the release and observe Open applying it.
	k.now = 0.060
	if _, err := k.Open(cyclesAttr(glcType(m)), 100, -1, -1); err != nil {
		t.Fatalf("cycles after plan release: %v", err)
	}

	k.Advance(0.080)
	if !plan.Done() {
		t.Fatal("plan not fully consumed")
	}
	want := []string{
		"t=0.010000 watchdog-hold pmu=8",
		"t=0.030000 hotplug-off cpu=4",
		"t=0.050000 watchdog-release pmu=8",
		"t=0.070000 hotplug-on cpu=4",
	}
	got := plan.Trace()
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestConformanceAllMachinesErrnoModel sweeps the errno model across
// every machine preset: unknown PMU type is ENODEV, unknown config on a
// real PMU is ENOENT, watchdog holds on fixed-cycles PMUs are EBUSY for
// generic cycles events targeted at that PMU.
func TestConformanceAllMachinesErrnoModel(t *testing.T) {
	machines := map[string]*hw.Machine{
		"raptorlake":  hw.RaptorLake(),
		"orangepi":    hw.OrangePi800(),
		"dimensity":   hw.Dimensity9000(),
		"homogeneous": hw.Homogeneous(),
	}
	for name, m := range machines {
		t.Run(name, func(t *testing.T) {
			k := NewKernel(m)
			if _, err := k.Open(Attr{Type: 12345, Config: 0}, 100, -1, -1); !errors.Is(err, ErrNoSuchDevice) {
				t.Errorf("unknown pmu: %v, want ErrNoSuchDevice", err)
			}
			for i := range m.Types {
				typ := &m.Types[i]
				pt := typ.PMU.PerfType
				if _, err := k.Open(Attr{Type: pt, Config: events.Encode(0xFF, 0xFF)}, 100, -1, -1); !errors.Is(err, ErrNotSupported) {
					t.Errorf("%s unknown config: %v, want ErrNotSupported", typ.Name, err)
				}
				if !typ.PMU.HasFixed("cycles") {
					continue
				}
				k.SetWatchdog(pt, true)
				cfg := uint64(pt)<<HWConfigExtShift | events.HWCPUCycles
				if _, err := k.Open(Attr{Type: PerfTypeHardware, Config: cfg}, 100, -1, -1); !errors.Is(err, ErrBusy) {
					t.Errorf("%s cycles under watchdog: %v, want ErrBusy", typ.Name, err)
				}
				k.SetWatchdog(pt, false)
				if fd, err := k.Open(Attr{Type: PerfTypeHardware, Config: cfg}, 100, -1, -1); err != nil {
					t.Errorf("%s cycles after release: %v", typ.Name, err)
				} else {
					k.Close(fd)
				}
			}
			if leaked := k.NumOpen(); leaked != 0 {
				t.Errorf("%d descriptors leaked", leaked)
			}
		})
	}
}

// TestConformanceWatchdogSparesOtherGroups locks down scheduling
// selectivity under the watchdog reservation: with the fixed cycles
// counter held, a group containing cycles stalls, but an independent
// non-cycles group on the same PMU — and events on the other PMU —
// keep counting through the same task executions.
func TestConformanceWatchdogSparesOtherGroups(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	leader, err := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(cyclesAttr(glcType(m)), 100, -1, leader); err != nil {
		t.Fatal(err)
	}
	lone, err := k.Open(instrAttr(t, m, "adl_glc"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := k.Open(instrAttr(t, m, "adl_grt"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}

	k.SetWatchdog(glcType(m), true)
	k.TaskExec(100, 0, 0.010, execStats(10_000))

	held, err := k.Read(leader)
	if err != nil {
		t.Fatal(err)
	}
	if held.Value != 0 || held.TimeRunning != 0 {
		t.Errorf("cycles group counted under watchdog: %+v", held)
	}
	alive, err := k.Read(lone)
	if err != nil {
		t.Fatal(err)
	}
	if alive.Value == 0 || alive.TimeRunning == 0 {
		t.Errorf("independent group stalled with the cycles group: %+v", alive)
	}
	// The E PMU's event simply never matches a P-core execution; it must
	// stay untouched rather than stall.
	idle, err := k.Read(other)
	if err != nil {
		t.Fatal(err)
	}
	if idle.Value != 0 || idle.TimeRunning != 0 {
		t.Errorf("wrong-PMU event accrued on a P-core slice: %+v", idle)
	}
}
