package perfevent

// Property-based tests of the kernel invariants DESIGN.md calls out:
// counters are non-negative and monotone while running, per-PMU counts
// partition the total, and enabled time always bounds running time.

import (
	"testing"
	"testing/quick"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
)

// step is one randomized simulation step applied to the kernel.
type step struct {
	CPU     uint8
	Instr   uint16
	Toggle  bool // disable/enable the P event
	ResetIt bool // reset the E event
}

func TestCounterMonotoneWhileRunningProperty(t *testing.T) {
	m := hw.RaptorLake()
	glc := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
	grt := events.LookupPMU("adl_grt").Lookup("INST_RETIRED")

	f := func(steps []step) bool {
		k := NewKernel(m)
		pFD, err := k.Open(Attr{Type: 8, Config: events.Encode(glc.Code, glc.DefaultUmask().Bits)}, 100, -1, -1)
		if err != nil {
			return false
		}
		eFD, err := k.Open(Attr{Type: 10, Config: events.Encode(grt.Code, grt.DefaultUmask().Bits)}, 100, -1, -1)
		if err != nil {
			return false
		}
		var lastP, lastE uint64
		now := 0.0
		var expectedTotal float64
		var countedP, countedE float64
		pEnabled := true
		for _, s := range steps {
			cpu := int(s.CPU) % m.NumCPUs()
			instr := float64(s.Instr)
			if s.Toggle {
				if pEnabled {
					k.Disable(pFD)
				} else {
					k.Enable(pFD)
				}
				pEnabled = !pEnabled
			}
			if s.ResetIt {
				k.Reset(eFD)
				lastE = 0
			}
			now += 0.001
			k.Advance(now)
			k.TaskExec(100, cpu, 0.001, events.Stats{Instructions: instr})
			expectedTotal += instr
			if m.TypeOf(cpu).Class == hw.Performance && pEnabled {
				countedP += instr
			}
			if m.TypeOf(cpu).Class == hw.Efficiency {
				countedE += instr
			}

			p, err1 := k.Read(pFD)
			e, err2 := k.Read(eFD)
			if err1 != nil || err2 != nil {
				return false
			}
			// Monotone except across explicit resets.
			if p.Value < lastP || e.Value < lastE {
				return false
			}
			lastP, lastE = p.Value, e.Value
			// Time invariants.
			if p.TimeRunning > p.TimeEnabled+1e-12 || e.TimeRunning > e.TimeEnabled+1e-12 {
				return false
			}
		}
		// Final conservation: the P counter holds exactly the instructions
		// executed on P cores while it was enabled.
		p, _ := k.Read(pFD)
		return float64(p.Value) == countedP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: for any schedule of executions across CPUs, the per-PMU
// instruction counters of a task partition the total exactly.
func TestPartitionProperty(t *testing.T) {
	machines := []*hw.Machine{hw.RaptorLake(), hw.OrangePi800(), hw.Dimensity9000()}
	f := func(mi uint8, cpus []uint8) bool {
		m := machines[int(mi)%len(machines)]
		k := NewKernel(m)
		var fds []int
		for i := range m.Types {
			tt := &m.Types[i]
			def := events.LookupPMU(tt.PfmName).Lookup("INST_RETIRED")
			var bits uint64
			if u := def.DefaultUmask(); u != nil {
				bits = u.Bits
			}
			fd, err := k.Open(Attr{Type: tt.PMU.PerfType, Config: events.Encode(def.Code, bits)}, 7, -1, -1)
			if err != nil {
				return false
			}
			fds = append(fds, fd)
		}
		var total float64
		for i, c := range cpus {
			cpu := int(c) % m.NumCPUs()
			instr := float64(i%997 + 1)
			k.TaskExec(7, cpu, 0.001, events.Stats{Instructions: instr})
			total += instr
		}
		var sum uint64
		for _, fd := range fds {
			v, err := k.Read(fd)
			if err != nil {
				return false
			}
			sum += v.Value
		}
		return float64(sum) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: group reads return the same values as individual reads.
func TestGroupReadConsistencyProperty(t *testing.T) {
	m := hw.RaptorLake()
	glc := events.LookupPMU("adl_glc")
	inst := glc.Lookup("INST_RETIRED")
	cyc := glc.Lookup("CPU_CLK_UNHALTED")
	br := glc.Lookup("BR_INST_RETIRED")
	f := func(execs []uint16) bool {
		k := NewKernel(m)
		leader, _ := k.Open(Attr{Type: 8, Config: events.Encode(inst.Code, inst.DefaultUmask().Bits)}, 9, -1, -1)
		s1, _ := k.Open(Attr{Type: 8, Config: events.Encode(cyc.Code, cyc.DefaultUmask().Bits)}, 9, -1, leader)
		s2, _ := k.Open(Attr{Type: 8, Config: events.Encode(br.Code, br.DefaultUmask().Bits)}, 9, -1, leader)
		for i, e := range execs {
			k.TaskExec(9, (i%8)*2, 0.001, events.Stats{
				Instructions: float64(e),
				Cycles:       float64(e) / 2,
				Branches:     float64(e) / 5,
			})
		}
		group, err := k.ReadGroup(leader)
		if err != nil || len(group) != 3 {
			return false
		}
		for i, fd := range []int{leader, s1, s2} {
			single, err := k.Read(fd)
			if err != nil || single.Value != group[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
