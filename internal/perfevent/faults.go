package perfevent

// Fault-injection state of the simulated kernel. All of it defaults to
// "no faults": a kernel with no attached plan and no explicitly set
// fault state behaves byte-identically to one built before this layer
// existed. Faults arrive through two equivalent doors — an attached
// faults.Plan that the kernel polls at every syscall-shaped boundary
// and on every clock advance, or the direct setters the scenario
// harness's injections call — and both converge on the same internal
// state consulted by Open, Read and the counter scheduler.

import (
	"fmt"
	"sort"

	"hetpapi/internal/events"
	"hetpapi/internal/faults"
	"hetpapi/internal/spantrace"
)

// kernelFaults is the live fault state of one kernel.
type kernelFaults struct {
	plan     *faults.Plan
	watchdog map[uint32]bool // pmu type -> watchdog holds a counter
	offline  map[int]bool    // cpu -> offline
	budget   map[uint32]int  // pmu type -> schedulable counter cap (0/absent = physical)
	ringCap  int             // sampling ring cap override (0 = default)
}

// AttachFaults attaches a fault plan. The kernel polls it on every
// syscall and every Advance, applying due transitions in schedule
// order. Pass nil to detach. The plan's trace (faults.Plan.Trace)
// records exactly which transitions were applied and when.
func (k *Kernel) AttachFaults(p *faults.Plan) { k.faults.plan = p }

// pollFaults applies every plan transition due at the kernel's current
// clock. Called at each syscall-shaped boundary and from Advance.
func (k *Kernel) pollFaults() {
	if k.faults.plan == nil {
		return
	}
	for _, ev := range k.faults.plan.Pending(k.now) {
		k.applyFault(ev)
	}
}

func (k *Kernel) applyFault(ev faults.Event) {
	if k.tracer.Enabled() {
		k.traceFault("fault.plan", ev.TraceArgs()...)
	}
	switch ev.Kind {
	case faults.KindWatchdogHold:
		k.SetWatchdog(ev.PMU, true)
	case faults.KindWatchdogRelease:
		k.SetWatchdog(ev.PMU, false)
	case faults.KindHotplugOff:
		k.SetCPUOnline(ev.CPU, false)
	case faults.KindHotplugOn:
		k.SetCPUOnline(ev.CPU, true)
	case faults.KindRingCap:
		k.SetSampleRingCap(ev.Cap)
	case faults.KindCounterBudget:
		k.SetCounterBudget(ev.PMU, ev.Cap)
	}
}

// SetWatchdog reserves (held=true) or returns (held=false) one counter
// of the PMU for the NMI watchdog. On PMUs with a fixed cycles counter
// the watchdog pins that counter: new cycles events fail to open with
// ErrBusy and open groups containing a cycles event are descheduled
// until release. On PMUs without one it consumes a general-purpose
// counter, shrinking the schedulable capacity by one.
func (k *Kernel) SetWatchdog(pmuType uint32, held bool) {
	if k.faults.watchdog == nil {
		k.faults.watchdog = map[uint32]bool{}
	}
	changed := k.faults.watchdog[pmuType] != held
	if held {
		k.faults.watchdog[pmuType] = true
	} else {
		delete(k.faults.watchdog, pmuType)
	}
	if changed && k.tracer.Enabled() {
		name := "fault.watchdog-hold"
		if !held {
			name = "fault.watchdog-release"
		}
		k.traceFault(name, spantrace.Int("pmu", int(pmuType)))
	}
}

// WatchdogHeld reports whether the watchdog holds a counter on the PMU.
func (k *Kernel) WatchdogHeld(pmuType uint32) bool { return k.faults.watchdog[pmuType] }

// SetCounterBudget caps the number of simultaneously schedulable
// hardware counters of the PMU below its physical inventory, modeling
// counters held by other users of the PMU. Cap 0 restores the physical
// inventory. Groups larger than the budget fail to open with
// ErrNoSpace; open events multiplex within the reduced capacity.
func (k *Kernel) SetCounterBudget(pmuType uint32, cap int) {
	if k.faults.budget == nil {
		k.faults.budget = map[uint32]int{}
	}
	old := k.faults.budget[pmuType]
	if cap <= 0 {
		cap = 0
		delete(k.faults.budget, pmuType)
	} else {
		k.faults.budget[pmuType] = cap
	}
	if old != cap && k.tracer.Enabled() {
		k.traceFault("fault.counter-budget",
			spantrace.Int("pmu", int(pmuType)), spantrace.Int("cap", cap))
	}
}

// SetSampleRingCap caps every event's sampling ring buffer at n
// records; overflow records beyond the cap are dropped and counted as
// lost. n <= 0 restores the default capacity.
func (k *Kernel) SetSampleRingCap(n int) {
	if n < 0 {
		n = 0
	}
	if n != k.faults.ringCap && k.tracer.Enabled() {
		k.traceFault("fault.ring-cap", spantrace.Int("cap", n))
	}
	k.faults.ringCap = n
}

// SetCPUOnline changes a CPU's hotplug state. Taking a CPU offline
// permanently invalidates every CPU-wide event opened on it — further
// operations on those descriptors return ErrNoSuchDevice, matching the
// kernel's behavior when a perf event's CPU vanishes — and new opens
// on the CPU fail. Bringing the CPU back online allows new opens; dead
// descriptors stay dead and must be reopened by their owners. The
// OnHotplug callback (if set) observes every state change, which is
// how the simulator forwards hotplug to the scheduler.
func (k *Kernel) SetCPUOnline(cpu int, online bool) {
	if cpu < 0 || cpu >= k.m.NumCPUs() {
		return
	}
	if k.faults.offline == nil {
		k.faults.offline = map[int]bool{}
	}
	was := !k.faults.offline[cpu]
	if was == online {
		return
	}
	dead := 0
	if online {
		delete(k.faults.offline, cpu)
	} else {
		k.faults.offline[cpu] = true
		for _, e := range k.byCPU[cpu] {
			e.dead = true
			dead++
		}
	}
	if k.tracer.Enabled() {
		name := "fault.hotplug-on"
		if !online {
			name = "fault.hotplug-off"
		}
		k.traceFault(name, spantrace.Int("cpu", cpu), spantrace.Int("dead_fds", dead))
	}
	if k.OnHotplug != nil {
		k.OnHotplug(cpu, online)
	}
}

// IsOnline reports whether the CPU is online.
func (k *Kernel) IsOnline(cpu int) bool {
	return cpu >= 0 && cpu < k.m.NumCPUs() && !k.faults.offline[cpu]
}

// OnlineCPUs returns the online logical CPU ids, ascending.
func (k *Kernel) OnlineCPUs() []int {
	var out []int
	for cpu := 0; cpu < k.m.NumCPUs(); cpu++ {
		if !k.faults.offline[cpu] {
			out = append(out, cpu)
		}
	}
	sort.Ints(out)
	return out
}

// fixedCycles reports whether the PMU's fixed-counter inventory
// includes the cycles counter (the one the NMI watchdog pins).
func (k *Kernel) fixedCycles(pmuType uint32) bool {
	t := k.m.TypeByPerfType(pmuType)
	return t != nil && t.PMU.HasFixed("cycles")
}

// cyclesBlocked reports whether cycles events of the PMU are currently
// unschedulable because the watchdog pins the fixed cycles counter.
func (k *Kernel) cyclesBlocked(pmuType uint32) bool {
	return k.faults.watchdog[pmuType] && k.fixedCycles(pmuType)
}

// groupHasCycles reports whether the leader's group contains a cycles
// event (groups schedule all-or-nothing, so one pinned counter stalls
// the whole group).
func groupHasCycles(leader *Event) bool {
	for _, e := range leader.group() {
		if e.kind == events.KindCycles {
			return true
		}
	}
	return false
}

// effectiveCapacity returns the PMU's schedulable counter capacity
// after fault state: the physical inventory, capped by any counter
// budget, minus the general-purpose counter a watchdog reservation
// consumes on PMUs without a fixed cycles counter.
func (k *Kernel) effectiveCapacity(pmuType uint32) int {
	cap := k.capacityOf(pmuType)
	if b, ok := k.faults.budget[pmuType]; ok && b < cap {
		cap = b
	}
	if k.faults.watchdog[pmuType] && !k.fixedCycles(pmuType) {
		cap--
	}
	if cap < 0 {
		cap = 0
	}
	return cap
}

// checkAlive returns ErrNoSuchDevice for descriptors invalidated by
// CPU hotplug.
func checkAlive(e *Event) error {
	if e.dead {
		return fmt.Errorf("%w: fd %d was invalidated by cpu%d going offline", ErrNoSuchDevice, e.fd, e.cpu)
	}
	return nil
}

// ShadowValue returns the count a dedicated, never-multiplexed counter
// would hold for the event: the simulation credits it whenever the
// event's PMU matches the executing core and the event is enabled,
// ignoring counter capacity, watchdog reservations and rotation. It is
// a simulator-only oracle — real kernels cannot offer it — used by
// conformance and property tests to bound the error of
// time_enabled/time_running scaled estimates.
func (k *Kernel) ShadowValue(fd int) (float64, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	return e.shadow, nil
}
