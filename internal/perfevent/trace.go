package perfevent

// Span-trace instrumentation for the simulated kernel. Two event
// families are emitted:
//
//   - "sys.*" instants on the "kernel" track, one per syscall-shaped
//     operation (open, enable, disable, reset, read, read-group,
//     close), annotated with the fd, the errno name of the result and
//     the wall-clock service time in nanoseconds. The rdpmc fast path
//     (ReadUser) deliberately emits nothing, mirroring how it costs no
//     kernel entry. Wall time travels only as an annotation: the trace
//     timeline itself stays on the deterministic sim clock.
//   - "fault.*" instants on the "faults" track, one per effective fault
//     state transition, whichever door it arrived through (an attached
//     faults.Plan or the direct setters the scenario harness calls).
//     Plan-driven transitions additionally emit a "fault.plan" instant
//     carrying the scheduled event, so a trace distinguishes planned
//     faults from harness injections.
//
// Every site is gated on Recorder.Enabled(), a nil check plus one
// atomic load, so a detached or disabled recorder costs a few
// nanoseconds per syscall.

import (
	"errors"
	"time"

	"hetpapi/internal/spantrace"
)

// SetTracer attaches (or with nil, detaches) the span recorder. The
// simulator's Machine.SetTracer forwards here; standalone kernels (unit
// tests, conformance suites) may call it directly.
func (k *Kernel) SetTracer(r *spantrace.Recorder) {
	k.tracer = r
	if r != nil {
		k.trkKernel = r.Track("kernel")
		k.trkFaults = r.Track("faults")
	}
}

// ErrnoName maps the kernel's error values to their errno spelling
// ("ok" for nil), for trace annotations and reports.
func ErrnoName(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrInvalid):
		return "EINVAL"
	case errors.Is(err, ErrNoSuchDevice):
		return "ENODEV"
	case errors.Is(err, ErrNotSupported):
		return "ENOENT"
	case errors.Is(err, ErrBadFD):
		return "EBADF"
	case errors.Is(err, ErrNoSpace):
		return "ENOSPC"
	case errors.Is(err, ErrBusy):
		return "EBUSY"
	default:
		return "EIO"
	}
}

// traceSys records one syscall instant. It is invoked via defer from
// the syscall entry points so it observes the final fd and error
// (named return values) and the full wall-clock service time.
func (k *Kernel) traceSys(op string, t0 time.Time, fdp *int, errp *error) {
	k.tracer.Instant(k.trkKernel, "sys."+op, "syscall", k.now,
		spantrace.Int("fd", *fdp),
		spantrace.Str("err", ErrnoName(*errp)),
		spantrace.Num("wall_ns", float64(time.Since(t0).Nanoseconds())))
}

// traceFault records one fault-state transition instant.
func (k *Kernel) traceFault(name string, args ...spantrace.Arg) {
	k.tracer.Instant(k.trkFaults, name, "fault", k.now, args...)
}
