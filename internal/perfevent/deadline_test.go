package perfevent

// NextDeadline is the kernel's contribution to the simulator's event
// horizon: the earliest future time at which the kernel itself will do
// non-linear work (rotate a multiplex window or apply a fault-plan
// transition). These tests pin the arithmetic the event core relies on.

import (
	"math"
	"testing"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
)

func TestNextDeadlineIdleKernel(t *testing.T) {
	k := NewKernel(hw.RaptorLake())
	if got := k.NextDeadline(0); !math.IsInf(got, 1) {
		t.Fatalf("idle kernel NextDeadline = %v, want +Inf", got)
	}
	k.Advance(1.5)
	if got := k.NextDeadline(1.5); !math.IsInf(got, 1) {
		t.Fatalf("idle kernel NextDeadline after advance = %v, want +Inf", got)
	}
}

func TestNextDeadlineMuxBoundary(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	fd, err := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// With a countable event open, the deadline is the next multiplex
	// rotation boundary (default tick 4 ms).
	if got := k.NextDeadline(0); got != 0.004 {
		t.Fatalf("NextDeadline(0) = %v, want 0.004", got)
	}
	if got := k.NextDeadline(0.0055); got != 0.008 {
		t.Fatalf("NextDeadline(0.0055) = %v, want 0.008", got)
	}
	// Exactly on a boundary the deadline is the following window.
	if got := k.NextDeadline(0.008); got != 0.012 {
		t.Fatalf("NextDeadline(0.008) = %v, want 0.012", got)
	}

	// A disabled event imposes no rotation deadline.
	if err := k.Disable(fd); err != nil {
		t.Fatal(err)
	}
	if got := k.NextDeadline(0); !math.IsInf(got, 1) {
		t.Fatalf("NextDeadline with only a disabled event = %v, want +Inf", got)
	}
	if err := k.Enable(fd); err != nil {
		t.Fatal(err)
	}
	if got := k.NextDeadline(0); got != 0.004 {
		t.Fatalf("NextDeadline after re-enable = %v, want 0.004", got)
	}
	// Closing the last event removes the deadline again.
	if err := k.Close(fd); err != nil {
		t.Fatal(err)
	}
	if got := k.NextDeadline(0); !math.IsInf(got, 1) {
		t.Fatalf("NextDeadline after close = %v, want +Inf", got)
	}
}

func TestNextDeadlineFaultPlan(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.AttachFaults(faults.NewPlan(
		faults.Event{AtSec: 0.010, Kind: faults.KindRingCap, Cap: 64},
		faults.Event{AtSec: 0.020, Kind: faults.KindRingCap, Cap: 0},
	))

	// No events open: the plan alone sets the horizon.
	if got := k.NextDeadline(0); got != 0.010 {
		t.Fatalf("NextDeadline(0) = %v, want 0.010 (first fault)", got)
	}

	// With an event open, the earlier of mux boundary and fault wins.
	if _, err := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1); err != nil {
		t.Fatal(err)
	}
	if got := k.NextDeadline(0); got != 0.004 {
		t.Fatalf("NextDeadline(0) = %v, want 0.004 (mux before fault)", got)
	}
	if got := k.NextDeadline(0.009); got != 0.010 {
		t.Fatalf("NextDeadline(0.009) = %v, want 0.010 (fault before mux)", got)
	}

	// A fault already due is clamped to now, never the past.
	if got := k.NextDeadline(0.011); got != 0.011 {
		t.Fatalf("NextDeadline(0.011) = %v, want 0.011 (overdue fault clamps to now)", got)
	}

	// Consuming the plan removes its deadlines.
	k.Advance(0.025)
	if got := k.NextDeadline(0.025); got != 0.028 {
		t.Fatalf("NextDeadline after plan drained = %v, want 0.028 (mux only)", got)
	}
}
