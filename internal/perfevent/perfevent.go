// Package perfevent implements the Linux perf_event subsystem of the
// simulated machines, faithfully enough that the PAPI layer above it has to
// solve exactly the problems described in section IV of the paper:
//
//   - Each core type exports its own dynamic PMU type id; an event opened
//     with one PMU's type only counts while the task runs on cores of that
//     type (the kernel "tracks the core type and only enables event
//     counters if they match the core currently being run on").
//   - Event groups cannot mix PMU types: opening a sibling with a different
//     type than its leader fails with ErrInvalid, so measuring both core
//     types takes one group per PMU and at least one read per group.
//   - RAPL energy events belong to a separate "power" PMU and are only
//     valid CPU-wide, never attached to a task.
//   - When more events are enabled than the PMU has counters, groups are
//     time-multiplexed and reads report time_enabled/time_running for
//     scaling.
//   - The generic PERF_TYPE_HARDWARE ids work on hybrids via the extended
//     config encoding (PMU type in config bits 32+), like Linux >= 5.13.
//
// The simulation drives the kernel through two hooks: TaskExec (a task ran
// on a CPU for a slice, producing event quantities) and Advance (wall
// simulated time moved; services CPU-wide and RAPL events and rotates
// multiplexed groups).
package perfevent

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
	"hetpapi/internal/spantrace"
)

// Errors mirror the errno values perf_event_open reports.
var (
	// ErrInvalid corresponds to EINVAL: malformed attr, cross-PMU group,
	// oversized group, or invalid pid/cpu combination.
	ErrInvalid = errors.New("perfevent: invalid argument (EINVAL)")
	// ErrNoSuchDevice corresponds to ENODEV: the attr names a PMU type
	// that does not exist on this machine.
	ErrNoSuchDevice = errors.New("perfevent: no such device (ENODEV)")
	// ErrNotSupported corresponds to ENOENT: the PMU exists but does not
	// implement the requested event config.
	ErrNotSupported = errors.New("perfevent: event not supported (ENOENT)")
	// ErrBadFD corresponds to EBADF.
	ErrBadFD = errors.New("perfevent: bad file descriptor (EBADF)")
	// ErrNoSpace corresponds to ENOSPC: the PMU's schedulable counter
	// budget is exhausted (physically, or because other users of the PMU
	// hold counters).
	ErrNoSpace = errors.New("perfevent: no space on PMU (ENOSPC)")
	// ErrBusy corresponds to EBUSY: the requested counter is reserved
	// by another kernel user (the NMI watchdog pinning the fixed cycles
	// counter).
	ErrBusy = errors.New("perfevent: counter busy (EBUSY)")
)

// PerfTypeHardware is the static generic hardware event type
// (PERF_TYPE_HARDWARE).
const PerfTypeHardware uint32 = 0

// PerfTypeSoftware is the kernel software event type (PERF_TYPE_SOFTWARE):
// context switches, migrations, clocks and faults, counted by the kernel's
// scheduler hooks rather than PMU hardware.
const PerfTypeSoftware uint32 = 1

// HWConfigExtShift is the bit position of the extended PMU type inside a
// PERF_TYPE_HARDWARE config on hybrid systems (PERF_HW_EVENT_MASK).
const HWConfigExtShift = 32

// Attr mirrors the perf_event_attr fields the simulator honours.
type Attr struct {
	// Type is the PMU type id: PerfTypeHardware or a dynamic id from
	// /sys/devices/<pmu>/type.
	Type uint32
	// Config selects the event within the PMU (event code | umask<<8 for
	// core PMUs, the PERF_COUNT_HW_* id plus optional extended PMU type
	// for PerfTypeHardware).
	Config uint64
	// Disabled starts the event disabled; it must be enabled explicitly.
	Disabled bool
	// SamplePeriod, when nonzero, turns the event into a sampling event: an
	// overflow record is emitted every SamplePeriod increments (the
	// perf_event_open sample_period field). Only per-task hardware events
	// may sample, and the period must be at least MinSamplePeriod (the
	// simulator's analogue of the perf_event_max_sample_rate throttle).
	SamplePeriod uint64
	// ExcludeUser / ExcludeKernel are accepted but have no effect: the
	// simulation runs everything in one privilege domain.
	ExcludeUser   bool
	ExcludeKernel bool
}

// Count is one counter read: the raw value plus the time the event was
// enabled and actually running (for multiplex scaling).
type Count struct {
	Value       uint64
	TimeEnabled float64
	TimeRunning float64
}

// Scaled returns the multiplex-scaled estimate value*enabled/running.
func (c Count) Scaled() uint64 {
	if c.TimeRunning <= 0 {
		return 0
	}
	return uint64(float64(c.Value) * c.TimeEnabled / c.TimeRunning)
}

// Event is one open perf event.
type Event struct {
	fd   int
	attr Attr
	pid  int
	cpu  int

	pmuType uint32
	kind    events.Kind
	scale   float64
	name    string

	leader   *Event
	siblings []*Event

	enabled     bool
	value       float64
	timeEnabled float64
	timeRunning float64

	// dead marks a descriptor invalidated by its CPU going offline:
	// every further operation except Close returns ErrNoSuchDevice.
	dead bool
	// shadow is the simulator-only oracle counter: what a dedicated,
	// never-multiplexed counter would have counted (see ShadowValue).
	shadow float64

	// energyBase is the RAPL accumulator snapshot at enable/reset time.
	energyBase float64

	// sampling state
	samplePeriod uint64
	sampleAcc    float64
	samples      []Sample
	lostSamples  uint64
	// drainRingCap is the ring capacity in effect at the previous
	// ReadSamples drain (0 = never drained); a change between drains
	// makes the next drain return a defensive copy.
	drainRingCap int
}

// FD returns the event's descriptor.
func (e *Event) FD() int { return e.fd }

// Kind returns the architectural quantity the event counts.
func (e *Event) Kind() events.Kind { return e.kind }

// PMUType returns the resolved dynamic PMU type the event schedules on.
func (e *Event) PMUType() uint32 { return e.pmuType }

// Name returns the canonical decoded event name.
func (e *Event) Name() string { return e.name }

// group returns the event and its siblings (leader first).
func (e *Event) group() []*Event {
	g := []*Event{e}
	return append(g, e.siblings...)
}

// hwGroupSize returns how many hardware counters the group occupies
// (software members are free).
func (e *Event) hwGroupSize() int {
	n := 0
	for _, ev := range e.group() {
		if !ev.kind.Software() {
			n++
		}
	}
	return n
}

// Kernel is the perf_event subsystem of one machine.
type Kernel struct {
	m   *hw.Machine
	pwr *power.Model

	fds    map[int]*Event
	nextFD int
	// byPid and byCPU index enabled-or-not events by target for the hot
	// TaskExec path, in fd (open) order for determinism.
	byPid  map[int][]*Event
	byCPU  map[int][]*Event
	energy []*Event
	uncore []*Event
	// lastCPU tracks each task's previous placement for migration counts.
	lastCPU  map[int]int
	now      float64
	muxTick  float64
	syscalls int
	// evScratch backs eventsFor's result between TaskExec calls — the
	// kernel runs on the sim goroutine and the match list never outlives
	// one call, so reusing the array keeps the per-tick hot path
	// allocation-free.
	evScratch []*Event

	// faults holds the injected fault state (see faults.go). Zero value
	// means no faults and changes nothing about kernel behavior.
	faults kernelFaults
	// tracer, when attached and enabled, records syscall and fault
	// instants (see trace.go). nil costs one pointer check per site.
	tracer    *spantrace.Recorder
	trkKernel int
	trkFaults int
	// OnHotplug, when set, observes every CPU hotplug transition; the
	// simulator uses it to forward hotplug to the scheduler.
	OnHotplug func(cpu int, online bool)
	// OnSampleContext, when set, supplies per-overflow attribution context
	// for sampling events: the workload phase executing and the CPU's
	// DVFS frequency at overflow time. The simulator installs it so every
	// Sample carries (core type, phase, frequency) — the enrichment a
	// real PERF_RECORD_SAMPLE gets from unwinding and side-band records.
	// It is consulted at most once per execution slice.
	OnSampleContext func(pid, cpu int) (phase string, freqMHz float64)
}

// NewKernel returns the subsystem for a machine.
func NewKernel(m *hw.Machine) *Kernel {
	return &Kernel{
		m:       m,
		fds:     map[int]*Event{},
		byPid:   map[int][]*Event{},
		byCPU:   map[int][]*Event{},
		lastCPU: map[int]int{},
		nextFD:  3,
		muxTick: 0.004, // default multiplex rotation interval
	}
}

// AttachPower connects the RAPL energy source. Without it, opening energy
// events fails with ErrNoSuchDevice.
func (k *Kernel) AttachPower(p *power.Model) { k.pwr = p }

// SetMuxInterval changes the multiplex rotation period (the
// /sys/devices/<pmu>/perf_event_mux_interval_ms knob).
func (k *Kernel) SetMuxInterval(sec float64) {
	if sec > 0 {
		k.muxTick = sec
	}
}

// Machine returns the machine this kernel manages.
func (k *Kernel) Machine() *hw.Machine { return k.m }

// Syscalls returns how many syscall-equivalent operations (open, ioctl,
// read, close) have been issued — the quantity behind the paper's
// measurement-overhead concern (section V.5).
func (k *Kernel) Syscalls() int { return k.syscalls }

// NumOpen returns the number of open events.
func (k *Kernel) NumOpen() int { return len(k.fds) }

// resolve maps an attr to (pmu type, kind, scale, name).
func (k *Kernel) resolve(attr Attr) (uint32, events.Kind, float64, string, error) {
	if attr.Type == PerfTypeHardware {
		ext := uint32(attr.Config >> HWConfigExtShift)
		hwID := attr.Config & 0xFFFFFFFF
		kind, scale := events.GenericKind(hwID)
		if kind == events.KindNone {
			return 0, 0, 0, "", fmt.Errorf("%w: unknown generic hardware event %d", ErrNotSupported, hwID)
		}
		var typ *hw.CoreType
		if ext == 0 {
			// Unextended generic event on a hybrid: the kernel resolves it
			// against the first (boot) CPU's PMU.
			typ = k.m.TypeOf(0)
		} else {
			typ = k.m.TypeByPerfType(ext)
			if typ == nil {
				return 0, 0, 0, "", fmt.Errorf("%w: extended type %d", ErrNoSuchDevice, ext)
			}
		}
		return typ.PMU.PerfType, kind, scale, events.GenericName(hwID), nil
	}
	if attr.Type == PerfTypeSoftware {
		tab := events.LookupPMU("perf")
		kind, scale, name, ok := tab.Decode(attr.Config)
		if !ok {
			return 0, 0, 0, "", fmt.Errorf("%w: software event %#x", ErrNotSupported, attr.Config)
		}
		return PerfTypeSoftware, kind, scale, name, nil
	}
	if u := k.m.UncoreByPerfType(attr.Type); u != nil {
		tab := events.LookupPMU(u.PfmName)
		if tab == nil {
			return 0, 0, 0, "", fmt.Errorf("%w: no event table for %s", ErrNoSuchDevice, u.PfmName)
		}
		kind, scale, name, ok := tab.Decode(attr.Config)
		if !ok {
			return 0, 0, 0, "", fmt.Errorf("%w: %s config %#x", ErrNotSupported, u.PfmName, attr.Config)
		}
		return attr.Type, kind, scale, name, nil
	}
	if k.m.Power.HasRAPL && attr.Type == k.m.Power.RAPLPerfType {
		p := events.LookupPMU("rapl")
		kind, scale, name, ok := p.Decode(attr.Config)
		if !ok {
			return 0, 0, 0, "", fmt.Errorf("%w: rapl config %#x", ErrNotSupported, attr.Config)
		}
		return attr.Type, kind, scale, name, nil
	}
	typ := k.m.TypeByPerfType(attr.Type)
	if typ == nil {
		return 0, 0, 0, "", fmt.Errorf("%w: pmu type %d", ErrNoSuchDevice, attr.Type)
	}
	p := events.LookupPMU(typ.PfmName)
	if p == nil {
		return 0, 0, 0, "", fmt.Errorf("%w: no event table for %s", ErrNoSuchDevice, typ.PfmName)
	}
	kind, scale, name, ok := p.Decode(attr.Config)
	if !ok {
		return 0, 0, 0, "", fmt.Errorf("%w: %s config %#x", ErrNotSupported, typ.PfmName, attr.Config)
	}
	return attr.Type, kind, scale, name, nil
}

// Open mirrors perf_event_open(attr, pid, cpu, group_fd, 0).
//
// pid >= 0 with cpu == -1 opens a per-task event that follows the task;
// pid == -1 with cpu >= 0 opens a CPU-wide event. Energy (RAPL) events are
// only valid CPU-wide. groupFD == -1 creates a new group leader; otherwise
// the event joins that group and must share its PMU type and target.
func (k *Kernel) Open(attr Attr, pid, cpu, groupFD int) (fd int, err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("open", time.Now(), &fd, &err)
	}
	k.pollFaults()
	if pid < 0 && cpu < 0 {
		return -1, fmt.Errorf("%w: pid and cpu both unset", ErrInvalid)
	}
	if pid >= 0 && cpu >= 0 {
		// Per-task-per-cpu events exist in real perf; unsupported here.
		return -1, fmt.Errorf("%w: per-task per-cpu events not supported", ErrInvalid)
	}
	if cpu >= k.m.NumCPUs() {
		return -1, fmt.Errorf("%w: cpu %d out of range", ErrInvalid, cpu)
	}
	if cpu >= 0 && !k.IsOnline(cpu) {
		return -1, fmt.Errorf("%w: cpu %d is offline", ErrNoSuchDevice, cpu)
	}
	pmuType, kind, scale, name, err := k.resolve(attr)
	if err != nil {
		return -1, err
	}
	if kind == events.KindCycles && k.cyclesBlocked(pmuType) {
		return -1, fmt.Errorf("%w: fixed cycles counter of pmu %d is held by the NMI watchdog",
			ErrBusy, pmuType)
	}
	if !kind.Software() && !kind.Energy() && k.m.TypeByPerfType(pmuType) != nil &&
		k.effectiveCapacity(pmuType) < 1 {
		return -1, fmt.Errorf("%w: pmu %d has no schedulable counters", ErrNoSpace, pmuType)
	}
	if kind.Energy() {
		if k.pwr == nil {
			return -1, fmt.Errorf("%w: no energy source attached", ErrNoSuchDevice)
		}
		if pid != -1 || cpu < 0 {
			return -1, fmt.Errorf("%w: RAPL events must be opened CPU-wide (pid=-1)", ErrInvalid)
		}
	}
	if k.m.UncoreByPerfType(attr.Type) != nil && (pid != -1 || cpu < 0) {
		return -1, fmt.Errorf("%w: uncore events must be opened CPU-wide (pid=-1)", ErrInvalid)
	}
	if kind.Software() && pid < 0 {
		return -1, fmt.Errorf("%w: software events are per-task in this kernel", ErrInvalid)
	}
	if kind.Software() && attr.SamplePeriod > 0 {
		return -1, fmt.Errorf("%w: sampling software events is not supported", ErrInvalid)
	}

	if attr.SamplePeriod > 0 && (pid < 0 || kind.Energy()) {
		return -1, fmt.Errorf("%w: sampling requires a per-task hardware event", ErrInvalid)
	}
	if attr.SamplePeriod > 0 && attr.SamplePeriod < MinSamplePeriod {
		// Mirrors the kernel's perf_event_max_sample_rate throttle: a
		// tiny period would emit one overflow record per handful of
		// counter increments and overwhelm the sampling path.
		return -1, fmt.Errorf("%w: sample period %d below minimum %d",
			ErrInvalid, attr.SamplePeriod, MinSamplePeriod)
	}

	e := &Event{
		attr:         attr,
		pid:          pid,
		cpu:          cpu,
		pmuType:      pmuType,
		kind:         kind,
		scale:        scale,
		name:         name,
		enabled:      !attr.Disabled,
		samplePeriod: attr.SamplePeriod,
	}

	if groupFD >= 0 {
		leader, ok := k.fds[groupFD]
		if !ok {
			return -1, fmt.Errorf("%w: group fd %d", ErrBadFD, groupFD)
		}
		if leader.leader != nil {
			return -1, fmt.Errorf("%w: fd %d is not a group leader", ErrInvalid, groupFD)
		}
		if err := checkAlive(leader); err != nil {
			return -1, err
		}
		if leader.pid != pid || leader.cpu != cpu {
			return -1, fmt.Errorf("%w: group target mismatch", ErrInvalid)
		}
		if leader.pmuType != pmuType && !kind.Software() {
			// The core constraint of section IV.E: perf event groups
			// cannot contain events from different hardware PMUs. Software
			// events are exempt, as in the real kernel.
			return -1, fmt.Errorf("%w: cannot add PMU type %d event to PMU type %d group",
				ErrInvalid, pmuType, leader.pmuType)
		}
		if !kind.Software() {
			if cap := k.capacityOf(pmuType); leader.hwGroupSize()+1 > cap {
				return -1, fmt.Errorf("%w: group of %d events exceeds %d counters",
					ErrInvalid, leader.hwGroupSize()+1, cap)
			}
			if eff := k.effectiveCapacity(pmuType); leader.hwGroupSize()+1 > eff {
				// The group fits the physical inventory but not the
				// currently schedulable one: other users hold counters.
				return -1, fmt.Errorf("%w: group of %d events exceeds %d schedulable counters",
					ErrNoSpace, leader.hwGroupSize()+1, eff)
			}
		}
		e.leader = leader
		leader.siblings = append(leader.siblings, e)
	}

	if e.enabled {
		k.snapshotEnergy(e)
	}
	e.fd = k.nextFD
	k.nextFD++
	k.fds[e.fd] = e
	if e.pid >= 0 {
		k.byPid[e.pid] = append(k.byPid[e.pid], e)
	} else {
		k.byCPU[e.cpu] = append(k.byCPU[e.cpu], e)
	}
	if e.kind.Energy() {
		k.energy = append(k.energy, e)
	}
	if k.m.UncoreByPerfType(e.pmuType) != nil {
		k.uncore = append(k.uncore, e)
	}
	return e.fd, nil
}

// capacityOf returns the simultaneous counter capacity of a PMU type.
func (k *Kernel) capacityOf(pmuType uint32) int {
	if t := k.m.TypeByPerfType(pmuType); t != nil {
		return t.PMU.NumGP + t.PMU.NumFixed
	}
	return 8 // RAPL and friends: effectively free-running counters
}

func (k *Kernel) snapshotEnergy(e *Event) {
	if e.kind.Energy() && k.pwr != nil {
		e.energyBase = k.energyValue(e.kind)
	}
}

func (k *Kernel) energyValue(kind events.Kind) float64 {
	unit := k.m.Power.EnergyUnitJ
	if unit <= 0 {
		unit = 1
	}
	var j float64
	switch kind {
	case events.KindEnergyPkg:
		j = k.pwr.EnergyJ(power.DomainPkg)
	case events.KindEnergyCores:
		j = k.pwr.EnergyJ(power.DomainCores)
	case events.KindEnergyRAM:
		j = k.pwr.EnergyJ(power.DomainRAM)
	case events.KindEnergyPsys:
		j = k.pwr.EnergyJ(power.DomainPsys)
	}
	return j / unit
}

// lookup returns the event for fd.
func (k *Kernel) lookup(fd int) (*Event, error) {
	e, ok := k.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: fd %d", ErrBadFD, fd)
	}
	return e, nil
}

// Enable starts counting (PERF_EVENT_IOC_ENABLE). Enabling a group leader
// enables its whole group, which is how callers start groups atomically.
func (k *Kernel) Enable(fd int) (err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("enable", time.Now(), &fd, &err)
	}
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return err
	}
	if err := checkAlive(e); err != nil {
		return err
	}
	for _, ev := range e.group() {
		if !ev.enabled {
			ev.enabled = true
			k.snapshotEnergy(ev)
		}
	}
	return nil
}

// Disable stops counting (PERF_EVENT_IOC_DISABLE), group-wide for leaders.
func (k *Kernel) Disable(fd int) (err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("disable", time.Now(), &fd, &err)
	}
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return err
	}
	if err := checkAlive(e); err != nil {
		return err
	}
	k.serviceEnergy(e)
	for _, ev := range e.group() {
		ev.enabled = false
	}
	return nil
}

// Reset zeroes the counter value (PERF_EVENT_IOC_RESET), group-wide for
// leaders. Times are not reset, matching the real ioctl.
func (k *Kernel) Reset(fd int) (err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("reset", time.Now(), &fd, &err)
	}
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return err
	}
	if err := checkAlive(e); err != nil {
		return err
	}
	for _, ev := range e.group() {
		ev.value = 0
		k.snapshotEnergy(ev)
	}
	return nil
}

// Read returns the event's count.
func (k *Kernel) Read(fd int) (c Count, err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("read", time.Now(), &fd, &err)
	}
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return Count{}, err
	}
	if err := checkAlive(e); err != nil {
		return Count{}, err
	}
	k.serviceEnergy(e)
	return Count{Value: uint64(e.value), TimeEnabled: e.timeEnabled, TimeRunning: e.timeRunning}, nil
}

// ReadUser reads a counter through the rdpmc fast path: no syscall is
// accounted. Like the real mechanism it only works for per-task hardware
// events (CPU-wide and energy events have no user-mappable counter page).
func (k *Kernel) ReadUser(fd int) (Count, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return Count{}, err
	}
	if err := checkAlive(e); err != nil {
		return Count{}, err
	}
	if e.pid < 0 || e.kind.Energy() {
		return Count{}, fmt.Errorf("%w: rdpmc requires a per-task hardware event", ErrInvalid)
	}
	return Count{Value: uint64(e.value), TimeEnabled: e.timeEnabled, TimeRunning: e.timeRunning}, nil
}

// ReadGroup returns the counts of a leader and all its siblings in one
// operation (PERF_FORMAT_GROUP): one syscall for the whole group.
func (k *Kernel) ReadGroup(fd int) (out []Count, err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("read-group", time.Now(), &fd, &err)
	}
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return nil, err
	}
	if err := checkAlive(e); err != nil {
		return nil, err
	}
	if e.leader != nil {
		return nil, fmt.Errorf("%w: fd %d is not a group leader", ErrInvalid, fd)
	}
	for _, ev := range e.group() {
		k.serviceEnergy(ev)
		out = append(out, Count{Value: uint64(ev.value), TimeEnabled: ev.timeEnabled, TimeRunning: ev.timeRunning})
	}
	return out, nil
}

// Close releases the event. Closing a leader promotes no one: siblings
// keep counting individually (mirroring the kernel's behaviour closely
// enough for our callers, which always close whole groups).
func (k *Kernel) Close(fd int) (err error) {
	k.syscalls++
	if k.tracer.Enabled() {
		defer k.traceSys("close", time.Now(), &fd, &err)
	}
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return err
	}
	if e.leader != nil {
		sib := e.leader.siblings[:0]
		for _, s := range e.leader.siblings {
			if s != e {
				sib = append(sib, s)
			}
		}
		e.leader.siblings = sib
	} else {
		for _, s := range e.siblings {
			s.leader = nil
		}
		e.siblings = nil
	}
	if e.pid >= 0 {
		k.byPid[e.pid] = removeEvent(k.byPid[e.pid], e)
		if len(k.byPid[e.pid]) == 0 {
			delete(k.byPid, e.pid)
		}
	} else {
		k.byCPU[e.cpu] = removeEvent(k.byCPU[e.cpu], e)
		if len(k.byCPU[e.cpu]) == 0 {
			delete(k.byCPU, e.cpu)
		}
	}
	if e.kind.Energy() {
		k.energy = removeEvent(k.energy, e)
	}
	if k.m.UncoreByPerfType(e.pmuType) != nil {
		k.uncore = removeEvent(k.uncore, e)
	}
	delete(k.fds, fd)
	return nil
}

func removeEvent(list []*Event, e *Event) []*Event {
	out := list[:0]
	for _, x := range list {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// serviceEnergy folds the RAPL accumulator into an energy event's value.
func (k *Kernel) serviceEnergy(e *Event) {
	if !e.kind.Energy() || k.pwr == nil || !e.enabled || e.dead {
		return
	}
	cur := k.energyValue(e.kind)
	e.value += cur - e.energyBase
	e.energyBase = cur
}

// TaskExec reports that task pid executed on cpu for dt seconds producing
// the given quantities. The kernel credits every enabled event attached to
// the task (or CPU-wide on that cpu) whose PMU matches the core's PMU type
// and which holds a counter under the current multiplex rotation.
func (k *Kernel) TaskExec(pid, cpu int, dt float64, st events.Stats) {
	coreType := k.m.TypeOf(cpu)
	// Uncore events are package-scope: they see memory traffic from every
	// core, whichever CPU they were nominally opened on.
	for _, e := range k.uncore {
		if e.enabled && !e.dead {
			e.value += e.scale * events.ValueOf(st, e.kind)
		}
	}
	matched := k.eventsFor(pid, cpu)
	if len(matched) == 0 {
		return
	}
	// Partition into groups per PMU type and apply multiplexing.
	running := k.scheduledSet(matched, coreType.PMU.PerfType)
	for _, e := range matched {
		if e.kind.Energy() || k.m.UncoreByPerfType(e.pmuType) != nil {
			continue
		}
		e.timeEnabled += dt
		if e.kind.Software() {
			e.timeRunning += dt
			switch e.kind {
			case events.KindSWCpuClock, events.KindSWTaskClock:
				e.value += dt * 1e9
			case events.KindSWPageFaults:
				// Minor faults scale with the first-touch footprint; model
				// them as a small fraction of memory activity.
				e.value += (st.Loads + st.Stores) * 2e-6
			}
			continue
		}
		if e.pmuType != coreType.PMU.PerfType {
			// Wrong core type: the counter stays scheduled out. Time
			// enabled accrues (the task is running), running does not.
			continue
		}
		delta := e.scale * events.ValueOf(st, e.kind)
		// The shadow oracle counts as if the event held a dedicated
		// counter, unaffected by rotation or watchdog reservations.
		e.shadow += delta
		if running != nil && !running[e] {
			continue // multiplexed out this rotation window
		}
		e.timeRunning += dt
		e.value += delta
		k.maybeSample(e, pid, cpu, delta)
	}
}

// eventsFor collects enabled events targeting pid (per-task) or cpu
// (CPU-wide), in fd order. The returned slice aliases a kernel scratch
// buffer and is only valid until the next call.
func (k *Kernel) eventsFor(pid, cpu int) []*Event {
	out := k.evScratch[:0]
	for _, e := range k.byPid[pid] {
		if e.enabled {
			out = append(out, e)
		}
	}
	for _, e := range k.byCPU[cpu] {
		if e.enabled && !e.dead {
			out = append(out, e)
		}
	}
	k.evScratch = out
	return out
}

// scheduledSet applies counter-capacity multiplexing: groups of the given
// PMU type are rotated through the available counters each mux interval.
// A nil result means every eligible event is scheduled — the common
// uncontended case, kept allocation-free because this runs once per task
// per tick.
func (k *Kernel) scheduledSet(evs []*Event, pmuType uint32) map[*Event]bool {
	demand := 0
	stalled := false
	blocked := k.cyclesBlocked(pmuType)
	for _, e := range evs {
		if e.pmuType != pmuType || e.kind.Energy() || e.kind.Software() {
			continue
		}
		if e.leader == nil {
			if blocked && groupHasCycles(e) {
				// The watchdog pins the fixed cycles counter; groups
				// schedule all-or-nothing, so any group containing a
				// cycles event stalls (time_running stops accruing).
				stalled = true
				continue
			}
			demand += e.hwGroupSize()
		}
	}
	cap := k.effectiveCapacity(pmuType)
	if demand <= cap && !stalled {
		return nil
	}
	var leaders []*Event
	for _, e := range evs {
		if e.pmuType != pmuType || e.kind.Energy() || e.kind.Software() {
			continue
		}
		if e.leader == nil && !(blocked && groupHasCycles(e)) {
			leaders = append(leaders, e)
		}
	}
	running := map[*Event]bool{}
	if demand <= cap {
		for _, l := range leaders {
			for _, e := range l.group() {
				running[e] = true
			}
		}
		return running
	}
	// Rotate the starting group by the current mux window.
	window := 0
	if k.muxTick > 0 {
		window = int(k.now / k.muxTick)
	}
	n := len(leaders)
	used := 0
	for i := 0; i < n; i++ {
		l := leaders[(window+i)%n]
		need := l.hwGroupSize()
		if used+need > cap {
			continue // greedy: skip groups that no longer fit
		}
		used += need
		for _, e := range l.group() {
			running[e] = true
		}
	}
	return running
}

// SchedIn implements the scheduler hook: pid starts running on cpu. It
// credits CPU-migration software events when the placement changed.
func (k *Kernel) SchedIn(pid, cpu int, now float64) {
	last, seen := k.lastCPU[pid]
	k.lastCPU[pid] = cpu
	if !seen || last == cpu {
		return
	}
	for _, e := range k.byPid[pid] {
		if e.enabled && e.kind == events.KindSWCpuMigrations {
			e.value++
		}
	}
}

// SchedOut implements the scheduler hook: pid stops running on cpu. It
// credits context-switch software events (nr_switches counts switch-outs).
func (k *Kernel) SchedOut(pid, cpu int, now float64) {
	for _, e := range k.byPid[pid] {
		if e.enabled && e.kind == events.KindSWContextSwitches {
			e.value++
		}
	}
}

// Advance moves the kernel clock (multiplex rotation reference) and
// services CPU-wide energy events' enabled time.
func (k *Kernel) Advance(now float64) {
	dt := now - k.now
	if dt < 0 {
		dt = 0
	}
	k.now = now
	k.pollFaults()
	for _, e := range k.energy {
		if !e.enabled || e.dead {
			continue
		}
		e.timeEnabled += dt
		e.timeRunning += dt
	}
	for _, e := range k.uncore {
		if !e.enabled || e.dead {
			continue
		}
		e.timeEnabled += dt
		e.timeRunning += dt
	}
}

// Now returns the kernel's notion of simulated time.
func (k *Kernel) Now() float64 { return k.now }

// NextDeadline returns the earliest time at or after now at which the
// kernel has a time-based obligation: the next multiplex rotation
// boundary while any countable core-PMU event is live (rotation windows
// are phase-locked to absolute time, so sampling-capable events are
// serviced on the same cadence — the kernel resolves overflow ETAs per
// execution slice within a window), or the next fault-plan trigger. It
// returns +Inf when the kernel has nothing scheduled, letting an
// event-driven caller advance freely between deadlines. Purely advisory:
// rotation and fault application still happen lazily in TaskExec,
// Advance and the syscall paths.
func (k *Kernel) NextDeadline(now float64) float64 {
	next := math.Inf(1)
	if k.muxTick > 0 {
		for _, e := range k.fds {
			if e.dead || !e.enabled || e.kind.Energy() || k.m.UncoreByPerfType(e.pmuType) != nil {
				continue
			}
			next = (math.Floor(now/k.muxTick) + 1) * k.muxTick
			break
		}
	}
	if at := k.faults.plan.NextAt(); at < next {
		if at < now {
			at = now
		}
		next = at
	}
	return next
}
