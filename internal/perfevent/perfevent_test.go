package perfevent

import (
	"errors"
	"math"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
)

// attrFor builds an Attr for pmuName::EVENT:UMASK on machine m.
func attrFor(t *testing.T, m *hw.Machine, pfmName, event, umask string) Attr {
	t.Helper()
	p := events.LookupPMU(pfmName)
	if p == nil {
		t.Fatalf("no PMU %q", pfmName)
	}
	d := p.Lookup(event)
	if d == nil {
		t.Fatalf("no event %s::%s", pfmName, event)
	}
	var bits uint64
	if umask != "" {
		u := d.Umask(umask)
		if u == nil {
			t.Fatalf("no umask %s on %s::%s", umask, pfmName, event)
		}
		bits = u.Bits
	} else if u := d.DefaultUmask(); u != nil {
		bits = u.Bits
	}
	var typ uint32
	for i := range m.Types {
		if m.Types[i].PfmName == pfmName {
			typ = m.Types[i].PMU.PerfType
		}
	}
	if typ == 0 {
		t.Fatalf("machine has no PMU %q", pfmName)
	}
	return Attr{Type: typ, Config: events.Encode(d.Code, bits)}
}

func execStats(instr float64) events.Stats {
	return events.Stats{
		Instructions: instr,
		Cycles:       instr / 2,
		Branches:     instr * 0.2,
		BranchMisses: instr * 0.01,
		LLCRefs:      instr * 0.001,
		LLCMisses:    instr * 0.0005,
	}
}

func TestTaskEventCounts(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	fd, err := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, execStats(1e6)) // cpu0 is a P-core
	c, err := k.Read(fd)
	if err != nil {
		t.Fatal(err)
	}
	if c.Value != 1e6 {
		t.Fatalf("count = %d, want 1e6", c.Value)
	}
	if c.TimeEnabled != 0.001 || c.TimeRunning != 0.001 {
		t.Fatalf("times = %g/%g, want 0.001/0.001", c.TimeEnabled, c.TimeRunning)
	}
}

func TestCoreTypeGating(t *testing.T) {
	// The heart of hybrid perf_event: a cpu_atom event does not count
	// while the task runs on a P-core, and vice versa; their sum covers
	// everything.
	m := hw.RaptorLake()
	k := NewKernel(m)
	pFD, _ := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	eFD, _ := k.Open(attrFor(t, m, "adl_grt", "INST_RETIRED", "ANY"), 100, -1, -1)

	k.TaskExec(100, 0, 0.001, execStats(800_000))  // P-core
	k.TaskExec(100, 16, 0.002, execStats(200_000)) // E-core

	p, _ := k.Read(pFD)
	e, _ := k.Read(eFD)
	if p.Value != 800_000 {
		t.Errorf("P count = %d, want 800000", p.Value)
	}
	if e.Value != 200_000 {
		t.Errorf("E count = %d, want 200000", e.Value)
	}
	if p.Value+e.Value != 1_000_000 {
		t.Errorf("sum = %d, want exactly 1e6", p.Value+e.Value)
	}
	// Enabled time accrues whenever the task runs; running time only on
	// the matching core type.
	if math.Abs(p.TimeEnabled-0.003) > 1e-12 || math.Abs(p.TimeRunning-0.001) > 1e-12 {
		t.Errorf("P times = %g/%g, want 0.003/0.001", p.TimeEnabled, p.TimeRunning)
	}
	if math.Abs(e.TimeEnabled-0.003) > 1e-12 || math.Abs(e.TimeRunning-0.002) > 1e-12 {
		t.Errorf("E times = %g/%g, want 0.003/0.002", e.TimeEnabled, e.TimeRunning)
	}
}

func TestCrossPMUGroupRejected(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	leader, err := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.Open(attrFor(t, m, "adl_grt", "INST_RETIRED", "ANY"), 100, -1, leader)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("cross-PMU sibling: err = %v, want ErrInvalid", err)
	}
	// Same-PMU sibling is fine.
	if _, err := k.Open(attrFor(t, m, "adl_glc", "CPU_CLK_UNHALTED", "THREAD"), 100, -1, leader); err != nil {
		t.Fatalf("same-PMU sibling: %v", err)
	}
}

func TestGroupEnableDisableReadGroup(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	a1 := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	a1.Disabled = true
	leader, _ := k.Open(a1, 100, -1, -1)
	a2 := attrFor(t, m, "adl_glc", "CPU_CLK_UNHALTED", "THREAD")
	a2.Disabled = true
	sib, _ := k.Open(a2, 100, -1, leader)

	// Disabled events do not count.
	k.TaskExec(100, 0, 0.001, execStats(1000))
	if c, _ := k.Read(leader); c.Value != 0 {
		t.Fatal("disabled event counted")
	}

	// Enabling the leader enables the whole group.
	if err := k.Enable(leader); err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, execStats(1000))
	counts, err := k.ReadGroup(leader)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("ReadGroup returned %d counts", len(counts))
	}
	if counts[0].Value != 1000 || counts[1].Value != 500 {
		t.Fatalf("group counts = %d/%d, want 1000/500", counts[0].Value, counts[1].Value)
	}
	// ReadGroup on a non-leader fails.
	if _, err := k.ReadGroup(sib); !errors.Is(err, ErrInvalid) {
		t.Fatalf("ReadGroup(sibling) err = %v", err)
	}
	// Disabling the leader stops the group.
	k.Disable(leader)
	k.TaskExec(100, 0, 0.001, execStats(1000))
	counts, _ = k.ReadGroup(leader)
	if counts[0].Value != 1000 {
		t.Fatal("disabled group kept counting")
	}
}

func TestOversizedGroupRejected(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	// E-core PMU: 6 GP + 3 fixed = 9 counters.
	leader, _ := k.Open(attrFor(t, m, "adl_grt", "INST_RETIRED", "ANY"), 100, -1, -1)
	added := 1
	var lastErr error
	for i := 0; i < 20; i++ {
		_, lastErr = k.Open(attrFor(t, m, "adl_grt", "BR_INST_RETIRED", "ALL_BRANCHES"), 100, -1, leader)
		if lastErr != nil {
			break
		}
		added++
	}
	if !errors.Is(lastErr, ErrInvalid) {
		t.Fatalf("oversized group: err = %v, want ErrInvalid", lastErr)
	}
	if added != 9 {
		t.Fatalf("group accepted %d events, want exactly 9 (6 GP + 3 fixed)", added)
	}
}

func TestMultiplexingScaling(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.SetMuxInterval(0.004)
	// Open 22 standalone events on the P PMU (capacity 11): they must
	// multiplex, and the scaled estimates should approximate the truth.
	var fds []int
	for i := 0; i < 22; i++ {
		fd, err := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	const ticks = 1000
	for i := 0; i < ticks; i++ {
		k.Advance(float64(i) * 0.001)
		k.TaskExec(100, 0, 0.001, execStats(1000))
	}
	truth := float64(ticks * 1000)
	for _, fd := range fds {
		c, _ := k.Read(fd)
		if c.TimeRunning >= c.TimeEnabled {
			t.Fatalf("fd %d: running %g !< enabled %g (should be multiplexed)",
				fd, c.TimeRunning, c.TimeEnabled)
		}
		scaled := float64(c.Scaled())
		if math.Abs(scaled-truth)/truth > 0.10 {
			t.Errorf("fd %d: scaled estimate %g off truth %g by >10%%", fd, scaled, truth)
		}
	}
}

func TestNoMultiplexWithinCapacity(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	var fds []int
	for i := 0; i < 11; i++ { // exactly the P PMU capacity
		fd, _ := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
		fds = append(fds, fd)
	}
	for i := 0; i < 100; i++ {
		k.Advance(float64(i) * 0.001)
		k.TaskExec(100, 0, 0.001, execStats(1000))
	}
	for _, fd := range fds {
		c, _ := k.Read(fd)
		if c.TimeRunning != c.TimeEnabled {
			t.Fatalf("within capacity, event %d multiplexed: %g != %g", fd, c.TimeRunning, c.TimeEnabled)
		}
		if c.Value != 100*1000 {
			t.Fatalf("fd %d value = %d", fd, c.Value)
		}
	}
}

func TestRAPLEvents(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	pwr := power.New(m.Power)
	k.AttachPower(pwr)

	raplAttr := Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0)} // ENERGY_PKG
	// Task-attached RAPL must be rejected.
	if _, err := k.Open(raplAttr, 100, -1, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("task RAPL: err = %v, want ErrInvalid", err)
	}
	fd, err := k.Open(raplAttr, -1, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	// 55 W cores for 2 s -> 65 W package -> 130 J.
	pwr.Step(55, 1)
	k.Advance(1)
	pwr.Step(55, 1)
	k.Advance(2)
	c, _ := k.Read(fd)
	gotJ := float64(c.Value) * m.Power.EnergyUnitJ
	if math.Abs(gotJ-130) > 0.1 {
		t.Fatalf("RAPL pkg energy = %g J, want 130", gotJ)
	}
	if math.Abs(c.TimeEnabled-2) > 1e-9 {
		t.Fatalf("RAPL time enabled = %g", c.TimeEnabled)
	}
	// Reset re-bases the counter.
	k.Reset(fd)
	pwr.Step(55, 1)
	c, _ = k.Read(fd)
	if got := float64(c.Value) * m.Power.EnergyUnitJ; math.Abs(got-65) > 0.1 {
		t.Fatalf("after reset, energy = %g J, want 65", got)
	}
}

func TestRAPLWithoutPowerSource(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	_, err := k.Open(Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0)}, -1, 0, -1)
	if !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("err = %v, want ErrNoSuchDevice", err)
	}
}

func TestGenericHardwareEvents(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	// Unextended: resolves against cpu0's PMU (cpu_core).
	plain, err := k.Open(Attr{Type: PerfTypeHardware, Config: events.HWInstructions}, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Extended with the E-core PMU type.
	extCfg := uint64(m.TypeByName("E-core").PMU.PerfType)<<HWConfigExtShift | events.HWInstructions
	ext, err := k.Open(Attr{Type: PerfTypeHardware, Config: extCfg}, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, execStats(700))
	k.TaskExec(100, 16, 0.001, execStats(300))
	p, _ := k.Read(plain)
	e, _ := k.Read(ext)
	if p.Value != 700 || e.Value != 300 {
		t.Fatalf("generic counts = %d/%d, want 700/300", p.Value, e.Value)
	}
	// Unknown generic id.
	if _, err := k.Open(Attr{Type: PerfTypeHardware, Config: 99}, 100, -1, -1); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("unknown generic: %v", err)
	}
	// Unknown extended PMU type.
	if _, err := k.Open(Attr{Type: PerfTypeHardware, Config: uint64(77)<<HWConfigExtShift | 1}, 100, -1, -1); !errors.Is(err, ErrNoSuchDevice) {
		t.Fatalf("unknown ext type: %v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	good := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	cases := []struct {
		name string
		fn   func() (int, error)
		want error
	}{
		{"no target", func() (int, error) { return k.Open(good, -1, -1, -1) }, ErrInvalid},
		{"both targets", func() (int, error) { return k.Open(good, 5, 3, -1) }, ErrInvalid},
		{"cpu out of range", func() (int, error) { return k.Open(good, -1, 99, -1) }, ErrInvalid},
		{"unknown pmu", func() (int, error) { return k.Open(Attr{Type: 77, Config: 1}, 100, -1, -1) }, ErrNoSuchDevice},
		{"unknown config", func() (int, error) { return k.Open(Attr{Type: 8, Config: 0xEEEE}, 100, -1, -1) }, ErrNotSupported},
		{"bad group fd", func() (int, error) { return k.Open(good, 100, -1, 999) }, ErrBadFD},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Sibling-of-sibling: the group fd must be a leader.
	leader, _ := k.Open(good, 100, -1, -1)
	sib, _ := k.Open(good, 100, -1, leader)
	if _, err := k.Open(good, 100, -1, sib); !errors.Is(err, ErrInvalid) {
		t.Errorf("sibling as group leader: %v", err)
	}
	// Target mismatch with leader.
	if _, err := k.Open(good, 200, -1, leader); !errors.Is(err, ErrInvalid) {
		t.Errorf("pid mismatch: %v", err)
	}
}

func TestFDLifecycle(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	good := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	fd, _ := k.Open(good, 100, -1, -1)
	if k.NumOpen() != 1 {
		t.Fatal("NumOpen != 1")
	}
	if err := k.Close(fd); err != nil {
		t.Fatal(err)
	}
	if k.NumOpen() != 0 {
		t.Fatal("NumOpen != 0 after close")
	}
	if _, err := k.Read(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read after close: %v", err)
	}
	if err := k.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close: %v", err)
	}
	for _, op := range []func(int) error{k.Enable, k.Disable, k.Reset} {
		if err := op(12345); !errors.Is(err, ErrBadFD) {
			t.Fatalf("op on bad fd: %v", err)
		}
	}
}

func TestCloseSiblingAndLeader(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	good := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	leader, _ := k.Open(good, 100, -1, -1)
	sib, _ := k.Open(good, 100, -1, leader)
	if err := k.Close(sib); err != nil {
		t.Fatal(err)
	}
	counts, err := k.ReadGroup(leader)
	if err != nil || len(counts) != 1 {
		t.Fatalf("after closing sibling: %v, %d counts", err, len(counts))
	}
	// Closing the leader orphans (but keeps) remaining siblings.
	sib2, _ := k.Open(good, 100, -1, leader)
	if err := k.Close(leader); err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, execStats(42))
	c, err := k.Read(sib2)
	if err != nil || c.Value != 42 {
		t.Fatalf("orphaned sibling: %v, value %d", err, c.Value)
	}
}

func TestCPUWideEvent(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	fd, err := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), -1, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, execStats(500)) // any pid on cpu0 counts
	k.TaskExec(200, 0, 0.001, execStats(300))
	k.TaskExec(100, 2, 0.001, execStats(999)) // other cpu: ignored
	c, _ := k.Read(fd)
	if c.Value != 800 {
		t.Fatalf("cpu-wide count = %d, want 800", c.Value)
	}
}

func TestScaledHelper(t *testing.T) {
	c := Count{Value: 500, TimeEnabled: 1.0, TimeRunning: 0.5}
	if c.Scaled() != 1000 {
		t.Fatalf("Scaled = %d", c.Scaled())
	}
	if (Count{Value: 5}).Scaled() != 0 {
		t.Fatal("zero running time must scale to 0")
	}
}

func TestSyscallAccounting(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	base := k.Syscalls()
	fd, _ := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	k.Enable(fd)
	k.Read(fd)
	k.Disable(fd)
	k.Close(fd)
	if got := k.Syscalls() - base; got != 5 {
		t.Fatalf("syscalls = %d, want 5", got)
	}
}

func TestEventScaleApplied(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	// BR_INST_RETIRED:COND counts a calibrated fraction (0.72) of branches.
	fd, _ := k.Open(attrFor(t, m, "adl_glc", "BR_INST_RETIRED", "COND"), 100, -1, -1)
	st := events.Stats{Branches: 1000}
	k.TaskExec(100, 0, 0.001, st)
	c, _ := k.Read(fd)
	if c.Value != 720 {
		t.Fatalf("COND branches = %d, want 720", c.Value)
	}
}
