package perfevent_test

import (
	"fmt"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
)

// Example demonstrates the hybrid kernel semantics of section IV.A: a
// cpu_core event counts only while the task executes on P-cores, so
// covering a migrating task takes one event per core type.
func Example() {
	m := hw.RaptorLake()
	k := perfevent.NewKernel(m)

	def := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
	pAttr := perfevent.Attr{Type: 8, Config: events.Encode(def.Code, def.DefaultUmask().Bits)}
	defE := events.LookupPMU("adl_grt").Lookup("INST_RETIRED")
	eAttr := perfevent.Attr{Type: 10, Config: events.Encode(defE.Code, defE.DefaultUmask().Bits)}

	pFD, _ := k.Open(pAttr, 42, -1, -1)
	eFD, _ := k.Open(eAttr, 42, -1, -1)

	// The task runs on a P-core, then migrates to an E-core.
	k.TaskExec(42, 0, 0.001, events.Stats{Instructions: 700000})
	k.TaskExec(42, 16, 0.002, events.Stats{Instructions: 300000})

	p, _ := k.Read(pFD)
	e, _ := k.Read(eFD)
	fmt.Printf("P-core event: %d (ran %.0f%% of enabled time)\n",
		p.Value, 100*p.TimeRunning/p.TimeEnabled)
	fmt.Printf("E-core event: %d (ran %.0f%% of enabled time)\n",
		e.Value, 100*e.TimeRunning/e.TimeEnabled)
	fmt.Println("sum:", p.Value+e.Value)
	// Output:
	// P-core event: 700000 (ran 33% of enabled time)
	// E-core event: 300000 (ran 67% of enabled time)
	// sum: 1000000
}

// Example_groupConstraint shows the constraint behind section IV.E: perf
// event groups cannot span hardware PMUs.
func Example_groupConstraint() {
	m := hw.RaptorLake()
	k := perfevent.NewKernel(m)
	def := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
	leader, _ := k.Open(perfevent.Attr{Type: 8, Config: events.Encode(def.Code, 1)}, 42, -1, -1)

	defE := events.LookupPMU("adl_grt").Lookup("INST_RETIRED")
	_, err := k.Open(perfevent.Attr{Type: 10, Config: events.Encode(defE.Code, 0)}, 42, -1, leader)
	fmt.Println("cross-PMU sibling rejected:", err != nil)
	// Output:
	// cross-PMU sibling rejected: true
}
