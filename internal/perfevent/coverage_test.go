package perfevent

import (
	"errors"
	"math"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
)

func TestEventAccessors(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	var e *Event
	for _, ev := range k.fds {
		e = ev
	}
	if e.FD() != fd {
		t.Errorf("FD = %d, want %d", e.FD(), fd)
	}
	if e.Kind() != events.KindInstructions {
		t.Errorf("Kind = %v", e.Kind())
	}
	if e.PMUType() != 8 {
		t.Errorf("PMUType = %d", e.PMUType())
	}
	if e.Name() != "INST_RETIRED:ANY" {
		t.Errorf("Name = %q", e.Name())
	}
	if k.Machine() != m {
		t.Error("Machine accessor broken")
	}
	if k.Now() != 0 {
		t.Errorf("Now = %g before Advance", k.Now())
	}
	k.Advance(1.5)
	if k.Now() != 1.5 {
		t.Errorf("Now = %g", k.Now())
	}
	// Advancing backwards clamps the delta, not the clock.
	k.Advance(1.0)
	if k.Now() != 1.0 {
		t.Errorf("Now after backward advance = %g", k.Now())
	}
}

func TestReadUserDirect(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.AttachPower(power.New(m.Power))
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	fd, _ := k.Open(attr, 100, -1, -1)
	k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 123})
	c, err := k.ReadUser(fd)
	if err != nil || c.Value != 123 {
		t.Fatalf("ReadUser = %+v, %v", c, err)
	}
	// rdpmc requires per-task hardware events.
	wide, _ := k.Open(attr, -1, 0, -1)
	if _, err := k.ReadUser(wide); !errors.Is(err, ErrInvalid) {
		t.Errorf("rdpmc on cpu-wide event: %v", err)
	}
	rapl, _ := k.Open(Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0)}, -1, 0, -1)
	if _, err := k.ReadUser(rapl); !errors.Is(err, ErrInvalid) {
		t.Errorf("rdpmc on rapl event: %v", err)
	}
	if _, err := k.ReadUser(12345); !errors.Is(err, ErrBadFD) {
		t.Errorf("rdpmc on bad fd: %v", err)
	}
}

func TestSchedHooksDirect(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	sw := events.LookupPMU("perf")
	ctxDef := sw.Lookup("CONTEXT_SWITCHES")
	migDef := sw.Lookup("CPU_MIGRATIONS")
	ctxFD, err := k.Open(Attr{Type: PerfTypeSoftware, Config: events.Encode(ctxDef.Code, 0)}, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	migFD, _ := k.Open(Attr{Type: PerfTypeSoftware, Config: events.Encode(migDef.Code, 0)}, 100, -1, -1)

	k.SchedIn(100, 0, 0.0)   // first placement: no migration
	k.SchedOut(100, 0, 0.01) // one switch
	k.SchedIn(100, 16, 0.01) // migration 0 -> 16
	k.SchedOut(100, 16, 0.02)
	k.SchedIn(100, 16, 0.02) // same cpu: no migration
	k.SchedIn(999, 3, 0.03)  // other pid: ignored

	ctx, _ := k.Read(ctxFD)
	mig, _ := k.Read(migFD)
	if ctx.Value != 2 {
		t.Errorf("context switches = %d, want 2", ctx.Value)
	}
	if mig.Value != 1 {
		t.Errorf("migrations = %d, want 1", mig.Value)
	}
	// Software events cannot be cpu-wide or sampled here.
	if _, err := k.Open(Attr{Type: PerfTypeSoftware, Config: events.Encode(ctxDef.Code, 0)}, -1, 0, -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("cpu-wide software event: %v", err)
	}
	if _, err := k.Open(Attr{Type: PerfTypeSoftware, Config: events.Encode(ctxDef.Code, 0), SamplePeriod: 10}, 100, -1, -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("sampled software event: %v", err)
	}
	if _, err := k.Open(Attr{Type: PerfTypeSoftware, Config: 0x99}, 100, -1, -1); !errors.Is(err, ErrNotSupported) {
		t.Errorf("unknown software id: %v", err)
	}
}

func TestSoftwareInHardwareGroup(t *testing.T) {
	// Real perf allows software siblings inside hardware groups, and they
	// do not consume hardware counters.
	m := hw.RaptorLake()
	k := NewKernel(m)
	hwAttr := attrFor(t, m, "adl_grt", "INST_RETIRED", "ANY")
	leader, err := k.Open(hwAttr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	sw := events.LookupPMU("perf").Lookup("TASK_CLOCK")
	if _, err := k.Open(Attr{Type: PerfTypeSoftware, Config: events.Encode(sw.Code, 0)}, 100, -1, leader); err != nil {
		t.Fatalf("software sibling in hardware group: %v", err)
	}
	// Fill the E-core group to capacity with hardware events: 9 total
	// hardware members still fit because the software sibling is free.
	for i := 0; i < 8; i++ {
		if _, err := k.Open(hwAttr, 100, -1, leader); err != nil {
			t.Fatalf("hardware sibling %d: %v", i, err)
		}
	}
	if _, err := k.Open(hwAttr, 100, -1, leader); !errors.Is(err, ErrInvalid) {
		t.Fatalf("10th hardware member must overflow the 9 counters: %v", err)
	}
	counts, err := k.ReadGroup(leader)
	if err != nil || len(counts) != 10 {
		t.Fatalf("group read: %d counts, %v", len(counts), err)
	}
}

func TestAllEnergyDomains(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	pwr := power.New(m.Power)
	k.AttachPower(pwr)
	var fds []int
	for _, cfg := range []uint64{0x01, 0x02, 0x03, 0x05} { // cores, pkg, ram, psys
		fd, err := k.Open(Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(cfg, 0)}, -1, 0, -1)
		if err != nil {
			t.Fatalf("domain %#x: %v", cfg, err)
		}
		fds = append(fds, fd)
	}
	pwr.Step(50, 2)
	k.Advance(2)
	unit := m.Power.EnergyUnitJ
	want := []float64{100, 120, 2 * (1.5 + 0.04*50), 0} // cores, pkg, ram; psys > pkg
	for i, fd := range fds[:3] {
		c, _ := k.Read(fd)
		got := float64(c.Value) * unit
		if math.Abs(got-want[i]) > 0.1 {
			t.Errorf("domain %d energy = %g J, want %g", i, got, want[i])
		}
	}
	psys, _ := k.Read(fds[3])
	pkg, _ := k.Read(fds[1])
	if psys.Value <= pkg.Value {
		t.Error("psys must exceed pkg")
	}
}

func TestGenericOnHomogeneous(t *testing.T) {
	m := hw.Homogeneous()
	k := NewKernel(m)
	fd, err := k.Open(Attr{Type: PerfTypeHardware, Config: events.HWCPUCycles}, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, events.Stats{Cycles: 555})
	c, _ := k.Read(fd)
	if c.Value != 555 {
		t.Errorf("generic cycles = %d", c.Value)
	}
}
