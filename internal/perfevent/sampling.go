package perfevent

// Statistical sampling support: an event opened with a sample period
// records an overflow sample every SamplePeriod increments, like
// perf_event's PERF_RECORD_SAMPLE stream. This is the measurement mode the
// paper contrasts with PAPI calipers — the perf tool "only supports
// gathering either aggregate (full-program) counts or else statistically
// sampled values". On hybrid machines sampling inherits the same per-PMU
// split as counting: a cpu_core-type sampled event only fires while the
// task runs on P-cores, so building a complete profile takes one sampled
// event per core type.

// Sample is one overflow record.
type Sample struct {
	// TimeSec is the simulated time of the overflow.
	TimeSec float64
	// PID and CPU locate the execution that crossed the period.
	PID int
	CPU int
	// PMUType is the sampling event's PMU.
	PMUType uint32
	// Value is the counter total at the overflow.
	Value uint64
	// Period is the configured sampling period.
	Period uint64

	// CoreType names the core type of CPU at overflow time — the
	// attribution axis of a hybrid profile. Always set by the kernel.
	CoreType string
	// Phase is the workload phase executing at overflow time, supplied by
	// the simulator through Kernel.OnSampleContext ("" when the task has
	// no phases or no context provider is installed).
	Phase string
	// FreqMHz is the CPU's DVFS frequency at overflow time, supplied by
	// the same context provider (0 when none is installed). Profilers use
	// it to convert cycle-weighted samples into busy time.
	FreqMHz float64
}

// sampleRingCap bounds the per-event sample buffer, mirroring the finite
// mmap ring of real perf_event: overflows beyond the cap are dropped and
// counted (PERF_RECORD_LOST).
const sampleRingCap = 65536

// MinSamplePeriod is the smallest accepted Attr.SamplePeriod. The real
// kernel throttles sampling through perf_event_max_sample_rate rather than
// a static floor, but the effect is the same: a tiny period against a fast
// counter is rejected before it can melt the machine. Here the hazard is
// literal — maybeSample loops once per overflow, so a period of 1 against
// a slice crediting millions of events would spin millions of iterations.
// Open rejects smaller periods with ErrInvalid.
const MinSamplePeriod = 1000

// sampleCtx resolves the per-overflow attribution context once per
// execution slice: the core type from the kernel's own topology, and the
// phase/frequency from the simulator's context provider when installed.
func (k *Kernel) sampleCtx(pid, cpu int) (coreType, phase string, freqMHz float64) {
	coreType = k.m.TypeOf(cpu).Name
	if k.OnSampleContext != nil {
		phase, freqMHz = k.OnSampleContext(pid, cpu)
	}
	return coreType, phase, freqMHz
}

// maybeSample emits overflow records for the value increment credited to a
// sampling event during an execution slice.
func (k *Kernel) maybeSample(e *Event, pid, cpu int, delta float64) {
	if e.samplePeriod == 0 || delta <= 0 {
		return
	}
	e.sampleAcc += delta
	period := float64(e.samplePeriod)
	ringCap := k.curRingCap()
	var coreType, phase string
	var freqMHz float64
	ctxDone := false
	for e.sampleAcc >= period {
		e.sampleAcc -= period
		if len(e.samples) >= ringCap {
			e.lostSamples++
			continue
		}
		if !ctxDone {
			// Resolve the context lazily and once: all overflows of one
			// slice share (pid, cpu, phase, freq).
			coreType, phase, freqMHz = k.sampleCtx(pid, cpu)
			ctxDone = true
		}
		e.samples = append(e.samples, Sample{
			TimeSec:  k.now,
			PID:      pid,
			CPU:      cpu,
			PMUType:  e.pmuType,
			Value:    uint64(e.value),
			Period:   e.samplePeriod,
			CoreType: coreType,
			Phase:    phase,
			FreqMHz:  freqMHz,
		})
	}
}

// curRingCap returns the ring capacity currently in effect.
func (k *Kernel) curRingCap() int {
	if k.faults.ringCap > 0 {
		return k.faults.ringCap
	}
	return sampleRingCap
}

// ReadSamples drains an event's sample buffer, returning the records and
// the number of samples lost to ring overflow since the last drain.
// Descriptors invalidated by CPU hotplug return ErrNoSuchDevice (per-task
// sampling events survive hotplug — they follow the task — so in practice
// this concerns only descriptors a caller mismanages).
//
// The returned slice normally hands over the ring's backing array (the
// kernel starts a fresh ring afterwards). When the ring capacity changed
// since the previous drain — a buffer-pressure fault shrank or restored
// the cap mid-stream — the drain returns an exactly-sized defensive copy
// instead, so no later kernel-side append can alias memory the caller
// already owns.
func (k *Kernel) ReadSamples(fd int) ([]Sample, uint64, error) {
	k.syscalls++
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return nil, 0, err
	}
	if err := checkAlive(e); err != nil {
		return nil, 0, err
	}
	out := e.samples
	lost := e.lostSamples
	cur := k.curRingCap()
	if e.drainRingCap != 0 && cur != e.drainRingCap && len(out) > 0 {
		out = append(make([]Sample, 0, len(out)), out...)
	}
	e.drainRingCap = cur
	// Ownership of the drained records transfers to the caller, so the
	// ring needs a fresh backing array — sized by the drain just taken,
	// which on a steady cadence is exactly next window's demand. Sizing
	// here turns the per-overflow append into a plain store instead of a
	// grow-copy sequence every window (the profiler's hot path).
	if n := len(out); n > 0 {
		if n > cur {
			n = cur
		}
		e.samples = make([]Sample, 0, n)
	} else {
		e.samples = nil
	}
	e.lostSamples = 0
	return out, lost, nil
}
