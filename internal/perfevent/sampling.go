package perfevent

// Statistical sampling support: an event opened with a sample period
// records an overflow sample every SamplePeriod increments, like
// perf_event's PERF_RECORD_SAMPLE stream. This is the measurement mode the
// paper contrasts with PAPI calipers — the perf tool "only supports
// gathering either aggregate (full-program) counts or else statistically
// sampled values". On hybrid machines sampling inherits the same per-PMU
// split as counting: a cpu_core-type sampled event only fires while the
// task runs on P-cores, so building a complete profile takes one sampled
// event per core type.

// Sample is one overflow record.
type Sample struct {
	// TimeSec is the simulated time of the overflow.
	TimeSec float64
	// PID and CPU locate the execution that crossed the period.
	PID int
	CPU int
	// PMUType is the sampling event's PMU.
	PMUType uint32
	// Value is the counter total at the overflow.
	Value uint64
	// Period is the configured sampling period.
	Period uint64
}

// sampleRingCap bounds the per-event sample buffer, mirroring the finite
// mmap ring of real perf_event: overflows beyond the cap are dropped and
// counted (PERF_RECORD_LOST).
const sampleRingCap = 65536

// maybeSample emits overflow records for the value increment credited to a
// sampling event during an execution slice.
func (k *Kernel) maybeSample(e *Event, pid, cpu int, delta float64) {
	if e.samplePeriod == 0 || delta <= 0 {
		return
	}
	e.sampleAcc += delta
	period := float64(e.samplePeriod)
	ringCap := sampleRingCap
	if k.faults.ringCap > 0 {
		ringCap = k.faults.ringCap
	}
	for e.sampleAcc >= period {
		e.sampleAcc -= period
		if len(e.samples) >= ringCap {
			e.lostSamples++
			continue
		}
		e.samples = append(e.samples, Sample{
			TimeSec: k.now,
			PID:     pid,
			CPU:     cpu,
			PMUType: e.pmuType,
			Value:   uint64(e.value),
			Period:  e.samplePeriod,
		})
	}
}

// ReadSamples drains an event's sample buffer, returning the records and
// the number of samples lost to ring overflow since the last drain.
func (k *Kernel) ReadSamples(fd int) ([]Sample, uint64, error) {
	k.syscalls++
	k.pollFaults()
	e, err := k.lookup(fd)
	if err != nil {
		return nil, 0, err
	}
	out := e.samples
	lost := e.lostSamples
	e.samples = nil
	e.lostSamples = 0
	return out, lost, nil
}
