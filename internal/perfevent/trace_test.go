package perfevent

// Tests for the kernel's span-trace instrumentation: one sys.* instant
// per syscall-shaped entry point with the errno spelling and service
// time, one fault.* instant per effective fault transition (through
// both the setter door and the plan door), and nothing at all once the
// recorder is detached or disabled.

import (
	"errors"
	"fmt"
	"testing"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/spantrace"
)

// tracedKernel returns a RaptorLake kernel with an enabled recorder
// attached.
func tracedKernel(t *testing.T) (*Kernel, *spantrace.Recorder) {
	t.Helper()
	m := hw.RaptorLake()
	k := NewKernel(m)
	rec := spantrace.New(spantrace.Config{TrackCapacity: 1024})
	rec.Enable()
	k.SetTracer(rec)
	return k, rec
}

// eventsOn returns the events on the named track, in snapshot order.
func eventsOn(snap *spantrace.Snapshot, track string) []spantrace.Event {
	var out []spantrace.Event
	for _, ev := range snap.Events {
		if snap.TrackNames[ev.Track] == track {
			out = append(out, ev)
		}
	}
	return out
}

func argStr(ev spantrace.Event, key string) (string, bool) {
	for _, a := range ev.Args {
		if a.Key == key && !a.IsNum {
			return a.SVal, true
		}
	}
	return "", false
}

func argNum(ev spantrace.Event, key string) (float64, bool) {
	for _, a := range ev.Args {
		if a.Key == key && a.IsNum {
			return a.FVal, true
		}
	}
	return 0, false
}

func TestErrnoName(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{ErrInvalid, "EINVAL"},
		{ErrNoSuchDevice, "ENODEV"},
		{ErrNotSupported, "ENOENT"},
		{ErrBadFD, "EBADF"},
		{ErrNoSpace, "ENOSPC"},
		{ErrBusy, "EBUSY"},
		{fmt.Errorf("group: %w", ErrBusy), "EBUSY"}, // wrapped errors unwrap
		{errors.New("unmapped"), "EIO"},
	}
	for _, tc := range cases {
		if got := ErrnoName(tc.err); got != tc.want {
			t.Errorf("ErrnoName(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestSyscallTraceInstants drives one full descriptor lifecycle plus a
// failing op and checks the kernel track records each entry point with
// its fd, errno name and a plausible service time.
func TestSyscallTraceInstants(t *testing.T) {
	k, rec := tracedKernel(t)
	attr := instrAttr(t, k.m, "adl_glc")

	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		op  string
		err error
	}{
		{"enable", k.Enable(fd)},
		{"read", func() error { _, e := k.Read(fd); return e }()},
		{"read-group", func() error { _, e := k.ReadGroup(fd); return e }()},
		{"reset", k.Reset(fd)},
		{"disable", k.Disable(fd)},
		{"close", k.Close(fd)},
	}
	for _, s := range steps {
		if s.err != nil {
			t.Fatalf("%s: %v", s.op, s.err)
		}
	}
	// One failing op, to pin the errno annotation.
	if _, err := k.Read(9999); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read on bogus fd: %v, want ErrBadFD", err)
	}

	got := eventsOn(rec.Snapshot(), "kernel")
	wantNames := []string{
		"sys.open", "sys.enable", "sys.read", "sys.read-group",
		"sys.reset", "sys.disable", "sys.close", "sys.read",
	}
	if len(got) != len(wantNames) {
		t.Fatalf("kernel track has %d events, want %d: %+v", len(got), len(wantNames), got)
	}
	for i, ev := range got {
		if ev.Name != wantNames[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, wantNames[i])
		}
		if ev.Cat != "syscall" {
			t.Fatalf("event %q cat = %q, want syscall", ev.Name, ev.Cat)
		}
		wantErr := "ok"
		if i == len(got)-1 {
			wantErr = "EBADF"
		}
		if e, _ := argStr(ev, "err"); e != wantErr {
			t.Fatalf("event %d (%s) err = %q, want %q", i, ev.Name, e, wantErr)
		}
		if ns, ok := argNum(ev, "wall_ns"); !ok || ns < 0 {
			t.Fatalf("event %q wall_ns = %v ok=%v", ev.Name, ns, ok)
		}
	}
	// The successful ops all annotate the same fd.
	if v, _ := argNum(got[0], "fd"); int(v) != fd {
		t.Fatalf("sys.open fd = %v, want %d", v, fd)
	}
	// The rdpmc fast path must stay silent: no kernel entry, no instant.
	before := len(eventsOn(rec.Snapshot(), "kernel"))
	fd2, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadUser(fd2); err != nil {
		t.Fatal(err)
	}
	after := len(eventsOn(rec.Snapshot(), "kernel"))
	if after != before+1 { // just the sys.open
		t.Fatalf("ReadUser emitted %d extra events, want 0", after-before-1)
	}
}

// TestSetTracerDetach pins that detaching the recorder silences every
// site without disturbing the kernel.
func TestSetTracerDetach(t *testing.T) {
	k, rec := tracedKernel(t)
	k.SetTracer(nil)
	if _, err := k.Open(instrAttr(t, k.m, "adl_glc"), 100, -1, -1); err != nil {
		t.Fatal(err)
	}
	k.SetWatchdog(glcType(k.m), true)
	snap := rec.Snapshot()
	if len(snap.Events) != 0 {
		t.Fatalf("detached recorder captured %d events: %+v", len(snap.Events), snap.Events)
	}
}

// TestFaultSetterInstants checks every direct fault setter emits one
// instant per effective transition and stays silent on no-ops.
func TestFaultSetterInstants(t *testing.T) {
	k, rec := tracedKernel(t)
	pmu := glcType(k.m)

	k.SetWatchdog(pmu, true)
	k.SetWatchdog(pmu, true) // no state change, no event
	k.SetWatchdog(pmu, false)

	k.SetCounterBudget(pmu, 2)
	k.SetCounterBudget(pmu, 2) // no change
	k.SetCounterBudget(pmu, 0) // restore

	k.SetSampleRingCap(16)
	k.SetSampleRingCap(16) // no change
	k.SetSampleRingCap(-1) // clamped to 0 = restore

	k.SetCPUOnline(1, false)
	k.SetCPUOnline(1, false) // no change
	k.SetCPUOnline(1, true)
	k.SetCPUOnline(999, false) // out of range: ignored entirely

	want := []string{
		"fault.watchdog-hold", "fault.watchdog-release",
		"fault.counter-budget", "fault.counter-budget",
		"fault.ring-cap", "fault.ring-cap",
		"fault.hotplug-off", "fault.hotplug-on",
	}
	got := eventsOn(rec.Snapshot(), "faults")
	if len(got) != len(want) {
		t.Fatalf("faults track has %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, ev := range got {
		if ev.Name != want[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, want[i])
		}
		if ev.Cat != "fault" {
			t.Fatalf("event %q cat = %q, want fault", ev.Name, ev.Cat)
		}
	}
	if cpu, _ := argNum(got[6], "cpu"); int(cpu) != 1 {
		t.Fatalf("hotplug-off cpu = %v, want 1", cpu)
	}
}

// TestOnlineCPUs pins the hotplug bookkeeping the trace rides on.
func TestOnlineCPUs(t *testing.T) {
	k, _ := tracedKernel(t)
	all := k.m.NumCPUs()
	if got := k.OnlineCPUs(); len(got) != all {
		t.Fatalf("OnlineCPUs = %d CPUs, want %d", len(got), all)
	}
	k.SetCPUOnline(3, false)
	got := k.OnlineCPUs()
	if len(got) != all-1 {
		t.Fatalf("after offlining cpu3: %d CPUs, want %d", len(got), all-1)
	}
	for _, c := range got {
		if c == 3 {
			t.Fatal("cpu3 still listed online")
		}
	}
	if k.IsOnline(3) {
		t.Fatal("IsOnline(3) = true after offline")
	}
	k.SetCPUOnline(3, true)
	if got := k.OnlineCPUs(); len(got) != all || !k.IsOnline(3) {
		t.Fatalf("after re-onlining: %d CPUs, IsOnline=%v", len(got), k.IsOnline(3))
	}
}

// TestFaultPlanTrace drives transitions through the plan door and
// checks each applied event emits a fault.plan instant ahead of the
// effective-state instant.
func TestFaultPlanTrace(t *testing.T) {
	k, rec := tracedKernel(t)
	pmu := glcType(k.m)
	k.AttachFaults(faults.NewPlan(
		faults.Event{AtSec: 0.5, Kind: faults.KindWatchdogHold, PMU: pmu},
		faults.Event{AtSec: 1.0, Kind: faults.KindWatchdogRelease, PMU: pmu},
		faults.Event{AtSec: 1.5, Kind: faults.KindRingCap, Cap: 8},
		faults.Event{AtSec: 2.0, Kind: faults.KindCounterBudget, PMU: pmu, Cap: 3},
		faults.Event{AtSec: 2.5, Kind: faults.KindHotplugOff, CPU: 2},
		faults.Event{AtSec: 3.0, Kind: faults.KindHotplugOn, CPU: 2},
	))
	for _, now := range []float64{0.6, 1.1, 1.6, 2.1, 2.6, 3.1} {
		k.Advance(now)
	}
	got := eventsOn(rec.Snapshot(), "faults")
	want := []string{
		"fault.plan", "fault.watchdog-hold",
		"fault.plan", "fault.watchdog-release",
		"fault.plan", "fault.ring-cap",
		"fault.plan", "fault.counter-budget",
		"fault.plan", "fault.hotplug-off",
		"fault.plan", "fault.hotplug-on",
	}
	if len(got) != len(want) {
		t.Fatalf("faults track has %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, ev := range got {
		if ev.Name != want[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, want[i])
		}
	}
}
