package perfevent

import (
	"errors"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
)

func TestSamplingEmitsEveryPeriod(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 1000
	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 slices of 550 instructions = 5500 total -> 5 overflows.
	for i := 0; i < 10; i++ {
		k.Advance(float64(i) * 0.001)
		k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 550})
	}
	samples, lost, err := k.ReadSamples(fd)
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("lost = %d", lost)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for i, s := range samples {
		if s.PID != 100 || s.CPU != 0 || s.Period != 1000 {
			t.Fatalf("sample %d = %+v", i, s)
		}
		if i > 0 && s.TimeSec < samples[i-1].TimeSec {
			t.Fatal("samples out of order")
		}
	}
	// Drain empties the ring.
	samples, _, _ = k.ReadSamples(fd)
	if len(samples) != 0 {
		t.Fatal("ring not drained")
	}
}

func TestSamplingGatedByCoreType(t *testing.T) {
	// A sampled cpu_core event must not fire while the task runs on an
	// E-core: hybrid profiles need one sampled event per PMU.
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 100
	fd, _ := k.Open(attr, 100, -1, -1)
	k.TaskExec(100, 16, 0.001, events.Stats{Instructions: 10_000}) // E-core
	samples, _, _ := k.ReadSamples(fd)
	if len(samples) != 0 {
		t.Fatalf("P-PMU event sampled on an E-core: %d records", len(samples))
	}
	k.TaskExec(100, 2, 0.001, events.Stats{Instructions: 1000}) // P-core
	samples, _, _ = k.ReadSamples(fd)
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	if samples[0].CPU != 2 {
		t.Fatalf("sample CPU = %d", samples[0].CPU)
	}
}

func TestSamplingRingOverflow(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 1
	fd, _ := k.Open(attr, 100, -1, -1)
	// One slice crediting double the ring capacity.
	k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 2 * sampleRingCap})
	samples, lost, _ := k.ReadSamples(fd)
	if len(samples) != sampleRingCap {
		t.Fatalf("ring held %d, want %d", len(samples), sampleRingCap)
	}
	if lost != sampleRingCap {
		t.Fatalf("lost = %d, want %d", lost, sampleRingCap)
	}
}

func TestSamplingInvalidTargets(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.AttachPower(power.New(m.Power))
	// CPU-wide sampling rejected.
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 100
	if _, err := k.Open(attr, -1, 0, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("cpu-wide sampling: %v", err)
	}
	// RAPL sampling rejected.
	pwrAttr := Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0), SamplePeriod: 100}
	if _, err := k.Open(pwrAttr, -1, 0, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("rapl sampling: %v", err)
	}
	// ReadSamples on a bad fd.
	if _, _, err := k.ReadSamples(999); !errors.Is(err, ErrBadFD) {
		t.Fatalf("bad fd: %v", err)
	}
}

func TestNonSamplingEventEmitsNothing(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	fd, _ := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 1e9})
	samples, lost, err := k.ReadSamples(fd)
	if err != nil || len(samples) != 0 || lost != 0 {
		t.Fatalf("counting event produced samples: %d/%d/%v", len(samples), lost, err)
	}
}
