package perfevent

import (
	"errors"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
)

func TestSamplingEmitsEveryPeriod(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 1000
	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 slices of 550 instructions = 5500 total -> 5 overflows.
	for i := 0; i < 10; i++ {
		k.Advance(float64(i) * 0.001)
		k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 550})
	}
	samples, lost, err := k.ReadSamples(fd)
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("lost = %d", lost)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for i, s := range samples {
		if s.PID != 100 || s.CPU != 0 || s.Period != 1000 {
			t.Fatalf("sample %d = %+v", i, s)
		}
		if i > 0 && s.TimeSec < samples[i-1].TimeSec {
			t.Fatal("samples out of order")
		}
	}
	// Drain empties the ring.
	samples, _, _ = k.ReadSamples(fd)
	if len(samples) != 0 {
		t.Fatal("ring not drained")
	}
}

func TestSamplingGatedByCoreType(t *testing.T) {
	// A sampled cpu_core event must not fire while the task runs on an
	// E-core: hybrid profiles need one sampled event per PMU.
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 1000
	fd, _ := k.Open(attr, 100, -1, -1)
	k.TaskExec(100, 16, 0.001, events.Stats{Instructions: 100_000}) // E-core
	samples, _, _ := k.ReadSamples(fd)
	if len(samples) != 0 {
		t.Fatalf("P-PMU event sampled on an E-core: %d records", len(samples))
	}
	k.TaskExec(100, 2, 0.001, events.Stats{Instructions: 10_000}) // P-core
	samples, _, _ = k.ReadSamples(fd)
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	if samples[0].CPU != 2 {
		t.Fatalf("sample CPU = %d", samples[0].CPU)
	}
}

func TestSamplingRingOverflow(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = MinSamplePeriod
	fd, _ := k.Open(attr, 100, -1, -1)
	// Shrink the ring so a single slice overflows it: 64 overflows into a
	// 32-slot ring keeps 32 and loses 32.
	k.SetSampleRingCap(32)
	k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 64 * MinSamplePeriod})
	samples, lost, _ := k.ReadSamples(fd)
	if len(samples) != 32 {
		t.Fatalf("ring held %d, want 32", len(samples))
	}
	if lost != 32 {
		t.Fatalf("lost = %d, want 32", lost)
	}
}

func TestSamplingMinPeriodEnforced(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = MinSamplePeriod - 1
	if _, err := k.Open(attr, 100, -1, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("period below floor accepted: %v", err)
	}
	attr.SamplePeriod = MinSamplePeriod
	if _, err := k.Open(attr, 100, -1, -1); err != nil {
		t.Fatalf("period at floor rejected: %v", err)
	}
}

func TestReadSamplesDefensiveCopyOnCapChange(t *testing.T) {
	// When the ring cap changes between drains (a buffer-pressure fault
	// shrank or restored it), the drain must hand back a copy so later
	// kernel-side appends cannot alias the caller's slice.
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = MinSamplePeriod
	fd, _ := k.Open(attr, 100, -1, -1)

	exec := func(overflows int) {
		k.TaskExec(100, 0, 0.001, events.Stats{Instructions: float64(overflows) * MinSamplePeriod})
	}

	exec(4)
	first, _, err := k.ReadSamples(fd)
	if err != nil || len(first) != 4 {
		t.Fatalf("first drain: %d samples, err %v", len(first), err)
	}

	// Shrink the cap mid-stream; the next drain crosses a cap boundary.
	k.SetSampleRingCap(8)
	exec(3)
	second, _, err := k.ReadSamples(fd)
	if err != nil || len(second) != 3 {
		t.Fatalf("second drain: %d samples, err %v", len(second), err)
	}
	if cap(second) != len(second) {
		t.Fatalf("cap-change drain not exactly sized: len %d cap %d", len(second), cap(second))
	}
	snapshot := append([]Sample(nil), second...)

	// New overflows appended after the drain must not mutate the slice the
	// caller already holds.
	exec(5)
	for i := range second {
		if second[i] != snapshot[i] {
			t.Fatalf("drained sample %d mutated by later append", i)
		}
	}

	// A steady cap drains without copying again (backing array handover).
	exec(2)
	third, _, err := k.ReadSamples(fd)
	if err != nil || len(third) != 5+2 {
		t.Fatalf("third drain: %d samples, err %v", len(third), err)
	}
}

func TestSamplingInvalidTargets(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	k.AttachPower(power.New(m.Power))
	// CPU-wide sampling rejected.
	attr := attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY")
	attr.SamplePeriod = 1000
	if _, err := k.Open(attr, -1, 0, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("cpu-wide sampling: %v", err)
	}
	// RAPL sampling rejected.
	pwrAttr := Attr{Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0), SamplePeriod: 1000}
	if _, err := k.Open(pwrAttr, -1, 0, -1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("rapl sampling: %v", err)
	}
	// ReadSamples on a bad fd.
	if _, _, err := k.ReadSamples(999); !errors.Is(err, ErrBadFD) {
		t.Fatalf("bad fd: %v", err)
	}
}

func TestNonSamplingEventEmitsNothing(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	fd, _ := k.Open(attrFor(t, m, "adl_glc", "INST_RETIRED", "ANY"), 100, -1, -1)
	k.TaskExec(100, 0, 0.001, events.Stats{Instructions: 1e9})
	samples, lost, err := k.ReadSamples(fd)
	if err != nil || len(samples) != 0 || lost != 0 {
		t.Fatalf("counting event produced samples: %d/%d/%v", len(samples), lost, err)
	}
}

// TestSamplingContextProvider covers the OnSampleContext hook: when the
// simulator installs a context provider, every overflow record carries
// the provider's phase and frequency alongside the kernel's own
// core-type attribution.
func TestSamplingContextProvider(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	var askedPID, askedCPU int
	k.OnSampleContext = func(pid, cpu int) (string, float64) {
		askedPID, askedCPU = pid, cpu
		return "solve", 4200
	}
	attr := instrAttr(t, m, "adl_glc")
	attr.SamplePeriod = MinSamplePeriod
	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 2, 0.001, execStats(3*MinSamplePeriod))
	samples, _, err := k.ReadSamples(fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if askedPID != 100 || askedCPU != 2 {
		t.Fatalf("provider asked about (%d, %d), want (100, 2)", askedPID, askedCPU)
	}
	for _, s := range samples {
		if s.Phase != "solve" || s.FreqMHz != 4200 {
			t.Fatalf("sample context %q/%g, want solve/4200", s.Phase, s.FreqMHz)
		}
		if s.CoreType != "P-core" || s.CPU != 2 {
			t.Fatalf("sample attribution %+v", s)
		}
	}
}

// TestSamplingRingShrinkMidStream covers a buffer-pressure shrink landing
// between fills: samples already buffered beyond the new cap still drain
// in full (the kernel never discards retained records retroactively),
// while the next window enforces the shrunken cap.
func TestSamplingRingShrinkMidStream(t *testing.T) {
	m := hw.RaptorLake()
	k := NewKernel(m)
	attr := instrAttr(t, m, "adl_glc")
	attr.SamplePeriod = MinSamplePeriod
	fd, err := k.Open(attr, 100, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	k.TaskExec(100, 0, 0.001, execStats(5*MinSamplePeriod))
	k.SetSampleRingCap(2)
	samples, lost, err := k.ReadSamples(fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 || lost != 0 {
		t.Fatalf("pre-shrink records: %d retained %d lost, want 5/0", len(samples), lost)
	}
	// The next window runs under the shrunken cap: 4 overflows, 2 kept.
	k.TaskExec(100, 0, 0.001, execStats(4*MinSamplePeriod))
	samples, lost, err = k.ReadSamples(fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || lost != 2 {
		t.Fatalf("post-shrink window: %d retained %d lost, want 2/2", len(samples), lost)
	}
}
