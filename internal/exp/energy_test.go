package exp

import (
	"strings"
	"testing"
)

func TestEnergyTableShape(t *testing.T) {
	res, err := EnergyTable(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Gflops <= 0 || row.EnergyKJ <= 0 || row.GflopsPerWatt <= 0 {
			t.Fatalf("incomplete row: %+v", row)
		}
		// Desktop CPUs land in the single-digit Gflops/W range.
		if row.GflopsPerWatt < 0.5 || row.GflopsPerWatt > 30 {
			t.Errorf("%s/%s efficiency %.2f Gflops/W implausible", row.Cores, row.Variant, row.GflopsPerWatt)
		}
	}
	// The hybrid-aware build on all cores is the most energy-efficient
	// configuration — the point of heterogeneous processors. It must beat
	// the hybrid-oblivious build on the same cores and the P-only run.
	intelAll := res.Row(PAndE, "Intel HPL")
	oblasAll := res.Row(PAndE, "OpenBLAS HPL")
	intelP := res.Row(POnly, "Intel HPL")
	if intelAll == nil || oblasAll == nil || intelP == nil {
		t.Fatal("missing cells")
	}
	if intelAll.GflopsPerWatt <= oblasAll.GflopsPerWatt {
		t.Errorf("Intel all-core %.2f Gflops/W !> OpenBLAS all-core %.2f",
			intelAll.GflopsPerWatt, oblasAll.GflopsPerWatt)
	}
	if intelAll.GflopsPerWatt <= intelP.GflopsPerWatt {
		t.Errorf("Intel all-core %.2f Gflops/W !> Intel P-only %.2f (E-cores should raise efficiency)",
			intelAll.GflopsPerWatt, intelP.GflopsPerWatt)
	}
	// OpenBLAS all-core burns more energy to solution than OpenBLAS P-only
	// (slower AND all cores powered).
	oblasP := res.Row(POnly, "OpenBLAS HPL")
	if oblasAll.EnergyKJ <= oblasP.EnergyKJ {
		t.Errorf("OpenBLAS all-core energy %.0f kJ !> P-only %.0f kJ", oblasAll.EnergyKJ, oblasP.EnergyKJ)
	}
	if res.Row("nope", "x") != nil {
		t.Error("unknown cell must be nil")
	}
	if !strings.Contains(res.String(), "Gflops/W") {
		t.Error("rendering broken")
	}
}
