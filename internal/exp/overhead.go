package exp

import (
	"fmt"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// OverheadCase measures the syscall-equivalent cost of EventSet operations
// for one configuration — the quantity section V.5 flags: the multi-group
// indirection adds per-group syscalls to start, stop and read.
type OverheadCase struct {
	// Name describes the configuration.
	Name string
	// Events is the number of user-visible events in the set.
	Events int
	// Groups is the number of perf event groups backing the set.
	Groups int
	// StartSyscalls, ReadSyscalls, StopSyscalls count syscall-equivalents
	// per operation.
	StartSyscalls int
	ReadSyscalls  int
	StopSyscalls  int
	// FastReadSyscalls counts the rdpmc path (0 when all events support
	// user-space reads).
	FastReadSyscalls int
}

// OverheadResult compares measurement overhead across EventSet shapes.
type OverheadResult struct {
	Cases []OverheadCase
}

// Overhead regenerates the overhead comparison: single-PMU sets (the
// pre-patch world), multi-PMU sets (the new hybrid support), and
// multiplexed sets.
func Overhead(cfg Config) (OverheadResult, error) {
	var res OverheadResult
	cases := []struct {
		name      string
		names     []string
		multiplex bool
	}{
		{
			name:  "single PMU, 2 events",
			names: []string{"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD"},
		},
		{
			name: "multi PMU (hybrid), 4 events",
			names: []string{
				"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
				"adl_grt::INST_RETIRED:ANY", "adl_grt::CPU_CLK_UNHALTED:CORE",
			},
		},
		{
			name: "multi PMU + RAPL, 5 events",
			names: []string{
				"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
				"adl_grt::INST_RETIRED:ANY", "adl_grt::CPU_CLK_UNHALTED:CORE",
				"rapl::ENERGY_PKG",
			},
		},
		{
			name: "multiplexed, 14 events",
			names: []string{
				"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
				"adl_glc::BR_INST_RETIRED:ALL_BRANCHES", "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
				"adl_glc::LONGEST_LAT_CACHE:REFERENCE", "adl_glc::LONGEST_LAT_CACHE:MISS",
				"adl_glc::MEM_INST_RETIRED:ALL_LOADS", "adl_glc::MEM_INST_RETIRED:ALL_STORES",
				"adl_glc::CYCLE_ACTIVITY:STALLS_TOTAL", "adl_glc::UOPS_RETIRED:SLOTS",
				"adl_glc::TOPDOWN:SLOTS", "adl_glc::DTLB_LOAD_MISSES:WALK_COMPLETED",
				"adl_glc::RESOURCE_STALLS:ANY", "adl_glc::INST_RETIRED:NOP",
			},
			multiplex: true,
		},
	}

	for _, tc := range cases {
		s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
		l, err := core.Init(s, core.Options{})
		if err != nil {
			return res, err
		}
		spin := workload.NewSpin("w", 1e9)
		p := s.Spawn(spin, hw.NewCPUSet(0))
		es := l.CreateEventSet()
		if err := es.Attach(p.PID); err != nil {
			return res, err
		}
		if tc.multiplex {
			if err := es.SetMultiplex(); err != nil {
				return res, err
			}
		}
		for _, n := range tc.names {
			if err := es.AddNamed(n); err != nil {
				return res, fmt.Errorf("exp: overhead case %q: %v", tc.name, err)
			}
		}
		k := s.Kernel

		before := k.Syscalls()
		if err := es.Start(); err != nil {
			return res, err
		}
		startCost := k.Syscalls() - before
		s.RunFor(0.1)

		before = k.Syscalls()
		if _, err := es.Read(); err != nil {
			return res, err
		}
		readCost := k.Syscalls() - before

		before = k.Syscalls()
		if _, err := es.ReadFast(); err != nil {
			return res, err
		}
		fastCost := k.Syscalls() - before

		before = k.Syscalls()
		if _, err := es.Stop(); err != nil {
			return res, err
		}
		stopCost := k.Syscalls() - before

		res.Cases = append(res.Cases, OverheadCase{
			Name:             tc.name,
			Events:           es.NumEvents(),
			Groups:           es.NumGroups(),
			StartSyscalls:    startCost,
			ReadSyscalls:     readCost,
			StopSyscalls:     stopCost,
			FastReadSyscalls: fastCost,
		})
		if err := es.Cleanup(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// String renders the overhead comparison.
func (r OverheadResult) String() string {
	rows := [][]string{}
	for _, c := range r.Cases {
		rows = append(rows, []string{
			c.Name,
			fmt.Sprintf("%d", c.Events),
			fmt.Sprintf("%d", c.Groups),
			fmt.Sprintf("%d", c.StartSyscalls),
			fmt.Sprintf("%d", c.ReadSyscalls),
			fmt.Sprintf("%d", c.FastReadSyscalls),
			fmt.Sprintf("%d", c.StopSyscalls),
		})
	}
	return table([]string{"EventSet shape", "events", "groups",
		"start", "read", "rdpmc read", "stop"}, rows)
}
