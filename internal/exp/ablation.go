package exp

// Ablation studies for the design choices DESIGN.md calls out: the
// threading strategy (static barrier vs work stealing) across E-core
// counts, the PL2 turbo budget, the multiplex rotation interval, and the
// scheduler's Performance-class placement preference.

import (
	"fmt"
	"math"
	"sync"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// StrategySweepRow is one 8P+kE configuration of the strategy ablation.
type StrategySweepRow struct {
	ECores   int
	Static   float64 // OpenBLAS-style Gflops
	Dynamic  float64 // MKL-style Gflops
	DeltaPct float64 // dynamic vs static
}

// StrategySweepResult shows how the static barrier split degrades as
// E-cores join — the mechanism behind the paper's Table II crossover.
type StrategySweepResult struct {
	Rows []StrategySweepRow
}

// AblationStrategySweep runs both strategies on 8 P-cores plus 0..8
// E-cores; the eight cells run on independent machines concurrently.
func AblationStrategySweep(cfg Config) (StrategySweepResult, error) {
	var res StrategySweepResult
	m := hw.RaptorLake()
	pcpus := cpusFor(m, POnly)
	ecpus := m.CPUsOfType("E-core")
	counts := []int{0, 2, 4, 8}
	cells := make([][2]float64, len(counts))
	errs := make([]error, len(counts)*2)
	var wg sync.WaitGroup
	for ci, k := range counts {
		cpus := append(append([]int{}, pcpus...), ecpus[:k]...)
		for si, strat := range []workload.Strategy{workload.OpenBLASx86(), workload.IntelMKL()} {
			ci, si, strat, cpus := ci, si, strat, cpus
			wg.Add(1)
			go func() {
				defer wg.Done()
				run, err := RunHPL(hw.RaptorLake(), strat, cpus, cfg.N, cfg.NB, cfg.Seed)
				if err != nil {
					errs[ci*2+si] = err
					return
				}
				cells[ci][si] = run.Gflops
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	for ci, k := range counts {
		res.Rows = append(res.Rows, StrategySweepRow{
			ECores:   k,
			Static:   cells[ci][0],
			Dynamic:  cells[ci][1],
			DeltaPct: (cells[ci][1] - cells[ci][0]) / cells[ci][0] * 100,
		})
	}
	return res, nil
}

// String renders the sweep.
func (r StrategySweepResult) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("8P + %dE", row.ECores),
			fmt.Sprintf("%.1f", row.Static),
			fmt.Sprintf("%.1f", row.Dynamic),
			fmt.Sprintf("%+.1f%%", row.DeltaPct),
		})
	}
	return table([]string{"cores", "static (Gflops)", "dynamic (Gflops)", "dynamic vs static"}, rows)
}

// TurboRow is one PL2-budget configuration.
type TurboRow struct {
	Label      string
	BudgetJ    float64
	Gflops     float64
	ElapsedSec float64
	PeakPowerW float64
}

// TurboResult shows what the short-term power limit budget buys.
type TurboResult struct {
	Rows []TurboRow
}

// AblationTurboBudget compares no-turbo, paper-default and doubled PL2
// budgets on a medium all-core run — long enough to outlast the default
// turbo window (otherwise the whole run fits inside it and the budgets
// are indistinguishable), short enough that the spike still matters.
func AblationTurboBudget(cfg Config) (TurboResult, error) {
	var res TurboResult
	n := cfg.N
	if n < 28800 {
		n = 28800
	}
	for _, tc := range []struct {
		label string
		scale float64
	}{
		{"no turbo budget", 0},
		{"default budget", 1},
		{"double budget", 2},
	} {
		m := hw.RaptorLake()
		m.Power.PL2BudgetJ *= tc.scale
		run, err := RunHPL(m, workload.IntelMKL(), m.FirstCPUPerCore(), n, cfg.NB, cfg.Seed)
		if err != nil {
			return res, err
		}
		var peak float64
		for i, s := range run.Samples {
			if i > 0 && s.PowerW > peak {
				peak = s.PowerW
			}
		}
		res.Rows = append(res.Rows, TurboRow{
			Label:      tc.label,
			BudgetJ:    m.Power.PL2BudgetJ,
			Gflops:     run.Gflops,
			ElapsedSec: run.ElapsedSec,
			PeakPowerW: peak,
		})
	}
	return res, nil
}

// String renders the turbo ablation.
func (r TurboResult) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label,
			fmt.Sprintf("%.0f J", row.BudgetJ),
			fmt.Sprintf("%.1f Gflops", row.Gflops),
			fmt.Sprintf("%.1f s", row.ElapsedSec),
			fmt.Sprintf("%.0f W", row.PeakPowerW),
		})
	}
	return table([]string{"config", "PL2 budget", "HPL", "time", "peak power"}, rows)
}

// MuxRow is one multiplex-interval configuration.
type MuxRow struct {
	IntervalMs  float64
	MeanErrPct  float64
	WorstErrPct float64
}

// MuxResult quantifies multiplex estimation error versus rotation
// interval for a 14-event set on one P-core.
type MuxResult struct {
	Rows []MuxRow
}

// AblationMuxInterval measures scaled-estimate error against ground truth
// for several rotation intervals, using a phase-alternating workload (a
// constant-rate workload scales back exactly, hiding the error).
func AblationMuxInterval(cfg Config) (MuxResult, error) {
	var res MuxResult
	names := []string{
		"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES", "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
		"adl_glc::LONGEST_LAT_CACHE:REFERENCE", "adl_glc::LONGEST_LAT_CACHE:MISS",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS", "adl_glc::MEM_INST_RETIRED:ALL_STORES",
		"adl_glc::CYCLE_ACTIVITY:STALLS_TOTAL", "adl_glc::UOPS_RETIRED:SLOTS",
		"adl_glc::TOPDOWN:SLOTS", "adl_glc::DTLB_LOAD_MISSES:WALK_COMPLETED",
		"adl_glc::RESOURCE_STALLS:ANY", "adl_glc::INST_RETIRED:NOP",
	}
	for _, ms := range []float64{1, 4, 16} {
		s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
		s.Kernel.SetMuxInterval(ms / 1000)
		lib, err := core.Init(s, core.Options{})
		if err != nil {
			return res, err
		}
		// A bursty loop with a known retirement total is the ground truth:
		// its phase-alternating rate is what makes multiplexed estimates
		// drift (a constant-rate workload would scale back exactly).
		loop := workload.NewBurstyLoop("w", 1e7, 150, 0.008, 0.15)
		p := s.Spawn(loop, hw.NewCPUSet(0))
		es := lib.CreateEventSet()
		if err := es.Attach(p.PID); err != nil {
			return res, err
		}
		if err := es.SetMultiplex(); err != nil {
			return res, err
		}
		for _, n := range names {
			if err := es.AddNamed(n); err != nil {
				return res, err
			}
		}
		if err := es.Start(); err != nil {
			return res, err
		}
		if !s.RunUntil(loop.Done, 600) {
			return res, fmt.Errorf("exp: mux ablation workload did not finish")
		}
		vals, err := es.Stop()
		if err != nil {
			return res, err
		}
		es.Cleanup()

		truth := loop.TotalInstructions()
		// INST_RETIRED appears twice (ANY and NOP-scaled); compare the two
		// estimates that have exact ground truths: instructions (index 0)
		// and slots via cycles*width consistency. Use the repeated reads of
		// the same quantity: index 0 is the key error metric.
		errPct := math.Abs(float64(vals[0])-truth) / truth * 100
		// Worst case across all events is approximated by the spread of
		// the two INST_RETIRED-derived estimates.
		uops := float64(vals[9]) / 1.12 // UOPS_RETIRED:SLOTS scale
		errUops := math.Abs(uops-truth) / truth * 100
		worst := errPct
		if errUops > worst {
			worst = errUops
		}
		res.Rows = append(res.Rows, MuxRow{IntervalMs: ms, MeanErrPct: (errPct + errUops) / 2, WorstErrPct: worst})
	}
	return res, nil
}

// String renders the multiplex ablation.
func (r MuxResult) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f ms", row.IntervalMs),
			fmt.Sprintf("%.2f%%", row.MeanErrPct),
			fmt.Sprintf("%.2f%%", row.WorstErrPct),
		})
	}
	return table([]string{"mux interval", "mean estimate error", "worst error"}, rows)
}

// SchedPrefResult compares hybrid-aware (prefer-P) placement against a
// class-blind scheduler for a latency-sensitive single task.
type SchedPrefResult struct {
	PreferPSec     float64
	ClassBlindSec  float64
	SlowdownFactor float64
}

// AblationSchedulerPreference times a fixed instruction workload under
// both placement policies. A class-blind scheduler parks the task on the
// lowest free CPU id; on the OrangePi (LITTLE cores enumerate first) that
// is the slow cluster.
func AblationSchedulerPreference(cfg Config) (SchedPrefResult, error) {
	run := func(blind bool) (float64, error) {
		scfg := sim.DefaultConfig()
		scfg.Sched.NoClassPreference = blind
		scfg.Sched.MigrateToEffProb = 0
		scfg.Sched.MigrateToPerfProb = 0
		scfg.Sched.Seed = cfg.Seed
		s := sim.New(hw.OrangePi800(), scfg)
		loop := workload.NewInstructionLoop("w", 1e6, 5000)
		s.Spawn(loop, hw.AllCPUs(s.HW))
		start := s.Now()
		if !s.RunUntil(loop.Done, 600) {
			return 0, fmt.Errorf("exp: scheduler ablation workload did not finish")
		}
		return s.Now() - start, nil
	}
	prefer, err := run(false)
	if err != nil {
		return SchedPrefResult{}, err
	}
	blind, err := run(true)
	if err != nil {
		return SchedPrefResult{}, err
	}
	return SchedPrefResult{
		PreferPSec:     prefer,
		ClassBlindSec:  blind,
		SlowdownFactor: blind / prefer,
	}, nil
}

// String renders the scheduler ablation.
func (r SchedPrefResult) String() string {
	return fmt.Sprintf(
		"prefer-big placement: %.3f s; class-blind placement: %.3f s; slowdown %.2fx\n",
		r.PreferPSec, r.ClassBlindSec, r.SlowdownFactor)
}
