package exp

import (
	"strings"
	"testing"
)

func TestAblationStrategySweep(t *testing.T) {
	res, err := AblationStrategySweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// With no E-cores the strategies are nearly equal; the dynamic
	// advantage must grow monotonically-ish with E-core count.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.ECores != 0 || last.ECores != 8 {
		t.Fatalf("sweep bounds wrong: %+v", res.Rows)
	}
	if first.DeltaPct > 20 {
		t.Errorf("with 0 E-cores the gap should be small: %+.1f%%", first.DeltaPct)
	}
	if last.DeltaPct < 25 {
		t.Errorf("with 8 E-cores the dynamic advantage should be large: %+.1f%%", last.DeltaPct)
	}
	if last.DeltaPct <= first.DeltaPct {
		t.Error("the dynamic advantage must grow with E-core count")
	}
	// Static throughput must eventually DROP as E-cores join (the
	// crossover): the 8E static cell is below the 0E one.
	if last.Static >= first.Static {
		t.Errorf("static: 8E %.1f >= 0E %.1f; stragglers must hurt", last.Static, first.Static)
	}
	// Dynamic keeps improving.
	if last.Dynamic <= first.Dynamic {
		t.Errorf("dynamic: 8E %.1f <= 0E %.1f", last.Dynamic, first.Dynamic)
	}
	if !strings.Contains(res.String(), "dynamic vs static") {
		t.Error("rendering broken")
	}
}

func TestAblationTurboBudget(t *testing.T) {
	res, err := AblationTurboBudget(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	none, def, double := res.Rows[0], res.Rows[1], res.Rows[2]
	// Short runs get faster with more turbo budget.
	if !(none.Gflops < def.Gflops && def.Gflops < double.Gflops) {
		t.Errorf("turbo ordering: %.1f / %.1f / %.1f", none.Gflops, def.Gflops, double.Gflops)
	}
	// Without budget, power never exceeds ~PL1.
	if none.PeakPowerW > 75 {
		t.Errorf("no-budget peak power %.1f W should stay near PL1", none.PeakPowerW)
	}
	if def.PeakPowerW < 100 {
		t.Errorf("default-budget peak %.1f W should spike well above PL1", def.PeakPowerW)
	}
	if !strings.Contains(res.String(), "PL2 budget") {
		t.Error("rendering broken")
	}
}

func TestAblationMuxInterval(t *testing.T) {
	res, err := AblationMuxInterval(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.WorstErrPct > 15 {
			t.Errorf("mux %vms worst error %.2f%% too large", row.IntervalMs, row.WorstErrPct)
		}
		if row.MeanErrPct > row.WorstErrPct {
			t.Error("mean error above worst error")
		}
	}
	if !strings.Contains(res.String(), "mux interval") {
		t.Error("rendering broken")
	}
}

func TestAblationSchedulerPreference(t *testing.T) {
	res, err := AblationSchedulerPreference(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The class-blind scheduler parks the task on a LITTLE core (cpu0 on
	// the OrangePi): slower by roughly the big/LITTLE IPC*freq ratio.
	if res.SlowdownFactor < 1.5 {
		t.Errorf("class-blind slowdown = %.2fx; expected a clear penalty", res.SlowdownFactor)
	}
	if res.SlowdownFactor > 6 {
		t.Errorf("slowdown %.2fx implausibly large", res.SlowdownFactor)
	}
	if !strings.Contains(res.String(), "class-blind") {
		t.Error("rendering broken")
	}
}
