// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation, shared by the cmd/ tools, the
// examples and the top-level benchmarks. Each driver builds fresh
// simulated machines, runs the paper's workloads under the paper's
// measurement methodology (1 Hz sysfs polling, perf-style system-wide
// counters, PAPI EventSets for the hybrid test), and returns structured
// results with paper-style text rendering.
package exp

import (
	"fmt"
	"strings"

	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
	"hetpapi/internal/sim"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

// Config scales the experiments. Default() reproduces the paper's
// parameters; tests shrink N to keep runtimes small.
type Config struct {
	// N and NB are the Raptor Lake HPL.dat parameters (paper: 57024/192).
	N  int
	NB int
	// ArmN and ArmNB size the OrangePi runs.
	ArmN  int
	ArmNB int
	// Runs is how many runs are averaged per cell (paper: 10).
	Runs int
	// SettleTempC is the between-runs thermal settle target (paper: 35).
	SettleTempC float64
	// Reps and InstrPerRep parameterize the papi_hybrid test
	// (paper: 100 x 1M).
	Reps        int
	InstrPerRep float64
	// Seed is the base RNG seed; run r of a cell uses Seed + r.
	Seed int64
}

// Default returns the paper's experimental parameters, with Runs reduced
// from 10 to 3 (the simulator is deterministic per seed, so additional
// runs only average scheduler noise).
func Default() Config {
	return Config{
		N: 57024, NB: 192,
		ArmN: 16384, ArmNB: 128,
		Runs:        3,
		SettleTempC: 35,
		Reps:        100,
		InstrPerRep: 1e6,
		Seed:        2028,
	}
}

// Quick returns a scaled-down configuration for tests: the same machines
// and mechanisms on a small problem.
func Quick() Config {
	return Config{
		N: 9600, NB: 192,
		ArmN: 12288, ArmNB: 128,
		Runs:        1,
		SettleTempC: 35,
		Reps:        100,
		InstrPerRep: 1e6,
		Seed:        7,
	}
}

// CoreSelection names the "Enabled cores" rows of Table II.
type CoreSelection string

// The three Raptor Lake core selections.
const (
	EOnly CoreSelection = "E only"
	POnly CoreSelection = "P only"
	PAndE CoreSelection = "P and E"
)

// cpusFor returns the pinned CPU list of a selection (one thread per
// physical core, as the paper configures HPL).
func cpusFor(m *hw.Machine, sel CoreSelection) []int {
	switch sel {
	case EOnly:
		return m.CPUsOfType("E-core")
	case POnly:
		var out []int
		for _, c := range m.CPUsOfType("P-core") {
			if m.CPUs[c].SMTIndex == 0 {
				out = append(out, c)
			}
		}
		return out
	default:
		return m.FirstCPUPerCore()
	}
}

// TypeCounters holds system-wide counter totals for one core type. It is
// the scenario harness's type; the alias keeps the historical exp API.
type TypeCounters = scenario.TypeCounters

// HPLRun is one measured HPL execution.
type HPLRun struct {
	// Gflops is the benchmark figure of merit.
	Gflops float64
	// ElapsedSec is the run duration in simulated seconds.
	ElapsedSec float64
	// Samples is the 1 Hz monitoring trace.
	Samples []trace.Sample
	// ByType holds perf-style system-wide counters per core type name.
	ByType map[string]TypeCounters
	// EnergyJ is the total package energy of the run (RAPL machines).
	EnergyJ float64
}

// RunHPL executes one monitored HPL run on a fresh machine.
func RunHPL(m *hw.Machine, strategy workload.Strategy, cpus []int, n, nb int, seed int64) (HPLRun, error) {
	simCfg := sim.DefaultConfig()
	simCfg.Sched.Seed = seed
	s := sim.New(m, simCfg)
	return runHPLOn(s, strategy, cpus, n, nb, seed)
}

// runHPLOn executes one monitored HPL run on an already-booted machine
// (which may be warm from a previous run), through the scenario harness:
// the paper's 1 Hz monitoring and system-wide counters, with the full
// standard invariant set audited on every tick.
func runHPLOn(s *sim.Machine, strategy workload.Strategy, cpus []int, n, nb int, seed int64) (HPLRun, error) {
	res, err := scenario.RunOn(s, scenario.Spec{
		Name:            fmt.Sprintf("hpl-n%d", n),
		SamplePeriodSec: 1.0,
		MaxSeconds:      4 * 3600,
		Workloads: []scenario.WorkloadSpec{{
			Kind: scenario.WorkloadHPL, Name: "hpl", CPUs: cpus,
			N: n, NB: nb, Strategy: strategy, Seed: seed,
		}},
	})
	if err != nil {
		return HPLRun{}, err
	}
	if !res.Completed {
		return HPLRun{}, fmt.Errorf("exp: HPL(N=%d) did not finish in 4 simulated hours", n)
	}
	return HPLRun{
		Gflops:     res.Workloads[0].Gflops,
		ElapsedSec: res.Workloads[0].ElapsedSec,
		Samples:    res.Samples,
		ByType:     res.ByType,
		EnergyJ:    res.EnergyJ,
	}, nil
}

// AverageHPL runs a cell cfg.Runs times with distinct seeds on ONE
// machine, waiting between runs for the package to settle at
// cfg.SettleTempC — the paper's data-collection protocol ("waiting for
// the CPU package temperature to settle at 35 degC before each run") —
// and returns the run with averaged scalars and trace.
func AverageHPL(cfg Config, m func() *hw.Machine, strategy workload.Strategy, sel CoreSelection) (HPLRun, error) {
	machine := m()
	simCfg := sim.DefaultConfig()
	simCfg.Sched.Seed = cfg.Seed
	s := sim.New(machine, simCfg)
	settle := cfg.SettleTempC
	if settle <= 0 {
		settle = 35
	}
	var runs []HPLRun
	var traces [][]trace.Sample
	for r := 0; r < max(1, cfg.Runs); r++ {
		if r > 0 {
			s.Settle(settle)
		}
		run, err := runHPLOn(s, strategy, cpusFor(machine, sel), cfg.N, cfg.NB, cfg.Seed+int64(r))
		if err != nil {
			return HPLRun{}, err
		}
		runs = append(runs, run)
		traces = append(traces, run.Samples)
	}
	avg := HPLRun{
		Samples: trace.AverageRuns(traces),
		ByType:  map[string]TypeCounters{},
	}
	for _, r := range runs {
		avg.Gflops += r.Gflops
		avg.ElapsedSec += r.ElapsedSec
		avg.EnergyJ += r.EnergyJ
		for name, tc := range r.ByType {
			cur := avg.ByType[name]
			cur.Instructions += tc.Instructions
			cur.Cycles += tc.Cycles
			cur.LLCRefs += tc.LLCRefs
			cur.LLCMisses += tc.LLCMisses
			avg.ByType[name] = cur
		}
	}
	n := float64(len(runs))
	avg.Gflops /= n
	avg.ElapsedSec /= n
	avg.EnergyJ /= n
	for name, tc := range avg.ByType {
		tc.Instructions /= n
		tc.Cycles /= n
		tc.LLCRefs /= n
		tc.LLCMisses /= n
		avg.ByType[name] = tc
	}
	return avg, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// table renders rows of columns with padding, for paper-style output.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
