package exp

import (
	"fmt"
	"sync"

	"hetpapi/internal/hw"
	"hetpapi/internal/stats"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

// ArmConfig names one OrangePi core configuration of Figures 3 and 4.
type ArmConfig struct {
	// Label is the row name ("2 big", "4 LITTLE", "all 6").
	Label string
	// Big and Little are how many cores of each cluster run HPL threads.
	Big    int
	Little int
}

// armCPUs returns the pinned CPU list of a configuration.
func armCPUs(m *hw.Machine, c ArmConfig) []int {
	var out []int
	little := m.CPUsOfType("LITTLE")
	big := m.CPUsOfType("big")
	for i := 0; i < c.Little && i < len(little); i++ {
		out = append(out, little[i])
	}
	for i := 0; i < c.Big && i < len(big); i++ {
		out = append(out, big[i])
	}
	return out
}

// Figure3Series is the monitoring trace of one OrangePi run.
type Figure3Series struct {
	Config  ArmConfig
	Samples []trace.Sample
	// StartBigMHz and SustainedBigMHz capture the Figure 3 collapse: the
	// big cluster's frequency at the start vs the median over the rest of
	// the run.
	StartBigMHz     float64
	SustainedBigMHz float64
	// SustainedLittleMHz is the LITTLE cluster's median frequency.
	SustainedLittleMHz float64
	// MaxTempC is the hottest zone temperature (reaches the 85 degC trip
	// for big-core runs).
	MaxTempC float64
	// MeanWallW is the average WattsUpPro reading.
	MeanWallW float64
	Gflops    float64
}

// Figure3Result carries the traces behind Figure 3.
type Figure3Result struct {
	Series []Figure3Series
}

// Figure3 regenerates the OrangePi frequency/power/thermal traces for the
// big-only, LITTLE-only and all-core configurations.
func Figure3(cfg Config) (Figure3Result, error) {
	var res Figure3Result
	configs := []ArmConfig{
		{Label: "2 big", Big: 2},
		{Label: "4 LITTLE", Little: 4},
		{Label: "all 6", Big: 2, Little: 4},
	}
	series := make([]Figure3Series, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, ac := range configs {
		i, ac := i, ac
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := hw.OrangePi800()
			run, err := RunHPL(m, workload.OpenBLASArm(), armCPUs(m, ac), cfg.ArmN, cfg.ArmNB, cfg.Seed)
			if err != nil {
				errs[i] = err
				return
			}
			fs := Figure3Series{Config: ac, Samples: run.Samples, Gflops: run.Gflops}
			bigSeries := trace.MeanFreqSeries(run.Samples, m.CPUsOfType("big"))
			littleSeries := trace.MeanFreqSeries(run.Samples, m.CPUsOfType("LITTLE"))
			if len(bigSeries) > 0 {
				fs.StartBigMHz = stats.Max(bigSeries[:min(3, len(bigSeries))])
			}
			if len(bigSeries) > 5 {
				fs.SustainedBigMHz = stats.Median(bigSeries[5:])
				fs.SustainedLittleMHz = stats.Median(littleSeries[5:])
			}
			fs.MaxTempC = stats.Max(trace.TempSeries(run.Samples))
			var wall []float64
			for _, s := range run.Samples {
				wall = append(wall, s.WallW)
			}
			fs.MeanWallW = stats.Mean(wall)
			series[i] = fs
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Series = series
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String summarizes the Figure 3 shapes.
func (r Figure3Result) String() string {
	rows := [][]string{}
	for _, fs := range r.Series {
		rows = append(rows, []string{
			fs.Config.Label,
			fmt.Sprintf("%.0f MHz", fs.StartBigMHz),
			fmt.Sprintf("%.0f MHz", fs.SustainedBigMHz),
			fmt.Sprintf("%.0f MHz", fs.SustainedLittleMHz),
			fmt.Sprintf("%.1f C", fs.MaxTempC),
			fmt.Sprintf("%.1f W", fs.MeanWallW),
			fmt.Sprintf("%.2f Gflops", fs.Gflops),
		})
	}
	return table([]string{"Config", "big start", "big sustained",
		"LITTLE sustained", "max temp", "wall power", "HPL"}, rows)
}

// Figure4Row is one core configuration's HPL result.
type Figure4Row struct {
	Config     ArmConfig
	Gflops     float64
	ElapsedSec float64
}

// Figure4Result reproduces Figure 4: OrangePi HPL performance as more
// cores are added.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4 regenerates the core-count sweep; the configurations run on
// independent machines concurrently.
func Figure4(cfg Config) (Figure4Result, error) {
	var res Figure4Result
	configs := []ArmConfig{
		{Label: "1 big", Big: 1},
		{Label: "2 big", Big: 2},
		{Label: "2 LITTLE", Little: 2},
		{Label: "4 LITTLE", Little: 4},
		{Label: "all 6", Big: 2, Little: 4},
	}
	rows := make([]Figure4Row, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, ac := range configs {
		i, ac := i, ac
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := hw.OrangePi800()
			run, err := RunHPL(m, workload.OpenBLASArm(), armCPUs(m, ac), cfg.ArmN, cfg.ArmNB, cfg.Seed)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = Figure4Row{Config: ac, Gflops: run.Gflops, ElapsedSec: run.ElapsedSec}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Rows = rows
	return res, nil
}

// Row returns the row with the given label, or nil.
func (r Figure4Result) Row(label string) *Figure4Row {
	for i := range r.Rows {
		if r.Rows[i].Config.Label == label {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the sweep.
func (r Figure4Result) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config.Label,
			fmt.Sprintf("%.2f Gflops", row.Gflops),
			fmt.Sprintf("%.0f s", row.ElapsedSec),
		})
	}
	return table([]string{"Config", "HPL", "time"}, rows)
}
