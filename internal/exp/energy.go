package exp

// Energy-to-solution extension: the paper's motivation for heterogeneous
// cores is energy efficiency, and its methodology collects RAPL energy for
// every run — but the paper never tabulates efficiency. This driver closes
// that loop: Gflops/W and energy-to-solution for each Table II cell,
// measured through the RAPL counters of the simulated package.

import (
	"fmt"
	"sync"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

// EnergyRow is one (core selection, variant) cell of the efficiency table.
type EnergyRow struct {
	Cores   CoreSelection
	Variant string
	// Gflops is the benchmark figure of merit.
	Gflops float64
	// EnergyKJ is the RAPL package energy to solution in kilojoules.
	EnergyKJ float64
	// GflopsPerWatt is the efficiency figure (flops per joule / 1e9).
	GflopsPerWatt float64
}

// EnergyResult is the efficiency view of the Table II experiment.
type EnergyResult struct {
	Rows []EnergyRow
}

// EnergyTable measures energy-to-solution for every Table II cell.
func EnergyTable(cfg Config) (EnergyResult, error) {
	var res EnergyResult
	sels := []CoreSelection{EOnly, POnly, PAndE}
	strats := []workload.Strategy{workload.OpenBLASx86(), workload.IntelMKL()}
	rows := make([]EnergyRow, len(sels)*len(strats))
	errs := make([]error, len(rows))
	var wg sync.WaitGroup
	for si, sel := range sels {
		for vi, strat := range strats {
			idx := si*len(strats) + vi
			sel, strat := sel, strat
			wg.Add(1)
			go func() {
				defer wg.Done()
				run, err := AverageHPL(cfg, hw.RaptorLake, strat, sel)
				if err != nil {
					errs[idx] = err
					return
				}
				row := EnergyRow{
					Cores:    sel,
					Variant:  strat.Name,
					Gflops:   run.Gflops,
					EnergyKJ: run.EnergyJ / 1000,
				}
				if run.EnergyJ > 0 {
					// flops = Gflops * 1e9 * elapsed; efficiency = flops/J / 1e9.
					row.GflopsPerWatt = run.Gflops * run.ElapsedSec / run.EnergyJ
				}
				rows[idx] = row
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Rows = rows
	return res, nil
}

// Row returns the cell for a selection and variant, or nil.
func (r EnergyResult) Row(sel CoreSelection, variant string) *EnergyRow {
	for i := range r.Rows {
		if r.Rows[i].Cores == sel && r.Rows[i].Variant == variant {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the efficiency table.
func (r EnergyResult) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Cores),
			row.Variant,
			fmt.Sprintf("%.1f Gflops", row.Gflops),
			fmt.Sprintf("%.0f kJ", row.EnergyKJ),
			fmt.Sprintf("%.2f Gflops/W", row.GflopsPerWatt),
		})
	}
	return table([]string{"Enabled cores", "Variant", "perf", "energy to solution", "efficiency"}, rows)
}
