package exp

import (
	"fmt"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// HybridTestResult reproduces the papi_hybrid_100m_one_eventset experiment
// of section IV.F: a loop retiring InstrPerRep instructions Reps times,
// measured four ways.
type HybridTestResult struct {
	Reps        int
	InstrPerRep float64
	// Patched: one EventSet holding both PMUs' INST_RETIRED events. AvgP
	// and AvgE are the average per-repetition counts; their sum should be
	// ~InstrPerRep (the paper's "p: 836848 e: 167487").
	AvgP, AvgE float64
	// LegacyFree is the legacy library measuring the same free-migrating
	// workload: only the default (P) PMU counts, so it undercounts.
	LegacyFree float64
	// LegacyPinnedP and LegacyPinnedE are the legacy library with the
	// process tasksetted to one core type: ~InstrPerRep on P, ~0 on E —
	// the "0, 1 million, or something in between" the paper describes.
	LegacyPinnedP float64
	LegacyPinnedE float64
}

// hybridSim builds a machine with enough scheduler noise that a single
// thread visits both core types, as timer interrupts and background load
// cause on real systems.
func hybridSim(seed int64) *sim.Machine {
	cfg := sim.DefaultConfig()
	// The whole test retires 100M instructions in a few milliseconds, so
	// the simulation runs at a 50 us tick with sub-millisecond balancing
	// to capture the scheduler-noise migrations a real desktop shows.
	cfg.TickSec = 0.00005
	cfg.Sched.MigrateToEffProb = 0.13
	cfg.Sched.MigrateToPerfProb = 0.37
	cfg.Sched.BalancePeriodSec = 0.00025
	cfg.Sched.Seed = seed
	return sim.New(hw.RaptorLake(), cfg)
}

// runHybridOnce measures one loop execution and returns the per-rep
// averages of the EventSet's values.
func runHybridOnce(cfg Config, legacy bool, affinity func(*hw.Machine) hw.CPUSet, names []string) ([]float64, error) {
	s := hybridSim(cfg.Seed)
	l, err := core.Init(s, core.Options{Legacy: legacy})
	if err != nil {
		return nil, err
	}
	loop := workload.NewInstructionLoop("papi_hybrid", cfg.InstrPerRep, cfg.Reps)
	p := s.Spawn(loop, affinity(s.HW))

	es := l.CreateEventSet()
	if err := es.Attach(p.PID); err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := es.AddNamed(n); err != nil {
			return nil, err
		}
	}
	if err := es.Start(); err != nil {
		return nil, err
	}
	if !s.RunUntil(loop.Done, 600) {
		return nil, fmt.Errorf("exp: hybrid loop did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		return nil, err
	}
	if err := es.Cleanup(); err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(v) / float64(cfg.Reps)
	}
	return out, nil
}

// HybridTest regenerates the section IV.F experiment.
func HybridTest(cfg Config) (HybridTestResult, error) {
	res := HybridTestResult{Reps: cfg.Reps, InstrPerRep: cfg.InstrPerRep}
	all := func(m *hw.Machine) hw.CPUSet { return hw.AllCPUs(m) }
	pOnly := func(m *hw.Machine) hw.CPUSet { return hw.NewCPUSet(cpusFor(m, POnly)...) }
	eOnly := func(m *hw.Machine) hw.CPUSet { return hw.NewCPUSet(m.CPUsOfType("E-core")...) }

	both := []string{"adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY"}
	vals, err := runHybridOnce(cfg, false, all, both)
	if err != nil {
		return res, err
	}
	res.AvgP, res.AvgE = vals[0], vals[1]

	// Legacy can hold only the default-PMU event.
	pOnlyEvent := []string{"INST_RETIRED:ANY"}
	if vals, err = runHybridOnce(cfg, true, all, pOnlyEvent); err != nil {
		return res, err
	}
	res.LegacyFree = vals[0]
	if vals, err = runHybridOnce(cfg, true, pOnly, pOnlyEvent); err != nil {
		return res, err
	}
	res.LegacyPinnedP = vals[0]
	if vals, err = runHybridOnce(cfg, true, eOnly, pOnlyEvent); err != nil {
		return res, err
	}
	res.LegacyPinnedE = vals[0]
	return res, nil
}

// String renders the test output in the style of section IV.F.
func (r HybridTestResult) String() string {
	s := fmt.Sprintf("papi_hybrid: %.0f instructions x %d reps\n", r.InstrPerRep, r.Reps)
	s += fmt.Sprintf("patched PAPI: Average instructions p: %.0f e: %.0f (sum %.0f)\n",
		r.AvgP, r.AvgE, r.AvgP+r.AvgE)
	s += fmt.Sprintf("legacy PAPI, free migration: %.0f\n", r.LegacyFree)
	s += fmt.Sprintf("legacy PAPI, taskset P-cores: %.0f\n", r.LegacyPinnedP)
	s += fmt.Sprintf("legacy PAPI, taskset E-cores: %.0f\n", r.LegacyPinnedE)
	return s
}
