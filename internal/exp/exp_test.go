package exp

import (
	"strings"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestTableIIShape(t *testing.T) {
	res, err := TableII(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byCores := map[CoreSelection]TableIIRow{}
	for _, r := range res.Rows {
		byCores[r.Cores] = r
	}
	// Intel wins every row.
	for sel, r := range byCores {
		if r.Intel <= r.OpenBLAS {
			t.Errorf("%s: Intel %.1f <= OpenBLAS %.1f", sel, r.Intel, r.OpenBLAS)
		}
		if r.ChangePct <= 0 {
			t.Errorf("%s: change %.1f%%", sel, r.ChangePct)
		}
	}
	// The headline crossover: OpenBLAS loses throughput when E-cores are
	// enabled; Intel gains.
	if res.OpenBLASAllVsPPct >= 0 {
		t.Errorf("OpenBLAS all-core vs P-only = %+.1f%%, want negative", res.OpenBLASAllVsPPct)
	}
	if res.IntelAllVsPPct <= 0 {
		t.Errorf("Intel all-core vs P-only = %+.1f%%, want positive", res.IntelAllVsPPct)
	}
	// The all-core gap is the biggest one (paper: +57.4%).
	if byCores[PAndE].ChangePct <= byCores[POnly].ChangePct {
		t.Error("the all-core Intel advantage must exceed the P-only advantage")
	}
	out := res.String()
	for _, want := range []string{"Enabled cores", "P and E", "Gflops", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	res, err := TableIII(Quick())
	if err != nil {
		t.Fatal(err)
	}
	ob := res.Cells["OpenBLAS HPL"]
	in := res.Cells["Intel HPL"]
	if ob == nil || in == nil {
		t.Fatalf("cells = %+v", res.Cells)
	}
	// LLC miss rates: P high (0.6-0.95), E near zero; Intel lower than
	// OpenBLAS on both types.
	if p := ob["P-core"].LLCMissRate; p < 0.6 || p > 0.95 {
		t.Errorf("OpenBLAS P missrate = %.3f, want ~0.86", p)
	}
	if p := in["P-core"].LLCMissRate; p < 0.4 || p > 0.8 {
		t.Errorf("Intel P missrate = %.3f, want ~0.64", p)
	}
	if in["P-core"].LLCMissRate >= ob["P-core"].LLCMissRate {
		t.Error("Intel must reduce the P-core LLC miss rate")
	}
	if e := ob["E-core"].LLCMissRate; e > 0.01 {
		t.Errorf("OpenBLAS E missrate = %.4f, want near zero", e)
	}
	// Instruction shares: OpenBLAS more P-skewed than Intel; Intel near
	// the paper's 68/32.
	if obP := ob["P-core"].InstrShare; obP < 0.60 || obP > 0.92 {
		t.Errorf("OpenBLAS P share = %.2f, want ~0.80", obP)
	}
	if inP := in["P-core"].InstrShare; inP < 0.55 || inP > 0.80 {
		t.Errorf("Intel P share = %.2f, want ~0.68", inP)
	}
	if ob["P-core"].InstrShare <= in["P-core"].InstrShare {
		t.Error("OpenBLAS must be more P-skewed than Intel (spin at barriers)")
	}
	for _, cells := range res.Cells {
		sum := cells["P-core"].InstrShare + cells["E-core"].InstrShare
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("instruction shares sum to %.3f", sum)
		}
	}
	if !strings.Contains(res.String(), "LLC missrate") {
		t.Error("rendering missing LLC missrate row")
	}
}

func TestFigures1And2Shape(t *testing.T) {
	cfg := Quick()
	cfg.N = 28800 // long enough to leave the PL2 spike and plateau
	res, err := Figures1And2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ob := res.ByVariant["OpenBLAS HPL"]
	in := res.ByVariant["Intel HPL"]
	if len(ob.Samples) < 10 || len(in.Samples) < 10 {
		t.Fatalf("traces too short: %d / %d samples", len(ob.Samples), len(in.Samples))
	}
	// Paper: OpenBLAS P-core median frequency exceeds Intel's (P cores
	// spin at barriers, leaving power headroom), E medians are close.
	if ob.MedianPFreqMHz <= in.MedianPFreqMHz {
		t.Errorf("median P freq: OpenBLAS %.0f <= Intel %.0f", ob.MedianPFreqMHz, in.MedianPFreqMHz)
	}
	// Both plateau near PL1 = 65 W.
	for name, fs := range res.ByVariant {
		if fs.PlateauPowerW < 55 || fs.PlateauPowerW > 75 {
			t.Errorf("%s plateau power = %.1f W, want ~65", name, fs.PlateauPowerW)
		}
		if fs.PeakPowerW <= fs.PlateauPowerW {
			t.Errorf("%s: no initial power spike (peak %.1f, plateau %.1f)",
				name, fs.PeakPowerW, fs.PlateauPowerW)
		}
		if fs.MaxTempC >= 100 {
			t.Errorf("%s: package reached %.1f C; paper says no thermal throttling", name, fs.MaxTempC)
		}
	}
	// Intel pulls at least as hard as OpenBLAS at the peak. (The paper
	// reports OpenBLAS peaking at 165.7 W, below the cap; our model's
	// uniform iteration structure lets both variants brush the PL2 cap
	// during the spike — a documented divergence, see EXPERIMENTS.md.)
	if in.PeakPowerW < ob.PeakPowerW-2 {
		t.Errorf("peak power: Intel %.1f well below OpenBLAS %.1f", in.PeakPowerW, ob.PeakPowerW)
	}
	if !strings.Contains(res.String(), "median P freq") {
		t.Error("rendering broken")
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	big := res.Series[0]
	little := res.Series[1]
	if big.Config.Label != "2 big" || little.Config.Label != "4 LITTLE" {
		t.Fatalf("order wrong: %+v", res.Series)
	}
	// The Figure 3 collapse: bigs start at max and throttle hard.
	if big.StartBigMHz < 1700 {
		t.Errorf("big start = %.0f MHz, want ~1800", big.StartBigMHz)
	}
	if big.SustainedBigMHz >= big.StartBigMHz-200 {
		t.Errorf("big sustained %.0f vs start %.0f: no visible throttling",
			big.SustainedBigMHz, big.StartBigMHz)
	}
	if big.MaxTempC < 80 {
		t.Errorf("big run max temp %.1f C, want near the 85 C trip", big.MaxTempC)
	}
	// LITTLE-only: sustains near max, stays cooler.
	if little.SustainedLittleMHz < 1300 {
		t.Errorf("LITTLE sustained %.0f MHz, want ~1416", little.SustainedLittleMHz)
	}
	if little.MaxTempC >= 85 {
		t.Errorf("LITTLE run reached the trip (%.1f C)", little.MaxTempC)
	}
	// Wall power is in single-board territory.
	for _, fs := range res.Series {
		if fs.MeanWallW < 3 || fs.MeanWallW > 25 {
			t.Errorf("%s wall power %.1f W implausible", fs.Config.Label, fs.MeanWallW)
		}
	}
	if !strings.Contains(res.String(), "big sustained") {
		t.Error("rendering broken")
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	oneBig := res.Row("1 big")
	twoBig := res.Row("2 big")
	twoLittle := res.Row("2 LITTLE")
	fourLittle := res.Row("4 LITTLE")
	all := res.Row("all 6")
	if oneBig == nil || twoBig == nil || twoLittle == nil || fourLittle == nil || all == nil {
		t.Fatal("missing rows")
	}
	// Paper Figure 4: 4 LITTLE beats 2 big; all 6 only marginally better
	// than 4 LITTLE.
	if fourLittle.Gflops <= twoBig.Gflops {
		t.Errorf("4 LITTLE %.2f <= 2 big %.2f", fourLittle.Gflops, twoBig.Gflops)
	}
	if all.Gflops <= fourLittle.Gflops {
		t.Errorf("all 6 %.2f <= 4 LITTLE %.2f", all.Gflops, fourLittle.Gflops)
	}
	if all.Gflops > fourLittle.Gflops*1.5 {
		t.Errorf("all 6 %.2f >> 4 LITTLE %.2f; paper shows only minimal improvement",
			all.Gflops, fourLittle.Gflops)
	}
	// Scaling sanity inside each cluster.
	if twoBig.Gflops <= oneBig.Gflops || fourLittle.Gflops <= twoLittle.Gflops {
		t.Error("adding cores within a cluster must help")
	}
	if !strings.Contains(res.String(), "4 LITTLE") {
		t.Error("rendering broken")
	}
}

func TestHybridTestShape(t *testing.T) {
	res, err := HybridTest(Quick())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.AvgP + res.AvgE
	// The patched sum is ~1M per rep.
	if sum < res.InstrPerRep*0.999 || sum > res.InstrPerRep*1.001 {
		t.Errorf("patched sum = %.0f, want ~%.0f", sum, res.InstrPerRep)
	}
	if res.AvgP <= res.AvgE {
		t.Errorf("expected P-heavy split, got p=%.0f e=%.0f", res.AvgP, res.AvgE)
	}
	if res.AvgE <= 0 {
		t.Error("E count must be nonzero for a free-migrating task")
	}
	// Legacy: undercounts when free, ~full when pinned to P, ~0 on E.
	if res.LegacyFree >= res.InstrPerRep*0.999 {
		t.Errorf("legacy free count %.0f should undercount", res.LegacyFree)
	}
	if res.LegacyPinnedP < res.InstrPerRep*0.999 {
		t.Errorf("legacy pinned-P count %.0f, want ~%.0f", res.LegacyPinnedP, res.InstrPerRep)
	}
	if res.LegacyPinnedE > res.InstrPerRep*0.001 {
		t.Errorf("legacy pinned-E count %.0f, want ~0", res.LegacyPinnedE)
	}
	if !strings.Contains(res.String(), "Average instructions p:") {
		t.Error("rendering broken")
	}
}

func TestOverheadShape(t *testing.T) {
	res, err := Overhead(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 4 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	single, multi, rapl, mux := res.Cases[0], res.Cases[1], res.Cases[2], res.Cases[3]
	if single.Groups != 1 || multi.Groups != 2 || rapl.Groups != 3 || mux.Groups != 14 {
		t.Fatalf("groups = %d/%d/%d/%d", single.Groups, multi.Groups, rapl.Groups, mux.Groups)
	}
	// Reads cost one syscall per group — the V.5 overhead.
	if single.ReadSyscalls != 1 || multi.ReadSyscalls != 2 || rapl.ReadSyscalls != 3 {
		t.Errorf("read costs = %d/%d/%d, want 1/2/3",
			single.ReadSyscalls, multi.ReadSyscalls, rapl.ReadSyscalls)
	}
	if mux.ReadSyscalls != 14 {
		t.Errorf("multiplexed read cost = %d, want 14", mux.ReadSyscalls)
	}
	// rdpmc eliminates syscalls for pure-hardware sets.
	if single.FastReadSyscalls != 0 || multi.FastReadSyscalls != 0 {
		t.Errorf("rdpmc costs = %d/%d, want 0/0", single.FastReadSyscalls, multi.FastReadSyscalls)
	}
	// The RAPL event cannot use rdpmc: exactly one fallback syscall.
	if rapl.FastReadSyscalls != 1 {
		t.Errorf("rapl rdpmc fallback = %d, want 1", rapl.FastReadSyscalls)
	}
	if multi.StartSyscalls <= single.StartSyscalls {
		t.Error("multi-PMU start must cost more than single-PMU start")
	}
	if !strings.Contains(res.String(), "rdpmc read") {
		t.Error("rendering broken")
	}
}

func TestCpusForSelections(t *testing.T) {
	m := hw.RaptorLake()
	if got := cpusFor(m, EOnly); len(got) != 8 || got[0] != 16 {
		t.Errorf("E only = %v", got)
	}
	if got := cpusFor(m, POnly); len(got) != 8 || got[7] != 14 {
		t.Errorf("P only = %v", got)
	}
	if got := cpusFor(m, PAndE); len(got) != 16 {
		t.Errorf("P and E = %v", got)
	}
}

func TestRunHPLErrors(t *testing.T) {
	m := hw.RaptorLake()
	if _, err := RunHPL(m, workload.OpenBLASx86(), []int{0}, 0, 192, 1); err == nil {
		t.Error("invalid N must fail")
	}
}

func TestAverageHPLSettlesBetweenRuns(t *testing.T) {
	cfg := Quick()
	cfg.N = 3840
	cfg.Runs = 3
	cfg.SettleTempC = 35
	run, err := AverageHPL(cfg, hw.RaptorLake, workload.IntelMKL(), POnly)
	if err != nil {
		t.Fatal(err)
	}
	if run.Gflops <= 0 {
		t.Fatal("no throughput")
	}
	// Averaged counters must be per-run magnitudes, not 3x (the wide
	// counters are re-opened and baselined each run).
	single, err := AverageHPL(exp1Run(cfg), hw.RaptorLake, workload.IntelMKL(), POnly)
	if err != nil {
		t.Fatal(err)
	}
	ratio := run.ByType["P-core"].Instructions / single.ByType["P-core"].Instructions
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("averaged instruction count %.2fx the single-run count; baselining broken", ratio)
	}
}

func exp1Run(cfg Config) Config {
	cfg.Runs = 1
	return cfg
}
