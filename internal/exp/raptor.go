package exp

import (
	"fmt"
	"sync"

	"hetpapi/internal/hw"
	"hetpapi/internal/stats"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

// TableIIRow is one "Enabled cores" row of Table II.
type TableIIRow struct {
	Cores     CoreSelection
	OpenBLAS  float64 // Gflops
	Intel     float64 // Gflops
	ChangePct float64 // OpenBLAS -> Intel
}

// TableIIResult reproduces Table II: OpenBLAS HPL vs Intel HPL Gflops per
// core selection, plus the two headline deltas the paper calls out.
type TableIIResult struct {
	Rows []TableIIRow
	// OpenBLASAllVsPPct is the all-core vs P-only change for OpenBLAS
	// (paper: -18.5%, all-core is WORSE).
	OpenBLASAllVsPPct float64
	// IntelAllVsPPct is the same for Intel HPL (paper: +16.4%).
	IntelAllVsPPct float64
}

// TableII regenerates Table II. The six cells are independent simulated
// machines, so they run concurrently (each cell is internally
// deterministic; the table is identical to a serial run).
func TableII(cfg Config) (TableIIResult, error) {
	var res TableIIResult
	type cellKey struct {
		sel     CoreSelection
		variant string
	}
	type cellOut struct {
		key    cellKey
		gflops float64
		err    error
	}
	var wg sync.WaitGroup
	results := make(chan cellOut, 6)
	for _, sel := range []CoreSelection{EOnly, POnly, PAndE} {
		for _, strat := range []workload.Strategy{workload.OpenBLASx86(), workload.IntelMKL()} {
			sel, strat := sel, strat
			wg.Add(1)
			go func() {
				defer wg.Done()
				run, err := AverageHPL(cfg, hw.RaptorLake, strat, sel)
				results <- cellOut{cellKey{sel, strat.Name}, run.Gflops, err}
			}()
		}
	}
	wg.Wait()
	close(results)
	cells := map[CoreSelection]map[string]float64{}
	for out := range results {
		if out.err != nil {
			return res, out.err
		}
		if cells[out.key.sel] == nil {
			cells[out.key.sel] = map[string]float64{}
		}
		cells[out.key.sel][out.key.variant] = out.gflops
	}
	for _, sel := range []CoreSelection{EOnly, POnly, PAndE} {
		ob := cells[sel]["OpenBLAS HPL"]
		in := cells[sel]["Intel HPL"]
		res.Rows = append(res.Rows, TableIIRow{
			Cores:     sel,
			OpenBLAS:  ob,
			Intel:     in,
			ChangePct: stats.PctChange(ob, in),
		})
	}
	res.OpenBLASAllVsPPct = stats.PctChange(cells[POnly]["OpenBLAS HPL"], cells[PAndE]["OpenBLAS HPL"])
	res.IntelAllVsPPct = stats.PctChange(cells[POnly]["Intel HPL"], cells[PAndE]["Intel HPL"])
	return res, nil
}

// String renders the result in the paper's Table II layout.
func (r TableIIResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Cores),
			fmt.Sprintf("%.2f Gflops", row.OpenBLAS),
			fmt.Sprintf("%.2f Gflops", row.Intel),
			fmt.Sprintf("%+.1f%%", row.ChangePct),
		})
	}
	s := table([]string{"Enabled cores", "OpenBLAS HPL", "Intel HPL", "% Change"}, rows)
	s += fmt.Sprintf("OpenBLAS all-core vs P-only: %+.1f%% (paper: -18.5%%)\n", r.OpenBLASAllVsPPct)
	s += fmt.Sprintf("Intel    all-core vs P-only: %+.1f%% (paper: +16.4%%)\n", r.IntelAllVsPPct)
	return s
}

// TableIIICell holds the measured values for one (variant, core type).
type TableIIICell struct {
	LLCMissRate float64
	InstrShare  float64
}

// TableIIIResult reproduces Table III: hardware counter measurements of
// the two all-core runs, per core type.
type TableIIIResult struct {
	// Cells[variant][coreTypeName].
	Cells map[string]map[string]TableIIICell
}

// TableIII regenerates Table III from monitored all-core runs.
func TableIII(cfg Config) (TableIIIResult, error) {
	res := TableIIIResult{Cells: map[string]map[string]TableIIICell{}}
	for _, strat := range []workload.Strategy{workload.OpenBLASx86(), workload.IntelMKL()} {
		run, err := AverageHPL(cfg, hw.RaptorLake, strat, PAndE)
		if err != nil {
			return res, err
		}
		var totalInstr float64
		for _, tc := range run.ByType {
			totalInstr += tc.Instructions
		}
		res.Cells[strat.Name] = map[string]TableIIICell{}
		for name, tc := range run.ByType {
			share := 0.0
			if totalInstr > 0 {
				share = tc.Instructions / totalInstr
			}
			res.Cells[strat.Name][name] = TableIIICell{
				LLCMissRate: tc.MissRate(),
				InstrShare:  share,
			}
		}
	}
	return res, nil
}

// String renders Table III in the paper's layout.
func (r TableIIIResult) String() string {
	rows := [][]string{}
	for _, metric := range []string{"LLC missrate", "% of total instructions"} {
		row := []string{metric}
		for _, variant := range []string{"OpenBLAS HPL", "Intel HPL"} {
			for _, ct := range []string{"P-core", "E-core"} {
				cell := r.Cells[variant][ct]
				switch metric {
				case "LLC missrate":
					row = append(row, fmt.Sprintf("%.2f%%", cell.LLCMissRate*100))
				default:
					row = append(row, fmt.Sprintf("%.0f%%", cell.InstrShare*100))
				}
			}
		}
		rows = append(rows, row)
	}
	return table([]string{"", "OpenBLAS P", "OpenBLAS E", "Intel P", "Intel E"}, rows)
}

// FigureSeries is the monitoring trace of one all-core run plus the
// summary frequencies the paper quotes in the Figure 1 discussion.
type FigureSeries struct {
	Variant string
	Samples []trace.Sample
	// MedianPFreqMHz / MedianEFreqMHz are the median busy-core
	// frequencies (paper: Intel 2610/2320, OpenBLAS 2940/2260).
	MedianPFreqMHz float64
	MedianEFreqMHz float64
	// PeakPowerW and PlateauPowerW summarize the Figure 2 shape
	// (paper: OpenBLAS peaks at 165.7 W, both plateau at 65 W).
	PeakPowerW    float64
	PlateauPowerW float64
	// MaxTempC is the hottest package temperature (paper: below 100).
	MaxTempC float64
}

// Figures1And2Result carries the per-variant traces behind Figures 1 and 2.
type Figures1And2Result struct {
	ByVariant map[string]FigureSeries
}

// Figures1And2 regenerates the frequency (Fig. 1) and power/temperature
// (Fig. 2) traces of the two all-core runs.
func Figures1And2(cfg Config) (Figures1And2Result, error) {
	m := hw.RaptorLake()
	res := Figures1And2Result{ByVariant: map[string]FigureSeries{}}
	pcpus := cpusFor(m, POnly)
	ecpus := m.CPUsOfType("E-core")
	for _, strat := range []workload.Strategy{workload.OpenBLASx86(), workload.IntelMKL()} {
		run, err := AverageHPL(cfg, hw.RaptorLake, strat, PAndE)
		if err != nil {
			return res, err
		}
		fs := FigureSeries{Variant: strat.Name, Samples: run.Samples}
		// Drop the first and last samples (ramp-up and completion) from
		// the medians, as eyeballing the paper's plots does.
		pSeries := trace.MeanFreqSeries(run.Samples, pcpus)
		eSeries := trace.MeanFreqSeries(run.Samples, ecpus)
		if len(pSeries) > 4 {
			pSeries = pSeries[1 : len(pSeries)-1]
			eSeries = eSeries[1 : len(eSeries)-1]
		}
		fs.MedianPFreqMHz = stats.Median(pSeries)
		fs.MedianEFreqMHz = stats.Median(eSeries)
		power := trace.PowerSeries(run.Samples)
		if len(power) > 1 {
			power = power[1:] // first sample has no energy delta
		}
		fs.PeakPowerW = stats.Max(power)
		fs.PlateauPowerW = stats.Median(power)
		fs.MaxTempC = stats.Max(trace.TempSeries(run.Samples))
		res.ByVariant[strat.Name] = fs
	}
	return res, nil
}

// String summarizes the Figure 1/2 shapes.
func (r Figures1And2Result) String() string {
	rows := [][]string{}
	for _, v := range []string{"OpenBLAS HPL", "Intel HPL"} {
		fs, ok := r.ByVariant[v]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			v,
			fmt.Sprintf("%.2f GHz", fs.MedianPFreqMHz/1000),
			fmt.Sprintf("%.2f GHz", fs.MedianEFreqMHz/1000),
			fmt.Sprintf("%.1f W", fs.PeakPowerW),
			fmt.Sprintf("%.1f W", fs.PlateauPowerW),
			fmt.Sprintf("%.1f C", fs.MaxTempC),
			fmt.Sprintf("%d samples", len(fs.Samples)),
		})
	}
	return table([]string{"Variant", "median P freq", "median E freq",
		"peak power", "plateau power", "max temp", "trace"}, rows)
}
