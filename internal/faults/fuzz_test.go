package faults_test

// Property and fuzz coverage for the fault-plan layer. The external test
// package lets these tests drive whole scenario runs (scenario imports
// perfevent imports faults), so FuzzFaultPlan can assert the strongest
// property the harness offers: a randomly generated fault schedule,
// applied to a fully audited scenario with a measurement probe attached,
// never makes any of the ten standard invariants fire — faults degrade
// measurements, they never corrupt them — and the same seed always
// produces byte-identical fault traces and run digests.

import (
	"reflect"
	"testing"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
)

// fuzzProfile bounds random plans to the homogeneous machine: watchdog
// and budget faults on its single core PMU, hotplug on CPUs the fuzz
// workload is not pinned to, everything inside the run's horizon.
func fuzzProfile(maxEvents int) faults.Profile {
	m := hw.Homogeneous()
	return faults.Profile{
		HorizonSec: 1.0,
		PMUs:       []uint32{m.Types[0].PMU.PerfType},
		CPUs:       []int{1, 2},
		MaxEvents:  maxEvents,
	}
}

// fuzzSpec is a short audited scenario with a measurement probe whose
// kernel gets the plan attached at the first tick. The workload is pinned
// away from the hotplugged CPUs so random plans can never starve it.
func fuzzSpec(plan *faults.Plan) scenario.Spec {
	attached := false
	return scenario.Spec{
		Name:            "fault-fuzz",
		Machine:         "homogeneous",
		Seed:            1,
		MaxSeconds:      1.5,
		SamplePeriodSec: 0.1,
		Workloads: []scenario.WorkloadSpec{
			{Kind: scenario.WorkloadSpin, Name: "spin", Seconds: 0.8, CPUs: []int{0, 3}},
		},
		Measure: &scenario.MeasureSpec{
			Workload: 0,
			Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
		},
		StepHooks: []scenario.StepHook{func(ctx *scenario.Context) {
			if !attached {
				ctx.Sim.Kernel.AttachFaults(plan)
				attached = true
			}
		}},
	}
}

// FuzzFaultPlan generates a random fault schedule per input, checks its
// structural properties, then runs it twice through the audited scenario
// harness: zero invariant violations both times, and byte-identical
// fault traces and digests across the two runs.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(7), uint8(8))
	f.Add(int64(42), uint8(1))
	f.Add(int64(-3), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, maxEvents uint8) {
		profile := fuzzProfile(int(maxEvents%12) + 1)
		plan := faults.Random(seed, profile)
		if err := plan.Validate(); err != nil {
			t.Fatalf("random plan invalid: %v", err)
		}
		evs := plan.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].AtSec < evs[i-1].AtSec {
				t.Fatalf("plan not sorted at %d: %v after %v", i, evs[i], evs[i-1])
			}
		}
		assertPlanHeals(t, evs)
		if again := faults.Random(seed, profile); !reflect.DeepEqual(evs, again.Events()) {
			t.Fatalf("same seed produced different schedules:\n%v\n%v", evs, again.Events())
		}

		run := func() (*scenario.Result, *faults.Plan) {
			p := faults.Random(seed, profile)
			res, err := scenario.Run(fuzzSpec(p))
			if err != nil {
				t.Fatalf("scenario run: %v", err)
			}
			return res, p
		}
		res1, p1 := run()
		res2, p2 := run()
		for _, v := range res1.Violations {
			t.Errorf("invariant fired under fault plan (seed %d): %s: %s", seed, v.Invariant, v.Detail)
		}
		if t1, t2 := p1.TraceString(), p2.TraceString(); t1 != t2 {
			t.Errorf("fault traces differ across identical runs:\n--- run 1\n%s\n--- run 2\n%s", t1, t2)
		}
		if res1.Digest != res2.Digest {
			t.Errorf("digests differ across identical runs: %s vs %s", res1.Digest, res2.Digest)
		}
	})
}

// assertPlanHeals replays the schedule against shadow state and checks
// every hold-type fault is paired with its release, so random plans never
// leave a machine degraded forever.
func assertPlanHeals(t *testing.T, evs []faults.Event) {
	t.Helper()
	watchdog := map[uint32]bool{}
	offline := map[int]bool{}
	budget := map[uint32]int{}
	ringCap := 0
	for _, e := range evs {
		switch e.Kind {
		case faults.KindWatchdogHold:
			watchdog[e.PMU] = true
		case faults.KindWatchdogRelease:
			delete(watchdog, e.PMU)
		case faults.KindHotplugOff:
			offline[e.CPU] = true
		case faults.KindHotplugOn:
			delete(offline, e.CPU)
		case faults.KindCounterBudget:
			if e.Cap == 0 {
				delete(budget, e.PMU)
			} else {
				budget[e.PMU] = e.Cap
			}
		case faults.KindRingCap:
			ringCap = e.Cap
		}
	}
	if len(watchdog) != 0 || len(offline) != 0 || len(budget) != 0 || ringCap != 0 {
		t.Fatalf("plan does not heal: watchdog=%v offline=%v budget=%v ringCap=%d\nschedule: %v",
			watchdog, offline, budget, ringCap, evs)
	}
}

func TestRandomPlanDeterministicAcrossSeeds(t *testing.T) {
	profile := fuzzProfile(8)
	for seed := int64(0); seed < 25; seed++ {
		a := faults.Random(seed, profile)
		b := faults.Random(seed, profile)
		if !reflect.DeepEqual(a.Events(), b.Events()) {
			t.Fatalf("seed %d: schedules differ", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestPlanPendingConsumesInOrder(t *testing.T) {
	p := faults.NewPlan(
		faults.Event{AtSec: 0.3, Kind: faults.KindRingCap, Cap: 8},
		faults.Event{AtSec: 0.1, Kind: faults.KindWatchdogHold, PMU: 6},
		faults.Event{AtSec: 0.2, Kind: faults.KindWatchdogRelease, PMU: 6},
	)
	if got := p.Pending(0.05); len(got) != 0 {
		t.Fatalf("nothing due yet, got %v", got)
	}
	if got := p.Pending(0.25); len(got) != 2 ||
		got[0].Kind != faults.KindWatchdogHold || got[1].Kind != faults.KindWatchdogRelease {
		t.Fatalf("due at 0.25: %v", got)
	}
	if p.Done() {
		t.Fatal("plan done with one event left")
	}
	if got := p.Pending(1.0); len(got) != 1 || got[0].Kind != faults.KindRingCap {
		t.Fatalf("final batch: %v", got)
	}
	if !p.Done() {
		t.Fatal("plan not done after consuming everything")
	}
	trace1 := p.TraceString()
	if trace1 == "" {
		t.Fatal("empty trace after consumption")
	}
	p.Reset()
	if p.Done() || p.TraceString() != "" {
		t.Fatal("Reset did not rewind the plan")
	}
	p.Pending(1.0)
	if p.TraceString() != trace1 {
		t.Fatalf("replayed trace differs:\n%s\nvs\n%s", p.TraceString(), trace1)
	}
}

func TestPlanValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   faults.Event
	}{
		{"negative time", faults.Event{AtSec: -1, Kind: faults.KindRingCap}},
		{"unknown kind", faults.Event{AtSec: 0, Kind: faults.Kind("explode")}},
		{"negative cap", faults.Event{AtSec: 0, Kind: faults.KindCounterBudget, Cap: -2}},
		{"negative cpu", faults.Event{AtSec: 0, Kind: faults.KindHotplugOff, CPU: -1}},
	}
	for _, tc := range cases {
		if err := faults.NewPlan(tc.ev).Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.ev)
		}
	}
	var nilPlan *faults.Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan must validate: %v", err)
	}
	if !nilPlan.Done() {
		t.Error("nil plan must be done")
	}
}
