package faults

import (
	"math"
	"testing"
)

func TestNextAt(t *testing.T) {
	var nilPlan *Plan
	if got := nilPlan.NextAt(); !math.IsInf(got, 1) {
		t.Fatalf("nil plan NextAt = %v, want +Inf", got)
	}
	if got := NewPlan().NextAt(); !math.IsInf(got, 1) {
		t.Fatalf("empty plan NextAt = %v, want +Inf", got)
	}

	p := NewPlan(
		Event{AtSec: 0.5, Kind: KindRingCap, Cap: 8},
		Event{AtSec: 0.2, Kind: KindHotplugOff, CPU: 1},
		Event{AtSec: 0.9, Kind: KindHotplugOn, CPU: 1},
	)
	if got := p.NextAt(); got != 0.2 {
		t.Fatalf("NextAt = %v, want 0.2 (earliest after sort)", got)
	}
	// Consuming events moves the horizon to the next pending one.
	if evs := p.Pending(0.5); len(evs) != 2 {
		t.Fatalf("Pending(0.5) returned %d events, want 2", len(evs))
	}
	if got := p.NextAt(); got != 0.9 {
		t.Fatalf("NextAt after consuming two = %v, want 0.9", got)
	}
	p.Pending(1)
	if got := p.NextAt(); !math.IsInf(got, 1) {
		t.Fatalf("NextAt on drained plan = %v, want +Inf", got)
	}
	// Reset rewinds the horizon with the schedule.
	p.Reset()
	if got := p.NextAt(); got != 0.2 {
		t.Fatalf("NextAt after Reset = %v, want 0.2", got)
	}
}
