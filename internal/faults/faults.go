// Package faults provides deterministic, seedable fault plans for the
// simulated perf_event substrate. A Plan is an ordered schedule of fault
// transitions — watchdog counter reservations, CPU hotplug, sampling
// ring-buffer pressure, per-PMU counter budgets — that the kernel in
// internal/perfevent consults at every syscall-shaped boundary and on
// every clock advance. The same seed always produces the same schedule
// and, because the simulation itself is deterministic, the same trace of
// applied faults; Trace() exposes that log so tests can assert
// byte-identical behavior across runs.
//
// The fault kinds map one-to-one onto the perf_event failure modes the
// paper's PAPI work has to survive on real hybrid hardware:
//
//   - KindWatchdogHold / KindWatchdogRelease model the NMI watchdog
//     taking (and later releasing) one counter of a core PMU. On PMUs
//     whose fixed-counter inventory includes the cycles counter
//     (hw.PMUSpec.FixedEvents), new cycles events fail to open with
//     EBUSY and already-open groups containing a cycles event are
//     descheduled (their time_running stalls, so reads must scale); on
//     PMUs without a fixed cycles counter the reservation consumes one
//     general-purpose counter, shrinking the schedulable capacity.
//   - KindHotplugOff / KindHotplugOn model CPU hotplug: taking a CPU
//     offline invalidates every CPU-wide event opened on it (reads
//     return ENODEV, like reading a perf fd whose CPU vanished) and new
//     opens on the CPU fail; bringing the CPU back online does NOT
//     revive dead descriptors — callers must reopen, exactly the
//     rebuild dance real tools perform.
//   - KindRingCap caps the per-event sampling ring buffer, forcing
//     overflow records to be dropped and counted as lost (the
//     PERF_RECORD_LOST path).
//   - KindCounterBudget caps the number of simultaneously schedulable
//     counters of one PMU below its physical inventory (counters held
//     by other users of the PMU); groups that no longer fit fail to
//     open with ENOSPC and open events multiplex harder.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"hetpapi/internal/spantrace"
)

// Kind identifies a fault transition.
type Kind string

// The fault transitions a plan can schedule.
const (
	// KindWatchdogHold reserves one counter of PMU (a dynamic perf type)
	// for the NMI watchdog until a matching KindWatchdogRelease.
	KindWatchdogHold Kind = "watchdog-hold"
	// KindWatchdogRelease returns the watchdog's counter on PMU.
	KindWatchdogRelease Kind = "watchdog-release"
	// KindHotplugOff takes CPU offline, invalidating its open events.
	KindHotplugOff Kind = "hotplug-off"
	// KindHotplugOn brings CPU back online (dead fds stay dead).
	KindHotplugOn Kind = "hotplug-on"
	// KindRingCap caps every sampling ring buffer at Cap records
	// (0 restores the default).
	KindRingCap Kind = "ring-cap"
	// KindCounterBudget caps PMU's schedulable counters at Cap
	// (0 restores the physical inventory).
	KindCounterBudget Kind = "counter-budget"
)

// Event is one scheduled fault transition, applied at the first kernel
// clock advance or syscall at or after AtSec.
type Event struct {
	// AtSec is the simulated time of the transition.
	AtSec float64
	// Kind selects the transition.
	Kind Kind
	// PMU is the dynamic perf type targeted by watchdog and budget
	// transitions.
	PMU uint32
	// CPU is the logical CPU targeted by hotplug transitions.
	CPU int
	// Cap parameterizes KindRingCap and KindCounterBudget.
	Cap int
}

// String renders the event in the canonical trace form.
func (e Event) String() string {
	switch e.Kind {
	case KindWatchdogHold, KindWatchdogRelease:
		return fmt.Sprintf("t=%.6f %s pmu=%d", e.AtSec, e.Kind, e.PMU)
	case KindHotplugOff, KindHotplugOn:
		return fmt.Sprintf("t=%.6f %s cpu=%d", e.AtSec, e.Kind, e.CPU)
	case KindCounterBudget:
		return fmt.Sprintf("t=%.6f %s pmu=%d cap=%d", e.AtSec, e.Kind, e.PMU, e.Cap)
	default:
		return fmt.Sprintf("t=%.6f %s cap=%d", e.AtSec, e.Kind, e.Cap)
	}
}

// TraceArgs renders the transition as span-trace annotations for the
// kernel's fault instrumentation: the kind, the scheduled time, and the
// kind-specific target (pmu/cpu/cap).
func (e Event) TraceArgs() []spantrace.Arg {
	args := []spantrace.Arg{
		spantrace.Str("kind", string(e.Kind)),
		spantrace.Num("scheduled_at", e.AtSec),
	}
	switch e.Kind {
	case KindWatchdogHold, KindWatchdogRelease:
		args = append(args, spantrace.Int("pmu", int(e.PMU)))
	case KindHotplugOff, KindHotplugOn:
		args = append(args, spantrace.Int("cpu", e.CPU))
	case KindCounterBudget:
		args = append(args, spantrace.Int("pmu", int(e.PMU)), spantrace.Int("cap", e.Cap))
	default:
		args = append(args, spantrace.Int("cap", e.Cap))
	}
	return args
}

// Plan is a deterministic fault schedule. The zero value is an empty
// plan; kernels treat a nil *Plan as "no faults". A Plan is stateful
// (it remembers which events have been consumed and logs them); use
// Reset before reusing one across runs, or build a fresh plan per run.
type Plan struct {
	events []Event
	next   int
	log    []string
}

// NewPlan builds a plan from the given events, sorted stably by AtSec
// (events at equal times keep their argument order).
func NewPlan(events ...Event) *Plan {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].AtSec < evs[j].AtSec })
	return &Plan{events: evs}
}

// Profile bounds the random schedule Random generates.
type Profile struct {
	// HorizonSec is the time window faults are scheduled within.
	HorizonSec float64
	// PMUs are the dynamic perf types watchdog/budget faults may target.
	PMUs []uint32
	// CPUs are the logical CPUs hotplug faults may target.
	CPUs []int
	// MaxEvents bounds the schedule length (default 8).
	MaxEvents int
	// MinBudget floors KindCounterBudget caps (default 1), so random
	// plans never make a PMU completely unschedulable unless asked.
	MinBudget int
}

// Random derives a fault schedule deterministically from the seed: the
// same (seed, profile) pair always yields the identical plan. Hold-type
// faults (watchdog, hotplug-off) are paired with their release within
// the horizon so random plans always heal, which keeps long property
// runs from wedging a machine forever.
func Random(seed int64, p Profile) *Plan {
	rng := rand.New(rand.NewSource(seed))
	if p.HorizonSec <= 0 {
		p.HorizonSec = 1
	}
	if p.MaxEvents <= 0 {
		p.MaxEvents = 8
	}
	if p.MinBudget <= 0 {
		p.MinBudget = 1
	}
	var evs []Event
	n := 1 + rng.Intn(p.MaxEvents)
	for i := 0; i < n && len(evs) < p.MaxEvents; i++ {
		at := rng.Float64() * p.HorizonSec * 0.8
		until := at + (0.05+rng.Float64()*0.5)*(p.HorizonSec-at)
		switch pick := rng.Intn(4); {
		case pick == 0 && len(p.PMUs) > 0:
			pmu := p.PMUs[rng.Intn(len(p.PMUs))]
			evs = append(evs,
				Event{AtSec: at, Kind: KindWatchdogHold, PMU: pmu},
				Event{AtSec: until, Kind: KindWatchdogRelease, PMU: pmu})
		case pick == 1 && len(p.CPUs) > 0:
			cpu := p.CPUs[rng.Intn(len(p.CPUs))]
			evs = append(evs,
				Event{AtSec: at, Kind: KindHotplugOff, CPU: cpu},
				Event{AtSec: until, Kind: KindHotplugOn, CPU: cpu})
		case pick == 2 && len(p.PMUs) > 0:
			pmu := p.PMUs[rng.Intn(len(p.PMUs))]
			cap := p.MinBudget + rng.Intn(4)
			evs = append(evs,
				Event{AtSec: at, Kind: KindCounterBudget, PMU: pmu, Cap: cap},
				Event{AtSec: until, Kind: KindCounterBudget, PMU: pmu, Cap: 0})
		default:
			cap := 1 << uint(rng.Intn(10)) // 1..512 records
			evs = append(evs,
				Event{AtSec: at, Kind: KindRingCap, Cap: cap},
				Event{AtSec: until, Kind: KindRingCap, Cap: 0})
		}
	}
	return NewPlan(evs...)
}

// Events returns the full schedule, in application order.
func (p *Plan) Events() []Event {
	return append([]Event(nil), p.events...)
}

// Pending returns the not-yet-applied events due at or before now, in
// schedule order, marking them consumed and appending them to the
// trace. The kernel calls this on every syscall and clock advance.
func (p *Plan) Pending(now float64) []Event {
	if p == nil || p.next >= len(p.events) || p.events[p.next].AtSec > now {
		return nil
	}
	first := p.next
	for p.next < len(p.events) && p.events[p.next].AtSec <= now {
		p.log = append(p.log, p.events[p.next].String())
		p.next++
	}
	return p.events[first:p.next]
}

// Done reports whether every scheduled event has been consumed.
func (p *Plan) Done() bool { return p == nil || p.next >= len(p.events) }

// NextAt returns the trigger time of the earliest not-yet-applied event,
// or +Inf when the plan is exhausted (or nil). Event-driven kernels use
// it to know how far they may advance before the next Pending call can
// return anything.
func (p *Plan) NextAt() float64 {
	if p == nil || p.next >= len(p.events) {
		return math.Inf(1)
	}
	return p.events[p.next].AtSec
}

// Trace returns the log of applied transitions, one canonical line per
// event, in application order. Two runs of the same plan against the
// same deterministic machine produce byte-identical traces.
func (p *Plan) Trace() []string {
	if p == nil {
		return nil
	}
	return append([]string(nil), p.log...)
}

// TraceString joins the trace with newlines (for digesting).
func (p *Plan) TraceString() string {
	return strings.Join(p.Trace(), "\n")
}

// Reset rewinds the plan for another run, clearing the trace.
func (p *Plan) Reset() {
	p.next = 0
	p.log = nil
}

// Validate checks the schedule is well-formed: times are finite and
// non-negative, kinds are known, and caps are sane.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.events {
		if e.AtSec < 0 || e.AtSec != e.AtSec {
			return fmt.Errorf("faults: event %d has invalid time %v", i, e.AtSec)
		}
		switch e.Kind {
		case KindWatchdogHold, KindWatchdogRelease, KindHotplugOff, KindHotplugOn:
		case KindRingCap, KindCounterBudget:
			if e.Cap < 0 {
				return fmt.Errorf("faults: event %d (%s) has negative cap %d", i, e.Kind, e.Cap)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %q", i, e.Kind)
		}
		if e.CPU < 0 {
			return fmt.Errorf("faults: event %d has negative cpu %d", i, e.CPU)
		}
	}
	return nil
}
