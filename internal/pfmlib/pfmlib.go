// Package pfmlib plays the role libpfm4 plays for real PAPI: it maps
// human-readable event strings like
//
//	adl_glc::INST_RETIRED:ANY
//	adl_grt::INST_RETIRED:ANY:u
//	INST_RETIRED            (searched in the default core PMUs)
//	rapl::ENERGY_PKG
//
// to the perf_event attr the kernel expects, and it reports which PMU
// models are active on a machine — including, crucially, *multiple default
// core PMUs* on hybrid systems. Section IV.C/IV.D of the paper describes
// how PAPI had to grow support for exactly that: libpfm4 historically
// reported one default core PMU, and hybrid machines have two or more.
package pfmlib

import (
	"fmt"
	"sort"
	"strings"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
)

// Info describes one active PMU model.
type Info struct {
	// Name is the pfm model name ("adl_glc").
	Name string
	// Desc is the human-readable description.
	Desc string
	// PerfType is the kernel's dynamic type id for this PMU.
	PerfType uint32
	// NumEvents is the number of native events in the model's table.
	NumEvents int
	// IsCore reports whether this is a core (cycle-counting) PMU as
	// opposed to an uncore/energy PMU.
	IsCore bool
	// IsDefault reports whether unqualified event names are searched in
	// this PMU. On hybrid machines every core PMU is a default.
	IsDefault bool
}

// EventInfo is a fully resolved event.
type EventInfo struct {
	// PMU is the pfm model name the event resolved against.
	PMU string
	// Event and Umask are the resolved parts; FullName is the canonical
	// "pmu::EVENT:UMASK" spelling.
	Event    string
	Umask    string
	FullName string
	// Kind is the counted architectural quantity.
	Kind events.Kind
	// Attr is the ready-to-open perf_event encoding.
	Attr perfevent.Attr
}

// Library resolves events for one machine.
type Library struct {
	m      *hw.Machine
	pmus   []Info
	tables map[string]*events.PMU
	types  map[string]uint32
}

// New builds the library for a machine. It fails if a core type references
// an event table that does not exist (mirroring "libpfm4 has no support for
// this PMU yet", the situation the authors hit with ARM big.LITTLE).
func New(m *hw.Machine) (*Library, error) {
	l := &Library{
		m:      m,
		tables: map[string]*events.PMU{},
		types:  map[string]uint32{},
	}
	for i := range m.Types {
		t := &m.Types[i]
		tab := events.LookupPMU(t.PfmName)
		if tab == nil {
			return nil, fmt.Errorf("pfmlib: no event table for PMU model %q (core type %s)",
				t.PfmName, t.Name)
		}
		l.tables[t.PfmName] = tab
		l.types[t.PfmName] = t.PMU.PerfType
		l.pmus = append(l.pmus, Info{
			Name:      t.PfmName,
			Desc:      tab.Desc,
			PerfType:  t.PMU.PerfType,
			NumEvents: len(tab.Events),
			IsCore:    true,
			IsDefault: true,
		})
	}
	swTab := events.LookupPMU("perf")
	l.tables["perf"] = swTab
	l.types["perf"] = perfevent.PerfTypeSoftware
	l.pmus = append(l.pmus, Info{
		Name:      "perf",
		Desc:      swTab.Desc,
		PerfType:  perfevent.PerfTypeSoftware,
		NumEvents: len(swTab.Events),
		IsCore:    false,
		IsDefault: false,
	})
	for i := range m.Uncore {
		u := &m.Uncore[i]
		tab := events.LookupPMU(u.PfmName)
		if tab == nil {
			return nil, fmt.Errorf("pfmlib: no event table for uncore PMU model %q", u.PfmName)
		}
		l.tables[u.PfmName] = tab
		l.types[u.PfmName] = u.PMU.PerfType
		l.pmus = append(l.pmus, Info{
			Name:      u.PfmName,
			Desc:      tab.Desc,
			PerfType:  u.PMU.PerfType,
			NumEvents: len(tab.Events),
			IsCore:    false,
			IsDefault: false,
		})
	}
	if m.Power.HasRAPL {
		tab := events.LookupPMU("rapl")
		l.tables["rapl"] = tab
		l.types["rapl"] = m.Power.RAPLPerfType
		l.pmus = append(l.pmus, Info{
			Name:      "rapl",
			Desc:      tab.Desc,
			PerfType:  m.Power.RAPLPerfType,
			NumEvents: len(tab.Events),
			IsCore:    false,
			IsDefault: false,
		})
	}
	return l, nil
}

// PMUs lists the active PMU models, core PMUs first.
func (l *Library) PMUs() []Info {
	out := append([]Info(nil), l.pmus...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].IsCore != out[j].IsCore {
			return out[i].IsCore
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// DefaultPMUs returns the pfm names of the default core PMUs in machine
// declaration order (Performance-class first on the paper's machines). On
// a hybrid machine this has more than one entry — the situation PAPI's
// single-default assumption could not represent.
func (l *Library) DefaultPMUs() []string {
	var out []string
	for i := range l.m.Types {
		out = append(out, l.m.Types[i].PfmName)
	}
	return out
}

// HasPMU reports whether the machine exposes the named PMU model.
func (l *Library) HasPMU(name string) bool {
	_, ok := l.tables[name]
	return ok
}

// ParseEvent resolves an event string. Accepted grammar:
//
//	[pmu::]EVENT[:UMASK][:mod...]
//
// where mod is "u" (count user) or "k" (count kernel). Without a pmu
// qualifier the event is searched in the default core PMUs in order and
// the first match wins.
func (l *Library) ParseEvent(s string) (EventInfo, error) {
	if strings.TrimSpace(s) == "" {
		return EventInfo{}, fmt.Errorf("pfmlib: empty event string")
	}
	var pmuName, rest string
	if idx := strings.Index(s, "::"); idx >= 0 {
		pmuName, rest = s[:idx], s[idx+2:]
		if pmuName == "" {
			return EventInfo{}, fmt.Errorf("pfmlib: empty PMU qualifier in %q", s)
		}
	} else {
		rest = s
	}
	if rest == "" {
		return EventInfo{}, fmt.Errorf("pfmlib: missing event name in %q", s)
	}

	if pmuName != "" {
		tab, ok := l.tables[pmuName]
		if !ok {
			return EventInfo{}, fmt.Errorf("pfmlib: unknown PMU %q in %q (active: %s)",
				pmuName, s, strings.Join(l.activeNames(), ", "))
		}
		return l.resolveIn(pmuName, tab, rest, s)
	}
	var firstErr error
	for _, name := range l.DefaultPMUs() {
		info, err := l.resolveIn(name, l.tables[name], rest, s)
		if err == nil {
			return info, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return EventInfo{}, fmt.Errorf("pfmlib: event %q not found in any default PMU: %v", s, firstErr)
}

func (l *Library) activeNames() []string {
	names := make([]string, 0, len(l.tables))
	for n := range l.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (l *Library) resolveIn(pmuName string, tab *events.PMU, rest, orig string) (EventInfo, error) {
	parts := strings.Split(rest, ":")
	evName := parts[0]
	def := tab.Lookup(evName)
	if def == nil {
		return EventInfo{}, fmt.Errorf("pfmlib: no event %q in PMU %s", evName, pmuName)
	}

	var umask *events.Umask
	attr := perfevent.Attr{Type: l.types[pmuName]}
	for _, part := range parts[1:] {
		switch part {
		case "":
			return EventInfo{}, fmt.Errorf("pfmlib: empty qualifier in %q", orig)
		case "u":
			attr.ExcludeKernel = true
		case "k":
			attr.ExcludeUser = true
		default:
			u := def.Umask(part)
			if u == nil {
				return EventInfo{}, fmt.Errorf("pfmlib: no umask or modifier %q on %s::%s",
					part, pmuName, evName)
			}
			if umask != nil {
				return EventInfo{}, fmt.Errorf("pfmlib: multiple umasks in %q", orig)
			}
			umask = u
		}
	}
	if umask == nil {
		umask = def.DefaultUmask()
	}

	info := EventInfo{
		PMU:   pmuName,
		Event: evName,
	}
	var bits uint64
	kind := def.Kind
	if umask != nil {
		bits = umask.Bits
		kind = umask.Kind
		info.Umask = umask.Name
		info.FullName = fmt.Sprintf("%s::%s:%s", pmuName, evName, umask.Name)
	} else {
		info.FullName = fmt.Sprintf("%s::%s", pmuName, evName)
	}
	attr.Config = events.Encode(def.Code, bits)
	info.Attr = attr
	info.Kind = kind
	return info, nil
}

// EventsForPMU lists the canonical event:umask names of one PMU model,
// sorted — the papi_native_avail view.
func (l *Library) EventsForPMU(pmuName string) ([]string, error) {
	tab, ok := l.tables[pmuName]
	if !ok {
		return nil, fmt.Errorf("pfmlib: unknown PMU %q", pmuName)
	}
	var out []string
	for _, d := range tab.Events {
		if len(d.Umasks) == 0 {
			out = append(out, fmt.Sprintf("%s::%s", pmuName, d.Name))
			continue
		}
		for _, u := range d.Umasks {
			out = append(out, fmt.Sprintf("%s::%s:%s", pmuName, d.Name, u.Name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// AllEvents lists every resolvable event on the machine, sorted.
func (l *Library) AllEvents() []string {
	var out []string
	for name := range l.tables {
		evs, _ := l.EventsForPMU(name)
		out = append(out, evs...)
	}
	sort.Strings(out)
	return out
}
