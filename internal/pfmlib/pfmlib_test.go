package pfmlib

import (
	"strings"
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
)

func lib(t *testing.T, m *hw.Machine) *Library {
	t.Helper()
	l, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMultipleDefaultPMUs(t *testing.T) {
	// Section IV.D: on Raptor Lake libpfm4 must report BOTH core PMUs as
	// defaults.
	l := lib(t, hw.RaptorLake())
	defaults := l.DefaultPMUs()
	if len(defaults) != 2 || defaults[0] != "adl_glc" || defaults[1] != "adl_grt" {
		t.Fatalf("DefaultPMUs = %v, want [adl_glc adl_grt]", defaults)
	}
	// Homogeneous machine: exactly one default.
	if d := lib(t, hw.Homogeneous()).DefaultPMUs(); len(d) != 1 || d[0] != "skl" {
		t.Fatalf("homogeneous defaults = %v", d)
	}
}

func TestPMUListing(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	pmus := l.PMUs()
	if len(pmus) != 5 {
		t.Fatalf("PMUs = %+v, want 5 (glc, grt, imc, perf, rapl)", pmus)
	}
	if !pmus[0].IsCore || !pmus[1].IsCore || pmus[2].IsCore || pmus[3].IsCore || pmus[4].IsCore {
		t.Fatal("core PMUs must sort first")
	}
	if pmus[2].Name != "adl_imc" || pmus[2].IsDefault {
		t.Fatalf("imc listing wrong: %+v", pmus[2])
	}
	if pmus[3].Name != "perf" || pmus[3].IsDefault {
		t.Fatalf("software listing wrong: %+v", pmus[3])
	}
	if pmus[4].Name != "rapl" || pmus[4].IsDefault {
		t.Fatalf("rapl listing wrong: %+v", pmus[4])
	}
	// ARM machine: no RAPL PMU.
	arm := lib(t, hw.OrangePi800())
	for _, p := range arm.PMUs() {
		if p.Name == "rapl" {
			t.Fatal("OrangePi must not expose rapl")
		}
	}
	if !arm.HasPMU("arm_cortex_a72") || arm.HasPMU("adl_glc") {
		t.Fatal("HasPMU wrong for ARM")
	}
}

func TestParseQualifiedEvent(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	info, err := l.ParseEvent("adl_glc::INST_RETIRED:ANY")
	if err != nil {
		t.Fatal(err)
	}
	if info.PMU != "adl_glc" || info.Event != "INST_RETIRED" || info.Umask != "ANY" {
		t.Fatalf("parse = %+v", info)
	}
	if info.Kind != events.KindInstructions {
		t.Fatalf("kind = %v", info.Kind)
	}
	if info.Attr.Type != 8 {
		t.Fatalf("attr type = %d, want 8 (cpu_core)", info.Attr.Type)
	}
	if info.FullName != "adl_glc::INST_RETIRED:ANY" {
		t.Fatalf("full name = %q", info.FullName)
	}
	// The paper's E-core spelling resolves to the cpu_atom perf type.
	info, err = l.ParseEvent("adl_grt::INST_RETIRED:ANY")
	if err != nil {
		t.Fatal(err)
	}
	if info.Attr.Type != 10 {
		t.Fatalf("E attr type = %d, want 10 (cpu_atom)", info.Attr.Type)
	}
}

func TestParseDefaultUmask(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	info, err := l.ParseEvent("adl_glc::INST_RETIRED")
	if err != nil {
		t.Fatal(err)
	}
	if info.Umask != "ANY" {
		t.Fatalf("default umask = %q, want ANY", info.Umask)
	}
	// ARM events have no umasks at all.
	arm := lib(t, hw.OrangePi800())
	info, err = arm.ParseEvent("arm_cortex_a72::INST_RETIRED")
	if err != nil {
		t.Fatal(err)
	}
	if info.Umask != "" || info.FullName != "arm_cortex_a72::INST_RETIRED" {
		t.Fatalf("ARM event = %+v", info)
	}
}

func TestParseUnqualifiedSearchesDefaults(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	// INST_RETIRED exists on both defaults; first (P-core) wins.
	info, err := l.ParseEvent("INST_RETIRED:ANY")
	if err != nil {
		t.Fatal(err)
	}
	if info.PMU != "adl_glc" {
		t.Fatalf("unqualified resolved to %s, want adl_glc (first default)", info.PMU)
	}
	// TOPDOWN exists only on the P-core PMU.
	if info, err := l.ParseEvent("TOPDOWN:SLOTS"); err != nil || info.PMU != "adl_glc" {
		t.Fatalf("TOPDOWN: %+v, %v", info, err)
	}
	// MEM_UOPS_RETIRED exists only on the E-core PMU; search must fall
	// through to the second default.
	info, err = l.ParseEvent("MEM_UOPS_RETIRED:ALL_LOADS")
	if err != nil {
		t.Fatal(err)
	}
	if info.PMU != "adl_grt" {
		t.Fatalf("resolved to %s, want adl_grt", info.PMU)
	}
	// RAPL is not a default: unqualified energy events must not resolve.
	if _, err := l.ParseEvent("ENERGY_PKG"); err == nil {
		t.Fatal("unqualified ENERGY_PKG must not resolve")
	}
	if _, err := l.ParseEvent("rapl::ENERGY_PKG"); err != nil {
		t.Fatalf("qualified rapl event: %v", err)
	}
}

func TestParseModifiers(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	info, err := l.ParseEvent("adl_glc::INST_RETIRED:ANY:u")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Attr.ExcludeKernel || info.Attr.ExcludeUser {
		t.Fatalf("user modifier: %+v", info.Attr)
	}
	info, err = l.ParseEvent("adl_glc::INST_RETIRED:k")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Attr.ExcludeUser {
		t.Fatalf("kernel modifier: %+v", info.Attr)
	}
}

func TestParseErrors(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	for _, bad := range []string{
		"",
		"   ",
		"::INST_RETIRED",
		"adl_glc::",
		"nosuchpmu::INST_RETIRED",
		"adl_glc::NO_SUCH_EVENT",
		"adl_glc::INST_RETIRED:NO_SUCH_UMASK",
		"adl_glc::INST_RETIRED:ANY:NOP", // two umasks
		"adl_glc::INST_RETIRED::u",      // empty qualifier
		"NO_SUCH_EVENT_ANYWHERE",
		"adl_grt::TOPDOWN:SLOTS", // P-only event on the E PMU
	} {
		if _, err := l.ParseEvent(bad); err == nil {
			t.Errorf("ParseEvent(%q) accepted invalid input", bad)
		}
	}
}

func TestEventEnumeration(t *testing.T) {
	l := lib(t, hw.RaptorLake())
	evs, err := l.EventsForPMU("adl_glc")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 30 {
		t.Fatalf("adl_glc lists %d events, expected a rich table", len(evs))
	}
	for _, e := range evs {
		if !strings.HasPrefix(e, "adl_glc::") {
			t.Fatalf("bad listing entry %q", e)
		}
		if _, err := l.ParseEvent(e); err != nil {
			t.Errorf("listed event %q does not parse back: %v", e, err)
		}
	}
	all := l.AllEvents()
	if len(all) <= len(evs) {
		t.Fatal("AllEvents must cover more than one PMU")
	}
	if _, err := l.EventsForPMU("bogus"); err == nil {
		t.Fatal("unknown PMU must error")
	}
}

func TestNewFailsWithoutEventTable(t *testing.T) {
	m := hw.RaptorLake()
	m.Types[0].PfmName = "unsupported_uarch"
	if _, err := New(m); err == nil {
		t.Fatal("New must fail when libpfm4 lacks the PMU model (the ARM situation in IV.C)")
	}
}
