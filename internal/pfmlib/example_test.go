package pfmlib_test

import (
	"fmt"
	"log"

	"hetpapi/internal/hw"
	"hetpapi/internal/pfmlib"
)

// Example shows event-string resolution on a hybrid machine: qualified
// names pick a PMU, unqualified names search every default core PMU.
func Example() {
	lib, err := pfmlib.New(hw.RaptorLake())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []string{
		"adl_grt::INST_RETIRED:ANY",  // the paper's E-core spelling
		"MEM_UOPS_RETIRED:ALL_LOADS", // exists only on the E-core PMU
		"TOPDOWN:SLOTS",              // exists only on the P-core PMU
	} {
		info, err := lib.ParseEvent(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %s (perf type %d)\n", s, info.FullName, info.Attr.Type)
	}
	// Output:
	// adl_grt::INST_RETIRED:ANY    -> adl_grt::INST_RETIRED:ANY (perf type 10)
	// MEM_UOPS_RETIRED:ALL_LOADS   -> adl_grt::MEM_UOPS_RETIRED:ALL_LOADS (perf type 10)
	// TOPDOWN:SLOTS                -> adl_glc::TOPDOWN:SLOTS (perf type 8)
}

// ExampleLibrary_DefaultPMUs shows the multiple-defaults situation of
// section IV.D: hybrid machines report one default core PMU per type.
func ExampleLibrary_DefaultPMUs() {
	hybrid, _ := pfmlib.New(hw.RaptorLake())
	fmt.Println("raptorlake:", hybrid.DefaultPMUs())
	tri, _ := pfmlib.New(hw.Dimensity9000())
	fmt.Println("dimensity: ", tri.DefaultPMUs())
	plain, _ := pfmlib.New(hw.Homogeneous())
	fmt.Println("homogeneous:", plain.DefaultPMUs())
	// Output:
	// raptorlake: [adl_glc adl_grt]
	// dimensity:  [arm_cortex_a510 arm_cortex_a710 arm_cortex_x2]
	// homogeneous: [skl]
}
