package pfmlib

import (
	"testing"

	"hetpapi/internal/hw"
)

// FuzzParseEvent checks the event-string parser never panics and that any
// accepted string round-trips through its canonical FullName.
func FuzzParseEvent(f *testing.F) {
	for _, seed := range []string{
		"adl_glc::INST_RETIRED:ANY",
		"adl_grt::INST_RETIRED",
		"INST_RETIRED:ANY:u",
		"rapl::ENERGY_PKG",
		"perf::CONTEXT_SWITCHES",
		"::",
		":::",
		"a::b:c:d:e",
		"TOPDOWN:SLOTS",
		"adl_glc::",
		"\x00",
		"adl_glc::INST_RETIRED:ANY:k:u",
		// ARM PMU spellings (the OrangePi / Dimensity event tables).
		"arm_cortex_a53::CPU_CYCLES",
		"arm_cortex_a72::L2D_CACHE_REFILL",
		"armv9_cortex_x2::INST_RETIRED",
		// Qualifier and case torture.
		"adl_glc::inst_retired:any",
		"ADL_GLC::INST_RETIRED",
		"adl_glc::INST_RETIRED:ANY:ANY",
		"adl_glc::INST_RETIRED::",
		"adl_glc:INST_RETIRED",
		"rapl::ENERGY_PKG:u",
		"perf::CONTEXT_SWITCHES:k",
		"LONGEST_LAT_CACHE:MISS",
		"LONGEST_LAT_CACHE:REFERENCE:u:k",
		"=", "a=b", "adl_glc::INST_RETIRED:umask=3",
		"adl_glc\xff::INST_RETIRED",
		"::INST_RETIRED",
	} {
		f.Add(seed)
	}
	l, err := New(hw.RaptorLake())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, s string) {
		info, err := l.ParseEvent(s)
		if err != nil {
			return
		}
		// Accepted events must re-parse to the same encoding.
		again, err := l.ParseEvent(info.FullName)
		if err != nil {
			t.Fatalf("canonical name %q of %q does not parse: %v", info.FullName, s, err)
		}
		if again.Attr.Type != info.Attr.Type || again.Attr.Config != info.Attr.Config {
			t.Fatalf("round trip changed encoding: %q -> %+v vs %+v", s, info.Attr, again.Attr)
		}
	})
}
