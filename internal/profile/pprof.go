package profile

// pprof profile.proto export, encoded from scratch. The pprof wire format
// is an ordinary protobuf message (github.com/google/pprof/proto/profile.proto);
// the subset a statistical profile needs is small enough to hand-roll with
// a varint encoder:
//
//	Profile:  sample_type=1 ValueType*, sample=2 Sample*, location=4
//	          Location*, function=5 Function*, string_table=6 string*,
//	          duration_nanos=10, period_type=11 ValueType, period=12
//	ValueType: type=1 (string index), unit=2 (string index)
//	Sample:   location_id=1 uint64* (leaf first), value=2 int64*,
//	          label=3 Label*
//	Label:    key=1, str=2, num=3, num_unit=4 (string indices / int64)
//	Location: id=1, line=4 Line*
//	Line:     function_id=1
//	Function: id=1, name=2 (string index)
//
// Every bucket becomes one Sample with the synthetic stack core type →
// phase → cpu (leaf last in the flamegraph sense, so leaf-first location
// order starts at the cpu frame), three values (sample count, scaled
// event weight, estimated busy nanoseconds) and string labels for
// machine-readable filtering. The output is gzipped, as `go tool pprof`
// expects.

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"strings"
)

// protobuf wire types.
const (
	wireVarint = 0
	wireBytes  = 2
)

type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// uint emits a varint field, skipping proto3 zero defaults.
func (p *protoBuf) uint(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, wireVarint)
	p.varint(v)
}

// int emits a non-negative int64 varint field.
func (p *protoBuf) int(field int, v int64) {
	if v < 0 {
		v = 0
	}
	p.uint(field, uint64(v))
}

func (p *protoBuf) bytes(field int, b []byte) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) str(field int, s string) { p.bytes(field, []byte(s)) }

// strTable interns strings into the profile.proto string table; index 0
// is the mandatory empty string.
type strTable struct {
	idx  map[string]int64
	list []string
}

func newStrTable() *strTable {
	return &strTable{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strTable) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

func valueType(strs *strTable, typ, unit string) []byte {
	var b protoBuf
	b.int(1, strs.id(typ))
	b.int(2, strs.id(unit))
	return b.b
}

func label(strs *strTable, key, str string, num int64, numUnit string) []byte {
	var b protoBuf
	b.int(1, strs.id(key))
	if str != "" {
		b.int(2, strs.id(str))
	} else {
		b.int(3, num)
		if numUnit != "" {
			b.int(4, strs.id(numUnit))
		}
	}
	return b.b
}

// clampNanos converts seconds to int64 nanoseconds, guarding non-finite
// input (fuzzed profiles) so the encoding never emits garbage.
func clampNanos(sec float64) int64 {
	ns := sec * 1e9
	if math.IsNaN(ns) || ns < 0 {
		return 0
	}
	if ns > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(ns)
}

// clampWeight rounds a scaled weight to int64, guarding non-finite input.
func clampWeight(w float64) int64 {
	if math.IsNaN(w) || w < 0 {
		return 0
	}
	if w > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(math.Round(w))
}

// encodeProto serializes the profile as uncompressed profile.proto bytes.
func (p *Profile) encodeProto() []byte {
	strs := newStrTable()
	var out protoBuf

	event := p.Event
	if event == "" {
		event = "events"
	}
	// sample_type: count of retained records, the scaled event weight and
	// the frequency-converted busy time.
	out.bytes(1, valueType(strs, "samples", "count"))
	out.bytes(1, valueType(strs, event, "count"))
	out.bytes(1, valueType(strs, "time", "nanoseconds"))

	// One synthetic function+location per distinct frame name.
	locID := map[string]uint64{}
	var locOrder []string
	locOf := func(frame string) uint64 {
		if id, ok := locID[frame]; ok {
			return id
		}
		id := uint64(len(locOrder) + 1)
		locID[frame] = id
		locOrder = append(locOrder, frame)
		return id
	}

	for _, k := range p.sortedKeys() {
		b := p.Buckets[k]
		frames := k.frames()
		var smp protoBuf
		// location_id is leaf-first: reverse the root-first frame order.
		for i := len(frames) - 1; i >= 0; i-- {
			smp.uint(1, locOf(frames[i]))
		}
		var vals protoBuf
		vals.varint(uint64(b.Samples))
		vals.varint(uint64(clampWeight(b.Weight)))
		vals.varint(uint64(clampNanos(b.BusySec)))
		smp.bytes(2, vals.b)
		smp.bytes(3, label(strs, "core_type", k.CoreType, 0, ""))
		if k.Phase != "" {
			smp.bytes(3, label(strs, "phase", k.Phase, 0, ""))
		}
		smp.bytes(3, label(strs, "cpu", "", int64(k.CPU), ""))
		out.bytes(2, smp.b)
	}

	for i, frame := range locOrder {
		id := uint64(i + 1)
		var fn protoBuf
		fn.uint(1, id)
		fn.int(2, strs.id(frame))
		out.bytes(5, fn.b)
		var line protoBuf
		line.uint(1, id)
		var loc protoBuf
		loc.uint(1, id)
		loc.bytes(4, line.b)
		out.bytes(4, loc.b)
	}

	// Comments (field 13, string indices) carry the statistical metadata
	// profile.proto has no slot for — the lost-sample accounting behind
	// the error bound — so a written profile round-trips it. `go tool
	// pprof -comments` shows them. Intern before the table serializes.
	comments := []int64{strs.id(fmt.Sprintf(
		"hetpapiprof: emitted=%d lost=%d rings=%d", p.Emitted, p.Lost, p.Rings))}
	if len(p.MissingPMUs) > 0 {
		comments = append(comments,
			strs.id("hetpapiprof: missing-pmus="+strings.Join(p.MissingPMUs, ",")))
	}

	for _, s := range strs.list {
		out.str(6, s)
	}
	out.int(10, clampNanos(p.DurationSec))
	out.bytes(11, valueType(strs, event, "count"))
	out.int(12, int64(p.Period))
	for _, c := range comments {
		out.int(13, c)
	}
	return out.b
}

// WritePprof writes the profile as a gzipped profile.proto stream, the
// format `go tool pprof` opens directly.
func WritePprof(w io.Writer, p *Profile) error {
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.encodeProto()); err != nil {
		return fmt.Errorf("pprof export: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("pprof export: %w", err)
	}
	return nil
}
