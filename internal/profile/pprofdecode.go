package profile

// Minimal profile.proto decoder, the verification half of the hand-rolled
// exporter: tests (and the fuzz harness) gunzip an exported profile,
// decode it with this independent parser and check that the samples,
// stacks and string table round-trip. It is not a general protobuf
// implementation — just enough wire-format walking for the fields the
// exporter emits, with the strictness a verifier needs (truncated varints,
// overrunning lengths and unknown wire types are errors).

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
)

// DecodedValueType is a decoded ValueType message.
type DecodedValueType struct {
	Type, Unit string
}

// DecodedLabel is a decoded Sample label.
type DecodedLabel struct {
	Key string
	Str string
	Num int64
}

// DecodedSample is a decoded Sample with location ids resolved to frame
// names (leaf first, as encoded).
type DecodedSample struct {
	Stack  []string
	Values []int64
	Labels []DecodedLabel
}

// DecodedProfile is the decoder's view of a profile.proto stream.
type DecodedProfile struct {
	SampleTypes   []DecodedValueType
	Samples       []DecodedSample
	Strings       []string
	DurationNanos int64
	PeriodType    DecodedValueType
	Period        int64
	// Comments are the profile's comment strings (the exporter stashes
	// lost-sample metadata here).
	Comments []string
	// Locations maps location id to frame name (via its function).
	Locations map[uint64]string
}

type reader struct {
	b   []byte
	pos int
}

var errTruncated = errors.New("pprof decode: truncated message")

func (r *reader) varint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if r.pos >= len(r.b) {
			return 0, errTruncated
		}
		c := r.b[r.pos]
		r.pos++
		v |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("pprof decode: varint overflow")
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, errTruncated
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// field reads one tagged field, returning its number and either a varint
// value or a bytes payload.
func (r *reader) field() (num int, v uint64, payload []byte, err error) {
	tag, err := r.varint()
	if err != nil {
		return 0, 0, nil, err
	}
	num, wire := int(tag>>3), int(tag&7)
	if num == 0 {
		return 0, 0, nil, errors.New("pprof decode: field number 0")
	}
	switch wire {
	case wireVarint:
		v, err = r.varint()
		return num, v, nil, err
	case wireBytes:
		payload, err = r.bytes()
		return num, 0, payload, err
	default:
		return 0, 0, nil, fmt.Errorf("pprof decode: unsupported wire type %d", wire)
	}
}

func decodeValueType(b []byte, strs []string) (DecodedValueType, error) {
	var vt DecodedValueType
	r := &reader{b: b}
	for r.pos < len(r.b) {
		num, v, _, err := r.field()
		if err != nil {
			return vt, err
		}
		s, err := strAt(strs, v)
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			vt.Type = s
		case 2:
			vt.Unit = s
		}
	}
	return vt, nil
}

func strAt(strs []string, idx uint64) (string, error) {
	if idx >= uint64(len(strs)) {
		return "", fmt.Errorf("pprof decode: string index %d out of table (%d entries)", idx, len(strs))
	}
	return strs[idx], nil
}

// packedOrOne appends either a packed payload's varints or a single
// varint value to dst.
func packedOrOne(dst []uint64, v uint64, payload []byte) ([]uint64, error) {
	if payload == nil {
		return append(dst, v), nil
	}
	r := &reader{b: payload}
	for r.pos < len(r.b) {
		x, err := r.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, x)
	}
	return dst, nil
}

type rawSample struct {
	locIDs []uint64
	values []int64
	labels [][]byte
}

// DecodePprof gunzips and decodes an exported profile.
func DecodePprof(r io.Reader) (*DecodedProfile, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("pprof decode: %w", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("pprof decode: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("pprof decode: %w", err)
	}
	return decodeProfile(raw)
}

func decodeProfile(raw []byte) (*DecodedProfile, error) {
	p := &DecodedProfile{Locations: map[uint64]string{}}
	var sampleTypes, samples, locations, functions [][]byte
	var periodType []byte
	var commentIdx []uint64
	rd := &reader{b: raw}
	for rd.pos < len(rd.b) {
		num, v, payload, err := rd.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1:
			sampleTypes = append(sampleTypes, payload)
		case 2:
			samples = append(samples, payload)
		case 4:
			locations = append(locations, payload)
		case 5:
			functions = append(functions, payload)
		case 6:
			p.Strings = append(p.Strings, string(payload))
		case 10:
			p.DurationNanos = int64(v)
		case 11:
			periodType = payload
		case 12:
			p.Period = int64(v)
		case 13:
			commentIdx = append(commentIdx, v)
		}
	}
	if len(p.Strings) == 0 || p.Strings[0] != "" {
		return nil, errors.New("pprof decode: string table must start with the empty string")
	}
	for _, idx := range commentIdx {
		s, err := strAt(p.Strings, idx)
		if err != nil {
			return nil, err
		}
		p.Comments = append(p.Comments, s)
	}

	for _, b := range sampleTypes {
		vt, err := decodeValueType(b, p.Strings)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, vt)
	}
	if periodType != nil {
		vt, err := decodeValueType(periodType, p.Strings)
		if err != nil {
			return nil, err
		}
		p.PeriodType = vt
	}

	funcName := map[uint64]string{}
	for _, b := range functions {
		r := &reader{b: b}
		var id uint64
		var name string
		for r.pos < len(r.b) {
			num, v, _, err := r.field()
			if err != nil {
				return nil, err
			}
			switch num {
			case 1:
				id = v
			case 2:
				s, err := strAt(p.Strings, v)
				if err != nil {
					return nil, err
				}
				name = s
			}
		}
		funcName[id] = name
	}
	for _, b := range locations {
		r := &reader{b: b}
		var id, fnID uint64
		for r.pos < len(r.b) {
			num, v, payload, err := r.field()
			if err != nil {
				return nil, err
			}
			switch num {
			case 1:
				id = v
			case 4:
				lr := &reader{b: payload}
				for lr.pos < len(lr.b) {
					lnum, lv, _, err := lr.field()
					if err != nil {
						return nil, err
					}
					if lnum == 1 {
						fnID = lv
					}
				}
			}
		}
		name, ok := funcName[fnID]
		if !ok {
			return nil, fmt.Errorf("pprof decode: location %d references unknown function %d", id, fnID)
		}
		p.Locations[id] = name
	}

	for _, b := range samples {
		rs := rawSample{}
		r := &reader{b: b}
		for r.pos < len(r.b) {
			num, v, payload, err := r.field()
			if err != nil {
				return nil, err
			}
			switch num {
			case 1:
				if rs.locIDs, err = packedOrOne(rs.locIDs, v, payload); err != nil {
					return nil, err
				}
			case 2:
				var vals []uint64
				if vals, err = packedOrOne(nil, v, payload); err != nil {
					return nil, err
				}
				for _, x := range vals {
					rs.values = append(rs.values, int64(x))
				}
			case 3:
				rs.labels = append(rs.labels, payload)
			}
		}
		ds := DecodedSample{Values: rs.values}
		for _, id := range rs.locIDs {
			name, ok := p.Locations[id]
			if !ok {
				return nil, fmt.Errorf("pprof decode: sample references unknown location %d", id)
			}
			ds.Stack = append(ds.Stack, name)
		}
		for _, lb := range rs.labels {
			lab := DecodedLabel{}
			lr := &reader{b: lb}
			for lr.pos < len(lr.b) {
				num, v, _, err := lr.field()
				if err != nil {
					return nil, err
				}
				switch num {
				case 1:
					if lab.Key, err = strAt(p.Strings, v); err != nil {
						return nil, err
					}
				case 2:
					if lab.Str, err = strAt(p.Strings, v); err != nil {
						return nil, err
					}
				case 3:
					lab.Num = int64(v)
				}
			}
			ds.Labels = append(ds.Labels, lab)
		}
		p.Samples = append(p.Samples, ds)
	}
	return p, nil
}

// FromDecoded reconstructs a Profile from a decoded export: buckets from
// the sample labels and values, and the lost-sample accounting from the
// exporter's comment strings — so a .pb.gz written by WritePprof reports
// and diffs with the same error bound as the live profile.
func FromDecoded(d *DecodedProfile) (*Profile, error) {
	p := New(d.PeriodType.Type, uint64(d.Period))
	p.DurationSec = float64(d.DurationNanos) / 1e9
	var emitted uint64
	for i, s := range d.Samples {
		if len(s.Values) != 3 {
			return nil, fmt.Errorf("pprof decode: sample %d has %d values, want 3", i, len(s.Values))
		}
		k := Key{CPU: -1}
		for _, lb := range s.Labels {
			switch lb.Key {
			case "core_type":
				k.CoreType = lb.Str
			case "phase":
				k.Phase = lb.Str
			case "cpu":
				k.CPU = int(lb.Num)
			}
		}
		if k.CoreType == "" {
			return nil, fmt.Errorf("pprof decode: sample %d has no core_type label", i)
		}
		b := p.Buckets[k]
		if b == nil {
			b = &Bucket{}
			p.Buckets[k] = b
		}
		b.Samples += int(s.Values[0])
		b.Weight += float64(s.Values[1])
		b.BusySec += float64(s.Values[2]) / 1e9
		emitted += uint64(s.Values[0])
	}
	p.Emitted = emitted
	for _, c := range d.Comments {
		if rest, ok := strings.CutPrefix(c, "hetpapiprof: missing-pmus="); ok {
			p.MissingPMUs = strings.Split(rest, ",")
			continue
		}
		var e, l uint64
		var r int
		if _, err := fmt.Sscanf(c, "hetpapiprof: emitted=%d lost=%d rings=%d", &e, &l, &r); err == nil {
			p.Emitted, p.Lost, p.Rings = e, l, r
		}
	}
	return p, nil
}
