package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hetpapi/internal/perfevent"
)

// mkSamples builds n samples with identical attribution.
func mkSamples(n int, coreType, phase string, cpu int, period uint64, freqMHz float64) []perfevent.Sample {
	out := make([]perfevent.Sample, n)
	for i := range out {
		out[i] = perfevent.Sample{
			TimeSec: float64(i) * 0.001, CPU: cpu, CoreType: coreType,
			Phase: phase, Period: period, FreqMHz: freqMHz,
		}
	}
	return out
}

func TestAddRingScalesLostWeight(t *testing.T) {
	p := New("cycles", 1000)
	p.Rings = 1
	// 50 retained, 50 lost: each survivor stands for 2 overflows.
	p.AddRing(mkSamples(50, "P-core", "", 0, 1000, 1000), 50)
	b := p.Buckets[Key{CoreType: "P-core", CPU: 0}]
	if b == nil {
		t.Fatal("no bucket")
	}
	if b.Samples != 50 {
		t.Fatalf("samples = %d", b.Samples)
	}
	// Scaled weight = 50 * 1000 * (1 + 50/50) = 100000 — the true count.
	if b.Weight != 100_000 {
		t.Fatalf("weight = %g, want 100000", b.Weight)
	}
	// Busy = 100000 cycles at 1000 MHz = 100 us.
	if math.Abs(b.BusySec-1e-4) > 1e-12 {
		t.Fatalf("busy = %g, want 1e-4", b.BusySec)
	}
	if p.Emitted != 50 || p.Lost != 50 {
		t.Fatalf("emitted/lost = %d/%d", p.Emitted, p.Lost)
	}
}

func TestAddRingAllLost(t *testing.T) {
	p := New("cycles", 1000)
	p.AddRing(nil, 30)
	if p.Lost != 30 || p.Emitted != 0 || len(p.Buckets) != 0 {
		t.Fatalf("all-lost drain mishandled: %+v", p)
	}
	if p.ErrorBound() != 1 {
		t.Fatalf("bound with no retained samples = %g, want 1", p.ErrorBound())
	}
}

func TestSharesAndPhaseShares(t *testing.T) {
	p := New("cycles", 1000)
	p.Rings = 2
	// P-core: 3x the busy time of E-core (same freq, 3x samples).
	p.AddRing(mkSamples(300, "P-core", "compute", 0, 1000, 2000), 0)
	p.AddRing(mkSamples(100, "E-core", "init", 16, 1000, 2000), 0)
	shares := p.Shares()
	if math.Abs(shares["P-core"]-0.75) > 1e-9 || math.Abs(shares["E-core"]-0.25) > 1e-9 {
		t.Fatalf("shares = %v", shares)
	}
	ph := p.PhaseShares()
	if math.Abs(ph["compute"]-0.75) > 1e-9 || math.Abs(ph["init"]-0.25) > 1e-9 {
		t.Fatalf("phase shares = %v", ph)
	}
}

func TestSharesWeightFallbackWithoutFreq(t *testing.T) {
	// Samples with no frequency context (no OnSampleContext provider):
	// shares fall back to raw weight.
	p := New("cycles", 1000)
	p.AddRing(mkSamples(60, "big", "", 4, 1000, 0), 0)
	p.AddRing(mkSamples(40, "little", "", 0, 1000, 0), 0)
	if p.TotalBusySec() != 0 {
		t.Fatalf("busy should be 0 without freq, got %g", p.TotalBusySec())
	}
	shares := p.Shares()
	if math.Abs(shares["big"]-0.6) > 1e-9 {
		t.Fatalf("weight-fallback shares = %v", shares)
	}
}

func TestErrorBoundWidensWithLoss(t *testing.T) {
	clean := New("cycles", 1000)
	clean.Rings = 1
	clean.AddRing(mkSamples(10_000, "P-core", "", 0, 1000, 3000), 0)

	lossy := New("cycles", 1000)
	lossy.Rings = 1
	lossy.AddRing(mkSamples(10_000, "P-core", "", 0, 1000, 3000), 5_000)

	cb, lb := clean.ErrorBound(), lossy.ErrorBound()
	if cb >= lb {
		t.Fatalf("bound did not widen with loss: clean %g, lossy %g", cb, lb)
	}
	// The lossy bound must include the lost fraction (1/3 of overflows).
	if lb < 1.0/3 {
		t.Fatalf("lossy bound %g below lost fraction", lb)
	}
	if cb <= 0 || cb >= 0.1 {
		t.Fatalf("clean bound %g outside plausible range", cb)
	}
}

func TestErrorBoundCapsAtOne(t *testing.T) {
	p := New("cycles", 1000)
	p.Rings = 5
	p.AddRing(mkSamples(1, "P-core", "", 0, 1000, 0), 1_000_000)
	if p.ErrorBound() != 1 {
		t.Fatalf("bound = %g, want capped at 1", p.ErrorBound())
	}
}

func TestTopSortsAndFilters(t *testing.T) {
	p := New("cycles", 1000)
	p.AddRing(mkSamples(300, "P-core", "a", 0, 1000, 2000), 0)
	p.AddRing(mkSamples(100, "P-core", "b", 2, 1000, 2000), 0)
	p.AddRing(mkSamples(200, "E-core", "a", 16, 1000, 2000), 0)
	all := p.Top(0, "")
	if len(all) != 3 || all[0].CPU != 0 || all[1].CPU != 16 || all[2].CPU != 2 {
		t.Fatalf("top order wrong: %+v", all)
	}
	ponly := p.Top(1, "P-core")
	if len(ponly) != 1 || ponly[0].Phase != "a" {
		t.Fatalf("filtered top wrong: %+v", ponly)
	}
	if got := p.CoreTypes(); len(got) != 2 || got[0] != "E-core" || got[1] != "P-core" {
		t.Fatalf("core types = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New("cycles", 1000)
	p.AddRing(mkSamples(10, "P-core", "", 0, 1000, 1000), 0)
	q := p.Clone()
	q.Buckets[Key{CoreType: "P-core", CPU: 0}].Weight = 0
	if p.Buckets[Key{CoreType: "P-core", CPU: 0}].Weight == 0 {
		t.Fatal("clone shares bucket storage")
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	p := New("cycles", 1000)
	p.AddRing(mkSamples(2, "P-core", "compute", 3, 1000, 0), 0)
	p.AddRing(mkSamples(1, "E-core", "", 16, 1000, 0), 0)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, p); err != nil {
		t.Fatal(err)
	}
	want := "E-core;cpu16 1000\nP-core;compute;cpu3 2000\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", buf.String(), want)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed folded line %q", line)
		}
	}
}
