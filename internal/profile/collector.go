package profile

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetpapi/internal/events"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/scenario"
	"hetpapi/internal/sim"
)

// Config parameterizes a Collector.
type Config struct {
	// Period is the sampling period in cycles (default 2,000,000 — about
	// one overflow per simulator tick per busy task at GHz-range clocks).
	// Must be at least perfevent.MinSamplePeriod.
	Period uint64
	// DrainEveryTicks is the ring-drain cadence (default 32 ticks). Rings
	// are sized far above one cadence's worth of overflow records, so the
	// cadence trades drain syscall frequency against ring residency, not
	// against loss.
	DrainEveryTicks int
}

func (c *Config) fill() {
	if c.Period == 0 {
		c.Period = 2_000_000
	}
	if c.DrainEveryTicks <= 0 {
		c.DrainEveryTicks = 32
	}
}

// ring is one open sampling descriptor (one task on one core-type PMU).
type ring struct {
	fd       int
	pid      int
	typeName string
}

// OverheadReport is the profiler's self-accounting, following the
// discipline of the telemetry collector and the span recorder: a
// measurement layer must report its own cost.
type OverheadReport struct {
	// Ticks and Drains count hook invocations and ring-drain passes.
	Ticks  int64
	Drains int64
	// DrainNsPerTick is the mean wall-clock profiling cost per simulator
	// tick (drain + aggregation, amortized over every tick).
	DrainNsPerTick float64
	// SamplesPerSimSec is the retained overflow-record rate against
	// simulated time.
	SamplesPerSimSec float64
	// LostRatio is lost/(lost+emitted) across all rings.
	LostRatio float64
	// TickCostRatio is enabled/disabled per-tick wall cost measured by
	// RecordTickCost (0 until a benchmark feeds it).
	TickCostRatio float64
}

// Collector owns the profiler's kernel plumbing for one simulated
// machine: it opens one sampled cycles event per core-type PMU for every
// attached task (the paper's per-PMU split — a cpu_core event only fires
// on P-cores), drains the rings on a configurable cadence, and folds the
// records into a Profile.
//
// The kernel-facing methods (Attach, Drain, Finish, Close, the hooks) must
// run on the simulation goroutine. Snapshot, LastRun, Overhead and the
// counter accessors are safe from any goroutine (HTTP handlers).
type Collector struct {
	cfg Config

	mu   sync.Mutex
	sim  *sim.Machine
	prof *Profile
	last *Profile
	// snapSec/snapStart mirror the sim clock and run start under mu: the
	// sim goroutine stamps them (bind, Drain), so Snapshot can compute
	// the covered duration without touching the unsynchronized sim clock
	// from an HTTP goroutine.
	snapSec   float64
	snapStart float64

	rings    []ring
	attached map[int]bool
	startSec float64
	ticks    int64

	ticksTotal   atomic.Int64
	drains       atomic.Int64
	drainNs      atomic.Int64
	emittedTotal atomic.Uint64
	lostTotal    atomic.Uint64
	tickDisabled atomic.Int64 // benchmark-fed baseline ns per tick
	tickEnabled  atomic.Int64
}

// NewCollector builds a collector for the machine. Attach tasks (or use
// Hook with a scenario) before samples can flow. A nil machine is allowed
// when the collector rides a scenario Hook — the hook binds to the run's
// machine on its first tick (hetpapid boots a fresh machine per run).
func NewCollector(s *sim.Machine, cfg Config) *Collector {
	cfg.fill()
	c := &Collector{cfg: cfg, prof: New("cycles", cfg.Period), attached: map[int]bool{}}
	if s != nil {
		c.bind(s)
	}
	return c
}

// bind points the collector at a (possibly new) machine and starts a
// fresh profile. Caller holds no locks; sim-goroutine only.
func (c *Collector) bind(s *sim.Machine) {
	c.mu.Lock()
	c.sim = s
	c.prof = New("cycles", c.cfg.Period)
	c.snapStart = s.Now()
	c.snapSec = c.snapStart
	c.mu.Unlock()
	c.rings = nil
	c.attached = map[int]bool{}
	c.startSec = s.Now()
	c.ticks = 0
}

// Attach opens the per-core-type sampled events for one task. A PMU whose
// cycles counter cannot be opened (an NMI-watchdog hold, exhausted
// counters) is recorded in the profile's MissingPMUs instead of failing
// the attach: the profiler degrades to a partial profile the way perf
// record does when a PMU is busy.
func (c *Collector) Attach(pid int) {
	if c.attached[pid] {
		return
	}
	c.attached[pid] = true
	m := c.sim.HW
	for i := range m.Types {
		t := &m.Types[i]
		attr := perfevent.Attr{
			Type:         perfevent.PerfTypeHardware,
			Config:       events.HWCPUCycles | uint64(t.PMU.PerfType)<<perfevent.HWConfigExtShift,
			SamplePeriod: c.cfg.Period,
		}
		fd, err := c.sim.Kernel.Open(attr, pid, -1, -1)
		if err != nil {
			c.mu.Lock()
			c.noteMissing(t.Name)
			c.mu.Unlock()
			continue
		}
		c.rings = append(c.rings, ring{fd: fd, pid: pid, typeName: t.Name})
	}
	c.mu.Lock()
	c.prof.Rings = len(c.rings)
	c.mu.Unlock()
}

// noteMissing records a core type with no sampled event; mu held.
func (c *Collector) noteMissing(typeName string) {
	for _, have := range c.prof.MissingPMUs {
		if have == typeName {
			return
		}
	}
	c.prof.MissingPMUs = append(c.prof.MissingPMUs, typeName)
	sort.Strings(c.prof.MissingPMUs)
}

// Drain empties every ring into the profile. Dead descriptors (a task
// exited, a fault killed the fd) are dropped from the ring list; their
// samples up to the failure are already aggregated.
func (c *Collector) Drain() {
	start := time.Now()
	kept := c.rings[:0]
	var emitted, lost uint64
	c.mu.Lock()
	for _, r := range c.rings {
		samples, rlost, err := c.sim.Kernel.ReadSamples(r.fd)
		if err != nil {
			// ENODEV/EBADF: the descriptor is gone; stop polling it. Its
			// core type keeps its remaining rings (same-type events of
			// other tasks), so this is loss of coverage for one task only.
			continue
		}
		c.prof.AddRing(samples, rlost)
		emitted += uint64(len(samples))
		lost += rlost
		kept = append(kept, r)
	}
	c.rings = kept
	c.prof.Rings = len(c.rings)
	c.snapSec = c.sim.Now()
	c.mu.Unlock()
	c.drains.Add(1)
	c.drainNs.Add(int64(time.Since(start)))
	c.emittedTotal.Add(emitted)
	c.lostTotal.Add(lost)
}

// Hook returns a scenario step hook that runs the profiler over a
// scenario: it attaches every workload process it sees (including
// late-spawned ones), drains on the configured cadence, and — when the
// same collector is reused across runs, as hetpapid's loop mode does —
// detects the fresh machine of a new run, archives the finished profile
// (LastRun) and rebinds.
func (c *Collector) Hook() scenario.StepHook {
	return func(ctx *scenario.Context) {
		if ctx.Sim != c.sim {
			if c.sim != nil {
				c.finishLocked()
			}
			c.bind(ctx.Sim)
		}
		for _, p := range ctx.Procs {
			c.Attach(p.PID)
		}
		c.ticks++
		c.ticksTotal.Add(1)
		if c.ticks%int64(c.cfg.DrainEveryTicks) == 0 {
			c.Drain()
		}
	}
}

// SimHook returns a machine-level step hook for direct (scenario-less)
// simulation driving; the caller attaches pids itself.
func (c *Collector) SimHook() sim.StepHook {
	return func(*sim.Machine) {
		c.ticks++
		c.ticksTotal.Add(1)
		if c.ticks%int64(c.cfg.DrainEveryTicks) == 0 {
			c.Drain()
		}
	}
}

// finishLocked drains, stamps the duration and archives the profile as
// the last completed run.
func (c *Collector) finishLocked() {
	c.Drain()
	c.mu.Lock()
	c.prof.DurationSec = c.sim.Now() - c.startSec
	c.last = c.prof.Clone()
	c.mu.Unlock()
}

// Finish drains outstanding samples, stamps the covered duration and
// returns the completed profile. Sim goroutine only.
func (c *Collector) Finish() *Profile {
	c.finishLocked()
	return c.LastRun()
}

// Close closes every descriptor. Sim goroutine only.
func (c *Collector) Close() {
	for _, r := range c.rings {
		c.sim.Kernel.Close(r.fd)
	}
	c.rings = nil
	c.mu.Lock()
	c.prof.Rings = 0
	c.mu.Unlock()
}

// Snapshot returns a copy of the in-progress profile, safe for
// concurrent export while the hook keeps aggregating. The duration
// reflects sim time covered so far.
func (c *Collector) Snapshot() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.prof.Clone()
	if p.DurationSec == 0 {
		p.DurationSec = c.snapSec - c.snapStart
	}
	return p
}

// LastRun returns the profile of the last completed run (nil before the
// first Finish/rebind).
func (c *Collector) LastRun() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last == nil {
		return nil
	}
	return c.last.Clone()
}

// EmittedTotal returns retained overflow records across all runs.
func (c *Collector) EmittedTotal() uint64 { return c.emittedTotal.Load() }

// LostTotal returns ring-dropped overflow records across all runs.
func (c *Collector) LostTotal() uint64 { return c.lostTotal.Load() }

// RecordTickCost feeds the benchmark-measured per-tick wall cost with the
// profiler disabled and enabled; the ratio lands in the overhead report.
func (c *Collector) RecordTickCost(disabledNs, enabledNs float64) {
	c.tickDisabled.Store(int64(disabledNs))
	c.tickEnabled.Store(int64(enabledNs))
}

// Overhead returns the self-overhead report.
func (c *Collector) Overhead() OverheadReport {
	r := OverheadReport{
		Ticks:  c.ticksTotal.Load(),
		Drains: c.drains.Load(),
	}
	if r.Ticks > 0 {
		r.DrainNsPerTick = float64(c.drainNs.Load()) / float64(r.Ticks)
	}
	emitted, lost := c.emittedTotal.Load(), c.lostTotal.Load()
	if emitted+lost > 0 {
		r.LostRatio = float64(lost) / float64(emitted+lost)
	}
	c.mu.Lock()
	var simSec float64
	if c.sim != nil {
		simSec = c.sim.Now() - c.startSec
	}
	if c.last != nil {
		simSec += c.last.DurationSec
	}
	c.mu.Unlock()
	if simSec > 0 {
		r.SamplesPerSimSec = float64(emitted) / simSec
	}
	if d := c.tickDisabled.Load(); d > 0 {
		r.TickCostRatio = float64(c.tickEnabled.Load()) / float64(d)
	}
	if math.IsNaN(r.TickCostRatio) || math.IsInf(r.TickCostRatio, 0) {
		r.TickCostRatio = 0
	}
	return r
}

func (r OverheadReport) String() string {
	s := fmt.Sprintf("profiler overhead: %.0f ns/tick over %d ticks (%d drains), %.0f samples/simsec, lost ratio %.4f",
		r.DrainNsPerTick, r.Ticks, r.Drains, r.SamplesPerSimSec, r.LostRatio)
	if r.TickCostRatio > 0 {
		s += fmt.Sprintf(", tick cost %.3fx baseline", r.TickCostRatio)
	}
	return s
}
