package profile

// Cross-check against the span-trace analyzer: the profiler and the span
// recorder observe the same machine through independent mechanisms —
// statistical overflow sampling at the PMU versus exact scheduler
// exec-span bookkeeping — so their per-core-type busy attributions must
// agree within the profiler's reported error bound. The agreement is a
// tested invariant over the reference scenarios: if either layer drifts
// (a lost-sample accounting bug, a span attribution bug), the two stop
// matching and the bound makes the tolerance explicit instead of a magic
// epsilon.

import (
	"fmt"
	"sort"
	"strings"

	"hetpapi/internal/spantrace/analyze"
)

// AttributionDelta compares one core type's busy share between the two
// observability layers.
type AttributionDelta struct {
	CoreType string
	// SampledShare is the profiler's busy-time share.
	SampledShare float64
	// TraceShare is the span-trace analyzer's exec-time share.
	TraceShare float64
	// Delta is the absolute difference.
	Delta float64
}

func (d AttributionDelta) String() string {
	return fmt.Sprintf("%s: sampled %.4f vs trace %.4f (delta %.4f)",
		d.CoreType, d.SampledShare, d.TraceShare, d.Delta)
}

// CrossCheck compares the profile's per-core-type busy shares with the
// span-trace report's, returning one delta per core type observed by
// either layer plus the profile's error bound.
func CrossCheck(p *Profile, rep *analyze.Report) ([]AttributionDelta, float64) {
	sampled := p.Shares()
	seen := map[string]bool{}
	for ct := range sampled {
		seen[ct] = true
	}
	for ct := range rep.ByCoreType {
		seen[ct] = true
	}
	types := make([]string, 0, len(seen))
	for ct := range seen {
		types = append(types, ct)
	}
	sort.Strings(types)
	out := make([]AttributionDelta, 0, len(types))
	for _, ct := range types {
		d := AttributionDelta{CoreType: ct, SampledShare: sampled[ct]}
		if t := rep.ByCoreType[ct]; t != nil {
			d.TraceShare = t.Share
		}
		d.Delta = d.SampledShare - d.TraceShare
		if d.Delta < 0 {
			d.Delta = -d.Delta
		}
		out = append(out, d)
	}
	return out, p.ErrorBound()
}

// Agree returns nil when every core type's delta is within the profile's
// error bound, and otherwise an error naming the disagreeing types.
func Agree(p *Profile, rep *analyze.Report) error {
	deltas, bound := CrossCheck(p, rep)
	var bad []string
	for _, d := range deltas {
		if d.Delta > bound {
			bad = append(bad, d.String())
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("sampled vs span-trace attribution disagree beyond bound %.4f:\n  %s",
		bound, strings.Join(bad, "\n  "))
}
