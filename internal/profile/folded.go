package profile

// Folded flamegraph export: one line per bucket in the collapsed-stack
// format flamegraph.pl and speedscope consume — semicolon-joined frames
// root-first, a space, and the integer weight. The stack is the profile's
// attribution hierarchy (core type; phase; cpu), so the flamegraph's
// first split is the paper's P-vs-E divide.

import (
	"fmt"
	"io"
)

// WriteFolded writes the profile as folded stacks, deterministically
// ordered. Weights are the scaled event counts (cycles), so frame widths
// compare busy work across core types even when frequencies differ.
func WriteFolded(w io.Writer, p *Profile) error {
	for _, k := range p.sortedKeys() {
		b := p.Buckets[k]
		stack := ""
		for i, f := range k.frames() {
			if i > 0 {
				stack += ";"
			}
			stack += f
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, clampWeight(b.Weight)); err != nil {
			return fmt.Errorf("folded export: %w", err)
		}
	}
	return nil
}
