package profile

import (
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// TestCollectorAttributesPhasesAndCoreTypes drives a phased workload on a
// hybrid machine directly (no scenario harness) and checks the full
// attribution chain: per-core-type PMU split, workload phase at overflow,
// and frequency-converted busy time.
func TestCollectorAttributesPhasesAndCoreTypes(t *testing.T) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	seq := workload.NewSequence("app",
		workload.NewInstructionLoop("init", 1e6, 300),
		workload.NewInstructionLoop("compute", 1e6, 2000),
	)
	// Pin to one P-core; a second process pinned to an E-core proves the
	// per-PMU split.
	p1 := s.Spawn(seq, hw.NewCPUSet(0))
	eLoop := workload.NewInstructionLoop("e-loop", 1e6, 1500)
	p2 := s.Spawn(eLoop, hw.NewCPUSet(16))

	col := NewCollector(s, Config{Period: 1_000_000, DrainEveryTicks: 8})
	col.Attach(p1.PID)
	col.Attach(p2.PID)
	remove := s.AddStepHook(col.SimHook())
	defer remove()

	if !s.RunUntil(func() bool { return seq.Done() && eLoop.Done() }, 30) {
		t.Fatal("workloads did not finish")
	}
	prof := col.Finish()
	col.Close()

	if !prof.Complete() {
		t.Fatalf("missing PMUs: %v", prof.MissingPMUs)
	}
	if prof.Emitted == 0 || prof.Lost != 0 {
		t.Fatalf("emitted/lost = %d/%d", prof.Emitted, prof.Lost)
	}
	if prof.DurationSec <= 0 {
		t.Fatalf("duration = %g", prof.DurationSec)
	}

	phases := map[string]bool{}
	types := map[string]bool{}
	for k, b := range prof.Buckets {
		phases[k.Phase] = true
		types[k.CoreType] = true
		if b.BusySec <= 0 {
			t.Fatalf("bucket %+v has no busy time (freq context missing?)", k)
		}
		switch k.CoreType {
		case "P-core":
			if k.CPU != 0 {
				t.Fatalf("P-core sample on cpu %d, want 0", k.CPU)
			}
			// "" is legal at the end-of-sequence boundary: the overflow
			// context is resolved after the slice ran, and the final
			// slice leaves the sequence with no current phase — the same
			// skid real overflow interrupts exhibit.
			if k.Phase != "init" && k.Phase != "compute" && k.Phase != "" {
				t.Fatalf("P-core sample carries phase %q", k.Phase)
			}
		case "E-core":
			if k.CPU != 16 {
				t.Fatalf("E-core sample on cpu %d, want 16", k.CPU)
			}
			if k.Phase != "" {
				t.Fatalf("unphased task carries phase %q", k.Phase)
			}
		default:
			t.Fatalf("unknown core type %q", k.CoreType)
		}
	}
	if !types["P-core"] || !types["E-core"] {
		t.Fatalf("core types = %v, want both PMUs", types)
	}
	if !phases["init"] || !phases["compute"] {
		t.Fatalf("phases = %v, want init and compute", phases)
	}

	// The sequence ran both phases to completion with equal per-rep work:
	// the compute phase must carry more weight than init (2000 vs 300
	// reps) — gross-attribution sanity, not an exact ratio (DVFS ramps).
	ph := prof.PhaseShares()
	if ph["compute"] <= ph["init"] {
		t.Fatalf("phase shares = %v, want compute > init", ph)
	}

	ovh := col.Overhead()
	if ovh.Ticks == 0 || ovh.Drains == 0 {
		t.Fatalf("overhead report empty: %+v", ovh)
	}
	if ovh.SamplesPerSimSec <= 0 {
		t.Fatalf("samples/sec = %g", ovh.SamplesPerSimSec)
	}
	if ovh.LostRatio != 0 {
		t.Fatalf("lost ratio = %g", ovh.LostRatio)
	}
	if ovh.String() == "" {
		t.Fatal("empty overhead string")
	}
}

// TestCollectorBusyTimeTracksWallTime pins one always-busy task to one
// CPU and checks the frequency conversion: scaled busy time must land
// near the task's elapsed run time.
func TestCollectorBusyTimeTracksWallTime(t *testing.T) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	spin := workload.NewSpin("spin", 2.0)
	p := s.Spawn(spin, hw.NewCPUSet(4))
	col := NewCollector(s, Config{Period: 1_000_000, DrainEveryTicks: 4})
	col.Attach(p.PID)
	remove := s.AddStepHook(col.SimHook())
	defer remove()
	if !s.RunUntil(spin.Done, 10) {
		t.Fatal("spin did not finish")
	}
	prof := col.Finish()
	busy := prof.TotalBusySec()
	// 2 s of pinned spinning; the estimate may miss up to one period per
	// ring plus startup ticks, well inside 5%.
	if busy < 1.9 || busy > 2.1 {
		t.Fatalf("estimated busy %gs, want ~2s", busy)
	}
	bound := prof.ErrorBound()
	if bound <= 0 || bound > 0.1 {
		t.Fatalf("clean-run bound = %g", bound)
	}
}

// TestCollectorMissingPMUDegrades opens against a machine whose P-core
// cycles counter is watchdog-held: the profiler must degrade to a
// partial profile instead of failing.
func TestCollectorMissingPMUDegrades(t *testing.T) {
	s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	var pType uint32
	for i := range s.HW.Types {
		if s.HW.Types[i].Name == "P-core" {
			pType = s.HW.Types[i].PMU.PerfType
		}
	}
	s.Kernel.SetWatchdog(pType, true)
	loop := workload.NewInstructionLoop("w", 1e6, 200)
	p := s.Spawn(loop, hw.NewCPUSet(16)) // E-core
	col := NewCollector(s, Config{Period: 1_000_000, DrainEveryTicks: 4})
	col.Attach(p.PID)
	remove := s.AddStepHook(col.SimHook())
	defer remove()
	if !s.RunUntil(loop.Done, 10) {
		t.Fatal("loop did not finish")
	}
	prof := col.Finish()
	if prof.Complete() {
		t.Fatal("profile claims completeness with a held PMU")
	}
	if len(prof.MissingPMUs) != 1 || prof.MissingPMUs[0] != "P-core" {
		t.Fatalf("missing PMUs = %v", prof.MissingPMUs)
	}
	// The E-core stream still profiles.
	if prof.Emitted == 0 {
		t.Fatal("no samples from the remaining PMU")
	}
}
