// Package profile is the hybrid-aware statistical profiler: it aggregates
// the perf_event substrate's overflow samples into period-weighted profiles
// attributed along the axes that matter on a heterogeneous machine — core
// type first (the paper's per-PMU split: a cpu_core sampled event only
// fires while the task runs on P-cores), then workload phase and CPU, with
// the DVFS frequency at overflow converting cycle weight into busy time.
//
// A Profile carries an explicit error bound, in the spirit of the
// multiplexing ladder's scaled estimates: lost samples (finite rings) are
// corrected by scaling each surviving ring's weight by 1 + lost/retained,
// and the residual uncertainty — the lost fraction itself, the binomial
// sampling error, and up to one period of unsampled accumulation per ring
// — is reported rather than hidden. Export goes two ways: gzipped pprof
// profile.proto (pprof.go) and folded flamegraph stacks (folded.go).
package profile

import (
	"fmt"
	"math"
	"sort"

	"hetpapi/internal/perfevent"
)

// Key is one attribution bucket's identity: where (core type, CPU) and
// what (workload phase) a sample landed on.
type Key struct {
	// CoreType is the sample's core type name (the per-PMU axis).
	CoreType string
	// Phase is the workload phase at overflow time ("" when the sampled
	// task has no distinguishable phases).
	Phase string
	// CPU is the logical CPU of the overflow.
	CPU int
}

// Bucket accumulates the samples of one Key.
type Bucket struct {
	// Samples is the number of retained overflow records.
	Samples int
	// Weight is the period-weighted event count, lost-sample scaled: each
	// record contributes its sampling period times its ring's scale
	// factor, so Weight estimates the true event count the bucket's
	// execution retired.
	Weight float64
	// BusySec estimates the busy time behind Weight, converting each
	// record's period through its overflow-time frequency (cycles/Hz).
	// Zero when the sampled event's weight has no time interpretation.
	BusySec float64
}

// Profile is an aggregated statistical profile.
type Profile struct {
	// Event names the sampled event (e.g. "cycles").
	Event string
	// Period is the configured sampling period in event units.
	Period uint64
	// DurationSec is the simulated time the profile covers.
	DurationSec float64
	// Buckets maps attribution keys to their accumulated weight.
	Buckets map[Key]*Bucket
	// Emitted and Lost count retained and ring-dropped overflow records
	// across every contributing ring drain.
	Emitted uint64
	Lost    uint64
	// Rings is the number of distinct sample rings (per-task, per-PMU
	// descriptors) feeding the profile; each ring may hold up to one
	// period of not-yet-overflowed accumulation, which the error bound
	// accounts for.
	Rings int
	// MissingPMUs lists core types whose sampled event could not be
	// opened (e.g. a watchdog-held cycles counter); their execution is
	// invisible to the profile and Complete reports false.
	MissingPMUs []string
}

// New returns an empty profile for the given sampled event and period.
func New(event string, period uint64) *Profile {
	return &Profile{Event: event, Period: period, Buckets: map[Key]*Bucket{}}
}

// AddRing folds one ring drain into the profile, applying the lost-sample
// scaling correction: the ring dropped lost records while retaining
// len(samples), so every surviving record stands for 1 + lost/retained
// overflows of identical attribution (ring drops are bursty but the
// bucket mix within one drain window is the best available estimate).
// A drain that lost everything (retained 0) contributes only to the loss
// accounting — there is nothing to scale — and widens the error bound.
func (p *Profile) AddRing(samples []perfevent.Sample, lost uint64) {
	p.Lost += lost
	if len(samples) == 0 {
		return
	}
	p.Emitted += uint64(len(samples))
	scale := 1.0
	if lost > 0 {
		scale = 1 + float64(lost)/float64(len(samples))
	}
	// Overflows of one execution slice share their attribution, so drained
	// records arrive in key runs; caching the last bucket skips the map's
	// string hashing for every record after the first of a run.
	var lastKey Key
	var lastB *Bucket
	for i := range samples {
		s := &samples[i]
		k := Key{CoreType: s.CoreType, Phase: s.Phase, CPU: s.CPU}
		b := lastB
		if b == nil || k != lastKey {
			b = p.Buckets[k]
			if b == nil {
				b = &Bucket{}
				p.Buckets[k] = b
			}
			lastKey, lastB = k, b
		}
		b.Samples++
		w := float64(s.Period) * scale
		b.Weight += w
		if s.FreqMHz > 0 {
			b.BusySec += float64(s.Period) / (s.FreqMHz * 1e6) * scale
		}
	}
}

// TotalWeight returns the scaled event-count total.
func (p *Profile) TotalWeight() float64 {
	var t float64
	for _, b := range p.Buckets {
		t += b.Weight
	}
	return t
}

// TotalBusySec returns the scaled busy-time total.
func (p *Profile) TotalBusySec() float64 {
	var t float64
	for _, b := range p.Buckets {
		t += b.BusySec
	}
	return t
}

// Complete reports whether every core-type PMU contributed (no sampled
// event failed to open).
func (p *Profile) Complete() bool { return len(p.MissingPMUs) == 0 }

// Shares returns each core type's share of the profile's busy time (or of
// its weight, when the samples carried no frequency), summing to 1 over
// the observed types. An empty profile returns an empty map.
func (p *Profile) Shares() map[string]float64 {
	busy := map[string]float64{}
	weight := map[string]float64{}
	var busyTotal, weightTotal float64
	for k, b := range p.Buckets {
		busy[k.CoreType] += b.BusySec
		weight[k.CoreType] += b.Weight
		busyTotal += b.BusySec
		weightTotal += b.Weight
	}
	out := map[string]float64{}
	switch {
	case busyTotal > 0:
		for ct, v := range busy {
			out[ct] = v / busyTotal
		}
	case weightTotal > 0:
		for ct, v := range weight {
			out[ct] = v / weightTotal
		}
	}
	return out
}

// PhaseShares returns each phase's share of busy time (falling back to
// weight), keyed by phase name.
func (p *Profile) PhaseShares() map[string]float64 {
	busy := map[string]float64{}
	weight := map[string]float64{}
	var busyTotal, weightTotal float64
	for k, b := range p.Buckets {
		busy[k.Phase] += b.BusySec
		weight[k.Phase] += b.Weight
		busyTotal += b.BusySec
		weightTotal += b.Weight
	}
	out := map[string]float64{}
	switch {
	case busyTotal > 0:
		for ph, v := range busy {
			out[ph] = v / busyTotal
		}
	case weightTotal > 0:
		for ph, v := range weight {
			out[ph] = v / weightTotal
		}
	}
	return out
}

// ErrorBound returns the profile's attribution uncertainty as a fraction
// of total weight: any per-core-type share derived from the profile is
// accurate to within this bound. It is the sum of
//
//   - the lost fraction: dropped records whose attribution the scaling
//     correction can only estimate from the surviving mix;
//   - a 3-sigma binomial term for the statistical sampling error of a
//     share estimated from Emitted records (sigma <= 1/(2*sqrt(N)));
//   - the per-ring period residual: each ring holds up to one period of
//     accumulation that never overflowed;
//   - a 2% floor for the systematic estimation error of converting
//     period-weighted cycles through overflow-time frequency (frequency
//     transitions and partial final slices land inside one period).
//
// A profile with no retained samples has no usable attribution: bound 1.
func (p *Profile) ErrorBound() float64 {
	if p.Emitted == 0 {
		return 1
	}
	total := float64(p.Emitted + p.Lost)
	lostFrac := float64(p.Lost) / total
	stat := 3.0 / (2 * math.Sqrt(float64(p.Emitted)))
	residual := float64(p.Rings) / float64(p.Emitted)
	bound := lostFrac + stat + residual + 0.02
	if bound > 1 {
		return 1
	}
	return bound
}

// Row is one bucket with its key, for sorted reporting.
type Row struct {
	Key
	Bucket
}

// Top returns the n heaviest buckets (all when n <= 0), optionally
// restricted to one core type (""), sorted by busy time then weight
// descending with the key as tiebreaker for determinism.
func (p *Profile) Top(n int, coreType string) []Row {
	rows := make([]Row, 0, len(p.Buckets))
	for k, b := range p.Buckets {
		if coreType != "" && k.CoreType != coreType {
			continue
		}
		rows = append(rows, Row{Key: k, Bucket: *b})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].BusySec != rows[j].BusySec {
			return rows[i].BusySec > rows[j].BusySec
		}
		if rows[i].Weight != rows[j].Weight {
			return rows[i].Weight > rows[j].Weight
		}
		return rows[i].Key.less(rows[j].Key)
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// CoreTypes returns the profile's core types, sorted.
func (p *Profile) CoreTypes() []string {
	seen := map[string]bool{}
	for k := range p.Buckets {
		seen[k.CoreType] = true
	}
	out := make([]string, 0, len(seen))
	for ct := range seen {
		out = append(out, ct)
	}
	sort.Strings(out)
	return out
}

func (k Key) less(o Key) bool {
	if k.CoreType != o.CoreType {
		return k.CoreType < o.CoreType
	}
	if k.Phase != o.Phase {
		return k.Phase < o.Phase
	}
	return k.CPU < o.CPU
}

// sortedKeys returns every bucket key in deterministic order.
func (p *Profile) sortedKeys() []Key {
	keys := make([]Key, 0, len(p.Buckets))
	for k := range p.Buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// Clone returns a deep copy (buckets included).
func (p *Profile) Clone() *Profile {
	out := *p
	out.Buckets = make(map[Key]*Bucket, len(p.Buckets))
	for k, b := range p.Buckets {
		cp := *b
		out.Buckets[k] = &cp
	}
	out.MissingPMUs = append([]string(nil), p.MissingPMUs...)
	return &out
}

// frames renders a key as its flamegraph stack, root first: core type,
// then phase (omitted when empty), then the CPU leaf.
func (k Key) frames() []string {
	out := make([]string, 0, 3)
	out = append(out, k.CoreType)
	if k.Phase != "" {
		out = append(out, k.Phase)
	}
	out = append(out, fmt.Sprintf("cpu%d", k.CPU))
	return out
}
