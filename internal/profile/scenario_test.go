package profile

// Integration of the profiler with the scenario harness: attaching the
// collector must be pure observation (golden digests unchanged), and its
// statistical attribution must agree with the span-trace analyzer's exact
// attribution within the reported error bound — two independent
// observability layers cross-checking each other.

import (
	"bytes"
	"testing"

	"hetpapi/internal/scenario"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/spantrace/analyze"
)

const goldenDir = "../scenario/testdata/golden"

func refSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	for _, spec := range scenario.Reference() {
		if spec.Name == name {
			return spec
		}
	}
	t.Fatalf("no reference scenario %q", name)
	return scenario.Spec{}
}

// profiledRun runs a spec with a collector hooked in and returns the
// result, the finished profile and the collector.
func profiledRun(t *testing.T, spec scenario.Spec, cfg Config) (*scenario.Result, *Profile, *Collector) {
	t.Helper()
	col := NewCollector(nil, cfg)
	spec.StepHooks = append(spec.StepHooks, col.Hook())
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res, col.Finish(), col
}

// TestProfilerKeepsGoldenDigest pins the observer guarantee across every
// reference scenario, fault scenarios included: a run with the profiler
// draining per-task sample rings digests identically to the committed
// golden of an unprofiled run.
func TestProfilerKeepsGoldenDigest(t *testing.T) {
	for _, spec := range scenario.Reference() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, prof, _ := profiledRun(t, spec, Config{})
			golden, err := scenario.LoadGolden(scenario.GoldenPath(goldenDir, res.Name))
			if err != nil {
				t.Fatal(err)
			}
			if diff := golden.Diff(scenario.GoldenOf(res)); diff != "" {
				t.Fatalf("profiling changed the run's golden digest:\n%s", diff)
			}
			if prof.Emitted == 0 {
				t.Fatal("profiler saw no samples")
			}
		})
	}
}

// agreementScenarios are the non-fault reference runs: with no injected
// counter steals or hotplug events, every core type's sample stream stays
// intact and the statistical attribution must match the span trace.
var agreementScenarios = []string{
	"raptorlake-hpl-pcores",
	"orangepi-thermal-throttle",
	"dimensity-mixed-injects",
	"homogeneous-powercap",
}

// TestSampledAttributionAgreesWithSpans is the cross-layer invariant:
// per-core-type busy shares from overflow sampling agree with the span
// recorder's exact exec accounting, within the profile's own error bound.
func TestSampledAttributionAgreesWithSpans(t *testing.T) {
	for _, name := range agreementScenarios {
		t.Run(name, func(t *testing.T) {
			spec := refSpec(t, name)
			rec := spantrace.New(spantrace.Config{TrackCapacity: 1 << 15})
			rec.Enable()
			spec.Tracer = rec
			_, prof, _ := profiledRun(t, spec, Config{})

			var buf bytes.Buffer
			if err := spantrace.WriteJSON(&buf, rec.Snapshot()); err != nil {
				t.Fatal(err)
			}
			tr, err := analyze.Parse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			rep := analyze.Analyze(tr)

			if err := Agree(prof, rep); err != nil {
				t.Fatal(err)
			}
			deltas, bound := CrossCheck(prof, rep)
			if len(deltas) == 0 {
				t.Fatal("no core types to compare")
			}
			if bound <= 0 || bound >= 1 {
				t.Fatalf("implausible error bound %g on a clean run", bound)
			}
			for _, d := range deltas {
				t.Logf("%s (bound %.4f)", d, bound)
			}
		})
	}
}

// TestBufferPressureWidensBound injects sampling-ring pressure into a
// clean scenario: samples must be lost, the loss must scale surviving
// weights, and the reported error bound must widen accordingly.
func TestBufferPressureWidensBound(t *testing.T) {
	clean := refSpec(t, "raptorlake-hpl-pcores")
	_, cleanProf, _ := profiledRun(t, clean, Config{})
	if cleanProf.Lost != 0 {
		t.Fatalf("clean run lost %d samples", cleanProf.Lost)
	}

	squeezed := refSpec(t, "raptorlake-hpl-pcores")
	squeezed.VerifyDeterminism = false
	squeezed.Injects = append(append([]scenario.Inject(nil), squeezed.Injects...),
		scenario.Inject{AtSec: 0.2, Kind: scenario.InjectBufferPressure, Cap: 2})
	_, prof, col := profiledRun(t, squeezed, Config{})
	if prof.Lost == 0 {
		t.Fatal("capped rings lost nothing")
	}
	if prof.ErrorBound() <= cleanProf.ErrorBound() {
		t.Fatalf("bound did not widen: clean %g, squeezed %g",
			cleanProf.ErrorBound(), prof.ErrorBound())
	}
	ovh := col.Overhead()
	if ovh.LostRatio <= 0 {
		t.Fatalf("overhead report missed the loss: %+v", ovh)
	}
	// Lost-sample scaling keeps total weight in the same regime as the
	// clean run (each survivor stands for its ring's dropped records), so
	// heavy ring pressure degrades confidence — the bound — rather than
	// collapsing the attribution totals.
	if prof.TotalWeight() < cleanProf.TotalWeight()/4 {
		t.Fatalf("scaled weight collapsed: clean %g, squeezed %g",
			cleanProf.TotalWeight(), prof.TotalWeight())
	}
}

// TestCollectorRebindsAcrossRuns reuses one collector for two scenario
// runs, the hetpapid loop shape: the hook must detect the fresh machine,
// archive the finished first profile as LastRun and start a new one.
func TestCollectorRebindsAcrossRuns(t *testing.T) {
	col := NewCollector(nil, Config{})
	spec := refSpec(t, "homogeneous-powercap")
	spec.StepHooks = append(spec.StepHooks, col.Hook())
	if _, err := scenario.Run(spec); err != nil {
		t.Fatal(err)
	}
	if col.LastRun() != nil {
		t.Fatal("LastRun set before the second run archived the first")
	}
	firstLive := col.Snapshot()
	if firstLive.Emitted == 0 {
		t.Fatal("first run produced no samples")
	}

	if _, err := scenario.Run(spec); err != nil {
		t.Fatal(err)
	}
	archived := col.LastRun()
	if archived == nil {
		t.Fatal("first run was not archived on rebind")
	}
	// The archive includes the final drain at rebind, so it holds at
	// least what the mid-flight snapshot saw.
	if archived.Emitted < firstLive.Emitted {
		t.Fatalf("archived profile emitted %d, want >= %d", archived.Emitted, firstLive.Emitted)
	}
	if archived.DurationSec <= 0 {
		t.Fatalf("archived duration = %g", archived.DurationSec)
	}
	second := col.Finish()
	if second.Emitted == 0 {
		t.Fatal("second run produced no samples")
	}
	if got := col.EmittedTotal(); got != archived.Emitted+second.Emitted {
		t.Fatalf("emitted total %d, want %d", got, archived.Emitted+second.Emitted)
	}
}
