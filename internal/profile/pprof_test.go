package profile

import (
	"bytes"
	"math"
	"testing"
)

func testProfile() *Profile {
	p := New("cycles", 2_000_000)
	p.Rings = 2
	p.DurationSec = 1.5
	p.AddRing(mkSamples(40, "P-core", "compute", 0, 2_000_000, 4000), 0)
	p.AddRing(mkSamples(10, "P-core", "init", 2, 2_000_000, 4000), 2)
	p.AddRing(mkSamples(20, "E-core", "compute", 16, 2_000_000, 3000), 0)
	return p
}

func TestPprofRoundTrip(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := WritePprof(&buf, p); err != nil {
		t.Fatal(err)
	}
	// Gzip magic.
	if b := buf.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("output is not gzipped")
	}
	d, err := DecodePprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SampleTypes) != 3 {
		t.Fatalf("sample types = %+v", d.SampleTypes)
	}
	if d.SampleTypes[0] != (DecodedValueType{"samples", "count"}) ||
		d.SampleTypes[1] != (DecodedValueType{"cycles", "count"}) ||
		d.SampleTypes[2] != (DecodedValueType{"time", "nanoseconds"}) {
		t.Fatalf("sample types = %+v", d.SampleTypes)
	}
	if d.Period != 2_000_000 || d.PeriodType.Type != "cycles" {
		t.Fatalf("period = %d %+v", d.Period, d.PeriodType)
	}
	if d.DurationNanos != 1_500_000_000 {
		t.Fatalf("duration = %d", d.DurationNanos)
	}
	if len(d.Samples) != len(p.Buckets) {
		t.Fatalf("got %d samples, want %d buckets", len(d.Samples), len(p.Buckets))
	}
	// Each decoded sample's stack is leaf-first; reverse to the bucket key.
	seen := map[Key]bool{}
	for _, s := range d.Samples {
		if len(s.Stack) != 3 {
			t.Fatalf("stack %v, want 3 frames", s.Stack)
		}
		var cpu int
		var ct, phase string
		for _, lb := range s.Labels {
			switch lb.Key {
			case "core_type":
				ct = lb.Str
			case "phase":
				phase = lb.Str
			case "cpu":
				cpu = int(lb.Num)
			}
		}
		if s.Stack[2] != ct || s.Stack[1] != phase {
			t.Fatalf("stack %v does not match labels (%s, %s)", s.Stack, ct, phase)
		}
		k := Key{CoreType: ct, Phase: phase, CPU: cpu}
		b := p.Buckets[k]
		if b == nil {
			t.Fatalf("decoded sample for unknown bucket %+v", k)
		}
		if len(s.Values) != 3 {
			t.Fatalf("values = %v", s.Values)
		}
		if s.Values[0] != int64(b.Samples) {
			t.Fatalf("bucket %+v: count %d, want %d", k, s.Values[0], b.Samples)
		}
		if s.Values[1] != clampWeight(b.Weight) {
			t.Fatalf("bucket %+v: weight %d, want %d", k, s.Values[1], clampWeight(b.Weight))
		}
		if s.Values[2] != clampNanos(b.BusySec) {
			t.Fatalf("bucket %+v: nanos %d, want %d", k, s.Values[2], clampNanos(b.BusySec))
		}
		seen[k] = true
	}
	if len(seen) != len(p.Buckets) {
		t.Fatalf("decoded %d distinct buckets, want %d", len(seen), len(p.Buckets))
	}
}

func TestFromDecodedRecoversProfile(t *testing.T) {
	p := testProfile()
	p.MissingPMUs = []string{"LP-E-core"}
	var buf bytes.Buffer
	if err := WritePprof(&buf, p); err != nil {
		t.Fatal(err)
	}
	d, err := DecodePprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	q, err := FromDecoded(d)
	if err != nil {
		t.Fatal(err)
	}
	if q.Emitted != p.Emitted || q.Lost != p.Lost || q.Rings != p.Rings {
		t.Fatalf("accounting: got %d/%d/%d, want %d/%d/%d",
			q.Emitted, q.Lost, q.Rings, p.Emitted, p.Lost, p.Rings)
	}
	if len(q.MissingPMUs) != 1 || q.MissingPMUs[0] != "LP-E-core" {
		t.Fatalf("missing PMUs = %v", q.MissingPMUs)
	}
	if q.Event != p.Event || q.Period != p.Period {
		t.Fatalf("event/period = %s/%d", q.Event, q.Period)
	}
	if len(q.Buckets) != len(p.Buckets) {
		t.Fatalf("buckets = %d, want %d", len(q.Buckets), len(p.Buckets))
	}
	for k, b := range p.Buckets {
		qb := q.Buckets[k]
		if qb == nil {
			t.Fatalf("bucket %+v lost in round trip", k)
		}
		if qb.Samples != b.Samples {
			t.Fatalf("bucket %+v samples %d, want %d", k, qb.Samples, b.Samples)
		}
		if math.Abs(qb.Weight-b.Weight) > 1 {
			t.Fatalf("bucket %+v weight %g, want %g", k, qb.Weight, b.Weight)
		}
		if math.Abs(qb.BusySec-b.BusySec) > 1e-9 {
			t.Fatalf("bucket %+v busy %g, want %g", k, qb.BusySec, b.BusySec)
		}
	}
	// The bound is a pure function of the recovered accounting.
	if math.Abs(q.ErrorBound()-p.ErrorBound()) > 1e-12 {
		t.Fatalf("bound %g, want %g", q.ErrorBound(), p.ErrorBound())
	}
}

func TestPprofDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePprof(&a, testProfile()); err != nil {
		t.Fatal(err)
	}
	if err := WritePprof(&b, testProfile()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("pprof export is not deterministic")
	}
}

func TestPprofEmptyProfile(t *testing.T) {
	p := New("cycles", 2_000_000)
	var buf bytes.Buffer
	if err := WritePprof(&buf, p); err != nil {
		t.Fatal(err)
	}
	d, err := DecodePprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 0 || len(d.SampleTypes) != 3 {
		t.Fatalf("empty profile decoded as %+v", d)
	}
}

func TestClampGuards(t *testing.T) {
	if clampNanos(math.NaN()) != 0 || clampNanos(-1) != 0 {
		t.Fatal("clampNanos does not guard")
	}
	if clampNanos(math.Inf(1)) != math.MaxInt64 {
		t.Fatal("clampNanos inf")
	}
	if clampWeight(math.NaN()) != 0 || clampWeight(math.Inf(1)) != math.MaxInt64 {
		t.Fatal("clampWeight does not guard")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePprof(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated varint inside a valid gzip stream.
	if _, err := decodeProfile([]byte{0x08, 0x80}); err == nil {
		t.Fatal("truncated varint accepted")
	}
	// String table missing the leading empty string.
	var b protoBuf
	b.str(6, "oops")
	if _, err := decodeProfile(b.b); err == nil {
		t.Fatal("bad string table accepted")
	}
}
