// Fuzz target for the pprof exporter round trip: arbitrary bucket
// contents — including non-finite weights and busy times — must always
// encode to a valid gzipped profile.proto that the independent minimal
// decoder parses back with finite, clamped values.
package profile

import (
	"bytes"
	"math"
	"testing"
)

// takeF64 consumes 8 bytes as a float64 (any bit pattern, so NaN and Inf
// appear naturally), defaulting to 0 when the input runs dry.
func takeF64(data *[]byte) float64 {
	if len(*data) < 8 {
		return 0
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits = bits<<8 | uint64((*data)[i])
	}
	*data = (*data)[8:]
	return math.Float64frombits(bits)
}

func FuzzProfileExport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	// A payload decoding to NaN weight.
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Add([]byte("P-core\x00compute\x00with realistic strings after"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := New("cycles", 1_000_000)
		p.DurationSec = takeF64(&data)
		p.Rings = int(uint8(len(data)))
		// Decode the remaining bytes into buckets: 2 name bytes + 1 cpu
		// byte + 2 floats each.
		names := []string{"", "P-core", "E-core", "big", "little", "LP-E-core", "phase-a", "x"}
		for len(data) >= 3 {
			ct := names[1+int(data[0])%(len(names)-1)] // core type never ""
			ph := names[int(data[1])%len(names)]
			cpu := int(data[2]) // kernel CPU ids are non-negative
			data = data[3:]
			k := Key{CoreType: ct, Phase: ph, CPU: cpu}
			b := p.Buckets[k]
			if b == nil {
				b = &Bucket{}
				p.Buckets[k] = b
			}
			b.Samples++
			b.Weight += takeF64(&data)
			b.BusySec += takeF64(&data)
			p.Emitted++
		}
		p.Lost = uint64(len(p.Buckets)) * 3

		var buf bytes.Buffer
		if err := WritePprof(&buf, p); err != nil {
			t.Fatalf("export failed: %v", err)
		}
		out := buf.Bytes()
		if len(out) < 2 || out[0] != 0x1f || out[1] != 0x8b {
			t.Fatal("output is not gzipped")
		}
		d, err := DecodePprof(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("exported profile does not decode: %v", err)
		}
		if len(d.SampleTypes) != 3 {
			t.Fatalf("sample types: %+v", d.SampleTypes)
		}
		if len(d.Samples) != len(p.Buckets) {
			t.Fatalf("decoded %d samples, want %d buckets", len(d.Samples), len(p.Buckets))
		}
		for _, s := range d.Samples {
			if len(s.Values) != 3 {
				t.Fatalf("values: %v", s.Values)
			}
			for _, v := range s.Values {
				if v < 0 {
					t.Fatalf("negative encoded value %d", v)
				}
			}
			if len(s.Stack) == 0 || len(s.Stack) > 3 {
				t.Fatalf("stack: %v", s.Stack)
			}
		}
		// The folded export must hold one well-formed line per bucket.
		var folded bytes.Buffer
		if err := WriteFolded(&folded, p); err != nil {
			t.Fatalf("folded export failed: %v", err)
		}
		if got := bytes.Count(folded.Bytes(), []byte("\n")); got != len(p.Buckets) {
			t.Fatalf("folded lines %d, want %d", got, len(p.Buckets))
		}
		// Full round trip: the reconstructed profile matches the bucket
		// census and recovers the loss accounting from the comments.
		q, err := FromDecoded(d)
		if err != nil {
			t.Fatalf("FromDecoded failed: %v", err)
		}
		if len(q.Buckets) != len(p.Buckets) || q.Lost != p.Lost {
			t.Fatalf("round trip: %d buckets lost %d, want %d/%d",
				len(q.Buckets), q.Lost, len(p.Buckets), p.Lost)
		}
		if b := q.ErrorBound(); math.IsNaN(b) || b < 0 || b > 1 {
			t.Fatalf("round-tripped bound %g outside [0,1]", b)
		}
	})
}
