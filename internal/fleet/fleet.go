// Package fleet scales the simulator from one machine to thousands: a
// deterministic weighted-template generator expands a seed and a template
// mix into N fully-specified scenario machines (staggered cold-starts,
// per-machine derived seeds, optional per-machine chaos plans), a bounded
// worker pool runs every machine's event-driven simulation to completion,
// and a roll-up pass aggregates the per-core-type counters, energy,
// degradation tallies and incidents of the whole fleet into one
// reproducible JSON report.
//
// Everything flows from the fleet seed. Per-machine quantities — the
// scheduler seed, the cold-start offset, whether the machine draws a
// chaos plan and which plan it draws — are derived with a splitmix64
// stream keyed on (fleet seed, stream id, machine index), so machine
// k's behavior never depends on how many machines surround it or on
// which worker runs it. The same (seed, config) pair therefore produces
// a byte-identical fleet report at any worker count, which is the
// property the determinism sweep in run_test.go pins.
package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
	"hetpapi/internal/workload"
)

// Stream ids for the per-machine splitmix64 derivations. Each consumer
// of fleet randomness owns one stream so adding a new derived quantity
// never shifts the values of the existing ones.
const (
	streamAssign = 0x41 // template-assignment shuffle
	streamSched  = 0x53 // per-machine scheduler seed
	streamStart  = 0x43 // cold-start stagger offset
	streamChaos  = 0x58 // chaos gate + plan seed
)

// splitmix64 is the 64-bit finalizing mixer of Steele et al.'s
// SplitMix64, used here as a keyed hash: it turns (seed, stream, index)
// into an independent, well-distributed 64-bit value without any
// sequential RNG state to share between machines.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// derive produces the per-machine 64-bit value of one stream.
func derive(fleetSeed int64, stream uint64, index int) uint64 {
	return splitmix64(splitmix64(uint64(fleetSeed)^stream<<56) + uint64(index))
}

// deriveSeed is derive clamped into the positive int64 range the
// subsystem seeds expect.
func deriveSeed(fleetSeed int64, stream uint64, index int) int64 {
	return int64(derive(fleetSeed, stream, index) >> 1)
}

// deriveUnit maps one stream value onto [0, 1).
func deriveUnit(fleetSeed int64, stream uint64, index int) float64 {
	return float64(derive(fleetSeed, stream, index)>>11) / (1 << 53)
}

// Template is one weighted machine archetype of a fleet: a prototype
// scenario.Spec (machine model, workload mix, injections, measurement
// probe) plus its relative frequency in the generated population.
type Template struct {
	// Name labels the template in machine ids and the report.
	Name string
	// Weight is the template's relative frequency (must be positive).
	Weight int
	// Spec is the prototype scenario. It is cloned per generated
	// machine; per-run stateful fields (Invariants, StepHooks, Tracer,
	// Stop) must be nil, and Sched.Seed must be unset so the derived
	// per-machine seed takes effect.
	Spec scenario.Spec
}

// GenConfig parameterizes fleet generation.
type GenConfig struct {
	// Machines is the fleet size N.
	Machines int
	// Seed is the fleet seed every per-machine quantity derives from.
	Seed int64
	// Templates is the weighted mix; nil selects DefaultTemplates().
	Templates []Template
	// StaggerSec spreads machine cold-starts over [0, StaggerSec):
	// machine k's workloads (and measurement probe) start at a derived
	// offset inside the window, modeling a fleet that boots in waves
	// instead of in lockstep. 0 disables staggering.
	StaggerSec float64
	// Chaos, when non-nil, derives per-machine fault plans; see
	// ChaosConfig.
	Chaos *ChaosConfig
	// MaxSecondsOverride, when positive, replaces every template's
	// MaxSeconds bound (the CLI's -max-seconds knob).
	MaxSecondsOverride float64
}

// MachineSpec is one generated machine, ready to run.
type MachineSpec struct {
	// ID is the fleet-unique machine id ("m0042").
	ID string
	// Index is the machine's position in the fleet (the derivation key).
	Index int
	// Template names the template the machine was expanded from.
	Template string
	// Seed is the derived scheduler seed.
	Seed int64
	// StartOffsetSec is the derived cold-start offset.
	StartOffsetSec float64
	// Spec is the machine's fully-resolved scenario (cloned, renamed,
	// seeded, staggered). The runner clones it again per run so a Fleet
	// can be executed multiple times.
	Spec scenario.Spec
	// ChaosSeed and ChaosProfile define the machine's fault plan
	// (faults.Random(ChaosSeed, *ChaosProfile)); ChaosProfile is nil on
	// machines the chaos gate spared.
	ChaosSeed    int64
	ChaosProfile *faults.Profile
}

// Fleet is a generated machine population plus the config that produced
// it.
type Fleet struct {
	Config   GenConfig
	Machines []MachineSpec
	// Counts holds the per-template machine counts, in template order.
	Counts []int
}

// DefaultTemplates returns the built-in template mix: one archetype per
// machine family, each small enough that thousand-machine fleets stay
// inside an ordinary run. The hybrid templates keep the paper's P-vs-E
// asymmetry load-bearing; the big.LITTLE template carries a PAPI
// measurement probe so chaos plans exercise the degradation ladder.
func DefaultTemplates() []Template {
	return []Template{
		{
			Name:   "raptor-hpl",
			Weight: 4,
			Spec: scenario.Spec{
				Machine:         "raptorlake",
				MaxSeconds:      4,
				SamplePeriodSec: 0.5,
				Workloads: []scenario.WorkloadSpec{{
					Kind:     scenario.WorkloadHPL,
					Name:     "hpl",
					CPUs:     []int{0, 2, 4, 6},
					N:        2048,
					NB:       128,
					Strategy: workload.OpenBLASx86(),
					Seed:     1,
				}},
			},
		},
		{
			Name:   "biglittle-measure",
			Weight: 3,
			Spec: scenario.Spec{
				Machine:         "orangepi800",
				MaxSeconds:      4,
				SamplePeriodSec: 0.5,
				Workloads: []scenario.WorkloadSpec{{
					Kind:        scenario.WorkloadLoop,
					Name:        "little-loop",
					CPUs:        []int{0, 1},
					InstrPerRep: 1e6,
					Reps:        1500,
				}},
				Measure: &scenario.MeasureSpec{
					Workload: 0,
					Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
				},
			},
		},
		{
			Name:   "homogeneous-stream",
			Weight: 2,
			Spec: scenario.Spec{
				Machine:         "homogeneous",
				MaxSeconds:      4,
				SamplePeriodSec: 0.5,
				Workloads: []scenario.WorkloadSpec{
					{Kind: scenario.WorkloadStream, Name: "stream", CPUs: []int{0, 1},
						Instructions: 1.5e9, LLCMissRate: 0.3, Seed: 2},
					{Kind: scenario.WorkloadSpin, Name: "spin", CPUs: []int{2}, Seconds: 1},
				},
			},
		},
	}
}

// validateTemplate rejects prototypes whose per-run state would alias
// between fleet machines, and resolves the machine model early so bad
// template names fail at generation time, not mid-run.
func validateTemplate(i int, t Template) (*hw.Machine, error) {
	if t.Name == "" {
		return nil, fmt.Errorf("fleet: template %d has no name", i)
	}
	if t.Weight <= 0 {
		return nil, fmt.Errorf("fleet: template %q has non-positive weight %d", t.Name, t.Weight)
	}
	s := &t.Spec
	if s.Invariants != nil {
		return nil, fmt.Errorf("fleet: template %q carries Invariants (per-run state; leave nil so each machine builds a fresh set)", t.Name)
	}
	if len(s.StepHooks) != 0 || s.Tracer != nil || s.Stop != nil {
		return nil, fmt.Errorf("fleet: template %q carries per-run hooks (StepHooks/Tracer/Stop must be nil)", t.Name)
	}
	if s.Sched != nil && s.Sched.Seed != 0 {
		return nil, fmt.Errorf("fleet: template %q pins Sched.Seed; it would override the derived per-machine seed", t.Name)
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("fleet: template %q has no workloads", t.Name)
	}
	mk := s.MachineFn
	if mk == nil {
		var ok bool
		mk, ok = scenario.Machines[s.Machine]
		if !ok {
			return nil, fmt.Errorf("fleet: template %q names unknown machine %q", t.Name, s.Machine)
		}
	}
	m := mk()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: template %q: %w", t.Name, err)
	}
	return m, nil
}

// apportion splits n machines across the template weights with the
// largest-remainder method: every template gets floor(n*w/W), and the
// leftover machines go to the largest fractional remainders (ties to the
// earlier template). The counts always sum exactly to n.
func apportion(n int, templates []Template) []int {
	totalW := 0
	for _, t := range templates {
		totalW += t.Weight
	}
	counts := make([]int, len(templates))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(templates))
	assigned := 0
	for i, t := range templates {
		exact := float64(n) * float64(t.Weight) / float64(totalW)
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - math.Floor(exact)}
	}
	// Stable selection sort by descending remainder keeps ties in
	// template order without pulling in sort for a handful of entries.
	for assigned < n {
		best := -1
		for i := range rems {
			if rems[i].idx < 0 {
				continue
			}
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].idx = -1
		assigned++
	}
	return counts
}

// Generate expands the config into a fully-specified fleet. The same
// config always produces the identical fleet, machine by machine.
func Generate(cfg GenConfig) (*Fleet, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("fleet: machine count %d must be positive", cfg.Machines)
	}
	templates := cfg.Templates
	if templates == nil {
		templates = DefaultTemplates()
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("fleet: no templates")
	}
	models := make([]*hw.Machine, len(templates))
	for i, t := range templates {
		m, err := validateTemplate(i, t)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	if cfg.StaggerSec < 0 || math.IsNaN(cfg.StaggerSec) || math.IsInf(cfg.StaggerSec, 0) {
		return nil, fmt.Errorf("fleet: invalid stagger window %v", cfg.StaggerSec)
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.validate(); err != nil {
			return nil, err
		}
	}

	counts := apportion(cfg.Machines, templates)
	// Deal the template indices out in blocks, then shuffle with a
	// derived RNG so the mix interleaves deterministically.
	tplOf := make([]int, 0, cfg.Machines)
	for ti, c := range counts {
		for k := 0; k < c; k++ {
			tplOf = append(tplOf, ti)
		}
	}
	shuffleRng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, streamAssign, 0)))
	shuffleRng.Shuffle(len(tplOf), func(i, j int) { tplOf[i], tplOf[j] = tplOf[j], tplOf[i] })

	f := &Fleet{Config: cfg, Counts: counts, Machines: make([]MachineSpec, cfg.Machines)}
	for i := 0; i < cfg.Machines; i++ {
		ti := tplOf[i]
		tpl := &templates[ti]
		spec := tpl.Spec.Clone()
		ms := &f.Machines[i]
		ms.ID = fmt.Sprintf("m%04d", i)
		ms.Index = i
		ms.Template = tpl.Name
		ms.Seed = deriveSeed(cfg.Seed, streamSched, i)
		spec.Name = ms.ID + "-" + tpl.Name
		spec.Seed = ms.Seed
		if cfg.MaxSecondsOverride > 0 {
			spec.MaxSeconds = cfg.MaxSecondsOverride
		}
		if cfg.StaggerSec > 0 {
			ms.StartOffsetSec = deriveUnit(cfg.Seed, streamStart, i) * cfg.StaggerSec
			for w := range spec.Workloads {
				spec.Workloads[w].StartSec += ms.StartOffsetSec
			}
			if spec.Measure != nil {
				spec.Measure.StartSec += ms.StartOffsetSec
			}
			if spec.MaxSeconds > 0 {
				// Late starters keep their full run window.
				spec.MaxSeconds += ms.StartOffsetSec
			}
		}
		if cfg.Chaos != nil {
			gate := deriveUnit(cfg.Seed, streamChaos, 2*i)
			if gate < cfg.Chaos.IncidentRate {
				ms.ChaosSeed = deriveSeed(cfg.Seed, streamChaos, 2*i+1)
				p := cfg.Chaos.profileFor(models[ti], &spec)
				ms.ChaosProfile = &p
			}
		}
		ms.Spec = spec
	}
	return f, nil
}
