package fleet

import (
	"fmt"
	"math"
	"sort"

	"hetpapi/internal/telemetry"
)

// AnomalyConfig parameterizes the online outlier detector that runs
// over the streamed telemetry after a fleet run.
type AnomalyConfig struct {
	// Threshold is the robust z-score above which a machine is flagged
	// (<= 0 selects 4.0). With normally distributed data a robust
	// z-score of 4 is ~4 sigma; template populations are compared only
	// against themselves, so heterogeneous fleets don't cross-flag.
	Threshold float64
	// MinMachines is the smallest population a metric is scored over
	// (<= 0 selects 8): median/MAD over fewer machines is too noisy to
	// call anything an outlier.
	MinMachines int
	// Rung selects the downsampling resolution the per-machine features
	// are summarized from (0 selects Rung1s).
	Rung telemetry.Rung
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.Threshold <= 0 {
		c.Threshold = 4.0
	}
	if c.MinMachines <= 0 {
		c.MinMachines = 8
	}
	if c.Rung <= telemetry.RungRaw {
		c.Rung = telemetry.Rung1s
	}
	return c
}

// Anomaly is one flagged (machine, metric) pair: the machine's feature
// value against its template population's median and MAD, and the
// robust z-score that crossed the threshold.
type Anomaly struct {
	Machine  string  `json:"machine"`
	Template string  `json:"template"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Median   float64 `json:"median"`
	MAD      float64 `json:"mad"`
	Score    float64 `json:"score"`
}

func (a Anomaly) String() string {
	return fmt.Sprintf("%s %s=%.6g vs median %.6g (MAD %.3g, score %.1f)",
		a.Machine, a.Metric, a.Value, a.Median, a.MAD, a.Score)
}

// robustScore is |x − median| / (1.4826·MAD + ε): the MAD estimates
// sigma for normal data when scaled by 1.4826, and the epsilon keeps a
// degenerate population (MAD 0, e.g. identical machines) from dividing
// by zero — then any deviation at all scores huge, which is the right
// call for a population that agrees exactly.
func robustScore(x, median, mad float64) float64 {
	return math.Abs(x-median) / (1.4826*mad + 1e-12)
}

// medianOf returns the median of xs (sorted copy; mean of middle pair
// for even n). Empty input returns 0.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// DetectAnomalies scores every machine's streamed rung summaries
// against its template population and returns the outliers, ordered by
// machine index then metric. Everything it reads is deterministic —
// per-series rung buckets are written by exactly one machine goroutine
// at simulated times, medians are computed over sorted copies, and
// machines are visited in fleet-index order — so the result is
// byte-identical across worker counts and safe to embed in the Report.
//
// The features per machine: mean package power (power_w), peak die
// temperature (temp_c max), final package energy (energy_j last), and
// the final total of each degradation tally. Counter series are left to
// /fleet/query: their magnitudes are workload-dependent in ways the
// robust z-score over a mixed-duration population would misread.
func DetectAnomalies(store *telemetry.Store, f *Fleet, cfg AnomalyConfig) []Anomaly {
	cfg = cfg.withDefaults()

	type feature struct {
		metric  string
		series  string
		extract func(b bucketSummary) float64
	}
	features := []feature{
		{"power_w_mean", "power_w", func(b bucketSummary) float64 { return b.mean }},
		{"temp_c_max", "temp_c", func(b bucketSummary) float64 { return b.max }},
		{"energy_j_last", "energy_j", func(b bucketSummary) float64 { return b.last }},
	}
	for _, d := range []string{"busy_retries", "deferred_starts", "multiplex_fallback",
		"hotplug_rebuilds", "stale_reads", "degraded_reads"} {
		d := d
		features = append(features, feature{
			metric:  "degradation_" + d,
			series:  telemetry.DegradationSeriesName(d),
			extract: func(b bucketSummary) float64 { return b.last },
		})
	}

	// Group machine indices by template: populations are compared only
	// against machines built from the same prototype.
	byTemplate := map[string][]int{}
	var templates []string
	for i := range f.Machines {
		tpl := f.Machines[i].Template
		if _, ok := byTemplate[tpl]; !ok {
			templates = append(templates, tpl)
		}
		byTemplate[tpl] = append(byTemplate[tpl], i)
	}
	sort.Strings(templates)

	type scored struct {
		machineIdx int
		a          Anomaly
	}
	var out []scored
	for _, tpl := range templates {
		idxs := byTemplate[tpl]
		if len(idxs) < cfg.MinMachines {
			continue
		}
		for _, ft := range features {
			var values []float64
			var members []int
			for _, i := range idxs {
				b, ok := summarize(store, f.Machines[i].ID, ft.series, cfg.Rung)
				if !ok {
					continue
				}
				values = append(values, ft.extract(b))
				members = append(members, i)
			}
			if len(values) < cfg.MinMachines {
				continue
			}
			med := medianOf(values)
			devs := make([]float64, len(values))
			for i, v := range values {
				devs[i] = math.Abs(v - med)
			}
			mad := medianOf(devs)
			for i, v := range values {
				if score := robustScore(v, med, mad); score > cfg.Threshold {
					out = append(out, scored{members[i], Anomaly{
						Machine:  f.Machines[members[i]].ID,
						Template: tpl,
						Metric:   ft.metric,
						Value:    v,
						Median:   med,
						MAD:      mad,
						Score:    score,
					}})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].machineIdx != out[j].machineIdx {
			return out[i].machineIdx < out[j].machineIdx
		}
		return out[i].a.Metric < out[j].a.Metric
	})
	anomalies := make([]Anomaly, 0, len(out))
	for _, s := range out {
		anomalies = append(anomalies, s.a)
	}
	return anomalies
}

// bucketSummary is the reduced window summary of one series' rung.
type bucketSummary struct {
	mean, min, max, last float64
	n                    int64
}

func summarize(store *telemetry.Store, machine, series string, r telemetry.Rung) (bucketSummary, bool) {
	b, ok := store.RungSummary(telemetry.Key{Machine: machine, Series: series}, r, -1, -1)
	if !ok || b.N == 0 {
		return bucketSummary{}, false
	}
	return bucketSummary{mean: b.Mean(), min: b.Min, max: b.Max, last: b.Last, n: b.N}, true
}
