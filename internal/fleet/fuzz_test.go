package fleet

import (
	"reflect"
	"testing"

	"hetpapi/internal/scenario"
)

// FuzzFleetGen drives the generator with arbitrary sizes, seeds,
// weights and chaos/stagger knobs: Generate must never panic, and every
// accepted config must yield exactly N machines whose per-template
// counts sum to N, with unique ids and a regeneration-identical fleet.
func FuzzFleetGen(f *testing.F) {
	f.Add(10, int64(1), 1, 1, 0.5, 0.25)
	f.Add(1, int64(42), 7, 0, 0.0, 0.0)
	f.Add(1000, int64(-3), 100, 1, 2.0, 1.0)
	f.Add(3, int64(1<<50), -5, 3, -1.0, 1.5)
	f.Fuzz(func(t *testing.T, n int, seed int64, w1, w2 int, stagger, rate float64) {
		if n > 2000 {
			n %= 2000 // bound generation work, not the input space
		}
		cfg := GenConfig{
			Machines: n,
			Seed:     seed,
			Templates: []Template{
				{Name: "a", Weight: w1, Spec: scenario.Spec{
					Machine: "homogeneous", MaxSeconds: 1,
					Workloads: []scenario.WorkloadSpec{{Kind: scenario.WorkloadSpin, CPUs: []int{0}, Seconds: 0.1}},
				}},
				{Name: "b", Weight: w2, Spec: scenario.Spec{
					Machine: "raptorlake", MaxSeconds: 1,
					Workloads: []scenario.WorkloadSpec{{Kind: scenario.WorkloadLoop, CPUs: []int{0}, InstrPerRep: 1e6, Reps: 10}},
				}},
			},
			StaggerSec: stagger,
			Chaos:      &ChaosConfig{IncidentRate: rate, MaxEvents: 4},
		}
		fl, err := Generate(cfg)
		if err != nil {
			// Invalid configs (bad weights, counts, rates, windows) must
			// be rejected, never half-generated.
			if fl != nil {
				t.Fatalf("Generate returned both a fleet and error %v", err)
			}
			return
		}
		if len(fl.Machines) != n {
			t.Fatalf("asked for %d machines, got %d", n, len(fl.Machines))
		}
		sum := 0
		for _, c := range fl.Counts {
			if c < 0 {
				t.Fatalf("negative template count in %v", fl.Counts)
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("counts %v sum to %d, want %d", fl.Counts, sum, n)
		}
		seen := make(map[string]bool, n)
		for _, ms := range fl.Machines {
			if seen[ms.ID] {
				t.Fatalf("duplicate machine id %s", ms.ID)
			}
			seen[ms.ID] = true
			if stagger > 0 && (ms.StartOffsetSec < 0 || ms.StartOffsetSec >= stagger) {
				t.Fatalf("offset %v outside [0,%v)", ms.StartOffsetSec, stagger)
			}
		}
		again, err := Generate(cfg)
		if err != nil {
			t.Fatalf("second Generate failed: %v", err)
		}
		if !reflect.DeepEqual(fl.Machines, again.Machines) {
			t.Fatal("regeneration with the identical config produced a different fleet")
		}
	})
}
