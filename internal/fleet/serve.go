package fleet

import (
	"net/http"
	"sync"

	"hetpapi/internal/telemetry"
)

// Monitor publishes fleet-run state over HTTP: the latest roll-up
// report, the in-flight flag, and (when the run streamed) the
// pipeline's self-overhead snapshot. Mount it onto a telemetry server
// with Register; the dependency points fleet → telemetry, so the
// telemetry package stays a pure store/serving layer.
type Monitor struct {
	mu       sync.RWMutex
	report   *Report
	running  bool
	overhead *SelfOverhead
}

// NewMonitor builds an empty monitor (/fleet serves 404 until the
// first SetReport).
func NewMonitor() *Monitor { return &Monitor{} }

// Register mounts the monitor's /fleet endpoint onto the server. Call
// before the server's Handler.
func (m *Monitor) Register(s *telemetry.Server) {
	s.Mount("/fleet", http.HandlerFunc(m.HandleFleet))
}

// SetReport publishes a fleet roll-up for /fleet to serve, replacing
// any previous one. overhead carries the run's streaming self-overhead
// snapshot (nil when the run didn't stream); it rides alongside the
// report rather than inside it because it is wall-clock data and the
// report must stay byte-identical across worker counts.
func (m *Monitor) SetReport(r *Report, overhead *SelfOverhead) {
	m.mu.Lock()
	m.report = r
	m.overhead = overhead
	m.mu.Unlock()
}

// SetRunning flips the in-flight flag /fleet reports alongside the
// latest roll-up.
func (m *Monitor) SetRunning(running bool) {
	m.mu.Lock()
	m.running = running
	m.mu.Unlock()
}

// FleetInfo is the /fleet response body: the latest fleet roll-up plus
// the in-flight flag and, for streamed runs, the pipeline's measured
// self-overhead.
type FleetInfo struct {
	Running      bool          `json:"running"`
	Report       *Report       `json:"report"`
	SelfOverhead *SelfOverhead `json:"self_overhead,omitempty"`
}

// HandleFleet serves the latest fleet roll-up report. The per-machine
// results array is omitted unless results=1 is passed; the roll-up
// aggregates, incident ledger, anomalies and digest are always
// included. 404 until the first fleet run has completed (the running
// flag in the error-free path tells pollers one is underway).
func (m *Monitor) HandleFleet(w http.ResponseWriter, r *http.Request) {
	m.mu.RLock()
	rep, running, overhead := m.report, m.running, m.overhead
	m.mu.RUnlock()
	if rep == nil {
		if running {
			telemetry.WriteJSON(w, http.StatusOK, FleetInfo{Running: true})
			return
		}
		telemetry.WriteAPIError(w, http.StatusNotFound, "no fleet report (daemon running without -fleet, or first run still pending)")
		return
	}
	q := r.URL.Query().Get("results")
	if q != "1" && q != "true" {
		rep = rep.Compact()
	}
	telemetry.WriteJSON(w, http.StatusOK, FleetInfo{Running: running, Report: rep, SelfOverhead: overhead})
}
