package fleet

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"hetpapi/internal/hw"
)

func genTestFleet(t *testing.T, n int, seed int64) *Fleet {
	t.Helper()
	f, err := Generate(GenConfig{
		Machines:   n,
		Seed:       seed,
		Templates:  testTemplates(),
		StaggerSec: 0.4,
		Chaos:      &ChaosConfig{IncidentRate: 0.4, MaxEvents: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetDeterminismSweep is the load-bearing fleet property: the
// same seed must produce the byte-identical JSON report across repeated
// runs at different worker counts. Three runs (workers 1, 4 and
// GOMAXPROCS) over a chaos-enabled mixed-template fleet.
func TestFleetDeterminismSweep(t *testing.T) {
	const n = 18
	var golden []byte
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		f := genTestFleet(t, n, 77)
		rep, err := Run(context.Background(), f, RunConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed != n {
			t.Fatalf("run %d (workers=%d): %d/%d machines completed; incidents: %+v",
				i, workers, rep.Completed, n, rep.Incidents)
		}
		js := reportJSON(t, rep)
		if golden == nil {
			golden = js
			continue
		}
		if !bytes.Equal(js, golden) {
			t.Fatalf("run %d (workers=%d) diverged from the first report", i, workers)
		}
	}
}

// TestFleetRerunSameFleet: one generated Fleet value must be safely
// runnable multiple times (the per-run Stop/StepHooks must not
// accumulate on the stored specs).
func TestFleetRerunSameFleet(t *testing.T) {
	f := genTestFleet(t, 6, 5)
	a, err := Run(context.Background(), f, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), f, RunConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("re-running the same fleet diverged: %s vs %s", a.Digest[:12], b.Digest[:12])
	}
	for i := range f.Machines {
		if f.Machines[i].Spec.Stop != nil || len(f.Machines[i].Spec.StepHooks) != 0 {
			t.Fatalf("machine %s spec accumulated per-run hooks", f.Machines[i].ID)
		}
	}
}

// TestFleetPanicIsolation: a machine whose simulation panics must be
// recorded as an incident without taking down the pool or the sibling
// machines.
func TestFleetPanicIsolation(t *testing.T) {
	good := testTemplates()[0].Spec.Clone()
	good.Name = "good"
	bomb := good.Clone()
	bomb.Name = "bomb"
	bomb.MachineFn = func() *hw.Machine { panic("synthetic machine fault") }
	f := &Fleet{Machines: []MachineSpec{
		{ID: "m0000", Index: 0, Template: "good", Spec: good},
		{ID: "m0001", Index: 1, Template: "bomb", Spec: bomb},
		{ID: "m0002", Index: 2, Template: "good", Spec: good},
	}}
	rep, err := Run(context.Background(), f, RunConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Panics != 1 || rep.Completed != 2 {
		t.Fatalf("panics=%d completed=%d, want 1 and 2", rep.Panics, rep.Completed)
	}
	found := false
	for _, inc := range rep.Incidents {
		if inc.Kind == "panic" && inc.Machine == "m0001" {
			found = true
			if inc.Detail != "synthetic machine fault" {
				t.Fatalf("panic detail %q", inc.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("no panic incident in ledger: %+v", rep.Incidents)
	}
}

// TestFleetCancellation: cancelling the context mid-run stops in-flight
// machines and skips unstarted ones, and Run still returns the partial
// report.
func TestFleetCancellation(t *testing.T) {
	f := genTestFleet(t, 12, 9)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	rep, err := Run(ctx, f, RunConfig{
		Workers: 2,
		OnMachine: func(MachineResult) {
			ran++
			if ran == 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatalf("no machines skipped after early cancel: completed=%d stopped=%d skipped=%d",
			rep.Completed, rep.Stopped, rep.Skipped)
	}
	if rep.Completed+rep.Stopped+rep.Skipped+rep.Panics+rep.Errors != 12 {
		t.Fatalf("outcome counts do not cover the fleet: %+v", rep)
	}
}

// TestFleetRollupFigures sanity-checks the aggregates: every completed
// machine contributes instructions on its core types, the measured
// templates surface degradation tallies as plain counters, and the
// compact form drops only the per-machine array.
func TestFleetRollupFigures(t *testing.T) {
	f := genTestFleet(t, 10, 21)
	rep, err := Run(context.Background(), f, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MachineSimSec <= 0 || rep.EnergyJ <= 0 {
		t.Fatalf("empty roll-up: sim=%v energy=%v", rep.MachineSimSec, rep.EnergyJ)
	}
	// The homogeneous template exposes "core"; the big.LITTLE one
	// exposes "LITTLE" and "big".
	for _, typ := range []string{"core", "LITTLE", "big"} {
		ins, ok := rep.ByType[typ]["instructions"]
		if !ok || ins.N == 0 {
			t.Fatalf("no instruction aggregate for core type %q: %+v", typ, rep.ByType)
		}
		if ins.Min > ins.P50 || ins.P50 > ins.Max {
			t.Fatalf("%s quantiles out of order: %+v", typ, ins)
		}
	}
	if len(rep.Results) != 10 {
		t.Fatalf("results array has %d entries", len(rep.Results))
	}
	c := rep.Compact()
	if c.Results != nil || c.Digest != rep.Digest {
		t.Fatal("Compact changed more than the results array")
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestFleetChaosFeedsLedger: with chaos at rate 1 every machine draws a
// plan, and applied fault transitions appear in the incident ledger.
func TestFleetChaosFeedsLedger(t *testing.T) {
	f, err := Generate(GenConfig{
		Machines:  6,
		Seed:      13,
		Templates: testTemplates(),
		Chaos:     &ChaosConfig{IncidentRate: 1, MaxEvents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := func() int {
		n := 0
		for _, ms := range f.Machines {
			if ms.ChaosProfile != nil {
				n++
			}
		}
		return n
	}(); got != 6 {
		t.Fatalf("rate-1 chaos armed %d/6 machines", got)
	}
	rep, err := Run(context.Background(), f, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	for _, inc := range rep.Incidents {
		if inc.Kind == "fault" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no fault transitions reached the incident ledger under rate-1 chaos")
	}
	if rep.Completed != 6 {
		t.Fatalf("healing chaos plans should not stop completion: %d/6 completed, incidents %+v",
			rep.Completed, rep.Incidents)
	}
}
