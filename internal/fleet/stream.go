package fleet

import (
	"sync/atomic"
	"time"

	"hetpapi/internal/power"
	"hetpapi/internal/scenario"
	"hetpapi/internal/telemetry"
)

// Streamer wires a fleet run into a shared telemetry store: every
// machine gets a step hook that samples its post-tick state on the
// scenario's monitoring cadence and appends the series under the
// machine's fleet id, tagged (via Store.SetMeta) with its template and
// machine model so population queries can group by either.
//
// To keep a 1,000-machine run inside one store, the streamer emits the
// population form of the counter series — per-core-type totals
// (type/<core-type>/<kind>) rather than one series per CPU — plus the
// machine scalars (power_w, energy_j, temp_c, wall_w) and the
// degradation tallies when the machine carries a PAPI probe. Per-series
// writes happen from exactly one machine's goroutine at deterministic
// simulated times with deterministic values, so the store's rung
// contents are a pure function of (seed, config) even though machines
// ingest concurrently.
//
// The streamer accounts for its own cost (Diamond et al.: a monitor
// must measure itself): every hook invocation adds its wall-clock time
// and appended-point count to atomic gauges, exported on demand as
// selfoverhead/* series under the reserved machine id "fleet" and
// surfaced in SelfOverhead snapshots. The gauges are wall-clock and so
// live strictly outside the deterministic Report.
type Streamer struct {
	store *telemetry.Store
	// periodSec overrides the per-spec monitoring cadence when > 0.
	periodSec float64
	// baseSec offsets every sample's time axis: daemon loop mode reruns
	// fleets onto the same machine ids, so each round must land after
	// the previous round's last sample to keep per-series times
	// monotonic (see SetBaseSec / MaxSec).
	baseSec float64

	points   atomic.Int64
	samples  atomic.Int64
	ingestNs atomic.Int64
	machines atomic.Int64
	maxNs    atomic.Int64
}

// OverheadMachine is the reserved machine id the streamer's
// self-overhead series are filed under.
const OverheadMachine = "fleet"

// NewStreamer builds a streamer feeding the store. periodSec sets the
// sampling cadence in simulated seconds; <= 0 uses each spec's
// SamplePeriodSec (or the paper's 1 Hz when that is unset too).
func NewStreamer(store *telemetry.Store, periodSec float64) *Streamer {
	return &Streamer{store: store, periodSec: periodSec}
}

// Store returns the telemetry store the streamer feeds.
func (st *Streamer) Store() *telemetry.Store { return st.store }

// SetBaseSec shifts the streamer's time axis: every sample lands at
// base + machine sim time. Call between fleet rounds (before any hooks
// run) with a value past the previous round's MaxSec.
func (st *Streamer) SetBaseSec(base float64) { st.baseSec = base }

// MaxSec returns the latest (offset) sample time any machine reached.
func (st *Streamer) MaxSec() float64 { return float64(st.maxNs.Load()) / 1e9 }

// typeAcc accumulates one (core type, kind) counter total during a
// sample pass; kept in a slice so iteration order follows ctx.Wide.
type typeAcc struct {
	typeName string
	kind     string
	series   string
	sum      float64
	seen     bool
}

// hookFor builds the per-machine step hook. Each hook owns its sampling
// state; only the gauges and the store are shared.
func (st *Streamer) hookFor(ms *MachineSpec) scenario.StepHook {
	st.machines.Add(1)
	st.store.SetMeta(ms.ID, telemetry.MachineMeta{Template: ms.Template, Model: ms.Spec.Machine})
	machine := ms.ID
	period := st.periodSec
	if period <= 0 {
		period = ms.Spec.SamplePeriodSec
	}
	if period <= 0 {
		period = 1.0
	}
	base := st.baseSec
	var accs []typeAcc
	nextSample := -1.0
	return func(ctx *scenario.Context) {
		simNow := ctx.Sim.Now()
		if nextSample < 0 {
			nextSample = simNow // sample the first tick, then every period
		}
		if simNow < nextSample {
			return
		}
		start := time.Now()
		nextSample += period
		if nextSample <= simNow {
			// The cadence is coarser than the tick but must never fire
			// twice per tick; realign after a long stall.
			nextSample = simNow + period
		}
		now := base + simNow
		for ns := int64(now * 1e9); ; {
			cur := st.maxNs.Load()
			if ns <= cur || st.maxNs.CompareAndSwap(cur, ns) {
				break
			}
		}
		n := int64(0)
		s := ctx.Sim
		st.store.Append(telemetry.Key{Machine: machine, Series: "power_w"}, now, s.Power.PkgPowerW())
		st.store.Append(telemetry.Key{Machine: machine, Series: "energy_j"}, now, s.Power.EnergyJ(power.DomainPkg))
		st.store.Append(telemetry.Key{Machine: machine, Series: "temp_c"}, now, s.Thermal.TempC())
		st.store.Append(telemetry.Key{Machine: machine, Series: "wall_w"}, now, s.Power.WallPowerW())
		n += 4
		for i := range accs {
			accs[i].sum, accs[i].seen = 0, false
		}
		for _, we := range ctx.Wide {
			if we.Dead {
				continue
			}
			count, err := s.Kernel.Read(we.FD)
			if err != nil {
				continue
			}
			kind := we.Kind.String()
			idx := -1
			for i := range accs {
				if accs[i].typeName == we.TypeName && accs[i].kind == kind {
					idx = i
					break
				}
			}
			if idx < 0 {
				idx = len(accs)
				accs = append(accs, typeAcc{
					typeName: we.TypeName, kind: kind,
					series: telemetry.TypeSeriesName(we.TypeName, kind),
				})
			}
			accs[idx].sum += float64(count.Value)
			accs[idx].seen = true
		}
		for i := range accs {
			if !accs[i].seen {
				continue
			}
			st.store.Append(telemetry.Key{Machine: machine, Series: accs[i].series}, now, accs[i].sum)
			n++
		}
		if m := ctx.Measure; m != nil && len(m.LastValues) > 0 {
			r := m.Set.Degradations()
			for _, g := range [...]struct {
				name string
				v    int
			}{
				{"busy_retries", r.BusyRetries},
				{"deferred_starts", r.DeferredStarts},
				{"multiplex_fallback", r.MultiplexFallback},
				{"hotplug_rebuilds", r.HotplugRebuilds},
				{"stale_reads", r.StaleReads},
				{"degraded_reads", r.DegradedReads},
			} {
				st.store.Append(telemetry.Key{Machine: machine, Series: telemetry.DegradationSeriesName(g.name)}, now, float64(g.v))
				n++
			}
		}
		st.points.Add(n)
		st.samples.Add(1)
		st.ingestNs.Add(int64(time.Since(start)))
	}
}

// SelfOverhead is a snapshot of the streamer's own measured cost.
type SelfOverhead struct {
	// Machines is the number of machine hooks installed; Samples the
	// sampling passes executed; Points the series points appended.
	Machines int64 `json:"machines"`
	Samples  int64 `json:"samples"`
	Points   int64 `json:"points"`
	// IngestSec is the summed wall-clock time spent inside hooks;
	// NsPerPoint and PointsPerSec derive from it.
	IngestSec    float64 `json:"ingest_sec"`
	NsPerPoint   float64 `json:"ns_per_point"`
	PointsPerSec float64 `json:"points_per_sec"`
	// Rejected is the store's count of non-finite samples dropped.
	Rejected int64 `json:"rejected"`
}

// SelfOverhead snapshots the streamer's cost gauges.
func (st *Streamer) SelfOverhead() SelfOverhead {
	o := SelfOverhead{
		Machines:  st.machines.Load(),
		Samples:   st.samples.Load(),
		Points:    st.points.Load(),
		IngestSec: float64(st.ingestNs.Load()) / 1e9,
		Rejected:  st.store.Rejected(),
	}
	if o.Points > 0 && o.IngestSec > 0 {
		o.NsPerPoint = o.IngestSec * 1e9 / float64(o.Points)
		o.PointsPerSec = float64(o.Points) / o.IngestSec
	}
	return o
}

// ExportOverhead appends the current self-overhead gauges as
// selfoverhead/* series under the reserved "fleet" machine id at time
// tSec (callers use the fleet round number, one export per round).
// These series are wall-clock measurements: they live in the store for
// dashboards and /fleet/query, never in the deterministic Report.
func (st *Streamer) ExportOverhead(tSec float64) SelfOverhead {
	o := st.SelfOverhead()
	t := tSec
	for _, g := range [...]struct {
		name string
		v    float64
	}{
		{"selfoverhead/points", float64(o.Points)},
		{"selfoverhead/samples", float64(o.Samples)},
		{"selfoverhead/ingest_ms", o.IngestSec * 1e3},
		{"selfoverhead/ns_per_point", o.NsPerPoint},
		{"selfoverhead/points_per_s", o.PointsPerSec},
		{"selfoverhead/rejected", float64(o.Rejected)},
	} {
		st.store.Append(telemetry.Key{Machine: OverheadMachine, Series: g.name}, t, g.v)
	}
	return o
}
