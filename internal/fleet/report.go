package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"hetpapi/internal/stats"
)

// Aggregate is one metric's distribution across the fleet's machines:
// streaming moments from a Welford accumulator plus windowed quantiles
// from a RingQuantile sized to the fleet, both fed in machine-index
// order so the figures are identical at any worker count.
type Aggregate struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// agg pairs the two streaming accumulators behind an Aggregate.
type agg struct {
	w *stats.Welford
	q *stats.RingQuantile
}

func newAgg(capacity int) *agg {
	return &agg{w: &stats.Welford{}, q: stats.NewRingQuantile(capacity)}
}

func (a *agg) add(v float64) {
	a.w.Add(v)
	a.q.Add(v)
}

func (a *agg) finish() Aggregate {
	if a.w.N() == 0 {
		return Aggregate{}
	}
	return Aggregate{
		N:      a.w.N(),
		Mean:   a.w.Mean(),
		Stddev: a.w.Stddev(),
		Min:    a.w.Min(),
		Max:    a.w.Max(),
		Sum:    a.w.Sum(),
		P50:    a.q.Quantile(50),
		P95:    a.q.Quantile(95),
		P99:    a.q.Quantile(99),
	}
}

// Incident is one ledger entry: a fault-plan transition, an invariant
// violation, a panic, or a machine that failed to complete.
type Incident struct {
	Machine  string `json:"machine"`
	Template string `json:"template"`
	// Kind is "fault", "invariant", "panic", "error", "stopped" or
	// "incomplete".
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// TemplateCount reports how many machines one template expanded into.
type TemplateCount struct {
	Template string `json:"template"`
	Machines int    `json:"machines"`
}

// Report is the fleet roll-up: population and outcome counts, the
// per-core-type counter distributions across machines, fleet-wide
// energy/elapsed/Gflops distributions, summed degradation tallies, the
// incident ledger, and a digest over every machine's behavioral digest.
// Everything in it derives from (seed, config) alone — no wall-clock
// times, worker counts or map iteration orders — so the marshalled JSON
// is byte-identical across runs and machine parallelism levels.
type Report struct {
	Seed       int64           `json:"seed"`
	Machines   int             `json:"machines"`
	Templates  []TemplateCount `json:"templates"`
	StaggerSec float64         `json:"stagger_sec,omitempty"`

	ChaosMachines int `json:"chaos_machines"`
	Completed     int `json:"completed"`
	Stopped       int `json:"stopped"`
	Skipped       int `json:"skipped"`
	Panics        int `json:"panics"`
	Errors        int `json:"errors"`

	// MachineSimSec is the summed simulated duration across machines —
	// the numerator of the fleet throughput benchmark.
	MachineSimSec float64 `json:"machine_sim_sec"`
	EnergyJ       float64 `json:"energy_j"`

	// ByType maps core type name -> counter name -> the distribution of
	// that per-machine counter delta across every machine exposing the
	// type ("P-core"/"instructions": mean/min/max/p95 across the fleet's
	// Raptor Lake population).
	ByType map[string]map[string]Aggregate `json:"by_type"`

	Elapsed Aggregate `json:"elapsed"`
	Energy  Aggregate `json:"energy"`
	// Gflops aggregates over machines that ran HPL (Gflops > 0).
	Gflops Aggregate `json:"gflops"`

	// Degradations sums the measurement-degradation tallies of every
	// machine that carried a PAPI probe.
	Degradations map[string]int `json:"degradations"`

	Incidents []Incident `json:"incidents"`

	// Anomalies holds the robust z-score outliers the detector flagged
	// over the streamed rung summaries (present only when a run had
	// both streaming and anomaly detection enabled). Each is mirrored
	// into the incident ledger under kind "anomaly". Deterministic: the
	// detector reads only seed-derived simulated data in machine-index
	// order.
	Anomalies []Anomaly `json:"anomalies,omitempty"`

	// Digest chains every machine's behavioral digest in index order;
	// it is the one-line fingerprint the determinism sweep compares.
	Digest string `json:"digest"`

	// Results holds the per-machine outcomes, in machine-index order.
	Results []MachineResult `json:"results,omitempty"`
}

// buildReport rolls results (indexed by machine) up into a Report. It
// runs strictly in machine-index order after the worker pool has
// drained, which is what makes the report independent of worker count.
func buildReport(f *Fleet, results []MachineResult) *Report {
	r := &Report{
		Seed:         f.Config.Seed,
		Machines:     len(f.Machines),
		StaggerSec:   f.Config.StaggerSec,
		ByType:       map[string]map[string]Aggregate{},
		Degradations: map[string]int{},
	}
	templates := f.Config.Templates
	if templates == nil {
		templates = DefaultTemplates()
	}
	// Hand-built fleets (tests, adapters) may lack Counts; recover the
	// per-template tally from the machines themselves then.
	if len(f.Counts) == len(templates) {
		for i, t := range templates {
			r.Templates = append(r.Templates, TemplateCount{Template: t.Name, Machines: f.Counts[i]})
		}
	} else {
		counts := map[string]int{}
		for _, ms := range f.Machines {
			counts[ms.Template]++
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r.Templates = append(r.Templates, TemplateCount{Template: name, Machines: counts[name]})
		}
	}
	for _, ms := range f.Machines {
		if ms.ChaosProfile != nil {
			r.ChaosMachines++
		}
	}

	n := len(results)
	elapsed, energy, gflops := newAgg(n), newAgg(n), newAgg(n)
	byType := map[string]map[string]*agg{}
	digest := sha256.New()
	fmt.Fprintf(digest, "fleet seed=%d n=%d\n", f.Config.Seed, len(f.Machines))

	for i := range results {
		mr := &results[i]
		switch {
		case mr.Skipped:
			r.Skipped++
		case mr.Panicked:
			r.Panics++
			r.Incidents = append(r.Incidents, Incident{
				Machine: mr.ID, Template: mr.Template, Kind: "panic", Detail: mr.PanicMsg})
		case mr.Error != "":
			r.Errors++
			r.Incidents = append(r.Incidents, Incident{
				Machine: mr.ID, Template: mr.Template, Kind: "error", Detail: mr.Error})
		default:
			if mr.Completed {
				r.Completed++
			} else if mr.Stopped {
				r.Stopped++
				r.Incidents = append(r.Incidents, Incident{
					Machine: mr.ID, Template: mr.Template, Kind: "stopped",
					Detail: fmt.Sprintf("cancelled at t=%.3fs with %d/%d workloads done",
						mr.ElapsedSec, mr.WorkloadsDone, mr.WorkloadsTotal)})
			} else {
				r.Incidents = append(r.Incidents, Incident{
					Machine: mr.ID, Template: mr.Template, Kind: "incomplete",
					Detail: fmt.Sprintf("%d/%d workloads done at MaxSeconds",
						mr.WorkloadsDone, mr.WorkloadsTotal)})
			}
			r.MachineSimSec += mr.ElapsedSec
			r.EnergyJ += mr.EnergyJ
			elapsed.add(mr.ElapsedSec)
			energy.add(mr.EnergyJ)
			if mr.Gflops > 0 {
				gflops.add(mr.Gflops)
			}
			// Type names are iterated sorted so accumulator creation
			// order (and thus nothing) depends on map order; each
			// accumulator is fed in machine-index order.
			typeNames := make([]string, 0, len(mr.ByType))
			for name := range mr.ByType {
				typeNames = append(typeNames, name)
			}
			sort.Strings(typeNames)
			for _, name := range typeNames {
				tc := mr.ByType[name]
				m := byType[name]
				if m == nil {
					m = map[string]*agg{
						"instructions": newAgg(n), "cycles": newAgg(n),
						"llc_refs": newAgg(n), "llc_misses": newAgg(n),
					}
					byType[name] = m
				}
				m["instructions"].add(tc.Instructions)
				m["cycles"].add(tc.Cycles)
				m["llc_refs"].add(tc.LLCRefs)
				m["llc_misses"].add(tc.LLCMisses)
			}
			if d := mr.Degradations; d != nil {
				r.Degradations["busy_retries"] += d.BusyRetries
				r.Degradations["retry_ticks"] += d.RetryTicks
				r.Degradations["deferred_starts"] += d.DeferredStarts
				r.Degradations["multiplex_fallback"] += d.MultiplexFallback
				r.Degradations["hotplug_rebuilds"] += d.HotplugRebuilds
				r.Degradations["stale_reads"] += d.StaleReads
				r.Degradations["degraded_reads"] += d.DegradedReads
				r.Degradations["monotonic_clamps"] += d.MonotonicClamps
			}
		}
		for _, line := range mr.FaultTrace {
			r.Incidents = append(r.Incidents, Incident{
				Machine: mr.ID, Template: mr.Template, Kind: "fault", Detail: line})
		}
		for _, v := range mr.Violations {
			r.Incidents = append(r.Incidents, Incident{
				Machine: mr.ID, Template: mr.Template, Kind: "invariant", Detail: v})
		}
		fmt.Fprintf(digest, "%s %s sim=%.9f digest=%s\n",
			mr.ID, outcomeWord(mr), mr.ElapsedSec, mr.Digest)
	}

	r.Elapsed = elapsed.finish()
	r.Energy = energy.finish()
	r.Gflops = gflops.finish()
	for name, m := range byType {
		out := make(map[string]Aggregate, len(m))
		for k, a := range m {
			out[k] = a.finish()
		}
		r.ByType[name] = out
	}
	r.Digest = hex.EncodeToString(digest.Sum(nil))
	r.Results = results
	return r
}

// attachAnomalies records the detector's output on the report and
// mirrors each anomaly into the incident ledger. Called after
// buildReport, in the anomalies' (machine-index, metric) order, so the
// ledger stays deterministic.
func (r *Report) attachAnomalies(anomalies []Anomaly) {
	r.Anomalies = anomalies
	for _, a := range anomalies {
		r.Incidents = append(r.Incidents, Incident{
			Machine: a.Machine, Template: a.Template, Kind: "anomaly", Detail: a.String()})
	}
}

func outcomeWord(mr *MachineResult) string {
	switch {
	case mr.Skipped:
		return "skipped"
	case mr.Panicked:
		return "panicked"
	case mr.Error != "":
		return "error"
	case mr.Completed:
		return "completed"
	case mr.Stopped:
		return "stopped"
	default:
		return "incomplete"
	}
}

// WriteJSON marshals the report (indented, trailing newline). The bytes
// are a pure function of (seed, generator config): Go's encoder sorts
// map keys and every field is derived in machine-index order.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Compact returns a copy of the report without the per-machine results
// array, for transports where only the roll-up matters (the /fleet
// telemetry endpoint serves this form by default).
func (r *Report) Compact() *Report {
	c := *r
	c.Results = nil
	return &c
}

// Summary renders a short human-readable digest of the report for CLI
// output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet seed=%d machines=%d", r.Seed, r.Machines)
	for _, tc := range r.Templates {
		fmt.Fprintf(&b, " %s=%d", tc.Template, tc.Machines)
	}
	fmt.Fprintf(&b, "\n  completed=%d stopped=%d skipped=%d panics=%d errors=%d chaos=%d incidents=%d",
		r.Completed, r.Stopped, r.Skipped, r.Panics, r.Errors, r.ChaosMachines, len(r.Incidents))
	if len(r.Anomalies) > 0 {
		fmt.Fprintf(&b, " anomalies=%d", len(r.Anomalies))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  machine-sim-sec=%.3f energy=%.1fJ elapsed p50=%.3fs p95=%.3fs\n",
		r.MachineSimSec, r.EnergyJ, r.Elapsed.P50, r.Elapsed.P95)
	typeNames := make([]string, 0, len(r.ByType))
	for name := range r.ByType {
		typeNames = append(typeNames, name)
	}
	sort.Strings(typeNames)
	for _, name := range typeNames {
		ins := r.ByType[name]["instructions"]
		fmt.Fprintf(&b, "  %-8s machines=%d instructions mean=%.3g p95=%.3g\n",
			name, ins.N, ins.Mean, ins.P95)
	}
	fmt.Fprintf(&b, "  digest=%s\n", r.Digest[:16])
	return b.String()
}
