package fleet

import (
	"fmt"
	"math"
	"sort"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/scenario"
)

// ChaosConfig turns a fraction of the fleet into fault-injected
// machines. Whether a machine draws a plan, and which plan it draws, is
// decided by its own derived stream — independent of every other
// machine, of the worker count, and of the fleet size around it.
type ChaosConfig struct {
	// IncidentRate is the fraction of machines (0..1] that receive a
	// fault plan.
	IncidentRate float64
	// MaxEvents bounds each machine's plan length (0 = the faults
	// package default of 8).
	MaxEvents int
	// MinBudget floors counter-budget caps (0 = default 1), so chaos
	// plans degrade multiplexing without making a PMU unschedulable.
	MinBudget int
}

func (c *ChaosConfig) validate() error {
	if c.IncidentRate < 0 || c.IncidentRate > 1 || math.IsNaN(c.IncidentRate) {
		return fmt.Errorf("fleet: chaos incident rate %v outside [0,1]", c.IncidentRate)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("fleet: negative chaos MaxEvents %d", c.MaxEvents)
	}
	if c.MinBudget < 0 {
		return fmt.Errorf("fleet: negative chaos MinBudget %d", c.MinBudget)
	}
	return nil
}

// profileFor builds the faults.Profile a chaos-selected machine draws
// its plan from. Watchdog and budget faults may target every core-type
// PMU; hotplug faults are restricted to CPUs no workload is pinned to,
// so a plan can never strand a pinned thread on an offline CPU (the
// same restriction the faults fuzz harness applies). The horizon is the
// spec's run bound, so hold-type faults always heal before the run can
// end on MaxSeconds.
func (c *ChaosConfig) profileFor(m *hw.Machine, spec *scenario.Spec) faults.Profile {
	p := faults.Profile{
		MaxEvents: c.MaxEvents,
		MinBudget: c.MinBudget,
	}
	p.HorizonSec = spec.MaxSeconds
	if p.HorizonSec <= 0 {
		p.HorizonSec = 60 // the scenario harness default run bound
	}
	for _, t := range m.Types {
		p.PMUs = append(p.PMUs, t.PMU.PerfType)
	}
	pinned := map[int]bool{}
	allPinned := false
	for _, w := range spec.Workloads {
		if len(w.CPUs) == 0 {
			// Unpinned workload roams the whole machine: no CPU is
			// safe to unplug.
			allPinned = true
		}
		for _, cpu := range w.CPUs {
			pinned[cpu] = true
		}
	}
	for _, inj := range spec.Injects {
		for _, cpu := range inj.CPUs {
			pinned[cpu] = true
		}
	}
	if !allPinned {
		for _, cpu := range m.CPUs {
			if !pinned[cpu.ID] {
				p.CPUs = append(p.CPUs, cpu.ID)
			}
		}
		sort.Ints(p.CPUs)
	}
	return p
}
