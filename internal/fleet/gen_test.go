package fleet

import (
	"reflect"
	"testing"

	"hetpapi/internal/scenario"
	"hetpapi/internal/sched"
)

// testTemplates is a deliberately small mix (sub-second workloads) so
// fleet tests stay fast under -race.
func testTemplates() []Template {
	return []Template{
		{
			Name:   "tiny-loop",
			Weight: 3,
			Spec: scenario.Spec{
				Machine:         "homogeneous",
				MaxSeconds:      2,
				SamplePeriodSec: 0.25,
				Workloads: []scenario.WorkloadSpec{{
					Kind: scenario.WorkloadLoop, Name: "loop", CPUs: []int{0, 1},
					InstrPerRep: 1e6, Reps: 400,
				}},
			},
		},
		{
			Name:   "hybrid-measure",
			Weight: 2,
			Spec: scenario.Spec{
				Machine:         "orangepi800",
				MaxSeconds:      2,
				SamplePeriodSec: 0.25,
				Workloads: []scenario.WorkloadSpec{{
					Kind: scenario.WorkloadLoop, Name: "little", CPUs: []int{0, 1},
					InstrPerRep: 1e6, Reps: 300,
				}},
				Measure: &scenario.MeasureSpec{
					Workload: 0,
					Events:   []string{"PAPI_TOT_INS", "PAPI_TOT_CYC"},
				},
			},
		},
	}
}

func TestApportionSumsAndProportions(t *testing.T) {
	tpls := testTemplates() // weights 3:2
	for _, n := range []int{1, 2, 5, 7, 100, 999, 1000} {
		counts := apportion(n, tpls)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != n {
			t.Fatalf("n=%d: counts %v sum to %d", n, counts, sum)
		}
	}
	counts := apportion(1000, tpls)
	if counts[0] != 600 || counts[1] != 400 {
		t.Fatalf("3:2 over 1000 machines gave %v, want [600 400]", counts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Machines:   64,
		Seed:       1234,
		Templates:  testTemplates(),
		StaggerSec: 0.5,
		Chaos:      &ChaosConfig{IncidentRate: 0.4, MaxEvents: 4},
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Machines, b.Machines) || !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatal("two Generate calls with one config produced different fleets")
	}

	seen := map[string]bool{}
	seeds := map[int64]int{}
	chaos := 0
	for i, ms := range a.Machines {
		if seen[ms.ID] {
			t.Fatalf("duplicate machine id %s", ms.ID)
		}
		seen[ms.ID] = true
		if ms.Index != i {
			t.Fatalf("machine %s has index %d at position %d", ms.ID, ms.Index, i)
		}
		seeds[ms.Seed]++
		if ms.StartOffsetSec < 0 || ms.StartOffsetSec >= cfg.StaggerSec {
			t.Fatalf("machine %s offset %v outside [0,%v)", ms.ID, ms.StartOffsetSec, cfg.StaggerSec)
		}
		if ms.Spec.Seed != ms.Seed {
			t.Fatalf("machine %s spec seed %d != derived seed %d", ms.ID, ms.Spec.Seed, ms.Seed)
		}
		if ms.ChaosProfile != nil {
			chaos++
			if ms.ChaosProfile.HorizonSec <= 0 {
				t.Fatalf("machine %s chaos horizon %v", ms.ID, ms.ChaosProfile.HorizonSec)
			}
		}
	}
	if len(seeds) < 60 {
		t.Fatalf("only %d distinct scheduler seeds across 64 machines", len(seeds))
	}
	if chaos == 0 || chaos == cfg.Machines {
		t.Fatalf("chaos gate selected %d of %d machines at rate %.1f; expected a strict subset",
			chaos, cfg.Machines, cfg.Chaos.IncidentRate)
	}
}

// TestGenerateSeedSensitivity: different fleet seeds must change the
// derived population, not just relabel it.
func TestGenerateSeedSensitivity(t *testing.T) {
	mk := func(seed int64) *Fleet {
		f, err := Generate(GenConfig{Machines: 16, Seed: seed, Templates: testTemplates(), StaggerSec: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := range a.Machines {
		if a.Machines[i].Seed == b.Machines[i].Seed {
			same++
		}
	}
	if same == len(a.Machines) {
		t.Fatal("fleet seed is ignored: all per-machine seeds identical across fleet seeds 1 and 2")
	}
}

func TestGenerateStaggerShiftsWorkloads(t *testing.T) {
	f, err := Generate(GenConfig{Machines: 8, Seed: 7, Templates: testTemplates(), StaggerSec: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	shifted := false
	for _, ms := range f.Machines {
		for _, w := range ms.Spec.Workloads {
			if w.StartSec != ms.StartOffsetSec {
				t.Fatalf("machine %s workload starts at %v, offset is %v", ms.ID, w.StartSec, ms.StartOffsetSec)
			}
			if w.StartSec > 0 {
				shifted = true
			}
		}
		if ms.Spec.MaxSeconds != testTemplates()[0].Spec.MaxSeconds+ms.StartOffsetSec {
			t.Fatalf("machine %s MaxSeconds %v not extended by offset %v", ms.ID, ms.Spec.MaxSeconds, ms.StartOffsetSec)
		}
	}
	if !shifted {
		t.Fatal("no machine drew a non-zero cold-start offset in a 1 s window")
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	base := testTemplates()
	cases := []struct {
		name string
		cfg  GenConfig
	}{
		{"zero machines", GenConfig{Machines: 0, Templates: base}},
		{"empty templates", GenConfig{Machines: 4, Templates: []Template{}}},
		{"zero weight", GenConfig{Machines: 4, Templates: []Template{{Name: "w0", Weight: 0, Spec: base[0].Spec}}}},
		{"unknown machine", GenConfig{Machines: 4, Templates: []Template{{Name: "bad", Weight: 1,
			Spec: scenario.Spec{Machine: "nonesuch", Workloads: base[0].Spec.Workloads}}}}},
		{"no workloads", GenConfig{Machines: 4, Templates: []Template{{Name: "idle", Weight: 1,
			Spec: scenario.Spec{Machine: "homogeneous"}}}}},
		{"pinned sched seed", GenConfig{Machines: 4, Templates: []Template{func() Template {
			tpl := base[0]
			tpl.Spec = tpl.Spec.Clone()
			tpl.Spec.Sched = &sched.Config{Seed: 9}
			return tpl
		}()}}},
		{"stateful hooks", GenConfig{Machines: 4, Templates: []Template{func() Template {
			tpl := base[0]
			tpl.Spec = tpl.Spec.Clone()
			tpl.Spec.StepHooks = []scenario.StepHook{func(*scenario.Context) {}}
			return tpl
		}()}}},
		{"bad chaos rate", GenConfig{Machines: 4, Templates: base, Chaos: &ChaosConfig{IncidentRate: 1.5}}},
		{"negative stagger", GenConfig{Machines: 4, Templates: base, StaggerSec: -1}},
	}
	for _, tc := range cases {
		if _, err := Generate(tc.cfg); err == nil {
			t.Errorf("%s: Generate accepted an invalid config", tc.name)
		}
	}
}

func TestDefaultTemplatesGenerate(t *testing.T) {
	f, err := Generate(GenConfig{Machines: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Weights 4:3:2 over 9 machines apportion exactly.
	if f.Counts[0] != 4 || f.Counts[1] != 3 || f.Counts[2] != 2 {
		t.Fatalf("default mix over 9 machines gave %v, want [4 3 2]", f.Counts)
	}
}
