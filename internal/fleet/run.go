package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"hetpapi/internal/core"
	"hetpapi/internal/faults"
	"hetpapi/internal/scenario"
)

// RunConfig parameterizes fleet execution.
type RunConfig struct {
	// Workers bounds the worker pool (<=0 selects GOMAXPROCS). The
	// worker count affects only wall-clock time, never the report: each
	// machine's simulation is self-contained and results are rolled up
	// in machine-index order after the pool drains.
	Workers int
	// OnMachine, when set, is called with each finished machine's
	// result, serialized under an internal lock. Completion order is
	// scheduling-dependent; it is a progress feed, not part of the
	// deterministic output.
	OnMachine func(MachineResult)
	// Streamer, when set, streams every machine's live series into its
	// telemetry store (per-core-type counters, machine scalars,
	// degradations) as the fleet runs. Per-series contents stay
	// deterministic: each series is written by one machine's goroutine
	// at simulated times.
	Streamer *Streamer
	// Anomaly, when set together with Streamer, runs the robust
	// z-score outlier detector over the streamed rung summaries after
	// the pool drains and embeds the (deterministic) result in the
	// report.
	Anomaly *AnomalyConfig
}

// MachineResult is one machine's run outcome, reduced to the figures
// the fleet roll-up aggregates.
type MachineResult struct {
	ID             string  `json:"id"`
	Template       string  `json:"template"`
	MachineModel   string  `json:"machine_model"`
	Seed           int64   `json:"seed"`
	StartOffsetSec float64 `json:"start_offset_sec"`

	// Completed: every workload finished. Stopped: cancelled mid-run.
	// Skipped: cancelled before starting. Panicked: the simulation
	// panicked (isolated to this machine; PanicMsg has the value).
	Completed bool   `json:"completed"`
	Stopped   bool   `json:"stopped"`
	Skipped   bool   `json:"skipped"`
	Panicked  bool   `json:"panicked"`
	PanicMsg  string `json:"panic_msg,omitempty"`
	Error     string `json:"error,omitempty"`

	ElapsedSec     float64                          `json:"elapsed_sec"`
	EnergyJ        float64                          `json:"energy_j"`
	Gflops         float64                          `json:"gflops"`
	WorkloadsDone  int                              `json:"workloads_done"`
	WorkloadsTotal int                              `json:"workloads_total"`
	ByType         map[string]scenario.TypeCounters `json:"by_type,omitempty"`
	Violations     []string                         `json:"violations,omitempty"`
	FaultTrace     []string                         `json:"fault_trace,omitempty"`
	Degradations   *core.DegradationReport          `json:"-"`
	Digest         string                           `json:"digest,omitempty"`
}

// Run executes every machine of the fleet on a bounded worker pool and
// rolls the results up into a Report. Cancelling the context stops
// in-flight machines at their next tick (Stopped) and skips machines
// not yet started (Skipped); Run still returns the partial report. A
// panic inside one machine's simulation is confined to that machine and
// recorded as an incident.
func Run(ctx context.Context, f *Fleet, rc RunConfig) (*Report, error) {
	if f == nil || len(f.Machines) == 0 {
		return nil, fmt.Errorf("fleet: nothing to run")
	}
	workers := rc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(f.Machines) {
		workers = len(f.Machines)
	}

	results := make([]MachineResult, len(f.Machines))
	indices := make(chan int)
	var wg sync.WaitGroup
	var cbMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = runMachine(ctx, &f.Machines[i], rc.Streamer)
				if rc.OnMachine != nil {
					cbMu.Lock()
					rc.OnMachine(results[i])
					cbMu.Unlock()
				}
			}
		}()
	}
	for i := range f.Machines {
		indices <- i
	}
	close(indices)
	wg.Wait()

	rep := buildReport(f, results)
	if rc.Streamer != nil && rc.Anomaly != nil {
		rep.attachAnomalies(DetectAnomalies(rc.Streamer.Store(), f, *rc.Anomaly))
	}
	return rep, nil
}

// runMachine runs one machine's simulation start to finish, translating
// panics into a result instead of letting them take down the pool. When
// a streamer is attached, its sampling hook rides along after the
// machine's own hooks.
func runMachine(ctx context.Context, ms *MachineSpec, streamer *Streamer) (mr MachineResult) {
	mr = MachineResult{
		ID:             ms.ID,
		Template:       ms.Template,
		Seed:           ms.Seed,
		StartOffsetSec: ms.StartOffsetSec,
		WorkloadsTotal: len(ms.Spec.Workloads),
	}
	defer func() {
		if r := recover(); r != nil {
			mr.Panicked = true
			mr.PanicMsg = fmt.Sprint(r)
		}
	}()
	if ctx.Err() != nil {
		mr.Skipped = true
		return mr
	}

	// Clone again so a Fleet can be Run repeatedly: the per-run hooks
	// appended below must not accumulate on the generated spec.
	spec := ms.Spec.Clone()
	var plan *faults.Plan
	if ms.ChaosProfile != nil {
		plan = faults.Random(ms.ChaosSeed, *ms.ChaosProfile)
		attached := false
		spec.StepHooks = append(spec.StepHooks, func(c *scenario.Context) {
			if !attached {
				c.Sim.Kernel.AttachFaults(plan)
				attached = true
			}
		})
	}
	if streamer != nil {
		spec.StepHooks = append(spec.StepHooks, streamer.hookFor(ms))
	}
	spec.Stop = func() bool { return ctx.Err() != nil }

	res, err := scenario.Run(spec)
	if res == nil {
		mr.Error = err.Error()
		return mr
	}
	mr.MachineModel = res.MachineName
	mr.Completed = res.Completed
	mr.Stopped = res.Stopped
	mr.ElapsedSec = res.ElapsedSec
	mr.EnergyJ = res.EnergyJ
	mr.ByType = res.ByType
	mr.Degradations = res.Degradations
	mr.Digest = res.Digest
	for _, w := range res.Workloads {
		if w.Done {
			mr.WorkloadsDone++
		}
		mr.Gflops += w.Gflops
	}
	for _, v := range res.Violations {
		mr.Violations = append(mr.Violations, v.String())
	}
	if plan != nil {
		mr.FaultTrace = plan.Trace()
	}
	return mr
}
