package fleet

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"hetpapi/internal/telemetry"
)

// TestStreamingDeterminismSweep is the PR's acceptance property: with
// streaming AND anomaly detection enabled, the fleet report must stay
// byte-identical across worker counts, and the telemetry store the run
// filled must answer population queries identically too.
func TestStreamingDeterminismSweep(t *testing.T) {
	const n = 18
	var golden []byte
	var goldenQuery string
	for i, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		f := genTestFleet(t, n, 77)
		store := telemetry.NewStore(telemetry.Config{Capacity: 256, RungCapacity: 256})
		rc := RunConfig{
			Workers:  workers,
			Streamer: NewStreamer(store, 0),
			Anomaly:  &AnomalyConfig{Threshold: 3.0, MinMachines: 4},
		}
		rep, err := Run(context.Background(), f, rc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed != n {
			t.Fatalf("run %d (workers=%d): %d/%d machines completed", i, workers, rep.Completed, n)
		}
		js := reportJSON(t, rep)
		q, err := store.FleetQuery(telemetry.FleetQueryRequest{
			Rung: telemetry.Rung1s, FromSec: -1, ToSec: -1, Timeline: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		qs := fmt.Sprintf("%+v", q)
		if golden == nil {
			golden, goldenQuery = js, qs
			continue
		}
		if !bytes.Equal(js, golden) {
			t.Fatalf("run %d (workers=%d): report diverged with streaming enabled", i, workers)
		}
		if qs != goldenQuery {
			t.Fatalf("run %d (workers=%d): fleet query over streamed store diverged", i, workers)
		}
	}
}

// streamTestFleet builds a fleet whose workloads span the whole
// simulated window: the event-driven sim only ticks while work runs, so
// cadence assertions need machines that stay busy to MaxSeconds.
func streamTestFleet(t *testing.T, n int, seed int64) *Fleet {
	t.Helper()
	tpls := testTemplates()
	for i := range tpls {
		for j := range tpls[i].Spec.Workloads {
			tpls[i].Spec.Workloads[j].Reps *= 5
		}
	}
	f, err := Generate(GenConfig{
		Machines: n, Seed: seed, Templates: tpls, StaggerSec: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestStreamerPopulatesStore: a streamed run tags machine metadata,
// fills the machine-scalar and per-core-type series at the sampling
// cadence, measures its own cost, and exports the self-overhead series
// under the reserved "fleet" machine id.
func TestStreamerPopulatesStore(t *testing.T) {
	const n = 6
	f := streamTestFleet(t, n, 5)
	store := telemetry.NewStore(telemetry.Config{Capacity: 256, RungCapacity: 256})
	str := NewStreamer(store, 0)
	rep, err := Run(context.Background(), f, RunConfig{Workers: 2, Streamer: str})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n {
		t.Fatalf("%d/%d machines completed", rep.Completed, n)
	}

	sawType := false
	for i := range f.Machines {
		ms := &f.Machines[i]
		meta := store.Meta(ms.ID)
		if meta.Template != ms.Template || meta.Model != ms.Spec.Machine {
			t.Fatalf("machine %s meta %+v (template %s model %s)", ms.ID, meta, ms.Template, ms.Spec.Machine)
		}
		// Every machine samples the scalars while its workloads run (the
		// event-driven sim stops ticking once work completes, so short
		// machines legitimately stream few points — but never zero).
		agg, ok := store.Aggregate(telemetry.Key{Machine: ms.ID, Series: "power_w"})
		if !ok || agg.Count < 2 {
			t.Fatalf("machine %s power_w aggregate %+v", ms.ID, agg)
		}
		for _, series := range store.SeriesOf(ms.ID) {
			if strings.HasPrefix(series, "type/") {
				sawType = true
			}
		}
	}
	if !sawType {
		t.Fatal("no per-core-type counter series streamed")
	}

	// The longest-running machines sample on the template's 0.25s
	// cadence: at least 4 points, evenly spaced.
	cadenced := 0
	for i := range f.Machines {
		pts, _ := store.Snapshot(telemetry.Key{Machine: f.Machines[i].ID, Series: "power_w"})
		if len(pts) < 4 {
			continue
		}
		cadenced++
		for j := 1; j < len(pts); j++ {
			if dt := pts[j].TimeSec - pts[j-1].TimeSec; dt < 0.24 || dt > 0.26 {
				t.Fatalf("machine %s samples %g apart, want the 0.25s cadence", f.Machines[i].ID, dt)
			}
		}
	}
	if cadenced == 0 {
		t.Fatal("no machine ran long enough to demonstrate the sampling cadence")
	}
	if str.MaxSec() <= 0 {
		t.Fatalf("MaxSec = %g after a streamed run", str.MaxSec())
	}

	o := str.SelfOverhead()
	if o.Machines != n || o.Samples < int64(n)*2 || o.Points <= o.Samples {
		t.Fatalf("self-overhead %+v implausible for %d machines", o, n)
	}
	if o.IngestSec <= 0 || o.NsPerPoint <= 0 || o.PointsPerSec <= 0 {
		t.Fatalf("self-overhead cost gauges empty: %+v", o)
	}

	str.ExportOverhead(3)
	for _, series := range []string{
		"selfoverhead/points", "selfoverhead/samples", "selfoverhead/ingest_ms",
		"selfoverhead/ns_per_point", "selfoverhead/points_per_s", "selfoverhead/rejected",
	} {
		pts, ok := store.Snapshot(telemetry.Key{Machine: OverheadMachine, Series: series})
		if !ok || len(pts) != 1 || pts[0].TimeSec != 3 {
			t.Fatalf("exported %s = %+v", series, pts)
		}
	}
	pts, _ := store.Snapshot(telemetry.Key{Machine: OverheadMachine, Series: "selfoverhead/points"})
	if int64(pts[0].Value) != o.Points {
		t.Fatalf("exported points %g != gauge %d", pts[0].Value, o.Points)
	}
}

// TestStreamerBaseSecShiftsRounds: daemon loop mode reuses machine ids
// across rounds, so a second round streamed with base = MaxSec+1 must
// land strictly after the first round's samples.
func TestStreamerBaseSecShiftsRounds(t *testing.T) {
	f := genTestFleet(t, 3, 9)
	store := telemetry.NewStore(telemetry.Config{Capacity: 1024, RungCapacity: 256})

	s1 := NewStreamer(store, 0)
	if _, err := Run(context.Background(), f, RunConfig{Workers: 2, Streamer: s1}); err != nil {
		t.Fatal(err)
	}
	round1Max := s1.MaxSec()
	if round1Max <= 0 {
		t.Fatal("first round streamed nothing")
	}

	s2 := NewStreamer(store, 0)
	s2.SetBaseSec(round1Max + 1)
	if _, err := Run(context.Background(), f, RunConfig{Workers: 2, Streamer: s2}); err != nil {
		t.Fatal(err)
	}
	if s2.MaxSec() <= round1Max {
		t.Fatalf("second round MaxSec %g did not advance past %g", s2.MaxSec(), round1Max)
	}
	// The shared series stayed time-ordered across the round boundary.
	pts, ok := store.Snapshot(telemetry.Key{Machine: f.Machines[0].ID, Series: "power_w"})
	if !ok {
		t.Fatal("power_w series missing after two rounds")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeSec <= pts[i-1].TimeSec {
			t.Fatalf("series went back in time at %d: %g after %g", i, pts[i].TimeSec, pts[i-1].TimeSec)
		}
	}
}

// TestDetectAnomaliesFlagsSyntheticOutlier drives the detector with a
// hand-built population: eleven healthy machines and one drawing 10×
// the power. Only the outlier, only on the power feature.
func TestDetectAnomaliesFlagsSyntheticOutlier(t *testing.T) {
	const n = 12
	store := telemetry.NewStore(telemetry.Config{})
	f := &Fleet{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%04d", i)
		f.Machines = append(f.Machines, MachineSpec{ID: id, Index: i, Template: "tpl"})
		store.SetMeta(id, telemetry.MachineMeta{Template: "tpl"})
		power := 40 + 0.1*float64(i) // healthy spread, MAD > 0
		if i == 7 {
			power = 400 // the outlier
		}
		for tick := 0; tick < 20; tick++ {
			ts := float64(tick) / 2
			store.Append(telemetry.Key{Machine: id, Series: "power_w"}, ts, power)
			store.Append(telemetry.Key{Machine: id, Series: "temp_c"}, ts, 55+0.1*float64(i))
			store.Append(telemetry.Key{Machine: id, Series: "energy_j"}, ts, power*ts)
		}
	}

	got := DetectAnomalies(store, f, AnomalyConfig{Threshold: 4})
	// m0007 is an outlier on power directly and on the energy integral.
	if len(got) != 2 {
		t.Fatalf("anomalies %+v, want exactly the two m0007 findings", got)
	}
	for _, a := range got {
		if a.Machine != "m0007" || a.Template != "tpl" {
			t.Fatalf("flagged %+v, want m0007/tpl", a)
		}
		if a.Score <= 4 {
			t.Fatalf("anomaly %+v at or under threshold", a)
		}
	}
	if got[0].Metric != "energy_j_last" || got[1].Metric != "power_w_mean" {
		t.Fatalf("metrics %q,%q not sorted per machine", got[0].Metric, got[1].Metric)
	}
	if got[1].Value != 400 || got[1].Median >= 45 {
		t.Fatalf("power anomaly carries wrong stats: %+v", got[1])
	}

	// A population below MinMachines is never scored.
	if small := DetectAnomalies(store, f, AnomalyConfig{Threshold: 4, MinMachines: n + 1}); len(small) != 0 {
		t.Fatalf("undersized population still flagged %+v", small)
	}
	// Detector output is pure: rerunning gives the identical slice.
	again := DetectAnomalies(store, f, AnomalyConfig{Threshold: 4})
	if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", got) {
		t.Fatal("detector not deterministic over the same store")
	}
}

// TestReportAttachAnomalies mirrors flagged machines into the incident
// ledger and the summary line.
func TestReportAttachAnomalies(t *testing.T) {
	rep := &Report{Machines: 2, Digest: strings.Repeat("ab", 32)}
	rep.attachAnomalies([]Anomaly{{
		Machine: "m0001", Template: "tpl", Metric: "power_w_mean",
		Value: 400, Median: 40, MAD: 0.3, Score: 809,
	}})
	if len(rep.Anomalies) != 1 {
		t.Fatalf("anomalies not attached: %+v", rep)
	}
	if len(rep.Incidents) != 1 || rep.Incidents[0].Kind != "anomaly" || rep.Incidents[0].Machine != "m0001" {
		t.Fatalf("incident mirror %+v", rep.Incidents)
	}
	if !strings.Contains(rep.Summary(), "anomalies=1") {
		t.Fatalf("summary %q missing anomaly count", rep.Summary())
	}
}
