package sim

import (
	"math"
	"testing"
	"testing/quick"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/power"
	"hetpapi/internal/workload"
)

// runHPL spawns one HPL worker pinned to each of the given CPUs and runs
// the simulation to completion, returning the benchmark Gflops.
func runHPL(t *testing.T, s *Machine, strategy workload.Strategy, cpus []int, n int) float64 {
	t.Helper()
	h, err := workload.NewHPL(workload.HPLConfig{
		N: n, NB: 192, Threads: len(cpus), Strategy: strategy, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	for i, task := range h.Threads() {
		s.Spawn(task, hw.NewCPUSet(cpus[i]))
	}
	if !s.RunUntil(h.Done, 3600) {
		t.Fatal("HPL did not finish within an hour of simulated time")
	}
	return h.Gflops(s.Now() - start)
}

func TestHPLCompletesOnFullStack(t *testing.T) {
	s := New(hw.RaptorLake(), DefaultConfig())
	g := runHPL(t, s, workload.IntelMKL(), hw.RaptorLake().FirstCPUPerCore(), 6144)
	// A short run rides the PL2 turbo spike, so it may exceed the paper's
	// sustained 457 Gflops; it must still sit below theoretical peak.
	if g < 100 || g > hw.RaptorLake().PeakGflops(hw.RaptorLake().FirstCPUPerCore()) {
		t.Fatalf("all-core Gflops = %.1f, outside plausible range", g)
	}
}

func TestTableIIOrdering(t *testing.T) {
	// The four central Table II relations, on the full simulation stack
	// (DVFS + power caps + scheduler + workload):
	//   Intel E-only < Intel P-only < Intel all-core
	//   OpenBLAS all-core < OpenBLAS P-only (stragglers)
	m := hw.RaptorLake()
	pCores := m.CPUsOfType("P-core")
	var pFirst []int
	for _, c := range pCores {
		if m.CPUs[c].SMTIndex == 0 {
			pFirst = append(pFirst, c)
		}
	}
	eCores := m.CPUsOfType("E-core")
	all := m.FirstCPUPerCore()
	const n = 20160

	intelE := runHPL(t, New(hw.RaptorLake(), DefaultConfig()), workload.IntelMKL(), eCores, n)
	intelP := runHPL(t, New(hw.RaptorLake(), DefaultConfig()), workload.IntelMKL(), pFirst, n)
	intelAll := runHPL(t, New(hw.RaptorLake(), DefaultConfig()), workload.IntelMKL(), all, n)
	oblasP := runHPL(t, New(hw.RaptorLake(), DefaultConfig()), workload.OpenBLASx86(), pFirst, n)
	oblasAll := runHPL(t, New(hw.RaptorLake(), DefaultConfig()), workload.OpenBLASx86(), all, n)

	t.Logf("Intel: E=%.1f P=%.1f all=%.1f; OpenBLAS: P=%.1f all=%.1f",
		intelE, intelP, intelAll, oblasP, oblasAll)

	if !(intelE < intelP) {
		t.Errorf("Intel E-only %.1f !< P-only %.1f", intelE, intelP)
	}
	if !(intelAll > intelP) {
		t.Errorf("Intel all-core %.1f !> P-only %.1f (hybrid-aware build must win with E-cores)", intelAll, intelP)
	}
	if !(oblasAll < oblasP) {
		t.Errorf("OpenBLAS all-core %.1f !< P-only %.1f (stragglers must hurt)", oblasAll, oblasP)
	}
	if !(intelAll > oblasAll) {
		t.Errorf("Intel all-core %.1f !> OpenBLAS all-core %.1f", intelAll, oblasAll)
	}
}

func TestFrequencySpikeThenPlateau(t *testing.T) {
	// Figure 1/2 shape: the run starts at high frequency under PL2, then
	// settles to the PL1 plateau.
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	h, _ := workload.NewHPL(workload.HPLConfig{
		N: 38400, NB: 192, Threads: 16, Strategy: workload.IntelMKL(), Seed: 1,
	})
	for i, task := range h.Threads() {
		s.Spawn(task, hw.NewCPUSet(m.FirstCPUPerCore()[i]))
	}
	var earlyFreq, lateFreq, latePower float64
	s.RunFor(1.0)
	earlyFreq = s.CurFreqMHz(0)
	earlyPower := s.Power.PkgPowerW()
	s.RunFor(30)
	lateFreq = s.CurFreqMHz(0)
	latePower = s.Power.PkgPowerW()

	if earlyFreq < 4000 {
		t.Errorf("early P frequency %.0f MHz; expected a high spike under PL2", earlyFreq)
	}
	if h.Done() {
		t.Fatal("run finished before the plateau was sampled; enlarge N")
	}
	if earlyFreq <= lateFreq {
		t.Errorf("no spike: early %.0f MHz <= late %.0f MHz", earlyFreq, lateFreq)
	}
	if earlyPower < m.Power.PL1Watts*1.5 {
		t.Errorf("early power %.1f W; expected well above PL1 during the spike", earlyPower)
	}
	if lateFreq > 3500 {
		t.Errorf("late P frequency %.0f MHz; expected PL1 plateau below 3.5 GHz", lateFreq)
	}
	if math.Abs(latePower-m.Power.PL1Watts) > 6 {
		t.Errorf("late power %.1f W; expected ~PL1 (%.0f W)", latePower, m.Power.PL1Watts)
	}
	if s.Thermal.TempC() >= m.Thermal.TjMaxC {
		t.Errorf("package hit TjMax; paper says power limits prevent thermal throttling")
	}
}

func TestInstructionConservationThroughKernel(t *testing.T) {
	// Open one INST_RETIRED event per PMU on a migrating task; the sum of
	// the two counters must equal the instructions the task retired.
	m := hw.RaptorLake()
	cfg := DefaultConfig()
	cfg.Sched.MigrateToEffProb = 0.3
	cfg.Sched.MigrateToPerfProb = 0.3
	cfg.Sched.Seed = 5
	s := New(m, cfg)

	loop := workload.NewInstructionLoop("hybrid", 1e6, 3000)
	p := s.Spawn(loop, hw.AllCPUs(m))

	glc := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
	grt := events.LookupPMU("adl_grt").Lookup("INST_RETIRED")
	pFD, err := s.Kernel.Open(perfevent.Attr{
		Type:   m.TypeByName("P-core").PMU.PerfType,
		Config: events.Encode(glc.Code, glc.DefaultUmask().Bits),
	}, p.PID, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	eFD, err := s.Kernel.Open(perfevent.Attr{
		Type:   m.TypeByName("E-core").PMU.PerfType,
		Config: events.Encode(grt.Code, grt.DefaultUmask().Bits),
	}, p.PID, -1, -1)
	if err != nil {
		t.Fatal(err)
	}

	if !s.RunUntil(loop.Done, 60) {
		t.Fatal("loop did not finish")
	}
	pc, _ := s.Kernel.Read(pFD)
	ec, _ := s.Kernel.Read(eFD)
	total := loop.TotalInstructions()
	sum := float64(pc.Value + ec.Value)
	if math.Abs(sum-total) > total*1e-6 {
		t.Fatalf("P(%d) + E(%d) = %g != retired %g", pc.Value, ec.Value, sum, total)
	}
	if pc.Value == 0 || ec.Value == 0 {
		t.Fatalf("expected both core types to run the task: P=%d E=%d", pc.Value, ec.Value)
	}
	if pc.Value <= ec.Value {
		t.Errorf("task should spend more instructions on P-cores: P=%d E=%d", pc.Value, ec.Value)
	}
}

func TestRAPLEnergyMatchesIntegral(t *testing.T) {
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	fd, err := s.Kernel.Open(perfevent.Attr{
		Type: m.Power.RAPLPerfType, Config: events.Encode(0x02, 0),
	}, -1, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn(workload.NewSpin("burn", 5), hw.NewCPUSet(0))
	s.RunFor(5)
	c, _ := s.Kernel.Read(fd)
	gotJ := float64(c.Value) * m.Power.EnergyUnitJ
	wantJ := s.Power.EnergyJ(power.DomainPkg)
	if math.Abs(gotJ-wantJ) > 0.01*wantJ+0.01 {
		t.Fatalf("RAPL event %g J != model %g J", gotJ, wantJ)
	}
	if gotJ <= 0 {
		t.Fatal("no energy accumulated")
	}
}

func TestOrangePiBigThrottles(t *testing.T) {
	// Figure 3: HPL on the two big cores ramps to 1.8 GHz, then thermal
	// throttling pulls them down within seconds; LITTLE-only sustains.
	m := hw.OrangePi800()
	s := New(m, DefaultConfig())
	h, _ := workload.NewHPL(workload.HPLConfig{
		N: 10240, NB: 128, Threads: 2, Strategy: workload.OpenBLASArm(), Seed: 1,
	})
	bigs := m.CPUsOfType("big")
	for i, task := range h.Threads() {
		s.Spawn(task, hw.NewCPUSet(bigs[i]))
	}
	s.RunFor(0.5)
	if f := s.CurFreqMHz(bigs[0]); f < 1700 {
		t.Errorf("big core should start near max: %.0f MHz", f)
	}
	s.RunFor(30)
	if h.Done() {
		t.Fatal("big-core run finished too early; enlarge N")
	}
	f := s.CurFreqMHz(bigs[0])
	if f > 1500 {
		t.Errorf("big core frequency %.0f MHz after 30s; expected thermal throttling", f)
	}
	if s.Thermal.TempC() < 75 {
		t.Errorf("SoC only reached %.1f degC; should be near the 85 degC trip", s.Thermal.TempC())
	}

	// LITTLE-only: no (significant) throttling.
	s2 := New(m, DefaultConfig())
	h2, _ := workload.NewHPL(workload.HPLConfig{
		N: 10240, NB: 128, Threads: 4, Strategy: workload.OpenBLASArm(), Seed: 1,
	})
	littles := m.CPUsOfType("LITTLE")
	for i, task := range h2.Threads() {
		s2.Spawn(task, hw.NewCPUSet(littles[i]))
	}
	s2.RunFor(30)
	if h2.Done() {
		t.Fatal("LITTLE-core run finished too early; enlarge N")
	}
	if f := s2.CurFreqMHz(littles[0]); f < 1300 {
		t.Errorf("LITTLE cores throttled to %.0f MHz; they should sustain near max", f)
	}
}

func TestOrangePiLittleBeatsBig(t *testing.T) {
	// Figure 4's headline: four LITTLE cores complete HPL faster than two
	// thermally-throttled big cores.
	m := hw.OrangePi800()
	const n = 12288
	gBig := runHPL(t, New(hw.OrangePi800(), DefaultConfig()), workload.OpenBLASArm(), m.CPUsOfType("big"), n)
	gLittle := runHPL(t, New(hw.OrangePi800(), DefaultConfig()), workload.OpenBLASArm(), m.CPUsOfType("LITTLE"), n)
	t.Logf("OrangePi: 2 big = %.2f Gflops, 4 LITTLE = %.2f Gflops", gBig, gLittle)
	if gLittle <= gBig {
		t.Errorf("4 LITTLE (%.2f) must beat 2 big (%.2f)", gLittle, gBig)
	}
}

func TestSettleCoolsAndRefillsBudget(t *testing.T) {
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	s.Spawn(workload.NewSpin("hot", 20), hw.NewCPUSet(0))
	s.RunFor(20)
	s.Thermal.SetTempC(70)
	waited := s.Settle(35)
	if s.Thermal.TempC() > 35.1 {
		t.Fatalf("settled at %.1f degC, want <= 35", s.Thermal.TempC())
	}
	if waited <= 0 {
		t.Fatal("settling must take simulated time")
	}
	if s.Power.CapW() != m.Power.PL2Watts {
		t.Errorf("turbo budget not refilled after settling: cap = %g", s.Power.CapW())
	}
}

func TestLiveSysfsValues(t *testing.T) {
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	s.Spawn(workload.NewSpin("x", 10), hw.NewCPUSet(0))
	s.RunFor(1)
	freq, err := s.FS.ReadFile("sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq")
	if err != nil {
		t.Fatal(err)
	}
	if freq == "800000" {
		t.Error("busy cpu0 should not sit at min frequency")
	}
	uj, _ := s.FS.ReadFile("sys/class/powercap/intel-rapl:0/energy_uj")
	if uj == "0" {
		t.Error("energy_uj should have accumulated")
	}
	temp, _ := s.FS.ReadFile("sys/class/thermal/thermal_zone9/temp")
	if temp == "25000" {
		t.Error("zone temp should have risen")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, float64) {
		s := New(hw.RaptorLake(), DefaultConfig())
		h, _ := workload.NewHPL(workload.HPLConfig{
			N: 3072, NB: 192, Threads: 16, Strategy: workload.OpenBLASx86(), Seed: 9,
		})
		for i, task := range h.Threads() {
			s.Spawn(task, hw.NewCPUSet(hw.RaptorLake().FirstCPUPerCore()[i]))
		}
		s.RunUntil(h.Done, 600)
		return s.Now(), s.Power.EnergyJ(power.DomainPkg)
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%g, %g) vs (%g, %g)", t1, e1, t2, e2)
	}
}

func TestRunUntilTimeout(t *testing.T) {
	s := New(hw.RaptorLake(), DefaultConfig())
	if s.RunUntil(func() bool { return false }, 0.01) {
		t.Fatal("RunUntil must report false on timeout")
	}
	if s.Now() < 0.009 {
		t.Fatal("RunUntil must have advanced time")
	}
}

func TestSMTContention(t *testing.T) {
	// Two threads sharing one physical P-core must retire fewer total
	// instructions than two threads on separate cores.
	run := func(cpus []int) float64 {
		s := New(hw.RaptorLake(), DefaultConfig())
		a := workload.NewSpin("a", 2)
		b := workload.NewSpin("b", 2)
		s.Spawn(a, hw.NewCPUSet(cpus[0]))
		s.Spawn(b, hw.NewCPUSet(cpus[1]))
		glc := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
		var fds []int
		for _, cpu := range cpus {
			fd, err := s.Kernel.Open(perfevent.Attr{
				Type:   8,
				Config: events.Encode(glc.Code, glc.DefaultUmask().Bits),
			}, -1, cpu, -1)
			if err != nil {
				t.Fatal(err)
			}
			fds = append(fds, fd)
		}
		s.RunFor(2)
		var total float64
		for _, fd := range fds {
			c, _ := s.Kernel.Read(fd)
			total += float64(c.Value)
		}
		return total
	}
	shared := run([]int{0, 1})   // SMT siblings of P-core 0
	separate := run([]int{0, 2}) // distinct physical cores
	if shared >= separate {
		t.Fatalf("SMT-shared %g >= separate-core %g; contention model missing", shared, separate)
	}
	ratio := shared / separate
	// SMTThroughput is 0.62: two siblings deliver ~1.24x a single core,
	// i.e. ~62% of two full cores.
	if ratio < 0.55 || ratio > 0.75 {
		t.Errorf("SMT throughput ratio = %.2f, want ~0.62", ratio)
	}
}

// Property: RAPL energy equals the integral of instantaneous power for
// arbitrary workload mixes (the conservation invariant DESIGN.md states).
func TestEnergyConservationProperty(t *testing.T) {
	f := func(seed int64, spins []uint8) bool {
		s := New(hw.RaptorLake(), DefaultConfig())
		for i, sp := range spins {
			if i >= 8 {
				break
			}
			dur := float64(sp%40)/100 + 0.05
			s.Spawn(workload.NewSpin("w", dur), hw.NewCPUSet(i*2))
		}
		var integral float64
		for i := 0; i < 500; i++ {
			s.Step()
			integral += s.Power.PkgPowerW() * s.Tick()
		}
		got := s.Power.EnergyJ(power.DomainPkg)
		return math.Abs(got-integral) < 1e-6*(1+integral)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: total instructions reported by per-CPU system-wide counters
// equal the per-task counters for any pinning.
func TestWideVsTaskCountsProperty(t *testing.T) {
	f := func(cpuRaw [4]uint8) bool {
		m := hw.RaptorLake()
		s := New(m, DefaultConfig())
		glc := events.LookupPMU("adl_glc").Lookup("INST_RETIRED")
		grt := events.LookupPMU("adl_grt").Lookup("INST_RETIRED")
		attrOf := func(cpu int) perfevent.Attr {
			tt := m.TypeOf(cpu)
			def := glc
			if tt.Name == "E-core" {
				def = grt
			}
			return perfevent.Attr{Type: tt.PMU.PerfType, Config: events.Encode(def.Code, def.DefaultUmask().Bits)}
		}
		var wide []int
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			fd, err := s.Kernel.Open(attrOf(cpu), -1, cpu, -1)
			if err != nil {
				return false
			}
			wide = append(wide, fd)
		}
		var taskFDs []int
		seen := map[int]bool{}
		for i := 0; i < 4; i++ {
			cpu := int(cpuRaw[i]) % m.NumCPUs()
			if seen[cpu] {
				continue
			}
			seen[cpu] = true
			loop := workload.NewInstructionLoop("w", 1e6, 20)
			p := s.Spawn(loop, hw.NewCPUSet(cpu))
			for _, tt := range []string{"P-core", "E-core"} {
				typ := m.TypeByName(tt)
				def := glc
				if tt == "E-core" {
					def = grt
				}
				fd, err := s.Kernel.Open(perfevent.Attr{
					Type: typ.PMU.PerfType, Config: events.Encode(def.Code, def.DefaultUmask().Bits),
				}, p.PID, -1, -1)
				if err != nil {
					return false
				}
				taskFDs = append(taskFDs, fd)
			}
		}
		s.RunFor(0.2)
		var wideSum, taskSum uint64
		for _, fd := range wide {
			c, _ := s.Kernel.Read(fd)
			wideSum += c.Value
		}
		for _, fd := range taskFDs {
			c, _ := s.Kernel.Read(fd)
			taskSum += c.Value
		}
		return wideSum == taskSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestDimensityEndToEnd(t *testing.T) {
	// The tri-gear machine runs the full stack: HPL across all 8 cores
	// with thermal throttling of prime/big clusters.
	m := hw.Dimensity9000()
	s := New(m, DefaultConfig())
	h, err := workload.NewHPL(workload.HPLConfig{
		N: 12288, NB: 128, Threads: 8, Strategy: workload.OpenBLASArm(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range h.Threads() {
		s.Spawn(task, hw.NewCPUSet(i))
	}
	if !s.RunUntil(h.Done, 600) {
		t.Fatal("HPL did not finish on the tri-gear machine")
	}
	g := h.Gflops(s.Now())
	if g < 5 || g > 120 {
		t.Fatalf("Gflops = %.1f, implausible for a phone SoC", g)
	}
	// A phone SoC at sustained full load must be pushed to its passive
	// trip and throttle the fast clusters.
	if s.Thermal.TempC() < 70 {
		t.Errorf("SoC only reached %.1f C under sustained load", s.Thermal.TempC())
	}
	prime := m.CPUsOfType("prime")[0]
	if f := s.CurFreqMHz(prime); f > 2500 {
		t.Errorf("prime core at %.0f MHz after sustained load; expected throttling", f)
	}
}

func TestHomogeneousBaselineScaling(t *testing.T) {
	// The traditional machine: throughput scales with cores and no hybrid
	// machinery is involved (the paper's baseline world).
	run := func(ncores int) float64 {
		s := New(hw.Homogeneous(), DefaultConfig())
		cpus := hw.Homogeneous().FirstCPUPerCore()[:ncores]
		h, _ := workload.NewHPL(workload.HPLConfig{
			N: 4800, NB: 192, Threads: ncores, Strategy: workload.OpenBLASx86(), Seed: 1,
		})
		for i, task := range h.Threads() {
			s.Spawn(task, hw.NewCPUSet(cpus[i]))
		}
		if !s.RunUntil(h.Done, 3600) {
			t.Fatal("did not finish")
		}
		return h.Gflops(s.Now())
	}
	one, four := run(1), run(4)
	ratio := four / one
	if ratio < 2.5 || ratio > 4.2 {
		t.Fatalf("4-core/1-core scaling = %.2fx; homogeneous static split should scale well", ratio)
	}
}
