package sim_test

// Seed-sweep determinism: the simulator's contract is that ALL randomness
// flows from the config seeds. These tests pin both directions of that
// contract through the monitoring trace digest — the same fingerprint the
// scenario harness's golden files use: equal seeds must reproduce the
// trace byte-for-byte, and different seeds must actually change the
// (migration-perturbed) schedule rather than being ignored.

import (
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/trace"
	"hetpapi/internal/workload"
)

// traceDigest runs an unpinned instruction loop on the hybrid Raptor Lake
// under the given scheduler seed and returns the trace digest plus the
// finish time.
func traceDigest(t *testing.T, seed int64) (string, float64) {
	t.Helper()
	m := hw.RaptorLake()
	cfg := sim.DefaultConfig()
	cfg.Sched.Seed = seed
	s := sim.New(m, cfg)
	loop := workload.NewInstructionLoop("roam", 1e6, 4000)
	s.Spawn(loop, hw.AllCPUs(m))
	rec := trace.NewRecorder(s, 0.25)
	if !rec.RunUntil(loop.Done, 60) {
		t.Fatal("loop did not finish")
	}
	return trace.DigestSamples(m.NumCPUs(), rec.Samples()), s.Now()
}

// sweepSeeds is the 16-seed sweep both determinism tests below run: a
// spread of small, adjacent, bit-pattern and large seeds so neither the
// RNG seeding nor the event core's span caching can hide behind one
// lucky value.
var sweepSeeds = []int64{
	1, 2, 3, 4, 5, 17, 42, 255, 256, 4096, 65537,
	1 << 20, 1 << 31, 1<<31 + 1, 1 << 40, 1<<62 - 1,
}

func TestSeedSweepReproducible(t *testing.T) {
	for _, seed := range sweepSeeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			d1, t1 := traceDigest(t, seed)
			d2, t2 := traceDigest(t, seed)
			if d1 != d2 || t1 != t2 {
				t.Errorf("seed %d: two runs diverged (digest %s vs %s, time %g vs %g)",
					seed, d1[:12], d2[:12], t1, t2)
			}
		})
	}
}

// TestSettleReproducible pins the idle fast path: Settle spends millions
// of quiescent ticks — exactly the span the event core batches — so two
// fresh machines walked through the same warm-up must land on identical
// waited time, clock, temperature and energy.
func TestSettleReproducible(t *testing.T) {
	settle := func() []float64 {
		s := sim.New(hw.RaptorLake(), sim.DefaultConfig())
		s.Thermal.SetTempC(55)
		waited := s.Settle(36)
		return []float64{waited, s.Now(), s.Thermal.TempC(), s.Power.EnergyJ(0)}
	}
	a, b := settle(), settle()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("settle diverged at field %d: %v vs %v", i, a, b)
		}
	}
}

func TestSeedSweepDiverges(t *testing.T) {
	digests := map[string][]int64{}
	for _, seed := range []int64{1, 2, 3, 17, 1 << 40} {
		d, _ := traceDigest(t, seed)
		digests[d] = append(digests[d], seed)
	}
	if len(digests) < 2 {
		t.Errorf("all %d seeds produced one digest; the scheduler seed is being ignored", len(digests))
	}
}
