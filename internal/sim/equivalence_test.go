// Differential tick-vs-event equivalence suite: every reference scenario
// runs once on the legacy fixed-tick loop (Config.ForceTickLoop) and once
// on the event-driven core, and every observable artifact — the golden
// digest, the full monitoring trace CSV, the per-type counter totals, the
// measurement values and the degradation report — must match byte for
// byte. This is the contract that lets the legacy loop be deleted next
// PR.
package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"hetpapi/internal/scenario"
	"hetpapi/internal/trace"
)

// runBoth executes one reference spec on both cores and returns
// (tickResult, eventResult).
func runBoth(t *testing.T, spec scenario.Spec) (*scenario.Result, *scenario.Result) {
	t.Helper()
	tickSpec := spec
	tickSpec.ForceTickLoop = true
	tickRes, err := scenario.Run(tickSpec)
	if err != nil {
		t.Fatalf("tick-loop run: %v", err)
	}
	eventSpec := spec
	eventSpec.ForceTickLoop = false
	eventRes, err := scenario.Run(eventSpec)
	if err != nil {
		t.Fatalf("event-core run: %v", err)
	}
	return tickRes, eventRes
}

func numCPUs(t *testing.T, spec scenario.Spec) int {
	t.Helper()
	mk := spec.MachineFn
	if mk == nil {
		var ok bool
		mk, ok = scenario.Machines[spec.Machine]
		if !ok {
			t.Fatalf("unknown machine %q", spec.Machine)
		}
	}
	return mk().NumCPUs()
}

func TestTickEventEquivalence(t *testing.T) {
	for _, spec := range scenario.Reference() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tickRes, eventRes := runBoth(t, spec)
			ncpu := numCPUs(t, spec)

			if tickRes.Digest != eventRes.Digest {
				t.Errorf("digest diverged:\n tick  %s\n event %s",
					tickRes.Digest, eventRes.Digest)
			}

			var tickCSV, eventCSV bytes.Buffer
			if err := trace.WriteCSV(&tickCSV, ncpu, tickRes.Samples); err != nil {
				t.Fatalf("tick CSV: %v", err)
			}
			if err := trace.WriteCSV(&eventCSV, ncpu, eventRes.Samples); err != nil {
				t.Fatalf("event CSV: %v", err)
			}
			if !bytes.Equal(tickCSV.Bytes(), eventCSV.Bytes()) {
				t.Errorf("trace CSV diverged (%d vs %d bytes)",
					tickCSV.Len(), eventCSV.Len())
			}

			if !reflect.DeepEqual(tickRes.ByType, eventRes.ByType) {
				t.Errorf("per-type counters diverged:\n tick  %+v\n event %+v",
					tickRes.ByType, eventRes.ByType)
			}
			if !reflect.DeepEqual(tickRes.MeasureFinal, eventRes.MeasureFinal) {
				t.Errorf("measured values diverged:\n tick  %+v\n event %+v",
					tickRes.MeasureFinal, eventRes.MeasureFinal)
			}
			if !reflect.DeepEqual(tickRes.Degradations, eventRes.Degradations) {
				t.Errorf("degradation report diverged:\n tick  %+v\n event %+v",
					tickRes.Degradations, eventRes.Degradations)
			}
			if tickRes.EnergyJ != eventRes.EnergyJ {
				t.Errorf("energy diverged: tick %v event %v",
					tickRes.EnergyJ, eventRes.EnergyJ)
			}
			if !reflect.DeepEqual(tickRes.Workloads, eventRes.Workloads) {
				t.Errorf("workload outcomes diverged:\n tick  %+v\n event %+v",
					tickRes.Workloads, eventRes.Workloads)
			}
			if tickRes.Completed != eventRes.Completed ||
				tickRes.ElapsedSec != eventRes.ElapsedSec {
				t.Errorf("run shape diverged: tick (done=%v t=%v) event (done=%v t=%v)",
					tickRes.Completed, tickRes.ElapsedSec,
					eventRes.Completed, eventRes.ElapsedSec)
			}
		})
	}
}

// TestSettleEquivalence pins the idle fast path against the legacy loop on
// a warm machine: Settle spends millions of quiescent ticks, exactly the
// span the event core batches, so temperature, energy and elapsed time
// must still land on identical values.
func TestSettleEquivalence(t *testing.T) {
	spec := scenario.Reference()[0] // raptorlake HPL: heats the package
	results := map[bool][]float64{}
	for _, forceTick := range []bool{true, false} {
		s := spec
		s.ForceTickLoop = forceTick
		m, err := scenario.Boot(s)
		if err != nil {
			t.Fatal(err)
		}
		m.Thermal.SetTempC(55)
		waited := m.Settle(36)
		results[forceTick] = []float64{
			waited, m.Now(), m.Thermal.TempC(), m.Power.EnergyJ(0),
		}
	}
	if !reflect.DeepEqual(results[true], results[false]) {
		t.Errorf("settle diverged:\n tick  %v\n event %v", results[true], results[false])
	}
}
