// The discrete-event core's queue: a binary min-heap of machine-level
// events keyed on simulated time. The queue holds the deadlines the step
// loop would otherwise have to poll every tick — scheduler rebalance
// points, DVFS power/thermal control boundaries, perf_event multiplex
// rotations and sampling-service points, fault-plan trigger times — plus
// one-shot callbacks registered with Machine.ScheduleAt (task
// phase-changes and completions external harnesses know about).
//
// Ordering contract: pops are non-decreasing in time, and events with
// equal timestamps pop in FIFO order (each schedule call, including a
// re-arm, takes a fresh sequence number). Cancel and re-arm are O(log n)
// and safe at any time, including for events currently queued.
package sim

// eventKind classifies a machine-level event.
type eventKind uint8

const (
	// evNone marks an event struct not bound to a role yet.
	evNone eventKind = iota
	// evSchedBalance is the scheduler's next load-balance deadline.
	evSchedBalance
	// evDVFSDeadline is the governor's next control boundary (the
	// earlier of its power and thermal loop periods).
	evDVFSDeadline
	// evKernelDeadline is the perf_event kernel's next obligation: a
	// multiplex rotation boundary, a sampling-service point, or a
	// fault-plan trigger (see perfevent.Kernel.NextDeadline).
	evKernelDeadline
	// evPowerCap is the estimated PL2<->PL1 cap flip of the power model.
	evPowerCap
	// evThermalSettle is the estimated time the thermal zone comes
	// within its settle band of steady state.
	evThermalSettle
	// evOneShot is a user callback registered with Machine.ScheduleAt.
	evOneShot
)

// event is one queue entry. The machine's recurring events are fields of
// Machine and re-armed in place; one-shots are allocated by ScheduleAt.
type event struct {
	at   float64
	kind eventKind
	fn   func(*Machine) // evOneShot callback, nil otherwise

	seq uint64
	pos int // heap index, or -1 when not queued
}

// eventQueue is the min-heap. The zero value is an empty queue.
type eventQueue struct {
	heap []*event
	seq  uint64
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.heap) }

// peek returns the earliest event without removing it, or nil.
func (q *eventQueue) peek() *event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// schedule arms e at time at, re-arming in place if e is already queued.
// A re-arm counts as a fresh insertion for FIFO purposes.
func (q *eventQueue) schedule(e *event, at float64) {
	e.at = at
	q.seq++
	e.seq = q.seq
	if e.pos >= 0 && e.pos < len(q.heap) && q.heap[e.pos] == e {
		// Already queued: restore heap order around the new key. The new
		// sequence number only grows, so an unchanged time sinks below
		// equal-time peers, preserving FIFO among them.
		if !q.siftUp(e.pos) {
			q.siftDown(e.pos)
		}
		return
	}
	e.pos = len(q.heap)
	q.heap = append(q.heap, e)
	q.siftUp(e.pos)
}

// cancel removes e from the queue, reporting whether it was queued.
func (q *eventQueue) cancel(e *event) bool {
	i := e.pos
	if i < 0 || i >= len(q.heap) || q.heap[i] != e {
		e.pos = -1
		return false
	}
	q.removeAt(i)
	e.pos = -1
	return true
}

// pop removes and returns the earliest event, or nil on an empty queue.
func (q *eventQueue) pop() *event {
	if len(q.heap) == 0 {
		return nil
	}
	e := q.heap[0]
	q.removeAt(0)
	e.pos = -1
	return e
}

func (q *eventQueue) removeAt(i int) {
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		if !q.siftUp(i) {
			q.siftDown(i)
		}
	}
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].pos = i
	q.heap[j].pos = j
}

// siftUp restores heap order upward from i, reporting whether i moved.
func (q *eventQueue) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// siftDown restores heap order downward from i.
func (q *eventQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			return
		}
		q.swap(i, child)
		i = child
	}
}
