package sim_test

import (
	"fmt"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// Example boots the homogeneous machine, pins an instruction loop to
// cpu0 and steps the simulation until it finishes.
func Example() {
	m := hw.Homogeneous()
	s := sim.New(m, sim.DefaultConfig())
	loop := workload.NewInstructionLoop("demo", 1e6, 100)
	s.Spawn(loop, hw.NewCPUSet(0))
	done := s.RunUntil(loop.Done, 10)
	fmt.Printf("done=%v retired=%.0f\n", done, loop.TotalInstructions())
	fmt.Printf("warmer than ambient: %v\n", s.Thermal.TempC() > m.Thermal.AmbientC)
	// Output:
	// done=true retired=100000000
	// warmer than ambient: true
}
