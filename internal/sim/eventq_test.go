package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestEventQueuePopNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	const n = 500
	for i := 0; i < n; i++ {
		q.schedule(&event{kind: evOneShot, pos: -1}, rng.Float64()*10)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	last := math.Inf(-1)
	for q.Len() > 0 {
		e := q.pop()
		if e.at < last {
			t.Fatalf("pop went backwards: %v after %v", e.at, last)
		}
		if e.pos != -1 {
			t.Fatalf("popped event still has pos %d", e.pos)
		}
		last = e.at
	}
	if e := q.peek(); e != nil {
		t.Fatalf("peek on empty queue = %+v", e)
	}
	if e := q.pop(); e != nil {
		t.Fatalf("pop on empty queue = %+v", e)
	}
}

func TestEventQueueFIFOAmongEqualTimes(t *testing.T) {
	var q eventQueue
	// Interleave two timestamps; within each, insertion order must hold.
	inserted := map[*event]int{}
	for i := 0; i < 100; i++ {
		e := &event{kind: evOneShot, pos: -1}
		q.schedule(e, float64(i%2))
		inserted[e] = i
	}
	popped := 0
	lastAt := -1.0
	lastIns := -1
	for q.Len() > 0 {
		e := q.pop()
		if e.at != lastAt {
			lastAt = e.at
			lastIns = -1
		}
		if inserted[e] <= lastIns {
			t.Fatalf("FIFO violated at t=%v: insertion %d popped after %d",
				e.at, inserted[e], lastIns)
		}
		lastIns = inserted[e]
		popped++
	}
	if popped != 100 {
		t.Fatalf("popped %d events, want 100", popped)
	}
}

func TestEventQueueCancelAndRearm(t *testing.T) {
	var q eventQueue
	events := make([]*event, 20)
	for i := range events {
		events[i] = &event{kind: evOneShot, pos: -1}
		q.schedule(events[i], float64(i))
	}
	// Cancel the middle half; double-cancel must be a safe no-op.
	for i := 5; i < 15; i++ {
		if !q.cancel(events[i]) {
			t.Fatalf("cancel of queued event %d returned false", i)
		}
		if q.cancel(events[i]) {
			t.Fatalf("second cancel of event %d returned true", i)
		}
	}
	// Re-arm a cancelled event and an in-queue event to new times.
	q.schedule(events[7], 2.5)  // was cancelled: push back
	q.schedule(events[2], 30)   // in queue: move later
	q.schedule(events[19], 0.5) // in queue: move earlier

	want := []float64{0, 0.5, 1, 2.5, 3, 4, 15, 16, 17, 18, 30}
	var got []float64
	for q.Len() > 0 {
		got = append(got, q.pop().at)
	}
	if len(got) != len(want) {
		t.Fatalf("popped times %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped times %v, want %v", got, want)
		}
	}
}

func TestEventQueueRearmKeepsHeapConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	live := make([]*event, 64)
	for i := range live {
		live[i] = &event{kind: evOneShot, pos: -1}
		q.schedule(live[i], rng.Float64()*100)
	}
	for step := 0; step < 2000; step++ {
		e := live[rng.Intn(len(live))]
		switch rng.Intn(3) {
		case 0:
			q.schedule(e, rng.Float64()*100) // re-arm (queued or not)
		case 1:
			q.cancel(e)
		case 2:
			if e.pos < 0 {
				q.schedule(e, rng.Float64()*100)
			}
		}
		checkHeapInvariants(t, &q)
	}
}

// checkHeapInvariants verifies the heap ordering property and that every
// element's cached position index is accurate.
func checkHeapInvariants(t *testing.T, q *eventQueue) {
	t.Helper()
	for i, e := range q.heap {
		if e.pos != i {
			t.Fatalf("heap[%d].pos = %d", i, e.pos)
		}
		if parent := (i - 1) / 2; i > 0 && q.less(i, parent) {
			t.Fatalf("heap order violated at %d: (%v,%v) < parent (%v,%v)",
				i, e.at, e.seq, q.heap[parent].at, q.heap[parent].seq)
		}
	}
}

// FuzzEventQueue drives the queue with an arbitrary operation tape and
// checks the heap invariants after every operation plus full drain order
// at the end. Each byte pair is (op, operand): schedule, cancel or pop
// against a fixed pool of events.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 0, 1, 1, 0, 3})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0, 2, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		var q eventQueue
		pool := make([]*event, 16)
		for i := range pool {
			pool[i] = &event{kind: evOneShot, pos: -1}
		}
		queued := map[*event]bool{}
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i]%3, tape[i+1]
			e := pool[int(arg)%len(pool)]
			switch op {
			case 0:
				q.schedule(e, float64(arg%32)/4)
				queued[e] = true
			case 1:
				if got, want := q.cancel(e), queued[e]; got != want {
					t.Fatalf("cancel returned %v for queued=%v", got, want)
				}
				delete(queued, e)
			case 2:
				if e := q.pop(); e != nil {
					delete(queued, e)
				}
			}
			if q.Len() != len(queued) {
				t.Fatalf("Len = %d, model says %d", q.Len(), len(queued))
			}
			checkHeapInvariants(t, &q)
		}
		// Drain: non-decreasing by (at, seq).
		lastAt, lastSeq := math.Inf(-1), uint64(0)
		var drained []float64
		for q.Len() > 0 {
			e := q.pop()
			if e.at < lastAt || (e.at == lastAt && e.seq <= lastSeq && lastSeq != 0) {
				t.Fatalf("drain order violated: (%v,%d) after (%v,%d)",
					e.at, e.seq, lastAt, lastSeq)
			}
			lastAt, lastSeq = e.at, e.seq
			drained = append(drained, e.at)
		}
		if !sort.Float64sAreSorted(drained) {
			t.Fatalf("drained times not sorted: %v", drained)
		}
	})
}
