package sim

import (
	"fmt"

	"hetpapi/internal/spantrace"
)

// Span-trace instrumentation for the simulator layer. The machine owns
// the recorder reference and feeds it three kinds of events:
//
//   - exec spans: one complete span per contiguous stretch a process
//     runs on a CPU, opened at SchedIn and closed at SchedOut, on that
//     CPU's track, labelled with the task name and core type;
//   - migration instants on the "sched" track whenever a pid's CPU
//     changes, the cross-PMU moments the paper's lost-counter stories
//     hinge on;
//   - context-switch accounting rides in the exec spans themselves.
//
// The sched hook adapter is registered once per machine (the scheduler
// has no hook removal) and dereferences the machine's tracer field on
// every call, so the recorder can be attached, replaced or detached on
// a warm machine between scenario runs.

// traceState is per-machine bookkeeping for open exec spans.
type traceState struct {
	cpuTrk   []int          // per-CPU track ids
	schedTrk int            // migration/instant track
	lastCPU  map[int]int    // pid -> last CPU (migration detection)
	open     []execOpen     // per-CPU currently-open exec span
	labels   map[int]string // pid -> task name
}

type execOpen struct {
	pid   int
	since float64
	open  bool
}

// SetTracer attaches (or with nil, detaches) a span recorder. Tracks
// for each CPU (named with the core type), the scheduler, the kernel
// and the fault layer are registered eagerly so track ids are stable;
// the perfevent kernel is handed the same recorder for syscall and
// fault events. Enablement is controlled on the recorder itself.
func (s *Machine) SetTracer(r *spantrace.Recorder) {
	if s.trk == nil {
		// First attachment ever: install the sched adapter. It stays
		// registered for the machine's lifetime and is inert whenever
		// the tracer is nil or disabled.
		s.Sched.AddHook(&traceHook{s: s})
	}
	s.tracer = nil // quiesce the adapter while rebuilding state
	if r == nil {
		s.trk = &traceState{lastCPU: map[int]int{}, labels: map[int]string{},
			open: make([]execOpen, s.HW.NumCPUs())}
		s.Kernel.SetTracer(nil)
		return
	}
	st := &traceState{
		cpuTrk:   make([]int, s.HW.NumCPUs()),
		schedTrk: r.Track("sched"),
		lastCPU:  map[int]int{},
		open:     make([]execOpen, s.HW.NumCPUs()),
		labels:   map[int]string{},
	}
	for cpu := range st.cpuTrk {
		st.cpuTrk[cpu] = r.Track(fmt.Sprintf("cpu%d %s", cpu, s.HW.TypeOf(cpu).Name))
	}
	s.trk = st
	s.Kernel.SetTracer(r)
	s.tracer = r
}

// Tracer returns the attached recorder (nil when tracing is detached).
// Layers above the simulator (core, scenario) reach the recorder
// through here so one attachment covers the whole stack.
func (s *Machine) Tracer() *spantrace.Recorder { return s.tracer }

// FlushTrace closes every open exec span at the current sim time and
// immediately reopens it, so a snapshot taken now includes the work of
// still-running tasks. Call before exporting.
func (s *Machine) FlushTrace() {
	r := s.tracer
	if !r.Enabled() || s.trk == nil {
		return
	}
	for cpu := range s.trk.open {
		sp := &s.trk.open[cpu]
		if !sp.open {
			continue
		}
		s.emitExec(cpu, sp.pid, sp.since, s.now)
		sp.since = s.now
	}
}

func (s *Machine) emitExec(cpu, pid int, since, until float64) {
	name := s.trk.labels[pid]
	if name == "" {
		name = fmt.Sprintf("pid %d", pid)
	}
	s.tracer.Span(s.trk.cpuTrk[cpu], name, "exec", since, until-since,
		spantrace.Int("pid", pid),
		spantrace.Str("core_type", s.HW.TypeOf(cpu).Name),
		spantrace.Str("class", s.HW.TypeOf(cpu).Class.String()))
}

// traceHook adapts the scheduler's context-switch hook to exec spans
// and migration instants.
type traceHook struct{ s *Machine }

func (h *traceHook) SchedIn(pid, cpu int, now float64) {
	s := h.s
	r := s.tracer
	if !r.Enabled() {
		return
	}
	t := s.trk
	if p := s.Sched.RunningOn(cpu); p != nil {
		t.labels[pid] = p.Task.Name()
	}
	t.open[cpu] = execOpen{pid: pid, since: now, open: true}
	if last, ok := t.lastCPU[pid]; ok && last != cpu {
		r.Instant(t.schedTrk, "migrate", "sched", now,
			spantrace.Int("pid", pid),
			spantrace.Int("from", last),
			spantrace.Int("to", cpu),
			spantrace.Str("task", t.labels[pid]),
			spantrace.Str("from_type", s.HW.TypeOf(last).Name),
			spantrace.Str("to_type", s.HW.TypeOf(cpu).Name))
	}
	t.lastCPU[pid] = cpu
}

func (h *traceHook) SchedOut(pid, cpu int, now float64) {
	s := h.s
	if !s.tracer.Enabled() {
		return
	}
	sp := &s.trk.open[cpu]
	if sp.open && sp.pid == pid {
		s.emitExec(cpu, pid, sp.since, now)
		sp.open = false
	}
}
