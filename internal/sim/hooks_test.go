package sim

// Regression tests for the StepHook registry. The original
// implementation nil'ed the removed slot and never compacted, so every
// attach/detach cycle (one per scenario run on a warm machine) grew the
// slice forever and dispatch kept scanning dead slots.

import (
	"testing"

	"hetpapi/internal/hw"
)

func newIdleMachine() *Machine {
	return New(hw.RaptorLake(), DefaultConfig())
}

func TestStepHookAddRemoveAddDoesNotLeak(t *testing.T) {
	s := newIdleMachine()
	for i := 0; i < 1000; i++ {
		fired := false
		remove := s.AddStepHook(func(*Machine) { fired = true })
		s.Step()
		if !fired {
			t.Fatalf("cycle %d: hook did not fire", i)
		}
		remove()
		remove() // idempotent
	}
	if n := len(s.stepHooks); n != 0 {
		t.Fatalf("after 1000 attach/detach cycles, %d hook slots remain", n)
	}
	if c := cap(s.stepHooks); c > 16 {
		t.Fatalf("hook slice capacity grew to %d; removal is not compacting", c)
	}
}

func TestStepHookInterleavedRemovalKeepsOrder(t *testing.T) {
	s := newIdleMachine()
	var order []string
	add := func(name string) func() {
		return s.AddStepHook(func(*Machine) { order = append(order, name) })
	}
	removeA := add("a")
	removeB := add("b")
	add("c")
	removeB()
	add("d")

	order = nil
	s.Step()
	if got := join(order); got != "a,c,d" {
		t.Fatalf("after removing b: fired %q, want %q", got, "a,c,d")
	}

	removeA()
	add("e")
	order = nil
	s.Step()
	if got := join(order); got != "c,d,e" {
		t.Fatalf("after removing a, adding e: fired %q, want %q", got, "c,d,e")
	}
}

func TestStepHookAddedDuringDispatchRunsNextTick(t *testing.T) {
	s := newIdleMachine()
	added := false
	lateFired := 0
	s.AddStepHook(func(m *Machine) {
		if !added {
			added = true
			m.AddStepHook(func(*Machine) { lateFired++ })
		}
	})
	s.Step()
	if lateFired != 0 {
		t.Fatalf("hook added during dispatch ran in the same tick (lateFired=%d)", lateFired)
	}
	s.Step()
	if lateFired != 1 {
		t.Fatalf("hook added during dispatch did not run next tick (lateFired=%d)", lateFired)
	}
}

func TestStepHookRemovedDuringDispatchIsSkipped(t *testing.T) {
	s := newIdleMachine()
	var fired []string
	var removeB func()
	s.AddStepHook(func(*Machine) {
		fired = append(fired, "a")
		removeB()
	})
	removeB = s.AddStepHook(func(*Machine) { fired = append(fired, "b") })
	s.AddStepHook(func(*Machine) { fired = append(fired, "c") })

	s.Step()
	if got := join(fired); got != "a,c" {
		t.Fatalf("tick 1 fired %q, want %q (b removed mid-dispatch)", got, "a,c")
	}
	if n := len(s.stepHooks); n != 2 {
		t.Fatalf("mid-dispatch removal left %d slots, want 2 after compaction", n)
	}
	fired = nil
	s.Step()
	if got := join(fired); got != "a,c" {
		t.Fatalf("tick 2 fired %q, want %q", got, "a,c")
	}
}

func TestStepHookSelfRemovalDuringDispatch(t *testing.T) {
	s := newIdleMachine()
	count := 0
	var remove func()
	remove = s.AddStepHook(func(*Machine) {
		count++
		remove()
	})
	s.Step()
	s.Step()
	if count != 1 {
		t.Fatalf("self-removing hook fired %d times, want 1", count)
	}
	if n := len(s.stepHooks); n != 0 {
		t.Fatalf("self-removal left %d slots", n)
	}
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
