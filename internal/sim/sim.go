// Package sim is the discrete-event machine simulator: it wires the
// hardware description, the scheduler, the workloads, the DVFS governor,
// the power and thermal models, the perf_event kernel and the synthetic
// sysfs tree into a single stepped system.
//
// Time advances in fixed ticks (1 ms by default) and every observable
// boundary — StepHooks, monitoring samples, scheduler decisions — sits on
// a tick, but the core is event-driven: a min-heap of machine-level
// events (eventq.go) holds the scheduler's next rebalance point, the DVFS
// governor's control deadlines, the perf_event kernel's multiplex /
// sampling / fault-plan obligations, the power model's cap-flip estimate,
// the thermal settle horizon and any ScheduleAt one-shots. On a busy tick
// (some task placed, ready or unreaped) the simulator does the full
// per-CPU work:
//
//  1. lets the scheduler update task placement,
//  2. runs each placed task on its CPU at the governor's frequency,
//  3. feeds the produced event quantities to the perf_event kernel,
//  4. converts per-core activity into package power, integrates RAPL
//     energy and the thermal zone, and
//  5. gives the governor its power/thermal feedback.
//
// On an idle tick (scheduler quiescent, no event due) only the work that
// can change state runs: power and thermal integration, the kernel clock,
// and the hooks. Subsystem calls that would provably be no-ops — per-CPU
// scanning, scheduler ticks between rebalance deadlines, governor updates
// between control boundaries — are skipped, and the skipped calls are
// exactly the ones the event queue proves have no deadline due. The
// golden scenario digests pin the observable behavior of both paths;
// they were proven byte-identical to the original fixed-tick reference
// loop by the differential equivalence suite before that loop was
// deleted.
//
// Everything is deterministic: all randomness flows from seeds in the
// configs, and no wall-clock time is consulted anywhere.
package sim

import (
	"math"

	"hetpapi/internal/dvfs"
	"hetpapi/internal/events"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/power"
	"hetpapi/internal/sched"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/sysfs"
	"hetpapi/internal/thermal"
	"hetpapi/internal/workload"
)

// timeEps absorbs the floating-point drift of summing ticks when
// comparing simulated times against event deadlines.
const timeEps = 1e-12

// thermalSettleBandC is how close to steady state the thermal zone must
// be for the advisory settle event to be considered reached.
const thermalSettleBandC = 0.05

// Config assembles the subsystem configurations.
type Config struct {
	// TickSec is the simulation step (default 1 ms).
	TickSec float64
	// Sched configures the scheduler.
	Sched sched.Config
	// DVFS configures the frequency governor.
	DVFS dvfs.Config
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		TickSec: 0.001,
		Sched:   sched.DefaultConfig(),
		DVFS:    dvfs.DefaultConfig(),
	}
}

// Machine is a running simulated system.
type Machine struct {
	// HW is the hardware description.
	HW *hw.Machine
	// Sched is the scheduler.
	Sched *sched.Scheduler
	// Kernel is the perf_event subsystem.
	Kernel *perfevent.Kernel
	// Governor is the DVFS governor.
	Governor *dvfs.Governor
	// Power is the package power / RAPL model.
	Power *power.Model
	// Thermal is the package thermal zone.
	Thermal *thermal.Model
	// FS is the live-backed synthetic sysfs/procfs tree.
	FS *sysfs.FS

	cfg     Config
	now     float64
	freqMHz []float64 // per logical CPU, as of the last tick

	stepHooks  []*hookEntry
	inHooks    bool
	hooksDirty bool

	// Event core state. The recurring events below are re-armed in
	// place; the queue additionally holds ScheduleAt one-shots.
	eq         eventQueue
	dueScratch []*event
	evBalance  event
	evDVFS     event
	evKernel   event
	evPowerCap event
	evThermal  event
	// Span cache: the scheduler's generation counter at the last span
	// refresh, and whether the machine was quiescent then. Valid until
	// the generation changes.
	spanValid bool
	spanIdle  bool
	schedGen  uint64

	// Immutable per-CPU topology caches (hot-path versions of the
	// hw.Machine lookups, resolved once at boot).
	cpuType    []*hw.CoreType
	cpuTypeIdx []int
	cpuSib     []int
	cpuMin     []float64
	physOf     []int // logical CPU -> dense physical-core index
	physType   []*hw.CoreType
	nPhys      int
	idleCoresW float64 // core power of a fully idle tick (constant)

	// Per-tick scratch reused by the busy path so steady-state ticks
	// allocate nothing.
	slotProc     []*sched.Process
	slotActive   []bool
	coreAct      []float64 // per dense physical core
	coreFreq     []float64
	tgtFreq      []float64 // per core-type target frequency memo
	tgtValid     []bool
	execCtx      workload.ExecContext
	statsScratch events.Stats

	tracer *spantrace.Recorder
	trk    *traceState
}

// StepHook observes the machine after each completed tick. Hooks run in
// registration order with the machine in a consistent post-tick state
// (Now() already advanced); they are how external harnesses check
// invariants, inject faults and schedule work without owning the step
// loop. Hooks fire at every tick boundary.
type StepHook func(*Machine)

// hookEntry is one registered StepHook. Removal nils h; the slice is
// compacted immediately, or after the in-flight dispatch completes when
// a hook removes itself (or a peer) mid-dispatch.
type hookEntry struct {
	h StepHook
}

// New boots a machine.
func New(m *hw.Machine, cfg Config) *Machine {
	if cfg.TickSec <= 0 {
		cfg.TickSec = 0.001
	}
	s := &Machine{
		HW:       m,
		Sched:    sched.New(m, cfg.Sched),
		Kernel:   perfevent.NewKernel(m),
		Governor: dvfs.New(m, cfg.DVFS),
		Power:    power.New(m.Power),
		Thermal:  thermal.New(m.Thermal),
		cfg:      cfg,
		freqMHz:  make([]float64, m.NumCPUs()),
	}
	s.buildTopologyCaches()
	for i := range s.freqMHz {
		s.freqMHz[i] = s.cpuMin[i]
	}
	s.Kernel.AttachPower(s.Power)
	s.Sched.AddHook(s.Kernel)
	// Hotplug flows kernel-first so plan-driven faults reach the
	// scheduler too: whichever door sets a CPU's state, the kernel's
	// callback keeps the scheduler's view in sync.
	s.Kernel.OnHotplug = func(cpu int, online bool) {
		s.Sched.SetOnline(cpu, online, s.now)
	}
	// Overflow-time attribution context for sampling events: the workload
	// phase executing on the CPU (when the task distinguishes phases) and
	// the DVFS frequency the tick is running at. Step sets freqMHz[cpu]
	// before calling TaskExec, so the value is current at overflow time.
	s.Kernel.OnSampleContext = func(pid, cpu int) (string, float64) {
		phase := ""
		if p := s.Sched.RunningOn(cpu); p != nil && p.PID == pid {
			if ph, ok := p.Task.(workload.Phased); ok {
				phase = ph.PhaseName()
			}
		}
		return phase, s.freqMHz[cpu]
	}
	s.FS = sysfs.New(m, s)
	s.evBalance.kind = evSchedBalance
	s.evDVFS.kind = evDVFSDeadline
	s.evKernel.kind = evKernelDeadline
	s.evPowerCap.kind = evPowerCap
	s.evThermal.kind = evThermalSettle
	for _, e := range []*event{&s.evBalance, &s.evDVFS, &s.evKernel, &s.evPowerCap, &s.evThermal} {
		e.pos = -1
	}
	s.armBalanceEvent()
	s.armDVFSEvent()
	return s
}

// buildTopologyCaches resolves the per-CPU lookups the hot step path
// needs into flat slices: core types, SMT siblings, minimum OPPs, and a
// dense physical-core index in first-CPU order — the same order the
// legacy loop discovered physical cores in, so power summation keeps the
// exact floating-point sequence.
func (s *Machine) buildTopologyCaches() {
	m := s.HW
	ncpu := m.NumCPUs()
	s.cpuType = make([]*hw.CoreType, ncpu)
	s.cpuTypeIdx = make([]int, ncpu)
	s.cpuSib = make([]int, ncpu)
	s.cpuMin = make([]float64, ncpu)
	s.physOf = make([]int, ncpu)
	physIndex := map[int]int{}
	for cpu := 0; cpu < ncpu; cpu++ {
		t := m.TypeOf(cpu)
		s.cpuType[cpu] = t
		s.cpuTypeIdx[cpu] = m.CPUs[cpu].TypeIndex
		s.cpuSib[cpu] = m.SiblingOf(cpu)
		s.cpuMin[cpu] = t.MinFreqMHz
		phys := m.CPUs[cpu].PhysCore
		idx, ok := physIndex[phys]
		if !ok {
			idx = len(physIndex)
			physIndex[phys] = idx
			s.physType = append(s.physType, t)
			s.idleCoresW += t.IdleWatts
		}
		s.physOf[cpu] = idx
	}
	s.nPhys = len(physIndex)
	s.slotProc = make([]*sched.Process, ncpu)
	s.slotActive = make([]bool, ncpu)
	s.coreAct = make([]float64, s.nPhys)
	s.coreFreq = make([]float64, s.nPhys)
	s.tgtFreq = make([]float64, len(m.Types))
	s.tgtValid = make([]bool, len(m.Types))
}

// SetCPUOnline hotplugs a CPU: offlining invalidates CPU-wide perf
// events opened on it and evicts its running task; onlining makes it
// schedulable again (dead perf descriptors stay dead).
func (s *Machine) SetCPUOnline(cpu int, online bool) {
	s.Kernel.SetCPUOnline(cpu, online)
}

// AddStepHook registers a hook called at the end of every Step and returns
// a function that unregisters it. Harnesses that attach to a machine for
// one run of many (the settle-between-runs protocol reuses a warm machine)
// must remove their hooks when done. Removal compacts the hook list, so
// attach/detach cycles do not grow it; the remove function is idempotent
// and safe to call from inside a hook dispatch.
func (s *Machine) AddStepHook(h StepHook) (remove func()) {
	e := &hookEntry{h: h}
	s.stepHooks = append(s.stepHooks, e)
	return func() { s.removeStepHook(e) }
}

func (s *Machine) removeStepHook(e *hookEntry) {
	if e.h == nil {
		return
	}
	e.h = nil
	if s.inHooks {
		s.hooksDirty = true // compact after the in-flight dispatch
		return
	}
	s.compactHooks()
}

func (s *Machine) compactHooks() {
	kept := s.stepHooks[:0]
	for _, e := range s.stepHooks {
		if e.h != nil {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(s.stepHooks); i++ {
		s.stepHooks[i] = nil
	}
	s.stepHooks = kept
	s.hooksDirty = false
}

// fireHooks dispatches the post-tick hooks in registration order. Hooks
// registered during dispatch run from the next tick on; hooks removed
// during dispatch are skipped if not yet reached.
func (s *Machine) fireHooks() {
	if len(s.stepHooks) == 0 {
		return
	}
	hooks := s.stepHooks
	s.inHooks = true
	for _, e := range hooks {
		if h := e.h; h != nil {
			h(s)
		}
	}
	s.inHooks = false
	if s.hooksDirty {
		s.compactHooks()
	}
}

// Now returns the simulated time in seconds.
func (s *Machine) Now() float64 { return s.now }

// Tick returns the simulation step in seconds.
func (s *Machine) Tick() float64 { return s.cfg.TickSec }

// Spawn schedules a task with the given affinity and returns its process.
func (s *Machine) Spawn(t workload.Task, affinity hw.CPUSet) *sched.Process {
	return s.Sched.Spawn(t, affinity)
}

// CurFreqMHz returns the frequency a CPU ran at during the last tick.
func (s *Machine) CurFreqMHz(cpu int) float64 { return s.freqMHz[cpu] }

// CurFreqKHz implements sysfs.Live.
func (s *Machine) CurFreqKHz(cpu int) int { return int(s.freqMHz[cpu] * 1000) }

// ZoneTempMilliC implements sysfs.Live.
func (s *Machine) ZoneTempMilliC() int { return s.Thermal.TempMilliC() }

// EnergyUJ implements sysfs.Live.
func (s *Machine) EnergyUJ() uint64 {
	return uint64(s.Power.EnergyJ(power.DomainPkg) * 1e6)
}

// ScheduleAt registers fn to run once at the end of the first tick whose
// boundary reaches at (a time already passed fires at the end of the next
// tick). The callback runs after all subsystem updates for the tick and
// before the StepHooks, with callbacks at equal times firing in
// registration order. It returns a cancel function (idempotent; a no-op
// once the callback has fired). This is the door through which harnesses
// and tasks register future phase changes and completions with the event
// core.
func (s *Machine) ScheduleAt(at float64, fn func(*Machine)) (cancel func()) {
	e := &event{kind: evOneShot, fn: fn, pos: -1}
	s.eq.schedule(e, at)
	return func() { s.eq.cancel(e) }
}

// HasPendingEvents reports whether any machine-level event is queued.
// The recurring subsystem deadlines (rebalance, DVFS) are always armed,
// so this is true for the whole life of a machine.
func (s *Machine) HasPendingEvents() bool { return s.eq.Len() > 0 }

// PeekNextEventTime returns the simulated time of the earliest queued
// event, or +Inf when the queue is empty. The next Step at or past this
// time processes the event; Steps strictly before it cannot observe any
// machine-initiated state change beyond the continuous power/thermal
// integration.
func (s *Machine) PeekNextEventTime() float64 {
	if e := s.eq.peek(); e != nil {
		return e.at
	}
	return math.Inf(1)
}

// ProcessNextEvent advances the simulation tick by tick until the event
// that was earliest in the queue has been processed (at least one tick is
// always taken), and returns the new simulated time. Together with
// HasPendingEvents and PeekNextEventTime it decomposes the run loop for
// external drivers that interleave several machines on a shared clock;
// hooks still fire at every intervening tick boundary.
func (s *Machine) ProcessNextEvent() float64 {
	target := s.PeekNextEventTime()
	s.Step()
	for s.now < target-timeEps {
		s.Step()
	}
	return s.now
}

// Step advances the simulation by one tick.
func (s *Machine) Step() { s.stepEvent() }

// stepEvent is the event-core tick: collect the events due in this tick,
// then run either the idle path (scheduler quiescent, skipping work the
// queue proves is not due) or the full busy path.
func (s *Machine) stepEvent() {
	if !s.spanValid || s.Sched.Gen() != s.schedGen {
		s.refreshSpan()
	}
	dt := s.cfg.TickSec
	due := s.dueScratch[:0]
	limit := s.now + dt + timeEps
	for s.eq.Len() > 0 && s.eq.peek().at <= limit {
		due = append(due, s.eq.pop())
	}
	s.dueScratch = due
	if s.spanIdle {
		s.idleTick(due, dt)
	} else {
		s.busyTick(due, dt)
	}
}

// refreshSpan recomputes the span mode after a scheduler mutation (or on
// the first event-core tick) and refreshes the advisory deadlines. On
// entry to an idle span it publishes the frequencies every legacy tick
// would recompute: idle CPUs sit at their minimum OPP for the whole span.
func (s *Machine) refreshSpan() {
	s.schedGen = s.Sched.Gen()
	s.spanValid = true
	idle := s.Sched.Quiescent()
	if idle {
		copy(s.freqMHz, s.cpuMin)
	}
	s.spanIdle = idle
	s.armKernelEvent()
	s.armPowerEvent()
	s.armThermalEvent()
}

// idleTick advances one tick with the scheduler quiescent. Only the
// continuous integrators run unconditionally; the scheduler and governor
// run exactly when their queued deadlines come due, which reproduces the
// legacy loop bit for bit because the skipped calls were no-ops (their
// own boundary comparisons, re-run on the due tick, gate all mutation).
func (s *Machine) idleTick(due []*event, dt float64) {
	now := s.now
	for _, e := range due {
		if e.kind == evSchedBalance {
			s.Sched.Tick(now)
			s.armBalanceEvent()
		}
	}
	s.Power.Step(s.idleCoresW, dt)
	s.Thermal.Step(s.Power.PkgPowerW(), dt)
	for _, e := range due {
		if e.kind == evDVFSDeadline {
			s.Governor.Update(now, s.Power.PkgPowerW(), s.Power.CapW(), s.Thermal.TempC())
			s.armDVFSEvent()
		}
	}
	s.now = now + dt
	s.Kernel.Advance(s.now)
	s.finishTick(due)
}

// busyTick is the full per-CPU tick, the alloc-free rewrite of the
// legacy loop: same subsystem call order, same floating-point operation
// sequence, with the per-tick maps and heap allocations replaced by the
// machine's persistent scratch.
func (s *Machine) busyTick(due []*event, dt float64) {
	now := s.now
	s.Sched.Tick(now)
	for _, e := range due {
		if e.kind == evSchedBalance {
			s.armBalanceEvent()
		}
	}

	// Determine per-CPU occupancy to pick frequencies and SMT factors.
	ncpu := len(s.slotProc)
	for cpu := 0; cpu < ncpu; cpu++ {
		p := s.Sched.RunningOn(cpu)
		s.slotProc[cpu] = p
		s.slotActive[cpu] = p != nil && p.Task.Ready()
	}
	for i := 0; i < s.nPhys; i++ {
		s.coreAct[i] = 0
		s.coreFreq[i] = 0
	}
	for i := range s.tgtValid {
		s.tgtValid[i] = false
	}

	kernelLive := s.Kernel.NumOpen() > 0
	for cpu := 0; cpu < ncpu; cpu++ {
		active := s.slotActive[cpu]
		var freq float64
		if !active {
			freq = s.cpuMin[cpu]
		} else {
			// The busy target depends only on the core type and the
			// governor state, which is constant within a tick: memoize
			// per type so each quantization runs once per tick.
			ti := s.cpuTypeIdx[cpu]
			if !s.tgtValid[ti] {
				s.tgtFreq[ti] = s.Governor.TargetMHz(s.cpuType[cpu])
				s.tgtValid[ti] = true
			}
			freq = s.tgtFreq[ti]
		}
		s.freqMHz[cpu] = freq
		phys := s.physOf[cpu]
		if freq > s.coreFreq[phys] {
			s.coreFreq[phys] = freq
		}
		if !active {
			continue
		}
		throughput := 1.0
		if sib := s.cpuSib[cpu]; sib >= 0 && s.slotActive[sib] {
			throughput = s.cpuType[cpu].SMTThroughput
		}
		s.execCtx = workload.ExecContext{
			CPU:        cpu,
			Type:       s.cpuType[cpu],
			FreqMHz:    freq,
			Throughput: throughput,
		}
		task := s.slotProc[cpu].Task
		var activity float64
		if sr, ok := task.(workload.StatsRunner); ok {
			activity = sr.RunStats(&s.execCtx, dt, &s.statsScratch)
		} else {
			s.statsScratch, activity = task.Run(&s.execCtx, dt)
		}
		if kernelLive {
			s.Kernel.TaskExec(s.slotProc[cpu].PID, cpu, dt, s.statsScratch)
		}
		if activity > s.coreAct[phys] {
			s.coreAct[phys] = activity
		}
	}

	// Package power from per-core activity, summed in the legacy
	// first-CPU-per-physical-core order.
	var coresW float64
	for i := 0; i < s.nPhys; i++ {
		t := s.physType[i]
		w := t.IdleWatts
		if act := s.coreAct[i]; act > 0 {
			x := s.coreFreq[i] / t.MaxFreqMHz
			w += t.DynWattsAtMax * act * x * x * x
		}
		coresW += w
	}

	s.Power.Step(coresW, dt)
	s.Thermal.Step(s.Power.PkgPowerW(), dt)
	s.Governor.Update(now, s.Power.PkgPowerW(), s.Power.CapW(), s.Thermal.TempC())
	for _, e := range due {
		if e.kind == evDVFSDeadline {
			s.armDVFSEvent()
		}
	}
	s.now = now + dt
	s.Kernel.Advance(s.now)
	s.finishTick(due)
}

// finishTick handles the end-of-tick event roles shared by both paths:
// re-arming the advisory deadlines that came due, firing one-shot
// callbacks, then dispatching the StepHooks.
func (s *Machine) finishTick(due []*event) {
	for _, e := range due {
		switch e.kind {
		case evKernelDeadline:
			s.armKernelEvent()
		case evPowerCap:
			s.armPowerEvent()
		case evThermalSettle:
			s.armThermalEvent()
		case evOneShot:
			if e.fn != nil {
				e.fn(s)
			}
		}
	}
	s.fireHooks()
}

// clampFuture keeps a re-armed deadline at least one tick ahead so a
// conservatively early event (fired before its subsystem's own boundary
// comparison passed) retries next tick instead of spinning in this one.
func (s *Machine) clampFuture(at float64) float64 {
	if min := s.now + s.cfg.TickSec; at < min {
		return min
	}
	return at
}

func (s *Machine) armBalanceEvent() {
	s.eq.schedule(&s.evBalance, s.clampFuture(s.Sched.NextBalanceSec()))
}

func (s *Machine) armDVFSEvent() {
	s.eq.schedule(&s.evDVFS, s.clampFuture(s.Governor.NextUpdateSec()))
}

func (s *Machine) armKernelEvent() {
	at := s.Kernel.NextDeadline(s.now)
	if math.IsInf(at, 1) {
		s.eq.cancel(&s.evKernel)
		return
	}
	s.eq.schedule(&s.evKernel, s.clampFuture(at))
}

func (s *Machine) armPowerEvent() {
	eta := s.Power.NextCapChangeSec()
	if math.IsInf(eta, 1) {
		s.eq.cancel(&s.evPowerCap)
		return
	}
	s.eq.schedule(&s.evPowerCap, s.clampFuture(s.now+eta))
}

func (s *Machine) armThermalEvent() {
	p := s.Power.PkgPowerW()
	ss := s.Thermal.SteadyStateC(p)
	t := s.Thermal.TempC()
	var target float64
	switch {
	case t > ss+thermalSettleBandC:
		target = ss + thermalSettleBandC
	case t < ss-thermalSettleBandC:
		target = ss - thermalSettleBandC
	default:
		s.eq.cancel(&s.evThermal)
		return
	}
	eta := s.Thermal.TimeToReachSec(target, p)
	if math.IsInf(eta, 1) {
		s.eq.cancel(&s.evThermal)
		return
	}
	s.eq.schedule(&s.evThermal, s.clampFuture(s.now+eta))
}

// RunFor advances the simulation by the given number of seconds.
func (s *Machine) RunFor(seconds float64) {
	end := s.now + seconds
	for s.now < end-timeEps {
		s.Step()
	}
}

// RunUntil steps the simulation until cond returns true or maxSeconds of
// simulated time elapse; it reports whether the condition was met.
func (s *Machine) RunUntil(cond func() bool, maxSeconds float64) bool {
	deadline := s.now + maxSeconds
	for s.now < deadline {
		if cond() {
			return true
		}
		s.Step()
	}
	return cond()
}

// Settle idles the machine (no new work) until the thermal zone cools to
// targetC or reaches its idle floor, mirroring the paper's protocol of
// waiting for the package to settle at 35 degC between runs. It returns the
// simulated seconds spent waiting.
func (s *Machine) Settle(targetC float64) float64 {
	start := s.now
	floorReached := func() bool {
		if s.Thermal.TempC() <= targetC {
			return true
		}
		// Idle steady state: give up once cooling has effectively stopped.
		return s.Thermal.TempC() <= s.Thermal.SteadyStateC(s.Power.PkgPowerW())+0.05
	}
	s.RunUntil(floorReached, 3600)
	return s.now - start
}
