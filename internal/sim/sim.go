// Package sim is the discrete-time machine simulator: it wires the hardware
// description, the scheduler, the workloads, the DVFS governor, the power
// and thermal models, the perf_event kernel and the synthetic sysfs tree
// into a single stepped system.
//
// Every tick (1 ms by default) the simulator:
//
//  1. lets the scheduler update task placement,
//  2. runs each placed task on its CPU at the governor's frequency,
//  3. feeds the produced event quantities to the perf_event kernel,
//  4. converts per-core activity into package power, integrates RAPL
//     energy and the thermal zone, and
//  5. gives the governor its power/thermal feedback.
//
// Everything is deterministic: all randomness flows from seeds in the
// configs, and no wall-clock time is consulted anywhere.
package sim

import (
	"hetpapi/internal/dvfs"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/power"
	"hetpapi/internal/sched"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/sysfs"
	"hetpapi/internal/thermal"
	"hetpapi/internal/workload"
)

// Config assembles the subsystem configurations.
type Config struct {
	// TickSec is the simulation step (default 1 ms).
	TickSec float64
	// Sched configures the scheduler.
	Sched sched.Config
	// DVFS configures the frequency governor.
	DVFS dvfs.Config
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		TickSec: 0.001,
		Sched:   sched.DefaultConfig(),
		DVFS:    dvfs.DefaultConfig(),
	}
}

// Machine is a running simulated system.
type Machine struct {
	// HW is the hardware description.
	HW *hw.Machine
	// Sched is the scheduler.
	Sched *sched.Scheduler
	// Kernel is the perf_event subsystem.
	Kernel *perfevent.Kernel
	// Governor is the DVFS governor.
	Governor *dvfs.Governor
	// Power is the package power / RAPL model.
	Power *power.Model
	// Thermal is the package thermal zone.
	Thermal *thermal.Model
	// FS is the live-backed synthetic sysfs/procfs tree.
	FS *sysfs.FS

	cfg       Config
	now       float64
	freqMHz   []float64 // per logical CPU, as of the last tick
	stepHooks []StepHook

	tracer *spantrace.Recorder
	trk    *traceState
}

// StepHook observes the machine after each completed tick. Hooks run in
// registration order with the machine in a consistent post-tick state
// (Now() already advanced); they are how external harnesses check
// invariants, inject faults and schedule work without owning the step
// loop.
type StepHook func(*Machine)

// New boots a machine.
func New(m *hw.Machine, cfg Config) *Machine {
	if cfg.TickSec <= 0 {
		cfg.TickSec = 0.001
	}
	s := &Machine{
		HW:       m,
		Sched:    sched.New(m, cfg.Sched),
		Kernel:   perfevent.NewKernel(m),
		Governor: dvfs.New(m, cfg.DVFS),
		Power:    power.New(m.Power),
		Thermal:  thermal.New(m.Thermal),
		cfg:      cfg,
		freqMHz:  make([]float64, m.NumCPUs()),
	}
	for i := range s.freqMHz {
		s.freqMHz[i] = m.TypeOf(i).MinFreqMHz
	}
	s.Kernel.AttachPower(s.Power)
	s.Sched.AddHook(s.Kernel)
	// Hotplug flows kernel-first so plan-driven faults reach the
	// scheduler too: whichever door sets a CPU's state, the kernel's
	// callback keeps the scheduler's view in sync.
	s.Kernel.OnHotplug = func(cpu int, online bool) {
		s.Sched.SetOnline(cpu, online, s.now)
	}
	// Overflow-time attribution context for sampling events: the workload
	// phase executing on the CPU (when the task distinguishes phases) and
	// the DVFS frequency the tick is running at. Step sets freqMHz[cpu]
	// before calling TaskExec, so the value is current at overflow time.
	s.Kernel.OnSampleContext = func(pid, cpu int) (string, float64) {
		phase := ""
		if p := s.Sched.RunningOn(cpu); p != nil && p.PID == pid {
			if ph, ok := p.Task.(workload.Phased); ok {
				phase = ph.PhaseName()
			}
		}
		return phase, s.freqMHz[cpu]
	}
	s.FS = sysfs.New(m, s)
	return s
}

// SetCPUOnline hotplugs a CPU: offlining invalidates CPU-wide perf
// events opened on it and evicts its running task; onlining makes it
// schedulable again (dead perf descriptors stay dead).
func (s *Machine) SetCPUOnline(cpu int, online bool) {
	s.Kernel.SetCPUOnline(cpu, online)
}

// AddStepHook registers a hook called at the end of every Step and returns
// a function that unregisters it. Harnesses that attach to a machine for
// one run of many (the settle-between-runs protocol reuses a warm machine)
// must remove their hooks when done.
func (s *Machine) AddStepHook(h StepHook) (remove func()) {
	s.stepHooks = append(s.stepHooks, h)
	idx := len(s.stepHooks) - 1
	return func() { s.stepHooks[idx] = nil }
}

// Now returns the simulated time in seconds.
func (s *Machine) Now() float64 { return s.now }

// Tick returns the simulation step in seconds.
func (s *Machine) Tick() float64 { return s.cfg.TickSec }

// Spawn schedules a task with the given affinity and returns its process.
func (s *Machine) Spawn(t workload.Task, affinity hw.CPUSet) *sched.Process {
	return s.Sched.Spawn(t, affinity)
}

// CurFreqMHz returns the frequency a CPU ran at during the last tick.
func (s *Machine) CurFreqMHz(cpu int) float64 { return s.freqMHz[cpu] }

// CurFreqKHz implements sysfs.Live.
func (s *Machine) CurFreqKHz(cpu int) int { return int(s.freqMHz[cpu] * 1000) }

// ZoneTempMilliC implements sysfs.Live.
func (s *Machine) ZoneTempMilliC() int { return s.Thermal.TempMilliC() }

// EnergyUJ implements sysfs.Live.
func (s *Machine) EnergyUJ() uint64 {
	return uint64(s.Power.EnergyJ(power.DomainPkg) * 1e6)
}

// Step advances the simulation by one tick.
func (s *Machine) Step() {
	dt := s.cfg.TickSec
	s.Sched.Tick(s.now)

	// Determine per-CPU occupancy to pick frequencies and SMT factors.
	type slot struct {
		proc   *sched.Process
		active bool
	}
	slots := make([]slot, s.HW.NumCPUs())
	for cpu := range slots {
		p := s.Sched.RunningOn(cpu)
		slots[cpu] = slot{proc: p, active: p != nil && p.Task.Ready()}
	}

	// Per-physical-core activity for the power model.
	coreActivity := map[int]float64{}
	coreFreq := map[int]float64{}

	for cpu := range slots {
		freq := s.Governor.FreqMHz(cpu, slots[cpu].active)
		s.freqMHz[cpu] = freq
		phys := s.HW.CPUs[cpu].PhysCore
		if f, ok := coreFreq[phys]; !ok || freq > f {
			coreFreq[phys] = freq
		}
		if !slots[cpu].active {
			continue
		}
		throughput := 1.0
		if sib := s.HW.SiblingOf(cpu); sib >= 0 && slots[sib].active {
			throughput = s.HW.TypeOf(cpu).SMTThroughput
		}
		ctx := &workload.ExecContext{
			CPU:        cpu,
			Type:       s.HW.TypeOf(cpu),
			FreqMHz:    freq,
			Throughput: throughput,
		}
		stats, activity := slots[cpu].proc.Task.Run(ctx, dt)
		s.Kernel.TaskExec(slots[cpu].proc.PID, cpu, dt, stats)
		if activity > coreActivity[phys] {
			coreActivity[phys] = activity
		}
	}

	// Package power from per-core activity.
	var coresW float64
	seen := map[int]bool{}
	for _, c := range s.HW.CPUs {
		if seen[c.PhysCore] {
			continue
		}
		seen[c.PhysCore] = true
		t := s.HW.TypeOf(c.ID)
		w := t.IdleWatts
		if act := coreActivity[c.PhysCore]; act > 0 {
			x := coreFreq[c.PhysCore] / t.MaxFreqMHz
			w += t.DynWattsAtMax * act * x * x * x
		}
		coresW += w
	}

	s.Power.Step(coresW, dt)
	s.Thermal.Step(s.Power.PkgPowerW(), dt)
	s.Governor.Update(s.now, s.Power.PkgPowerW(), s.Power.CapW(), s.Thermal.TempC())
	s.now += dt
	s.Kernel.Advance(s.now)
	for _, h := range s.stepHooks {
		if h != nil {
			h(s)
		}
	}
}

// RunFor advances the simulation by the given number of seconds.
func (s *Machine) RunFor(seconds float64) {
	end := s.now + seconds
	for s.now < end-1e-12 {
		s.Step()
	}
}

// RunUntil steps the simulation until cond returns true or maxSeconds of
// simulated time elapse; it reports whether the condition was met.
func (s *Machine) RunUntil(cond func() bool, maxSeconds float64) bool {
	deadline := s.now + maxSeconds
	for s.now < deadline {
		if cond() {
			return true
		}
		s.Step()
	}
	return cond()
}

// Settle idles the machine (no new work) until the thermal zone cools to
// targetC or reaches its idle floor, mirroring the paper's protocol of
// waiting for the package to settle at 35 degC between runs. It returns the
// simulated seconds spent waiting.
func (s *Machine) Settle(targetC float64) float64 {
	start := s.now
	floorReached := func() bool {
		if s.Thermal.TempC() <= targetC {
			return true
		}
		// Idle steady state: give up once cooling has effectively stopped.
		return s.Thermal.TempC() <= s.Thermal.SteadyStateC(s.Power.PkgPowerW())+0.05
	}
	s.RunUntil(floorReached, 3600)
	return s.now - start
}
