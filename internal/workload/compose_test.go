package workload

import (
	"math"
	"testing"

	"hetpapi/internal/hw"
)

func TestSequenceRunsPhasesInOrder(t *testing.T) {
	m := hw.RaptorLake()
	ctx := pCtx(m)
	a := NewInstructionLoop("a", 1e6, 10)
	b := NewSpin("b", 0.01)
	c := NewInstructionLoop("c", 1e6, 10)
	seq := NewSequence("app", a, b, c)

	if seq.PhaseIndex() != 0 || seq.Phase() != Task(a) {
		t.Fatal("initial phase wrong")
	}
	var total float64
	ticks := 0
	for !seq.Done() && ticks < 10000 {
		st, act := seq.Run(ctx, 0.001)
		total += st.Instructions
		if act < 0 || act > 1 {
			t.Fatalf("activity %g", act)
		}
		ticks++
	}
	if !seq.Done() {
		t.Fatal("sequence never finished")
	}
	if !a.Done() || !b.Done() || !c.Done() {
		t.Fatal("phases incomplete")
	}
	if seq.Phase() != nil {
		t.Fatal("done sequence must have nil phase")
	}
	// The two loops contribute exactly 2e7; the spin adds more.
	if total < 2e7 {
		t.Fatalf("total instructions %g below the loops' 2e7", total)
	}
	// Running a done sequence is inert.
	if st, _ := seq.Run(ctx, 0.001); st.Instructions != 0 {
		t.Fatal("done sequence retired instructions")
	}
}

func TestSequencePhaseIndexAdvances(t *testing.T) {
	m := hw.RaptorLake()
	ctx := pCtx(m)
	seq := NewSequence("app",
		NewSpin("p0", 0.005),
		NewSpin("p1", 0.005))
	seen := map[int]bool{}
	for i := 0; i < 100 && !seq.Done(); i++ {
		seen[seq.PhaseIndex()] = true
		seq.Run(ctx, 0.001)
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("phases observed: %v", seen)
	}
}

func TestBranchyProfile(t *testing.T) {
	m := hw.RaptorLake()
	b := NewBranchy("br", 1e8, 7)
	ctx := pCtx(m)
	var instr, branches, misses, cycles float64
	for i := 0; i < 100000 && !b.Done(); i++ {
		st, _ := b.Run(ctx, 0.001)
		instr += st.Instructions
		branches += st.Branches
		misses += st.BranchMisses
		cycles += st.Cycles
	}
	if !b.Done() {
		t.Fatal("branchy never finished")
	}
	if math.Abs(instr-1e8) > 1 {
		t.Fatalf("retired %g, want 1e8", instr)
	}
	if bf := branches / instr; bf < 0.3 || bf > 0.35 {
		t.Errorf("branch fraction = %.3f", bf)
	}
	if mr := misses / branches; mr < 0.07 || mr > 0.11 {
		t.Errorf("misprediction rate = %.3f, want ~0.09", mr)
	}
	// Effective IPC well below the core's base.
	if ipc := instr / cycles; ipc > ctx.Type.BaseIPC*0.6 {
		t.Errorf("branchy IPC %.2f too close to base %.2f", ipc, ctx.Type.BaseIPC)
	}
	var _ Task = (*Branchy)(nil)
	var _ Task = (*Sequence)(nil)
	var _ Task = (*BurstyLoop)(nil)
}
