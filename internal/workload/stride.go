package workload

import (
	"fmt"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
)

// Stride is a pointer-walk over a fixed-size array at a fixed byte stride:
// the classic cache-validation microbenchmark (Röhl et al.), chosen because
// its event counts have a closed form. Unlike Stream it carries no RNG —
// every quantity it emits is an exact function of the core type, the cache
// geometry, and the instruction budget, so the validation suite can compute
// expected LLC reference/miss counts analytically and score the measured
// counters against them.
const (
	// StrideLineBytes is the cache line size assumed by the miss model.
	StrideLineBytes = 64
	// StrideLoadFrac is the load fraction of the stride kernel's
	// instruction stream (one load per address-increment/compare pair).
	StrideLoadFrac = 0.5
	// DefaultLLCMissPenaltyCycles is used when a core type does not
	// declare hw.CoreType.LLCMissPenaltyCycles.
	DefaultLLCMissPenaltyCycles = 200.0
)

// StrideMissRates are the per-level conditional miss rates of a strided
// sweep: L1 is the fraction of L1D references that miss, L2 the fraction
// of those that also miss L2, LLC the fraction of those that miss the LLC.
type StrideMissRates struct {
	L1  float64
	L2  float64
	LLC float64
}

// Chain returns the fraction of L1D references that miss all the way to
// DRAM (the product of the conditional rates).
func (r StrideMissRates) Chain() float64 { return r.L1 * r.L2 * r.LLC }

// StrideRates derives the miss rates of sweeping footprintKB of memory at
// strideBytes on core type t with an llcKB last-level cache. The model is
// the standard geometry argument: a sweep whose footprint fits in a level
// never misses there (after warm-up, which the closed form ignores); a
// sweep that exceeds the level has zero temporal reuse, so every distinct
// line touched misses — a fraction min(1, stride/line) of accesses when
// the stride is smaller than a line, every access otherwise.
func StrideRates(t *hw.CoreType, llcKB, strideBytes, footprintKB int) StrideMissRates {
	if strideBytes < 1 {
		strideBytes = 1
	}
	newLine := float64(strideBytes) / StrideLineBytes
	if newLine > 1 {
		newLine = 1
	}
	missAt := func(levelKB float64) float64 {
		if levelKB <= 0 || float64(footprintKB) <= levelKB {
			return 0
		}
		return 1
	}
	// The first level sees the raw access stream, so line-granularity
	// spatial reuse applies there; deeper levels only see lines that
	// already missed above, which are distinct lines by construction.
	return StrideMissRates{
		L1:  newLine * missAt(float64(t.L1DKB)),
		L2:  missAt(float64(t.L2KB)),
		LLC: missAt(float64(llcKB)),
	}
}

// StrideCPI is the cycles-per-instruction of the stride kernel on core
// type t: the pipeline term plus the fully exposed DRAM penalty of every
// load that misses the whole hierarchy (a dependent pointer walk has no
// memory-level parallelism to hide it).
func StrideCPI(t *hw.CoreType, r StrideMissRates) float64 {
	pen := t.LLCMissPenaltyCycles
	if pen <= 0 {
		pen = DefaultLLCMissPenaltyCycles
	}
	return 1/t.BaseIPC + StrideLoadFrac*r.Chain()*pen
}

// Stride retires a fixed number of instructions walking footprintKB of
// memory at strideBytes. Deterministic: no RNG, no history dependence —
// the emitted stats are an exact function of (core type, geometry, dt).
type Stride struct {
	name        string
	strideBytes int
	footprintKB int
	llcKB       int
	instrLeft   float64
	total       float64
}

// NewStride returns a stride task retiring the given number of
// instructions. llcKB is the last-level cache size of the machine the task
// will run on (a machine property, not a core-type property, so the caller
// supplies it).
func NewStride(name string, instructions float64, strideBytes, footprintKB, llcKB int) *Stride {
	return &Stride{
		name:        name,
		strideBytes: strideBytes,
		footprintKB: footprintKB,
		llcKB:       llcKB,
		instrLeft:   instructions,
		total:       instructions,
	}
}

// Name implements Task.
func (s *Stride) Name() string { return s.name }

// Ready implements Task.
func (s *Stride) Ready() bool { return !s.Done() }

// Done implements Task.
func (s *Stride) Done() bool { return s.instrLeft <= 0 }

// TotalInstructions returns the instruction budget the task was built with.
func (s *Stride) TotalInstructions() float64 { return s.total }

// Rates returns the miss rates the task exhibits on core type t.
func (s *Stride) Rates(t *hw.CoreType) StrideMissRates {
	return StrideRates(t, s.llcKB, s.strideBytes, s.footprintKB)
}

// Run implements Task.
func (s *Stride) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	if s.Done() || dt <= 0 || ctx.FreqMHz <= 0 {
		return events.Stats{}, 0
	}
	r := s.Rates(ctx.Type)
	cpi := StrideCPI(ctx.Type, r)
	cycles := ctx.CyclesIn(dt) * ctx.Throughput
	instr := cycles / cpi
	if instr > s.instrLeft {
		instr = s.instrLeft
		used := instr * cpi
		dt *= used / cycles
		cycles = used
	}
	s.instrLeft -= instr
	// busyFrac is the fraction of cycles the pipeline retires rather than
	// stalls on DRAM; activity scales with it so a DRAM-bound sweep draws
	// less dynamic power than a cache-resident one.
	busyFrac := (1 / ctx.Type.BaseIPC) / cpi
	p := Profile{
		BranchFrac:     0.0625, // one backedge per 16 unrolled iterations
		BranchMissRate: 0,      // trip count is static: perfectly predicted
		LoadFrac:       StrideLoadFrac,
		StoreFrac:      0,
		L1MissRate:     r.L1,
		L2MissRate:     r.L2,
		LLCMissRate:    r.LLC,
		StallFrac:      1 - busyFrac,
	}
	return Synth(ctx.Type, instr, cycles, dt, p), 0.25 + 0.5*busyFrac
}

// String describes the geometry for test output.
func (s *Stride) String() string {
	return fmt.Sprintf("stride{%s stride=%dB footprint=%dKB llc=%dKB}",
		s.name, s.strideBytes, s.footprintKB, s.llcKB)
}
