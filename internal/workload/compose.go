package workload

import (
	"math/rand"

	"hetpapi/internal/events"
)

// Sequence chains tasks into phases executed back to back by one process —
// the shape of a real application (initialize, compute, write results)
// whose phases a user calipers separately with PAPI regions.
type Sequence struct {
	name  string
	tasks []Task
	idx   int
}

// NewSequence returns a task running the given tasks in order.
func NewSequence(name string, tasks ...Task) *Sequence {
	return &Sequence{name: name, tasks: tasks}
}

// Name implements Task.
func (s *Sequence) Name() string { return s.name }

// Ready implements Task.
func (s *Sequence) Ready() bool { return !s.Done() }

// Done implements Task.
func (s *Sequence) Done() bool { return s.idx >= len(s.tasks) }

// PhaseIndex returns the index of the phase currently executing (or
// len(tasks) when done).
func (s *Sequence) PhaseIndex() int { return s.idx }

// Phase returns the currently executing task, or nil when done.
func (s *Sequence) Phase() Task {
	if s.Done() {
		return nil
	}
	return s.tasks[s.idx]
}

// PhaseName implements Phased: the name of the currently executing phase
// task ("" once the sequence has finished).
func (s *Sequence) PhaseName() string {
	if cur := s.Phase(); cur != nil {
		return cur.Name()
	}
	return ""
}

// Run implements Task, delegating to the current phase and advancing when
// it completes. A slice that straddles a phase boundary is split.
func (s *Sequence) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	var total events.Stats
	var activity float64
	remaining := dt
	for remaining > 1e-12 && !s.Done() {
		cur := s.tasks[s.idx]
		if cur.Done() {
			s.idx++
			continue
		}
		st, act := cur.Run(ctx, remaining)
		total.Add(st)
		// Weight activity by the share of the slice each phase used; the
		// common case is one phase per slice.
		if activity == 0 {
			activity = act
		} else {
			activity = (activity + act) / 2
		}
		if cur.Done() {
			s.idx++
			// Approximate: the rest of the slice goes to the next phase on
			// the next iteration; we cannot know exactly how much time the
			// finished phase consumed, so grant the remainder fully.
		}
		// Tasks consume the whole slice unless they finish; either way we
		// are done with this dt.
		break
	}
	return total, activity
}

// Branchy is a branch-heavy, poorly predicted workload (pointer chasing,
// data-dependent conditionals) — the profile studied by the
// branch-misprediction related work the paper cites (Whitehouse et al.).
type Branchy struct {
	name      string
	instrLeft float64
	rng       *rand.Rand
}

// NewBranchy returns a branchy task retiring the given instruction count.
func NewBranchy(name string, instructions float64, seed int64) *Branchy {
	return &Branchy{name: name, instrLeft: instructions, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Task.
func (b *Branchy) Name() string { return b.name }

// Ready implements Task.
func (b *Branchy) Ready() bool { return !b.Done() }

// Done implements Task.
func (b *Branchy) Done() bool { return b.instrLeft <= 0 }

// Run implements Task.
func (b *Branchy) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	if b.Done() || dt <= 0 || ctx.FreqMHz <= 0 {
		return events.Stats{}, 0
	}
	// Mispredictions gut the effective IPC, and the little in-order cores
	// suffer relatively less (they were not speculating as deep anyway).
	ipcFactor := 0.45
	if ctx.Type.Class == 1 { // hw.Efficiency
		ipcFactor = 0.55
	}
	cycles := ctx.CyclesIn(dt) * ctx.Throughput
	instr := cycles * ctx.Type.BaseIPC * ipcFactor
	if instr > b.instrLeft {
		cycles *= b.instrLeft / instr
		instr = b.instrLeft
	}
	b.instrLeft -= instr
	p := Profile{
		BranchFrac:     0.32,
		BranchMissRate: 0.09 * (0.95 + 0.1*b.rng.Float64()),
		LoadFrac:       0.30,
		StoreFrac:      0.05,
		L1MissRate:     0.06,
		L2MissRate:     0.30,
		LLCMissRate:    0.35,
		StallFrac:      0.45,
	}
	return Synth(ctx.Type, instr, cycles, dt, p), 0.5
}
