package workload

import (
	"math"
	"testing"

	"hetpapi/internal/hw"
)

func pCtx(m *hw.Machine) *ExecContext {
	t := m.TypeByName("P-core")
	return &ExecContext{CPU: 0, Type: t, FreqMHz: t.MaxFreqMHz, Throughput: 1}
}

func eCtx(m *hw.Machine) *ExecContext {
	t := m.TypeByName("E-core")
	return &ExecContext{CPU: 16, Type: t, FreqMHz: t.MaxFreqMHz, Throughput: 1}
}

func TestCyclesIn(t *testing.T) {
	m := hw.RaptorLake()
	ctx := pCtx(m)
	if got := ctx.CyclesIn(0.001); math.Abs(got-5.1e6) > 1 {
		t.Fatalf("CyclesIn(1ms) = %g, want 5.1e6", got)
	}
}

func TestSynthCacheChain(t *testing.T) {
	m := hw.RaptorLake()
	p := Profile{
		LoadFrac: 0.4, StoreFrac: 0.1,
		L1MissRate: 0.1, L2MissRate: 0.5, LLCMissRate: 0.5,
		BranchFrac: 0.2, BranchMissRate: 0.05,
	}
	st := Synth(m.TypeByName("P-core"), 1000, 500, 0.001, p)
	if st.L1DRefs != 500 {
		t.Errorf("L1DRefs = %g, want 500", st.L1DRefs)
	}
	if st.L1DMisses != 50 || st.L2Refs != 50 {
		t.Errorf("L1 misses must feed L2: %g %g", st.L1DMisses, st.L2Refs)
	}
	if st.L2Misses != 25 || st.LLCRefs != 25 {
		t.Errorf("L2 misses must feed LLC: %g %g", st.L2Misses, st.LLCRefs)
	}
	if st.LLCMisses != 12.5 {
		t.Errorf("LLCMisses = %g", st.LLCMisses)
	}
	if st.Branches != 200 || st.BranchMisses != 10 {
		t.Errorf("branches %g misses %g", st.Branches, st.BranchMisses)
	}
	if st.Slots != 500*6 {
		t.Errorf("Slots = %g, want cycles*width", st.Slots)
	}
	// Cache levels are monotone: refs decrease down the hierarchy.
	if !(st.L1DRefs >= st.L2Refs && st.L2Refs >= st.LLCRefs && st.LLCRefs >= st.LLCMisses) {
		t.Error("cache hierarchy must be monotone")
	}
}

func TestInstructionLoopExactCount(t *testing.T) {
	m := hw.RaptorLake()
	loop := NewInstructionLoop("t", 1e6, 100)
	ctx := pCtx(m)
	var total float64
	for i := 0; i < 100000 && !loop.Done(); i++ {
		st, _ := loop.Run(ctx, 0.001)
		total += st.Instructions
	}
	if !loop.Done() {
		t.Fatal("loop never finished")
	}
	if math.Abs(total-100e6) > 1 {
		t.Fatalf("retired %g instructions, want exactly 100e6", total)
	}
	if loop.RepsDone() != 100 {
		t.Fatalf("RepsDone = %d", loop.RepsDone())
	}
	if math.Abs(loop.TotalInstructions()-100e6) > 1 {
		t.Fatalf("TotalInstructions = %g", loop.TotalInstructions())
	}
	// Running a finished loop is a no-op.
	st, act := loop.Run(ctx, 0.001)
	if st.Instructions != 0 || act != 0 {
		t.Error("finished loop must not retire instructions")
	}
}

func TestInstructionLoopFasterOnPCore(t *testing.T) {
	m := hw.RaptorLake()
	run := func(ctx *ExecContext) int {
		loop := NewInstructionLoop("t", 1e6, 100)
		ticks := 0
		for !loop.Done() {
			loop.Run(ctx, 0.001)
			ticks++
			if ticks > 1e6 {
				t.Fatal("runaway")
			}
		}
		return ticks
	}
	pt, et := run(pCtx(m)), run(eCtx(m))
	if pt >= et {
		t.Fatalf("P-core took %d ticks, E-core %d; P must be faster", pt, et)
	}
}

func TestSpinRunsForDuration(t *testing.T) {
	m := hw.RaptorLake()
	s := NewSpin("spin", 0.05)
	ctx := pCtx(m)
	ticks := 0
	for !s.Done() {
		st, act := s.Run(ctx, 0.001)
		if st.Instructions <= 0 {
			t.Fatal("spin must retire instructions")
		}
		if act != ctx.Type.SpinActivity {
			t.Fatalf("spin activity = %g, want %g", act, ctx.Type.SpinActivity)
		}
		if st.Flops != 0 {
			t.Fatal("spin must not retire flops")
		}
		ticks++
		if ticks > 1000 {
			t.Fatal("runaway spin")
		}
	}
	if ticks != 50 {
		t.Fatalf("spin lasted %d ticks, want 50", ticks)
	}
}

func TestStreamMissRate(t *testing.T) {
	m := hw.RaptorLake()
	s := NewStream("stream", 1e8, 0.9, 42)
	ctx := pCtx(m)
	var llc, miss float64
	for i := 0; i < 100000 && !s.Done(); i++ {
		st, _ := s.Run(ctx, 0.001)
		llc += st.LLCRefs
		miss += st.LLCMisses
	}
	if !s.Done() {
		t.Fatal("stream never finished")
	}
	rate := miss / llc
	if rate < 0.8 || rate > 1.0 {
		t.Fatalf("LLC miss rate = %g, want ~0.9", rate)
	}
}

func TestTaskInterfaceCompliance(t *testing.T) {
	var _ Task = (*InstructionLoop)(nil)
	var _ Task = (*Spin)(nil)
	var _ Task = (*Stream)(nil)
	var _ Task = (*HPLThread)(nil)
}

func TestZeroDtSafe(t *testing.T) {
	m := hw.RaptorLake()
	ctx := pCtx(m)
	loop := NewInstructionLoop("t", 1e6, 1)
	if st, _ := loop.Run(ctx, 0); st.Instructions != 0 {
		t.Error("zero dt must retire nothing")
	}
	h, err := NewHPL(HPLConfig{N: 960, NB: 192, Threads: 2, Strategy: OpenBLASx86()})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := h.Threads()[0].Run(ctx, 0); st.Instructions != 0 {
		t.Error("zero dt must retire nothing")
	}
}

func TestBurstyLoopExactCountAndPhases(t *testing.T) {
	m := hw.RaptorLake()
	ctx := pCtx(m)
	loop := NewBurstyLoop("b", 1e6, 50, 0.004, 0.2)
	var fastInstr, slowInstr float64
	ticks := 0
	for !loop.Done() && ticks < 1_000_000 {
		fast := loop.InFastPhase()
		st, act := loop.Run(ctx, 0.001)
		if fast {
			fastInstr += st.Instructions
		} else {
			slowInstr += st.Instructions
		}
		if act <= 0 || act > 1 {
			t.Fatalf("activity %g out of range", act)
		}
		ticks++
	}
	if !loop.Done() {
		t.Fatal("bursty loop never finished")
	}
	if got := loop.TotalInstructions(); math.Abs(got-50e6) > 1 {
		t.Fatalf("retired %g, want exactly 50e6", got)
	}
	if fastInstr+slowInstr != loop.TotalInstructions() {
		t.Fatal("phase accounting does not cover the total")
	}
	if fastInstr <= 3*slowInstr {
		t.Errorf("fast phase (%g) should dominate slow (%g) at slowFrac=0.2", fastInstr, slowInstr)
	}
	// Defaults kick in for bad parameters.
	l2 := NewBurstyLoop("b", 1e3, 1, -1, 5)
	if l2.periodSec <= 0 || l2.slowFrac <= 0 || l2.slowFrac > 1 {
		t.Fatal("bad parameters not defaulted")
	}
	// Finished loop is inert.
	if st, act := loop.Run(ctx, 0.001); st.Instructions != 0 || act != 0 {
		t.Fatal("finished bursty loop must be inert")
	}
}
