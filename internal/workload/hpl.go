package workload

import (
	"fmt"
	"math/rand"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
)

// Strategy describes how an HPL build divides work across threads on a
// hybrid machine. The two builds the paper compares differ exactly here:
// OpenBLAS HPL splits each iteration's work equally across threads and
// meets at a barrier, so the slow cores straggle and the fast cores
// spin-wait; the vendor-optimized (Intel MKL) build balances work
// dynamically against each core's actual throughput and places the
// streaming (LLC-hostile) updates where they hurt least.
type Strategy struct {
	// Name labels the build ("OpenBLAS HPL", "Intel HPL").
	Name string
	// Dynamic selects work-stealing distribution; false means a static
	// equal split with a barrier per panel iteration.
	Dynamic bool
	// EffMult scales the core type's tuned DGEMM efficiency per core
	// class (1.0 = as good as the vendor kernels).
	EffMult [2]float64
	// LLCRefsPerFlop is the shared-cache reference rate of the build's
	// blocking, per core class.
	LLCRefsPerFlop [2]float64
	// LLCMissFrac is the fraction of those references that miss, per core
	// class — the quantity behind Table III of the paper.
	LLCMissFrac [2]float64
	// WorkActivity is the power activity factor of the build's compute
	// kernels per core class (1.0 = fully exercises the vector units the
	// way a vendor-tuned DGEMM does). Zero means 1.0.
	WorkActivity [2]float64
}

func (s Strategy) workActivityFor(class hw.CoreClass) float64 {
	if v := s.WorkActivity[class]; v > 0 {
		return v
	}
	return 1
}

func (s Strategy) effFor(class hw.CoreClass) float64 {
	if v := s.EffMult[class]; v > 0 {
		return v
	}
	return 1
}

// OpenBLASx86 is HPL compiled against OpenBLAS on the Raptor Lake system:
// hybrid-oblivious static scheduling, kernels slightly behind Intel's, and
// poor LLC blocking under all-core contention.
func OpenBLASx86() Strategy {
	return Strategy{
		Name:    "OpenBLAS HPL",
		Dynamic: false,
		EffMult: [2]float64{
			hw.Performance: 0.906,
			hw.Efficiency:  0.948,
		},
		LLCRefsPerFlop: [2]float64{
			hw.Performance: 0.009,
			hw.Efficiency:  0.020,
		},
		LLCMissFrac: [2]float64{
			hw.Performance: 0.86,
			hw.Efficiency:  0.0005,
		},
		// The OpenBLAS kernels do not saturate the hybrid vector units the
		// way MKL does, which is why the paper sees OpenBLAS peak at only
		// 165.7 W, well below the 219 W short-term cap.
		WorkActivity: [2]float64{
			hw.Performance: 0.93,
			hw.Efficiency:  0.93,
		},
	}
}

// IntelMKL is the Intel oneAPI optimized HPL: dynamic hybrid-aware
// scheduling with LLC-aware placement.
func IntelMKL() Strategy {
	return Strategy{
		Name:    "Intel HPL",
		Dynamic: true,
		EffMult: [2]float64{
			hw.Performance: 1.0,
			hw.Efficiency:  1.0,
		},
		LLCRefsPerFlop: [2]float64{
			hw.Performance: 0.008,
			hw.Efficiency:  0.022,
		},
		LLCMissFrac: [2]float64{
			hw.Performance: 0.64,
			hw.Efficiency:  0.0003,
		},
	}
}

// OpenBLASArm is HPL compiled against OpenBLAS on the OrangePi: static
// scheduling; the core-type efficiencies in the ARM machine description
// already describe the OpenBLAS NEON kernels.
func OpenBLASArm() Strategy {
	return Strategy{
		Name:    "OpenBLAS HPL (ARM)",
		Dynamic: false,
		EffMult: [2]float64{
			hw.Performance: 1.0,
			hw.Efficiency:  1.0,
		},
		LLCRefsPerFlop: [2]float64{
			hw.Performance: 0.012,
			hw.Efficiency:  0.012,
		},
		LLCMissFrac: [2]float64{
			hw.Performance: 0.30,
			hw.Efficiency:  0.18,
		},
	}
}

// HPLConfig configures one HPL run (the HPL.dat essentials).
type HPLConfig struct {
	// N is the problem size; NB the block size. The paper uses N=57024,
	// NB=192 on Raptor Lake.
	N, NB int
	// Threads is the number of worker threads (one per enabled core).
	Threads int
	// Strategy selects the build's scheduling behaviour.
	Strategy Strategy
	// Seed drives the per-thread noise.
	Seed int64
}

// HPL is one run of the High Performance Linpack benchmark: a blocked LU
// factorization of an N x N matrix. Iteration k factors one NB-wide panel
// and updates the trailing (N - (k+1)*NB)^2 submatrix; the update dominates
// and parallelizes across the worker threads according to the strategy.
type HPL struct {
	cfg        HPLConfig
	iterFlops  []float64
	totalFlops float64

	threads []*HPLThread

	iter      int
	pending   int     // static: threads still working this iteration
	pool      float64 // dynamic: unclaimed flops
	flopsDone float64
	done      bool
}

// NewHPL validates the configuration and builds the run.
func NewHPL(cfg HPLConfig) (*HPL, error) {
	if cfg.N <= 0 || cfg.NB <= 0 || cfg.NB > cfg.N {
		return nil, fmt.Errorf("workload: invalid HPL size N=%d NB=%d", cfg.N, cfg.NB)
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("workload: HPL needs at least one thread")
	}
	h := &HPL{cfg: cfg}
	n, nb := float64(cfg.N), float64(cfg.NB)
	iters := (cfg.N + cfg.NB - 1) / cfg.NB
	var sum float64
	for k := 0; k < iters; k++ {
		m := n - float64(k+1)*nb
		if m < 0 {
			m = 0
		}
		f := 2*nb*m*m + nb*nb*m // trailing update + panel factorization
		if f <= 0 {
			f = nb * nb * nb / 3
		}
		h.iterFlops = append(h.iterFlops, f)
		sum += f
	}
	// Normalize so the run retires exactly the canonical HPL flop count,
	// which the Gflops figure of merit is defined against.
	canonical := 2.0/3.0*n*n*n + 2*n*n
	for i := range h.iterFlops {
		h.iterFlops[i] *= canonical / sum
	}
	h.totalFlops = canonical

	for i := 0; i < cfg.Threads; i++ {
		h.threads = append(h.threads, &HPLThread{
			h:   h,
			idx: i,
			rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		})
	}
	h.startIteration(0)
	return h, nil
}

func (h *HPL) startIteration(k int) {
	if k >= len(h.iterFlops) {
		h.done = true
		return
	}
	h.iter = k
	if h.cfg.Strategy.Dynamic {
		h.pool = h.iterFlops[k]
		return
	}
	share := h.iterFlops[k] / float64(len(h.threads))
	for _, t := range h.threads {
		t.share = share
	}
	h.pending = len(h.threads)
}

// Threads returns the worker tasks to hand to the scheduler.
func (h *HPL) Threads() []Task {
	out := make([]Task, len(h.threads))
	for i, t := range h.threads {
		out[i] = t
	}
	return out
}

// Done reports whether the factorization is complete.
func (h *HPL) Done() bool { return h.done }

// Progress returns the fraction of the total flops retired, in [0, 1].
func (h *HPL) Progress() float64 { return h.flopsDone / h.totalFlops }

// TotalFlops returns the canonical HPL operation count 2/3 N^3 + 2 N^2.
func (h *HPL) TotalFlops() float64 { return h.totalFlops }

// Gflops returns the HPL figure of merit for a completed run that took
// elapsed simulated seconds.
func (h *HPL) Gflops(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return h.totalFlops / elapsed / 1e9
}

// FlopsByThread returns the flops each worker has retired, for instruction
// and load-balance analyses.
func (h *HPL) FlopsByThread() []float64 {
	out := make([]float64, len(h.threads))
	for i, t := range h.threads {
		out[i] = t.flopsDone
	}
	return out
}

// HPLThread is one HPL worker; it implements Task.
type HPLThread struct {
	h   *HPL
	idx int
	rng *rand.Rand

	share     float64 // static strategy: remaining flops this iteration
	flopsDone float64
}

// Name implements Task.
func (t *HPLThread) Name() string { return fmt.Sprintf("hpl-%d", t.idx) }

// Ready implements Task.
func (t *HPLThread) Ready() bool { return !t.h.done }

// Done implements Task.
func (t *HPLThread) Done() bool { return t.h.done }

// Run implements Task. The thread works through its share (static) or pulls
// from the iteration pool (dynamic); any leftover slice time is spent
// spin-waiting at the barrier, retiring real non-FP instructions — which is
// what skews the per-core-type instruction balance on hybrid-oblivious
// builds (Table III).
func (t *HPLThread) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	var st events.Stats
	activity := t.RunStats(ctx, dt, &st)
	return st, activity
}

// RunStats implements StatsRunner: identical to Run, but writes the event
// bundle into out instead of returning the 19-field struct by value —
// the simulator's hot loop calls this form to avoid the copies.
func (t *HPLThread) RunStats(ctx *ExecContext, dt float64, out *events.Stats) float64 {
	h := t.h
	*out = events.Stats{}
	if h.done || dt <= 0 || ctx.FreqMHz <= 0 {
		return 0
	}
	class := ctx.Type.Class
	eff := ctx.Type.HPLEfficiency * h.cfg.Strategy.effFor(class)
	rate := ctx.Type.FlopsPerCycle * ctx.FreqMHz * 1e6 * eff * ctx.Throughput
	avail := rate * dt

	var worked float64
	if h.cfg.Strategy.Dynamic {
		worked = avail
		if worked > h.pool {
			worked = h.pool
		}
		h.pool -= worked
		if h.pool <= 0 {
			h.startIteration(h.iter + 1)
		}
	} else {
		worked = avail
		if worked > t.share {
			worked = t.share
		}
		if worked > 0 {
			t.share -= worked
			if t.share <= 0 {
				h.pending--
				if h.pending == 0 {
					h.startIteration(h.iter + 1)
				}
			}
		}
	}
	t.flopsDone += worked
	h.flopsDone += worked

	workFrac := 0.0
	if avail > 0 {
		workFrac = worked / avail
	}
	spinFrac := 1 - workFrac

	if worked > 0 {
		t.workStatsInto(ctx, worked, dt*workFrac, out)
	}
	if spinFrac > 1e-12 {
		out.Add(SpinStats(ctx, dt*spinFrac))
	}
	return workFrac*h.cfg.Strategy.workActivityFor(class) + spinFrac*ctx.Type.SpinActivity
}

// workStatsInto converts retired flops into the full event bundle,
// written field by field into out (assumed zeroed) so the hot loop never
// copies the struct.
func (t *HPLThread) workStatsInto(ctx *ExecContext, flops, dt float64, out *events.Stats) {
	typ := ctx.Type
	class := typ.Class
	fpInstr := flops / typ.VecFlopsPerInstr // one packed FMA retires VecFlopsPerInstr flops
	instr := fpInstr * 2.2                  // address arithmetic, loads, loop control
	cycles := ctx.CyclesIn(dt) * ctx.Throughput

	loads := fpInstr * 1.0
	stores := fpInstr * 0.35
	l1 := loads + stores
	l1m := l1 * 0.06
	l2 := l1m
	l2m := l2 * 0.35

	noise := 0.97 + 0.06*t.rng.Float64()
	llcRefs := flops * t.h.cfg.Strategy.LLCRefsPerFlop[class] * noise
	llcMiss := llcRefs * t.h.cfg.Strategy.LLCMissFrac[class] * (0.98 + 0.04*t.rng.Float64())

	branches := instr * 0.04
	out.Cycles = cycles
	out.RefCycles = typ.BaseFreqMHz * 1e6 * dt
	out.Instructions = instr
	out.Branches = branches
	out.BranchMisses = branches * 0.005
	out.Loads = loads
	out.Stores = stores
	out.L1DRefs = l1
	out.L1DMisses = l1m
	out.L2Refs = l2
	out.L2Misses = l2m
	out.LLCRefs = llcRefs
	out.LLCMisses = llcMiss
	out.FP256D = vec256(typ, fpInstr)
	out.FP128D = vec128(typ, fpInstr)
	out.StallCycles = cycles * 0.12
	out.Slots = cycles * typ.IssueWidth
	out.Flops = flops
}

func vec256(t *hw.CoreType, fpInstr float64) float64 {
	if t.VecFlopsPerInstr >= 8 {
		return fpInstr
	}
	return 0
}

func vec128(t *hw.CoreType, fpInstr float64) float64 {
	if t.VecFlopsPerInstr < 8 {
		return fpInstr
	}
	return 0
}
