// Package workload models the programs that run on the simulated machines:
// the HPL linpack benchmark with hybrid-oblivious and hybrid-aware threading
// strategies (hpl.go), plus micro-workloads used by the PAPI hybrid tests
// (a fixed instruction loop, a spin loop, and a memory streamer).
//
// A Task is the schedulable unit. Each simulation tick the scheduler places
// tasks on CPUs and calls Run with the core's execution context; Run returns
// the architectural event quantities produced in that slice plus a power
// activity factor in [0, 1] that feeds the power model.
package workload

import (
	"math/rand"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
)

// ExecContext describes the core a task executes on for one time slice.
type ExecContext struct {
	// CPU is the logical CPU id.
	CPU int
	// Type is the core type of the CPU.
	Type *hw.CoreType
	// FreqMHz is the core frequency during the slice.
	FreqMHz float64
	// Throughput is the per-thread throughput factor (1.0, or the SMT
	// contention factor when the sibling thread is busy).
	Throughput float64
}

// CyclesIn returns the core cycles available in dt seconds at the context's
// frequency.
func (c *ExecContext) CyclesIn(dt float64) float64 {
	return c.FreqMHz * 1e6 * dt
}

// Task is a schedulable entity.
type Task interface {
	// Name identifies the task in traces and test output.
	Name() string
	// Ready reports whether the task wants CPU time now.
	Ready() bool
	// Done reports whether the task has finished; done tasks are removed
	// from the scheduler.
	Done() bool
	// Run executes the task for dt seconds on the context, returning the
	// produced event quantities and the power activity factor in [0, 1]
	// (1 = full vector load, small values = spin or idle wait).
	Run(ctx *ExecContext, dt float64) (events.Stats, float64)
}

// Phased is implemented by tasks with distinguishable internal phases
// (notably Sequence). Profilers use it to attribute samples to the phase
// executing at overflow time, the way PAPI regions label a caliper.
type Phased interface {
	Task
	// PhaseName returns the name of the phase currently executing, or ""
	// when no phase is active.
	PhaseName() string
}

// Profile parameterizes synthetic instruction-stream statistics.
type Profile struct {
	// BranchFrac is the fraction of instructions that are branches;
	// BranchMissRate is the fraction of branches mispredicted.
	BranchFrac     float64
	BranchMissRate float64
	// LoadFrac and StoreFrac are memory-operation fractions of the
	// instruction stream.
	LoadFrac  float64
	StoreFrac float64
	// L1MissRate, L2MissRate, LLCMissRate chain the cache hierarchy:
	// L1 misses feed L2 references, L2 misses feed LLC references.
	L1MissRate  float64
	L2MissRate  float64
	LLCMissRate float64
	// StallFrac is the fraction of cycles stalled.
	StallFrac float64
}

// SpinProfile is the instruction mix of a spin-wait loop: tight,
// predictable, cache-resident.
func SpinProfile() Profile {
	return Profile{
		BranchFrac:     0.33,
		BranchMissRate: 0.001,
		LoadFrac:       0.30,
		StoreFrac:      0.01,
		L1MissRate:     0.001,
		L2MissRate:     0.05,
		LLCMissRate:    0.02,
		StallFrac:      0.05,
	}
}

// ScalarProfile is a generic integer workload mix.
func ScalarProfile() Profile {
	return Profile{
		BranchFrac:     0.20,
		BranchMissRate: 0.02,
		LoadFrac:       0.28,
		StoreFrac:      0.12,
		L1MissRate:     0.03,
		L2MissRate:     0.25,
		LLCMissRate:    0.30,
		StallFrac:      0.20,
	}
}

// Synth builds the event quantities of executing instr instructions over
// cycles core cycles on core type t, using the given instruction mix.
// refCycles is derived from dt at the TSC (base) rate.
func Synth(t *hw.CoreType, instr, cycles, dt float64, p Profile) events.Stats {
	loads := instr * p.LoadFrac
	stores := instr * p.StoreFrac
	l1 := loads + stores
	l1m := l1 * p.L1MissRate
	l2 := l1m
	l2m := l2 * p.L2MissRate
	llc := l2m
	llcm := llc * p.LLCMissRate
	branches := instr * p.BranchFrac
	return events.Stats{
		Cycles:       cycles,
		RefCycles:    t.BaseFreqMHz * 1e6 * dt,
		Instructions: instr,
		Branches:     branches,
		BranchMisses: branches * p.BranchMissRate,
		Loads:        loads,
		Stores:       stores,
		L1DRefs:      l1,
		L1DMisses:    l1m,
		L2Refs:       l2,
		L2Misses:     l2m,
		LLCRefs:      llc,
		LLCMisses:    llcm,
		StallCycles:  cycles * p.StallFrac,
		Slots:        cycles * t.IssueWidth,
	}
}

// StatsRunner is an optional Task fast path: RunStats behaves exactly
// like Run but writes the event bundle into out (fully overwriting it)
// instead of returning the 19-field struct by value. The simulator's hot
// loop prefers this form; Run must stay equivalent for everything else.
type StatsRunner interface {
	RunStats(ctx *ExecContext, dtSec float64, out *events.Stats) float64
}

// SpinStats returns the quantities of spin-waiting for dt seconds.
func SpinStats(ctx *ExecContext, dt float64) events.Stats {
	cycles := ctx.CyclesIn(dt) * ctx.Throughput
	instr := cycles * ctx.Type.BaseIPC * 2.2 // tight spin loops retire near issue width
	return Synth(ctx.Type, instr, cycles, dt, SpinProfile())
}

// InstructionLoop is the workload of the paper's
// papi_hybrid_100m_one_eventset test: a loop retiring a fixed number of
// instructions, repeated a fixed number of times. The process is free to
// migrate between core types, so the per-PMU instruction counts split
// between P and E events while their sum stays at reps x instructions.
type InstructionLoop struct {
	name         string
	instrPerRep  float64
	repsTotal    int
	repsDone     int
	repInstrLeft float64
	totalInstr   float64
}

// NewInstructionLoop returns a loop retiring instrPerRep instructions reps
// times.
func NewInstructionLoop(name string, instrPerRep float64, reps int) *InstructionLoop {
	return &InstructionLoop{
		name:         name,
		instrPerRep:  instrPerRep,
		repsTotal:    reps,
		repInstrLeft: instrPerRep,
	}
}

// Name implements Task.
func (l *InstructionLoop) Name() string { return l.name }

// Ready implements Task.
func (l *InstructionLoop) Ready() bool { return !l.Done() }

// Done implements Task.
func (l *InstructionLoop) Done() bool { return l.repsDone >= l.repsTotal }

// RepsDone returns the number of completed repetitions.
func (l *InstructionLoop) RepsDone() int { return l.repsDone }

// TotalInstructions returns the instructions retired so far.
func (l *InstructionLoop) TotalInstructions() float64 { return l.totalInstr }

// Run implements Task.
func (l *InstructionLoop) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	if l.Done() || dt <= 0 || ctx.FreqMHz <= 0 {
		return events.Stats{}, 0
	}
	cycles := ctx.CyclesIn(dt) * ctx.Throughput
	budget := cycles * ctx.Type.BaseIPC
	var retired float64
	for budget > 0 && !l.Done() {
		take := budget
		if take > l.repInstrLeft {
			take = l.repInstrLeft
		}
		l.repInstrLeft -= take
		retired += take
		budget -= take
		if l.repInstrLeft <= 0 {
			l.repsDone++
			l.repInstrLeft = l.instrPerRep
		}
	}
	l.totalInstr += retired
	usedCycles := retired / ctx.Type.BaseIPC
	st := Synth(ctx.Type, retired, usedCycles, dt*usedCycles/cycles, ScalarProfile())
	return st, 0.6 * usedCycles / cycles
}

// Spin is a pure busy-wait task running for a fixed simulated duration.
type Spin struct {
	name      string
	remaining float64
}

// NewSpin returns a spin task lasting the given simulated seconds.
func NewSpin(name string, seconds float64) *Spin {
	return &Spin{name: name, remaining: seconds}
}

// Name implements Task.
func (s *Spin) Name() string { return s.name }

// Ready implements Task.
func (s *Spin) Ready() bool { return !s.Done() }

// Done implements Task.
func (s *Spin) Done() bool { return s.remaining <= 0 }

// Run implements Task.
func (s *Spin) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	if s.Done() {
		return events.Stats{}, 0
	}
	if dt > s.remaining {
		dt = s.remaining
	}
	s.remaining -= dt
	return SpinStats(ctx, dt), ctx.Type.SpinActivity
}

// Stream is a memory-streaming task with a configurable LLC miss rate; it
// exercises the cache-event counters.
type Stream struct {
	name       string
	instrLeft  float64
	total      float64
	miss       float64
	rng        *rand.Rand
	memBoundID float64
}

// NewStream returns a streaming task retiring the given number of
// instructions with the given LLC miss rate.
func NewStream(name string, instructions, llcMissRate float64, seed int64) *Stream {
	return &Stream{
		name:      name,
		instrLeft: instructions,
		total:     instructions,
		miss:      llcMissRate,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Name implements Task.
func (s *Stream) Name() string { return s.name }

// Ready implements Task.
func (s *Stream) Ready() bool { return !s.Done() }

// Done implements Task.
func (s *Stream) Done() bool { return s.instrLeft <= 0 }

// Run implements Task.
func (s *Stream) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	if s.Done() {
		return events.Stats{}, 0
	}
	// Memory-bound: effective IPC well below base, worse on the small core.
	ipc := ctx.Type.BaseIPC * 0.4
	cycles := ctx.CyclesIn(dt) * ctx.Throughput
	instr := cycles * ipc
	if instr > s.instrLeft {
		cycles *= s.instrLeft / instr
		instr = s.instrLeft
	}
	s.instrLeft -= instr
	p := Profile{
		BranchFrac:     0.05,
		BranchMissRate: 0.01,
		LoadFrac:       0.45,
		StoreFrac:      0.15,
		L1MissRate:     0.5,
		L2MissRate:     0.8,
		LLCMissRate:    s.miss * (0.95 + 0.1*s.rng.Float64()),
		StallFrac:      0.6,
	}
	return Synth(ctx.Type, instr, cycles, dt, p), 0.7
}
