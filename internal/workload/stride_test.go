package workload

import (
	"testing"

	"hetpapi/internal/events"
	"hetpapi/internal/hw"
)

func strideCtx(t *testing.T) *ExecContext {
	t.Helper()
	m := hw.RaptorLake()
	return &ExecContext{CPU: 0, Type: &m.Types[0], FreqMHz: 3000, Throughput: 1}
}

func TestStrideRatesGeometry(t *testing.T) {
	m := hw.RaptorLake()
	p := &m.Types[0] // P-core: L1D 48K, L2 2048K
	llcKB := 36 * 1024

	cases := []struct {
		name                string
		stride, footprintKB int
		want                StrideMissRates
	}{
		{"fits-l1", 64, 16, StrideMissRates{0, 0, 0}},
		{"fits-l2", 64, 1024, StrideMissRates{1, 0, 0}},
		{"fits-llc", 64, 8 * 1024, StrideMissRates{1, 1, 0}},
		{"dram", 64, 128 * 1024, StrideMissRates{1, 1, 1}},
		{"dram-wide-stride", 256, 128 * 1024, StrideMissRates{1, 1, 1}},
		{"dram-sub-line", 16, 128 * 1024, StrideMissRates{0.25, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := StrideRates(p, llcKB, tc.stride, tc.footprintKB)
			if got != tc.want {
				t.Fatalf("StrideRates(stride=%d footprint=%dKB) = %+v, want %+v",
					tc.stride, tc.footprintKB, got, tc.want)
			}
		})
	}
}

func TestStrideRatesMonotoneInFootprint(t *testing.T) {
	m := hw.Dimensity9000()
	llcKB := 6 * 1024
	for i := range m.Types {
		ct := &m.Types[i]
		prev := -1.0
		for _, fp := range []int{8, 64, 512, 2048, 8192, 32768} {
			chain := StrideRates(ct, llcKB, 64, fp).Chain()
			if chain < prev {
				t.Fatalf("%s: miss chain not monotone in footprint: %v at %dKB after %v",
					ct.Name, chain, fp, prev)
			}
			prev = chain
		}
	}
}

func TestStrideDeterministic(t *testing.T) {
	run := func() []events.Stats {
		s := NewStride("det", 50e6, 64, 128*1024, 36*1024)
		ctx := strideCtx(t)
		var out []events.Stats
		for !s.Done() {
			st, _ := s.Run(ctx, 1e-3)
			out = append(out, st)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestStrideInstructionConservation(t *testing.T) {
	const want = 25e6
	s := NewStride("conserve", want, 64, 128*1024, 36*1024)
	ctx := strideCtx(t)
	var got float64
	for !s.Done() {
		st, _ := s.Run(ctx, 1e-3)
		got += st.Instructions
	}
	if diff := got - want; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("retired %v instructions, want %v", got, want)
	}
}

func TestStrideClosedFormLLCMisses(t *testing.T) {
	// The whole point of the workload: total LLC misses must equal
	// instructions * loadFrac * missChain exactly, independent of how
	// the run is sliced into ticks.
	const instr = 40e6
	s := NewStride("oracle", instr, 64, 128*1024, 36*1024)
	ctx := strideCtx(t)
	chain := s.Rates(ctx.Type).Chain()
	var misses, refs float64
	for !s.Done() {
		st, _ := s.Run(ctx, 1e-3)
		misses += st.LLCMisses
		refs += st.LLCRefs
	}
	wantMisses := instr * StrideLoadFrac * chain
	if rel := (misses - wantMisses) / wantMisses; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("LLC misses %v, closed form %v (rel err %v)", misses, wantMisses, rel)
	}
	r := s.Rates(ctx.Type)
	wantRefs := instr * StrideLoadFrac * r.L1 * r.L2
	if rel := (refs - wantRefs) / wantRefs; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("LLC refs %v, closed form %v (rel err %v)", refs, wantRefs, rel)
	}
}

func TestStrideDRAMBoundSlowerThanCacheResident(t *testing.T) {
	ctx := strideCtx(t)
	fast := NewStride("cached", 10e6, 64, 16, 36*1024)
	slow := NewStride("dram", 10e6, 64, 128*1024, 36*1024)
	fs, _ := fast.Run(ctx, 1e-3)
	ss, _ := slow.Run(ctx, 1e-3)
	if ss.Instructions >= fs.Instructions {
		t.Fatalf("DRAM-bound sweep retired %v instr/tick, cache-resident only %v",
			ss.Instructions, fs.Instructions)
	}
	// Penalty default applies when the core type doesn't declare one.
	bare := *ctx.Type
	bare.LLCMissPenaltyCycles = 0
	bctx := *ctx
	bctx.Type = &bare
	slow2 := NewStride("dram-default-pen", 10e6, 64, 128*1024, 36*1024)
	bs, _ := slow2.Run(&bctx, 1e-3)
	if bs.Instructions >= fs.Instructions {
		t.Fatalf("default-penalty sweep not slower than cache-resident: %v vs %v",
			bs.Instructions, fs.Instructions)
	}
}
