package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hetpapi/internal/hw"
)

func TestNewHPLValidation(t *testing.T) {
	bad := []HPLConfig{
		{N: 0, NB: 192, Threads: 1},
		{N: 1000, NB: 0, Threads: 1},
		{N: 100, NB: 192, Threads: 1},
		{N: 1000, NB: 100, Threads: 0},
	}
	for _, cfg := range bad {
		cfg.Strategy = OpenBLASx86()
		if _, err := NewHPL(cfg); err == nil {
			t.Errorf("NewHPL(%+v) accepted invalid config", cfg)
		}
	}
}

func TestHPLFlopCountCanonical(t *testing.T) {
	h, err := NewHPL(HPLConfig{N: 5760, NB: 192, Threads: 4, Strategy: OpenBLASx86()})
	if err != nil {
		t.Fatal(err)
	}
	n := 5760.0
	want := 2.0/3.0*n*n*n + 2*n*n
	if math.Abs(h.TotalFlops()-want) > 1 {
		t.Fatalf("TotalFlops = %g, want %g", h.TotalFlops(), want)
	}
	var sum float64
	for _, f := range h.iterFlops {
		sum += f
	}
	if math.Abs(sum-want) > want*1e-9 {
		t.Fatalf("iteration flops sum %g != total %g", sum, want)
	}
}

// driveHPL runs every thread on its assigned context each tick until done.
func driveHPL(t *testing.T, h *HPL, ctxs []*ExecContext, tick float64) (elapsed float64) {
	t.Helper()
	tasks := h.Threads()
	for i := 0; i < 10_000_000 && !h.Done(); i++ {
		for j, task := range tasks {
			task.Run(ctxs[j], tick)
		}
		elapsed += tick
	}
	if !h.Done() {
		t.Fatal("HPL never finished")
	}
	return elapsed
}

func mixedCtxs(m *hw.Machine, nP, nE int) []*ExecContext {
	var out []*ExecContext
	p := m.TypeByName("P-core")
	e := m.TypeByName("E-core")
	for i := 0; i < nP; i++ {
		out = append(out, &ExecContext{CPU: 2 * i, Type: p, FreqMHz: 3000, Throughput: 1})
	}
	for i := 0; i < nE; i++ {
		out = append(out, &ExecContext{CPU: 16 + i, Type: e, FreqMHz: 2400, Throughput: 1})
	}
	return out
}

func TestStaticStragglersHurtAllCore(t *testing.T) {
	// The central Table II effect: with a static equal split, adding
	// E-cores to 8 P-cores REDUCES throughput relative to scaling the
	// P-only rate, because every iteration waits for the slowest thread.
	m := hw.RaptorLake()
	const n, nb = 4800, 192

	run := func(strategy Strategy, nP, nE int) float64 {
		h, err := NewHPL(HPLConfig{N: n, NB: nb, Threads: nP + nE, Strategy: strategy, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		el := driveHPL(t, h, mixedCtxs(m, nP, nE), 0.001)
		return h.Gflops(el)
	}

	pOnly := run(OpenBLASx86(), 8, 0)
	allStatic := run(OpenBLASx86(), 8, 8)
	allDynamic := run(IntelMKL(), 8, 8)

	if allStatic >= pOnly {
		t.Errorf("static all-core %.1f >= P-only %.1f; stragglers must hurt", allStatic, pOnly)
	}
	if allDynamic <= pOnly {
		t.Errorf("dynamic all-core %.1f <= P-only %.1f; work stealing must help", allDynamic, pOnly)
	}
	if allDynamic <= allStatic {
		t.Errorf("dynamic %.1f <= static %.1f", allDynamic, allStatic)
	}
}

func TestStaticInstructionShareSkewsToFastCores(t *testing.T) {
	// Table III: under the static split the P threads spin at barriers,
	// inflating the P-side instruction share well above the E share.
	m := hw.RaptorLake()
	h, err := NewHPL(HPLConfig{N: 4800, NB: 192, Threads: 16, Strategy: OpenBLASx86(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := mixedCtxs(m, 8, 8)
	tasks := h.Threads()
	var pInstr, eInstr float64
	for i := 0; i < 10_000_000 && !h.Done(); i++ {
		for j, task := range tasks {
			st, _ := task.Run(ctxs[j], 0.001)
			if ctxs[j].Type.Class == hw.Performance {
				pInstr += st.Instructions
			} else {
				eInstr += st.Instructions
			}
		}
	}
	share := pInstr / (pInstr + eInstr)
	if share < 0.60 || share > 0.92 {
		t.Errorf("P instruction share = %.2f, want in [0.60, 0.92] (paper: 0.80)", share)
	}
}

func TestLLCMissRatesMatchStrategy(t *testing.T) {
	m := hw.RaptorLake()
	for _, tc := range []struct {
		strategy Strategy
		wantP    float64
		wantE    float64
		tol      float64
	}{
		{OpenBLASx86(), 0.86, 0.0005, 0.05},
		{IntelMKL(), 0.64, 0.0003, 0.05},
	} {
		h, err := NewHPL(HPLConfig{N: 2880, NB: 192, Threads: 16, Strategy: tc.strategy, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		ctxs := mixedCtxs(m, 8, 8)
		tasks := h.Threads()
		var refs, miss [2]float64
		for i := 0; i < 10_000_000 && !h.Done(); i++ {
			for j, task := range tasks {
				st, _ := task.Run(ctxs[j], 0.001)
				c := ctxs[j].Type.Class
				refs[c] += st.LLCRefs
				miss[c] += st.LLCMisses
			}
		}
		gotP := miss[hw.Performance] / refs[hw.Performance]
		gotE := miss[hw.Efficiency] / refs[hw.Efficiency]
		if math.Abs(gotP-tc.wantP) > tc.tol {
			t.Errorf("%s: P miss rate %.3f, want ~%.2f", tc.strategy.Name, gotP, tc.wantP)
		}
		if gotE > tc.wantE*3 {
			t.Errorf("%s: E miss rate %.5f, want ~%.4f", tc.strategy.Name, gotE, tc.wantE)
		}
	}
}

func TestDynamicBalancesFlopsByRate(t *testing.T) {
	m := hw.RaptorLake()
	h, err := NewHPL(HPLConfig{N: 2880, NB: 192, Threads: 4, Strategy: IntelMKL(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := mixedCtxs(m, 2, 2)
	driveHPL(t, h, ctxs, 0.001)
	flops := h.FlopsByThread()
	// P threads at 3 GHz x16 flops/c vs E at 2.4 GHz x8: ratio ~2.5.
	ratio := flops[0] / flops[2]
	if ratio < 1.8 || ratio > 3.2 {
		t.Errorf("P/E flop ratio = %.2f, want ~2.5 (dynamic balancing)", ratio)
	}
}

func TestProgressAndConservation(t *testing.T) {
	h, err := NewHPL(HPLConfig{N: 960, NB: 192, Threads: 2, Strategy: OpenBLASx86(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := hw.RaptorLake()
	ctxs := mixedCtxs(m, 1, 1)
	if h.Progress() != 0 {
		t.Fatal("fresh run must have zero progress")
	}
	driveHPL(t, h, ctxs, 0.001)
	if math.Abs(h.Progress()-1) > 1e-9 {
		t.Fatalf("final progress = %g, want 1", h.Progress())
	}
	var sum float64
	for _, f := range h.FlopsByThread() {
		sum += f
	}
	if math.Abs(sum-h.TotalFlops()) > h.TotalFlops()*1e-9 {
		t.Fatalf("thread flops %g != total %g", sum, h.TotalFlops())
	}
}

func TestGflopsFigureOfMerit(t *testing.T) {
	h, _ := NewHPL(HPLConfig{N: 960, NB: 192, Threads: 1, Strategy: OpenBLASx86()})
	if g := h.Gflops(0); g != 0 {
		t.Error("zero elapsed must give zero Gflops")
	}
	if g := h.Gflops(1); math.Abs(g-h.TotalFlops()/1e9) > 1e-9 {
		t.Errorf("Gflops(1s) = %g", g)
	}
}

// Property: for any valid (N, NB, threads), the run terminates and retires
// exactly its canonical flop count.
func TestHPLTerminationProperty(t *testing.T) {
	m := hw.RaptorLake()
	f := func(nRaw, nbRaw, thRaw uint8) bool {
		n := 480 + int(nRaw)%8*240
		nb := []int{64, 96, 128, 192}[int(nbRaw)%4]
		threads := 1 + int(thRaw)%4
		strategy := OpenBLASx86()
		if thRaw%2 == 0 {
			strategy = IntelMKL()
		}
		h, err := NewHPL(HPLConfig{N: n, NB: nb, Threads: threads, Strategy: strategy, Seed: int64(nRaw)})
		if err != nil {
			return false
		}
		ctxs := mixedCtxs(m, threads, 0)
		for i := 0; i < 10_000_000 && !h.Done(); i++ {
			for j, task := range h.Threads() {
				task.Run(ctxs[j], 0.01)
			}
		}
		return h.Done() && math.Abs(h.Progress()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
