package workload

import (
	"math"

	"hetpapi/internal/events"
)

// BurstyLoop is an instruction loop whose retirement rate alternates
// between a fast and a slow phase. Phase-varying workloads are exactly
// where multiplexed counter estimates go wrong: an event scheduled onto
// the PMU only during fast phases extrapolates a count that is too high,
// and vice versa. The total retired instruction count stays exact, making
// the loop a ground truth for multiplex-error studies.
type BurstyLoop struct {
	name         string
	instrPerRep  float64
	repsTotal    int
	repsDone     int
	repInstrLeft float64
	totalInstr   float64

	// phase behaviour
	periodSec float64
	slowFrac  float64
	elapsed   float64
}

// NewBurstyLoop returns a loop retiring instrPerRep instructions reps
// times, alternating every periodSec between full speed and slowFrac of
// full speed.
func NewBurstyLoop(name string, instrPerRep float64, reps int, periodSec, slowFrac float64) *BurstyLoop {
	if periodSec <= 0 {
		periodSec = 0.005
	}
	if slowFrac <= 0 || slowFrac > 1 {
		slowFrac = 0.25
	}
	return &BurstyLoop{
		name:         name,
		instrPerRep:  instrPerRep,
		repsTotal:    reps,
		repInstrLeft: instrPerRep,
		periodSec:    periodSec,
		slowFrac:     slowFrac,
	}
}

// Name implements Task.
func (l *BurstyLoop) Name() string { return l.name }

// Ready implements Task.
func (l *BurstyLoop) Ready() bool { return !l.Done() }

// Done implements Task.
func (l *BurstyLoop) Done() bool { return l.repsDone >= l.repsTotal }

// RepsDone returns the completed repetitions.
func (l *BurstyLoop) RepsDone() int { return l.repsDone }

// TotalInstructions returns the instructions retired so far.
func (l *BurstyLoop) TotalInstructions() float64 { return l.totalInstr }

// InFastPhase reports whether the loop is currently in its fast phase.
func (l *BurstyLoop) InFastPhase() bool {
	return math.Mod(l.elapsed, 2*l.periodSec) < l.periodSec
}

// Run implements Task.
func (l *BurstyLoop) Run(ctx *ExecContext, dt float64) (events.Stats, float64) {
	if l.Done() || dt <= 0 || ctx.FreqMHz <= 0 {
		return events.Stats{}, 0
	}
	factor := 1.0
	if !l.InFastPhase() {
		factor = l.slowFrac
	}
	l.elapsed += dt
	cycles := ctx.CyclesIn(dt) * ctx.Throughput
	budget := cycles * ctx.Type.BaseIPC * factor
	var retired float64
	for budget > 0 && !l.Done() {
		take := budget
		if take > l.repInstrLeft {
			take = l.repInstrLeft
		}
		l.repInstrLeft -= take
		retired += take
		budget -= take
		if l.repInstrLeft <= 0 {
			l.repsDone++
			l.repInstrLeft = l.instrPerRep
		}
	}
	l.totalInstr += retired
	st := Synth(ctx.Type, retired, cycles, dt, ScalarProfile())
	return st, 0.3 + 0.4*factor
}
