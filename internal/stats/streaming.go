package stats

import (
	"math"
	"sort"
)

// Streaming statistics for long-running monitoring: a telemetry store that
// ingests thousands of samples per second cannot afford to re-sort a full
// series on every aggregate query. Welford tracks mean/variance in O(1) per
// sample over the whole stream; RingQuantile keeps the last K samples in a
// ring alongside an incrementally maintained sorted view, so percentile
// queries are O(1) interpolation and inserts are O(K) memmove with no
// sorting at query time.

// Welford is the numerically stable streaming mean/variance accumulator
// (Welford 1962). The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	last float64
}

// Add ingests one sample. NaN samples are dropped: a single NaN would
// otherwise poison the running mean, min and max for the rest of the
// stream (NaN compares false against everything), and the scorecard and
// fleet roll-ups that serve these aggregates as JSON cannot represent it.
func (w *Welford) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.last = x
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples ingested.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 before any sample.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (matching the batch
// Stddev convention), or 0 for fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the running population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen, or 0 before any sample.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen, or 0 before any sample.
func (w *Welford) Max() float64 { return w.max }

// Last returns the most recent sample, or 0 before any sample.
func (w *Welford) Last() float64 { return w.last }

// Sum returns the running sum of all samples.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Merge folds another accumulator into w (the Chan et al. parallel
// combine), as if w had also ingested every sample o saw. The Last value
// is taken from o when o is non-empty (merge order is "w then o").
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.last = o.last
}

// RingQuantile estimates percentiles over a sliding window of the last
// K samples. It keeps the raw window in a circular buffer (for eviction
// order) and the same multiset in a sorted slice maintained by binary
// insertion/removal, so Quantile never sorts: it is a direct interpolated
// lookup identical to Percentile over the current window.
type RingQuantile struct {
	ring   []float64 // circular raw-order buffer
	sorted []float64 // ascending view of the same values
	head   int       // next write position in ring
	n      int       // current window fill
}

// NewRingQuantile returns an estimator over a window of the given capacity
// (minimum 1).
func NewRingQuantile(capacity int) *RingQuantile {
	if capacity < 1 {
		capacity = 1
	}
	return &RingQuantile{
		ring:   make([]float64, capacity),
		sorted: make([]float64, 0, capacity),
	}
}

// Add ingests one sample, evicting the oldest once the window is full.
// NaN samples are dropped: the sorted view is maintained by binary
// search (sort.SearchFloat64s), whose invariants a NaN entry silently
// destroys — every later insert and eviction would land at wrong
// indices and Quantile would return garbage for the window's lifetime.
func (r *RingQuantile) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if r.n == len(r.ring) {
		old := r.ring[r.head]
		i := sort.SearchFloat64s(r.sorted, old)
		r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
		r.n--
	}
	r.ring[r.head] = x
	r.head = (r.head + 1) % len(r.ring)
	r.n++
	i := sort.SearchFloat64s(r.sorted, x)
	r.sorted = append(r.sorted, 0)
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = x
}

// N returns the current window fill.
func (r *RingQuantile) N() int { return r.n }

// Quantile returns the p-th percentile (0-100) of the current window with
// the same closest-ranks interpolation as Percentile; 0 when empty. A NaN
// percentile returns 0 — int(NaN) is platform-defined and would index out
// of range.
func (r *RingQuantile) Quantile(p float64) float64 {
	if r.n == 0 || math.IsNaN(p) {
		return 0
	}
	s := r.sorted
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Window returns the current window contents in insertion order (oldest
// first), as a fresh slice.
func (r *RingQuantile) Window() []float64 {
	out := make([]float64, 0, r.n)
	start := r.head - r.n
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i+len(r.ring))%len(r.ring)])
	}
	return out
}
