package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	if math.Abs(a-b) <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// TestWelfordMatchesBatch checks the streaming accumulator against the
// batch Mean/Stddev/Min/Max on random series.
func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 1000} {
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
		}
		if w.N() != int64(n) {
			t.Fatalf("n=%d: N()=%d", n, w.N())
		}
		if !almostEq(w.Mean(), Mean(xs), 1e-9) {
			t.Errorf("n=%d: mean %g vs batch %g", n, w.Mean(), Mean(xs))
		}
		if !almostEq(w.Stddev(), Stddev(xs), 1e-9) {
			t.Errorf("n=%d: stddev %g vs batch %g", n, w.Stddev(), Stddev(xs))
		}
		if w.Min() != Min(xs) || w.Max() != Max(xs) {
			t.Errorf("n=%d: min/max %g/%g vs batch %g/%g", n, w.Min(), w.Max(), Min(xs), Max(xs))
		}
		if w.Last() != xs[n-1] {
			t.Errorf("n=%d: last %g vs %g", n, w.Last(), xs[n-1])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		if !almostEq(w.Sum(), sum, 1e-9) {
			t.Errorf("n=%d: sum %g vs %g", n, w.Sum(), sum)
		}
	}
}

// TestWelfordZeroValue checks the zero value is usable and empty-safe.
func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Stddev() != 0 || w.Min() != 0 || w.Max() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	w.Add(5)
	if w.Stddev() != 0 {
		t.Fatalf("single sample stddev = %g, want 0", w.Stddev())
	}
}

// TestWelfordMerge checks the parallel combine against one accumulator
// that saw the concatenated stream.
func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, split := range []struct{ a, b int }{{0, 10}, {10, 0}, {1, 1}, {7, 93}, {500, 500}} {
		xs := make([]float64, split.a+split.b)
		var all, left, right Welford
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10
			all.Add(xs[i])
			if i < split.a {
				left.Add(xs[i])
			} else {
				right.Add(xs[i])
			}
		}
		left.Merge(right)
		if left.N() != all.N() {
			t.Fatalf("split %v: merged N %d vs %d", split, left.N(), all.N())
		}
		if !almostEq(left.Mean(), all.Mean(), 1e-9) || !almostEq(left.Stddev(), all.Stddev(), 1e-9) {
			t.Errorf("split %v: merged mean/stddev %g/%g vs %g/%g",
				split, left.Mean(), left.Stddev(), all.Mean(), all.Stddev())
		}
		if left.Min() != all.Min() || left.Max() != all.Max() {
			t.Errorf("split %v: merged min/max differ", split)
		}
	}
}

// TestRingQuantileMatchesBatch checks that window percentiles are exactly
// the batch Percentile over the last K samples.
func TestRingQuantileMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const cap = 64
	r := NewRingQuantile(cap)
	var all []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 1000
		r.Add(x)
		all = append(all, x)
		if i%37 != 0 {
			continue
		}
		window := all
		if len(window) > cap {
			window = window[len(window)-cap:]
		}
		if r.N() != len(window) {
			t.Fatalf("i=%d: window fill %d, want %d", i, r.N(), len(window))
		}
		for _, p := range []float64{0, 5, 50, 95, 99, 100} {
			got, want := r.Quantile(p), Percentile(window, p)
			if got != want {
				t.Errorf("i=%d p%g: %g vs batch %g", i, p, got, want)
			}
		}
	}
}

// TestRingQuantileWindowOrder checks eviction order and the raw-window
// accessor.
func TestRingQuantileWindowOrder(t *testing.T) {
	r := NewRingQuantile(3)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x)
	}
	w := r.Window()
	if len(w) != 3 || w[0] != 3 || w[1] != 4 || w[2] != 5 {
		t.Fatalf("window = %v, want [3 4 5]", w)
	}
}

// TestRingQuantileDuplicates exercises eviction with repeated values,
// where removal must drop exactly one copy from the sorted view.
func TestRingQuantileDuplicates(t *testing.T) {
	r := NewRingQuantile(4)
	for _, x := range []float64{2, 2, 2, 1, 2, 2} {
		r.Add(x)
	}
	// Window is [1 2 2 2] after evicting two of the leading 2s.
	if got := r.Quantile(0); got != 1 {
		t.Fatalf("min quantile = %g, want 1", got)
	}
	if got := r.Quantile(100); got != 2 {
		t.Fatalf("max quantile = %g, want 2", got)
	}
	if got, want := r.Quantile(50), Percentile([]float64{1, 2, 2, 2}, 50); got != want {
		t.Fatalf("p50 = %g, want %g", got, want)
	}
}

func TestRingQuantileEmptyAndTiny(t *testing.T) {
	r := NewRingQuantile(0) // clamped to 1
	if r.Quantile(50) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	r.Add(42)
	r.Add(43) // evicts 42 in the size-1 window
	if r.Quantile(50) != 43 || r.N() != 1 {
		t.Fatalf("size-1 window: p50=%g n=%d", r.Quantile(50), r.N())
	}
}
