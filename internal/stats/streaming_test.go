package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	if math.Abs(a-b) <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// TestWelfordMatchesBatch checks the streaming accumulator against the
// batch Mean/Stddev/Min/Max on random series.
func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 1000} {
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
		}
		if w.N() != int64(n) {
			t.Fatalf("n=%d: N()=%d", n, w.N())
		}
		if !almostEq(w.Mean(), Mean(xs), 1e-9) {
			t.Errorf("n=%d: mean %g vs batch %g", n, w.Mean(), Mean(xs))
		}
		if !almostEq(w.Stddev(), Stddev(xs), 1e-9) {
			t.Errorf("n=%d: stddev %g vs batch %g", n, w.Stddev(), Stddev(xs))
		}
		if w.Min() != Min(xs) || w.Max() != Max(xs) {
			t.Errorf("n=%d: min/max %g/%g vs batch %g/%g", n, w.Min(), w.Max(), Min(xs), Max(xs))
		}
		if w.Last() != xs[n-1] {
			t.Errorf("n=%d: last %g vs %g", n, w.Last(), xs[n-1])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		if !almostEq(w.Sum(), sum, 1e-9) {
			t.Errorf("n=%d: sum %g vs %g", n, w.Sum(), sum)
		}
	}
}

// TestWelfordZeroValue checks the zero value is usable and empty-safe.
func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Stddev() != 0 || w.Min() != 0 || w.Max() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	w.Add(5)
	if w.Stddev() != 0 {
		t.Fatalf("single sample stddev = %g, want 0", w.Stddev())
	}
}

// TestWelfordMerge checks the parallel combine against one accumulator
// that saw the concatenated stream.
func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, split := range []struct{ a, b int }{{0, 10}, {10, 0}, {1, 1}, {7, 93}, {500, 500}} {
		xs := make([]float64, split.a+split.b)
		var all, left, right Welford
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10
			all.Add(xs[i])
			if i < split.a {
				left.Add(xs[i])
			} else {
				right.Add(xs[i])
			}
		}
		left.Merge(right)
		if left.N() != all.N() {
			t.Fatalf("split %v: merged N %d vs %d", split, left.N(), all.N())
		}
		if !almostEq(left.Mean(), all.Mean(), 1e-9) || !almostEq(left.Stddev(), all.Stddev(), 1e-9) {
			t.Errorf("split %v: merged mean/stddev %g/%g vs %g/%g",
				split, left.Mean(), left.Stddev(), all.Mean(), all.Stddev())
		}
		if left.Min() != all.Min() || left.Max() != all.Max() {
			t.Errorf("split %v: merged min/max differ", split)
		}
	}
}

// TestRingQuantileMatchesBatch checks that window percentiles are exactly
// the batch Percentile over the last K samples.
func TestRingQuantileMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const cap = 64
	r := NewRingQuantile(cap)
	var all []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 1000
		r.Add(x)
		all = append(all, x)
		if i%37 != 0 {
			continue
		}
		window := all
		if len(window) > cap {
			window = window[len(window)-cap:]
		}
		if r.N() != len(window) {
			t.Fatalf("i=%d: window fill %d, want %d", i, r.N(), len(window))
		}
		for _, p := range []float64{0, 5, 50, 95, 99, 100} {
			got, want := r.Quantile(p), Percentile(window, p)
			if got != want {
				t.Errorf("i=%d p%g: %g vs batch %g", i, p, got, want)
			}
		}
	}
}

// TestRingQuantileWindowOrder checks eviction order and the raw-window
// accessor.
func TestRingQuantileWindowOrder(t *testing.T) {
	r := NewRingQuantile(3)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Add(x)
	}
	w := r.Window()
	if len(w) != 3 || w[0] != 3 || w[1] != 4 || w[2] != 5 {
		t.Fatalf("window = %v, want [3 4 5]", w)
	}
}

// TestRingQuantileDuplicates exercises eviction with repeated values,
// where removal must drop exactly one copy from the sorted view.
func TestRingQuantileDuplicates(t *testing.T) {
	r := NewRingQuantile(4)
	for _, x := range []float64{2, 2, 2, 1, 2, 2} {
		r.Add(x)
	}
	// Window is [1 2 2 2] after evicting two of the leading 2s.
	if got := r.Quantile(0); got != 1 {
		t.Fatalf("min quantile = %g, want 1", got)
	}
	if got := r.Quantile(100); got != 2 {
		t.Fatalf("max quantile = %g, want 2", got)
	}
	if got, want := r.Quantile(50), Percentile([]float64{1, 2, 2, 2}, 50); got != want {
		t.Fatalf("p50 = %g, want %g", got, want)
	}
}

func TestRingQuantileEmptyAndTiny(t *testing.T) {
	r := NewRingQuantile(0) // clamped to 1
	if r.Quantile(50) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	r.Add(42)
	r.Add(43) // evicts 42 in the size-1 window
	if r.Quantile(50) != 43 || r.N() != 1 {
		t.Fatalf("size-1 window: p50=%g n=%d", r.Quantile(50), r.N())
	}
}

// TestWelfordEdgeCases locks the degenerate-input behavior the validation
// scorecard depends on: empty and single-sample accumulators must divide
// cleanly, empty merges must be identities in both directions, and NaN
// samples must not poison the stream.
func TestWelfordEdgeCases(t *testing.T) {
	t.Run("empty-merge-identity", func(t *testing.T) {
		var a, b Welford
		a.Merge(b) // empty into empty
		if a.N() != 0 || a.Mean() != 0 || a.Stddev() != 0 || a.Sum() != 0 {
			t.Fatalf("empty+empty: n=%d mean=%g sd=%g sum=%g", a.N(), a.Mean(), a.Stddev(), a.Sum())
		}
		a.Add(5)
		a.Merge(b) // empty into loaded: identity
		if a.N() != 1 || a.Mean() != 5 || a.Last() != 5 {
			t.Fatalf("loaded+empty changed state: n=%d mean=%g last=%g", a.N(), a.Mean(), a.Last())
		}
		b.Merge(a) // loaded into empty: copy
		if b.N() != 1 || b.Mean() != 5 || b.Min() != 5 || b.Max() != 5 {
			t.Fatalf("empty+loaded: n=%d mean=%g min=%g max=%g", b.N(), b.Mean(), b.Min(), b.Max())
		}
	})
	t.Run("single-sample", func(t *testing.T) {
		var w Welford
		w.Add(-3)
		if w.Variance() != 0 || w.Stddev() != 0 {
			t.Fatalf("single-sample variance must be 0, got %g", w.Variance())
		}
		if w.Mean() != -3 || w.Min() != -3 || w.Max() != -3 || w.Sum() != -3 {
			t.Fatalf("single-sample aggregates: mean=%g min=%g max=%g sum=%g",
				w.Mean(), w.Min(), w.Max(), w.Sum())
		}
	})
	t.Run("nan-dropped", func(t *testing.T) {
		var w Welford
		w.Add(1)
		w.Add(math.NaN())
		w.Add(3)
		if w.N() != 2 {
			t.Fatalf("NaN must be dropped, n=%d", w.N())
		}
		if w.Mean() != 2 || w.Min() != 1 || w.Max() != 3 || w.Last() != 3 {
			t.Fatalf("post-NaN aggregates: mean=%g min=%g max=%g last=%g",
				w.Mean(), w.Min(), w.Max(), w.Last())
		}
		if math.IsNaN(w.Stddev()) {
			t.Fatal("stddev poisoned by NaN")
		}
	})
}

// TestRingQuantileEdgeCases locks single-sample quantiles, NaN sample and
// NaN percentile handling, and sorted-view integrity after NaN exposure.
func TestRingQuantileEdgeCases(t *testing.T) {
	t.Run("single-sample-all-percentiles", func(t *testing.T) {
		r := NewRingQuantile(8)
		r.Add(7)
		for _, p := range []float64{0, 1, 25, 50, 75, 99, 100} {
			if got := r.Quantile(p); got != 7 {
				t.Fatalf("Quantile(%g) of one sample = %g, want 7", p, got)
			}
		}
	})
	t.Run("nan-sample-dropped", func(t *testing.T) {
		r := NewRingQuantile(4)
		r.Add(2)
		r.Add(math.NaN())
		r.Add(1)
		r.Add(3)
		if r.N() != 3 {
			t.Fatalf("NaN must be dropped, n=%d", r.N())
		}
		// The sorted view must still be intact: correct order statistics.
		if r.Quantile(0) != 1 || r.Quantile(100) != 3 || r.Quantile(50) != 2 {
			t.Fatalf("order statistics broken after NaN: p0=%g p50=%g p100=%g",
				r.Quantile(0), r.Quantile(50), r.Quantile(100))
		}
		// Evictions must keep working (index bookkeeping unharmed).
		r.Add(4)
		r.Add(5)
		if r.N() != 4 || r.Quantile(100) != 5 {
			t.Fatalf("post-NaN eviction broken: n=%d max=%g", r.N(), r.Quantile(100))
		}
	})
	t.Run("nan-percentile", func(t *testing.T) {
		r := NewRingQuantile(4)
		r.Add(1)
		r.Add(2)
		if got := r.Quantile(math.NaN()); got != 0 {
			t.Fatalf("Quantile(NaN) = %g, want 0", got)
		}
	})
}
