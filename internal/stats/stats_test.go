package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Error("even median must interpolate")
	}
	if Median(nil) != 0 {
		t.Error("empty median must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {105, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	// The input must not be reordered.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 {
		t.Error("Percentile mutated its input")
	}
}

func TestStddev(t *testing.T) {
	if !almost(Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("stddev = %g, want 2", Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if Stddev([]float64{5}) != 0 || Stddev(nil) != 0 {
		t.Error("degenerate stddev must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Errorf("summary = %+v", s)
	}
	if s.P5 >= s.P95 {
		t.Error("P5 must be below P95")
	}
}

func TestPctChange(t *testing.T) {
	if !almost(PctChange(200, 230), 15) {
		t.Error("PctChange(200,230) != 15")
	}
	if !almost(PctChange(100, 80), -20) {
		t.Error("PctChange(100,80) != -20")
	}
	if PctChange(0, 5) != 0 {
		t.Error("zero base must give 0")
	}
	// The paper's Table II: 290.51 -> 457.38 is +57.4%.
	if math.Abs(PctChange(290.51, 457.38)-57.4) > 0.1 {
		t.Error("Table II cross-check failed")
	}
}

// Property: min <= p5 <= median <= p95 <= max and min <= mean <= max.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.P5+1e-9 && s.P5 <= s.Median+1e-9 &&
			s.Median <= s.P95+1e-9 && s.P95 <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean and median are translation-equivariant.
func TestTranslationProperty(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = float64(r) + float64(shift)
		}
		return almost(Mean(ys), Mean(xs)+float64(shift)) &&
			almost(Median(ys), Median(xs)+float64(shift)) &&
			math.Abs(Stddev(ys)-Stddev(xs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
