package stats

// Bucket is the mergeable aggregate of all samples falling into one
// downsampling window (a "rung bucket"): count, sum, extrema and the
// last value, each updatable in O(1) per sample and exactly mergeable
// across buckets. It is the payload of the telemetry store's
// pre-computed downsampling rungs — a 1m bucket is the merge of its six
// 10s buckets, which are each the merge of their ten 1s buckets, so the
// coarser rungs never need to re-read raw points. The zero value is an
// empty bucket.
//
// Bucket carries no variance term: the rungs exist to bound query cost,
// and the streaming Welford accumulator on the raw stream already owns
// the lifetime moments. What a rung query needs per window is the
// sample mass (N, Sum), the envelope (Min, Max) and the freshest value
// (Last), all of which merge associatively.
type Bucket struct {
	N    int64   `json:"n"`
	Sum  float64 `json:"sum"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Last float64 `json:"last"`
}

// Add ingests one sample. Callers are expected to have rejected
// non-finite values already (the telemetry store drops them at the
// door); Add itself stays branch-light for the ingest hot path.
func (b *Bucket) Add(x float64) {
	if b.N == 0 {
		b.Min, b.Max = x, x
	} else {
		if x < b.Min {
			b.Min = x
		}
		if x > b.Max {
			b.Max = x
		}
	}
	b.N++
	b.Sum += x
	b.Last = x
}

// Merge folds o into b as if b had also ingested every sample o saw,
// in order after b's own (Last is taken from o when o is non-empty).
func (b *Bucket) Merge(o Bucket) {
	if o.N == 0 {
		return
	}
	if b.N == 0 {
		*b = o
		return
	}
	b.N += o.N
	b.Sum += o.Sum
	if o.Min < b.Min {
		b.Min = o.Min
	}
	if o.Max > b.Max {
		b.Max = o.Max
	}
	b.Last = o.Last
}

// Mean returns Sum/N, or 0 for an empty bucket.
func (b Bucket) Mean() float64 {
	if b.N == 0 {
		return 0
	}
	return b.Sum / float64(b.N)
}
