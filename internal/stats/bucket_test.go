package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBucketAdd(t *testing.T) {
	var b Bucket
	if b.Mean() != 0 {
		t.Fatal("empty bucket mean must be 0")
	}
	for _, x := range []float64{3, -1, 4, 1, 5} {
		b.Add(x)
	}
	if b.N != 5 || b.Sum != 12 || b.Min != -1 || b.Max != 5 || b.Last != 5 {
		t.Fatalf("bucket after adds: %+v", b)
	}
	if got, want := b.Mean(), 12.0/5; got != want {
		t.Fatalf("mean %g, want %g", got, want)
	}
}

// TestBucketMergeEqualsSequential: merging any split of a sample stream
// must equal ingesting the whole stream into one bucket.
func TestBucketMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	var whole Bucket
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 50, 199, 200} {
		var a, b Bucket
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		// Sum is compared with a 1-ulp-scale tolerance: Merge adds the
		// two partial sums in one step, which is exact arithmetic over
		// the parts but not bit-identical to the sequential fold
		// (float addition is not associative).
		if math.Abs(a.Sum-whole.Sum) > 1e-12*math.Abs(whole.Sum) {
			t.Fatalf("cut %d: merged sum %g != sequential %g", cut, a.Sum, whole.Sum)
		}
		a.Sum = whole.Sum
		if a != whole {
			t.Fatalf("cut %d: merged %+v != sequential %+v", cut, a, whole)
		}
	}
}

// TestBucketMergeAssociative: ((a+b)+c) == (a+(b+c)) — the property the
// rung hierarchy relies on (1m = merge of 10s = merge of 1s buckets).
func TestBucketMergeAssociative(t *testing.T) {
	mk := func(xs ...float64) Bucket {
		var b Bucket
		for _, x := range xs {
			b.Add(x)
		}
		return b
	}
	a, b, c := mk(1, 2), mk(7), mk(-3, 0.5, 9)

	left := a
	left.Merge(b)
	left.Merge(c)

	bc := b
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatalf("merge not associative: %+v vs %+v", left, right)
	}
}

func TestBucketMergeEmpty(t *testing.T) {
	var empty Bucket
	full := Bucket{N: 2, Sum: 3, Min: 1, Max: 2, Last: 2}

	got := full
	got.Merge(empty)
	if got != full {
		t.Fatalf("merging empty changed bucket: %+v", got)
	}
	got = empty
	got.Merge(full)
	if got != full {
		t.Fatalf("merging into empty lost data: %+v", got)
	}
}
