// Package stats provides the summary statistics used by the experiment
// drivers and the monitoring tools: mean, median, standard deviation and
// percentiles over float64 series.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the 50th percentile, or 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0-100) using linear
// interpolation between closest ranks; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Stddev returns the population standard deviation, or 0 for fewer than
// two samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the descriptive statistics of a series.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Stddev float64
	Min    float64
	Max    float64
	P5     float64
	P95    float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P5:     Percentile(xs, 5),
		P95:    Percentile(xs, 95),
	}
}

// PctChange returns the percentage change from a to b: (b-a)/a * 100.
func PctChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}
