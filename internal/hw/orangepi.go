package hw

// OrangePi800 returns the machine description of the paper's ARM big.LITTLE
// system (Table IV): an Orange Pi 800 keyboard computer built around the
// Rockchip RK3399 SoC with two Cortex-A72 "big" cores at up to 1.8 GHz and
// four Cortex-A53 "LITTLE" cores at up to 1.4 GHz, with 4 GB of LPDDR4.
//
// Logical CPU enumeration follows the real RK3399 device tree: cpu0-cpu3 are
// the LITTLE cluster, cpu4-cpu5 the big cluster.
//
// The thermal constants model the passively cooled keyboard case: the big
// cores running HPL push the SoC past the 85 degC passive trip within
// seconds, so they throttle hard while the LITTLE cluster can sustain its
// maximum frequency — which is what makes four LITTLE cores complete HPL
// faster than two big cores (Figures 3 and 4).
func OrangePi800() *Machine {
	little := CoreType{
		Name:                 "LITTLE",
		Microarch:            "Cortex-A53",
		PfmName:              "arm_cortex_a53",
		Class:                Efficiency,
		PMU:                  PMUSpec{Name: "armv8_cortex_a53", PerfType: 8, NumGP: 6, NumFixed: 1, FixedEvents: []string{"cycles"}},
		MinFreqMHz:           408,
		MaxFreqMHz:           1416,
		BaseFreqMHz:          1416,
		FreqStepMHz:          204, // RK3399 OPP table granularity
		ThreadsPerCore:       1,
		FlopsPerCycle:        4, // single 128-bit NEON pipe, in-order
		HPLEfficiency:        0.70,
		BaseIPC:              1.0,
		IssueWidth:           2,
		VecFlopsPerInstr:     4,
		SMTThroughput:        1.0,
		Capacity:             485, // capacity-dmips-mhz from the RK3399 device tree
		IdleWatts:            0.03,
		DynWattsAtMax:        0.40,
		SpinActivity:         0.30,
		L1DKB:                32,
		L2KB:                 512,
		LLCMissPenaltyCycles: 140, // DRAM ~100 ns at 1.4 GHz
	}
	big := CoreType{
		Name:                 "big",
		Microarch:            "Cortex-A72",
		PfmName:              "arm_cortex_a72",
		Class:                Performance,
		PMU:                  PMUSpec{Name: "armv8_cortex_a72", PerfType: 9, NumGP: 6, NumFixed: 1, FixedEvents: []string{"cycles"}},
		MinFreqMHz:           408,
		MaxFreqMHz:           1800,
		BaseFreqMHz:          1800,
		FreqStepMHz:          204,
		ThreadsPerCore:       1,
		FlopsPerCycle:        8, // 2x 128-bit NEON FMA pipes, out-of-order
		HPLEfficiency:        0.80,
		BaseIPC:              1.8,
		IssueWidth:           3,
		VecFlopsPerInstr:     4,
		SMTThroughput:        1.0,
		Capacity:             1024,
		IdleWatts:            0.05,
		DynWattsAtMax:        3.0,
		SpinActivity:         0.25,
		L1DKB:                32,
		L2KB:                 1024,
		LLCMissPenaltyCycles: 180, // DRAM ~100 ns at 1.8 GHz
	}

	m := &Machine{
		Name:     "orangepi800",
		Vendor:   "Rockchip",
		CPUModel: "Rockchip RK3399",
		Arch:     "aarch64",
		Family:   8, // reported as CPU architecture 8 in /proc/cpuinfo
		Model:    0xd08,
		Stepping: 2,
		Types:    []CoreType{little, big},
		MemoryGB: 4,
		LLCKB:    1024, // big-cluster L2 acts as the largest shared cache
		Power: PowerSpec{
			HasRAPL:      false,
			UncoreWatts:  0.8, // memory controller, GPU idle, board logic
			ACLossWatts:  2.5, // PSU and board overhead seen by the WattsUpPro
			ACEfficiency: 0.85,
		},
		Thermal: ThermalSpec{
			ZoneName:         "soc-thermal",
			ZoneIndex:        0,
			AmbientC:         25,
			CapacitanceJPerC: 0.45, // bare SoC die: heats within seconds
			ResistanceCPerW:  22.5,
			TjMaxC:           115,
			PassiveTripC:     85,
			ThrottleFloorMHz: map[string]float64{"big": 408, "LITTLE": 816},
		},
		HasCPUCapacity: true,
		HasCPUID:       false,
	}

	// LITTLE cluster first (cpu0-cpu3), then the big cluster (cpu4-cpu5).
	for i := 0; i < 4; i++ {
		m.CPUs = append(m.CPUs, CPU{ID: i, TypeIndex: 0, PhysCore: i, SMTIndex: 0})
	}
	for i := 0; i < 2; i++ {
		m.CPUs = append(m.CPUs, CPU{ID: 4 + i, TypeIndex: 1, PhysCore: 4 + i, SMTIndex: 0})
	}
	return m
}
