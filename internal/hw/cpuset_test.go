package hw

import (
	"testing"
	"testing/quick"
)

func TestCPUSetBasics(t *testing.T) {
	s := NewCPUSet(0, 2, 4)
	if !s.Has(0) || !s.Has(2) || !s.Has(4) || s.Has(1) || s.Has(3) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	s = s.Remove(2)
	if s.Has(2) || s.Count() != 2 {
		t.Fatalf("Remove failed: %v", s)
	}
	if !s.Remove(99).Has(0) {
		t.Fatal("removing out-of-range must not disturb the set")
	}
	if NewCPUSet().Count() != 0 || !NewCPUSet().Empty() {
		t.Fatal("empty set wrong")
	}
	if s.Empty() {
		t.Fatal("non-empty set reports Empty")
	}
}

func TestCPUSetOutOfRange(t *testing.T) {
	s := NewCPUSet(-1, 64, 1000)
	if !s.Empty() {
		t.Fatalf("out-of-range ids must be ignored: %v", s)
	}
	if s.Has(-1) || s.Has(64) {
		t.Fatal("Has must reject out-of-range ids")
	}
}

func TestCPUSetOps(t *testing.T) {
	a := NewCPUSet(0, 1, 2)
	b := NewCPUSet(2, 3)
	if got := a.Intersect(b); got != NewCPUSet(2) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b); got != NewCPUSet(0, 1, 2, 3) {
		t.Fatalf("Union = %v", got)
	}
}

func TestCPUSetString(t *testing.T) {
	cases := []struct {
		s    CPUSet
		want string
	}{
		{NewCPUSet(), "(empty)"},
		{NewCPUSet(3), "3"},
		{NewCPUSet(0, 1, 2, 3), "0-3"},
		{NewCPUSet(0, 2, 4, 16, 17, 18), "0,2,4,16-18"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String(%b) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestAllCPUs(t *testing.T) {
	m := RaptorLake()
	all := AllCPUs(m)
	if all.Count() != 24 {
		t.Fatalf("AllCPUs count = %d", all.Count())
	}
	if !all.Has(0) || !all.Has(23) || all.Has(24) {
		t.Fatal("AllCPUs membership wrong")
	}
}

// Property: IDs returns exactly the added unique in-range ids, sorted.
func TestCPUSetIDsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var s CPUSet
		want := map[int]bool{}
		for _, r := range raw {
			id := int(r) % 80 // include some out-of-range
			s = s.Add(id)
			if id < MaxCPUs {
				want[id] = true
			}
		}
		ids := s.IDs()
		if len(ids) != len(want) {
			return false
		}
		prev := -1
		for _, id := range ids {
			if !want[id] || id <= prev {
				return false
			}
			prev = id
		}
		return s.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
