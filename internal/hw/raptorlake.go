package hw

// RaptorLake returns the machine description of the paper's desktop system
// (Table I): a 13th Gen Intel Core i7-13700 with 8 P-cores (16 threads,
// 2.10-5.10 GHz), 8 E-cores (1.50-4.10 GHz) and 32 GB of DDR5.
//
// Logical CPU enumeration follows the artifact appendix: P-core hardware
// threads occupy logical CPUs 0-15 (sibling pairs (0,1), (2,3), ...) and the
// E-cores occupy logical CPUs 16-23, which is why the paper's monitoring
// script pins to "0,2,4,6,8,10,12,14,16-24".
//
// The power and thermal constants are calibrated so that the simulated
// machine lands near the paper's headline numbers: a 65 W long-term (PL1)
// and 219 W short-term (PL2) package power limit, and enough cooling that
// the package never reaches its 100 degC limit (the paper notes both HPL
// variants are power- rather than thermally-limited on this system).
func RaptorLake() *Machine {
	pcore := CoreType{
		Name:                 "P-core",
		Microarch:            "RaptorCove",
		PfmName:              "adl_glc",
		Class:                Performance,
		PMU:                  PMUSpec{Name: "cpu_core", PerfType: 8, NumGP: 8, NumFixed: 3, FixedEvents: []string{"instructions", "cycles", "ref-cycles"}},
		MinFreqMHz:           800,
		MaxFreqMHz:           5100,
		BaseFreqMHz:          2100,
		FreqStepMHz:          100,
		ThreadsPerCore:       2,
		FlopsPerCycle:        16, // 2x 256-bit FMA pipes, double precision
		HPLEfficiency:        0.95,
		BaseIPC:              2.4,
		IssueWidth:           6,
		VecFlopsPerInstr:     8,
		SMTThroughput:        0.62,
		Capacity:             1024,
		IdleWatts:            0.6,
		DynWattsAtMax:        24.7,
		SpinActivity:         0.18,
		L1DKB:                48,
		L2KB:                 2048,
		LLCMissPenaltyCycles: 260, // DRAM ~51 ns at 5.1 GHz
	}
	ecore := CoreType{
		Name:                 "E-core",
		Microarch:            "Gracemont",
		PfmName:              "adl_grt",
		Class:                Efficiency,
		PMU:                  PMUSpec{Name: "cpu_atom", PerfType: 10, NumGP: 6, NumFixed: 3, FixedEvents: []string{"instructions", "cycles", "ref-cycles"}},
		MinFreqMHz:           800,
		MaxFreqMHz:           4100,
		BaseFreqMHz:          1500,
		FreqStepMHz:          100,
		ThreadsPerCore:       1,
		FlopsPerCycle:        8, // 2x 128-bit FMA equivalent throughput
		HPLEfficiency:        0.97,
		BaseIPC:              1.7,
		IssueWidth:           5,
		VecFlopsPerInstr:     8,
		SMTThroughput:        1.0,
		Capacity:             450,
		IdleWatts:            0.3,
		DynWattsAtMax:        12.0,
		SpinActivity:         0.22,
		L1DKB:                32,
		L2KB:                 1024,
		LLCMissPenaltyCycles: 210, // DRAM ~51 ns at 4.1 GHz
	}

	m := &Machine{
		Name:     "raptorlake",
		Vendor:   "GenuineIntel",
		CPUModel: "13th Gen Intel(R) Core(TM) i7-13700",
		Arch:     "x86_64",
		Family:   6,
		Model:    0xB7, // Raptor Lake-S: family 6 model 183
		Stepping: 1,
		Types:    []CoreType{pcore, ecore},
		Uncore: []UncorePMU{
			{PMU: PMUSpec{Name: "uncore_imc", PerfType: 24, NumGP: 5}, PfmName: "adl_imc"},
		},
		MemoryGB: 32,
		LLCKB:    30 * 1024,
		Power: PowerSpec{
			HasRAPL:      true,
			PL1Watts:     65,
			PL2Watts:     219,
			PL1TauSec:    28,
			PL2BudgetJ:   1600, // roughly PL2 headroom for the initial spike
			UncoreWatts:  10,
			EnergyUnitJ:  1.0 / 16384, // 2^-14 J, the usual RAPL unit
			ACLossWatts:  8,
			ACEfficiency: 0.88,
			RAPLPerfType: 22,
		},
		Thermal: ThermalSpec{
			ZoneName:         "x86_pkg_temp",
			ZoneIndex:        9, // thermal_zone9 per the artifact appendix
			AmbientC:         25,
			CapacitanceJPerC: 120, // desktop tower cooler mass
			ResistanceCPerW:  0.35,
			TjMaxC:           100,
			PassiveTripC:     0, // power limits dominate; no passive trip
		},
		HasCPUCapacity: false,
		HasCPUID:       true,
	}

	// 8 P-cores with SMT siblings on logical CPUs (2i, 2i+1).
	for i := 0; i < 8; i++ {
		m.CPUs = append(m.CPUs,
			CPU{ID: 2 * i, TypeIndex: 0, PhysCore: i, SMTIndex: 0},
			CPU{ID: 2*i + 1, TypeIndex: 0, PhysCore: i, SMTIndex: 1})
	}
	// 8 single-threaded E-cores on logical CPUs 16-23.
	for j := 0; j < 8; j++ {
		m.CPUs = append(m.CPUs,
			CPU{ID: 16 + j, TypeIndex: 1, PhysCore: 8 + j, SMTIndex: 0})
	}
	return m
}
