package hw

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUSet is an affinity mask over logical CPUs, like the mask taskset
// manipulates. Machines in this simulator have at most 64 logical CPUs.
type CPUSet uint64

// MaxCPUs is the largest logical CPU id a CPUSet can hold plus one.
const MaxCPUs = 64

// NewCPUSet returns a set containing the given CPU ids.
func NewCPUSet(ids ...int) CPUSet {
	var s CPUSet
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// AllCPUs returns the set of every logical CPU of the machine.
func AllCPUs(m *Machine) CPUSet {
	return NewCPUSet(rangeInts(m.NumCPUs())...)
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Add returns the set with id included. Out-of-range ids are ignored.
func (s CPUSet) Add(id int) CPUSet {
	if id < 0 || id >= MaxCPUs {
		return s
	}
	return s | 1<<uint(id)
}

// Remove returns the set with id excluded.
func (s CPUSet) Remove(id int) CPUSet {
	if id < 0 || id >= MaxCPUs {
		return s
	}
	return s &^ (1 << uint(id))
}

// Has reports whether id is in the set.
func (s CPUSet) Has(id int) bool {
	return id >= 0 && id < MaxCPUs && s&(1<<uint(id)) != 0
}

// Count returns the number of CPUs in the set.
func (s CPUSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no CPUs.
func (s CPUSet) Empty() bool { return s == 0 }

// Intersect returns the CPUs present in both sets.
func (s CPUSet) Intersect(other CPUSet) CPUSet { return s & other }

// Union returns the CPUs present in either set.
func (s CPUSet) Union(other CPUSet) CPUSet { return s | other }

// IDs returns the CPU ids in the set, ascending.
func (s CPUSet) IDs() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		id := bits.TrailingZeros64(v)
		out = append(out, id)
		v &^= 1 << uint(id)
	}
	return out
}

// String renders the set in cpulist style ("0-3,16").
func (s CPUSet) String() string {
	ids := s.IDs()
	if len(ids) == 0 {
		return "(empty)"
	}
	var parts []string
	start, prev := ids[0], ids[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, id := range ids[1:] {
		if id == prev+1 {
			prev = id
			continue
		}
		flush()
		start, prev = id, id
	}
	flush()
	return strings.Join(parts, ",")
}
