package hw

// Homogeneous returns a traditional single-core-type machine (a generic
// 4-core/8-thread Skylake-class desktop). The paper uses such systems as the
// baseline: on a traditional machine a single-PMU EventSet already measures
// everything, so the hybrid test returns the expected count without any of
// the multi-PMU machinery.
func Homogeneous() *Machine {
	core := CoreType{
		Name:                 "core",
		Microarch:            "Skylake",
		PfmName:              "skl",
		Class:                Performance,
		PMU:                  PMUSpec{Name: "cpu", PerfType: 6, NumGP: 4, NumFixed: 3, FixedEvents: []string{"instructions", "cycles", "ref-cycles"}},
		MinFreqMHz:           800,
		MaxFreqMHz:           4200,
		BaseFreqMHz:          3600,
		FreqStepMHz:          100,
		ThreadsPerCore:       2,
		FlopsPerCycle:        16,
		HPLEfficiency:        0.90,
		BaseIPC:              2.0,
		IssueWidth:           4,
		VecFlopsPerInstr:     8,
		SMTThroughput:        0.65,
		Capacity:             1024,
		IdleWatts:            0.8,
		DynWattsAtMax:        18,
		SpinActivity:         0.20,
		L1DKB:                32,
		L2KB:                 256,
		LLCMissPenaltyCycles: 230, // DRAM ~55 ns at 4.2 GHz
	}
	m := &Machine{
		Name:     "homogeneous",
		Vendor:   "GenuineIntel",
		CPUModel: "Generic Skylake Desktop",
		Arch:     "x86_64",
		Family:   6,
		Model:    0x5E,
		Stepping: 3,
		Types:    []CoreType{core},
		MemoryGB: 16,
		LLCKB:    8 * 1024,
		Power: PowerSpec{
			HasRAPL:      true,
			PL1Watts:     65,
			PL2Watts:     90,
			PL1TauSec:    28,
			PL2BudgetJ:   500,
			UncoreWatts:  6,
			EnergyUnitJ:  1.0 / 16384,
			ACLossWatts:  8,
			ACEfficiency: 0.88,
			RAPLPerfType: 20,
		},
		Thermal: ThermalSpec{
			ZoneName:         "x86_pkg_temp",
			ZoneIndex:        2,
			AmbientC:         25,
			CapacitanceJPerC: 100,
			ResistanceCPerW:  0.5,
			TjMaxC:           100,
			PassiveTripC:     0,
		},
		HasCPUCapacity: false,
		HasCPUID:       true,
	}
	for i := 0; i < 4; i++ {
		m.CPUs = append(m.CPUs,
			CPU{ID: 2 * i, TypeIndex: 0, PhysCore: i, SMTIndex: 0},
			CPU{ID: 2*i + 1, TypeIndex: 0, PhysCore: i, SMTIndex: 1})
	}
	return m
}
