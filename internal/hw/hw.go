// Package hw describes simulated heterogeneous machines: core types, CPU
// topology, PMU capabilities, and the power/thermal constants that drive the
// physical models in internal/power, internal/thermal and internal/dvfs.
//
// Everything in this package is plain data. The two machines evaluated in the
// paper are provided as presets: RaptorLake (an Intel i7-13700 desktop with
// 8 P-cores and 8 E-cores) and OrangePi800 (a Rockchip RK3399 with 2 ARM
// Cortex-A72 "big" and 4 Cortex-A53 "LITTLE" cores).
package hw

import (
	"fmt"
	"sort"
)

// CoreClass is the coarse role of a core type inside a hybrid processor.
type CoreClass int

const (
	// Performance marks the fast, power-hungry cores (Intel P-core, ARM big).
	Performance CoreClass = iota
	// Efficiency marks the small, power-efficient cores (Intel E-core, ARM LITTLE).
	Efficiency
)

// String returns "performance" or "efficiency".
func (c CoreClass) String() string {
	switch c {
	case Performance:
		return "performance"
	case Efficiency:
		return "efficiency"
	default:
		return fmt.Sprintf("CoreClass(%d)", int(c))
	}
}

// PMUSpec describes the performance monitoring unit of one core type as the
// kernel exports it: a name (the /sys/devices/<name> directory), a dynamic
// perf event type id, and the counter inventory that bounds how many events
// can be scheduled simultaneously before multiplexing kicks in.
type PMUSpec struct {
	// Name is the kernel PMU name, e.g. "cpu_core", "cpu_atom",
	// "armv8_cortex_a72".
	Name string
	// PerfType is the dynamic perf event type id exported in
	// /sys/devices/<Name>/type. Values below 6 are reserved for the static
	// perf_event types (hardware, software, tracepoint, hw-cache, raw,
	// breakpoint).
	PerfType uint32
	// NumGP is the number of general-purpose programmable counters.
	NumGP int
	// NumFixed is the number of fixed-function counters (instructions,
	// cycles, ref-cycles on Intel).
	NumFixed int
	// FixedEvents names the quantity each fixed-function counter serves,
	// in counter order ("instructions", "cycles", "ref-cycles" on Intel
	// cores, just "cycles" for the dedicated ARM cycle counter). The NMI
	// watchdog pins the PMU's fixed cycles counter when one exists;
	// otherwise it consumes a general-purpose counter, which is why a
	// watchdog reservation degrades different core types differently.
	FixedEvents []string
}

// HasFixed reports whether one of the PMU's fixed-function counters
// serves the named quantity.
func (p *PMUSpec) HasFixed(event string) bool {
	for _, e := range p.FixedEvents {
		if e == event {
			return true
		}
	}
	return false
}

// CoreType describes one kind of core in a hybrid processor, including its
// microarchitectural performance envelope and its contribution to the power
// model.
type CoreType struct {
	// Name is the human-readable core type name ("P-core", "E-core", "big",
	// "LITTLE").
	Name string
	// Microarch is the microarchitecture name ("RaptorCove", "Gracemont",
	// "Cortex-A72", "Cortex-A53").
	Microarch string
	// PfmName is the libpfm4-style PMU model name used in event strings,
	// e.g. "adl_glc" for the Alder/Raptor Lake GoldenCove P-core.
	PfmName string
	// Class is Performance or Efficiency.
	Class CoreClass
	// PMU describes the core type's performance monitoring unit.
	PMU PMUSpec

	// MinFreqMHz and MaxFreqMHz bound the DVFS range; BaseFreqMHz is the
	// guaranteed sustained frequency.
	MinFreqMHz  float64
	MaxFreqMHz  float64
	BaseFreqMHz float64
	// FreqStepMHz is the DVFS step granularity (P-states are multiples of
	// the bus clock, typically 100 MHz on Intel).
	FreqStepMHz float64

	// ThreadsPerCore is the SMT width (2 for Intel P-cores, 1 elsewhere).
	ThreadsPerCore int

	// FlopsPerCycle is the peak double-precision FLOPs retired per cycle by
	// the vector units (FMA counted as two).
	FlopsPerCycle float64
	// HPLEfficiency is the fraction of peak a well-tuned DGEMM sustains on
	// this core type.
	HPLEfficiency float64
	// BaseIPC is the retired instructions per cycle for generic scalar
	// integer work (used by non-HPL workloads and spin loops).
	BaseIPC float64
	// IssueWidth is the pipeline issue width (topdown slots per cycle).
	IssueWidth float64
	// VecFlopsPerInstr is how many double-precision FLOPs one packed
	// vector FMA instruction retires (8 for 256-bit, 4 for 128-bit).
	VecFlopsPerInstr float64
	// SMTThroughput is the per-thread throughput factor when both SMT
	// siblings of a core are busy (1.0 means no contention).
	SMTThroughput float64

	// Capacity is the scheduler capacity value in 0..1024 exported via
	// /sys/devices/system/cpu/cpuX/cpu_capacity on ARM systems.
	Capacity int

	// IdleWatts is the per-core idle (C0 residency floor) power.
	IdleWatts float64
	// DynWattsAtMax is the per-core dynamic power at maximum frequency under
	// full vector load. Dynamic power scales as (f/fmax)^3 (voltage tracks
	// frequency approximately linearly in the DVFS range).
	DynWattsAtMax float64
	// SpinActivity is the activity factor of a spin-wait loop relative to
	// full vector load (spinning burns far less power than FMA streams).
	SpinActivity float64

	// L1DKB, L2KB are per-core private cache sizes in KiB (L2 shared per
	// 4-core cluster on E-cores and A53s, but modeled per-core here).
	L1DKB int
	L2KB  int

	// LLCMissPenaltyCycles is the average core-cycle cost of a load that
	// misses all the way to DRAM (memory latency expressed in core cycles
	// at the type's typical operating point). Memory-bound workloads with
	// analytically known miss counts (workload.Stride) derive their
	// effective CPI from it, which makes it a calibration knob: fitting it
	// against a measured strided-access rate pins the machine model's
	// memory latency. Zero selects a conservative default (200 cycles).
	LLCMissPenaltyCycles float64
}

// CPU is one logical CPU (a hardware thread).
type CPU struct {
	// ID is the logical CPU number as the OS sees it.
	ID int
	// TypeIndex indexes Machine.Types.
	TypeIndex int
	// PhysCore is the physical core id this thread belongs to.
	PhysCore int
	// SMTIndex is 0 for the first thread of a core, 1 for its sibling.
	SMTIndex int
}

// PowerSpec holds the package-level power model constants.
type PowerSpec struct {
	// HasRAPL reports whether the package exposes RAPL energy counters
	// (Intel only; the OrangePi is measured at the wall instead).
	HasRAPL bool
	// PL1Watts is the long-term (sustained) package power limit.
	PL1Watts float64
	// PL2Watts is the short-term (turbo) package power limit.
	PL2Watts float64
	// PL1TauSec is the time constant of the exponentially weighted power
	// average RAPL compares against PL1.
	PL1TauSec float64
	// PL2BudgetJ is the energy budget above PL1 that may be spent at up to
	// PL2 before the governor clamps to PL1 (models the turbo window).
	PL2BudgetJ float64
	// UncoreWatts is the constant package power outside the cores (ring,
	// LLC, memory controller).
	UncoreWatts float64
	// EnergyUnitJ is the RAPL energy counter granularity in joules
	// (2^-14 J on real Intel parts).
	EnergyUnitJ float64
	// ACLossWatts and ACEfficiency model the wall-power meter reading:
	// wall = pkg/ACEfficiency + ACLossWatts.
	ACLossWatts  float64
	ACEfficiency float64
	// RAPLPerfType is the dynamic perf type id of the "power" PMU
	// (0 when HasRAPL is false).
	RAPLPerfType uint32
}

// ThermalSpec holds the lumped RC thermal model constants for the package
// thermal zone.
type ThermalSpec struct {
	// ZoneName is the thermal zone type string ("x86_pkg_temp",
	// "soc-thermal").
	ZoneName string
	// ZoneIndex is the /sys/class/thermal/thermal_zoneN index.
	ZoneIndex int
	// AmbientC is the ambient (and initial idle) temperature.
	AmbientC float64
	// CapacitanceJPerC and ResistanceCPerW define the RC response:
	// C dT/dt = P - (T - ambient)/R.
	CapacitanceJPerC float64
	ResistanceCPerW  float64
	// TjMaxC is the maximum allowed junction temperature.
	TjMaxC float64
	// PassiveTripC is the temperature at which the governor starts passive
	// throttling (0 disables passive throttling, as on well-cooled
	// desktops that are power- rather than thermally-limited).
	PassiveTripC float64
	// ThrottleFloorMHz caps how far passive throttling may push the
	// Performance-class cores down (per core type name).
	ThrottleFloorMHz map[string]float64
}

// UncorePMU describes a non-core, non-RAPL PMU of the package (memory
// controller, cache-home agents, ...). Uncore events are package-scope:
// they are opened CPU-wide and count activity from every core.
type UncorePMU struct {
	// PMU is the kernel-side name and dynamic perf type.
	PMU PMUSpec
	// PfmName is the event-table model name.
	PfmName string
}

// Machine is a complete description of a simulated system.
type Machine struct {
	// Name is a short identifier ("raptorlake", "orangepi800").
	Name string
	// Vendor and CPUModel are reported through /proc/cpuinfo and
	// the hardware info API.
	Vendor   string
	CPUModel string
	// Arch is "x86_64" or "aarch64".
	Arch string
	// Family, Model, Stepping are the CPUID-style identification values.
	// On Intel hybrids all core types share one triple (which is exactly
	// why family/model based preset tables break, per §V.2 of the paper).
	Family, Model, Stepping int

	// Types lists the core types present. Homogeneous machines have one.
	Types []CoreType
	// CPUs lists the logical CPUs in OS enumeration order.
	CPUs []CPU

	// MemoryGB is the installed memory.
	MemoryGB float64
	// LLCKB is the shared last-level cache size in KiB.
	LLCKB int

	// Uncore lists the package's uncore PMUs (may be empty).
	Uncore []UncorePMU

	// Power and Thermal hold the physical model constants.
	Power   PowerSpec
	Thermal ThermalSpec

	// HasCPUCapacity reports whether /sys/.../cpu_capacity files exist
	// (ARM arch_topology feature; absent on x86).
	HasCPUCapacity bool
	// HasCPUID reports whether the CPUID hybrid leaf (0x1A) is available.
	HasCPUID bool
}

// Clone returns a deep copy of the machine sharing no mutable state with
// the original: Types, CPUs, Uncore and the thermal throttle-floor map
// all get fresh backing storage. Calibration loops clone a base model and
// perturb the copy's parameters per fitting iteration, so a candidate
// machine can never leak its knob values into the published preset.
func (m *Machine) Clone() *Machine {
	out := *m
	out.Types = append([]CoreType(nil), m.Types...)
	for i := range out.Types {
		out.Types[i].PMU.FixedEvents = append([]string(nil), m.Types[i].PMU.FixedEvents...)
	}
	out.CPUs = append([]CPU(nil), m.CPUs...)
	out.Uncore = append([]UncorePMU(nil), m.Uncore...)
	for i := range out.Uncore {
		out.Uncore[i].PMU.FixedEvents = append([]string(nil), m.Uncore[i].PMU.FixedEvents...)
	}
	if m.Thermal.ThrottleFloorMHz != nil {
		out.Thermal.ThrottleFloorMHz = make(map[string]float64, len(m.Thermal.ThrottleFloorMHz))
		for k, v := range m.Thermal.ThrottleFloorMHz {
			out.Thermal.ThrottleFloorMHz[k] = v
		}
	}
	return &out
}

// Hybrid reports whether the machine has more than one core type.
func (m *Machine) Hybrid() bool { return len(m.Types) > 1 }

// NumCPUs returns the number of logical CPUs.
func (m *Machine) NumCPUs() int { return len(m.CPUs) }

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int {
	seen := map[int]bool{}
	for _, c := range m.CPUs {
		seen[c.PhysCore] = true
	}
	return len(seen)
}

// TypeOf returns the core type of logical CPU id.
func (m *Machine) TypeOf(cpu int) *CoreType {
	return &m.Types[m.CPUs[cpu].TypeIndex]
}

// TypeByName returns the core type with the given Name, or nil.
func (m *Machine) TypeByName(name string) *CoreType {
	for i := range m.Types {
		if m.Types[i].Name == name {
			return &m.Types[i]
		}
	}
	return nil
}

// TypeByPMU returns the core type whose kernel PMU has the given name, or nil.
func (m *Machine) TypeByPMU(pmu string) *CoreType {
	for i := range m.Types {
		if m.Types[i].PMU.Name == pmu {
			return &m.Types[i]
		}
	}
	return nil
}

// TypeByPerfType returns the core type whose PMU has the given dynamic perf
// type id, or nil.
func (m *Machine) TypeByPerfType(t uint32) *CoreType {
	for i := range m.Types {
		if m.Types[i].PMU.PerfType == t {
			return &m.Types[i]
		}
	}
	return nil
}

// UncoreByPerfType returns the uncore PMU with the given dynamic perf
// type id, or nil.
func (m *Machine) UncoreByPerfType(t uint32) *UncorePMU {
	for i := range m.Uncore {
		if m.Uncore[i].PMU.PerfType == t {
			return &m.Uncore[i]
		}
	}
	return nil
}

// CPUsOfType returns the logical CPU ids belonging to the named core type,
// in ascending order.
func (m *Machine) CPUsOfType(name string) []int {
	var out []int
	for _, c := range m.CPUs {
		if m.Types[c.TypeIndex].Name == name {
			out = append(out, c.ID)
		}
	}
	sort.Ints(out)
	return out
}

// CPUsOfClass returns the logical CPU ids whose core type has the given
// class.
func (m *Machine) CPUsOfClass(class CoreClass) []int {
	var out []int
	for _, c := range m.CPUs {
		if m.Types[c.TypeIndex].Class == class {
			out = append(out, c.ID)
		}
	}
	sort.Ints(out)
	return out
}

// SiblingOf returns the logical CPU id of the SMT sibling of cpu, or -1 if
// the core is single-threaded.
func (m *Machine) SiblingOf(cpu int) int {
	pc := m.CPUs[cpu].PhysCore
	for _, c := range m.CPUs {
		if c.PhysCore == pc && c.ID != cpu {
			return c.ID
		}
	}
	return -1
}

// FirstCPUPerCore returns one logical CPU id per physical core (the
// SMTIndex-0 thread), mirroring "one thread per core" HPL pinning.
func (m *Machine) FirstCPUPerCore() []int {
	var out []int
	for _, c := range m.CPUs {
		if c.SMTIndex == 0 {
			out = append(out, c.ID)
		}
	}
	sort.Ints(out)
	return out
}

// PeakGflops returns the theoretical peak double-precision Gflop/s of the
// listed CPUs at their maximum frequencies, counting each physical core once.
func (m *Machine) PeakGflops(cpus []int) float64 {
	seen := map[int]bool{}
	var total float64
	for _, id := range cpus {
		c := m.CPUs[id]
		if seen[c.PhysCore] {
			continue
		}
		seen[c.PhysCore] = true
		t := m.Types[c.TypeIndex]
		total += t.MaxFreqMHz * 1e6 * t.FlopsPerCycle / 1e9
	}
	return total
}

// Validate checks internal consistency of the machine description.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("hw: machine has no name")
	}
	if len(m.Types) == 0 {
		return fmt.Errorf("hw: machine %q has no core types", m.Name)
	}
	if len(m.CPUs) == 0 {
		return fmt.Errorf("hw: machine %q has no CPUs", m.Name)
	}
	seenPMU := map[string]bool{}
	seenType := map[uint32]bool{}
	for i, t := range m.Types {
		if t.Name == "" || t.PMU.Name == "" || t.PfmName == "" {
			return fmt.Errorf("hw: core type %d of %q is missing names", i, m.Name)
		}
		if t.PMU.PerfType < 6 {
			return fmt.Errorf("hw: PMU %q has reserved perf type %d (<6)", t.PMU.Name, t.PMU.PerfType)
		}
		if seenPMU[t.PMU.Name] {
			return fmt.Errorf("hw: duplicate PMU name %q", t.PMU.Name)
		}
		if seenType[t.PMU.PerfType] {
			return fmt.Errorf("hw: duplicate perf type %d", t.PMU.PerfType)
		}
		seenPMU[t.PMU.Name] = true
		seenType[t.PMU.PerfType] = true
		if t.MinFreqMHz <= 0 || t.MaxFreqMHz < t.MinFreqMHz {
			return fmt.Errorf("hw: core type %q has invalid frequency range [%g, %g]",
				t.Name, t.MinFreqMHz, t.MaxFreqMHz)
		}
		if t.BaseFreqMHz < t.MinFreqMHz || t.BaseFreqMHz > t.MaxFreqMHz {
			return fmt.Errorf("hw: core type %q base frequency %g outside [%g, %g]",
				t.Name, t.BaseFreqMHz, t.MinFreqMHz, t.MaxFreqMHz)
		}
		if t.ThreadsPerCore < 1 || t.ThreadsPerCore > 2 {
			return fmt.Errorf("hw: core type %q has unsupported SMT width %d", t.Name, t.ThreadsPerCore)
		}
		if t.FlopsPerCycle <= 0 || t.HPLEfficiency <= 0 || t.HPLEfficiency > 1 {
			return fmt.Errorf("hw: core type %q has invalid FLOP model", t.Name)
		}
		if t.PMU.NumGP < 1 {
			return fmt.Errorf("hw: PMU %q has no programmable counters", t.PMU.Name)
		}
		if len(t.PMU.FixedEvents) > t.PMU.NumFixed {
			return fmt.Errorf("hw: PMU %q names %d fixed events but has %d fixed counters",
				t.PMU.Name, len(t.PMU.FixedEvents), t.PMU.NumFixed)
		}
	}
	for _, u := range m.Uncore {
		if u.PMU.Name == "" || u.PfmName == "" {
			return fmt.Errorf("hw: uncore PMU of %q is missing names", m.Name)
		}
		if seenPMU[u.PMU.Name] {
			return fmt.Errorf("hw: duplicate PMU name %q", u.PMU.Name)
		}
		if seenType[u.PMU.PerfType] || u.PMU.PerfType < 6 {
			return fmt.Errorf("hw: uncore perf type %d invalid or colliding", u.PMU.PerfType)
		}
		seenPMU[u.PMU.Name] = true
		seenType[u.PMU.PerfType] = true
	}
	if m.Power.HasRAPL {
		if seenType[m.Power.RAPLPerfType] || m.Power.RAPLPerfType < 6 {
			return fmt.Errorf("hw: RAPL perf type %d invalid or colliding", m.Power.RAPLPerfType)
		}
		if m.Power.PL1Watts <= 0 || m.Power.PL2Watts < m.Power.PL1Watts {
			return fmt.Errorf("hw: invalid power limits PL1=%g PL2=%g", m.Power.PL1Watts, m.Power.PL2Watts)
		}
	}
	if len(m.CPUs) > MaxCPUs {
		return fmt.Errorf("hw: machine %q has %d CPUs, more than CPUSet can hold (%d)",
			m.Name, len(m.CPUs), MaxCPUs)
	}
	ids := map[int]bool{}
	threadsPerCore := map[int]int{}
	for i, c := range m.CPUs {
		if c.ID != i {
			return fmt.Errorf("hw: CPU at index %d has id %d (must be dense, in order)", i, c.ID)
		}
		if c.TypeIndex < 0 || c.TypeIndex >= len(m.Types) {
			return fmt.Errorf("hw: CPU %d has invalid type index %d", c.ID, c.TypeIndex)
		}
		if ids[c.ID] {
			return fmt.Errorf("hw: duplicate CPU id %d", c.ID)
		}
		ids[c.ID] = true
		threadsPerCore[c.PhysCore]++
	}
	for _, c := range m.CPUs {
		want := m.Types[c.TypeIndex].ThreadsPerCore
		if got := threadsPerCore[c.PhysCore]; got != want {
			return fmt.Errorf("hw: physical core %d has %d threads, core type %q wants %d",
				c.PhysCore, got, m.Types[c.TypeIndex].Name, want)
		}
	}
	if m.Thermal.AmbientC <= 0 || m.Thermal.CapacitanceJPerC <= 0 || m.Thermal.ResistanceCPerW <= 0 {
		return fmt.Errorf("hw: machine %q has invalid thermal constants", m.Name)
	}
	return nil
}
