package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []*Machine{RaptorLake(), OrangePi800(), Homogeneous()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestRaptorLakeTopology(t *testing.T) {
	m := RaptorLake()
	if got := m.NumCPUs(); got != 24 {
		t.Fatalf("NumCPUs = %d, want 24", got)
	}
	if got := m.NumCores(); got != 16 {
		t.Fatalf("NumCores = %d, want 16", got)
	}
	if !m.Hybrid() {
		t.Fatal("RaptorLake should be hybrid")
	}
	p := m.CPUsOfType("P-core")
	e := m.CPUsOfType("E-core")
	if len(p) != 16 || len(e) != 8 {
		t.Fatalf("got %d P threads and %d E threads, want 16 and 8", len(p), len(e))
	}
	// E-cores occupy logical CPUs 16-23 per the artifact appendix.
	for i, id := range e {
		if id != 16+i {
			t.Errorf("E-core thread %d has id %d, want %d", i, id, 16+i)
		}
	}
	// SMT siblings pair up as (2i, 2i+1) on P-cores.
	if got := m.SiblingOf(0); got != 1 {
		t.Errorf("SiblingOf(0) = %d, want 1", got)
	}
	if got := m.SiblingOf(3); got != 2 {
		t.Errorf("SiblingOf(3) = %d, want 2", got)
	}
	if got := m.SiblingOf(16); got != -1 {
		t.Errorf("SiblingOf(16) = %d, want -1 (E-cores are single threaded)", got)
	}
	first := m.FirstCPUPerCore()
	if len(first) != 16 {
		t.Fatalf("FirstCPUPerCore returned %d cpus, want 16", len(first))
	}
	want := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 17, 18, 19, 20, 21, 22, 23}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("FirstCPUPerCore = %v, want %v", first, want)
		}
	}
}

func TestOrangePiTopology(t *testing.T) {
	m := OrangePi800()
	if got := m.NumCPUs(); got != 6 {
		t.Fatalf("NumCPUs = %d, want 6", got)
	}
	little := m.CPUsOfType("LITTLE")
	big := m.CPUsOfType("big")
	if len(little) != 4 || len(big) != 2 {
		t.Fatalf("got %d LITTLE and %d big, want 4 and 2", len(little), len(big))
	}
	// Device-tree order: LITTLE cluster is cpu0-3, big cluster cpu4-5.
	if little[0] != 0 || big[0] != 4 {
		t.Fatalf("cluster order wrong: little=%v big=%v", little, big)
	}
	if m.TypeOf(4).Class != Performance || m.TypeOf(0).Class != Efficiency {
		t.Fatal("core classes are swapped")
	}
	if !m.HasCPUCapacity {
		t.Fatal("ARM machine must expose cpu_capacity")
	}
	if m.Power.HasRAPL {
		t.Fatal("RK3399 has no RAPL")
	}
}

func TestTypeLookups(t *testing.T) {
	m := RaptorLake()
	if tt := m.TypeByPMU("cpu_atom"); tt == nil || tt.Name != "E-core" {
		t.Errorf("TypeByPMU(cpu_atom) = %v", tt)
	}
	if tt := m.TypeByName("P-core"); tt == nil || tt.PMU.Name != "cpu_core" {
		t.Errorf("TypeByName(P-core) = %v", tt)
	}
	if tt := m.TypeByPerfType(10); tt == nil || tt.Name != "E-core" {
		t.Errorf("TypeByPerfType(10) = %v", tt)
	}
	if tt := m.TypeByPMU("nonexistent"); tt != nil {
		t.Errorf("TypeByPMU(nonexistent) = %v, want nil", tt)
	}
	if tt := m.TypeByPerfType(99); tt != nil {
		t.Errorf("TypeByPerfType(99) = %v, want nil", tt)
	}
}

func TestCPUsOfClass(t *testing.T) {
	m := OrangePi800()
	perf := m.CPUsOfClass(Performance)
	eff := m.CPUsOfClass(Efficiency)
	if len(perf) != 2 || len(eff) != 4 {
		t.Fatalf("classes: perf=%v eff=%v", perf, eff)
	}
	if CoreClass(42).String() == "" {
		t.Error("unknown class must still stringify")
	}
	if Performance.String() != "performance" || Efficiency.String() != "efficiency" {
		t.Error("class strings wrong")
	}
}

func TestPeakGflops(t *testing.T) {
	m := RaptorLake()
	// P peak: 8 cores * 5.1 GHz * 16 flops = 652.8; counting both SMT
	// siblings must not double it.
	p := m.PeakGflops(m.CPUsOfType("P-core"))
	if p < 652 || p > 654 {
		t.Errorf("P peak = %g, want ~652.8", p)
	}
	e := m.PeakGflops(m.CPUsOfType("E-core"))
	if e < 262 || e > 263 {
		t.Errorf("E peak = %g, want ~262.4", e)
	}
	all := m.PeakGflops(m.FirstCPUPerCore())
	if diff := all - (p + e); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("all-core peak %g != P+E %g", all, p+e)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"no name", func(m *Machine) { m.Name = "" }},
		{"no types", func(m *Machine) { m.Types = nil }},
		{"no cpus", func(m *Machine) { m.CPUs = nil }},
		{"reserved perf type", func(m *Machine) { m.Types[0].PMU.PerfType = 3 }},
		{"duplicate pmu name", func(m *Machine) { m.Types[1].PMU.Name = m.Types[0].PMU.Name }},
		{"duplicate perf type", func(m *Machine) { m.Types[1].PMU.PerfType = m.Types[0].PMU.PerfType }},
		{"bad freq range", func(m *Machine) { m.Types[0].MaxFreqMHz = 1 }},
		{"base outside range", func(m *Machine) { m.Types[0].BaseFreqMHz = 99999 }},
		{"bad smt", func(m *Machine) { m.Types[0].ThreadsPerCore = 3 }},
		{"bad flops", func(m *Machine) { m.Types[0].FlopsPerCycle = 0 }},
		{"bad efficiency", func(m *Machine) { m.Types[0].HPLEfficiency = 1.5 }},
		{"no counters", func(m *Machine) { m.Types[0].PMU.NumGP = 0 }},
		{"rapl collision", func(m *Machine) { m.Power.RAPLPerfType = m.Types[0].PMU.PerfType }},
		{"bad power limits", func(m *Machine) { m.Power.PL2Watts = 1 }},
		{"sparse cpu ids", func(m *Machine) { m.CPUs[3].ID = 77 }},
		{"bad type index", func(m *Machine) { m.CPUs[0].TypeIndex = 9 }},
		{"thread count mismatch", func(m *Machine) { m.CPUs[1].PhysCore = 99 }},
		{"bad thermal", func(m *Machine) { m.Thermal.CapacitanceJPerC = 0 }},
	}
	for _, tc := range cases {
		m := RaptorLake()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken machine", tc.name)
		}
	}
}

// Property: every logical CPU's type lookup agrees with membership in
// CPUsOfType, for arbitrary valid CPU indices.
func TestTypeMembershipProperty(t *testing.T) {
	machines := []*Machine{RaptorLake(), OrangePi800(), Homogeneous()}
	f := func(mi uint8, cpu uint8) bool {
		m := machines[int(mi)%len(machines)]
		id := int(cpu) % m.NumCPUs()
		typ := m.TypeOf(id)
		for _, c := range m.CPUsOfType(typ.Name) {
			if c == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: class partitions cover all CPUs exactly once.
func TestClassPartitionProperty(t *testing.T) {
	for _, m := range []*Machine{RaptorLake(), OrangePi800(), Homogeneous()} {
		perf := m.CPUsOfClass(Performance)
		eff := m.CPUsOfClass(Efficiency)
		if len(perf)+len(eff) != m.NumCPUs() {
			t.Errorf("%s: class partition covers %d of %d CPUs",
				m.Name, len(perf)+len(eff), m.NumCPUs())
		}
		seen := map[int]bool{}
		for _, id := range append(perf, eff...) {
			if seen[id] {
				t.Errorf("%s: CPU %d in both classes", m.Name, id)
			}
			seen[id] = true
		}
	}
}

func TestUncoreLookupsAndValidation(t *testing.T) {
	m := RaptorLake()
	if u := m.UncoreByPerfType(24); u == nil || u.PfmName != "adl_imc" {
		t.Fatalf("UncoreByPerfType(24) = %+v", u)
	}
	if u := m.UncoreByPerfType(99); u != nil {
		t.Fatal("unknown uncore type must be nil")
	}
	// Validation of broken uncore specs.
	cases := []func(*Machine){
		func(m *Machine) { m.Uncore[0].PfmName = "" },
		func(m *Machine) { m.Uncore[0].PMU.Name = m.Types[0].PMU.Name },
		func(m *Machine) { m.Uncore[0].PMU.PerfType = m.Types[0].PMU.PerfType },
		func(m *Machine) { m.Uncore[0].PMU.PerfType = 3 },
	}
	for i, mutate := range cases {
		mm := RaptorLake()
		mutate(mm)
		if err := mm.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken uncore PMU", i)
		}
	}
	// Too many CPUs for a CPUSet.
	big := RaptorLake()
	for i := 0; i < 50; i++ {
		big.CPUs = append(big.CPUs, CPU{ID: 24 + i, TypeIndex: 1, PhysCore: 100 + i})
	}
	if err := big.Validate(); err == nil {
		t.Error("Validate accepted more CPUs than a CPUSet can hold")
	}
}

func TestDimensityValidatesAndLooksUp(t *testing.T) {
	m := Dimensity9000()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if tt := m.TypeByName("prime"); tt == nil || tt.PMU.Name != "armv9_cortex_x2" {
		t.Fatalf("prime lookup: %+v", tt)
	}
	if got := len(m.CPUsOfClass(Performance)); got != 4 { // 3 big + 1 prime
		t.Errorf("performance-class cpus = %d, want 4", got)
	}
	if m.SiblingOf(7) != -1 {
		t.Error("prime core has no SMT sibling")
	}
	peak := m.PeakGflops([]int{0, 4, 7})
	want := 4*1.8 + 8*2.85 + 8*3.05
	if math.Abs(peak-want) > 0.01 {
		t.Errorf("peak = %g, want %g", peak, want)
	}
}
