package hw

// Dimensity9000 returns a three-core-type ARM machine modeled on a
// MediaTek Dimensity 9000 class SoC: one Cortex-X2 "prime" core, three
// Cortex-A710 "big" cores and four Cortex-A510 "LITTLE" cores. The paper
// notes such tri-gear ARM CPUs already ship and that on them the
// cpu_capacity values "often are 250, 512, and 1024" — which is exactly
// what this model exposes. It exists to exercise every N>2 code path:
// three default PMUs, three perf groups per EventSet, presets derived
// across three natives, and three-way detection groupings.
func Dimensity9000() *Machine {
	little := CoreType{
		Name:                 "LITTLE",
		Microarch:            "Cortex-A510",
		PfmName:              "arm_cortex_a510",
		Class:                Efficiency,
		PMU:                  PMUSpec{Name: "armv9_cortex_a510", PerfType: 8, NumGP: 6, NumFixed: 1, FixedEvents: []string{"cycles"}},
		MinFreqMHz:           500,
		MaxFreqMHz:           1800,
		BaseFreqMHz:          1800,
		FreqStepMHz:          100,
		ThreadsPerCore:       1,
		FlopsPerCycle:        4,
		HPLEfficiency:        0.72,
		BaseIPC:              1.1,
		IssueWidth:           3,
		VecFlopsPerInstr:     4,
		SMTThroughput:        1.0,
		Capacity:             250,
		IdleWatts:            0.02,
		DynWattsAtMax:        0.45,
		SpinActivity:         0.30,
		L1DKB:                32,
		L2KB:                 256,
		LLCMissPenaltyCycles: 160, // DRAM ~90 ns at 1.8 GHz
	}
	big := CoreType{
		Name:                 "big",
		Microarch:            "Cortex-A710",
		PfmName:              "arm_cortex_a710",
		Class:                Performance,
		PMU:                  PMUSpec{Name: "armv9_cortex_a710", PerfType: 9, NumGP: 6, NumFixed: 1, FixedEvents: []string{"cycles"}},
		MinFreqMHz:           600,
		MaxFreqMHz:           2850,
		BaseFreqMHz:          2850,
		FreqStepMHz:          150,
		ThreadsPerCore:       1,
		FlopsPerCycle:        8,
		HPLEfficiency:        0.82,
		BaseIPC:              2.0,
		IssueWidth:           5,
		VecFlopsPerInstr:     4,
		SMTThroughput:        1.0,
		Capacity:             512,
		IdleWatts:            0.05,
		DynWattsAtMax:        2.2,
		SpinActivity:         0.22,
		L1DKB:                64,
		L2KB:                 512,
		LLCMissPenaltyCycles: 255, // DRAM ~90 ns at 2.85 GHz
	}
	prime := CoreType{
		Name:                 "prime",
		Microarch:            "Cortex-X2",
		PfmName:              "arm_cortex_x2",
		Class:                Performance,
		PMU:                  PMUSpec{Name: "armv9_cortex_x2", PerfType: 10, NumGP: 6, NumFixed: 1, FixedEvents: []string{"cycles"}},
		MinFreqMHz:           700,
		MaxFreqMHz:           3050,
		BaseFreqMHz:          3050,
		FreqStepMHz:          150,
		ThreadsPerCore:       1,
		FlopsPerCycle:        8,
		HPLEfficiency:        0.85,
		BaseIPC:              2.6,
		IssueWidth:           6,
		VecFlopsPerInstr:     4,
		SMTThroughput:        1.0,
		Capacity:             1024,
		IdleWatts:            0.08,
		DynWattsAtMax:        3.6,
		SpinActivity:         0.20,
		L1DKB:                64,
		L2KB:                 1024,
		LLCMissPenaltyCycles: 275, // DRAM ~90 ns at 3.05 GHz
	}

	m := &Machine{
		Name:     "dimensity9000",
		Vendor:   "MediaTek",
		CPUModel: "MediaTek Dimensity 9000 (model)",
		Arch:     "aarch64",
		Family:   9,
		Model:    0xd48,
		Stepping: 0,
		Types:    []CoreType{little, big, prime},
		MemoryGB: 12,
		LLCKB:    8 * 1024, // shared system-level cache
		Power: PowerSpec{
			HasRAPL:      false,
			UncoreWatts:  0.9,
			ACLossWatts:  1.8,
			ACEfficiency: 0.9,
		},
		Thermal: ThermalSpec{
			ZoneName:         "soc-thermal",
			ZoneIndex:        0,
			AmbientC:         25,
			CapacitanceJPerC: 0.8,
			ResistanceCPerW:  9,
			TjMaxC:           105,
			PassiveTripC:     80,
			ThrottleFloorMHz: map[string]float64{"prime": 700, "big": 600, "LITTLE": 900},
		},
		HasCPUCapacity: true,
		HasCPUID:       false,
	}

	// Device-tree order: LITTLE cluster cpu0-3, big cluster cpu4-6, prime
	// core cpu7.
	for i := 0; i < 4; i++ {
		m.CPUs = append(m.CPUs, CPU{ID: i, TypeIndex: 0, PhysCore: i, SMTIndex: 0})
	}
	for i := 0; i < 3; i++ {
		m.CPUs = append(m.CPUs, CPU{ID: 4 + i, TypeIndex: 1, PhysCore: 4 + i, SMTIndex: 0})
	}
	m.CPUs = append(m.CPUs, CPU{ID: 7, TypeIndex: 2, PhysCore: 7, SMTIndex: 0})
	return m
}
