// Package validate scores the simulated counter stack against workloads
// whose event counts are known in closed form — the methodology of Röhl
// et al.'s hardware-event validation work, applied to our own simulator:
// if a microbenchmark's instruction, cycle, LLC and energy totals can be
// derived analytically from the machine model, then the numbers PAPI
// reports for it measure the *measurement stack's* accuracy, not the
// workload's. Each oracle runs through the full stack (sim, sched, dvfs,
// perfevent, core) clean, under multiplexing, under fault plans and under
// profiler sampling, and the results are folded into a byte-reproducible
// accuracy scorecard plus a monitoring-overhead report.
package validate

import (
	"fmt"
	"math"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

// Workload kinds with closed-form oracles.
const (
	// WorkLoop retires an exact instruction count (instrPerRep × reps);
	// cycles follow from BaseIPC independent of frequency.
	WorkLoop = "loop"
	// WorkStride sweeps memory at a fixed stride; LLC references and
	// misses follow from the cache geometry (workload.StrideRates).
	WorkStride = "stride"
	// WorkSpin busy-waits a fixed duration at a pinned frequency;
	// cycles and package energy follow from the DVFS and power models.
	WorkSpin = "spin"
)

// Event keys scored by the suite.
const (
	EvInstructions = "instructions"
	EvCycles       = "cycles"
	EvLLCRefs      = "llc-refs"
	EvLLCMisses    = "llc-misses"
	EvEnergyJ      = "energy-j"
)

// Case is one oracle workload pinned to one core type of one machine
// model at one DVFS operating point. All parameters are explicit values,
// so Expected is a pure function of the case and the machine constants.
type Case struct {
	// Model is the scenario registry name ("raptorlake", ...).
	Model string
	// Machine is the resolved hardware description.
	Machine *hw.Machine
	// TypeIdx indexes Machine.Types; CPU is the pinned logical CPU
	// (the first CPU of that type, SMT sibling idle).
	TypeIdx int
	CPU     int
	// Workload selects the oracle kind.
	Workload string
	// PinMHz is the user frequency cap, pre-quantized to the type's
	// OPP grid so the governor runs the core at exactly this value.
	PinMHz float64

	// Loop parameters.
	InstrPerRep float64
	Reps        int

	// Stride parameters.
	StrideInstr float64
	StrideBytes int
	FootprintKB int

	// Spin parameters.
	SpinSec float64
}

// Type returns the pinned core type.
func (c *Case) Type() *hw.CoreType { return &c.Machine.Types[c.TypeIdx] }

// Name identifies the case in scorecards and test output.
func (c *Case) Name() string {
	return fmt.Sprintf("%s/%s/%s", c.Model, c.Type().Name, c.Workload)
}

// PinnedMHz returns the frequency the governor will actually run the
// type at when capped near frac of its DVFS range: the cap is snapped to
// the type's OPP grid exactly the way dvfs.Governor.TargetMHz quantizes,
// so a clean (unthrottled) run sits at this value every busy tick.
func PinnedMHz(t *hw.CoreType, frac float64) float64 {
	f := t.MinFreqMHz + frac*(t.MaxFreqMHz-t.MinFreqMHz)
	if t.FreqStepMHz > 0 {
		k := math.Round((f - t.MinFreqMHz) / t.FreqStepMHz)
		f = t.MinFreqMHz + k*t.FreqStepMHz
	}
	// Clamp after quantizing, exactly like dvfs.Governor.TargetMHz: the
	// range endpoints are legal operating points even off the step grid.
	if f < t.MinFreqMHz {
		f = t.MinFreqMHz
	}
	if f > t.MaxFreqMHz {
		f = t.MaxFreqMHz
	}
	return f
}

// physIdleWatts sums IdleWatts over the machine's physical cores (SMT
// siblings share one physical core and one idle term).
func physIdleWatts(m *hw.Machine) float64 {
	var w float64
	seen := map[[2]int]bool{}
	for _, c := range m.CPUs {
		key := [2]int{c.TypeIndex, c.PhysCore}
		if seen[key] {
			continue
		}
		seen[key] = true
		w += m.Types[c.TypeIndex].IdleWatts
	}
	return w
}

// Expected returns the closed-form expected value of every event the
// case's workload validates. Keys are the Ev* constants.
func (c *Case) Expected() map[string]float64 {
	t := c.Type()
	out := map[string]float64{}
	switch c.Workload {
	case WorkLoop:
		// The loop retires exactly instrPerRep×reps instructions; the
		// workload model spends retired/BaseIPC cycles doing it, at any
		// frequency (IPC is a core-type constant in the simulator).
		instr := c.InstrPerRep * float64(c.Reps)
		out[EvInstructions] = instr
		out[EvCycles] = instr / t.BaseIPC
	case WorkStride:
		// Exact instruction budget; memory events follow the geometry
		// model, cycles follow the stride CPI (pipeline + exposed DRAM
		// penalty), both shared with the workload implementation.
		r := workload.StrideRates(t, c.Machine.LLCKB, c.StrideBytes, c.FootprintKB)
		out[EvInstructions] = c.StrideInstr
		out[EvCycles] = c.StrideInstr * workload.StrideCPI(t, r)
		out[EvLLCRefs] = c.StrideInstr * workload.StrideLoadFrac * r.L1 * r.L2
		out[EvLLCMisses] = c.StrideInstr * workload.StrideLoadFrac * r.Chain()
	case WorkSpin:
		// A spin consumes every cycle of its pinned core for exactly
		// SpinSec: cycles = f·D. Package energy integrates the power
		// model over the run: all physical cores idle-leak and the
		// uncore draws its constant for the whole duration, plus the
		// spinning core's dynamic term (cubic in f/fmax, scaled by the
		// spin activity factor) for the active duration.
		cycles := c.PinMHz * 1e6 * c.SpinSec
		out[EvCycles] = cycles
		out[EvInstructions] = cycles * t.BaseIPC * 2.2
		rel := c.PinMHz / t.MaxFreqMHz
		dyn := t.DynWattsAtMax * t.SpinActivity * rel * rel * rel
		out[EvEnergyJ] = c.SpinSec*(physIdleWatts(c.Machine)+c.Machine.Power.UncoreWatts) + c.SpinSec*dyn
	}
	return out
}

// EstDurationSec is the closed-form wall (simulated) duration of the
// case at its pinned frequency — used to place fault-plan transitions at
// fractions of the run and to bound the runner's step loop.
func (c *Case) EstDurationSec() float64 {
	t := c.Type()
	switch c.Workload {
	case WorkLoop:
		return c.InstrPerRep * float64(c.Reps) / (t.BaseIPC * c.PinMHz * 1e6)
	case WorkStride:
		r := workload.StrideRates(t, c.Machine.LLCKB, c.StrideBytes, c.FootprintKB)
		return c.StrideInstr * workload.StrideCPI(t, r) / (c.PinMHz * 1e6)
	case WorkSpin:
		return c.SpinSec
	}
	return 0
}

// Task builds a fresh workload task for the case.
func (c *Case) Task() workload.Task {
	switch c.Workload {
	case WorkLoop:
		return workload.NewInstructionLoop("validate-loop", c.InstrPerRep, c.Reps)
	case WorkStride:
		return workload.NewStride("validate-stride", c.StrideInstr, c.StrideBytes, c.FootprintKB, c.Machine.LLCKB)
	case WorkSpin:
		return workload.NewSpin("validate-spin", c.SpinSec)
	}
	return nil
}

// Cases builds the full oracle set for one machine model: for every core
// type, a loop, a stride and a spin case sized to run ~0.1 simulated
// seconds at a pinned operating point (so fault-plan windows at run
// fractions are well resolved by the 1 ms tick).
func Cases(model string, m *hw.Machine) []Case {
	var out []Case
	for ti := range m.Types {
		t := &m.Types[ti]
		cpus := m.CPUsOfType(t.Name)
		if len(cpus) == 0 {
			continue
		}
		cpu := cpus[0]
		pin := PinnedMHz(t, 0.7)

		// Loop: ~0.12 s of retirement at pinned speed, split into 40
		// reps of a round instruction count.
		perRep := math.Round(t.BaseIPC * pin * 1e6 * 0.12 / 40)
		out = append(out, Case{
			Model: model, Machine: m, TypeIdx: ti, CPU: cpu,
			Workload: WorkLoop, PinMHz: pin,
			InstrPerRep: perRep, Reps: 40,
		})

		// Stride: DRAM-resident sweep (footprint 4× the LLC) sized to
		// ~0.1 s at the stride CPI.
		foot := 4 * m.LLCKB
		r := workload.StrideRates(t, m.LLCKB, workload.StrideLineBytes, foot)
		cpi := workload.StrideCPI(t, r)
		instr := math.Round(pin * 1e6 * 0.1 / cpi)
		out = append(out, Case{
			Model: model, Machine: m, TypeIdx: ti, CPU: cpu,
			Workload: WorkStride, PinMHz: pin,
			StrideInstr: instr, StrideBytes: workload.StrideLineBytes, FootprintKB: foot,
		})

		// Spin: 80 ms, a multiple of the 1 ms tick so the active span
		// covers whole ticks and the energy integral is exact.
		out = append(out, Case{
			Model: model, Machine: m, TypeIdx: ti, CPU: cpu,
			Workload: WorkSpin, PinMHz: pin,
			SpinSec: 0.08,
		})
	}
	return out
}
