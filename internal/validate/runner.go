package validate

import (
	"fmt"
	"time"

	"hetpapi/internal/core"
	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/power"
	"hetpapi/internal/profile"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// Mode is a measurement condition a case runs under.
type Mode string

const (
	// ModeClean counts with dedicated counters: exactness is expected.
	ModeClean Mode = "clean"
	// ModeMux counts with software multiplexing enabled: the scaled
	// estimate must bracket the truth within its ErrorBound.
	ModeMux Mode = "mux"
	// ModeFaults runs ModeMux under a fault plan (watchdog reservation
	// plus a counter-budget squeeze mid-run): degradation grows the
	// bound, and the observed error must stay inside it.
	ModeFaults Mode = "faults"
	// ModeSampled is ModeClean with the statistical profiler attached:
	// sampling must not perturb the counts (observer-effect check).
	ModeSampled Mode = "sampled"
)

// Modes lists every mode a workload kind is scored under.
func Modes(work string) []Mode {
	switch work {
	case WorkLoop:
		return []Mode{ModeClean, ModeMux, ModeFaults, ModeSampled}
	case WorkStride:
		return []Mode{ModeClean, ModeMux}
	case WorkSpin:
		return []Mode{ModeClean}
	}
	return nil
}

// Observed is one measured event value with its degradation metadata.
type Observed struct {
	Final uint64
	Raw   uint64
	// Bound is the reported worst-case absolute error: the extrapolated
	// portion of the scaled estimate (Value.ErrorBound).
	Bound       uint64
	ScaleFactor float64
	Stale       bool
	Degraded    bool
}

// RunResult is everything one stack traversal produced.
type RunResult struct {
	// Events maps Ev* keys to measured counter values.
	Events map[string]Observed
	// ElapsedSec is the simulated duration of the run; EnergyJ the
	// package energy integrated over it.
	ElapsedSec float64
	EnergyJ    float64
	// Ticks is the number of sim steps the run took.
	Ticks int
	// Degradations is the event set's degradation ledger.
	Degradations core.DegradationReport
	// LostSamples/EmittedSamples are profiler totals (ModeSampled).
	LostSamples    uint64
	EmittedSamples uint64
	// HostNs is host wall-clock time of the step loop. Not
	// reproducible across hosts: reported, never hashed.
	HostNs int64
}

// presetFor orders the scored events and their PAPI presets.
var presetFor = []struct {
	Key    string
	Preset core.Preset
}{
	{EvInstructions, core.PresetTotIns},
	{EvCycles, core.PresetTotCyc},
	{EvLLCRefs, core.PresetL3TCA},
	{EvLLCMisses, core.PresetL3TCM},
}

// faultPlan builds the ModeFaults schedule for a case: a watchdog
// reservation over [0.30, 0.55] of the run and a one-counter budget
// squeeze over [0.35, 0.60], both against the pinned core type's PMU.
// Both rungs matter: fixed-counter PMUs degrade under the watchdog
// (cycles groups deschedule), while PMUs with ample general-purpose
// counters only feel the budget cap.
func faultPlan(c *Case) *faults.Plan {
	d := c.EstDurationSec()
	pmu := c.Type().PMU.PerfType
	return faults.NewPlan(
		faults.Event{AtSec: 0.30 * d, Kind: faults.KindWatchdogHold, PMU: pmu},
		faults.Event{AtSec: 0.35 * d, Kind: faults.KindCounterBudget, PMU: pmu, Cap: 1},
		faults.Event{AtSec: 0.55 * d, Kind: faults.KindWatchdogRelease, PMU: pmu},
		faults.Event{AtSec: 0.60 * d, Kind: faults.KindCounterBudget, PMU: pmu, Cap: 0},
	)
}

// Run traverses the full stack once: boots a fresh machine, pins the
// case's core type to its operating point, spawns the oracle task on its
// CPU, opens the scored events through the PAPI layer before the first
// tick (so counting covers the task's entire life), and steps the sim
// until the task completes. ModeFaults runs under the case's standard
// fault plan.
func Run(c *Case, mode Mode) (*RunResult, error) {
	var plan *faults.Plan
	if mode == ModeFaults {
		plan = faultPlan(c)
	}
	return RunWithPlan(c, mode, plan)
}

// RunWithPlan is Run with an explicit fault plan (which may be nil).
// The fuzz harness uses it to drive the stack under arbitrary
// faults.Random schedules.
func RunWithPlan(c *Case, mode Mode, plan *faults.Plan) (*RunResult, error) {
	s := sim.New(c.Machine, sim.DefaultConfig())
	t := c.Type()
	s.Governor.SetUserCapMHz(t.Class, c.PinMHz)

	lib, err := core.Init(s, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: core init: %w", c.Name(), err)
	}
	task := c.Task()
	proc := s.Spawn(task, hw.NewCPUSet(c.CPU))

	es := lib.CreateEventSet()
	if err := es.Attach(proc.PID); err != nil {
		return nil, fmt.Errorf("%s: attach: %w", c.Name(), err)
	}
	if mode == ModeMux || mode == ModeFaults {
		if err := es.SetMultiplex(); err != nil {
			return nil, fmt.Errorf("%s: set multiplex: %w", c.Name(), err)
		}
	}
	for _, p := range presetFor {
		if err := es.AddPreset(p.Preset); err != nil {
			return nil, fmt.Errorf("%s: add %s: %w", c.Name(), p.Preset, err)
		}
	}
	if plan != nil {
		s.Kernel.AttachFaults(plan)
	}

	var col *profile.Collector
	if mode == ModeSampled {
		col = profile.NewCollector(s, profile.Config{})
		col.Attach(proc.PID)
		defer s.AddStepHook(col.SimHook())()
	}

	if err := es.Start(); err != nil {
		return nil, fmt.Errorf("%s: start: %w", c.Name(), err)
	}

	maxSec := 4*c.EstDurationSec() + 1
	ticks := 0
	start := time.Now()
	for !task.Done() && s.Now() < maxSec {
		s.Step()
		ticks++
	}
	hostNs := time.Since(start).Nanoseconds()
	if !task.Done() {
		return nil, fmt.Errorf("%s: task did not finish within %.2fs simulated", c.Name(), maxSec)
	}
	elapsed := s.Now()
	energy := s.Power.EnergyJ(power.DomainPkg)

	vals, err := es.StopValues()
	if err != nil {
		return nil, fmt.Errorf("%s: stop: %w", c.Name(), err)
	}
	res := &RunResult{
		Events:       map[string]Observed{},
		ElapsedSec:   elapsed,
		EnergyJ:      energy,
		Ticks:        ticks,
		Degradations: es.Degradations(),
		HostNs:       hostNs,
	}
	for i, p := range presetFor {
		v := vals[i]
		res.Events[p.Key] = Observed{
			Final:       v.Final,
			Raw:         v.Raw,
			Bound:       v.ErrorBound,
			ScaleFactor: v.ScaleFactor,
			Stale:       v.Stale,
			Degraded:    v.Degraded,
		}
	}
	if col != nil {
		col.Finish()
		res.LostSamples = col.LostTotal()
		res.EmittedSamples = col.EmittedTotal()
	}
	if err := es.Cleanup(); err != nil {
		return nil, fmt.Errorf("%s: cleanup: %w", c.Name(), err)
	}
	return res, nil
}

// RunBare runs the case with no measurement stack at all — no PAPI
// library, no open kernel events — and reports the same physics
// quantities. The monitored-vs-bare deltas are the simulator's answer to
// the RAPL-overhead question: what does measuring cost? (In the
// simulator the counting substrate is free by construction, so nonzero
// deltas flag an observer effect — a measurement layer perturbing the
// physics it observes.)
func RunBare(c *Case) (*RunResult, error) {
	s := sim.New(c.Machine, sim.DefaultConfig())
	s.Governor.SetUserCapMHz(c.Type().Class, c.PinMHz)
	task := c.Task()
	s.Spawn(task, hw.NewCPUSet(c.CPU))

	maxSec := 4*c.EstDurationSec() + 1
	ticks := 0
	start := time.Now()
	for !task.Done() && s.Now() < maxSec {
		s.Step()
		ticks++
	}
	hostNs := time.Since(start).Nanoseconds()
	if !task.Done() {
		return nil, fmt.Errorf("%s: bare task did not finish within %.2fs simulated", c.Name(), maxSec)
	}
	var retired float64
	switch w := task.(type) {
	case *workload.InstructionLoop:
		retired = w.TotalInstructions()
	case *workload.Stride:
		retired = w.TotalInstructions()
	}
	return &RunResult{
		Events:     map[string]Observed{EvInstructions: {Final: uint64(retired)}},
		ElapsedSec: s.Now(),
		EnergyJ:    s.Power.EnergyJ(power.DomainPkg),
		Ticks:      ticks,
		HostNs:     hostNs,
	}, nil
}
