package validate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"hetpapi/internal/hw"
)

// SchemaVersion identifies the scorecard JSON layout. Bump on any field
// or formatting change: goldens are byte-compared.
const SchemaVersion = 1

// Row scores one event of one case under one mode. Float quantities are
// fixed-precision strings so the JSON rendering is byte-reproducible
// across platforms (the same convention as scenario.Golden).
type Row struct {
	Model    string `json:"model"`
	CoreType string `json:"core_type"`
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Event    string `json:"event"`
	// Expected is the closed-form oracle value; Observed what the stack
	// reported (the counter Final, or the integrated package energy).
	Expected string `json:"expected"`
	Observed string `json:"observed"`
	// RelErr is (observed-expected)/expected.
	RelErr string `json:"rel_err"`
	// Bound is the reported worst-case absolute error (counter
	// ErrorBound); zero in clean runs.
	Bound uint64 `json:"bound"`
	// Tolerance is the pass threshold: relative in clean/sampled modes,
	// ignored in bounded (mux/faults) modes where Bound governs.
	Tolerance string `json:"tolerance"`
	// WithinBound reports |observed-expected| <= Bound + slack (bounded
	// modes; always true in clean modes where exactness is checked).
	WithinBound bool `json:"within_bound"`
	Pass        bool `json:"pass"`
	Degraded    bool `json:"degraded,omitempty"`
}

// OverheadRow is the monitored-vs-bare comparison for one case: the
// measurement stack's simulated cost (the RAPL-overhead question). The
// simulator's counting substrate is free by construction, so nonzero
// deltas expose an observer effect.
type OverheadRow struct {
	Model          string `json:"model"`
	CoreType       string `json:"core_type"`
	Workload       string `json:"workload"`
	TicksMonitored int    `json:"ticks_monitored"`
	TicksBare      int    `json:"ticks_bare"`
	ElapsedDeltaS  string `json:"elapsed_delta_s"`
	EnergyDeltaJ   string `json:"energy_delta_j"`
	EnergyBareJ    string `json:"energy_bare_j"`
}

// SamplingRow is the profiler's lost-sample ledger for one sampled run.
type SamplingRow struct {
	Model    string `json:"model"`
	CoreType string `json:"core_type"`
	Emitted  uint64 `json:"emitted"`
	Lost     uint64 `json:"lost"`
	// ExpectedMax is the sampling-period upper bound on emitted+lost:
	// task cycles / period, plus one for the partial period in flight.
	ExpectedMax uint64 `json:"expected_max"`
	Pass        bool   `json:"pass"`
}

// Summary aggregates the card.
type Summary struct {
	Rows          int    `json:"rows"`
	Passed        int    `json:"passed"`
	Failed        int    `json:"failed"`
	MaxCleanRel   string `json:"max_clean_rel_err"`
	WorstCleanRow string `json:"worst_clean_row,omitempty"`
}

// HostReport carries host wall-clock costs. Never reproducible across
// machines: excluded from the digest and stripped before goldens.
type HostReport struct {
	TotalNs       int64   `json:"total_ns"`
	Runs          int     `json:"runs"`
	NsPerSimTick  float64 `json:"ns_per_sim_tick"`
	BareNsPerTick float64 `json:"bare_ns_per_sim_tick"`
}

// Scorecard is the full accuracy report for a set of machine models.
type Scorecard struct {
	Schema   int           `json:"schema"`
	Models   []string      `json:"models"`
	Rows     []Row         `json:"rows"`
	Overhead []OverheadRow `json:"overhead"`
	Sampling []SamplingRow `json:"sampling"`
	Summary  Summary       `json:"summary"`
	// Digest chains everything above: sha256 of the rendering with
	// Digest empty and Host absent.
	Digest string      `json:"digest"`
	Host   *HostReport `json:"host,omitempty"`
}

// ModelSource names a machine model and its constructor.
type ModelSource struct {
	Name string
	Make func() *hw.Machine
}

// StandardSources lists every machine model in the scenario registry,
// in a fixed order. The committed golden scorecards cover exactly this
// set, one artifact per model.
func StandardSources() []ModelSource {
	return []ModelSource{
		{Name: "raptorlake", Make: hw.RaptorLake},
		{Name: "orangepi800", Make: hw.OrangePi800},
		{Name: "dimensity9000", Make: hw.Dimensity9000},
		{Name: "homogeneous", Make: hw.Homogeneous},
	}
}

// SourceFor returns the standard source with the given name, or false.
func SourceFor(name string) (ModelSource, bool) {
	for _, s := range StandardSources() {
		if s.Name == name {
			return s, true
		}
	}
	return ModelSource{}, false
}

// fnum renders a float at the card's fixed precision.
func fnum(v float64) string { return fmt.Sprintf("%.6f", v) }

// fexp renders a relative error or tolerance.
func fexp(v float64) string { return fmt.Sprintf("%.3e", v) }

// Tolerance returns the clean-mode relative tolerance for an event: the
// counter path must be exact up to integer truncation; the energy
// integral is continuous and allowed scheduling-boundary residue.
func Tolerance(event string) float64 {
	if event == EvEnergyJ {
		return 1e-3
	}
	return 1e-6
}

// boundSlack is the absolute slack added to reported error bounds in
// bounded modes, covering integer truncation of scaled estimates.
func boundSlack(expected float64) float64 {
	s := 1e-6 * expected
	if s < 2 {
		s = 2
	}
	return s
}

// scoreRow folds one (case, mode, event) measurement into a Row.
func scoreRow(c *Case, mode Mode, event string, expected float64, res *RunResult) Row {
	var observed float64
	var bound uint64
	var degraded bool
	if event == EvEnergyJ {
		observed = res.EnergyJ
	} else {
		o := res.Events[event]
		observed = float64(o.Final)
		bound = o.Bound
		degraded = o.Degraded
	}
	rel := 0.0
	if expected != 0 {
		rel = (observed - expected) / expected
	}
	tol := Tolerance(event)
	absErr := math.Abs(observed - expected)
	withinBound := absErr <= float64(bound)+boundSlack(expected)
	var pass bool
	switch mode {
	case ModeMux, ModeFaults:
		pass = withinBound
	default:
		pass = math.Abs(rel) <= tol
		withinBound = pass
	}
	return Row{
		Model:       c.Model,
		CoreType:    c.Type().Name,
		Workload:    c.Workload,
		Mode:        string(mode),
		Event:       event,
		Expected:    fnum(expected),
		Observed:    fnum(observed),
		RelErr:      fexp(rel),
		Bound:       bound,
		Tolerance:   fexp(tol),
		WithinBound: withinBound,
		Pass:        pass,
		Degraded:    degraded,
	}
}

// eventOrder fixes row order within a case.
var eventOrder = []string{EvInstructions, EvCycles, EvLLCRefs, EvLLCMisses, EvEnergyJ}

// BuildScorecard runs the full oracle suite for every source model and
// assembles the scorecard. Deterministic: same sources, same bytes
// (excluding Host, which the caller may attach for display).
func BuildScorecard(sources []ModelSource) (*Scorecard, error) {
	card := &Scorecard{Schema: SchemaVersion}
	var totalNs, bareNs int64
	var totalTicks, bareTicks, runs int
	for _, src := range sources {
		card.Models = append(card.Models, src.Name)
		m := src.Make()
		for _, c := range Cases(src.Name, m) {
			c := c
			exp := c.Expected()
			for _, mode := range Modes(c.Workload) {
				res, err := Run(&c, mode)
				if err != nil {
					return nil, err
				}
				runs++
				totalNs += res.HostNs
				totalTicks += res.Ticks
				for _, ev := range eventOrder {
					want, ok := exp[ev]
					if !ok {
						continue
					}
					card.Rows = append(card.Rows, scoreRow(&c, mode, ev, want, res))
				}
				if mode == ModeSampled {
					card.Sampling = append(card.Sampling, samplingRow(&c, exp, res))
				}
				if mode == ModeClean && c.Workload == WorkLoop {
					bare, err := RunBare(&c)
					if err != nil {
						return nil, err
					}
					bareNs += bare.HostNs
					bareTicks += bare.Ticks
					card.Overhead = append(card.Overhead, OverheadRow{
						Model:          c.Model,
						CoreType:       c.Type().Name,
						Workload:       c.Workload,
						TicksMonitored: res.Ticks,
						TicksBare:      bare.Ticks,
						ElapsedDeltaS:  fnum(res.ElapsedSec - bare.ElapsedSec),
						EnergyDeltaJ:   fnum(res.EnergyJ - bare.EnergyJ),
						EnergyBareJ:    fnum(bare.EnergyJ),
					})
				}
			}
		}
	}
	card.Summary = summarize(card.Rows)
	card.Digest = card.ComputeDigest()
	card.Host = &HostReport{TotalNs: totalNs + bareNs, Runs: runs}
	if totalTicks > 0 {
		card.Host.NsPerSimTick = float64(totalNs) / float64(totalTicks)
	}
	if bareTicks > 0 {
		card.Host.BareNsPerTick = float64(bareNs) / float64(bareTicks)
	}
	return card, nil
}

// samplingRow checks the profiler's sample accounting for a sampled run:
// emitted+lost cannot exceed the cycle budget divided by the period.
func samplingRow(c *Case, exp map[string]float64, res *RunResult) SamplingRow {
	const period = 2e6 // profile.Config default sampling period, cycles
	maxSamples := uint64(exp[EvCycles]/period) + 1
	got := res.EmittedSamples + res.LostSamples
	return SamplingRow{
		Model:       c.Model,
		CoreType:    c.Type().Name,
		Emitted:     res.EmittedSamples,
		Lost:        res.LostSamples,
		ExpectedMax: maxSamples,
		Pass:        got <= maxSamples && res.EmittedSamples > 0,
	}
}

func summarize(rows []Row) Summary {
	s := Summary{Rows: len(rows)}
	worst := -1.0
	for _, r := range rows {
		if r.Pass {
			s.Passed++
		} else {
			s.Failed++
		}
		if r.Mode == string(ModeClean) || r.Mode == string(ModeSampled) {
			var rel float64
			fmt.Sscanf(r.RelErr, "%e", &rel)
			if a := math.Abs(rel); a > worst {
				worst = a
				s.MaxCleanRel = fexp(a)
				s.WorstCleanRow = fmt.Sprintf("%s/%s/%s/%s/%s", r.Model, r.CoreType, r.Workload, r.Mode, r.Event)
			}
		}
	}
	if worst < 0 {
		s.MaxCleanRel = fexp(0)
	}
	return s
}

// canonicalBytes renders the card for hashing and goldens: Digest
// cleared, Host stripped.
func (s *Scorecard) canonicalBytes() []byte {
	c := *s
	c.Digest = ""
	c.Host = nil
	b, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		panic(err) // struct of strings/ints: cannot fail
	}
	return append(b, '\n')
}

// ComputeDigest returns the sha256 hex of the canonical rendering.
func (s *Scorecard) ComputeDigest() string {
	sum := sha256.Sum256(s.canonicalBytes())
	return hex.EncodeToString(sum[:])
}

// GoldenBytes is the committed-artifact rendering: canonical bytes with
// the digest filled in, host costs stripped.
func (s *Scorecard) GoldenBytes() []byte {
	c := *s
	c.Digest = s.ComputeDigest()
	c.Host = nil
	b, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// MaxCleanRelErr parses the summary's worst clean relative error.
func (s *Scorecard) MaxCleanRelErr() float64 {
	var v float64
	fmt.Sscanf(s.Summary.MaxCleanRel, "%e", &v)
	return v
}

// AllPass reports whether every row passed.
func (s *Scorecard) AllPass() bool { return s.Summary.Failed == 0 }
