package validate

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden scorecards")

// TestOracleTable checks every (model, core type, workload) oracle for
// internal consistency before it is trusted to score the stack:
// finiteness, dimensional relations between the expected events, and
// monotonicity in work size.
func TestOracleTable(t *testing.T) {
	for _, src := range StandardSources() {
		m := src.Make()
		for _, c := range Cases(src.Name, m) {
			c := c
			t.Run(c.Name(), func(t *testing.T) {
				ct := c.Type()
				exp := c.Expected()
				if len(exp) == 0 {
					t.Fatal("oracle produced no expected events")
				}
				for ev, v := range exp {
					if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
						t.Errorf("%s: expected value %v not finite-positive", ev, v)
					}
				}
				if d := c.EstDurationSec(); d <= 0 || d > 10 {
					t.Errorf("EstDurationSec = %v, want (0, 10]", d)
				}

				// Dimensional relations per workload.
				switch c.Workload {
				case WorkLoop:
					if got, want := exp[EvCycles], exp[EvInstructions]/ct.BaseIPC; math.Abs(got-want) > 1e-6*want {
						t.Errorf("loop cycles %v != instr/IPC %v", got, want)
					}
				case WorkStride:
					loads := exp[EvInstructions] * 0.5
					if exp[EvLLCRefs] > loads {
						t.Errorf("llc refs %v exceed load count %v", exp[EvLLCRefs], loads)
					}
					if exp[EvLLCMisses] > exp[EvLLCRefs] {
						t.Errorf("llc misses %v exceed refs %v", exp[EvLLCMisses], exp[EvLLCRefs])
					}
					if minCycles := exp[EvInstructions] / ct.BaseIPC; exp[EvCycles] < minCycles {
						t.Errorf("stride cycles %v below pipeline floor %v", exp[EvCycles], minCycles)
					}
				case WorkSpin:
					if got, want := exp[EvCycles], c.PinMHz*1e6*c.SpinSec; math.Abs(got-want) > 1e-6*want {
						t.Errorf("spin cycles %v != f*D %v", got, want)
					}
					idleFloor := c.SpinSec * (physIdleWatts(c.Machine) + c.Machine.Power.UncoreWatts)
					if exp[EvEnergyJ] <= idleFloor {
						t.Errorf("spin energy %v not above idle floor %v", exp[EvEnergyJ], idleFloor)
					}
				}

				// Monotonicity: doubling the work size must strictly
				// increase every expected count.
				big := c
				big.InstrPerRep *= 2
				big.StrideInstr *= 2
				big.SpinSec *= 2
				bigExp := big.Expected()
				for ev, v := range exp {
					if ev == EvLLCRefs || ev == EvLLCMisses {
						if bigExp[ev] < v {
							t.Errorf("%s: not monotone in work size: %v -> %v", ev, v, bigExp[ev])
						}
						continue
					}
					if bigExp[ev] <= v {
						t.Errorf("%s: not strictly monotone in work size: %v -> %v", ev, v, bigExp[ev])
					}
				}
				if big.EstDurationSec() <= c.EstDurationSec() {
					t.Errorf("duration not monotone in work size")
				}
			})
		}
	}
}

// TestPinnedMHzOnGrid checks the pin helper lands on each type's OPP
// grid, inside its DVFS range — a prerequisite for every cycle oracle.
func TestPinnedMHzOnGrid(t *testing.T) {
	for _, src := range StandardSources() {
		m := src.Make()
		for i := range m.Types {
			ct := &m.Types[i]
			for _, frac := range []float64{0, 0.3, 0.7, 1} {
				f := PinnedMHz(ct, frac)
				if f < ct.MinFreqMHz || f > ct.MaxFreqMHz {
					t.Errorf("%s/%s: pin %v outside [%v, %v]", src.Name, ct.Name, f, ct.MinFreqMHz, ct.MaxFreqMHz)
				}
				// The max endpoint is a legal operating point even off
				// the step grid (TargetMHz clamps after quantizing).
				if ct.FreqStepMHz > 0 && f != ct.MaxFreqMHz {
					k := (f - ct.MinFreqMHz) / ct.FreqStepMHz
					if math.Abs(k-math.Round(k)) > 1e-9 {
						t.Errorf("%s/%s: pin %v off the %v MHz grid", src.Name, ct.Name, f, ct.FreqStepMHz)
					}
				}
			}
		}
	}
}

// TestGoldenScorecards is the committed-artifact gate: the full scorecard
// of every standard model must match its golden byte-for-byte, so any
// change to sim, sched, dvfs, perfevent or core that shifts counter
// semantics fails here. Regenerate with -update after intentional
// changes, and review the diff like any behavioral change.
func TestGoldenScorecards(t *testing.T) {
	for _, src := range StandardSources() {
		src := src
		t.Run(src.Name, func(t *testing.T) {
			card, err := BuildScorecard([]ModelSource{src})
			if err != nil {
				t.Fatal(err)
			}
			if !card.AllPass() {
				for _, r := range card.Rows {
					if !r.Pass {
						t.Errorf("failing row: %+v", r)
					}
				}
				t.Fatalf("scorecard has %d failing rows", card.Summary.Failed)
			}
			got := card.GoldenBytes()
			path := filepath.Join("testdata", fmt.Sprintf("scorecard_%s.golden.json", src.Name))
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("scorecard drifted from golden %s\ndigest got:  %s\nre-run with -update and review the diff", path, card.Digest)
			}
		})
	}
}

// TestScorecardReproducible: two independent builds must agree to the
// byte (the acceptance criterion behind committing the artifacts).
func TestScorecardReproducible(t *testing.T) {
	srcs := []ModelSource{mustSource(t, "raptorlake")}
	a, err := BuildScorecard(srcs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildScorecard(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.GoldenBytes(), b.GoldenBytes()) {
		t.Fatal("scorecard bytes differ between identical builds")
	}
	if a.Digest != b.Digest || a.Digest == "" {
		t.Fatalf("digests differ or empty: %q vs %q", a.Digest, b.Digest)
	}
}

// TestFaultedRunsBounded: the faults mode must actually degrade the
// measurement (nonzero bounds on at least one event) and the observed
// error must stay inside every reported bound.
func TestFaultedRunsBounded(t *testing.T) {
	for _, name := range []string{"raptorlake", "orangepi800"} {
		src := mustSource(t, name)
		m := src.Make()
		for _, c := range Cases(src.Name, m) {
			if c.Workload != WorkLoop {
				continue
			}
			c := c
			res, err := Run(&c, ModeFaults)
			if err != nil {
				t.Fatal(err)
			}
			exp := c.Expected()
			anyBound := false
			for _, ev := range []string{EvInstructions, EvCycles} {
				o := res.Events[ev]
				if o.Bound > 0 {
					anyBound = true
				}
				if absErr := math.Abs(float64(o.Final) - exp[ev]); absErr > float64(o.Bound)+boundSlack(exp[ev]) {
					t.Errorf("%s %s: error %v exceeds bound %d", c.Name(), ev, absErr, o.Bound)
				}
			}
			if !anyBound {
				t.Errorf("%s: fault plan produced no error bound at all", c.Name())
			}
		}
	}
}

// TestOverheadDeltasZero: monitoring must not perturb the physics. The
// simulated elapsed time and package energy of a monitored run must
// equal the bare run exactly.
func TestOverheadDeltasZero(t *testing.T) {
	src := mustSource(t, "dimensity9000")
	m := src.Make()
	for _, c := range Cases(src.Name, m) {
		if c.Workload != WorkLoop {
			continue
		}
		c := c
		mon, err := Run(&c, ModeClean)
		if err != nil {
			t.Fatal(err)
		}
		bare, err := RunBare(&c)
		if err != nil {
			t.Fatal(err)
		}
		if mon.ElapsedSec != bare.ElapsedSec {
			t.Errorf("%s: elapsed differs monitored %v vs bare %v", c.Name(), mon.ElapsedSec, bare.ElapsedSec)
		}
		if mon.EnergyJ != bare.EnergyJ {
			t.Errorf("%s: energy differs monitored %v vs bare %v", c.Name(), mon.EnergyJ, bare.EnergyJ)
		}
	}
}

func mustSource(t *testing.T, name string) ModelSource {
	t.Helper()
	src, ok := SourceFor(name)
	if !ok {
		t.Fatalf("unknown model %q", name)
	}
	return src
}
