package validate

import (
	"encoding/json"
	"math"
	"strconv"
	"testing"

	"hetpapi/internal/faults"
)

// FuzzScorecard drives the oracle runner with fuzzed workload sizes,
// modes and faults.Random schedules, and checks the scorecard
// invariants that must survive ANY run: rows marshal to valid JSON with
// finite numbers, and on degradation-free runs the observed error stays
// inside the reported bound.
func FuzzScorecard(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint32(1_000_000), int64(1), uint8(0))
	f.Add(uint8(1), uint8(1), uint32(400_000), int64(42), uint8(1))
	f.Add(uint8(2), uint8(2), uint32(50), int64(7), uint8(2))
	f.Add(uint8(3), uint8(0), uint32(2_500_000), int64(-3), uint8(1))
	f.Fuzz(func(t *testing.T, modelSel, workSel uint8, size uint32, seed int64, modeSel uint8) {
		srcs := StandardSources()
		src := srcs[int(modelSel)%len(srcs)]
		m := src.Make()
		base := Cases(src.Name, m)
		works := []string{WorkLoop, WorkStride, WorkSpin}
		work := works[int(workSel)%len(works)]
		var c Case
		for _, cand := range base {
			if cand.Workload == work {
				c = cand
				break
			}
		}
		// Rescale to the fuzzed work size, bounded to keep a single
		// exec under a few simulated milliseconds.
		switch work {
		case WorkLoop:
			c.InstrPerRep = float64(50_000 + size%3_000_000)
			c.Reps = 2
		case WorkStride:
			c.StrideInstr = float64(20_000 + size%1_000_000)
		case WorkSpin:
			c.SpinSec = float64(1+size%20) * 1e-3
		}

		mode := []Mode{ModeClean, ModeMux, ModeFaults}[int(modeSel)%3]
		var plan *faults.Plan
		if mode == ModeFaults {
			// A fuzzed schedule against the case's PMU. Hotplug is
			// excluded (CPUs: 0): unplugging the pinned CPU would
			// stall the task forever, which is a scheduler scenario,
			// not a counter-accuracy one.
			raw := faults.Random(seed, faults.Profile{
				HorizonSec: c.EstDurationSec(),
				PMUs:       []uint32{c.Type().PMU.PerfType},
				MaxEvents:  8,
				MinBudget:  1,
			})
			var keep []faults.Event
			for _, ev := range raw.Events() {
				switch ev.Kind {
				case faults.KindHotplugOff, faults.KindHotplugOn:
					continue
				}
				keep = append(keep, ev)
			}
			plan = faults.NewPlan(keep...)
		}

		res, err := RunWithPlan(&c, mode, plan)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}

		exp := c.Expected()
		degradationFree := res.Degradations.BusyRetries == 0 &&
			res.Degradations.DeferredStarts == 0 &&
			res.Degradations.MultiplexFallback == 0 &&
			res.Degradations.HotplugRebuilds == 0 &&
			res.Degradations.StaleReads == 0
		var rows []Row
		for _, ev := range eventOrder {
			want, ok := exp[ev]
			if !ok {
				continue
			}
			row := scoreRow(&c, mode, ev, want, res)
			rows = append(rows, row)

			rel, err := strconv.ParseFloat(row.RelErr, 64)
			if err != nil {
				t.Fatalf("rel_err %q unparseable: %v", row.RelErr, err)
			}
			if _, err := strconv.ParseFloat(row.Tolerance, 64); err != nil {
				t.Fatalf("tolerance %q unparseable: %v", row.Tolerance, err)
			}
			if math.IsNaN(rel) || math.IsInf(rel, 0) {
				t.Fatalf("%s: non-finite rel err %v", ev, rel)
			}
			o := res.Events[ev]
			scheduledFully := ev == EvEnergyJ || (o.ScaleFactor == 1 && !o.Stale && !o.Degraded)
			if degradationFree && scheduledFully {
				var obs float64
				if ev == EvEnergyJ {
					obs = res.EnergyJ
				} else {
					obs = float64(o.Final)
				}
				if absErr := math.Abs(obs - want); absErr > float64(o.Bound)+boundSlack(want)+Tolerance(ev)*want {
					t.Fatalf("%s degradation-free: error %v exceeds bound %d (+slack)", ev, absErr, o.Bound)
				}
			}
		}

		card := Scorecard{Schema: SchemaVersion, Models: []string{src.Name}, Rows: rows}
		card.Summary = summarize(rows)
		card.Digest = card.ComputeDigest()
		b := card.GoldenBytes()
		if !json.Valid(b) {
			t.Fatalf("scorecard is not valid JSON: %q", b)
		}
		var back Scorecard
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("scorecard does not round-trip: %v", err)
		}
		if back.Digest != card.Digest {
			t.Fatal("digest lost in round-trip")
		}
	})
}
