package analyze

import (
	"bytes"
	"strings"
	"testing"

	"hetpapi/internal/spantrace"
)

// buildTrace records a synthetic cross-layer trace with known busy
// times, migrations, syscalls and degradations, exports it and parses
// it back — exercising the full wire round trip the analyzer sees in
// production.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	r := spantrace.New(spantrace.Config{})
	r.Enable()
	cpu0 := r.Track("cpu0 P-core")
	cpu1 := r.Track("cpu1 E-core")
	sched := r.Track("sched")
	kern := r.Track("kernel")
	papi := r.Track("papi")
	r.BeginContext("test-run")

	// pid 1000: 2s on the P-core, then migrates and runs 1s on the
	// E-core after a 0.5s wait. pid 1001: 1s on the E-core.
	r.Span(cpu0, "hpl", "exec", 0, 2,
		spantrace.Int("pid", 1000), spantrace.Str("core_type", "P-core"))
	r.Span(cpu1, "spin", "exec", 0, 1,
		spantrace.Int("pid", 1001), spantrace.Str("core_type", "E-core"))
	r.Instant(sched, "migrate", "sched", 2.5,
		spantrace.Int("pid", 1000), spantrace.Int("from", 0), spantrace.Int("to", 1),
		spantrace.Str("from_type", "P-core"), spantrace.Str("to_type", "E-core"),
		spantrace.Str("task", "hpl"))
	r.Span(cpu1, "hpl", "exec", 2.5, 1,
		spantrace.Int("pid", 1000), spantrace.Str("core_type", "E-core"))

	for i := 0; i < 4; i++ {
		r.Instant(kern, "sys.read", "syscall", float64(i),
			spantrace.Err(nil), spantrace.Num("wall_ns", float64(100+i*100)))
	}
	r.Instant(kern, "sys.open", "syscall", 0.1,
		spantrace.Str("err", "EBUSY"), spantrace.Num("wall_ns", 900))
	r.Instant(papi, "degrade.busy-retry", "degrade", 0.2)
	r.Instant(papi, "degrade.busy-retry", "degrade", 0.3)
	r.Instant(kern, "fault.hotplug-off", "fault", 1.5, spantrace.Int("cpu", 1))

	var buf bytes.Buffer
	if err := spantrace.WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParse(t *testing.T) {
	tr := buildTrace(t)
	if got := tr.TrackName[1]; got != "cpu0 P-core" {
		t.Errorf("track 1 name = %q", got)
	}
	if tr.Other == nil || tr.Other.Tool != "hetpapitrace" {
		t.Errorf("otherData = %+v", tr.Other)
	}
	for _, ev := range tr.Events {
		if ev.Ph == "M" {
			t.Fatal("metadata event leaked into Events")
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("not json")); err == nil {
		t.Fatal("Parse accepted garbage")
	}
}

func TestAnalyzeAttribution(t *testing.T) {
	rep := Analyze(buildTrace(t))

	p := rep.ByCoreType["P-core"]
	e := rep.ByCoreType["E-core"]
	if p == nil || e == nil {
		t.Fatalf("ByCoreType = %+v", rep.ByCoreType)
	}
	if !near(p.BusySec, 2) || p.Spans != 1 {
		t.Errorf("P-core = %+v, want 2s over 1 span", p)
	}
	if !near(e.BusySec, 2) || e.Spans != 2 {
		t.Errorf("E-core = %+v, want 2s over 2 spans", e)
	}
	if !near(p.Share, 0.5) || !near(e.Share, 0.5) {
		t.Errorf("shares = %v / %v, want 0.5 each", p.Share, e.Share)
	}
}

func TestAnalyzeMigrations(t *testing.T) {
	rep := Analyze(buildTrace(t))
	if len(rep.Migrations) != 1 || rep.CrossTypeMigrations != 1 {
		t.Fatalf("migrations = %+v (cross=%d)", rep.Migrations, rep.CrossTypeMigrations)
	}
	m := rep.Migrations[0]
	if m.PID != 1000 || m.From != 0 || m.To != 1 || !m.CrossType() || !near(m.AtSec, 2.5) {
		t.Errorf("migration = %+v", m)
	}
}

func TestAnalyzeSyscalls(t *testing.T) {
	rep := Analyze(buildTrace(t))
	rd := rep.Syscalls["read"]
	if rd == nil || rd.Count != 4 {
		t.Fatalf("read stats = %+v", rd)
	}
	if rd.MinNs != 100 || rd.MaxNs != 400 || !near(rd.MeanNs, 250) {
		t.Errorf("read latency = %+v", rd)
	}
	if rd.P50Ns != 200 || rd.P95Ns != 400 {
		t.Errorf("read percentiles p50=%v p95=%v", rd.P50Ns, rd.P95Ns)
	}
	// 100,200 -> bucket 6/7; 300 -> 8; 400 -> 8.
	if rd.Buckets[8] != 2 {
		t.Errorf("read histogram = %v", rd.Buckets)
	}
	op := rep.Syscalls["open"]
	if op == nil || op.Errors["EBUSY"] != 1 {
		t.Fatalf("open stats = %+v", op)
	}
}

func TestAnalyzeDegradationsAndFaults(t *testing.T) {
	rep := Analyze(buildTrace(t))
	if rep.Degradations["busy-retry"] != 2 {
		t.Errorf("degradations = %v", rep.Degradations)
	}
	if rep.Faults["hotplug-off"] != 1 {
		t.Errorf("faults = %v", rep.Faults)
	}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	rep := Analyze(buildTrace(t))
	cp := rep.Critical
	if cp == nil {
		t.Fatal("no critical path")
	}
	// pid 1000 finishes last (3.5s): 3s busy, 0.5s waiting between its
	// P-core and E-core segments, one migration.
	if cp.PID != 1000 || cp.Task != "hpl" {
		t.Fatalf("critical path = %+v", cp)
	}
	if !near(cp.BusySec, 3) || !near(cp.WaitSec, 0.5) || cp.Segments != 2 || cp.Migrations != 1 {
		t.Errorf("critical path = %+v", cp)
	}
	if !near(cp.ByCoreType["P-core"], 2) || !near(cp.ByCoreType["E-core"], 1) {
		t.Errorf("critical path attribution = %v", cp.ByCoreType)
	}
}

func TestReportString(t *testing.T) {
	out := Analyze(buildTrace(t)).String()
	for _, want := range []string{
		"per-core-type attribution", "P-core", "E-core",
		"migrations: 1 total, 1 across core types",
		"syscall latency", "busy-retry", "hotplug-off",
		"critical path: pid 1000 (hpl)",
		"recorder self-overhead",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDiff(t *testing.T) {
	a := Analyze(buildTrace(t))
	b := Analyze(buildTrace(t))
	b.Migrations = append(b.Migrations, Migration{PID: 1001, FromType: "E-core", ToType: "P-core"})
	b.CrossTypeMigrations++
	b.Degradations["busy-retry"] = 5
	out := Diff(a, b)
	for _, want := range []string{
		"migrations: 1 -> 2 (+1)",
		"degrade busy-retry", "2 -> 5 (+3)",
		"critical path busy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	r := spantrace.New(spantrace.Config{})
	var buf bytes.Buffer
	if err := spantrace.WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(tr)
	if rep.Events != 0 || rep.Critical != nil || rep.DurationSec != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report renders nothing")
	}
}

func near(got, want float64) bool {
	d := got - want
	return d < 1e-6 && d > -1e-6
}
