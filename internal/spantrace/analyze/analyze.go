// Package analyze consumes exported span traces (the Chrome
// trace-event / Perfetto JSON that internal/spantrace writes) and
// computes the timeline answers the paper's debugging stories need:
// where the time went per core type, when tasks migrated between PMU
// domains, what the syscall traffic cost, and which task's timeline was
// the critical path of the run. It parses the JSON wire format rather
// than recorder snapshots so it works identically on live recorders,
// files written by cmd/hetpapitrace, and the hetpapid /trace endpoint.
package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"hetpapi/internal/spantrace"
)

// Trace is a parsed trace document.
type Trace struct {
	// Events are the non-metadata trace events in file order (the
	// exporter writes them time-sorted).
	Events []spantrace.JSONEvent
	// TrackName maps tids to their thread_name metadata.
	TrackName map[int]string
	// Other is the exporter's otherData envelope (nil when absent).
	Other *spantrace.JSONOtherData
}

// Parse reads an exported trace document.
func Parse(r io.Reader) (*Trace, error) {
	var doc spantrace.JSONTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("analyze: parsing trace: %w", err)
	}
	t := &Trace{TrackName: map[int]string{}, Other: doc.OtherData}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name == "thread_name" {
				if name, ok := ev.Args["name"].(string); ok {
					t.TrackName[ev.TID] = name
				}
			}
			continue
		}
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

// fnum reads a numeric arg (JSON numbers decode as float64).
func fnum(args map[string]any, key string) (float64, bool) {
	v, ok := args[key].(float64)
	return v, ok
}

// fstr reads a string arg.
func fstr(args map[string]any, key string) string {
	s, _ := args[key].(string)
	return s
}

// CoreTypeTime is the busy-time attribution of one core type.
type CoreTypeTime struct {
	// BusySec is the total exec-span time on cores of this type.
	BusySec float64
	// Spans is the number of exec spans attributed.
	Spans int
	// Share is BusySec over the total busy time of all types.
	Share float64
}

// Migration is one cross-CPU move parsed from the sched track.
type Migration struct {
	AtSec    float64
	PID      int
	From, To int
	FromType string
	ToType   string
	Task     string
}

// CrossType reports whether the migration crossed core types — the
// moves that change which PMU counts the task.
func (m Migration) CrossType() bool { return m.FromType != m.ToType }

// SyscallStats is the latency profile of one syscall op.
type SyscallStats struct {
	Op    string
	Count int
	// Errors counts non-"ok" results per errno name.
	Errors map[string]int
	// Wall-clock service time stats in nanoseconds.
	MinNs, MaxNs, MeanNs, P50Ns, P95Ns float64
	// Buckets is the log2 latency histogram: Buckets[i] counts calls
	// with wall_ns in [2^i, 2^(i+1)).
	Buckets map[int]int
}

// CriticalPath is the timeline of the last-finishing task: the longest
// chain of work the run could not have completed without.
type CriticalPath struct {
	PID        int
	Task       string
	StartSec   float64
	EndSec     float64
	BusySec    float64
	WaitSec    float64 // gaps between exec spans: runnable-but-waiting
	Segments   int     // exec spans on the path
	Migrations int     // migrations of the path's pid
	ByCoreType map[string]float64
}

// Report is the analyzer's output.
type Report struct {
	// DurationSec spans the earliest to the latest event timestamp.
	DurationSec float64
	Events      int
	Spans       int
	Instants    int
	// ByCoreType attributes exec time to core types.
	ByCoreType map[string]*CoreTypeTime
	// Migrations is the migration timeline, in time order.
	Migrations []Migration
	// CrossTypeMigrations counts migrations between different core
	// types (P<->E), the PMU-switching moves.
	CrossTypeMigrations int
	// Syscalls profiles the kernel-entry traffic per op.
	Syscalls map[string]*SyscallStats
	// Degradations counts degradation-ladder instants per kind.
	Degradations map[string]int
	// Faults counts fault transitions per name.
	Faults map[string]int
	// Critical is the critical-path timeline (nil without exec spans).
	Critical *CriticalPath
	// Overhead echoes the recorder's self-overhead report when the
	// trace carried one.
	Overhead *spantrace.OverheadReport
}

// Analyze computes the report for a parsed trace.
func Analyze(t *Trace) *Report {
	rep := &Report{
		ByCoreType:   map[string]*CoreTypeTime{},
		Syscalls:     map[string]*SyscallStats{},
		Degradations: map[string]int{},
		Faults:       map[string]int{},
	}
	if t.Other != nil {
		o := t.Other.Overhead
		rep.Overhead = &o
	}
	var tsMin, tsMax float64
	first := true
	latency := map[string][]float64{}
	byPid := map[int][]execSpan{}
	pidTask := map[int]string{}
	pidMigrations := map[int]int{}

	for i := range t.Events {
		ev := &t.Events[i]
		rep.Events++
		end := ev.Ts + ev.Dur
		if first || ev.Ts < tsMin {
			tsMin = ev.Ts
		}
		if first || end > tsMax {
			tsMax = end
		}
		first = false
		switch ev.Ph {
		case "X":
			rep.Spans++
		default:
			rep.Instants++
		}
		switch ev.Cat {
		case "exec":
			ct := fstr(ev.Args, "core_type")
			if ct == "" {
				ct = "unknown"
			}
			tt := rep.ByCoreType[ct]
			if tt == nil {
				tt = &CoreTypeTime{}
				rep.ByCoreType[ct] = tt
			}
			tt.BusySec += ev.Dur / 1e6
			tt.Spans++
			if pid, ok := fnum(ev.Args, "pid"); ok {
				p := int(pid)
				byPid[p] = append(byPid[p], execSpan{ev.Ts / 1e6, end / 1e6, ct})
				if pidTask[p] == "" {
					pidTask[p] = ev.Name
				}
			}
		case "sched":
			if ev.Name != "migrate" {
				break
			}
			pid, _ := fnum(ev.Args, "pid")
			from, _ := fnum(ev.Args, "from")
			to, _ := fnum(ev.Args, "to")
			m := Migration{
				AtSec:    ev.Ts / 1e6,
				PID:      int(pid),
				From:     int(from),
				To:       int(to),
				FromType: fstr(ev.Args, "from_type"),
				ToType:   fstr(ev.Args, "to_type"),
				Task:     fstr(ev.Args, "task"),
			}
			rep.Migrations = append(rep.Migrations, m)
			if m.CrossType() {
				rep.CrossTypeMigrations++
			}
			pidMigrations[m.PID]++
		case "syscall":
			op := strings.TrimPrefix(ev.Name, "sys.")
			st := rep.Syscalls[op]
			if st == nil {
				st = &SyscallStats{Op: op, Errors: map[string]int{}, Buckets: map[int]int{}}
				rep.Syscalls[op] = st
			}
			st.Count++
			if e := fstr(ev.Args, "err"); e != "" && e != "ok" {
				st.Errors[e]++
			}
			if ns, ok := fnum(ev.Args, "wall_ns"); ok && ns >= 0 {
				latency[op] = append(latency[op], ns)
				st.Buckets[log2Bucket(ns)]++
			}
		case "degrade":
			rep.Degradations[strings.TrimPrefix(ev.Name, "degrade.")]++
		case "fault", "fault.plan":
			rep.Faults[strings.TrimPrefix(ev.Name, "fault.")]++
		}
	}
	if !first {
		rep.DurationSec = (tsMax - tsMin) / 1e6
	}
	for op, ns := range latency {
		finishSyscallStats(rep.Syscalls[op], ns)
	}
	totalBusy := 0.0
	for _, tt := range rep.ByCoreType {
		totalBusy += tt.BusySec
	}
	if totalBusy > 0 {
		for _, tt := range rep.ByCoreType {
			tt.Share = tt.BusySec / totalBusy
		}
	}
	rep.Critical = criticalPath(byPid, pidTask, pidMigrations)
	return rep
}

// log2Bucket returns floor(log2(ns)) clamped at 0.
func log2Bucket(ns float64) int {
	if ns < 1 {
		return 0
	}
	return int(math.Floor(math.Log2(ns)))
}

func finishSyscallStats(st *SyscallStats, ns []float64) {
	if st == nil || len(ns) == 0 {
		return
	}
	sort.Float64s(ns)
	st.MinNs = ns[0]
	st.MaxNs = ns[len(ns)-1]
	sum := 0.0
	for _, v := range ns {
		sum += v
	}
	st.MeanNs = sum / float64(len(ns))
	st.P50Ns = percentile(ns, 0.50)
	st.P95Ns = percentile(ns, 0.95)
}

// percentile reads the p-quantile from sorted data (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// execSpan is one exec interval of a pid, in seconds.
type execSpan struct {
	start, end float64
	coreType   string
}

// criticalPath picks the last-finishing pid's exec timeline: the run
// cannot end before its slowest task, so that task's busy/wait
// breakdown is the wall-clock story of the run.
func criticalPath(byPid map[int][]execSpan, pidTask map[int]string, pidMigrations map[int]int) *CriticalPath {
	bestPid, bestEnd := -1, math.Inf(-1)
	for pid, spans := range byPid {
		for _, sp := range spans {
			if sp.end > bestEnd || (sp.end == bestEnd && pid < bestPid) {
				bestPid, bestEnd = pid, sp.end
			}
		}
	}
	if bestPid < 0 {
		return nil
	}
	spans := byPid[bestPid]
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	cp := &CriticalPath{
		PID:        bestPid,
		Task:       pidTask[bestPid],
		StartSec:   spans[0].start,
		EndSec:     bestEnd,
		Segments:   len(spans),
		Migrations: pidMigrations[bestPid],
		ByCoreType: map[string]float64{},
	}
	cursor := cp.StartSec
	for _, sp := range spans {
		if sp.start > cursor {
			cp.WaitSec += sp.start - cursor
		}
		cp.BusySec += sp.end - sp.start
		cp.ByCoreType[sp.coreType] += sp.end - sp.start
		if sp.end > cursor {
			cursor = sp.end
		}
	}
	return cp
}

// String renders the report as the analyzer's text output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events (%d spans, %d instants) over %.3fs simulated\n",
		r.Events, r.Spans, r.Instants, r.DurationSec)

	if len(r.ByCoreType) > 0 {
		b.WriteString("\nper-core-type attribution:\n")
		for _, name := range sortedKeys(r.ByCoreType) {
			tt := r.ByCoreType[name]
			fmt.Fprintf(&b, "  %-12s %9.3fs busy  %5.1f%%  (%d exec spans)\n",
				name, tt.BusySec, tt.Share*100, tt.Spans)
		}
	}

	fmt.Fprintf(&b, "\nmigrations: %d total, %d across core types\n",
		len(r.Migrations), r.CrossTypeMigrations)
	show := r.Migrations
	const maxShown = 12
	truncated := false
	if len(show) > maxShown {
		show = show[:maxShown]
		truncated = true
	}
	for _, m := range show {
		marker := " "
		if m.CrossType() {
			marker = "*"
		}
		fmt.Fprintf(&b, "  %s t=%8.3fs pid %d %s: cpu%d (%s) -> cpu%d (%s)\n",
			marker, m.AtSec, m.PID, m.Task, m.From, m.FromType, m.To, m.ToType)
	}
	if truncated {
		fmt.Fprintf(&b, "  ... %d more (\"*\" marks cross-core-type moves)\n", len(r.Migrations)-maxShown)
	}

	if len(r.Syscalls) > 0 {
		b.WriteString("\nsyscall latency (wall-clock service time):\n")
		for _, op := range sortedKeys(r.Syscalls) {
			st := r.Syscalls[op]
			errs := ""
			if len(st.Errors) > 0 {
				parts := make([]string, 0, len(st.Errors))
				for _, e := range sortedKeys(st.Errors) {
					parts = append(parts, fmt.Sprintf("%s×%d", e, st.Errors[e]))
				}
				errs = "  errors: " + strings.Join(parts, " ")
			}
			fmt.Fprintf(&b, "  %-10s n=%-6d p50=%6.0fns p95=%6.0fns max=%6.0fns%s\n",
				op, st.Count, st.P50Ns, st.P95Ns, st.MaxNs, errs)
		}
	}

	if len(r.Degradations) > 0 {
		b.WriteString("\ndegradation ladder:\n")
		for _, k := range sortedKeys(r.Degradations) {
			fmt.Fprintf(&b, "  %-20s %d\n", k, r.Degradations[k])
		}
	}
	if len(r.Faults) > 0 {
		b.WriteString("\nfault transitions:\n")
		for _, k := range sortedKeys(r.Faults) {
			fmt.Fprintf(&b, "  %-20s %d\n", k, r.Faults[k])
		}
	}

	if cp := r.Critical; cp != nil {
		fmt.Fprintf(&b, "\ncritical path: pid %d (%s), %.3fs -> %.3fs\n",
			cp.PID, cp.Task, cp.StartSec, cp.EndSec)
		fmt.Fprintf(&b, "  busy %.3fs, waiting %.3fs, %d segments, %d migrations\n",
			cp.BusySec, cp.WaitSec, cp.Segments, cp.Migrations)
		for _, name := range sortedKeys(cp.ByCoreType) {
			fmt.Fprintf(&b, "  on %-12s %.3fs\n", name, cp.ByCoreType[name])
		}
	}

	if o := r.Overhead; o != nil {
		fmt.Fprintf(&b, "\nrecorder self-overhead: %d emitted, %d retained, %d dropped, %d bytes\n",
			o.SpansEmitted, o.SpansRetained, o.SpansDropped, o.BytesRetained)
		if o.TickCostRatio > 0 {
			fmt.Fprintf(&b, "  tick cost: %.0fns disabled, %.0fns enabled (ratio %.3f)\n",
				o.TickNsDisabled, o.TickNsEnabled, o.TickCostRatio)
		}
	}
	return b.String()
}

// Diff renders the differences between two reports (a = baseline,
// b = candidate), for comparing two traces of the same scenario.
func Diff(a, b *Report) string {
	var out strings.Builder
	fmt.Fprintf(&out, "duration: %.3fs -> %.3fs (%+.3fs)\n",
		a.DurationSec, b.DurationSec, b.DurationSec-a.DurationSec)
	for _, name := range unionKeys(a.ByCoreType, b.ByCoreType) {
		var av, bv float64
		if t := a.ByCoreType[name]; t != nil {
			av = t.BusySec
		}
		if t := b.ByCoreType[name]; t != nil {
			bv = t.BusySec
		}
		fmt.Fprintf(&out, "busy %-12s %9.3fs -> %9.3fs (%+.3fs)\n", name, av, bv, bv-av)
	}
	fmt.Fprintf(&out, "migrations: %d -> %d (%+d); cross-type %d -> %d (%+d)\n",
		len(a.Migrations), len(b.Migrations), len(b.Migrations)-len(a.Migrations),
		a.CrossTypeMigrations, b.CrossTypeMigrations, b.CrossTypeMigrations-a.CrossTypeMigrations)
	for _, op := range unionKeys(a.Syscalls, b.Syscalls) {
		var ac, bc int
		if s := a.Syscalls[op]; s != nil {
			ac = s.Count
		}
		if s := b.Syscalls[op]; s != nil {
			bc = s.Count
		}
		if ac != bc {
			fmt.Fprintf(&out, "syscall %-10s %d -> %d (%+d)\n", op, ac, bc, bc-ac)
		}
	}
	for _, k := range unionKeys(a.Degradations, b.Degradations) {
		if a.Degradations[k] != b.Degradations[k] {
			fmt.Fprintf(&out, "degrade %-20s %d -> %d (%+d)\n",
				k, a.Degradations[k], b.Degradations[k], b.Degradations[k]-a.Degradations[k])
		}
	}
	ac, bc := a.Critical, b.Critical
	if ac != nil && bc != nil {
		fmt.Fprintf(&out, "critical path busy: %.3fs -> %.3fs (%+.3fs); wait %.3fs -> %.3fs\n",
			ac.BusySec, bc.BusySec, bc.BusySec-ac.BusySec, ac.WaitSec, bc.WaitSec)
	}
	return out.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unionKeys[A, B any](a map[string]A, b map[string]B) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	return sortedKeys(seen)
}
