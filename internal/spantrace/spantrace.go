// Package spantrace is a low-overhead, lock-minimal span/event recorder
// for the simulated heterogeneous stack. Every layer — scenario runs,
// core EventSet operations, perfevent syscalls, fault injections,
// degradation-ladder transitions, and the simulator's context switches
// and migrations — emits events onto named tracks (one per CPU, plus
// kernel/papi/scenario tracks) with sim-clock timestamps, tagged with an
// explicit trace-context ID that is begun at the scenario layer and
// propagated down the stack.
//
// Design constraints, in the spirit of Diamond et al.'s "What Is the
// Cost of Energy Monitoring?": the recorder must measure its own cost
// and a disabled recorder must cost a few nanoseconds per
// instrumentation site. Emission is gated twice: call sites check
// Enabled() (a nil check plus one atomic load) before building args, and
// the emit path re-checks. Storage is a fixed-capacity ring per track,
// each guarded by its own mutex so tracks never contend with each other;
// when a ring wraps, the oldest events are dropped and counted rather
// than blocking or growing.
//
// spantrace is a leaf package: it imports nothing from this module, so
// every layer (sim, perfevent, core, faults, scenario, telemetry) can
// depend on it without cycles.
package spantrace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Phase distinguishes event shapes, mirroring the Chrome trace-event
// phases the exporter emits.
type Phase uint8

const (
	// PhaseSpan is a complete span with a start and a duration
	// (trace-event phase "X").
	PhaseSpan Phase = iota
	// PhaseInstant is a point event (trace-event phase "i").
	PhaseInstant
)

// String returns the trace-event phase letter.
func (p Phase) String() string {
	if p == PhaseSpan {
		return "X"
	}
	return "i"
}

// Arg is one key/value annotation on an event. A small struct slice is
// used instead of a map so that emitting an event with a handful of args
// costs one backing-array allocation, not a hash table.
type Arg struct {
	Key   string
	SVal  string
	FVal  float64
	IsNum bool
}

// Str builds a string-valued arg.
func Str(key, val string) Arg { return Arg{Key: key, SVal: val} }

// Num builds a float-valued arg.
func Num(key string, val float64) Arg { return Arg{Key: key, FVal: val, IsNum: true} }

// Int builds an integer-valued arg (stored as a float, exact to 2^53).
func Int(key string, val int) Arg { return Arg{Key: key, FVal: float64(val), IsNum: true} }

// Err builds the conventional "err" arg: "ok" for nil, the error text
// otherwise.
func Err(err error) Arg {
	if err == nil {
		return Arg{Key: "err", SVal: "ok"}
	}
	return Arg{Key: "err", SVal: err.Error()}
}

// Event is one recorded span or instant. Timestamps are simulated
// seconds (the machine clock), never wall clock; wall-clock measurements
// such as syscall service time travel as args so the trace itself stays
// deterministic for a fixed scenario seed.
type Event struct {
	ID       uint64  // unique, ascending in emission order
	Track    int     // index into the recorder's track table
	Phase    Phase   // span or instant
	Name     string  // e.g. "sys.open", "degrade.multiplex-fallback"
	Cat      string  // category, e.g. "syscall", "exec", "fault"
	Ctx      uint64  // trace-context ID current at emission (0 = none)
	StartSec float64 // sim-clock start (instants: the point in time)
	DurSec   float64 // span duration; 0 for instants
	Args     []Arg
}

// approxBytes estimates the retained footprint of the event for the
// self-overhead report: the fixed struct plus string payloads.
func (e *Event) approxBytes() int {
	n := 64 + len(e.Name) + len(e.Cat)
	for _, a := range e.Args {
		n += 32 + len(a.Key) + len(a.SVal)
	}
	return n
}

// track is one named ring buffer. Rings drop the oldest event on wrap:
// a long run keeps its most recent window, and the drop counter reports
// how much history was shed.
type track struct {
	name string

	mu      sync.Mutex
	buf     []Event
	start   int // index of oldest event
	n       int // live events
	dropped uint64
}

func (t *track) push(ev Event) (droppedOne bool) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
		droppedOne = true
	} else {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
	}
	t.mu.Unlock()
	return droppedOne
}

// snapshot appends the track's live events, oldest first.
func (t *track) snapshot(dst []Event) ([]Event, uint64) {
	t.mu.Lock()
	for i := 0; i < t.n; i++ {
		dst = append(dst, t.buf[(t.start+i)%len(t.buf)])
	}
	d := t.dropped
	t.mu.Unlock()
	return dst, d
}

// Config sizes a Recorder.
type Config struct {
	// TrackCapacity is the fixed per-track ring capacity in events.
	// Defaults to 8192.
	TrackCapacity int
}

// DefaultTrackCapacity is used when Config.TrackCapacity is zero.
const DefaultTrackCapacity = 8192

// Recorder collects events onto named tracks. All methods are safe for
// concurrent use and safe on a nil receiver (a nil recorder is
// permanently disabled), so instrumentation sites never need a nil
// check beyond calling Enabled.
type Recorder struct {
	enabled atomic.Bool
	ctx     atomic.Uint64 // current trace-context ID
	nextID  atomic.Uint64
	emitted atomic.Uint64
	dropped atomic.Uint64

	mu       sync.Mutex // guards track registry and context names
	tracks   []*track
	byName   map[string]int
	ctxNames map[uint64]string
	nextCtx  uint64

	cap int

	tickDisabledNs atomic.Uint64 // float64 bits; benchmark-measured
	tickEnabledNs  atomic.Uint64 // float64 bits
}

// New builds a recorder. It starts disabled; call Enable to record.
func New(cfg Config) *Recorder {
	c := cfg.TrackCapacity
	if c <= 0 {
		c = DefaultTrackCapacity
	}
	return &Recorder{
		byName:   map[string]int{},
		ctxNames: map[uint64]string{},
		cap:      c,
	}
}

// Enable turns recording on.
func (r *Recorder) Enable() {
	if r != nil {
		r.enabled.Store(true)
	}
}

// Disable turns recording off. Already-recorded events are kept.
func (r *Recorder) Disable() {
	if r != nil {
		r.enabled.Store(false)
	}
}

// Enabled reports whether emission is on. This is the per-site gate:
// on a nil or disabled recorder it costs a nil check plus at most one
// atomic load, so instrumentation can stay permanently compiled in.
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// Track returns the id for the named track, registering it on first
// use. Ids are stable for the life of the recorder. Returns -1 on a nil
// recorder.
func (r *Recorder) Track(name string) int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := len(r.tracks)
	r.tracks = append(r.tracks, &track{name: name, buf: make([]Event, r.cap)})
	r.byName[name] = id
	return id
}

// BeginContext allocates a fresh trace-context ID, names it, and makes
// it current. Every subsequently emitted event is tagged with it until
// the next BeginContext/SetContext. Returns 0 on a nil recorder.
func (r *Recorder) BeginContext(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.nextCtx++
	id := r.nextCtx
	r.ctxNames[id] = name
	r.mu.Unlock()
	r.ctx.Store(id)
	return id
}

// SetContext makes a previously begun context current (0 clears).
func (r *Recorder) SetContext(id uint64) {
	if r != nil {
		r.ctx.Store(id)
	}
}

// CurrentContext returns the context ID events are being tagged with.
func (r *Recorder) CurrentContext() uint64 {
	if r == nil {
		return 0
	}
	return r.ctx.Load()
}

// Span records a complete span on the track. Non-finite timestamps are
// rejected (counted as drops); negative or non-finite durations clamp
// to zero so the exported trace stays well-formed.
func (r *Recorder) Span(trk int, name, cat string, startSec, durSec float64, args ...Arg) {
	if !r.Enabled() {
		return
	}
	// Clamp anything whose microsecond form is not finite (NaN, Inf,
	// or finite-but-overflowing) so the exported trace stays valid JSON.
	if durSec < 0 || !finiteMicros(durSec) {
		durSec = 0
	}
	r.emit(trk, PhaseSpan, name, cat, startSec, durSec, args)
}

// Instant records a point event on the track.
func (r *Recorder) Instant(trk int, name, cat string, atSec float64, args ...Arg) {
	if !r.Enabled() {
		return
	}
	r.emit(trk, PhaseInstant, name, cat, atSec, 0, args)
}

// finiteMicros reports whether v survives the exporter's seconds-to-
// microseconds conversion as a finite number. NaN and Inf fail, and so
// do finite values large enough that v*1e6 overflows.
func finiteMicros(v float64) bool {
	us := v * 1e6
	return !math.IsNaN(us) && !math.IsInf(us, 0)
}

func (r *Recorder) emit(trk int, ph Phase, name, cat string, startSec, durSec float64, args []Arg) {
	if trk < 0 || !finiteMicros(startSec) {
		r.dropped.Add(1)
		return
	}
	r.mu.Lock()
	if trk >= len(r.tracks) {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	t := r.tracks[trk]
	r.mu.Unlock()
	ev := Event{
		ID:       r.nextID.Add(1),
		Track:    trk,
		Phase:    ph,
		Name:     name,
		Cat:      cat,
		Ctx:      r.ctx.Load(),
		StartSec: startSec,
		DurSec:   durSec,
		Args:     args,
	}
	r.emitted.Add(1)
	if t.push(ev) {
		r.dropped.Add(1)
	}
}

// RecordTickCost stores benchmark-measured per-tick costs (wall ns per
// simulator tick with the recorder disabled vs enabled) into the
// self-overhead report. The benchmark layer owns the measurement; the
// recorder only carries the result.
func (r *Recorder) RecordTickCost(disabledNs, enabledNs float64) {
	if r == nil {
		return
	}
	r.tickDisabledNs.Store(math.Float64bits(disabledNs))
	r.tickEnabledNs.Store(math.Float64bits(enabledNs))
}

// Stats is a point-in-time count of recorder activity.
type Stats struct {
	Enabled  bool
	Tracks   int
	Emitted  uint64 // events offered to rings (accepted emissions)
	Retained uint64 // events currently live across all rings
	Dropped  uint64 // oldest-evicted on wrap + rejected (bad track/timestamp)
	Bytes    uint64 // approximate retained footprint
}

// Stats returns current counters. Safe on a nil recorder.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{
		Enabled: r.enabled.Load(),
		Emitted: r.emitted.Load(),
		Dropped: r.dropped.Load(),
	}
	r.mu.Lock()
	tracks := append([]*track(nil), r.tracks...)
	r.mu.Unlock()
	s.Tracks = len(tracks)
	for _, t := range tracks {
		t.mu.Lock()
		s.Retained += uint64(t.n)
		for i := 0; i < t.n; i++ {
			s.Bytes += uint64(t.buf[(t.start+i)%len(t.buf)].approxBytes())
		}
		t.mu.Unlock()
	}
	return s
}

// OverheadReport is the recorder's self-measurement, in the same spirit
// as the telemetry collector's overhead gauges: what tracing emitted,
// what it holds, and what it costs per simulator tick.
type OverheadReport struct {
	SpansEmitted   uint64  `json:"spans_emitted"`
	SpansRetained  uint64  `json:"spans_retained"`
	SpansDropped   uint64  `json:"spans_dropped"`
	BytesRetained  uint64  `json:"bytes_retained"`
	TickNsDisabled float64 `json:"tick_ns_disabled,omitempty"` // benchmark-measured
	TickNsEnabled  float64 `json:"tick_ns_enabled,omitempty"`  // benchmark-measured
	// TickCostRatio is enabled/disabled per-tick cost (1.0 = free);
	// zero when the benchmark has not run.
	TickCostRatio float64 `json:"tick_cost_ratio,omitempty"`
}

// Overhead assembles the self-overhead report.
func (r *Recorder) Overhead() OverheadReport {
	st := r.Stats()
	rep := OverheadReport{
		SpansEmitted:  st.Emitted,
		SpansRetained: st.Retained,
		SpansDropped:  st.Dropped,
		BytesRetained: st.Bytes,
	}
	if r != nil {
		rep.TickNsDisabled = math.Float64frombits(r.tickDisabledNs.Load())
		rep.TickNsEnabled = math.Float64frombits(r.tickEnabledNs.Load())
		if rep.TickNsDisabled > 0 {
			rep.TickCostRatio = rep.TickNsEnabled / rep.TickNsDisabled
		}
	}
	return rep
}

// Snapshot is a consistent copy-on-read view of the recorder for export
// and analysis: all live events globally sorted by time, the track name
// table, the context name table, and the overhead report.
type Snapshot struct {
	TrackNames []string
	Events     []Event
	Contexts   map[uint64]string
	Dropped    map[string]uint64 // per-track wrap drops
	Overhead   OverheadReport
}

// Snapshot copies out the recorder state. Each ring is locked briefly
// in turn; emission proceeds on other tracks meanwhile. Events are
// sorted by (StartSec, ID), which makes per-track timestamps monotonic
// in the export. Safe on a nil recorder (returns an empty snapshot).
func (r *Recorder) Snapshot() *Snapshot {
	snap := &Snapshot{Contexts: map[uint64]string{}, Dropped: map[string]uint64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	tracks := append([]*track(nil), r.tracks...)
	snap.TrackNames = make([]string, len(tracks))
	for id, name := range r.ctxNames {
		snap.Contexts[id] = name
	}
	r.mu.Unlock()
	for i, t := range tracks {
		snap.TrackNames[i] = t.name
		var d uint64
		snap.Events, d = t.snapshot(snap.Events)
		if d > 0 {
			snap.Dropped[t.name] = d
		}
	}
	sort.Slice(snap.Events, func(i, j int) bool {
		a, b := &snap.Events[i], &snap.Events[j]
		if a.StartSec != b.StartSec {
			return a.StartSec < b.StartSec
		}
		return a.ID < b.ID
	})
	snap.Overhead = r.Overhead()
	return snap
}

// Reset drops all recorded events and contexts but keeps track
// registrations, counters for emitted/dropped, and the enabled state.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	tracks := append([]*track(nil), r.tracks...)
	r.ctxNames = map[uint64]string{}
	r.nextCtx = 0
	r.mu.Unlock()
	r.ctx.Store(0)
	for _, t := range tracks {
		t.mu.Lock()
		t.start, t.n = 0, 0
		t.mu.Unlock()
	}
}
