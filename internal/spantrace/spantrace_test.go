package spantrace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Enable()
	r.Disable()
	if got := r.Track("x"); got != -1 {
		t.Fatalf("nil Track = %d, want -1", got)
	}
	if got := r.BeginContext("run"); got != 0 {
		t.Fatalf("nil BeginContext = %d, want 0", got)
	}
	r.SetContext(7)
	if got := r.CurrentContext(); got != 0 {
		t.Fatalf("nil CurrentContext = %d, want 0", got)
	}
	r.Span(0, "s", "c", 0, 1)
	r.Instant(0, "i", "c", 0)
	r.RecordTickCost(1, 2)
	r.Reset()
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", st)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 0 || len(snap.TrackNames) != 0 {
		t.Fatalf("nil Snapshot not empty: %+v", snap)
	}
}

func TestDisabledRecorderEmitsNothing(t *testing.T) {
	r := New(Config{})
	trk := r.Track("t")
	r.Span(trk, "s", "c", 0, 1)
	r.Instant(trk, "i", "c", 0)
	st := r.Stats()
	if st.Emitted != 0 || st.Retained != 0 {
		t.Fatalf("disabled recorder stored events: %+v", st)
	}
	r.Enable()
	r.Instant(trk, "i", "c", 0)
	if st := r.Stats(); st.Emitted != 1 || st.Retained != 1 {
		t.Fatalf("enabled recorder stats = %+v, want 1 emitted/retained", st)
	}
	r.Disable()
	r.Instant(trk, "i", "c", 1)
	if st := r.Stats(); st.Emitted != 1 {
		t.Fatalf("disable did not stop emission: %+v", st)
	}
	if st := r.Stats(); st.Retained != 1 {
		t.Fatalf("disable lost recorded events: %+v", st)
	}
}

func TestTrackRegistrationIdempotent(t *testing.T) {
	r := New(Config{})
	a := r.Track("cpu0")
	b := r.Track("cpu1")
	if a == b {
		t.Fatalf("distinct names share id %d", a)
	}
	if got := r.Track("cpu0"); got != a {
		t.Fatalf("re-registering cpu0: got %d, want %d", got, a)
	}
}

func TestRingWraparoundDropsOldest(t *testing.T) {
	r := New(Config{TrackCapacity: 4})
	r.Enable()
	trk := r.Track("t")
	for i := 0; i < 10; i++ {
		r.Instant(trk, fmt.Sprintf("ev%d", i), "c", float64(i))
	}
	st := r.Stats()
	if st.Emitted != 10 || st.Retained != 4 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want emitted 10, retained 4, dropped 6", st)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(snap.Events))
	}
	for i, ev := range snap.Events {
		want := fmt.Sprintf("ev%d", i+6)
		if ev.Name != want {
			t.Errorf("event %d = %q, want %q (newest window)", i, ev.Name, want)
		}
	}
	if snap.Dropped["t"] != 6 {
		t.Errorf("per-track drops = %v, want t:6", snap.Dropped)
	}
}

func TestEmitRejectsBadInput(t *testing.T) {
	r := New(Config{})
	r.Enable()
	trk := r.Track("t")
	r.Instant(-1, "neg", "c", 0)
	r.Instant(99, "oob", "c", 0)
	r.Instant(trk, "nan", "c", math.NaN())
	r.Instant(trk, "inf", "c", math.Inf(1))
	r.Span(trk, "nan-dur", "c", 1, math.NaN())
	r.Span(trk, "neg-dur", "c", 1, -5)
	st := r.Stats()
	if st.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4 (neg, oob, nan, inf)", st.Dropped)
	}
	if st.Retained != 2 {
		t.Fatalf("retained = %d, want 2 (clamped-duration spans)", st.Retained)
	}
	for _, ev := range r.Snapshot().Events {
		if ev.DurSec != 0 {
			t.Errorf("%s: duration %v, want clamped to 0", ev.Name, ev.DurSec)
		}
	}
}

func TestContextTagging(t *testing.T) {
	r := New(Config{})
	r.Enable()
	trk := r.Track("t")
	r.Instant(trk, "before", "c", 0)
	id1 := r.BeginContext("run-one")
	r.Instant(trk, "in1", "c", 1)
	id2 := r.BeginContext("run-two")
	r.Instant(trk, "in2", "c", 2)
	r.SetContext(id1)
	r.Instant(trk, "back", "c", 3)
	r.SetContext(0)
	r.Instant(trk, "after", "c", 4)

	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("context ids %d, %d: want distinct nonzero", id1, id2)
	}
	want := map[string]uint64{"before": 0, "in1": id1, "in2": id2, "back": id1, "after": 0}
	snap := r.Snapshot()
	for _, ev := range snap.Events {
		if ev.Ctx != want[ev.Name] {
			t.Errorf("%s: ctx %d, want %d", ev.Name, ev.Ctx, want[ev.Name])
		}
	}
	if snap.Contexts[id1] != "run-one" || snap.Contexts[id2] != "run-two" {
		t.Errorf("context names = %v", snap.Contexts)
	}
}

func TestSnapshotSortedByTimeThenID(t *testing.T) {
	r := New(Config{})
	r.Enable()
	a, b := r.Track("a"), r.Track("b")
	r.Instant(a, "late", "c", 5)
	r.Instant(b, "early", "c", 1)
	r.Instant(a, "tie1", "c", 3)
	r.Instant(b, "tie2", "c", 3)
	snap := r.Snapshot()
	var names []string
	for _, ev := range snap.Events {
		names = append(names, ev.Name)
	}
	want := []string{"early", "tie1", "tie2", "late"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order %v, want %v", names, want)
		}
	}
}

func TestResetKeepsTracksAndCounters(t *testing.T) {
	r := New(Config{})
	r.Enable()
	trk := r.Track("t")
	r.BeginContext("run")
	r.Instant(trk, "x", "c", 0)
	r.Reset()
	st := r.Stats()
	if st.Retained != 0 {
		t.Fatalf("retained after reset = %d", st.Retained)
	}
	if st.Emitted != 1 {
		t.Fatalf("emitted counter lost by reset: %d", st.Emitted)
	}
	if !st.Enabled {
		t.Fatal("reset disabled the recorder")
	}
	if got := r.Track("t"); got != trk {
		t.Fatalf("track id changed across reset: %d -> %d", trk, got)
	}
	if r.CurrentContext() != 0 {
		t.Fatal("reset kept a current context")
	}
}

func TestOverheadReport(t *testing.T) {
	r := New(Config{})
	r.Enable()
	trk := r.Track("t")
	r.Instant(trk, "x", "c", 0, Str("k", "v"))
	r.RecordTickCost(100, 103)
	rep := r.Overhead()
	if rep.SpansEmitted != 1 || rep.SpansRetained != 1 {
		t.Fatalf("overhead = %+v", rep)
	}
	if rep.BytesRetained == 0 {
		t.Fatal("bytes retained = 0, want > 0")
	}
	if rep.TickCostRatio < 1.02 || rep.TickCostRatio > 1.04 {
		t.Fatalf("tick cost ratio = %v, want 103/100", rep.TickCostRatio)
	}
}

func TestArgConstructors(t *testing.T) {
	if a := Str("k", "v"); a.Key != "k" || a.SVal != "v" || a.IsNum {
		t.Errorf("Str = %+v", a)
	}
	if a := Num("k", 1.5); a.FVal != 1.5 || !a.IsNum {
		t.Errorf("Num = %+v", a)
	}
	if a := Int("k", 7); a.FVal != 7 || !a.IsNum {
		t.Errorf("Int = %+v", a)
	}
	if a := Err(nil); a.Key != "err" || a.SVal != "ok" {
		t.Errorf("Err(nil) = %+v", a)
	}
	if a := Err(errors.New("EBUSY")); a.SVal != "EBUSY" {
		t.Errorf("Err = %+v", a)
	}
}

func TestConcurrentEmission(t *testing.T) {
	r := New(Config{TrackCapacity: 64})
	r.Enable()
	const workers, per = 8, 200
	tracks := make([]int, workers)
	for i := range tracks {
		tracks[i] = r.Track(fmt.Sprintf("w%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Instant(tracks[w], "e", "c", float64(i))
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if st.Emitted != workers*per {
		t.Fatalf("emitted = %d, want %d", st.Emitted, workers*per)
	}
	if st.Retained != workers*64 {
		t.Fatalf("retained = %d, want %d", st.Retained, workers*64)
	}
}

func TestExportJSONShape(t *testing.T) {
	r := New(Config{})
	r.Enable()
	cpu := r.Track("cpu0 P-core")
	kern := r.Track("kernel")
	ctx := r.BeginContext("run")
	r.Span(cpu, "hpl", "exec", 1.0, 0.5, Int("pid", 1000))
	r.Instant(kern, "sys.open", "syscall", 1.2, Err(nil), Num("wall_ns", 420))

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
	var doc JSONTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 1 process_name + 2 thread_name + 2 data events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	meta := map[int]string{}
	var span, instant *JSONEvent
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			name, _ := ev.Args["name"].(string)
			meta[ev.TID] = name
		case ev.Ph == "X":
			span = ev
		case ev.Ph == "i":
			instant = ev
		}
	}
	if meta[cpu+1] != "cpu0 P-core" || meta[kern+1] != "kernel" {
		t.Errorf("thread names = %v", meta)
	}
	if span == nil || span.Ts != 1.0*1e6 || span.Dur != 0.5*1e6 {
		t.Fatalf("span = %+v", span)
	}
	if got, _ := span.Args["ctx"].(float64); uint64(got) != ctx {
		t.Errorf("span ctx arg = %v, want %d", span.Args["ctx"], ctx)
	}
	if span.Args["ctx_name"] != "run" {
		t.Errorf("span ctx_name = %v", span.Args["ctx_name"])
	}
	if instant == nil || instant.S != "t" || instant.Args["err"] != "ok" {
		t.Fatalf("instant = %+v", instant)
	}
	if doc.OtherData == nil || doc.OtherData.Tool != "hetpapitrace" {
		t.Fatalf("otherData = %+v", doc.OtherData)
	}
	if doc.OtherData.Overhead.SpansEmitted != 2 {
		t.Errorf("otherData overhead = %+v", doc.OtherData.Overhead)
	}
}

func TestExportPerTrackMonotonic(t *testing.T) {
	r := New(Config{TrackCapacity: 16})
	r.Enable()
	a, b := r.Track("a"), r.Track("b")
	// Interleave out-of-order emission across tracks; wrap track a.
	for i := 20; i > 0; i-- {
		r.Instant(a, "e", "c", float64(i%7))
		r.Instant(b, "e", "c", float64(i%5))
	}
	doc := ExportJSON(r.Snapshot())
	last := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < last[ev.TID] {
			t.Fatalf("tid %d ts regressed: %v after %v", ev.TID, ev.Ts, last[ev.TID])
		}
		last[ev.TID] = ev.Ts
	}
}
