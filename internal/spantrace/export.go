// Chrome trace-event / Perfetto JSON export. The output is the JSON
// object form of the trace-event format ({"traceEvents": [...]}), which
// ui.perfetto.dev and chrome://tracing both open directly. Each recorder
// track becomes one thread row (pid 1, tid = track id + 1), named via
// "M" metadata events; spans are "X" complete events and instants are
// "i" events with thread scope. Timestamps are microseconds of simulated
// time. Recorder stats and the context-ID name table ride in the
// "otherData" envelope key, which trace viewers ignore.
package spantrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// tracePID is the single synthetic process all tracks live under.
const tracePID = 1

// JSONEvent is one trace-event entry as exported; it is exported so the
// analyzer can unmarshal traces without re-declaring the wire format.
type JSONEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope, "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// JSONTrace is the top-level exported document.
type JSONTrace struct {
	TraceEvents     []JSONEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       *JSONOtherData `json:"otherData,omitempty"`
}

// JSONOtherData carries recorder-level data that viewers ignore but the
// analyzer and tests consume.
type JSONOtherData struct {
	Tool     string            `json:"tool"`
	Contexts map[string]string `json:"contexts,omitempty"` // ctx id -> name
	Dropped  map[string]uint64 `json:"dropped,omitempty"`  // track -> wrap drops
	Overhead OverheadReport    `json:"overhead"`
}

// ArgsMap converts an event's arg list to the exported args object,
// adding the trace-context tag.
func (e *Event) ArgsMap(contexts map[uint64]string) map[string]any {
	if len(e.Args) == 0 && e.Ctx == 0 {
		return nil
	}
	m := make(map[string]any, len(e.Args)+2)
	for _, a := range e.Args {
		switch {
		case !a.IsNum:
			m[a.Key] = a.SVal
		case math.IsNaN(a.FVal) || math.IsInf(a.FVal, 0):
			// JSON has no NaN/Inf; keep the value as text rather than
			// poisoning the whole document.
			m[a.Key] = fmt.Sprint(a.FVal)
		default:
			m[a.Key] = a.FVal
		}
	}
	if e.Ctx != 0 {
		m["ctx"] = e.Ctx
		if name, ok := contexts[e.Ctx]; ok {
			m["ctx_name"] = name
		}
	}
	return m
}

// ExportJSON converts a snapshot into the trace-event document.
func ExportJSON(snap *Snapshot) *JSONTrace {
	doc := &JSONTrace{
		// Pre-size: one metadata event per track plus one per event.
		TraceEvents:     make([]JSONEvent, 0, len(snap.TrackNames)+1+len(snap.Events)),
		DisplayTimeUnit: "ms",
		OtherData: &JSONOtherData{
			Tool:     "hetpapitrace",
			Overhead: snap.Overhead,
		},
	}
	if len(snap.Contexts) > 0 {
		doc.OtherData.Contexts = make(map[string]string, len(snap.Contexts))
		for id, name := range snap.Contexts {
			doc.OtherData.Contexts[fmt.Sprint(id)] = name
		}
	}
	if len(snap.Dropped) > 0 {
		doc.OtherData.Dropped = snap.Dropped
	}
	doc.TraceEvents = append(doc.TraceEvents, JSONEvent{
		Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "hetpapi"},
	})
	for i, name := range snap.TrackNames {
		doc.TraceEvents = append(doc.TraceEvents, JSONEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: i + 1,
			Args: map[string]any{"name": name},
		})
	}
	// snap.Events is sorted by (StartSec, ID), so per-(pid,tid)
	// timestamps come out monotonically non-decreasing.
	for i := range snap.Events {
		ev := &snap.Events[i]
		je := JSONEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   ev.Phase.String(),
			Ts:   ev.StartSec * 1e6,
			PID:  tracePID,
			TID:  ev.Track + 1,
			ID:   fmt.Sprint(ev.ID),
			Args: ev.ArgsMap(snap.Contexts),
		}
		switch ev.Phase {
		case PhaseSpan:
			je.Dur = ev.DurSec * 1e6
		case PhaseInstant:
			je.S = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, je)
	}
	return doc
}

// WriteJSON exports the snapshot as Perfetto-loadable JSON to w.
func WriteJSON(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(ExportJSON(snap)); err != nil {
		return err
	}
	return bw.Flush()
}
