// Fuzz target for the Perfetto exporter round trip. Lives in package
// spantrace_test so it can drive the analyzer's parser over the
// exported bytes without an import cycle.
package spantrace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"hetpapi/internal/spantrace"
	"hetpapi/internal/spantrace/analyze"
)

// FuzzSpanExport decodes arbitrary bytes into a stream of recorder
// operations (spans, instants, context switches, resets — including
// NaN/Inf timestamps and out-of-range track ids) and asserts the
// exporter's contract: the output is valid JSON, per-track timestamps
// are monotonically non-decreasing, event IDs are unique, and the
// analyzer parses the document back without error.
func FuzzSpanExport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{0xFF, 0x00, 0x7F, 0x80, 0x01, 0x40, 0x20, 0x10, 0x08, 0x04})
	// A float payload that decodes to NaN under Float64frombits.
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF8, 0x7F, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec := spantrace.New(spantrace.Config{TrackCapacity: 64})
		rec.Enable()
		// A couple of fixed tracks so small inputs still hit the rings.
		rec.Track("t0")
		rec.Track("t1")

		// Interpret the input as an op stream: 1 op byte + up to 17
		// payload bytes per step.
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			ts := takeFloat(&data)
			switch op % 7 {
			case 0:
				rec.Instant(int(op/7)%4, name(op), "cat", ts)
			case 1:
				rec.Span(int(op/7)%4, name(op), "cat", ts, takeFloat(&data),
					spantrace.Int("k", int(op)), spantrace.Str("s", name(op)))
			case 2:
				rec.Track(name(op))
			case 3:
				rec.BeginContext(name(op))
			case 4:
				rec.SetContext(uint64(op))
			case 5:
				// Out-of-range tracks must be rejected, not exported.
				rec.Instant(int(op)+100, name(op), "cat", ts)
			case 6:
				if op == 6 {
					rec.Reset()
				} else {
					rec.Span(0, name(op), "cat", ts, math.NaN())
				}
			}
		}

		var buf bytes.Buffer
		if err := spantrace.WriteJSON(&buf, rec.Snapshot()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("export is not valid JSON: %q", buf.String())
		}

		var doc spantrace.JSONTrace
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("export does not round-trip through the wire types: %v", err)
		}
		lastTs := map[[2]int]float64{}
		seen := map[string]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" {
				continue
			}
			if math.IsNaN(ev.Ts) || math.IsInf(ev.Ts, 0) {
				t.Fatalf("non-finite exported timestamp: %+v", ev)
			}
			key := [2]int{ev.PID, ev.TID}
			if prev, ok := lastTs[key]; ok && ev.Ts < prev {
				t.Fatalf("track (%d,%d) timestamp regressed: %v after %v", ev.PID, ev.TID, ev.Ts, prev)
			}
			lastTs[key] = ev.Ts
			if ev.ID != "" {
				if seen[ev.ID] {
					t.Fatalf("duplicate event id %q", ev.ID)
				}
				seen[ev.ID] = true
			}
		}

		if _, err := analyze.Parse(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("analyzer rejects the export: %v", err)
		}
	})
}

// takeFloat consumes 8 bytes as a float64 (any bit pattern, so NaN and
// Inf are reachable); short inputs yield small finite values.
func takeFloat(data *[]byte) float64 {
	d := *data
	if len(d) < 8 {
		if len(d) == 0 {
			return 0
		}
		v := float64(d[0])
		*data = d[1:]
		return v
	}
	bits := uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 | uint64(d[3])<<24 |
		uint64(d[4])<<32 | uint64(d[5])<<40 | uint64(d[6])<<48 | uint64(d[7])<<56
	*data = d[8:]
	return math.Float64frombits(bits)
}

func name(op byte) string { return fmt.Sprintf("ev%d", op%11) }
