// Package dvfs implements the frequency governor of the simulated machines.
//
// Two control loops run at different cadences, mirroring how real systems
// behave:
//
//   - A fast power loop (HWP-style) scales a single performance level for
//     all core types up and down so the package tracks the RAPL cap
//     currently in force (PL2 while the turbo budget lasts, then PL1).
//     Both core types scale proportionally within their own frequency
//     ranges, which is what produces the paper's Figure 1 shape: an
//     initial all-max spike, then P-cores near 2.6-2.9 GHz and E-cores near
//     2.2-2.4 GHz on the 65 W plateau.
//
//   - A slow thermal loop (step_wise-style) only active on machines with a
//     passive trip point (the OrangePi). When the zone crosses the trip it
//     steps the Performance-class (big) cluster down one OPP at a time,
//     reaching for the LITTLE cluster only if that is not enough; when the
//     zone cools it steps frequencies back up. This is the mechanism behind
//     Figure 3's big-core collapse.
package dvfs

import (
	"math"

	"hetpapi/internal/hw"
)

// Config tunes the governor control loops.
type Config struct {
	// PowerPeriodSec is the cadence of the power-cap loop.
	PowerPeriodSec float64
	// ThermalPeriodSec is the cadence of the thermal step_wise loop.
	ThermalPeriodSec float64
	// ThermalHysteresisC is how far below the trip the zone must cool
	// before frequencies step back up.
	ThermalHysteresisC float64
	// UpStep and DownGain control the power loop: the level rises by
	// UpStep when under cap and falls by DownGain * overshoot-ratio when
	// over.
	UpStep   float64
	DownGain float64
}

// DefaultConfig returns the control constants used by the experiments.
func DefaultConfig() Config {
	return Config{
		PowerPeriodSec:     0.01,
		ThermalPeriodSec:   0.5,
		ThermalHysteresisC: 3,
		UpStep:             0.015,
		DownGain:           0.25,
	}
}

// Governor computes per-CPU frequencies from power and thermal feedback.
type Governor struct {
	m   *hw.Machine
	cfg Config

	// level is the shared 0..1 performance level set by the power loop.
	level float64
	// thermCapMHz is the per-class frequency ceiling set by the thermal
	// loop, indexed by hw.CoreClass.
	thermCapMHz [2]float64
	// userCapMHz is the per-class ceiling set from outside the control
	// loops (the scaling_max_freq mechanism); 0 means uncapped.
	userCapMHz [2]float64

	lastPowerT   float64
	lastThermalT float64
	started      bool
}

// New returns a governor at full performance level with thermal caps at the
// per-class maximum frequencies.
func New(m *hw.Machine, cfg Config) *Governor {
	g := &Governor{m: m, cfg: cfg, level: 1}
	g.thermCapMHz[hw.Performance] = maxFreqOfClass(m, hw.Performance)
	g.thermCapMHz[hw.Efficiency] = maxFreqOfClass(m, hw.Efficiency)
	return g
}

func maxFreqOfClass(m *hw.Machine, class hw.CoreClass) float64 {
	var max float64
	for i := range m.Types {
		if m.Types[i].Class == class && m.Types[i].MaxFreqMHz > max {
			max = m.Types[i].MaxFreqMHz
		}
	}
	return max
}

// Level returns the current power-loop performance level in [0, 1].
func (g *Governor) Level() float64 { return g.level }

// ThermalCapMHz returns the thermal frequency ceiling of a core class.
func (g *Governor) ThermalCapMHz(class hw.CoreClass) float64 {
	return g.thermCapMHz[class]
}

// SetUserCapMHz sets an external frequency ceiling for a core class, the
// way writing scaling_max_freq (or a userspace power daemon) caps real
// cpufreq policies. A cap of 0 removes the ceiling.
func (g *Governor) SetUserCapMHz(class hw.CoreClass, mhz float64) {
	g.userCapMHz[class] = mhz
}

// UserCapMHz returns the external frequency ceiling of a core class
// (0 when uncapped).
func (g *Governor) UserCapMHz(class hw.CoreClass) float64 {
	return g.userCapMHz[class]
}

// CapMHz returns the effective frequency ceiling of a core class: the
// tighter of the thermal and user caps.
func (g *Governor) CapMHz(class hw.CoreClass) float64 {
	cap := g.thermCapMHz[class]
	if u := g.userCapMHz[class]; u > 0 && u < cap {
		cap = u
	}
	return cap
}

// Update advances the control loops to simulated time nowSec given the
// instantaneous package power, the cap in force, and the zone temperature.
func (g *Governor) Update(nowSec, pkgPowerW, capW, tempC float64) {
	if !g.started {
		g.started = true
		g.lastPowerT = nowSec
		g.lastThermalT = nowSec
	}
	if nowSec-g.lastPowerT >= g.cfg.PowerPeriodSec {
		g.lastPowerT = nowSec
		g.powerStep(pkgPowerW, capW)
	}
	if nowSec-g.lastThermalT >= g.cfg.ThermalPeriodSec {
		g.lastThermalT = nowSec
		g.thermalStep(tempC)
	}
}

// NextUpdateSec returns the simulated time of the governor's next control
// deadline: the earlier of the power-loop and thermal-loop boundaries.
// Update calls strictly before it are no-ops, so a caller that drives the
// governor on events rather than ticks only needs to call Update at (or
// conservatively before) this time. A governor that has never been
// updated is due immediately.
func (g *Governor) NextUpdateSec() float64 {
	if !g.started {
		return 0
	}
	next := g.lastPowerT + g.cfg.PowerPeriodSec
	if t := g.lastThermalT + g.cfg.ThermalPeriodSec; t < next {
		next = t
	}
	return next
}

func (g *Governor) powerStep(pkgPowerW, capW float64) {
	if math.IsInf(capW, 1) || capW <= 0 {
		g.level = 1
		return
	}
	switch {
	case pkgPowerW > capW:
		over := (pkgPowerW - capW) / capW
		g.level -= g.cfg.DownGain*over + 0.005
	case pkgPowerW < capW*0.97:
		g.level += g.cfg.UpStep
	}
	if g.level < 0 {
		g.level = 0
	}
	if g.level > 1 {
		g.level = 1
	}
}

func (g *Governor) thermalStep(tempC float64) {
	spec := g.m.Thermal
	if spec.PassiveTripC <= 0 {
		return
	}
	perfMax := maxFreqOfClass(g.m, hw.Performance)
	effMax := maxFreqOfClass(g.m, hw.Efficiency)
	step := g.opStepMHz()
	switch {
	case tempC >= spec.PassiveTripC:
		// Throttle the big cluster first; touch the LITTLE cluster only
		// once the big cluster is at its floor and the zone is still hot.
		if g.thermCapMHz[hw.Performance] > g.floorMHz(hw.Performance) {
			g.thermCapMHz[hw.Performance] -= step
			if g.thermCapMHz[hw.Performance] < g.floorMHz(hw.Performance) {
				g.thermCapMHz[hw.Performance] = g.floorMHz(hw.Performance)
			}
		} else if tempC >= spec.PassiveTripC+g.cfg.ThermalHysteresisC {
			if g.thermCapMHz[hw.Efficiency] > g.floorMHz(hw.Efficiency) {
				g.thermCapMHz[hw.Efficiency] -= step
				if g.thermCapMHz[hw.Efficiency] < g.floorMHz(hw.Efficiency) {
					g.thermCapMHz[hw.Efficiency] = g.floorMHz(hw.Efficiency)
				}
			}
		}
	case tempC < spec.PassiveTripC-g.cfg.ThermalHysteresisC:
		// Cool again: restore the LITTLE cluster first, then the big one.
		if g.thermCapMHz[hw.Efficiency] < effMax {
			g.thermCapMHz[hw.Efficiency] += step
			if g.thermCapMHz[hw.Efficiency] > effMax {
				g.thermCapMHz[hw.Efficiency] = effMax
			}
		} else if g.thermCapMHz[hw.Performance] < perfMax {
			g.thermCapMHz[hw.Performance] += step
			if g.thermCapMHz[hw.Performance] > perfMax {
				g.thermCapMHz[hw.Performance] = perfMax
			}
		}
	}
}

func (g *Governor) opStepMHz() float64 {
	var max float64
	for i := range g.m.Types {
		if g.m.Types[i].FreqStepMHz > max {
			max = g.m.Types[i].FreqStepMHz
		}
	}
	if max <= 0 {
		max = 100
	}
	return max
}

func (g *Governor) floorMHz(class hw.CoreClass) float64 {
	var floor float64
	for i := range g.m.Types {
		t := &g.m.Types[i]
		if t.Class != class {
			continue
		}
		f := t.MinFreqMHz
		if spec := g.m.Thermal.ThrottleFloorMHz; spec != nil {
			if v, ok := spec[t.Name]; ok && v > f {
				f = v
			}
		}
		if floor == 0 || f < floor {
			floor = f
		}
	}
	return floor
}

// TargetMHz returns the frequency a busy core of the given type runs at
// under the current control state, quantized down to the type's OPP step.
func (g *Governor) TargetMHz(t *hw.CoreType) float64 {
	f := t.MinFreqMHz + g.level*(t.MaxFreqMHz-t.MinFreqMHz)
	if cap := g.CapMHz(t.Class); f > cap {
		f = cap
	}
	if t.FreqStepMHz > 0 {
		f = t.MinFreqMHz + math.Round((f-t.MinFreqMHz)/t.FreqStepMHz)*t.FreqStepMHz
	}
	if f < t.MinFreqMHz {
		f = t.MinFreqMHz
	}
	if f > t.MaxFreqMHz {
		f = t.MaxFreqMHz
	}
	return f
}

// FreqMHz returns the frequency of a logical CPU: the busy-core target when
// active is true, the minimum OPP otherwise (schedutil drops idle cores to
// their lowest frequency).
func (g *Governor) FreqMHz(cpu int, active bool) float64 {
	t := g.m.TypeOf(cpu)
	if !active {
		return t.MinFreqMHz
	}
	return g.TargetMHz(t)
}
