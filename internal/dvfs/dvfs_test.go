package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"hetpapi/internal/hw"
)

func TestStartsAtMax(t *testing.T) {
	m := hw.RaptorLake()
	g := New(m, DefaultConfig())
	p := m.TypeByName("P-core")
	e := m.TypeByName("E-core")
	if f := g.TargetMHz(p); f != p.MaxFreqMHz {
		t.Fatalf("initial P target = %g, want max %g", f, p.MaxFreqMHz)
	}
	if f := g.TargetMHz(e); f != e.MaxFreqMHz {
		t.Fatalf("initial E target = %g, want max %g", f, e.MaxFreqMHz)
	}
	if g.Level() != 1 {
		t.Fatal("initial level must be 1")
	}
}

func TestIdleCPUsAtMinFreq(t *testing.T) {
	m := hw.RaptorLake()
	g := New(m, DefaultConfig())
	if f := g.FreqMHz(0, false); f != m.TypeOf(0).MinFreqMHz {
		t.Fatalf("idle cpu freq = %g, want min", f)
	}
	if f := g.FreqMHz(0, true); f != m.TypeOf(0).MaxFreqMHz {
		t.Fatalf("busy cpu freq = %g, want max", f)
	}
}

func TestPowerLoopConverges(t *testing.T) {
	// Feed the governor a synthetic plant: power proportional to level^3.
	m := hw.RaptorLake()
	g := New(m, DefaultConfig())
	const cap = 65.0
	plant := func(level float64) float64 { return 10 + 280*level*level*level }
	now := 0.0
	for i := 0; i < 2000; i++ {
		now += 0.01
		g.Update(now, plant(g.Level()), cap, 40)
	}
	p := plant(g.Level())
	if math.Abs(p-cap) > 6 {
		t.Fatalf("converged power = %g, want ~%g (level %g)", p, cap, g.Level())
	}
	// P-core target should be far below max on the 65 W plateau.
	pt := g.TargetMHz(m.TypeByName("P-core"))
	if pt > 3500 || pt < 1500 {
		t.Fatalf("P-core plateau frequency = %g MHz, expected 1.5-3.5 GHz band", pt)
	}
}

func TestInfiniteCapMeansFullLevel(t *testing.T) {
	m := hw.OrangePi800()
	g := New(m, DefaultConfig())
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 0.01
		g.Update(now, 500, math.Inf(1), 40)
	}
	if g.Level() != 1 {
		t.Fatalf("level = %g with no power cap, want 1", g.Level())
	}
}

func TestThermalThrottlesBigFirst(t *testing.T) {
	m := hw.OrangePi800()
	g := New(m, DefaultConfig())
	big := m.TypeByName("big")
	little := m.TypeByName("LITTLE")
	now := 0.0
	// Hot zone: just above trip.
	for i := 0; i < 10; i++ {
		now += 0.5
		g.Update(now, 5, math.Inf(1), 86)
	}
	if g.ThermalCapMHz(hw.Performance) >= big.MaxFreqMHz {
		t.Fatal("big cluster did not throttle")
	}
	if g.ThermalCapMHz(hw.Efficiency) != little.MaxFreqMHz {
		t.Fatal("LITTLE cluster throttled while big cluster still had headroom")
	}
}

func TestThermalReachesFloorThenLittle(t *testing.T) {
	m := hw.OrangePi800()
	g := New(m, DefaultConfig())
	now := 0.0
	// Very hot for a long time: big hits its floor, then LITTLE throttles.
	for i := 0; i < 40; i++ {
		now += 0.5
		g.Update(now, 5, math.Inf(1), 95)
	}
	if got := g.ThermalCapMHz(hw.Performance); got != m.Thermal.ThrottleFloorMHz["big"] {
		t.Fatalf("big cap = %g, want floor %g", got, m.Thermal.ThrottleFloorMHz["big"])
	}
	if g.ThermalCapMHz(hw.Efficiency) >= m.TypeByName("LITTLE").MaxFreqMHz {
		t.Fatal("LITTLE cluster should throttle once big is floored and zone stays hot")
	}
	if got := g.ThermalCapMHz(hw.Efficiency); got < m.Thermal.ThrottleFloorMHz["LITTLE"] {
		t.Fatalf("LITTLE cap %g below its floor", got)
	}
}

func TestThermalRecovery(t *testing.T) {
	m := hw.OrangePi800()
	g := New(m, DefaultConfig())
	now := 0.0
	for i := 0; i < 40; i++ {
		now += 0.5
		g.Update(now, 5, math.Inf(1), 95)
	}
	// Cool down: both clusters must return to max.
	for i := 0; i < 100; i++ {
		now += 0.5
		g.Update(now, 1, math.Inf(1), 40)
	}
	if g.ThermalCapMHz(hw.Performance) != m.TypeByName("big").MaxFreqMHz {
		t.Fatalf("big cap %g did not recover", g.ThermalCapMHz(hw.Performance))
	}
	if g.ThermalCapMHz(hw.Efficiency) != m.TypeByName("LITTLE").MaxFreqMHz {
		t.Fatalf("LITTLE cap %g did not recover", g.ThermalCapMHz(hw.Efficiency))
	}
}

func TestDesktopIgnoresThermalLoop(t *testing.T) {
	m := hw.RaptorLake() // PassiveTripC == 0
	g := New(m, DefaultConfig())
	now := 0.0
	for i := 0; i < 20; i++ {
		now += 0.5
		g.Update(now, 60, 65, 99)
	}
	if g.ThermalCapMHz(hw.Performance) != m.TypeByName("P-core").MaxFreqMHz {
		t.Fatal("machine without passive trip must not thermal-throttle")
	}
}

func TestTargetQuantizedToOPPStep(t *testing.T) {
	m := hw.OrangePi800()
	g := New(m, DefaultConfig())
	big := m.TypeByName("big")
	now := 0.0
	for i := 0; i < 7; i++ {
		now += 0.5
		g.Update(now, 5, math.Inf(1), 86)
	}
	f := g.TargetMHz(big)
	rel := f - big.MinFreqMHz
	if math.Mod(rel, big.FreqStepMHz) > 1e-9 {
		t.Fatalf("target %g MHz is not on the OPP grid (min %g, step %g)",
			f, big.MinFreqMHz, big.FreqStepMHz)
	}
}

// Property: targets always stay within [min, max] for any control history.
func TestTargetBoundsProperty(t *testing.T) {
	m := hw.RaptorLake()
	f := func(events []struct {
		Power uint8
		Temp  uint8
	}) bool {
		g := New(m, DefaultConfig())
		now := 0.0
		for _, e := range events {
			now += 0.01
			g.Update(now, float64(e.Power)*2, 65, float64(e.Temp))
			for i := range m.Types {
				tt := &m.Types[i]
				f := g.TargetMHz(tt)
				if f < tt.MinFreqMHz-1e-9 || f > tt.MaxFreqMHz+1e-9 {
					return false
				}
			}
			if g.Level() < 0 || g.Level() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
