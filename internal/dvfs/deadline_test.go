package dvfs

// NextUpdateSec exposes the governor's next control boundary to the
// simulator's event core; between boundaries Update provably mutates
// nothing, which is what lets idle ticks skip the call.

import (
	"testing"

	"hetpapi/internal/hw"
)

func TestNextUpdateSecBeforeStart(t *testing.T) {
	g := New(hw.RaptorLake(), DefaultConfig())
	// An un-started governor must update immediately: the first Update
	// call initializes its clocks.
	if got := g.NextUpdateSec(); got != 0 {
		t.Fatalf("NextUpdateSec before first Update = %v, want 0", got)
	}
}

func TestNextUpdateSecTracksLoops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerPeriodSec = 0.01
	cfg.ThermalPeriodSec = 0.5
	g := New(hw.RaptorLake(), cfg)
	g.Update(0, 50, 150, 40)
	// Both loops just ran at t=0: the next deadline is the faster
	// (power) loop.
	if got := g.NextUpdateSec(); got != 0.01 {
		t.Fatalf("NextUpdateSec after t=0 update = %v, want 0.01", got)
	}
	// Advance past several power periods; the power clock follows, the
	// thermal clock still waits for 0.5.
	g.Update(0.02, 50, 150, 40)
	if got := g.NextUpdateSec(); got != 0.03 {
		t.Fatalf("NextUpdateSec after t=0.02 update = %v, want 0.03", got)
	}
	// Near the thermal boundary the thermal loop becomes the earlier
	// deadline.
	g.Update(0.495, 50, 150, 40)
	if got := g.NextUpdateSec(); got != 0.5 {
		t.Fatalf("NextUpdateSec after t=0.495 update = %v, want 0.5 (thermal)", got)
	}
}

// TestUpdateBetweenDeadlinesIsNoOp pins the property the event core's
// idle path relies on: calling Update strictly between both loop
// boundaries changes no governor state.
func TestUpdateBetweenDeadlinesIsNoOp(t *testing.T) {
	m := hw.RaptorLake()
	g := New(m, DefaultConfig())
	g.Update(0, 120, 65, 80) // hot + over cap so levels actually move
	level := func() []float64 {
		var out []float64
		for i := range m.Types {
			out = append(out, g.TargetMHz(&m.Types[i]))
		}
		return out
	}
	before := level()
	next := g.NextUpdateSec()
	// A mid-interval call with wildly different telemetry must not act.
	g.Update(next/2, 500, 1, 200)
	after := level()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("type %d target changed %v -> %v on a between-deadlines Update",
				i, before[i], after[i])
		}
	}
	if got := g.NextUpdateSec(); got != next {
		t.Fatalf("NextUpdateSec moved %v -> %v on a between-deadlines Update", next, got)
	}
}
