package sched

import (
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func newSched(m *hw.Machine) *Scheduler {
	cfg := DefaultConfig()
	cfg.MigrateToEffProb = 0 // deterministic placement unless a test wants noise
	cfg.MigrateToPerfProb = 0
	return New(m, cfg)
}

func TestSpawnPrefersPCore(t *testing.T) {
	m := hw.RaptorLake()
	s := newSched(m)
	p := s.Spawn(workload.NewSpin("a", 1), hw.AllCPUs(m))
	s.Tick(0)
	if p.CPU() < 0 {
		t.Fatal("task not placed")
	}
	if m.TypeOf(p.CPU()).Class != hw.Performance {
		t.Fatalf("task placed on %d (%s), want a P-core", p.CPU(), m.TypeOf(p.CPU()).Name)
	}
}

func TestSpawnAvoidsSMTSiblings(t *testing.T) {
	m := hw.RaptorLake()
	s := newSched(m)
	var procs []*Process
	for i := 0; i < 8; i++ {
		procs = append(procs, s.Spawn(workload.NewSpin("t", 1), hw.AllCPUs(m)))
	}
	s.Tick(0)
	cores := map[int]int{}
	for _, p := range procs {
		if p.CPU() < 0 {
			t.Fatal("unplaced task")
		}
		cores[m.CPUs[p.CPU()].PhysCore]++
	}
	for core, n := range cores {
		if n > 1 {
			t.Errorf("%d tasks share physical core %d while whole cores are free", n, core)
		}
	}
}

func TestAffinityRestriction(t *testing.T) {
	m := hw.RaptorLake()
	s := newSched(m)
	eOnly := hw.NewCPUSet(m.CPUsOfType("E-core")...)
	p := s.Spawn(workload.NewSpin("e", 1), eOnly)
	s.Tick(0)
	if got := m.TypeOf(p.CPU()).Name; got != "E-core" {
		t.Fatalf("task placed on %s despite E-only mask", got)
	}
}

func TestSetAffinityMigrates(t *testing.T) {
	m := hw.RaptorLake()
	s := newSched(m)
	p := s.Spawn(workload.NewSpin("x", 10), hw.AllCPUs(m))
	s.Tick(0)
	if m.TypeOf(p.CPU()).Class != hw.Performance {
		t.Fatal("setup: want initial P placement")
	}
	if err := s.SetAffinity(p.PID, hw.NewCPUSet(16)); err != nil {
		t.Fatal(err)
	}
	s.Tick(0.001)
	if p.CPU() != 16 {
		t.Fatalf("after taskset to cpu16, task is on %d", p.CPU())
	}
	if err := s.SetAffinity(p.PID, hw.NewCPUSet()); err == nil {
		t.Error("empty mask must be rejected")
	}
	if err := s.SetAffinity(99999, hw.NewCPUSet(1)); err == nil {
		t.Error("unknown pid must be rejected")
	}
}

func TestReapsDoneTasks(t *testing.T) {
	m := hw.RaptorLake()
	s := newSched(m)
	spin := workload.NewSpin("s", 0.002)
	p := s.Spawn(spin, hw.AllCPUs(m))
	s.Tick(0)
	cpu := p.CPU()
	// Run the task to completion.
	typ := m.TypeOf(cpu)
	ctx := &workload.ExecContext{CPU: cpu, Type: typ, FreqMHz: typ.MaxFreqMHz, Throughput: 1}
	spin.Run(ctx, 0.002)
	s.Tick(0.001)
	if s.RunningOn(cpu) != nil {
		t.Fatal("done task still occupies its CPU")
	}
	if len(s.Processes()) != 0 {
		t.Fatal("done task not reaped")
	}
}

func TestRoundRobinWhenOvercommitted(t *testing.T) {
	m := hw.OrangePi800()
	s := newSched(m)
	// 8 tasks on 6 CPUs: everyone should get CPU time via rotation.
	var procs []*Process
	for i := 0; i < 8; i++ {
		procs = append(procs, s.Spawn(workload.NewSpin("t", 100), hw.AllCPUs(m)))
	}
	ran := map[int]bool{}
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 0.001
		s.Tick(now)
		for _, p := range procs {
			if p.CPU() >= 0 {
				ran[p.PID] = true
			}
		}
	}
	if len(ran) != 8 {
		t.Fatalf("only %d of 8 overcommitted tasks ever ran", len(ran))
	}
}

func TestHooksFireOnSwitches(t *testing.T) {
	m := hw.RaptorLake()
	s := newSched(m)
	var ins, outs int
	s.AddHook(hookFuncs{
		in:  func(pid, cpu int, now float64) { ins++ },
		out: func(pid, cpu int, now float64) { outs++ },
	})
	p := s.Spawn(workload.NewSpin("h", 10), hw.AllCPUs(m))
	s.Tick(0)
	if ins != 1 || outs != 0 {
		t.Fatalf("after placement ins=%d outs=%d", ins, outs)
	}
	s.SetAffinity(p.PID, hw.NewCPUSet(20))
	s.Tick(0.001)
	if ins != 2 || outs != 1 {
		t.Fatalf("after migration ins=%d outs=%d", ins, outs)
	}
}

type hookFuncs struct {
	in, out func(pid, cpu int, now float64)
}

func (h hookFuncs) SchedIn(pid, cpu int, now float64)  { h.in(pid, cpu, now) }
func (h hookFuncs) SchedOut(pid, cpu int, now float64) { h.out(pid, cpu, now) }

func TestPerturbationMigratesAcrossClasses(t *testing.T) {
	m := hw.RaptorLake()
	cfg := DefaultConfig()
	cfg.MigrateToEffProb = 0.1
	cfg.MigrateToPerfProb = 0.3
	cfg.Seed = 42
	s := New(m, cfg)
	p := s.Spawn(workload.NewSpin("w", 1000), hw.AllCPUs(m))
	timeOn := map[hw.CoreClass]int{}
	now := 0.0
	for i := 0; i < 5000; i++ {
		now += 0.001
		s.Tick(now)
		timeOn[m.TypeOf(p.CPU()).Class]++
	}
	if timeOn[hw.Performance] == 0 || timeOn[hw.Efficiency] == 0 {
		t.Fatalf("single task never migrated across classes: %v", timeOn)
	}
	if timeOn[hw.Performance] <= timeOn[hw.Efficiency] {
		t.Errorf("task should spend most time on P-cores: %v", timeOn)
	}
	if s.Migrations() == 0 {
		t.Error("migrations counter did not advance")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		m := hw.RaptorLake()
		cfg := DefaultConfig()
		cfg.MigrateToEffProb = 0.1
		cfg.Seed = 7
		s := New(m, cfg)
		p := s.Spawn(workload.NewSpin("d", 1000), hw.AllCPUs(m))
		var placements []int
		now := 0.0
		for i := 0; i < 1000; i++ {
			now += 0.001
			s.Tick(now)
			placements = append(placements, p.CPU())
		}
		return placements
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement diverged at tick %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNoClassPreferencePlacement(t *testing.T) {
	// On the OrangePi the LITTLE cluster enumerates first: a class-blind
	// scheduler parks a task on cpu0 (LITTLE) while the hybrid-aware one
	// picks a big core.
	m := hw.OrangePi800()
	aware := newSched(m)
	p1 := aware.Spawn(workload.NewSpin("a", 1), hw.AllCPUs(m))
	aware.Tick(0)
	if m.TypeOf(p1.CPU()).Class != hw.Performance {
		t.Errorf("aware scheduler placed on %s", m.TypeOf(p1.CPU()).Name)
	}

	cfg := DefaultConfig()
	cfg.MigrateToEffProb = 0
	cfg.MigrateToPerfProb = 0
	cfg.NoClassPreference = true
	blind := New(m, cfg)
	p2 := blind.Spawn(workload.NewSpin("b", 1), hw.AllCPUs(m))
	blind.Tick(0)
	if got := p2.CPU(); got != 0 {
		t.Errorf("class-blind scheduler placed on cpu%d, want cpu0", got)
	}
}
