// Package sched implements the operating-system scheduler of the simulated
// machines: per-CPU placement with affinity masks (the taskset mechanism
// the paper's experiments rely on), a preference for Performance-class
// cores when they are free (EAS-style up-migration), periodic load
// balancing with a seeded random perturbation that models timer interrupts
// and background activity, and round-robin time sharing when runnable tasks
// outnumber allowed CPUs.
//
// The random perturbation is what makes a single free-running thread (the
// papi_hybrid_100m_one_eventset workload) spend most of its time on P-cores
// with occasional excursions to E-cores — so its retired instructions split
// between the two PMUs' counters just as the paper reports.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

// Config tunes the scheduler.
type Config struct {
	// BalancePeriodSec is the load-balancing cadence.
	BalancePeriodSec float64
	// MigrateToEffProb is the per-balance probability that a task running
	// on a Performance-class CPU is kicked to a free Efficiency-class CPU
	// (modeling interrupts, background jobs and scheduler imprecision).
	MigrateToEffProb float64
	// MigrateToPerfProb is the per-balance probability that a task on an
	// Efficiency-class CPU is up-migrated to a free Performance-class CPU.
	MigrateToPerfProb float64
	// TimesliceSec is the round-robin quantum used when tasks are waiting.
	TimesliceSec float64
	// NoClassPreference disables the EAS-style preference for
	// Performance-class cores at placement time (ablation knob: a
	// class-blind scheduler places tasks on the lowest free CPU id).
	NoClassPreference bool
	// Seed drives the perturbation RNG.
	Seed int64
}

// DefaultConfig returns the scheduler constants used by the experiments.
func DefaultConfig() Config {
	return Config{
		BalancePeriodSec:  0.004,
		MigrateToEffProb:  0.04,
		MigrateToPerfProb: 0.30,
		TimesliceSec:      0.004,
		Seed:              1,
	}
}

// Process is a scheduled task with its kernel-side state.
type Process struct {
	// PID is the process id assigned at Spawn.
	PID int
	// Task is the workload being executed.
	Task workload.Task

	affinity hw.CPUSet
	cpu      int // current CPU, or -1 when not running
	placedAt float64
}

// CPU returns the CPU the process currently occupies, or -1.
func (p *Process) CPU() int { return p.cpu }

// Affinity returns the process's allowed-CPU mask.
func (p *Process) Affinity() hw.CPUSet { return p.affinity }

// Hook observes context switches (the perf_event subsystem attaches here
// the way the real kernel's perf hooks sit in the scheduler).
type Hook interface {
	// SchedIn fires when pid starts running on cpu.
	SchedIn(pid, cpu int, now float64)
	// SchedOut fires when pid stops running on cpu.
	SchedOut(pid, cpu int, now float64)
}

// Scheduler places processes on the machine's CPUs.
type Scheduler struct {
	m   *hw.Machine
	cfg Config
	rng *rand.Rand

	procs       []*Process
	byCPU       []*Process
	offline     []bool
	nextPID     int
	lastBalance float64
	hooks       []Hook
	gen         uint64

	migrations      int
	contextSwitches int
}

// New returns an empty scheduler for the machine.
func New(m *hw.Machine, cfg Config) *Scheduler {
	if cfg.BalancePeriodSec <= 0 {
		cfg.BalancePeriodSec = 0.004
	}
	if cfg.TimesliceSec <= 0 {
		cfg.TimesliceSec = 0.004
	}
	return &Scheduler{
		m:       m,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		byCPU:   make([]*Process, m.NumCPUs()),
		offline: make([]bool, m.NumCPUs()),
		nextPID: 1000, // init-ish pids, for flavor
	}
}

// SetOnline changes a CPU's hotplug state as seen by the scheduler: an
// offline CPU's occupant is evicted immediately and no process is placed
// there until the CPU comes back. Affinity masks are left alone — a task
// whose mask only covers offline CPUs simply waits, like a real task
// bound to a hotplugged-off CPU.
func (s *Scheduler) SetOnline(cpu int, online bool, now float64) {
	if cpu < 0 || cpu >= len(s.offline) {
		return
	}
	s.offline[cpu] = !online
	s.gen++
	if !online {
		if p := s.byCPU[cpu]; p != nil {
			s.evict(p, now)
		}
	}
}

// Online reports whether the CPU is online for scheduling.
func (s *Scheduler) Online(cpu int) bool {
	return cpu >= 0 && cpu < len(s.offline) && !s.offline[cpu]
}

// AddHook registers a context-switch observer.
func (s *Scheduler) AddHook(h Hook) { s.hooks = append(s.hooks, h) }

// Spawn adds a task restricted to the affinity mask (use hw.AllCPUs for no
// restriction) and returns its process.
func (s *Scheduler) Spawn(t workload.Task, affinity hw.CPUSet) *Process {
	p := &Process{PID: s.nextPID, Task: t, affinity: affinity, cpu: -1}
	s.nextPID++
	s.procs = append(s.procs, p)
	s.gen++
	return p
}

// SetAffinity changes a process's allowed CPUs (the sched_setaffinity /
// taskset operation). The process is migrated off a now-disallowed CPU at
// the next tick.
func (s *Scheduler) SetAffinity(pid int, set hw.CPUSet) error {
	if set.Empty() {
		return fmt.Errorf("sched: empty affinity mask")
	}
	for _, p := range s.procs {
		if p.PID == pid {
			p.affinity = set
			s.gen++
			return nil
		}
	}
	return fmt.Errorf("sched: no such pid %d", pid)
}

// Processes returns the live processes, ordered by pid.
func (s *Scheduler) Processes() []*Process {
	out := append([]*Process(nil), s.procs...)
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// RunningOn returns the process currently placed on cpu, or nil.
func (s *Scheduler) RunningOn(cpu int) *Process { return s.byCPU[cpu] }

// Gen returns a generation counter bumped by every placement-relevant
// mutation: spawns, affinity changes, hotplug state changes, assignments,
// evictions and reaps. A caller that cached a view of the scheduler's
// state may keep it as long as Gen is unchanged; the simulator's event
// core uses this to detect when an idle span ends.
func (s *Scheduler) Gen() uint64 { return s.gen }

// NextBalanceSec returns the simulated time of the next load-balance
// deadline. Tick runs the balance pass at the first tick at or after it.
func (s *Scheduler) NextBalanceSec() float64 {
	return s.lastBalance + s.cfg.BalancePeriodSec
}

// Quiescent reports whether a Tick would leave the scheduler's state
// untouched apart from the balance clock: no process is placed, wants CPU
// time, or is finished and waiting to be reaped. Task readiness can only
// change while a task runs or through an external mutation (which bumps
// Gen), so a quiescent scheduler stays quiescent until Gen changes.
func (s *Scheduler) Quiescent() bool {
	for _, p := range s.procs {
		if p.cpu >= 0 || p.Task.Ready() || p.Task.Done() {
			return false
		}
	}
	return true
}

// Migrations returns the number of cross-CPU migrations so far.
func (s *Scheduler) Migrations() int { return s.migrations }

// ContextSwitches returns the number of sched-in events so far.
func (s *Scheduler) ContextSwitches() int { return s.contextSwitches }

// Tick updates placements at simulated time now: reaps finished tasks,
// evicts processes from disallowed CPUs, places runnable tasks, and runs
// the periodic balance pass.
func (s *Scheduler) Tick(now float64) {
	s.reap(now)
	s.enforceAffinity(now)
	s.place(now)
	if now-s.lastBalance >= s.cfg.BalancePeriodSec {
		s.lastBalance = now
		s.balance(now)
	}
}

func (s *Scheduler) reap(now float64) {
	kept := s.procs[:0]
	for _, p := range s.procs {
		if p.Task.Done() {
			s.evict(p, now)
			s.gen++
			continue
		}
		kept = append(kept, p)
	}
	s.procs = kept
}

func (s *Scheduler) enforceAffinity(now float64) {
	for _, p := range s.procs {
		if p.cpu >= 0 && (!p.affinity.Has(p.cpu) || s.offline[p.cpu]) {
			s.evict(p, now)
		}
	}
}

func (s *Scheduler) evict(p *Process, now float64) {
	if p.cpu < 0 {
		return
	}
	for _, h := range s.hooks {
		h.SchedOut(p.PID, p.cpu, now)
	}
	s.byCPU[p.cpu] = nil
	p.cpu = -1
	s.gen++
}

func (s *Scheduler) assign(p *Process, cpu int, now float64) {
	if p.cpu == cpu {
		return
	}
	if p.cpu >= 0 {
		s.evict(p, now)
		s.migrations++
	}
	p.cpu = cpu
	p.placedAt = now
	s.byCPU[cpu] = p
	s.contextSwitches++
	s.gen++
	for _, h := range s.hooks {
		h.SchedIn(p.PID, cpu, now)
	}
}

// place puts waiting runnable processes on free allowed CPUs, preferring
// Performance-class cores and SMT-free physical cores.
func (s *Scheduler) place(now float64) {
	for _, p := range s.procs {
		if p.cpu >= 0 || !p.Task.Ready() {
			continue
		}
		if cpu := s.pickCPU(p.affinity); cpu >= 0 {
			s.assign(p, cpu, now)
		}
	}
}

// pickCPU returns the best free CPU in the mask, or -1.
func (s *Scheduler) pickCPU(mask hw.CPUSet) int {
	best, bestScore := -1, -1
	for _, cpu := range mask.IDs() {
		if cpu >= len(s.byCPU) || s.byCPU[cpu] != nil || s.offline[cpu] {
			continue
		}
		score := 0
		if !s.cfg.NoClassPreference && s.m.TypeOf(cpu).Class == hw.Performance {
			score += 4
		}
		if sib := s.m.SiblingOf(cpu); sib < 0 || s.byCPU[sib] == nil {
			score += 2 // whole physical core is free
		}
		if score > bestScore {
			best, bestScore = cpu, score
		}
	}
	return best
}

// balance runs the periodic pass: up-migration, random perturbation toward
// E-cores, and round-robin rotation when tasks are waiting.
func (s *Scheduler) balance(now float64) {
	// Round-robin: every runnable waiting task preempts the process that
	// has held an allowed CPU the longest past its timeslice. Victims
	// evicted in this pass wait until the next one, which rotates CPU time
	// fairly through an overcommitted task set.
	evictedNow := map[int]bool{}
	for _, waiting := range s.procs {
		if waiting.cpu >= 0 || !waiting.Task.Ready() {
			continue
		}
		var victim *Process
		for _, p := range s.procs {
			if p.cpu < 0 || evictedNow[p.PID] || !waiting.affinity.Has(p.cpu) {
				continue
			}
			if now-p.placedAt < s.cfg.TimesliceSec {
				continue
			}
			if victim == nil || p.placedAt < victim.placedAt {
				victim = p
			}
		}
		if victim == nil {
			continue
		}
		cpu := victim.cpu
		s.evict(victim, now)
		evictedNow[victim.PID] = true
		s.assign(waiting, cpu, now)
	}

	// Migration perturbations, in pid order for determinism.
	for _, p := range s.procs {
		if p.cpu < 0 {
			continue
		}
		class := s.m.TypeOf(p.cpu).Class
		switch class {
		case hw.Performance:
			if s.rng.Float64() < s.cfg.MigrateToEffProb {
				if cpu := s.pickCPUOfClass(p.affinity, hw.Efficiency); cpu >= 0 {
					s.assign(p, cpu, now)
				}
			}
		case hw.Efficiency:
			if s.rng.Float64() < s.cfg.MigrateToPerfProb {
				if cpu := s.pickCPUOfClass(p.affinity, hw.Performance); cpu >= 0 {
					s.assign(p, cpu, now)
				}
			}
		}
	}
}

func (s *Scheduler) pickCPUOfClass(mask hw.CPUSet, class hw.CoreClass) int {
	for _, cpu := range mask.IDs() {
		if cpu < len(s.byCPU) && s.byCPU[cpu] == nil && !s.offline[cpu] && s.m.TypeOf(cpu).Class == class {
			return cpu
		}
	}
	return -1
}
