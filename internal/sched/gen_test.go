package sched

// The generation counter and quiescence predicate are the scheduler's
// contract with the simulator's event core: Gen() must tick on every
// mutation that can change placement or readiness, and Quiescent() must
// be true only when no tick could do any work — because the event core
// skips scheduler ticks (and per-CPU scanning) for exactly as long as
// the generation holds and the machine stays quiescent.

import (
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestGenBumpsOnMutations(t *testing.T) {
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	last := s.Gen()
	bumped := func(what string) {
		t.Helper()
		if g := s.Gen(); g <= last {
			t.Fatalf("%s did not bump generation (still %d)", what, g)
		} else {
			last = g
		}
	}

	p := s.Spawn(workload.NewSpin("spin", 0.002), hw.AllCPUs(m))
	bumped("Spawn")

	s.Tick(0) // places the process
	if s.RunningOn(0) == nil && func() bool {
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			if s.RunningOn(cpu) != nil {
				return false
			}
		}
		return true
	}() {
		t.Fatal("tick did not place the spawned process")
	}
	bumped("Tick placement")

	if err := s.SetAffinity(p.PID, hw.NewCPUSet(0)); err != nil {
		t.Fatal(err)
	}
	bumped("SetAffinity")

	s.SetOnline(3, false, 0.001)
	bumped("SetOnline")

	// Run the task to completion, then tick so the scheduler reaps it.
	ctx := &workload.ExecContext{CPU: 0, Type: m.TypeOf(0), FreqMHz: 3000, Throughput: 1}
	for i := 0; i < 10 && !p.Task.Done(); i++ {
		p.Task.Run(ctx, 0.001)
	}
	if !p.Task.Done() {
		t.Fatal("spin did not finish")
	}
	s.Tick(0.05)
	bumped("reap")
}

func TestGenStableAcrossIdleTicks(t *testing.T) {
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	g := s.Gen()
	for i := 0; i < 100; i++ {
		s.Tick(float64(i) * 0.001)
	}
	if s.Gen() != g {
		t.Fatalf("idle ticks bumped generation %d -> %d", g, s.Gen())
	}
}

func TestQuiescent(t *testing.T) {
	m := hw.RaptorLake()
	s := New(m, DefaultConfig())
	if !s.Quiescent() {
		t.Fatal("empty scheduler should be quiescent")
	}

	p := s.Spawn(workload.NewSpin("spin", 0.002), hw.AllCPUs(m))
	if s.Quiescent() {
		t.Fatal("ready unplaced process: not quiescent")
	}
	s.Tick(0)
	if s.Quiescent() {
		t.Fatal("placed process: not quiescent")
	}

	// Finish the task: still placed (and now done), both disqualify.
	ctx := &workload.ExecContext{CPU: 0, Type: m.TypeOf(0), FreqMHz: 3000, Throughput: 1}
	for i := 0; i < 10 && !p.Task.Done(); i++ {
		p.Task.Run(ctx, 0.001)
	}
	if s.Quiescent() {
		t.Fatal("done-but-unreaped process: not quiescent")
	}

	// After the reap tick the machine is idle again.
	s.Tick(0.05)
	if !s.Quiescent() {
		t.Fatal("after reap: quiescent again")
	}
}

func TestNextBalanceSec(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BalancePeriodSec = 0.004
	s := New(hw.RaptorLake(), cfg)
	if got := s.NextBalanceSec(); got != 0.004 {
		t.Fatalf("NextBalanceSec at boot = %v, want 0.004", got)
	}
	// Ticks before the boundary do not move it.
	s.Tick(0.001)
	s.Tick(0.002)
	if got := s.NextBalanceSec(); got != 0.004 {
		t.Fatalf("NextBalanceSec mid-period = %v, want 0.004", got)
	}
	// The balance tick advances the deadline a full period.
	s.Tick(0.004)
	if got := s.NextBalanceSec(); got != 0.008 {
		t.Fatalf("NextBalanceSec after balance = %v, want 0.008", got)
	}
}
