package core

import (
	"errors"
	"math"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

func newSim(m *hw.Machine) *sim.Machine {
	cfg := sim.DefaultConfig()
	cfg.Sched.MigrateToEffProb = 0.15
	cfg.Sched.MigrateToPerfProb = 0.30
	cfg.Sched.Seed = 11
	return sim.New(m, cfg)
}

func initLib(t *testing.T, s *sim.Machine, opts Options) *Library {
	t.Helper()
	l, err := Init(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestHybridEventSetSumsToTotal reproduces the papi_hybrid test of section
// IV.F: both per-PMU instruction events in ONE EventSet, a free-migrating
// task, and the two counts summing to the retired total.
func TestHybridEventSetSumsToTotal(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("hybrid", 1e6, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	if err := es.Attach(p.PID); err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamed("adl_grt::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if got := es.NumGroups(); got != 2 {
		t.Fatalf("NumGroups = %d, want 2 (one per PMU)", got)
	}
	if !s.RunUntil(loop.Done, 60) {
		t.Fatal("workload did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	total := loop.TotalInstructions()
	sum := float64(vals[0] + vals[1])
	if math.Abs(sum-total) > 1 {
		t.Fatalf("P(%d) + E(%d) = %g, want %g", vals[0], vals[1], sum, total)
	}
	if vals[0] == 0 || vals[1] == 0 {
		t.Fatalf("both PMUs should have counted: %v", vals)
	}
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if s.Kernel.NumOpen() != 0 {
		t.Fatalf("%d fds leaked after cleanup", s.Kernel.NumOpen())
	}
}

// TestLegacySingleSingletonPMU reproduces the "original PAPI" failure mode:
// only one PMU's event fits, so the count misses whatever ran on the other
// core type.
func TestLegacyUndercounts(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{Legacy: true})

	loop := workload.NewInstructionLoop("hybrid", 1e6, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	// Unqualified name resolves against the single default (P) PMU.
	if err := es.AddNamed("INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	// Adding the E-core event must conflict, exactly like PAPI 7.1.
	if err := es.AddNamed("adl_grt::INST_RETIRED:ANY"); !errors.Is(err, ErrConflict) {
		t.Fatalf("cross-PMU add in legacy mode: err = %v, want ErrConflict", err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(loop.Done, 60)
	vals, _ := es.Stop()
	total := loop.TotalInstructions()
	if float64(vals[0]) >= total {
		t.Fatalf("legacy P-only count %d should undercount the %g total", vals[0], total)
	}
	if vals[0] == 0 {
		t.Fatal("task never ran on P cores; scheduler config suspect")
	}
}

func TestPresetDerivedOnHybrid(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})

	info := l.QueryPreset(PresetTotIns)
	if !info.Available || !info.Derived || info.Partial {
		t.Fatalf("PAPI_TOT_INS on Raptor Lake = %+v, want available+derived", info)
	}
	if len(info.Natives) != 2 {
		t.Fatalf("natives = %v", info.Natives)
	}

	loop := workload.NewInstructionLoop("w", 1e6, 1000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddPreset(PresetTotIns); err != nil {
		t.Fatal(err)
	}
	if es.NumEvents() != 1 || es.NumNative() != 2 {
		t.Fatalf("preset expansion: events=%d natives=%d", es.NumEvents(), es.NumNative())
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(loop.Done, 60)
	vals, _ := es.Stop()
	if math.Abs(float64(vals[0])-loop.TotalInstructions()) > 1 {
		t.Fatalf("derived PAPI_TOT_INS = %d, want %g (transparent hybrid sum)",
			vals[0], loop.TotalInstructions())
	}
}

func TestPresetOnHomogeneous(t *testing.T) {
	s := newSim(hw.Homogeneous())
	l := initLib(t, s, Options{})
	info := l.QueryPreset(PresetTotIns)
	if !info.Available || info.Derived || info.Partial {
		t.Fatalf("PAPI_TOT_INS on homogeneous = %+v, want plain available", info)
	}
	if len(info.Natives) != 1 {
		t.Fatalf("natives = %v", info.Natives)
	}
}

func TestPartialPreset(t *testing.T) {
	// PAPI_RES_STL exists on the Cortex-A72 but not the A53: available but
	// partial on the OrangePi.
	s := newSim(hw.OrangePi800())
	l := initLib(t, s, Options{})
	info := l.QueryPreset(PresetResStl)
	if !info.Available || !info.Partial {
		t.Fatalf("PAPI_RES_STL on RK3399 = %+v, want available+partial", info)
	}
	// PAPI_VEC_DP has no ARM mapping at all.
	if info := l.QueryPreset(PresetVecDP); info.Available {
		t.Fatalf("PAPI_VEC_DP on RK3399 = %+v, want unavailable", info)
	}
	es := l.CreateEventSet()
	if err := es.AddPreset(PresetVecDP); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("adding unavailable preset: %v", err)
	}
	// L1_DCM exists only on the P-core PMU of Raptor Lake: partial there.
	s2 := newSim(hw.RaptorLake())
	l2 := initLib(t, s2, Options{})
	if info := l2.QueryPreset(PresetL1DCM); !info.Available || !info.Partial {
		t.Fatalf("PAPI_L1_DCM on Raptor Lake = %+v, want partial", info)
	}
}

func TestPresetsListing(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	ps := l.Presets()
	if len(ps) < 10 {
		t.Fatalf("only %d presets known", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name >= ps[i].Name {
			t.Fatal("presets not sorted")
		}
	}
}

func TestRAPLInSameEventSet(t *testing.T) {
	// Section V.3: with the new infrastructure, energy events join core
	// events in one EventSet.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamed("rapl::ENERGY_PKG"); err != nil {
		t.Fatalf("mixed cpu+rapl eventset (patched): %v", err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(loop.Done, 60)
	vals, _ := es.Stop()
	if vals[0] == 0 {
		t.Error("instructions did not count")
	}
	joules := float64(vals[1]) * s.HW.Power.EnergyUnitJ
	if joules <= 0 {
		t.Error("energy did not count")
	}

	// Legacy: RAPL lives in a separate component; mixing conflicts.
	l2 := initLib(t, s, Options{Legacy: true})
	es2 := l2.CreateEventSet()
	es2.Attach(p.PID)
	es2.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es2.AddNamed("rapl::ENERGY_PKG"); !errors.Is(err, ErrConflict) {
		t.Fatalf("legacy mixed eventset: err = %v, want ErrConflict", err)
	}
}

func TestOneActiveEventSetPerComponent(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("x", 100)
	p := s.Spawn(spin, hw.AllCPUs(s.HW))

	es1 := l.CreateEventSet()
	es1.Attach(p.PID)
	es1.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es1.Start(); err != nil {
		t.Fatal(err)
	}
	es2 := l.CreateEventSet()
	es2.Attach(p.PID)
	es2.AddNamed("adl_grt::INST_RETIRED:ANY")
	if err := es2.Start(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second running cpu eventset: err = %v, want ErrConflict", err)
	}
	// A RAPL-only set uses a different component and may run concurrently.
	es3 := l.CreateEventSet()
	es3.AddNamed("rapl::ENERGY_PKG")
	if err := es3.Start(); err != nil {
		t.Fatalf("concurrent rapl eventset: %v", err)
	}
	es1.Stop()
	es3.Stop()
	// Now the cpu component is free again.
	if err := es2.Start(); err != nil {
		t.Fatal(err)
	}
	es2.Stop()
	es1.Cleanup()
	es2.Cleanup()
	es3.Cleanup()
}

func TestLifecycleErrors(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	es := l.CreateEventSet()

	if err := es.Start(); !errors.Is(err, ErrInvalid) {
		t.Errorf("starting empty set: %v", err)
	}
	if _, err := es.Read(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("reading stopped set: %v", err)
	}
	if _, err := es.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("stopping stopped set: %v", err)
	}
	if err := es.AddNamed("no_such::EVENT"); !errors.Is(err, ErrNoEvent) {
		t.Errorf("bad event name: %v", err)
	}
	if err := es.Attach(-5); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad pid: %v", err)
	}

	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es.Start(); !errors.Is(err, ErrInvalid) {
		t.Errorf("starting unattached set: %v", err)
	}

	spin := workload.NewSpin("x", 100)
	p := s.Spawn(spin, hw.AllCPUs(s.HW))
	es.Attach(p.PID)
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); !errors.Is(err, ErrIsRunning) {
		t.Errorf("double start: %v", err)
	}
	if err := es.AddNamed("adl_grt::INST_RETIRED:ANY"); !errors.Is(err, ErrIsRunning) {
		t.Errorf("add while running: %v", err)
	}
	if err := es.Cleanup(); !errors.Is(err, ErrIsRunning) {
		t.Errorf("cleanup while running: %v", err)
	}
	if err := es.SetMultiplex(); !errors.Is(err, ErrIsRunning) {
		t.Errorf("multiplex while running: %v", err)
	}
	if err := es.Attach(p.PID); !errors.Is(err, ErrIsRunning) {
		t.Errorf("attach while running: %v", err)
	}
	es.Stop()
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	// Cleanup twice is fine; reset on cleaned set is a no-op.
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndRestart(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("x", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.1)
	v1, _ := es.Read()
	if v1[0] == 0 {
		t.Fatal("no counts before reset")
	}
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
	v2, _ := es.Read()
	if v2[0] >= v1[0] {
		t.Fatalf("reset did not zero: before=%d after=%d", v1[0], v2[0])
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	// Stop-restart continues from the stopped value (PAPI semantics:
	// restart does not implicitly reset unless asked).
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.05)
	v3, _ := es.Read()
	if v3[0] < vals[0] {
		t.Fatalf("restart lost counts: %d < %d", v3[0], vals[0])
	}
	es.Stop()
	es.Cleanup()
}

func TestMultiplexedEventSet(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("x", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0)) // pinned to a P-core

	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.SetMultiplex(); err != nil {
		t.Fatal(err)
	}
	// 14 P-core events > 11 counters: only possible multiplexed.
	names := []string{
		"adl_glc::INST_RETIRED:ANY", "adl_glc::CPU_CLK_UNHALTED:THREAD",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES", "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
		"adl_glc::LONGEST_LAT_CACHE:REFERENCE", "adl_glc::LONGEST_LAT_CACHE:MISS",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS", "adl_glc::MEM_INST_RETIRED:ALL_STORES",
		"adl_glc::CYCLE_ACTIVITY:STALLS_TOTAL", "adl_glc::UOPS_RETIRED:SLOTS",
		"adl_glc::TOPDOWN:SLOTS", "adl_glc::DTLB_LOAD_MISSES:WALK_COMPLETED",
		"adl_glc::RESOURCE_STALLS:ANY", "adl_glc::INST_RETIRED:NOP",
	}
	for _, n := range names {
		if err := es.AddNamed(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if es.NumGroups() != len(names) {
		t.Fatalf("multiplexed groups = %d, want %d (one per event)", es.NumGroups(), len(names))
	}
	s.RunFor(2)
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	// Instructions and cycles: scaled estimates should be close to the
	// truth (pinned task, so instructions = IPC * cycles at ~1.6x base).
	if vals[0] == 0 || vals[1] == 0 {
		t.Fatalf("multiplexed values empty: %v", vals)
	}
	ratio := float64(vals[0]) / float64(vals[1])
	if ratio < 2.0 || ratio > 6.0 {
		t.Errorf("scaled IPC = %.2f, implausible for a spin loop", ratio)
	}
	es.Cleanup()
}

func TestWithoutMultiplexTooManyEventsFails(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("x", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	for i := 0; i < 12; i++ { // 12 > 11 counters
		es.AddNamed("adl_glc::INST_RETIRED:ANY")
	}
	if err := es.Start(); err == nil {
		t.Fatal("oversized non-multiplexed eventset must fail to start")
	}
	// And it must clean up after itself: no leaked fds, component free.
	if s.Kernel.NumOpen() != 0 {
		t.Fatalf("%d fds leaked after failed start", s.Kernel.NumOpen())
	}
	es2 := l.CreateEventSet()
	es2.Attach(p.PID)
	es2.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es2.Start(); err != nil {
		t.Fatalf("component busy after failed start: %v", err)
	}
	es2.Stop()
	es2.Cleanup()
}

func TestReadFastMatchesRead(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("x", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	es.AddNamed("rapl::ENERGY_PKG") // forces the fallback path too
	es.Start()
	s.RunFor(0.5)
	slow, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := es.ReadFast()
	if err != nil {
		t.Fatal(err)
	}
	if slow[0] != fast[0] {
		t.Fatalf("fast read %d != read %d", fast[0], slow[0])
	}
	es.Stop()
	es.Cleanup()
}

func TestHardwareInfo(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	info := l.HardwareInfo()
	if !info.Hybrid || len(info.CoreTypes) != 2 {
		t.Fatalf("hardware info = %+v", info)
	}
	if info.TotalCPUs != 24 || info.Cores != 16 {
		t.Fatalf("cpus=%d cores=%d", info.TotalCPUs, info.Cores)
	}
	if info.CoreTypes[0].Name != "P-core" || info.CoreTypes[0].PMUName != "cpu_core" {
		t.Fatalf("core type 0 = %+v", info.CoreTypes[0])
	}
	if len(info.CoreTypes[0].CPUs) != 16 || len(info.CoreTypes[1].CPUs) != 8 {
		t.Fatal("core type cpu lists wrong")
	}
	// Legacy: the V.1 gap — no per-type reporting.
	leg := initLib(t, s, Options{Legacy: true}).HardwareInfo()
	if leg.Hybrid || leg.CoreTypes != nil {
		t.Fatalf("legacy hardware info leaked hybrid details: %+v", leg)
	}
	if leg.TotalCPUs != 24 {
		t.Fatal("legacy info must still count CPUs")
	}
}

func TestSysDetect(t *testing.T) {
	s := newSim(hw.OrangePi800())
	l := initLib(t, s, Options{})
	res, err := l.SysDetect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "pmu" || len(res.Groups) != 2 {
		t.Fatalf("sysdetect = %+v", res)
	}
}

func TestNumCoreGroups(t *testing.T) {
	if got := initLib(t, newSim(hw.RaptorLake()), Options{}).NumCoreGroups(); got != 2 {
		t.Errorf("Raptor Lake groups = %d", got)
	}
	if got := initLib(t, newSim(hw.RaptorLake()), Options{Legacy: true}).NumCoreGroups(); got != 1 {
		t.Errorf("legacy groups = %d", got)
	}
	if got := initLib(t, newSim(hw.Homogeneous()), Options{}).NumCoreGroups(); got != 1 {
		t.Errorf("homogeneous groups = %d", got)
	}
}

func TestEventSetNamesAndIDs(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	es1 := l.CreateEventSet()
	es2 := l.CreateEventSet()
	if es1.ID() == es2.ID() {
		t.Fatal("eventset ids must be unique")
	}
	es1.AddNamed("adl_glc::INST_RETIRED:ANY")
	es1.AddPreset(PresetTotCyc)
	names := es1.Names()
	if len(names) != 2 || names[0] != "adl_glc::INST_RETIRED:ANY" || names[1] != "PAPI_TOT_CYC" {
		t.Fatalf("names = %v", names)
	}
}

func TestUnqualifiedSearchPatchedFindsECoreEvent(t *testing.T) {
	// MEM_UOPS_RETIRED only exists on the E-core PMU: the patched library
	// finds it in the second default PMU, legacy does not find it at all.
	s := newSim(hw.RaptorLake())
	if err := initLib(t, s, Options{}).CreateEventSet().AddNamed("MEM_UOPS_RETIRED:ALL_LOADS"); err != nil {
		t.Errorf("patched: %v", err)
	}
	err := initLib(t, s, Options{Legacy: true}).CreateEventSet().AddNamed("MEM_UOPS_RETIRED:ALL_LOADS")
	if !errors.Is(err, ErrNoEvent) {
		t.Errorf("legacy: err = %v, want ErrNoEvent", err)
	}
}

func TestEventCodeRoundTrip(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	for _, name := range []string{
		"adl_glc::INST_RETIRED:ANY",
		"adl_grt::LONGEST_LAT_CACHE:MISS",
		"rapl::ENERGY_PKG",
		"adl_imc::UNC_M_CAS_COUNT:RD",
		"perf::CONTEXT_SWITCHES",
	} {
		code, err := l.NameToCode(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := l.CodeToName(code)
		if err != nil {
			t.Fatalf("%s (code %#x): %v", name, uint64(code), err)
		}
		if back != name {
			t.Errorf("round trip %q -> %#x -> %q", name, uint64(code), back)
		}
	}
	// Distinct events get distinct codes across PMUs sharing event selects.
	p, _ := l.NameToCode("adl_glc::INST_RETIRED:ANY_P")
	e, _ := l.NameToCode("adl_grt::INST_RETIRED:ANY")
	if p == e {
		t.Error("P and E INST_RETIRED must have distinct codes")
	}
	if _, err := l.NameToCode("no::such"); !errors.Is(err, ErrNoEvent) {
		t.Errorf("bad name: %v", err)
	}
	if _, err := l.CodeToName(EventCode(0xFFFF000000000000)); !errors.Is(err, ErrNoEvent) {
		t.Errorf("bad code: %v", err)
	}
}

func TestLibraryAccessors(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{Legacy: true})
	if !l.Legacy() {
		t.Error("Legacy() must report the mode")
	}
	if l2 := initLib(t, s, Options{}); l2.Legacy() {
		t.Error("patched library reports legacy")
	}
	if l.RealUsec() != 0 || l.RealNsec() != 0 {
		t.Error("clock must start at zero")
	}
	s.RunFor(0.5)
	us, ns := l.RealUsec(), l.RealNsec()
	if us < 499_000 || us > 501_000 {
		t.Errorf("RealUsec = %d after 0.5 s", us)
	}
	if ns < us*1000 || ns > (us+1)*1000 {
		t.Errorf("RealNsec %d inconsistent with RealUsec %d", ns, us)
	}
	// Init fails when the machine lacks event tables (the IV.C situation).
	m := hw.RaptorLake()
	m.Types[0].PfmName = "unsupported"
	if _, err := Init(sim.New(m, sim.DefaultConfig()), Options{}); err == nil {
		t.Error("Init must fail without libpfm4 support")
	}
}

func TestRunningAndElapsed(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	if es.Running() {
		t.Error("fresh set reports running")
	}
	if es.ElapsedSec() != 0 {
		t.Error("stopped set must report zero elapsed")
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if !es.Running() {
		t.Error("started set not running")
	}
	s.RunFor(0.25)
	if el := es.ElapsedSec(); el < 0.24 || el > 0.26 {
		t.Errorf("ElapsedSec = %g, want ~0.25", el)
	}
	es.Stop()
	if es.Running() || es.ElapsedSec() != 0 {
		t.Error("stopped set state wrong")
	}
	es.Cleanup()
}
