package core

// Tests for N>2 core types: the paper notes ARM systems with three core
// types exist ("usually there are two, but there exist ARM CPUs with three
// types and it is plausible even more will be supported someday"), so the
// heterogeneous machinery must generalize beyond the P/E pair.

import (
	"math"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestThreeDefaultPMUs(t *testing.T) {
	s := newSim(hw.Dimensity9000())
	l := initLib(t, s, Options{})
	d := l.Pfm().DefaultPMUs()
	if len(d) != 3 {
		t.Fatalf("defaults = %v, want 3", d)
	}
	if l.NumCoreGroups() != 3 {
		t.Fatalf("NumCoreGroups = %d", l.NumCoreGroups())
	}
	info := l.HardwareInfo()
	if !info.Hybrid || len(info.CoreTypes) != 3 {
		t.Fatalf("hardware info = %+v", info)
	}
}

func TestTriCoreEventSetThreeGroups(t *testing.T) {
	cfg := hw.Dimensity9000()
	s := newSim(cfg)
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("w", 1e6, 3000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	if err := es.Attach(p.PID); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"arm_cortex_a510::INST_RETIRED",
		"arm_cortex_a710::INST_RETIRED",
		"arm_cortex_x2::INST_RETIRED",
	} {
		if err := es.AddNamed(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if got := es.NumGroups(); got != 3 {
		t.Fatalf("NumGroups = %d, want 3 (one per core-type PMU)", got)
	}
	if got := len(es.GroupPMUTypes()); got != 3 {
		t.Fatalf("distinct PMU types = %d", got)
	}
	if !s.RunUntil(loop.Done, 120) {
		t.Fatal("workload did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	if math.Abs(sum-loop.TotalInstructions()) > 1 {
		t.Fatalf("three-PMU sum %g != retired %g (per-type: %v)", sum, loop.TotalInstructions(), vals)
	}
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

func TestTriCorePresetSumsThreeNatives(t *testing.T) {
	s := newSim(hw.Dimensity9000())
	l := initLib(t, s, Options{})
	info := l.QueryPreset(PresetTotIns)
	if !info.Available || !info.Derived || info.Partial {
		t.Fatalf("PAPI_TOT_INS on tri-core = %+v", info)
	}
	if len(info.Natives) != 3 {
		t.Fatalf("natives = %v, want 3", info.Natives)
	}

	loop := workload.NewInstructionLoop("w", 1e6, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddPreset(PresetTotIns); err != nil {
		t.Fatal(err)
	}
	if es.NumNative() != 3 {
		t.Fatalf("NumNative = %d", es.NumNative())
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(loop.Done, 120)
	vals, _ := es.Stop()
	if math.Abs(float64(vals[0])-loop.TotalInstructions()) > 1 {
		t.Fatalf("derived preset = %d, want %g", vals[0], loop.TotalInstructions())
	}
	es.Cleanup()
}

func TestTriCorePartialPresets(t *testing.T) {
	s := newSim(hw.Dimensity9000())
	l := initLib(t, s, Options{})
	// Stall events exist on X2 and A710 but not the little A510: partial.
	if info := l.QueryPreset(PresetResStl); !info.Available || !info.Partial || len(info.Natives) != 2 {
		t.Fatalf("PAPI_RES_STL on tri-core = %+v", info)
	}
	// L3 events cover all three types: X2 and A710 count the shared L3
	// directly, while the A510 maps to its architectural L2D events (the
	// deepest level its PMU can count, same convention as A53/A72).
	if info := l.QueryPreset(PresetL3TCM); !info.Available || info.Partial || len(info.Natives) != 3 {
		t.Fatalf("PAPI_L3_TCM on tri-core = %+v", info)
	}
}

func TestTriCoreLegacySingleDefault(t *testing.T) {
	s := newSim(hw.Dimensity9000())
	l := initLib(t, s, Options{Legacy: true})
	// Legacy picks the FIRST machine core type (the LITTLE cluster here,
	// since device-tree order lists it first) — there is "not a generic
	// way of determining which of the core types should be default".
	es := l.CreateEventSet()
	if err := es.AddNamed("INST_RETIRED"); err != nil {
		t.Fatal(err)
	}
	if got := es.Names()[0]; got != "arm_cortex_a510::INST_RETIRED" {
		t.Fatalf("legacy default resolved to %q", got)
	}
}

func TestTriCoreMachineValid(t *testing.T) {
	m := hw.Dimensity9000()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCPUs() != 8 || len(m.Types) != 3 {
		t.Fatalf("topology: %d cpus, %d types", m.NumCPUs(), len(m.Types))
	}
	// The paper's capacity triple.
	caps := map[int]bool{}
	for i := range m.Types {
		caps[m.Types[i].Capacity] = true
	}
	for _, want := range []int{250, 512, 1024} {
		if !caps[want] {
			t.Errorf("capacity %d missing (paper: often 250, 512, 1024)", want)
		}
	}
}
