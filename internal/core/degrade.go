package core

// Graceful degradation: the machinery that keeps an EventSet producing
// correct, error-bounded measurements while the perf_event substrate
// misbehaves. The policy ladder, from cheapest to most invasive:
//
//  1. EBUSY at Start (watchdog holds the fixed cycles counter): retry
//     with bounded exponential backoff in simulated tick time. If the
//     retry budget is exhausted (or retries are disabled), Start fails
//     and the caller may re-Start later — a deferred start.
//  2. ENOSPC at Start (PMU counter budget exhausted): fall back to
//     software multiplexing — every native event becomes its own perf
//     group so the kernel can rotate them through the remaining
//     counters — and scale reads by time_enabled/time_running. The
//     fallback is sticky: once a set has learned its events do not fit,
//     it stays multiplexed.
//  3. ENODEV at Read (CPU hotplug killed a CPU-wide descriptor):
//     rebuild the dead group on the lowest online CPU, carrying the
//     last observed value forward so reported counts stay monotonic.
//     If no CPU is available the set serves its last known values,
//     explicitly flagged stale, rather than failing the read.
//  4. Every read is clamped monotonic and reported as a Value carrying
//     raw and scaled counts, an explicit error bound (the extrapolated
//     portion), and staleness/scaling indicators, so callers can tell
//     a measurement degraded by the substrate from a clean one.
//
// Everything the ladder does is tallied in a DegradationReport that the
// telemetry collector exports as counter series.

import (
	"errors"
	"fmt"

	"hetpapi/internal/perfevent"
)

// timeEps is the tolerance for "did this time field advance" checks.
const timeEps = 1e-12

// defaultRetryTicks bounds the EBUSY backoff: the total number of
// simulation ticks Start may burn waiting for the watchdog to let go.
const defaultRetryTicks = 16

// Value is one degradation-aware reading of a user-visible event.
// Final is the number callers should use; the other fields say how much
// to trust it.
type Value struct {
	// Raw is the unscaled count: what the hardware counters actually
	// accumulated (summed over the entry's native expansions).
	Raw uint64
	// Scaled is the time_enabled/time_running extrapolated estimate.
	// Without multiplexing or degradation it equals Raw.
	Scaled uint64
	// Final is the reported value: Scaled when scaling is active, Raw
	// otherwise, clamped to never decrease between reads of one run.
	Final uint64
	// TimeEnabled and TimeRunning are the largest such times over the
	// entry's hardware natives, in seconds.
	TimeEnabled float64
	TimeRunning float64
	// ScaleFactor is TimeEnabled/TimeRunning (>= 1): how far the
	// counter value had to be extrapolated. 1 means fully scheduled.
	ScaleFactor float64
	// ErrorBound is the extrapolated portion of the estimate,
	// Scaled - Raw: the count is known to lie in [Raw, Scaled] up to
	// workload-phase effects.
	ErrorBound uint64
	// Stale marks a value whose counters are no longer advancing while
	// the measurement nominally runs on: the thread migrated off every
	// core type this entry can count on, the backing CPU was
	// hotplugged away without a rebuild target, or the set was already
	// stopped when the read was served.
	Stale bool
	// Degraded marks values produced while any rung of the degradation
	// ladder is active for this set.
	Degraded bool
}

// DegradationEvent is one logged degradation action.
type DegradationEvent struct {
	// AtSec is the simulated time of the action.
	AtSec float64
	// Kind names the rung: "busy-retry", "multiplex-fallback",
	// "hotplug-rebuild", "stale-serve", "deferred-start".
	Kind string
	// Detail is a human-readable description.
	Detail string
}

// DegradationReport tallies every degradation an EventSet performed.
// The zero value means the set has run entirely undegraded.
type DegradationReport struct {
	// BusyRetries counts EBUSY-triggered Start retries.
	BusyRetries int
	// RetryTicks counts simulation ticks burned in EBUSY backoff.
	RetryTicks int
	// DeferredStarts counts Starts that gave up on EBUSY (retry budget
	// exhausted or retries disabled) and returned to the caller.
	DeferredStarts int
	// MultiplexFallback counts ENOSPC-triggered falls into software
	// multiplexing (at most 1: the fallback is sticky).
	MultiplexFallback int
	// HotplugRebuilds counts dead groups rebuilt on another CPU.
	HotplugRebuilds int
	// StaleReads counts reads that served stale values.
	StaleReads int
	// DegradedReads counts reads answered while degraded.
	DegradedReads int
	// MonotonicClamps counts per-entry values clamped to keep reads
	// monotonic.
	MonotonicClamps int
	// Events logs each action in order.
	Events []DegradationEvent
}

// degrade is the per-EventSet degradation state.
type degrade struct {
	report DegradationReport
	// fallbackMux records the sticky ENOSPC fallback.
	fallbackMux bool
	// retryTicks is the EBUSY backoff budget: 0 selects
	// defaultRetryTicks, negative disables in-place retry.
	retryTicks int
	// carry holds, per open fd, the count accumulated by predecessors
	// of that descriptor killed by hotplug.
	carry map[int]float64
	// lastCounts and lastTimes snapshot each fd's reading at the last
	// successful collect, for carry computation and stale detection.
	lastCounts map[int]perfevent.Count
	lastTimes  map[int]perfevent.Count
	// staleFd marks descriptors whose counter froze while enabled; the
	// mark is sticky until the counter runs again, so back-to-back
	// reads of a frozen counter stay flagged.
	staleFd map[int]bool
	// lastFinal is the monotonic floor per entry.
	lastFinal []uint64
	// lastValues is the most recent successful result, served (flagged
	// stale) when the substrate cannot answer.
	lastValues []Value
	// lastReadDegraded is trace-only bookkeeping: the degradation
	// quality of the previous read, so quality *transitions* emit
	// instants instead of every read.
	lastReadDegraded bool
}

func (d *degrade) record(at float64, kind, detail string) {
	d.report.Events = append(d.report.Events, DegradationEvent{AtSec: at, Kind: kind, Detail: detail})
}

// SetStartRetry adjusts the EBUSY backoff budget: Start may burn up to
// ticks simulation ticks waiting for a reserved counter. ticks < 0
// disables in-place retry — Start returns perfevent.ErrBusy immediately
// (recorded as a deferred start) and the caller retries on its own
// schedule, which is what per-tick drivers like the scenario harness
// want instead of recursing into the simulation loop.
func (es *EventSet) SetStartRetry(ticks int) { es.deg.retryTicks = ticks }

// Degradations returns a copy of the set's degradation report.
func (es *EventSet) Degradations() DegradationReport {
	r := es.deg.report
	r.Events = append([]DegradationEvent(nil), es.deg.report.Events...)
	return r
}

// Degraded reports whether any rung of the degradation ladder is
// active for this set.
func (es *EventSet) Degraded() bool {
	return es.deg.fallbackMux || es.deg.report.HotplugRebuilds > 0
}

// muxActive reports whether reads must be time-scaled: the user asked
// for multiplexing, or ENOSPC forced the fallback.
func (es *EventSet) muxActive() bool { return es.multiplex || es.deg.fallbackMux }

// Start opens the perf events and begins counting (PAPI_start),
// climbing the degradation ladder when the substrate pushes back: EBUSY
// is retried with bounded exponential backoff in simulated tick time,
// and ENOSPC triggers the sticky software-multiplexing fallback. Errors
// that survive the ladder (including EBUSY past the retry budget) are
// returned; a failed Start leaves the set stopped and restartable.
func (es *EventSet) Start() error {
	from := es.lib.sys.Now()
	err := es.startLadder()
	es.traceStartSpan(from, err)
	return err
}

// startLadder is the Start retry/fallback loop (see Start).
func (es *EventSet) startLadder() error {
	wait, spent := 1, 0
	for {
		err := es.startOnce()
		switch {
		case err == nil:
			es.resetRunState()
			return nil
		case errors.Is(err, perfevent.ErrNoSpace) && !es.muxActive():
			es.deg.fallbackMux = true
			es.deg.report.MultiplexFallback++
			es.recordDegradation(es.lib.sys.Now(), "multiplex-fallback",
				fmt.Sprintf("ENOSPC opening eventset %d: splitting into per-event groups", es.id))
		case errors.Is(err, perfevent.ErrBusy):
			budget := es.deg.retryTicks
			if budget == 0 {
				budget = defaultRetryTicks
			}
			if budget < 0 || spent+wait > budget {
				es.deg.report.DeferredStarts++
				es.recordDegradation(es.lib.sys.Now(), "deferred-start",
					fmt.Sprintf("EBUSY after %d backoff ticks: deferring start of eventset %d", spent, es.id))
				return err
			}
			es.deg.report.BusyRetries++
			es.deg.report.RetryTicks += wait
			es.recordDegradation(es.lib.sys.Now(), "busy-retry",
				fmt.Sprintf("EBUSY opening eventset %d: backing off %d ticks", es.id, wait))
			for i := 0; i < wait; i++ {
				es.lib.sys.Step()
			}
			spent += wait
			wait *= 2
		default:
			return err
		}
	}
}

// resetRunState clears the per-run read state after a successful Start:
// fresh descriptors start counting from zero, so monotonic floors and
// snapshots from the previous run no longer apply.
func (es *EventSet) resetRunState() {
	es.deg.carry = map[int]float64{}
	es.deg.lastCounts = map[int]perfevent.Count{}
	es.deg.lastTimes = map[int]perfevent.Count{}
	es.deg.staleFd = map[int]bool{}
	es.deg.lastFinal = make([]uint64, len(es.entries))
}

// ReadValues returns degradation-aware readings in add order. While the
// set runs it reads the substrate (rebuilding hotplug-killed groups as
// needed); on a stopped set it serves the final values of the last run,
// explicitly flagged stale, instead of failing — the read-after-stop
// behavior that used to silently return unflagged pre-migration counts.
func (es *EventSet) ReadValues() ([]Value, error) {
	if es.state != stateRunning {
		if es.deg.lastValues == nil {
			return nil, ErrNotRunning
		}
		return es.serveStale("read of stopped eventset"), nil
	}
	return es.collectValues()
}

// StopValues stops counting and returns the final degradation-aware
// values (the Value-typed sibling of Stop). Disable errors from
// descriptors already killed by hotplug are ignored: the counters are
// as stopped as they will ever be.
func (es *EventSet) StopValues() ([]Value, error) {
	if es.state != stateRunning {
		return nil, ErrNotRunning
	}
	vals, err := es.collectValues()
	if err != nil {
		return nil, err
	}
	k := es.lib.sys.Kernel
	for _, fd := range es.leaders {
		if err := k.Disable(fd); err != nil && !errors.Is(err, perfevent.ErrNoSuchDevice) {
			return nil, err
		}
	}
	es.state = stateStopped
	for _, key := range es.componentKeys() {
		if es.lib.active[key] == es {
			delete(es.lib.active, key)
		}
	}
	es.traceStopInstant()
	return vals, nil
}

// collectValues reads every group and assembles Values, rebuilding dead
// groups (at most twice) and falling back to flagged stale service when
// the substrate cannot answer at all.
func (es *EventSet) collectValues() ([]Value, error) {
	for attempt := 0; ; attempt++ {
		counts, err := es.readAll()
		if err == nil {
			return es.buildValues(counts), nil
		}
		if !errors.Is(err, perfevent.ErrNoSuchDevice) || attempt >= 2 {
			return nil, err
		}
		if !es.rebuildDead() {
			if es.deg.lastValues == nil {
				return nil, err
			}
			return es.serveStale("no online CPU to rebuild on"), nil
		}
	}
}

func (es *EventSet) readAll() (map[int]perfevent.Count, error) {
	k := es.lib.sys.Kernel
	counts := map[int]perfevent.Count{}
	for _, leader := range es.leaders {
		got, err := k.ReadGroup(leader)
		if err != nil {
			return nil, err
		}
		for i, fd := range es.members[leader] {
			counts[fd] = got[i]
		}
	}
	return counts, nil
}

// serveStale returns the last known values flagged stale and degraded.
func (es *EventSet) serveStale(why string) []Value {
	es.deg.report.StaleReads++
	es.deg.report.DegradedReads++
	es.recordDegradation(es.lib.sys.Now(), "stale-serve", why)
	out := append([]Value(nil), es.deg.lastValues...)
	for i := range out {
		out[i].Stale = true
		out[i].Degraded = true
	}
	return out
}

// rebuildDead reopens every hotplug-killed group on the lowest online
// CPU, carrying the last observed counts forward. Only CPU-wide groups
// can die (per-task events follow their thread), and those are opened
// as singleton leaders, but the walk handles full groups anyway.
// Returns false if nothing could be rebuilt.
func (es *EventSet) rebuildDead() bool {
	k := es.lib.sys.Kernel
	online := k.OnlineCPUs()
	rebuilt := false
	for li, leader := range append([]int(nil), es.leaders...) {
		if _, err := k.ReadGroup(leader); !errors.Is(err, perfevent.ErrNoSuchDevice) {
			continue
		}
		if len(online) == 0 {
			return rebuilt
		}
		newCPU := online[0]
		oldMembers := es.members[leader]
		newLeader := -1
		var newMembers []int
		ok := true
		for _, fd := range oldMembers {
			ei, ni := es.findFd(fd)
			if ei < 0 {
				continue
			}
			n := es.entries[ei].natives[ni]
			attr := n.Attr
			attr.Disabled = true
			attr.SamplePeriod = es.entries[ei].samplePeriod
			groupFD := -1
			if newLeader >= 0 {
				groupFD = newLeader
			}
			nfd, err := k.Open(attr, -1, newCPU, groupFD)
			if err != nil {
				ok = false
				break
			}
			es.deg.carry[nfd] = es.deg.carry[fd] + float64(es.deg.lastCounts[fd].Value)
			delete(es.deg.carry, fd)
			es.deg.lastTimes[nfd] = perfevent.Count{}
			delete(es.deg.lastTimes, fd)
			delete(es.deg.lastCounts, fd)
			es.entries[ei].fds[ni] = nfd
			if newLeader < 0 {
				newLeader = nfd
			}
			newMembers = append(newMembers, nfd)
			k.Close(fd) // dead descriptors still close cleanly
		}
		if !ok || newLeader < 0 {
			continue
		}
		if err := k.Enable(newLeader); err != nil {
			continue
		}
		delete(es.members, leader)
		es.members[newLeader] = newMembers
		es.leaderType[newLeader] = es.leaderType[leader]
		delete(es.leaderType, leader)
		es.leaders[li] = newLeader
		es.deg.report.HotplugRebuilds++
		es.recordDegradation(es.lib.sys.Now(), "hotplug-rebuild",
			fmt.Sprintf("group fd %d died with its CPU: rebuilt on cpu%d as fd %d", leader, newCPU, newLeader))
		rebuilt = true
	}
	return rebuilt
}

// findFd locates an open fd's (entry, native) indices, or (-1, -1).
func (es *EventSet) findFd(fd int) (int, int) {
	for ei := range es.entries {
		for ni, f := range es.entries[ei].fds {
			if f == fd {
				return ei, ni
			}
		}
	}
	return -1, -1
}

// buildValues assembles per-entry Values from raw group counts and
// updates the read snapshots.
func (es *EventSet) buildValues(counts map[int]perfevent.Count) []Value {
	scaling := es.muxActive()
	degraded := es.Degraded()
	anyStale, anyClamp := false, false
	out := make([]Value, 0, len(es.entries))
	for idx := range es.entries {
		e := &es.entries[idx]
		var rawSum, scaledSum float64
		var maxEn, maxRun float64
		hwNatives, staleNatives := 0, 0
		for i, fd := range e.fds {
			c := counts[fd]
			carry := es.deg.carry[fd]
			raw := float64(c.Value) + carry
			sc := raw
			if scaling {
				sc = float64(c.Scaled()) + carry
			}
			sign := e.signOf(i)
			rawSum += sign * raw
			scaledSum += sign * sc
			if es.isHWNative(e.natives[i].PMU) {
				hwNatives++
				prev, seen := es.deg.lastTimes[fd]
				switch {
				case seen && c.TimeRunning > prev.TimeRunning+timeEps:
					es.deg.staleFd[fd] = false // ran again: freshness restored
				case seen && c.TimeEnabled > prev.TimeEnabled+timeEps:
					es.deg.staleFd[fd] = true // enabled but frozen
				case !seen && c.TimeEnabled > timeEps && c.TimeRunning <= timeEps:
					es.deg.staleFd[fd] = true
				}
				if es.deg.staleFd[fd] {
					staleNatives++
				}
				if c.TimeEnabled > maxEn {
					maxEn = c.TimeEnabled
				}
				if c.TimeRunning > maxRun {
					maxRun = c.TimeRunning
				}
			}
		}
		if rawSum < 0 {
			rawSum = 0 // derived subtraction can transiently undershoot
		}
		if scaledSum < rawSum {
			scaledSum = rawSum
		}
		chosen := rawSum
		if scaling {
			chosen = scaledSum
		}
		final := uint64(chosen)
		if final < es.deg.lastFinal[idx] {
			final = es.deg.lastFinal[idx]
			es.deg.report.MonotonicClamps++
			anyClamp = true
		}
		es.deg.lastFinal[idx] = final
		sf := 1.0
		if maxRun > timeEps && maxEn > maxRun {
			sf = maxEn / maxRun
		}
		stale := hwNatives > 0 && staleNatives == hwNatives
		if stale {
			anyStale = true
		}
		out = append(out, Value{
			Raw:         uint64(rawSum),
			Scaled:      uint64(scaledSum),
			Final:       final,
			TimeEnabled: maxEn,
			TimeRunning: maxRun,
			ScaleFactor: sf,
			ErrorBound:  uint64(scaledSum) - uint64(rawSum),
			Stale:       stale,
			Degraded:    degraded || stale,
		})
	}
	for fd, c := range counts {
		es.deg.lastCounts[fd] = c
		es.deg.lastTimes[fd] = c
	}
	if anyStale {
		es.deg.report.StaleReads++
	}
	if degraded || anyStale || anyClamp {
		es.deg.report.DegradedReads++
	}
	es.traceReadQuality(degraded || anyStale || anyClamp)
	es.deg.lastValues = append([]Value(nil), out...)
	return out
}

// isHWNative reports whether a native's PMU counts on hardware core
// counters — the ones that can stall under migration, multiplexing or
// watchdog reservations. Software, RAPL and uncore natives accrue
// running time whenever enabled.
func (es *EventSet) isHWNative(pmuName string) bool {
	return pmuName != "perf" && pmuName != "rapl" && es.lib.componentOf(pmuName) == "cpu"
}
