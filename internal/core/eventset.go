package core

import (
	"fmt"
	"sort"
	"strings"

	"hetpapi/internal/perfevent"
	"hetpapi/internal/pfmlib"
)

// state of an EventSet.
const (
	stateStopped = iota
	stateRunning
)

// entry is one added event (native or preset) and its expansion.
type entry struct {
	display string
	preset  bool
	partial bool
	natives []pfmlib.EventInfo
	// signs holds +1/-1 per native for derived-subtract presets
	// (PAPI_L3_TCH = accesses - misses); nil means all positive.
	signs        []float64
	fds          []int // parallel to natives, valid while fds are open
	samplePeriod uint64
}

func (e *entry) signOf(i int) float64 {
	if e.signs == nil || i >= len(e.signs) {
		return 1
	}
	return e.signs[i]
}

// EventSet is PAPI's abstraction for a set of events measured together.
//
// With heterogeneous support (the paper's section IV.E), one EventSet may
// hold events from several perf PMUs: internally the events are split into
// one perf event group per PMU type, and Start/Stop/Read/Reset walk all
// the groups. In legacy mode adding a second PMU's event fails with
// ErrConflict, exactly like unpatched PAPI.
type EventSet struct {
	lib *Library
	id  int

	pid     int
	entries []entry
	state   int

	multiplex bool

	// members maps each group-leader fd to its group's fds in open order
	// (leader first). Valid while running or until cleanup.
	members map[int][]int
	// leaders holds the group-leader fds in open order.
	leaders []int
	// leaderType maps each leader fd to its perf PMU type.
	leaderType map[int]uint32

	startedAt float64

	// deg is the graceful-degradation state (see degrade.go).
	deg degrade
}

// CreateEventSet returns an empty, unattached EventSet.
func (l *Library) CreateEventSet() *EventSet {
	l.sets++
	return &EventSet{lib: l, id: l.sets, pid: -1}
}

// ID returns the EventSet's identifier.
func (es *EventSet) ID() int { return es.id }

// Attach binds the EventSet to a process (PAPI_attach). Must be called
// before Start unless the set holds only CPU-wide (energy) events.
func (es *EventSet) Attach(pid int) error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	if pid < 0 {
		return fmt.Errorf("%w: bad pid %d", ErrInvalid, pid)
	}
	es.pid = pid
	return nil
}

// SetMultiplex enables multiplexing for the set: every event becomes its
// own perf event group, letting more events run than hardware counters
// exist at the cost of time-slicing accuracy.
func (es *EventSet) SetMultiplex() error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	es.multiplex = true
	return nil
}

// Names returns the display names of the added events, in add order.
func (es *EventSet) Names() []string {
	var out []string
	for _, e := range es.entries {
		out = append(out, e.display)
	}
	return out
}

// NumEvents returns the number of added (user-visible) events.
func (es *EventSet) NumEvents() int { return len(es.entries) }

// NumNative returns the number of underlying native perf events.
func (es *EventSet) NumNative() int {
	n := 0
	for _, e := range es.entries {
		n += len(e.natives)
	}
	return n
}

// AddNamed adds a native event by its libpfm4-style name. Unqualified
// names are searched in the default PMUs — all core PMUs when patched,
// only the hard-coded first one in legacy mode.
func (es *EventSet) AddNamed(name string) error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	info, err := es.resolve(name)
	if err != nil {
		return err
	}
	if err := es.checkLegacy([]pfmlib.EventInfo{info}); err != nil {
		return err
	}
	es.entries = append(es.entries, entry{display: info.FullName, natives: []pfmlib.EventInfo{info}})
	return nil
}

func (es *EventSet) resolve(name string) (pfmlib.EventInfo, error) {
	if es.lib.legacy && !strings.Contains(name, "::") {
		// Legacy: unqualified names only match the single default PMU.
		name = es.lib.defaultPMUs()[0] + "::" + name
	}
	info, err := es.lib.pfm.ParseEvent(name)
	if err != nil {
		return pfmlib.EventInfo{}, fmt.Errorf("%w: %v", ErrNoEvent, err)
	}
	return info, nil
}

// AddPreset adds a preset event. On hybrid machines (patched mode) the
// preset expands to one native event per core PMU and Read reports their
// sum; legacy mode resolves only the default PMU's native event.
func (es *EventSet) AddPreset(p Preset) error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	info := es.lib.QueryPreset(p)
	if !info.Available {
		return fmt.Errorf("%w: preset %s has no native mapping on this machine", ErrNoEvent, p)
	}
	var natives []pfmlib.EventInfo
	var signs []float64
	for _, spec := range info.Natives {
		sign := 1.0
		if strings.HasPrefix(spec, "-") {
			sign = -1
			spec = spec[1:]
		}
		ev, err := es.lib.pfm.ParseEvent(spec)
		if err != nil {
			return fmt.Errorf("%w: preset %s expansion %q: %v", ErrNoEvent, p, spec, err)
		}
		natives = append(natives, ev)
		signs = append(signs, sign)
	}
	if err := es.checkLegacy(natives); err != nil {
		return err
	}
	es.entries = append(es.entries, entry{
		display: string(p),
		preset:  true,
		partial: info.Partial,
		natives: natives,
		signs:   signs,
	})
	return nil
}

// checkLegacy enforces the PAPI 7.1 single-PMU-per-EventSet restriction:
// an EventSet can hold events of exactly one perf PMU type, so hybrid core
// pairs, RAPL and uncore each need their own EventSet (and their own
// components — the situation sections IV.E and V.3 remove).
func (es *EventSet) checkLegacy(more []pfmlib.EventInfo) error {
	if !es.lib.legacy {
		return nil
	}
	types := map[uint32]bool{}
	add := func(n pfmlib.EventInfo) {
		if n.PMU == "perf" {
			return // software events mixed fine even in PAPI 7.1
		}
		types[n.Attr.Type] = true
	}
	for _, e := range es.entries {
		for _, n := range e.natives {
			add(n)
		}
	}
	for _, n := range more {
		add(n)
	}
	if len(types) > 1 {
		return fmt.Errorf("%w: PAPI 7.1 eventsets cannot span perf PMU types", ErrConflict)
	}
	return nil
}

// components returns the distinct PAPI components the set's natives
// belong to ("cpu", "rapl", "uncore"), sorted.
func (es *EventSet) components() []string {
	seen := map[string]bool{}
	for _, e := range es.entries {
		for _, n := range e.natives {
			seen[es.lib.componentOf(n.PMU)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (es *EventSet) usesComponent(name string) bool {
	for _, c := range es.components() {
		if c == name {
			return true
		}
	}
	return false
}

// componentKeys returns the activation keys the set occupies while
// running: per-task components are scoped to the attached pid, CPU-wide
// ones (rapl, uncore) are global.
func (es *EventSet) componentKeys() []componentKey {
	var out []componentKey
	for _, c := range es.components() {
		pid := -1
		if c == "cpu" {
			pid = es.pid
		}
		out = append(out, componentKey{component: c, pid: pid})
	}
	return out
}

// startOnce opens the perf events and begins counting: one attempt of
// Start (degrade.go), with no retry or fallback logic.
//
// This is where the multi-PMU machinery lives: the natives are partitioned
// by perf PMU type, each partition becomes one perf event group (or one
// group per event under multiplexing), and every group is enabled. Only
// one EventSet may be running per component at a time.
func (es *EventSet) startOnce() error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	if len(es.entries) == 0 {
		return fmt.Errorf("%w: empty eventset", ErrInvalid)
	}
	if es.usesComponent("cpu") && es.pid < 0 {
		return fmt.Errorf("%w: eventset not attached to a process", ErrInvalid)
	}
	keys := es.componentKeys()
	for _, k := range keys {
		if other := es.lib.active[k]; other != nil {
			return fmt.Errorf("%w: eventset %d already running on the %s component",
				ErrConflict, other.id, k.component)
		}
	}

	k := es.lib.sys.Kernel
	es.members = map[int][]int{}
	es.leaders = nil
	es.leaderType = map[int]uint32{}
	// Track the leader fd per PMU type while opening in add order.
	leaderOf := map[uint32]int{}

	fail := func(err error) error {
		for _, fds := range es.members {
			for _, fd := range fds {
				k.Close(fd)
			}
		}
		es.members = nil
		es.leaders = nil
		es.leaderType = nil
		for i := range es.entries {
			es.entries[i].fds = nil
		}
		return err
	}

	for i := range es.entries {
		e := &es.entries[i]
		e.fds = nil
		for _, n := range e.natives {
			attr := n.Attr
			attr.Disabled = true
			attr.SamplePeriod = e.samplePeriod
			pid, cpuTarget := es.pid, -1
			cpuWide := es.lib.cpuWide(n.PMU)
			if cpuWide {
				pid, cpuTarget = -1, 0
			}
			groupFD := -1
			if !es.muxActive() && !cpuWide && n.PMU != "perf" {
				if lfd, ok := leaderOf[attr.Type]; ok {
					groupFD = lfd
				}
			}
			fd, err := k.Open(attr, pid, cpuTarget, groupFD)
			if err != nil {
				return fail(fmt.Errorf("core: opening %s: %w", n.FullName, err))
			}
			if groupFD == -1 {
				if !es.muxActive() && !cpuWide && n.PMU != "perf" {
					leaderOf[attr.Type] = fd
				}
				es.leaders = append(es.leaders, fd)
				es.leaderType[fd] = attr.Type
				es.members[fd] = []int{fd}
			} else {
				es.members[groupFD] = append(es.members[groupFD], fd)
			}
			e.fds = append(e.fds, fd)
		}
	}

	// Enable all groups. Real PAPI does one ioctl per group leader — on a
	// hybrid machine that is one per core type, the extra start overhead
	// section V.5 worries about.
	for _, fd := range es.leaders {
		if err := k.Enable(fd); err != nil {
			return fail(err)
		}
	}
	es.state = stateRunning
	es.startedAt = es.lib.sys.Now()
	for _, k := range keys {
		es.lib.active[k] = es
	}
	return nil
}

// Running reports whether the set is counting.
func (es *EventSet) Running() bool { return es.state == stateRunning }

// NumGroups returns the number of perf event groups backing the running
// set (one per PMU type, or one per event when multiplexed).
func (es *EventSet) NumGroups() int { return len(es.leaders) }

// GroupPMUTypes returns the distinct perf PMU types of the running
// groups, sorted.
func (es *EventSet) GroupPMUTypes() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, t := range es.leaderType {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Read returns the current counts in add order (PAPI_read). Preset entries
// report the sum of their native expansions; multiplexed reads are scaled
// by time-enabled/time-running.
func (es *EventSet) Read() ([]uint64, error) {
	if es.state != stateRunning {
		return nil, ErrNotRunning
	}
	return es.collect(false)
}

// ReadFast reads through the rdpmc user-space fast path where possible,
// avoiding syscall-equivalent reads for per-task hardware events (the
// "fast rdpmc counter support" of section V.5). Energy events fall back to
// normal reads.
func (es *EventSet) ReadFast() ([]uint64, error) {
	if es.state != stateRunning {
		return nil, ErrNotRunning
	}
	return es.collect(true)
}

func (es *EventSet) collect(fast bool) ([]uint64, error) {
	k := es.lib.sys.Kernel
	counts := map[int]perfevent.Count{}
	if fast {
		for _, e := range es.entries {
			for _, fd := range e.fds {
				c, err := k.ReadUser(fd)
				if err != nil {
					c, err = k.Read(fd) // energy events: no rdpmc page
					if err != nil {
						return nil, err
					}
				}
				counts[fd] = c
			}
		}
	} else {
		// One read syscall per group (PERF_FORMAT_GROUP), the best case
		// the paper describes: "at least two or more relatively
		// high-latency read syscalls" on a hybrid machine.
		for _, leader := range es.leaders {
			got, err := k.ReadGroup(leader)
			if err != nil {
				return nil, err
			}
			for i, fd := range es.members[leader] {
				counts[fd] = got[i]
			}
		}
	}

	var out []uint64
	for _, e := range es.entries {
		var sum float64
		for i, fd := range e.fds {
			c := counts[fd]
			v := c.Value
			if es.muxActive() {
				v = c.Scaled()
			}
			sum += e.signOf(i) * float64(v)
		}
		if sum < 0 {
			sum = 0 // derived subtraction can transiently undershoot
		}
		out = append(out, uint64(sum))
	}
	return out, nil
}

// Stop stops counting and returns the final values (PAPI_stop).
func (es *EventSet) Stop() ([]uint64, error) {
	if es.state != stateRunning {
		return nil, ErrNotRunning
	}
	vals, err := es.collect(false)
	if err != nil {
		return nil, err
	}
	k := es.lib.sys.Kernel
	for _, fd := range es.leaders {
		if err := k.Disable(fd); err != nil {
			return nil, err
		}
	}
	es.state = stateStopped
	for _, k := range es.componentKeys() {
		if es.lib.active[k] == es {
			delete(es.lib.active, k)
		}
	}
	es.traceStopInstant()
	return vals, nil
}

// Reset zeroes all counters (PAPI_reset), running or stopped.
func (es *EventSet) Reset() error {
	if es.members == nil {
		return nil // nothing open yet
	}
	k := es.lib.sys.Kernel
	for _, fd := range es.leaders {
		if err := k.Reset(fd); err != nil {
			return err
		}
	}
	// Zeroed counters invalidate the monotonic floors, carries and
	// count snapshots (times are not reset by the ioctl, so the stale
	// snapshots stay).
	for i := range es.deg.lastFinal {
		es.deg.lastFinal[i] = 0
	}
	es.deg.carry = map[int]float64{}
	es.deg.lastCounts = map[int]perfevent.Count{}
	return nil
}

// Cleanup closes the perf descriptors; the set must be stopped
// (PAPI_cleanup_eventset). Events stay added and the set can be started
// again.
func (es *EventSet) Cleanup() error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	if es.members == nil {
		return nil
	}
	k := es.lib.sys.Kernel
	var firstErr error
	for _, fds := range es.members {
		// Close siblings before leaders (reverse open order).
		for i := len(fds) - 1; i >= 0; i-- {
			if err := k.Close(fds[i]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	es.members = nil
	es.leaders = nil
	es.leaderType = nil
	for i := range es.entries {
		es.entries[i].fds = nil
	}
	return firstErr
}

// ElapsedSec returns the simulated seconds since Start (0 when stopped).
func (es *EventSet) ElapsedSec() float64 {
	if es.state != stateRunning {
		return 0
	}
	return es.lib.sys.Now() - es.startedAt
}
