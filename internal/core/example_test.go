package core_test

// Runnable, output-verified documentation examples for the PAPI-style API.

import (
	"fmt"
	"log"

	"hetpapi/internal/core"
	"hetpapi/internal/hw"
	"hetpapi/internal/sim"
	"hetpapi/internal/workload"
)

// Example shows the canonical hybrid measurement: one EventSet holding
// both core types' instruction events around a pinned workload.
func Example() {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, err := core.Init(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	loop := workload.NewInstructionLoop("demo", 1e6, 100)
	proc := machine.Spawn(loop, hw.NewCPUSet(0)) // pinned to a P-core

	es := papi.CreateEventSet()
	es.Attach(proc.PID)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	es.AddNamed("adl_grt::INST_RETIRED:ANY")
	es.Start()
	machine.RunUntil(loop.Done, 60)
	vals, _ := es.Stop()
	es.Cleanup()

	fmt.Printf("p: %d e: %d\n", vals[0], vals[1])
	// Output:
	// p: 100000000 e: 0
}

// ExampleLibrary_HardwareInfo shows the detailed per-core-type reporting
// of the paper's section V.1.
func ExampleLibrary_HardwareInfo() {
	machine := sim.New(hw.OrangePi800(), sim.DefaultConfig())
	papi, _ := core.Init(machine, core.Options{})
	info := papi.HardwareInfo()
	fmt.Printf("%s: hybrid=%v\n", info.Model, info.Hybrid)
	for _, ct := range info.CoreTypes {
		fmt.Printf("%s (%s): %d cpus\n", ct.Name, ct.Microarch, len(ct.CPUs))
	}
	// Output:
	// Rockchip RK3399: hybrid=true
	// LITTLE (Cortex-A53): 4 cpus
	// big (Cortex-A72): 2 cpus
}

// ExampleLibrary_QueryPreset shows hybrid preset derivation: PAPI_TOT_INS
// expands to one native event per core PMU (section V.2).
func ExampleLibrary_QueryPreset() {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, _ := core.Init(machine, core.Options{})
	info := papi.QueryPreset(core.PresetTotIns)
	fmt.Println("available:", info.Available)
	fmt.Println("derived:  ", info.Derived)
	for _, n := range info.Natives {
		fmt.Println(" ", n)
	}
	// Output:
	// available: true
	// derived:   true
	//   adl_glc::INST_RETIRED:ANY
	//   adl_grt::INST_RETIRED:ANY
}

// ExampleEventSet_AddPreset measures through a derived preset: the value
// transparently sums both PMUs' events.
func ExampleEventSet_AddPreset() {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, _ := core.Init(machine, core.Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 50)
	proc := machine.Spawn(loop, hw.NewCPUSet(16)) // pinned to an E-core

	es := papi.CreateEventSet()
	es.Attach(proc.PID)
	es.AddPreset(core.PresetTotIns)
	es.Start()
	machine.RunUntil(loop.Done, 60)
	vals, _ := es.Stop()
	es.Cleanup()
	fmt.Println("PAPI_TOT_INS:", vals[0])
	// Output:
	// PAPI_TOT_INS: 50000000
}

// ExampleLibrary_SysDetect runs the section IV.B detection heuristics.
func ExampleLibrary_SysDetect() {
	machine := sim.New(hw.Dimensity9000(), sim.DefaultConfig())
	papi, _ := core.Init(machine, core.Options{})
	res, _ := papi.SysDetect()
	fmt.Println("strategy:", res.Strategy)
	for _, g := range res.Groups {
		fmt.Println(" ", g.Key, g.CPUs)
	}
	// Output:
	// strategy: pmu
	//   pmu:armv9_cortex_a510 [0 1 2 3]
	//   pmu:armv9_cortex_a710 [4 5 6]
	//   pmu:armv9_cortex_x2 [7]
}

// ExampleLibrary_NewHL calipers two regions with the high-level API.
func ExampleLibrary_NewHL() {
	machine := sim.New(hw.RaptorLake(), sim.DefaultConfig())
	papi, _ := core.Init(machine, core.Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 1000)
	proc := machine.Spawn(loop, hw.NewCPUSet(0))

	hl, _ := papi.NewHL(proc.PID, core.PresetTotIns)
	hl.Begin("phase1")
	machine.RunFor(0.01)
	hl.End("phase1")
	hl.Begin("phase2")
	machine.RunFor(0.02)
	hl.End("phase2")
	hl.Close()

	p1 := hl.Stats("phase1").Values[0]
	p2 := hl.Stats("phase2").Values[0]
	fmt.Println("phase2 measured roughly twice phase1:", p2 > p1*3/2 && p2 < p1*5/2)
	// Output:
	// phase2 measured roughly twice phase1: true
}
