// Package core is this repository's PAPI: a cross-platform performance
// measurement library in the style of the Performance API, extended with
// the heterogeneous-processor support that the paper (section IV) adds to
// real PAPI — the primary contribution being reproduced.
//
// The library sits on top of internal/pfmlib (event naming, the libpfm4
// role) and internal/perfevent (the kernel). Its central abstraction is
// the EventSet: a group of events started, stopped, read and reset
// together, calipering arbitrary regions of a workload's execution — the
// capability the paper highlights as PAPI's advantage over the perf tool.
//
// Heterogeneous support, following the paper:
//
//   - Multiple default PMUs (IV.D): unqualified event names search every
//     core PMU; hardware info reports each core type.
//   - Multi-PMU EventSets (IV.E): events from different PMUs land in
//     separate perf event groups inside one EventSet and are started,
//     stopped, read and reset together.
//   - Hybrid-aware presets (V.2): PAPI_TOT_INS and friends expand into one
//     native event per core PMU and report the transparent sum.
//   - Unified component (V.3): RAPL energy events join the same EventSet
//     as core events instead of living in a separate component.
//   - Detailed processor reporting (V.1) and a sysdetect view (IV.B).
//
// Options.Legacy reproduces the PAPI 7.1 behaviour the paper starts from:
// one default PMU, single-PMU EventSets, no hybrid presets — useful as the
// experimental baseline (section IV.F's "with original PAPI you could
// specify only one of the events").
package core

import (
	"errors"
	"fmt"

	"hetpapi/internal/pfmlib"
	"hetpapi/internal/sim"
	"hetpapi/internal/spantrace"
	"hetpapi/internal/sysfs"
)

// PAPI-style error conditions.
var (
	// ErrNoEvent mirrors PAPI_ENOEVNT: the event cannot be found or is
	// unavailable on this machine.
	ErrNoEvent = errors.New("core: event not available (PAPI_ENOEVNT)")
	// ErrConflict mirrors PAPI_ECNFLCT: the event conflicts with the
	// EventSet (wrong PMU in legacy mode, component collision, another
	// running EventSet on the component).
	ErrConflict = errors.New("core: event conflicts with eventset (PAPI_ECNFLCT)")
	// ErrIsRunning mirrors PAPI_EISRUN: the operation needs a stopped
	// EventSet.
	ErrIsRunning = errors.New("core: eventset is running (PAPI_EISRUN)")
	// ErrNotRunning mirrors PAPI_ENOTRUN.
	ErrNotRunning = errors.New("core: eventset is not running (PAPI_ENOTRUN)")
	// ErrInvalid mirrors PAPI_EINVAL.
	ErrInvalid = errors.New("core: invalid argument (PAPI_EINVAL)")
)

// Options configures library initialization.
type Options struct {
	// Legacy selects the unpatched PAPI 7.1 behaviour: a single default
	// PMU, EventSets limited to one PMU type, presets resolved against the
	// default PMU only, RAPL confined to its own component, and no
	// per-core-type hardware reporting.
	Legacy bool
}

// Library is an initialized PAPI instance bound to one machine.
type Library struct {
	sys    *sim.Machine
	pfm    *pfmlib.Library
	legacy bool

	presets map[Preset]map[string]string // preset -> pfm pmu -> native

	// One EventSet may be running per component *per attached thread* at a
	// time (the PAPI rule the paper works around by putting multiple PMUs
	// into ONE EventSet). Components: "cpu" (all core PMUs), "rapl",
	// "uncore"; the CPU-wide components use pid -1.
	active map[componentKey]*EventSet

	sets int // id counter

	// traceRec / papiTrk cache the machine's span recorder and the
	// "papi" track id (see trace.go).
	traceRec *spantrace.Recorder
	papiTrk  int
}

// Init initializes the library against a simulated machine.
func Init(sys *sim.Machine, opts Options) (*Library, error) {
	pfm, err := pfmlib.New(sys.HW)
	if err != nil {
		return nil, fmt.Errorf("core: libpfm4 initialization failed: %w", err)
	}
	l := &Library{sys: sys, pfm: pfm, legacy: opts.Legacy, active: map[componentKey]*EventSet{}}
	if err := l.loadPresets(); err != nil {
		return nil, err
	}
	return l, nil
}

// Legacy reports whether the library runs in PAPI 7.1 compatibility mode.
func (l *Library) Legacy() bool { return l.legacy }

// Pfm exposes the event-naming library (papi_native_avail functionality).
func (l *Library) Pfm() *pfmlib.Library { return l.pfm }

// defaultPMUs returns the PMUs unqualified names resolve against: all core
// PMUs when patched, only the first (hard-coded "P" choice, IV.D) when
// legacy.
func (l *Library) defaultPMUs() []string {
	d := l.pfm.DefaultPMUs()
	if l.legacy && len(d) > 1 {
		return d[:1]
	}
	return d
}

// CoreTypeInfo describes one core type for hardware reporting.
type CoreTypeInfo struct {
	// Name is the core type name ("P-core").
	Name string
	// Microarch is the microarchitecture ("RaptorCove").
	Microarch string
	// PMUName is the kernel PMU ("cpu_core"); PfmName the event-table
	// model ("adl_glc").
	PMUName string
	PfmName string
	// Class is "performance" or "efficiency".
	Class string
	// CPUs are the logical CPUs of this type.
	CPUs []int
	// MaxMHz is the maximum frequency.
	MaxMHz float64
}

// HardwareInfo is the PAPI_get_hardware_info view of the machine.
type HardwareInfo struct {
	// Vendor and Model identify the processor.
	Vendor string
	Model  string
	// Arch is "x86_64" or "aarch64".
	Arch string
	// Family, ModelID, Stepping are the identification triple — note that
	// on Intel hybrids it is shared by all core types.
	Family, ModelID, Stepping int
	// TotalCPUs and Cores count hardware threads and physical cores.
	TotalCPUs int
	Cores     int
	// Hybrid reports whether multiple core types were detected. Legacy
	// mode cannot tell (the V.1 gap) and always reports false with no
	// CoreTypes.
	Hybrid bool
	// CoreTypes describes each core type (patched mode only).
	CoreTypes []CoreTypeInfo
	// MemGB is installed memory.
	MemGB float64
}

// HardwareInfo implements PAPI_get_hardware_info with the detailed
// processor reporting of section V.1.
func (l *Library) HardwareInfo() HardwareInfo {
	m := l.sys.HW
	info := HardwareInfo{
		Vendor:    m.Vendor,
		Model:     m.CPUModel,
		Arch:      m.Arch,
		Family:    m.Family,
		ModelID:   m.Model,
		Stepping:  m.Stepping,
		TotalCPUs: m.NumCPUs(),
		Cores:     m.NumCores(),
		MemGB:     m.MemoryGB,
	}
	if l.legacy {
		return info
	}
	info.Hybrid = m.Hybrid()
	for i := range m.Types {
		t := &m.Types[i]
		info.CoreTypes = append(info.CoreTypes, CoreTypeInfo{
			Name:      t.Name,
			Microarch: t.Microarch,
			PMUName:   t.PMU.Name,
			PfmName:   t.PfmName,
			Class:     t.Class.String(),
			CPUs:      m.CPUsOfType(t.Name),
			MaxMHz:    t.MaxFreqMHz,
		})
	}
	return info
}

// SysDetectResult is the sysdetect component's view: what the detection
// heuristics of section IV.B find on this machine.
type SysDetectResult struct {
	// Strategy names the heuristic that produced the grouping ("pmu",
	// "capacity", "cpuinfo", "maxfreq").
	Strategy string
	// Groups are the detected CPU groups.
	Groups []sysfs.Group
}

// SysDetect runs the detection heuristics against the machine's sysfs.
func (l *Library) SysDetect() (SysDetectResult, error) {
	groups, strategy, err := sysfs.DetectCoreTypes(l.sys.FS)
	if err != nil {
		return SysDetectResult{}, err
	}
	return SysDetectResult{Strategy: strategy, Groups: groups}, nil
}

// componentKey scopes the one-running-EventSet rule: per component and,
// for per-task components, per attached thread.
type componentKey struct {
	component string
	pid       int
}

// componentOf classifies a pfm PMU model into a PAPI component.
func (l *Library) componentOf(pmuName string) string {
	if pmuName == "rapl" {
		return "rapl"
	}
	if pmuName == "perf" {
		return "cpu" // software events ride the cpu component
	}
	for i := range l.sys.HW.Uncore {
		if l.sys.HW.Uncore[i].PfmName == pmuName {
			return "uncore"
		}
	}
	return "cpu"
}

// cpuWide reports whether events of the PMU model are opened CPU-wide
// (RAPL and uncore PMUs have no per-task context).
func (l *Library) cpuWide(pmuName string) bool {
	return l.componentOf(pmuName) != "cpu"
}

// RealUsec mirrors PAPI_get_real_usec: the machine's wall time in
// microseconds (simulated time here).
func (l *Library) RealUsec() int64 {
	return int64(l.sys.Now() * 1e6)
}

// RealNsec mirrors PAPI_get_real_nsec.
func (l *Library) RealNsec() int64 {
	return int64(l.sys.Now() * 1e9)
}

// NumCoreGroups returns how many perf event groups a running EventSet of
// all default PMUs would need — 1 on homogeneous machines, one per core
// type on hybrids.
func (l *Library) NumCoreGroups() int { return len(l.defaultPMUs()) }

// EventCode is the opaque integer form of a native event, mirroring
// PAPI's event codes: the kernel PMU type in the high word and the raw
// perf config in the low word.
type EventCode uint64

// NameToCode resolves a native event name to its opaque code
// (PAPI_event_name_to_code).
func (l *Library) NameToCode(name string) (EventCode, error) {
	info, err := l.pfm.ParseEvent(name)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNoEvent, err)
	}
	return EventCode(uint64(info.Attr.Type)<<48 | info.Attr.Config&0xFFFFFFFFFFFF), nil
}

// CodeToName resolves an opaque event code back to its canonical name
// (PAPI_event_code_to_name).
func (l *Library) CodeToName(code EventCode) (string, error) {
	perfType := uint32(code >> 48)
	config := uint64(code) & 0xFFFFFFFFFFFF
	for _, pmu := range l.pfm.PMUs() {
		if pmu.PerfType != perfType {
			continue
		}
		names, err := l.pfm.EventsForPMU(pmu.Name)
		if err != nil {
			continue
		}
		for _, n := range names {
			info, err := l.pfm.ParseEvent(n)
			if err != nil {
				continue
			}
			if info.Attr.Config == config {
				return info.FullName, nil
			}
		}
	}
	return "", fmt.Errorf("%w: code %#x", ErrNoEvent, uint64(code))
}
