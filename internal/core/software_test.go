package core

// Tests for kernel software events (PERF_TYPE_SOFTWARE) flowing through
// PAPI EventSets: context switches, CPU migrations and the task clock for
// a thread migrating across core types.

import (
	"errors"
	"math"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestSoftwareEventsCountMigrations(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 3000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	for _, n := range []string{
		"perf::CONTEXT_SWITCHES",
		"perf::CPU_MIGRATIONS",
		"perf::TASK_CLOCK",
		"adl_glc::INST_RETIRED:ANY", // software mixes with hardware
		"adl_grt::INST_RETIRED:ANY",
	} {
		if err := es.AddNamed(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(loop.Done, 60) {
		t.Fatal("workload did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	es.Cleanup()
	switches, migrations, clockNs := vals[0], vals[1], vals[2]
	if migrations == 0 {
		t.Error("free-migrating task should record CPU migrations")
	}
	if switches < migrations {
		t.Errorf("switches (%d) must be >= migrations (%d)", switches, migrations)
	}
	// The task ran continuously: task clock ~= elapsed simulated time.
	elapsedNs := s.Now() * 1e9
	if math.Abs(float64(clockNs)-elapsedNs) > elapsedNs*0.2 {
		t.Errorf("task clock %d ns vs elapsed %g ns", clockNs, elapsedNs)
	}
	if vals[3]+vals[4] != uint64(loop.TotalInstructions()) {
		t.Errorf("hardware counts broken alongside software events: %v", vals)
	}
}

func TestSoftwareEventsPinnedTaskNoMigrations(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 5)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("perf::CPU_MIGRATIONS")
	es.AddNamed("perf::PAGE_FAULTS")
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(spin.Done, 60)
	vals, _ := es.Stop()
	es.Cleanup()
	if vals[0] != 0 {
		t.Errorf("pinned task recorded %d migrations", vals[0])
	}
	if vals[1] == 0 {
		t.Error("page faults should accumulate with memory activity")
	}
}

func TestSoftwareMixAllowedInLegacy(t *testing.T) {
	// PAPI 7.1 also let software and hardware events share an EventSet —
	// the single-PMU restriction applies to hardware PMUs only.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{Legacy: true})
	es := l.CreateEventSet()
	es.Attach(1000)
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamed("perf::CONTEXT_SWITCHES"); err != nil {
		t.Fatalf("legacy sw+hw mix: %v", err)
	}
	if err := es.AddNamed("adl_grt::INST_RETIRED:ANY"); !errors.Is(err, ErrConflict) {
		t.Fatalf("legacy hw+hw mix must still conflict: %v", err)
	}
}
