package core

import (
	"fmt"
	"sort"

	"hetpapi/internal/perfevent"
)

// Sampling support (the PAPI_overflow-style interface): an added event can
// be given a sample period before Start; while the set runs, every native
// expansion of that event emits an overflow record each period. On hybrid
// machines a sampled preset therefore produces a complete profile across
// core types — one sample stream per core PMU, merged by Samples.

// SetSamplePeriod turns the index-th added event (add order, 0-based) into
// a sampling event. It must be called on a stopped set.
func (es *EventSet) SetSamplePeriod(index int, period uint64) error {
	if es.state == stateRunning {
		return ErrIsRunning
	}
	if index < 0 || index >= len(es.entries) {
		return fmt.Errorf("%w: event index %d out of range", ErrInvalid, index)
	}
	if period == 0 {
		return fmt.Errorf("%w: zero sample period", ErrInvalid)
	}
	if period < perfevent.MinSamplePeriod {
		return fmt.Errorf("%w: sample period %d below minimum %d",
			ErrInvalid, period, perfevent.MinSamplePeriod)
	}
	for _, n := range es.entries[index].natives {
		if es.lib.cpuWide(n.PMU) {
			return fmt.Errorf("%w: cannot sample CPU-wide event %s", ErrInvalid, n.FullName)
		}
	}
	es.entries[index].samplePeriod = period
	return nil
}

// Samples drains the overflow records of every sampling native in the set,
// merged in time order, plus the total number of records lost to ring
// overflow. The set must be running or freshly stopped (descriptors still
// open).
func (es *EventSet) Samples() ([]perfevent.Sample, uint64, error) {
	if es.members == nil {
		return nil, 0, ErrNotRunning
	}
	k := es.lib.sys.Kernel
	var out []perfevent.Sample
	var lostTotal uint64
	for _, e := range es.entries {
		if e.samplePeriod == 0 {
			continue
		}
		for _, fd := range e.fds {
			samples, lost, err := k.ReadSamples(fd)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, samples...)
			lostTotal += lost
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeSec < out[j].TimeSec })
	return out, lostTotal, nil
}
