package core

// Span-trace instrumentation for the PAPI-style layer, all on the
// "papi" track:
//
//   - "papi.start" spans covering the whole Start ladder, including
//     simulated ticks burned in EBUSY backoff — the span's duration IS
//     the measurement-setup cost in sim time;
//   - "papi.stop" instants when a running set stops;
//   - "degrade.<kind>" instants for every degradation-ladder action
//     (busy-retry, deferred-start, multiplex-fallback, hotplug-rebuild,
//     stale-serve), carrying the DegradationReport tallies as of that
//     moment so a timeline shows the ladder climbing;
//   - "papi.read.degraded" / "papi.read.clean" instants on transitions
//     of the read-quality state, rather than per read, so a per-tick
//     probe does not flood the ring.
//
// The recorder is reached through the machine (sim.Machine.SetTracer
// attaches the whole stack at once); everything is gated on Enabled().

import (
	"hetpapi/internal/spantrace"
)

// trace returns the enabled recorder and the "papi" track id, or
// (nil, -1). The track id is cached per recorder identity so the
// registry mutex is not taken on every read.
func (l *Library) trace() (*spantrace.Recorder, int) {
	r := l.sys.Tracer()
	if !r.Enabled() {
		return nil, -1
	}
	if r != l.traceRec {
		l.traceRec = r
		l.papiTrk = r.Track("papi")
	}
	return r, l.papiTrk
}

// recordDegradation logs a ladder action in the DegradationReport and
// mirrors it as a trace instant carrying the current tallies.
func (es *EventSet) recordDegradation(at float64, kind, detail string) {
	es.deg.record(at, kind, detail)
	r, trk := es.lib.trace()
	if r == nil {
		return
	}
	rep := &es.deg.report
	r.Instant(trk, "degrade."+kind, "degrade", at,
		spantrace.Int("eventset", es.id),
		spantrace.Str("detail", detail),
		spantrace.Int("busy_retries", rep.BusyRetries),
		spantrace.Int("retry_ticks", rep.RetryTicks),
		spantrace.Int("deferred_starts", rep.DeferredStarts),
		spantrace.Int("multiplex_fallback", rep.MultiplexFallback),
		spantrace.Int("hotplug_rebuilds", rep.HotplugRebuilds),
		spantrace.Int("stale_reads", rep.StaleReads),
		spantrace.Int("degraded_reads", rep.DegradedReads),
		spantrace.Int("monotonic_clamps", rep.MonotonicClamps))
}

// traceStartSpan emits the "papi.start" span for a completed Start
// ladder attempt (success or failure).
func (es *EventSet) traceStartSpan(fromSec float64, err error) {
	r, trk := es.lib.trace()
	if r == nil {
		return
	}
	r.Span(trk, "papi.start", "papi", fromSec, es.lib.sys.Now()-fromSec,
		spantrace.Int("eventset", es.id),
		spantrace.Int("groups", len(es.leaders)),
		spantrace.Err(err))
}

// traceStopInstant emits the "papi.stop" instant.
func (es *EventSet) traceStopInstant() {
	r, trk := es.lib.trace()
	if r == nil {
		return
	}
	r.Instant(trk, "papi.stop", "papi", es.lib.sys.Now(),
		spantrace.Int("eventset", es.id),
		spantrace.Int("degraded_reads", es.deg.report.DegradedReads))
}

// traceReadQuality emits an instant when the degradation quality of
// reads flips between clean and degraded. The state update itself is
// unconditional trace bookkeeping; only the emission is gated.
func (es *EventSet) traceReadQuality(degradedNow bool) {
	if degradedNow == es.deg.lastReadDegraded {
		return
	}
	es.deg.lastReadDegraded = degradedNow
	r, trk := es.lib.trace()
	if r == nil {
		return
	}
	name := "papi.read.clean"
	if degradedNow {
		name = "papi.read.degraded"
	}
	r.Instant(trk, name, "papi", es.lib.sys.Now(),
		spantrace.Int("eventset", es.id),
		spantrace.Int("degraded_reads", es.deg.report.DegradedReads),
		spantrace.Int("stale_reads", es.deg.report.StaleReads))
}
