package core

// Per-thread EventSet tests: real PAPI scopes "one running EventSet per
// component" to the calling thread, so a 16-thread HPL can run 16 attached
// EventSets concurrently — the usage pattern of instrumented parallel
// applications (Gupta et al. in the paper's related work).

import (
	"errors"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestConcurrentEventSetsOnDifferentThreads(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	h, err := workload.NewHPL(workload.HPLConfig{
		N: 3840, NB: 192, Threads: 16, Strategy: workload.OpenBLASx86(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpus := s.HW.FirstCPUPerCore()
	var sets []*EventSet
	for i, task := range h.Threads() {
		p := s.Spawn(task, hw.NewCPUSet(cpus[i]))
		es := l.CreateEventSet()
		if err := es.Attach(p.PID); err != nil {
			t.Fatal(err)
		}
		if err := es.AddPreset(PresetTotIns); err != nil {
			t.Fatal(err)
		}
		// Every thread's EventSet starts concurrently: the per-component
		// rule is per-thread.
		if err := es.Start(); err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
		sets = append(sets, es)
	}
	if !s.RunUntil(h.Done, 600) {
		t.Fatal("HPL did not finish")
	}
	var pInstr, eInstr float64
	for i, es := range sets {
		vals, err := es.Stop()
		if err != nil {
			t.Fatalf("thread %d stop: %v", i, err)
		}
		if vals[0] == 0 {
			t.Fatalf("thread %d counted nothing", i)
		}
		if s.HW.TypeOf(cpus[i]).Class == hw.Performance {
			pInstr += float64(vals[0])
		} else {
			eInstr += float64(vals[0])
		}
		if err := es.Cleanup(); err != nil {
			t.Fatal(err)
		}
	}
	// Per-thread PAPI measurement reproduces the Table III skew: P threads
	// retire more instructions (work + barrier spin).
	share := pInstr / (pInstr + eInstr)
	if share < 0.55 || share > 0.95 {
		t.Errorf("per-thread P instruction share = %.2f", share)
	}
	if s.Kernel.NumOpen() != 0 {
		t.Fatalf("%d fds leaked", s.Kernel.NumOpen())
	}
}

func TestSameThreadStillConflicts(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.AllCPUs(s.HW))
	es1 := l.CreateEventSet()
	es1.Attach(p.PID)
	es1.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es1.Start(); err != nil {
		t.Fatal(err)
	}
	es2 := l.CreateEventSet()
	es2.Attach(p.PID)
	es2.AddNamed("adl_grt::INST_RETIRED:ANY")
	if err := es2.Start(); !errors.Is(err, ErrConflict) {
		t.Fatalf("same-pid second set: %v", err)
	}
	es1.Stop()
	es1.Cleanup()
}

func TestCPUWideComponentsStayGlobal(t *testing.T) {
	// RAPL is package-scope: two RAPL EventSets conflict even when their
	// creators differ, because there is one energy counter.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	es1 := l.CreateEventSet()
	es1.AddNamed("rapl::ENERGY_PKG")
	if err := es1.Start(); err != nil {
		t.Fatal(err)
	}
	es2 := l.CreateEventSet()
	es2.AddNamed("rapl::ENERGY_CORES")
	if err := es2.Start(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second rapl set: %v", err)
	}
	es1.Stop()
	es1.Cleanup()
}
