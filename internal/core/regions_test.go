package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestHLRegionsAccumulate(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 10000)
	p := s.Spawn(loop, hw.NewCPUSet(0))

	hl, err := l.NewHL(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	defer hl.Close()

	// Region A over two separate windows, region B over one.
	reps := func(n int) func() bool {
		target := loop.RepsDone() + n
		return func() bool { return loop.RepsDone() >= target }
	}
	if err := hl.Begin("A"); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(reps(100), 60)
	if err := hl.End("A"); err != nil {
		t.Fatal(err)
	}
	if err := hl.Begin("B"); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(reps(200), 60)
	if err := hl.End("B"); err != nil {
		t.Fatal(err)
	}
	hl.Begin("A")
	s.RunUntil(reps(100), 60)
	hl.End("A")

	a, b := hl.Stats("A"), hl.Stats("B")
	if a == nil || b == nil {
		t.Fatal("missing region stats")
	}
	if a.Count != 2 || b.Count != 1 {
		t.Fatalf("counts A=%d B=%d", a.Count, b.Count)
	}
	// A covered ~200 reps total, B ~200 reps: similar instruction counts,
	// and both near rep-count * 1e6 (ticks add slop at boundaries).
	if a.Values[0] < 190e6 || a.Values[0] > 230e6 {
		t.Errorf("region A instructions = %d, want ~200e6", a.Values[0])
	}
	if b.Values[0] < 190e6 || b.Values[0] > 230e6 {
		t.Errorf("region B instructions = %d, want ~200e6", b.Values[0])
	}
	if a.Seconds <= 0 || b.Seconds <= 0 {
		t.Error("region seconds not accumulated")
	}
	report := hl.Report()
	for _, want := range []string{"region", "A", "B", "PAPI_TOT_INS", "PAPI_TOT_CYC"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if got := hl.Regions(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("regions = %v", got)
	}
	if got := hl.EventNames(); len(got) != 2 || got[0] != "PAPI_TOT_INS" {
		t.Errorf("event names = %v", got)
	}
}

func TestHLOverlappingRegions(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	hl, err := l.NewHL(p.PID, PresetTotIns)
	if err != nil {
		t.Fatal(err)
	}
	defer hl.Close()

	hl.Begin("outer")
	s.RunFor(0.05)
	hl.Begin("inner")
	s.RunFor(0.05)
	if err := hl.End("inner"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.05)
	if err := hl.End("outer"); err != nil {
		t.Fatal(err)
	}
	outer, inner := hl.Stats("outer"), hl.Stats("inner")
	if outer.Values[0] <= inner.Values[0] {
		t.Fatalf("outer (%d) must contain inner (%d)", outer.Values[0], inner.Values[0])
	}
	// Inner covered 1/3 of outer's window.
	ratio := float64(inner.Values[0]) / float64(outer.Values[0])
	if ratio < 0.25 || ratio > 0.45 {
		t.Errorf("inner/outer = %.2f, want ~0.33", ratio)
	}
}

func TestHLErrors(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	hl, err := l.NewHL(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	if err := hl.End("never"); !errors.Is(err, ErrInvalid) {
		t.Errorf("End without Begin: %v", err)
	}
	hl.Begin("r")
	if err := hl.Begin("r"); !errors.Is(err, ErrInvalid) {
		t.Errorf("double Begin: %v", err)
	}
	if err := hl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hl.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := hl.Begin("x"); !errors.Is(err, ErrInvalid) {
		t.Errorf("Begin after Close: %v", err)
	}
	if err := hl.End("r"); !errors.Is(err, ErrInvalid) {
		t.Errorf("End after Close: %v", err)
	}
	// Bad pid / unavailable preset at construction.
	if _, err := l.NewHL(-1); !errors.Is(err, ErrInvalid) {
		t.Errorf("NewHL(-1): %v", err)
	}
	s2 := newSim(hw.OrangePi800())
	l2 := initLib(t, s2, Options{})
	if _, err := l2.NewHL(1000, PresetVecDP); !errors.Is(err, ErrNoEvent) {
		t.Errorf("NewHL with unavailable preset: %v", err)
	}
}

func TestHLOccupiesComponent(t *testing.T) {
	// The HL instance holds a running EventSet: a second concurrent cpu
	// EventSet must conflict until Close.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	hl, _ := l.NewHL(p.PID)
	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	if err := es.Start(); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent eventset: %v", err)
	}
	hl.Close()
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	es.Stop()
	es.Cleanup()
}

func TestHLWriteJSON(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	hl, err := l.NewHL(p.PID, PresetTotIns)
	if err != nil {
		t.Fatal(err)
	}
	hl.Begin("r1")
	s.RunFor(0.01)
	hl.End("r1")
	hl.Close()

	var buf bytes.Buffer
	if err := hl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Regions []struct {
			Region  string            `json:"region"`
			Count   int               `json:"count"`
			Seconds float64           `json:"real_time_sec"`
			Events  map[string]uint64 `json:"events"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.Regions) != 1 || parsed.Regions[0].Region != "r1" {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.Regions[0].Events["PAPI_TOT_INS"] == 0 {
		t.Error("event value missing from JSON")
	}
	if parsed.Regions[0].Seconds <= 0 || parsed.Regions[0].Count != 1 {
		t.Error("metadata missing from JSON")
	}
}
