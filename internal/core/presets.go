package core

import (
	"fmt"
	"sort"
	"strings"
)

// Preset is a PAPI preset event name: a portable identifier that resolves
// to the appropriate native event(s) on each machine. On hybrid machines a
// preset becomes a derived event summing one native event per core PMU
// (section V.2), so PAPI_TOT_INS transparently covers both core types.
type Preset string

// The preset events implemented by this library.
const (
	PresetTotIns Preset = "PAPI_TOT_INS" // total retired instructions
	PresetTotCyc Preset = "PAPI_TOT_CYC" // total unhalted cycles
	PresetRefCyc Preset = "PAPI_REF_CYC" // reference (TSC-rate) cycles
	PresetBrIns  Preset = "PAPI_BR_INS"  // retired branches
	PresetBrMsp  Preset = "PAPI_BR_MSP"  // mispredicted branches
	PresetL1DCM  Preset = "PAPI_L1_DCM"  // L1 data cache misses
	PresetL2TCM  Preset = "PAPI_L2_TCM"  // L2 total cache misses
	PresetL3TCA  Preset = "PAPI_L3_TCA"  // LLC total accesses
	PresetL3TCM  Preset = "PAPI_L3_TCM"  // LLC total misses
	PresetLdIns  Preset = "PAPI_LD_INS"  // retired loads
	PresetSrIns  Preset = "PAPI_SR_INS"  // retired stores
	PresetResStl Preset = "PAPI_RES_STL" // resource stall cycles
	PresetVecDP  Preset = "PAPI_VEC_DP"  // packed double-precision vector instructions
	PresetL3TCH  Preset = "PAPI_L3_TCH"  // LLC total hits (derived: accesses - misses)
)

// presetCSV is the preset definition table, playing the role of PAPI's
// PAPI_events.csv. Each line maps (preset, pfm PMU model) to a native
// expression: either one event or "A-B" (a DERIVED_SUB like LLC hits =
// accesses - misses). The loader assembles the per-machine table from the
// rows whose PMU models are active; on hybrids a preset present on several
// core PMUs becomes a DERIVED_ADD across the per-PMU expressions. This is
// the restructuring section V.2 describes: the old file was keyed by CPU
// family/model, which cannot distinguish P from E cores because they share
// one family/model.
const presetCSV = `
# preset,pmu,native
PAPI_TOT_INS,adl_glc,INST_RETIRED:ANY
PAPI_TOT_INS,adl_grt,INST_RETIRED:ANY
PAPI_TOT_INS,skl,INST_RETIRED:ANY
PAPI_TOT_INS,arm_cortex_a72,INST_RETIRED
PAPI_TOT_INS,arm_cortex_a53,INST_RETIRED
PAPI_TOT_CYC,adl_glc,CPU_CLK_UNHALTED:THREAD
PAPI_TOT_CYC,adl_grt,CPU_CLK_UNHALTED:CORE
PAPI_TOT_CYC,skl,CPU_CLK_UNHALTED:THREAD
PAPI_TOT_CYC,arm_cortex_a72,CPU_CYCLES
PAPI_TOT_CYC,arm_cortex_a53,CPU_CYCLES
PAPI_REF_CYC,adl_glc,CPU_CLK_UNHALTED:REF_TSC
PAPI_REF_CYC,adl_grt,CPU_CLK_UNHALTED:REF_TSC
PAPI_REF_CYC,skl,CPU_CLK_UNHALTED:REF_TSC
PAPI_REF_CYC,arm_cortex_a72,BUS_CYCLES
PAPI_REF_CYC,arm_cortex_a53,BUS_CYCLES
PAPI_BR_INS,adl_glc,BR_INST_RETIRED:ALL_BRANCHES
PAPI_BR_INS,adl_grt,BR_INST_RETIRED:ALL_BRANCHES
PAPI_BR_INS,skl,BR_INST_RETIRED:ALL_BRANCHES
PAPI_BR_INS,arm_cortex_a72,BR_RETIRED
PAPI_BR_INS,arm_cortex_a53,BR_PRED
PAPI_BR_MSP,adl_glc,BR_MISP_RETIRED:ALL_BRANCHES
PAPI_BR_MSP,adl_grt,BR_MISP_RETIRED:ALL_BRANCHES
PAPI_BR_MSP,skl,BR_MISP_RETIRED:ALL_BRANCHES
PAPI_BR_MSP,arm_cortex_a72,BR_MIS_PRED_RETIRED
PAPI_BR_MSP,arm_cortex_a53,BR_MIS_PRED
PAPI_L1_DCM,adl_glc,MEM_LOAD_RETIRED:L1_MISS
PAPI_L1_DCM,arm_cortex_a72,L1D_CACHE_REFILL
PAPI_L1_DCM,arm_cortex_a53,L1D_CACHE_REFILL
PAPI_L2_TCM,adl_glc,MEM_LOAD_RETIRED:L2_MISS
PAPI_L2_TCM,arm_cortex_a72,L2D_CACHE_REFILL
PAPI_L2_TCM,arm_cortex_a53,L2D_CACHE_REFILL
PAPI_L3_TCA,adl_glc,LONGEST_LAT_CACHE:REFERENCE
PAPI_L3_TCA,adl_grt,LONGEST_LAT_CACHE:REFERENCE
PAPI_L3_TCA,skl,LONGEST_LAT_CACHE:REFERENCE
PAPI_L3_TCA,arm_cortex_a72,L2D_CACHE
PAPI_L3_TCA,arm_cortex_a53,L2D_CACHE
PAPI_L3_TCM,adl_glc,LONGEST_LAT_CACHE:MISS
PAPI_L3_TCM,adl_grt,LONGEST_LAT_CACHE:MISS
PAPI_L3_TCM,skl,LONGEST_LAT_CACHE:MISS
PAPI_L3_TCM,arm_cortex_a72,L2D_CACHE_REFILL
PAPI_L3_TCM,arm_cortex_a53,L2D_CACHE_REFILL
PAPI_LD_INS,adl_glc,MEM_INST_RETIRED:ALL_LOADS
PAPI_LD_INS,adl_grt,MEM_UOPS_RETIRED:ALL_LOADS
PAPI_LD_INS,arm_cortex_a72,LD_RETIRED
PAPI_LD_INS,arm_cortex_a53,LD_RETIRED
PAPI_SR_INS,adl_glc,MEM_INST_RETIRED:ALL_STORES
PAPI_SR_INS,adl_grt,MEM_UOPS_RETIRED:ALL_STORES
PAPI_SR_INS,arm_cortex_a72,ST_RETIRED
PAPI_SR_INS,arm_cortex_a53,ST_RETIRED
PAPI_RES_STL,adl_glc,CYCLE_ACTIVITY:STALLS_TOTAL
PAPI_RES_STL,adl_grt,CYCLE_ACTIVITY:STALLS_TOTAL
PAPI_RES_STL,arm_cortex_a72,STALL_BACKEND
PAPI_TOT_INS,arm_cortex_x2,INST_RETIRED
PAPI_TOT_INS,arm_cortex_a710,INST_RETIRED
PAPI_TOT_INS,arm_cortex_a510,INST_RETIRED
PAPI_TOT_CYC,arm_cortex_x2,CPU_CYCLES
PAPI_TOT_CYC,arm_cortex_a710,CPU_CYCLES
PAPI_TOT_CYC,arm_cortex_a510,CPU_CYCLES
PAPI_BR_INS,arm_cortex_x2,BR_RETIRED
PAPI_BR_INS,arm_cortex_a710,BR_RETIRED
PAPI_BR_INS,arm_cortex_a510,BR_PRED
PAPI_BR_MSP,arm_cortex_x2,BR_MIS_PRED_RETIRED
PAPI_BR_MSP,arm_cortex_a710,BR_MIS_PRED_RETIRED
PAPI_BR_MSP,arm_cortex_a510,BR_MIS_PRED
PAPI_L1_DCM,arm_cortex_x2,L1D_CACHE_REFILL
PAPI_L1_DCM,arm_cortex_a710,L1D_CACHE_REFILL
PAPI_L1_DCM,arm_cortex_a510,L1D_CACHE_REFILL
PAPI_L3_TCA,arm_cortex_x2,L3D_CACHE
PAPI_L3_TCA,arm_cortex_a710,L3D_CACHE
PAPI_L3_TCA,arm_cortex_a510,L2D_CACHE
PAPI_L3_TCM,arm_cortex_x2,L3D_CACHE_REFILL
PAPI_L3_TCM,arm_cortex_a710,L3D_CACHE_REFILL
PAPI_L3_TCM,arm_cortex_a510,L2D_CACHE_REFILL
PAPI_LD_INS,arm_cortex_x2,LD_RETIRED
PAPI_LD_INS,arm_cortex_a710,LD_RETIRED
PAPI_LD_INS,arm_cortex_a510,LD_RETIRED
PAPI_SR_INS,arm_cortex_x2,ST_RETIRED
PAPI_SR_INS,arm_cortex_a710,ST_RETIRED
PAPI_SR_INS,arm_cortex_a510,ST_RETIRED
PAPI_RES_STL,arm_cortex_x2,STALL_BACKEND
PAPI_RES_STL,arm_cortex_a710,STALL_BACKEND
PAPI_VEC_DP,adl_glc,FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE
PAPI_VEC_DP,adl_grt,FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE
PAPI_VEC_DP,skl,FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE
PAPI_L3_TCH,adl_glc,LONGEST_LAT_CACHE:REFERENCE-LONGEST_LAT_CACHE:MISS
PAPI_L3_TCH,adl_grt,LONGEST_LAT_CACHE:REFERENCE-LONGEST_LAT_CACHE:MISS
PAPI_L3_TCH,skl,LONGEST_LAT_CACHE:REFERENCE-LONGEST_LAT_CACHE:MISS
PAPI_L3_TCH,arm_cortex_a72,L2D_CACHE-L2D_CACHE_REFILL
PAPI_L3_TCH,arm_cortex_a53,L2D_CACHE-L2D_CACHE_REFILL
PAPI_L3_TCH,arm_cortex_x2,L3D_CACHE-L3D_CACHE_REFILL
PAPI_L3_TCH,arm_cortex_a710,L3D_CACHE-L3D_CACHE_REFILL
PAPI_L3_TCH,arm_cortex_a510,L2D_CACHE-L2D_CACHE_REFILL
`

// loadPresets parses presetCSV and keeps the rows whose PMU models are
// active on this machine.
func (l *Library) loadPresets() error {
	l.presets = map[Preset]map[string]string{}
	for lineNo, line := range strings.Split(presetCSV, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return fmt.Errorf("core: presets.csv line %d malformed: %q", lineNo+1, line)
		}
		preset, pmu, expr := Preset(parts[0]), parts[1], parts[2]
		if !l.pfm.HasPMU(pmu) {
			continue
		}
		// Validate eagerly: a bad table entry should fail init, not Add.
		for _, term := range strings.Split(expr, "-") {
			if _, err := l.pfm.ParseEvent(pmu + "::" + term); err != nil {
				return fmt.Errorf("core: presets.csv line %d: %v", lineNo+1, err)
			}
		}
		native := expr
		if l.presets[preset] == nil {
			l.presets[preset] = map[string]string{}
		}
		l.presets[preset][pmu] = native
	}
	return nil
}

// PresetInfo describes a preset's availability on this machine.
type PresetInfo struct {
	// Name is the preset.
	Name Preset
	// Available reports whether the preset can be added at all.
	Available bool
	// Derived reports whether the preset expands to more than one native
	// event (hybrid DERIVED_ADD).
	Derived bool
	// Partial reports that the preset exists on some but not all core
	// PMUs, so its count misses work done on the uncovered core type
	// (e.g. PAPI_RES_STL on the RK3399, where the Cortex-A53 has no stall
	// events).
	Partial bool
	// Natives lists the native expansions, "pmu::EVENT" form, sorted.
	Natives []string
}

// QueryPreset reports how a preset resolves on this machine.
func (l *Library) QueryPreset(p Preset) PresetInfo {
	info := PresetInfo{Name: p}
	table := l.presets[p]
	if len(table) == 0 {
		return info
	}
	covered := 0
	for _, pmu := range l.defaultPMUs() {
		expr, ok := table[pmu]
		if !ok {
			continue
		}
		covered++
		for i, term := range strings.Split(expr, "-") {
			if i == 0 {
				info.Natives = append(info.Natives, pmu+"::"+term)
			} else {
				info.Natives = append(info.Natives, "-"+pmu+"::"+term)
			}
		}
	}
	sort.Strings(info.Natives)
	info.Available = covered > 0
	info.Derived = covered > 1
	info.Partial = covered > 0 && covered < len(l.defaultPMUs())
	return info
}

// Presets lists every preset known to the library, available or not,
// sorted by name.
func (l *Library) Presets() []PresetInfo {
	seen := map[Preset]bool{}
	var names []string
	for p := range l.presets {
		if !seen[p] {
			seen[p] = true
			names = append(names, string(p))
		}
	}
	sort.Strings(names)
	out := make([]PresetInfo, 0, len(names))
	for _, n := range names {
		out = append(out, l.QueryPreset(Preset(n)))
	}
	return out
}
