package core

import (
	"errors"
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestHybridSamplingProfile(t *testing.T) {
	// Sample a hybrid preset: one sampled native per core PMU, merged into
	// a single time-ordered profile that attributes execution to core
	// types.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 3000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))

	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddPreset(PresetTotIns); err != nil {
		t.Fatal(err)
	}
	if err := es.SetSamplePeriod(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(loop.Done, 60) {
		t.Fatal("workload did not finish")
	}
	samples, lost, err := es.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("lost %d samples", lost)
	}
	// 3e9 instructions at a 1M period: ~3000 samples (minus per-PMU
	// residuals at migrations).
	if len(samples) < 2900 || len(samples) > 3000 {
		t.Fatalf("got %d samples, want ~3000", len(samples))
	}
	byType := map[uint32]int{}
	for i, smp := range samples {
		byType[smp.PMUType]++
		if i > 0 && smp.TimeSec < samples[i-1].TimeSec {
			t.Fatal("merged samples out of order")
		}
	}
	pType := s.HW.TypeByName("P-core").PMU.PerfType
	eType := s.HW.TypeByName("E-core").PMU.PerfType
	if byType[pType] == 0 || byType[eType] == 0 {
		t.Fatalf("profile missing a core type: %v", byType)
	}
	if byType[pType] <= byType[eType] {
		t.Errorf("expected P-heavy profile: %v", byType)
	}
	vals, _ := es.Stop()
	es.Cleanup()
	if vals[0] != 3_000_000_000 {
		t.Fatalf("count = %d", vals[0])
	}
}

func TestSetSamplePeriodValidation(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	es := l.CreateEventSet()
	es.Attach(1000)
	es.AddNamed("adl_glc::INST_RETIRED:ANY")
	es.AddNamed("rapl::ENERGY_PKG")

	if err := es.SetSamplePeriod(5, 1000); !errors.Is(err, ErrInvalid) {
		t.Errorf("out of range index: %v", err)
	}
	if err := es.SetSamplePeriod(0, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero period: %v", err)
	}
	if err := es.SetSamplePeriod(0, 999); !errors.Is(err, ErrInvalid) {
		t.Errorf("period below kernel minimum: %v", err)
	}
	if err := es.SetSamplePeriod(1, 1000); !errors.Is(err, ErrInvalid) {
		t.Errorf("sampling a RAPL event: %v", err)
	}
	if err := es.SetSamplePeriod(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.SetSamplePeriod(0, 1000); !errors.Is(err, ErrIsRunning) {
		t.Errorf("set period while running: %v", err)
	}
	es.Stop()
	es.Cleanup()
	// Samples on a cleaned-up set.
	if _, _, err := es.Samples(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("samples after cleanup: %v", err)
	}
}

func TestSamplesRequiresRunningSet(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	es := l.CreateEventSet()
	es.Attach(100)
	if err := es.AddPreset(PresetTotIns); err != nil {
		t.Fatal(err)
	}
	if err := es.SetSamplePeriod(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := es.Samples(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Samples before Start: %v, want ErrNotRunning", err)
	}
}

func TestSamplesSkipsUnsampledEvents(t *testing.T) {
	// A set mixing a sampled and a counting-only event: Samples drains
	// only the sampled one's rings.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	loop := workload.NewInstructionLoop("w", 1e6, 100)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddPreset(PresetTotIns); err != nil {
		t.Fatal(err)
	}
	if err := es.AddPreset(PresetTotCyc); err != nil {
		t.Fatal(err)
	}
	if err := es.SetSamplePeriod(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(loop.Done, 10) {
		t.Fatal("workload did not finish")
	}
	samples, _, err := es.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("sampled event produced nothing")
	}
	es.Stop()
	es.Cleanup()
}
