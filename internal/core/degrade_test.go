package core

import (
	"errors"
	"testing"

	"hetpapi/internal/faults"
	"hetpapi/internal/hw"
	"hetpapi/internal/perfevent"
	"hetpapi/internal/workload"
)

// TestStaleReadAfterMigration is the regression test for the silent
// read-after-migration bug: a per-thread count frozen by migration (and
// later by Stop) used to come back as a plain number, indistinguishable
// from a live one. ReadValues/StopValues must flag it.
func TestStaleReadAfterMigration(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})

	pcores := hw.NewCPUSet(s.HW.CPUsOfClass(hw.Performance)...)
	ecores := hw.NewCPUSet(s.HW.CPUsOfClass(hw.Efficiency)...)
	loop := workload.NewInstructionLoop("migrant", 1e9, 2000)
	p := s.Spawn(loop, pcores)

	es := l.CreateEventSet()
	if err := es.Attach(p.PID); err != nil {
		t.Fatal(err)
	}
	// A P-core-only native: it counts nothing once the thread lives on
	// E-cores, which is exactly the freeze we need flagged.
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.2)

	fresh, err := es.ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Stale {
		t.Fatalf("value while scheduled on P-cores flagged stale: %+v", fresh[0])
	}
	if fresh[0].Final == 0 {
		t.Fatal("no instructions counted on P-cores")
	}

	// Migrate the thread away from every CPU the native can count on.
	if err := s.Sched.SetAffinity(p.PID, ecores); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.2)

	stale, err := es.ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if !stale[0].Stale {
		t.Fatalf("frozen post-migration value not flagged stale: %+v", stale[0])
	}
	if !stale[0].Degraded {
		t.Fatalf("stale value not flagged degraded: %+v", stale[0])
	}
	if stale[0].ScaleFactor <= 1 {
		t.Fatalf("ScaleFactor = %g, want > 1 (enabled time kept accruing)", stale[0].ScaleFactor)
	}
	if stale[0].Final < fresh[0].Final {
		t.Fatalf("reads went backwards: %d then %d", fresh[0].Final, stale[0].Final)
	}

	final, err := es.StopValues()
	if err != nil {
		t.Fatal(err)
	}
	if !final[0].Stale {
		t.Fatalf("StopValues of a migrated thread not flagged stale: %+v", final[0])
	}

	// Read-after-stop serves the last values, explicitly stale, rather
	// than silently replaying them or failing.
	after, err := es.ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if !after[0].Stale || after[0].Final != final[0].Final {
		t.Fatalf("read-after-stop = %+v, want stale replay of %d", after[0], final[0].Final)
	}
	if _, err := es.Read(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("legacy Read after stop = %v, want ErrNotRunning", err)
	}
	if r := es.Degradations(); r.StaleReads == 0 {
		t.Fatalf("stale reads not tallied: %+v", r)
	}
}

// TestStartRetriesBusyUntilWatchdogReleases drives rung 1 of the
// ladder: EBUSY backoff in tick time until the watchdog lets go.
func TestStartRetriesBusyUntilWatchdogReleases(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType

	s.Kernel.SetWatchdog(pmu, true)
	// Release the counter a few ticks in: the backoff's Step calls
	// advance the clock past the release, so a later attempt succeeds.
	s.Kernel.AttachFaults(faults.NewPlan(faults.Event{
		AtSec: s.Now() + 3*s.Tick(), Kind: faults.KindWatchdogRelease, PMU: pmu,
	}))

	loop := workload.NewInstructionLoop("busy", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::CPU_CLK_UNHALTED:THREAD"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatalf("Start did not survive a transient watchdog hold: %v", err)
	}
	r := es.Degradations()
	if r.BusyRetries == 0 || r.RetryTicks == 0 {
		t.Fatalf("no retries recorded: %+v", r)
	}
	s.RunFor(0.1)
	vals, err := es.StopValues()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Final == 0 {
		t.Fatal("no cycles counted after recovered start")
	}
}

// TestStartDefersBusyWhenRetryDisabled: with in-place retry disabled
// the EBUSY surfaces immediately as a deferred start, the contract
// per-tick drivers rely on.
func TestStartDefersBusyWhenRetryDisabled(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType
	s.Kernel.SetWatchdog(pmu, true)

	loop := workload.NewInstructionLoop("deferred", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	es.AddNamed("adl_glc::CPU_CLK_UNHALTED:THREAD")
	es.SetStartRetry(-1)

	now := s.Now()
	if err := es.Start(); !errors.Is(err, perfevent.ErrBusy) {
		t.Fatalf("Start = %v, want ErrBusy", err)
	}
	if s.Now() != now {
		t.Fatal("disabled retry must not step the simulation")
	}
	if r := es.Degradations(); r.DeferredStarts != 1 {
		t.Fatalf("DeferredStarts = %d, want 1", r.DeferredStarts)
	}

	s.Kernel.SetWatchdog(pmu, false)
	if err := es.Start(); err != nil {
		t.Fatalf("Start after release: %v", err)
	}
	es.StopValues()
}

// TestENOSPCFallsBackToMultiplex drives rung 2: a counter budget too
// small for the group forces the sticky multiplex fallback, and reads
// carry explicit error bounds.
func TestENOSPCFallsBackToMultiplex(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	pmu := s.HW.Types[0].PMU.PerfType
	s.Kernel.SetCounterBudget(pmu, 2)

	loop := workload.NewInstructionLoop("squeezed", 1e9, 2000)
	p := s.Spawn(loop, hw.NewCPUSet(s.HW.CPUsOfClass(hw.Performance)...))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	for _, n := range []string{
		"adl_glc::INST_RETIRED:ANY",
		"adl_glc::CPU_CLK_UNHALTED:THREAD_P",
		"adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
		"adl_glc::MEM_INST_RETIRED:ALL_LOADS",
	} {
		if err := es.AddNamed(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := es.Start(); err != nil {
		t.Fatalf("Start did not absorb ENOSPC: %v", err)
	}
	r := es.Degradations()
	if r.MultiplexFallback != 1 {
		t.Fatalf("MultiplexFallback = %d, want 1", r.MultiplexFallback)
	}
	if !es.Degraded() {
		t.Fatal("set not marked degraded after fallback")
	}
	s.RunFor(0.5)
	vals, err := es.ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	sawBound := false
	for i, v := range vals {
		if v.Raw > v.Scaled {
			t.Fatalf("event %d: Raw %d > Scaled %d", i, v.Raw, v.Scaled)
		}
		if v.ErrorBound != v.Scaled-v.Raw {
			t.Fatalf("event %d: ErrorBound %d != Scaled-Raw %d", i, v.ErrorBound, v.Scaled-v.Raw)
		}
		if !v.Degraded {
			t.Fatalf("event %d not flagged degraded under fallback: %+v", i, v)
		}
		if v.ErrorBound > 0 {
			sawBound = true
		}
	}
	if !sawBound {
		t.Fatal("4 events on 2 counters should have multiplexed: no nonzero error bound")
	}
	if _, err := es.StopValues(); err != nil {
		t.Fatal(err)
	}
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if s.Kernel.NumOpen() != 0 {
		t.Fatalf("%d fds leaked", s.Kernel.NumOpen())
	}
}

// TestHotplugRebuildCarriesValue drives rung 3: a CPU-wide descriptor
// killed by hotplug is rebuilt on another CPU with its count carried
// forward, keeping reads monotonic and error-free.
func TestHotplugRebuildCarriesValue(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})

	loop := workload.NewInstructionLoop("hotplugged", 1e9, 2000)
	p := s.Spawn(loop, hw.AllCPUs(s.HW))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddNamed("adl_glc::INST_RETIRED:ANY"); err != nil {
		t.Fatal(err)
	}
	if err := es.AddNamed("rapl::ENERGY_PKG"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(0.3)
	before, err := es.ReadValues()
	if err != nil {
		t.Fatal(err)
	}
	if before[1].Final == 0 {
		t.Fatal("no package energy before hotplug")
	}

	// RAPL descriptors live on cpu0; kill it.
	s.SetCPUOnline(0, false)
	s.RunFor(0.3)
	after, err := es.ReadValues()
	if err != nil {
		t.Fatalf("read across hotplug must not fail: %v", err)
	}
	r := es.Degradations()
	if r.HotplugRebuilds != 1 {
		t.Fatalf("HotplugRebuilds = %d, want 1: %+v", r.HotplugRebuilds, r.Events)
	}
	if after[1].Final < before[1].Final {
		t.Fatalf("energy went backwards across rebuild: %d then %d", before[1].Final, after[1].Final)
	}
	if !after[1].Degraded {
		t.Fatalf("post-rebuild value not flagged degraded: %+v", after[1])
	}

	s.SetCPUOnline(0, true)
	s.RunFor(0.2)
	final, err := es.StopValues()
	if err != nil {
		t.Fatal(err)
	}
	if final[1].Final < after[1].Final {
		t.Fatalf("energy went backwards after re-online: %d then %d", after[1].Final, final[1].Final)
	}
	if err := es.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if s.Kernel.NumOpen() != 0 {
		t.Fatalf("%d fds leaked after rebuild + cleanup", s.Kernel.NumOpen())
	}
}
