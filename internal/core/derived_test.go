package core

// Tests for derived-subtract presets (PAPI's DERIVED_SUB shape) combined
// with the hybrid DERIVED_ADD across PMUs: PAPI_L3_TCH = LLC accesses
// minus misses, summed over both core types.

import (
	"testing"

	"hetpapi/internal/hw"
	"hetpapi/internal/workload"
)

func TestDerivedSubPresetL3Hits(t *testing.T) {
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})

	info := l.QueryPreset(PresetL3TCH)
	if !info.Available || !info.Derived {
		t.Fatalf("PAPI_L3_TCH = %+v", info)
	}
	// 2 PMUs x (reference - miss) = 4 natives, two of them negated.
	if len(info.Natives) != 4 {
		t.Fatalf("natives = %v", info.Natives)
	}
	neg := 0
	for _, n := range info.Natives {
		if n[0] == '-' {
			neg++
		}
	}
	if neg != 2 {
		t.Fatalf("want 2 negated terms, got %d: %v", neg, info.Natives)
	}

	stream := workload.NewStream("mem", 5e8, 0.7, 3)
	p := s.Spawn(stream, hw.NewCPUSet(0))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddPreset(PresetL3TCA); err != nil {
		t.Fatal(err)
	}
	if err := es.AddPreset(PresetL3TCM); err != nil {
		t.Fatal(err)
	}
	if err := es.AddPreset(PresetL3TCH); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntil(stream.Done, 60) {
		t.Fatal("stream did not finish")
	}
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	es.Cleanup()
	tca, tcm, tch := vals[0], vals[1], vals[2]
	if tca == 0 || tcm == 0 {
		t.Fatalf("no LLC traffic: %v", vals)
	}
	if tch != tca-tcm {
		t.Fatalf("L3_TCH = %d, want TCA - TCM = %d", tch, tca-tcm)
	}
	// Miss rate ~0.7: hits are ~30% of accesses.
	rate := float64(tch) / float64(tca)
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("hit rate = %.2f, want ~0.3", rate)
	}
}

func TestDerivedSubOnARM(t *testing.T) {
	// The ARM expansion subtracts L2D refills from L2D accesses.
	s := newSim(hw.OrangePi800())
	l := initLib(t, s, Options{})
	info := l.QueryPreset(PresetL3TCH)
	if !info.Available {
		t.Fatalf("PAPI_L3_TCH on ARM = %+v", info)
	}
	if len(info.Natives) != 4 {
		t.Fatalf("natives = %v", info.Natives)
	}
}

func TestDerivedSubNeverNegative(t *testing.T) {
	// Even if the subtraction transiently undershoots, Read clamps at 0
	// rather than wrapping a uint64.
	s := newSim(hw.RaptorLake())
	l := initLib(t, s, Options{})
	spin := workload.NewSpin("w", 100)
	p := s.Spawn(spin, hw.NewCPUSet(0))
	es := l.CreateEventSet()
	es.Attach(p.PID)
	if err := es.AddPreset(PresetL3TCH); err != nil {
		t.Fatal(err)
	}
	es.Start()
	vals, _ := es.Read() // immediately: zero counts on both sides
	if vals[0] > 1<<62 {
		t.Fatalf("derived value wrapped: %d", vals[0])
	}
	es.Stop()
	es.Cleanup()
}
